// Package main_test is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (Section V). Each benchmark runs the
// corresponding experiment end to end and prints the rows/series the paper
// reports, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The repetition counts are reduced from
// the paper's 1000 to keep a full pass in minutes; the cmd/ binaries expose
// flags for full-scale runs.
package main_test

import (
	"fmt"
	"runtime"
	"testing"

	"hplsim/internal/cluster"
	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/topo"
)

// benchReps is the per-configuration repetition count used by the bench
// harness (the paper uses 1000; see cmd/nastables -reps). Replications run
// on the parallel harness (GOMAXPROCS workers), so the count is set by
// statistical appetite, not wall-clock patience.
const benchReps = 200

// BenchmarkRunManyParallel measures the replication harness itself: the
// same 16-rep ep.A.8 batch at 1, 2, 4, and GOMAXPROCS workers. Results are
// bitwise identical at every width (TestRunManyWorkerCountInvariance); the
// per-width ns/op readings give the wall-clock speedup directly. On the
// paper's scale (1000 reps) the sequential harness is the difference
// between minutes and hours.
func BenchmarkRunManyParallel(b *testing.B) {
	opt := experiments.Options{Profile: nas.MustGet("ep", 'A'), Scheme: experiments.Std, Seed: 21}
	const reps = 16
	widths := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		widths = append(widths, g)
	}
	for _, w := range widths {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunManyOpt(opt, reps, w)
			}
		})
	}
}

// BenchmarkFigure1 regenerates Figure 1: the preemption/barrier timeline.
func BenchmarkFigure1(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Figure1(uint64(i + 1))
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure2 regenerates Figure 2: ep.A.8 execution-time distribution
// under the standard Linux scheduler.
func BenchmarkFigure2(b *testing.B) {
	var d experiments.DistributionResult
	for i := 0; i < b.N; i++ {
		d = experiments.Figure2(benchReps, 2, 0)
	}
	b.StopTimer()
	fmt.Println(experiments.FormatDistribution(
		"Figure 2: ep.A.8 distribution (standard Linux)", d))
}

// BenchmarkFigure3 regenerates Figures 3a and 3b: execution time vs CPU
// migrations and vs context switches.
func BenchmarkFigure3(b *testing.B) {
	var migr, ctx experiments.CorrelationResult
	for i := 0; i < b.N; i++ {
		migr, ctx = experiments.Figure3(benchReps, 3, 0)
	}
	b.StopTimer()
	fmt.Println(experiments.FormatCorrelation("Figure 3a", migr))
	fmt.Println(experiments.FormatCorrelation("Figure 3b", ctx))
}

// BenchmarkFigure4 regenerates Figure 4: ep.A.8 distribution under the RT
// scheduler.
func BenchmarkFigure4(b *testing.B) {
	var d experiments.DistributionResult
	for i := 0; i < b.N; i++ {
		d = experiments.Figure4(benchReps, 4, 0)
	}
	b.StopTimer()
	fmt.Println(experiments.FormatDistribution(
		"Figure 4: ep.A.8 distribution (RT scheduler)", d))
}

// BenchmarkTableIa regenerates Table Ia: scheduler OS noise under the
// standard kernel.
func BenchmarkTableIa(b *testing.B) {
	var rows []experiments.TableIRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableI(experiments.Std, benchReps, 5, experiments.Exec{}, topo.Topology{})
	}
	b.StopTimer()
	fmt.Println(experiments.FormatTableI("Table Ia: scheduler OS noise (standard Linux)", rows))
}

// BenchmarkTableIb regenerates Table Ib: scheduler OS noise under HPL.
func BenchmarkTableIb(b *testing.B) {
	var rows []experiments.TableIRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableI(experiments.HPL, benchReps, 6, experiments.Exec{}, topo.Topology{})
	}
	b.StopTimer()
	fmt.Println(experiments.FormatTableI("Table Ib: scheduler OS noise (HPL)", rows))
}

// BenchmarkTableII regenerates Table II: execution times, Std vs HPL.
func BenchmarkTableII(b *testing.B) {
	var rows []experiments.TableIIRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableII(benchReps, 7, experiments.Exec{}, topo.Topology{})
	}
	b.StopTimer()
	fmt.Println(experiments.FormatTableII(rows))
}

// BenchmarkResonance regenerates the Section II noise-resonance scaling
// study (extension E9).
func BenchmarkResonance(b *testing.B) {
	nodes := []int{1, 16, 128, 1024}
	var std, hpl []cluster.Point
	for i := 0; i < b.N; i++ {
		std, hpl = experiments.ResonanceStudy(nodes, 10, 75, 200, 8, 0)
	}
	b.StopTimer()
	fmt.Println("--- standard Linux node ---")
	fmt.Println(cluster.Format(std))
	fmt.Println("--- HPL node ---")
	fmt.Println(cluster.Format(hpl))
}

// BenchmarkAblationDynamicBalance runs A1: HPL with dynamic balancing
// re-enabled.
func BenchmarkAblationDynamicBalance(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationDynamicBalance(nas.MustGet("is", 'A'), benchReps, 9, 0)
	}
	b.StopTimer()
	fmt.Println(experiments.FormatAblation("A1: dynamic balancing", rows))
}

// BenchmarkAblationPlacement runs A2: naive vs topology-aware placement.
func BenchmarkAblationPlacement(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationPlacement(10, 10, 0)
	}
	b.StopTimer()
	fmt.Println(experiments.FormatAblation("A2: fork placement (4 ranks)", rows))
}

// BenchmarkAblationAlternatives runs A3-A5: CFS, nice -20, pinning, RT vs
// HPL.
func BenchmarkAblationAlternatives(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationAlternatives(nas.MustGet("is", 'A'), benchReps, 11, 0)
	}
	b.StopTimer()
	fmt.Println(experiments.FormatAblation("A3-A5: Section IV alternatives", rows))
}

// BenchmarkAblationTick runs A6: the tick-frequency sweep.
func BenchmarkAblationTick(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationTick(nas.MustGet("lu", 'A'), 10, 12, 0)
	}
	b.StopTimer()
	fmt.Println(experiments.FormatAblation("A6: tick frequency", rows))
}

// BenchmarkAblationNettick runs A7: the NETTICK adaptive-tick study.
func BenchmarkAblationNettick(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationNettick(nas.MustGet("is", 'A'), 10, 13, 0)
	}
	b.StopTimer()
	fmt.Println(experiments.FormatAblation("A7: NETTICK adaptive tick", rows))
}

// BenchmarkEnergyStudy runs the power-dimension study (paper future work).
func BenchmarkEnergyStudy(b *testing.B) {
	var rows []experiments.EnergyRow
	for i := 0; i < b.N; i++ {
		rows = experiments.EnergyStudy(uint64(i + 14))
	}
	b.StopTimer()
	fmt.Println(experiments.FormatEnergy(rows))
}

// BenchmarkSyncStudy runs the synchronisation-structure study.
func BenchmarkSyncStudy(b *testing.B) {
	var rows []experiments.SyncRow
	for i := 0; i < b.N; i++ {
		rows = experiments.SyncStudy(10, 15, 0)
	}
	b.StopTimer()
	fmt.Println(experiments.FormatSyncStudy(rows))
}
