// Energy trade-off: the "power dimension" the paper names as HPL's next
// extension. HPL's topology-aware placement wakes more cores (higher
// instantaneous power) but finishes sooner; packing ranks onto fewer cores
// draws less power but pays the SMT throughput penalty. Which wins on
// energy is an empirical question this example answers with the simulated
// node's power model.
//
//	go run ./examples/energy_tradeoff
package main

import (
	"fmt"

	"hplsim/internal/experiments"
)

func main() {
	rows := experiments.EnergyStudy(42)
	fmt.Print(experiments.FormatEnergy(rows))

	aware, packed := rows[0], rows[1]
	fmt.Println()
	if aware.Joules < packed.Joules {
		fmt.Printf("Race-to-idle wins: spreading draws %.0fW more but finishes\n",
			aware.Watts-packed.Watts)
		fmt.Printf("%.1fx sooner, for %.0f J less total energy. The base power of\n",
			packed.Seconds/aware.Seconds, packed.Joules-aware.Joules)
		fmt.Println("the node dominates: every extra second costs the whole blade.")
	} else {
		fmt.Println("Packing wins on energy despite the longer runtime.")
	}
}
