// Topology study: how HPL's fork-time placement adapts to the machine
// shape. The balancer spreads ranks first across chips, then across cores,
// then across SMT threads (Section IV), so a job that does not fill the
// machine gets whole cores — and full single-thread speed — for free.
//
// This example runs a 4-rank job on three hypothetical machines with the
// same number of hardware threads but different shapes, under HPL's
// topology-aware placement and under the naive first-fit ablation.
//
//	go run ./examples/topology_study
package main

import (
	"fmt"

	"hplsim/internal/kernel"
	"hplsim/internal/mpi"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

func main() {
	machines := []topo.Topology{
		{Chips: 2, CoresPerChip: 2, ThreadsPerCore: 2}, // the paper's js22
		{Chips: 1, CoresPerChip: 4, ThreadsPerCore: 2}, // single socket
		{Chips: 4, CoresPerChip: 1, ThreadsPerCore: 2}, // four small chips
	}

	fmt.Println("4 ranks x 200ms of work per rank; SMT factor 0.64 when both")
	fmt.Println("hardware threads of a core are busy")
	fmt.Println()
	fmt.Printf("%-34s %16s %16s\n", "machine", "topology-aware", "naive first-fit")

	for _, m := range machines {
		aware := runJob(m, false)
		naive := runJob(m, true)
		fmt.Printf("%-34s %15.0fms %15.0fms\n", m.String(),
			aware.Seconds()*1e3, naive.Seconds()*1e3)
	}

	fmt.Println()
	fmt.Println("Topology-aware placement gives each rank a whole core whenever")
	fmt.Println("ranks <= cores, so the job runs at full single-thread speed;")
	fmt.Println("first-fit packs SMT siblings and pays the throughput penalty.")
}

func runJob(m topo.Topology, naive bool) sim.Duration {
	k := kernel.New(kernel.Config{
		Topo:              m,
		Balance:           sched.BalanceHPL,
		HPCNaivePlacement: naive,
		Seed:              3,
	})
	w := mpi.NewWorld(k, mpi.Config{Ranks: 4, Policy: task.HPC})
	w.OnComplete = func() { k.Eng.After(sim.Millisecond, k.Stop) }
	w.Launch(nil, func(r *mpi.Rank) {
		r.Compute(200*sim.Millisecond, func() {
			r.Barrier(func() { r.Finish() })
		})
	})
	k.Run(sim.Time(10 * sim.Second))
	return w.Elapsed()
}
