// Cluster resonance: the Section II scaling argument. OS noise that costs
// 1-2% on a single node becomes dramatic at scale, because a global barrier
// waits for the *slowest* of N nodes each iteration — the probability that
// someone, somewhere, is running a daemon approaches one.
//
// The single-node iteration-time distribution is measured with the full
// kernel simulation (standard scheduler vs HPL); clusters are then composed
// by taking the per-iteration maximum across nodes.
//
//	go run ./examples/cluster_resonance
package main

import (
	"fmt"

	"hplsim/internal/cluster"
	"hplsim/internal/experiments"
)

func main() {
	nodes := []int{1, 8, 64, 512, 4096}
	fmt.Println("measuring single-node iteration distributions (cg.B.8)...")
	std, hpl := experiments.ResonanceStudy(nodes, 15, 75, 300, 11, 0)

	fmt.Println()
	fmt.Println("=== standard Linux node ===")
	fmt.Print(cluster.Format(std))
	fmt.Println()
	fmt.Println("=== HPL node ===")
	fmt.Print(cluster.Format(hpl))

	fmt.Println()
	last := len(nodes) - 1
	fmt.Printf("At %d nodes the standard kernel runs %.2fx slower than ideal;\n",
		nodes[last], std[last].MeanSlowdown)
	fmt.Printf("HPL stays at %.3fx. This is the noise resonance that made\n",
		hpl[last].MeanSlowdown)
	fmt.Println("Petrini et al. leave one CPU per node idle on ASCI Q.")
}
