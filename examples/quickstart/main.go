// Quickstart: boot a simulated dual-POWER6 node, run one SPMD job under
// the standard Linux scheduler and under HPL, and compare what the paper
// measures — execution time, CPU migrations, and context switches.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
)

func main() {
	// The workload: NAS cg class A with eight MPI ranks, the paper's
	// smallest "real" benchmark (15 allreduce-separated iterations).
	prof := nas.MustGet("cg", 'A')
	fmt.Printf("workload: %s (%d iterations, target %.2fs)\n\n",
		prof.Name(), prof.Iterations, prof.TargetSeconds)

	for _, scheme := range []experiments.Scheme{experiments.Std, experiments.HPL} {
		fmt.Printf("=== scheduler: %s ===\n", scheme)
		for i := 0; i < 5; i++ {
			r := experiments.Run(experiments.Options{
				Profile: prof,
				Scheme:  scheme,
				Seed:    100 + uint64(i),
			})
			fmt.Printf("  run %d: %7.3fs   migrations=%-4d ctxsw=%d\n",
				i, r.ElapsedSec, r.Window.Migrations, r.Window.ContextSwitches)
		}
		fmt.Println()
	}

	fmt.Println("HPL pins the application's best case and removes the spread;")
	fmt.Println("the standard scheduler's migrations and preemptions make every")
	fmt.Println("run different. Try `go run ./cmd/nastables -table 2` for the")
	fmt.Println("full Table II reproduction.")
}
