// Noise injection: the Ferreira et al. methodology the paper cites —
// inject synthetic kernel noise with a fixed frequency and duration and
// observe how the application's sensitivity depends on the noise *pattern*,
// not just its total volume.
//
// The experiment holds the injected CPU share constant at 2.5% and sweeps
// the granularity: many short interruptions (high-frequency, short
// duration, like timer ticks) versus few long ones (low-frequency, long
// duration, like kernel threads). Fine-grained applications resonate with
// fine-grained noise; coarse noise hurts when a single interruption spans a
// compute phase (Section VI: "impact on HPC applications is higher when
// the OS noise resonates with the application").
//
//	go run ./examples/noise_injection
package main

import (
	"fmt"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/noise"
	"hplsim/internal/sim"
)

func main() {
	// lu.A: 250 fine-grained iterations of ~70ms — the most
	// resonance-prone profile in the suite.
	prof := nas.MustGet("lu", 'A')

	// 2.5% injected share at four granularities.
	patterns := []noise.Injection{
		{Frequency: 1000, Duration: 25 * sim.Microsecond},
		{Frequency: 100, Duration: 250 * sim.Microsecond},
		{Frequency: 10, Duration: 2500 * sim.Microsecond},
		{Frequency: 1, Duration: 25 * sim.Millisecond},
	}

	fmt.Printf("workload: %s, injected noise share fixed at 2.5%%\n\n", prof.Name())
	fmt.Printf("%-28s %12s %12s %10s\n", "noise pattern", "time (s)", "vs clean", "")

	clean := run(prof, noise.Injection{})
	fmt.Printf("%-28s %12.3f %12s\n", "none (clean HPL)", clean, "-")

	for _, p := range patterns {
		t := run(prof, p)
		fmt.Printf("%-28s %12.3f %+11.2f%%\n",
			fmt.Sprintf("%gHz x %v", p.Frequency, p.Duration), t,
			(t/clean-1)*100)
	}

	fmt.Println("\nEvery pattern steals the same CPU share, but the slowdown the")
	fmt.Println("barrier sees differs: interruptions long enough to stall one rank")
	fmt.Println("past its peers' arrival delay the whole machine.")
}

func run(prof nas.Profile, inj noise.Injection) float64 {
	r := experiments.Run(experiments.Options{
		Profile:   prof,
		Scheme:    experiments.HPL, // isolate the injected noise
		Seed:      7,
		NoDaemons: true,
		NoStorms:  true,
		Inject:    inj,
	})
	return r.ElapsedSec
}
