// Command simqd is the simulation-queue dispatcher: an HTTP service that
// accepts experiment payloads, leases them to workers (psq work), verifies
// artifact fingerprints, and journals every state transition write-ahead to
// <dir>/journal.jsonl. Kill it at any moment — on restart it replays the
// journal and resumes with exactly the queue state the journal describes;
// torn trailing bytes from the crash itself are truncated, anything else
// suspicious refuses to load.
//
// There is deliberately no shutdown handler: crashing IS the shutdown
// protocol, and the recovery path is the one path there is. For a graceful
// wind-down, drain first (psq drain) and kill once quiesced.
//
// Examples:
//
//	simqd -dir /tmp/simq                      (serve on the default address)
//	simqd -dir /tmp/simq -addr :9000 -lease 2m -max-attempts 5
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"hplsim/internal/sim"
	"hplsim/internal/simq"
	"hplsim/internal/simqd"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8347", "listen address")
		dir      = flag.String("dir", "", "state directory: journal + artifact spool (required)")
		lease    = flag.Duration("lease", 0, "worker lease duration (0 = default 30s)")
		attempts = flag.Int("max-attempts", 0, "attempts before a job fails terminally (0 = default 3)")
		backoff  = flag.Duration("backoff", 0, "base retry backoff, doubled per attempt (0 = default 1s)")
		cap      = flag.Duration("backoff-cap", 0, "retry backoff ceiling (0 = default 60s)")
		aging    = flag.Float64("aging-rate", 0, "queue aging: priority points per queued second (0 = default)")
		quota    = flag.Int("quota", 0, "per-client in-flight job cap (0 = default 16)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: simqd -dir DIR [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "simqd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := simq.Config{
		LeaseFor:       sim.Duration(*lease),
		MaxAttempts:    *attempts,
		BackoffBase:    sim.Duration(*backoff),
		BackoffCap:     sim.Duration(*cap),
		AgingRate:      *aging,
		QuotaPerClient: *quota,
	}

	srv, err := simqd.Open(*dir, cfg, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simqd: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	st := srv.Stats()
	fmt.Printf("simqd: serving on %s, state in %s (recovered seq %d: %d pending, %d leased, %d done, %d failed)\n",
		*addr, *dir, st.Seq, st.Pending, st.Leased, st.Done, st.Failed)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "simqd: %v\n", err)
		os.Exit(1)
	}
}
