// Command hplsim runs a single measured experiment: one NAS configuration
// under one scheduler scheme, with the full measurement chain
// (perf -> chrt -> mpiexec -> ranks) on a freshly booted simulated node.
//
// Usage:
//
//	hplsim -bench ep -class A -sched hpl [-reps 10] [-seed 1] [-hz 250]
//	       [-topo 2x2x2] [-no-daemons] [-no-storms] [-spin 20ms] [-v]
//
// Schemes: std (CFS), rt (SCHED_RR), hpl (the paper's scheduler),
// hpl-dynamic and hpl-naive (ablations), pinned (static affinity),
// nice (nice -20).
package main

import (
	"flag"
	"fmt"
	"os"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/sim"
	"hplsim/internal/stats"
	"hplsim/internal/topo"
	"hplsim/internal/walltime"
)

func parseScheme(s string) (experiments.Scheme, bool) {
	for _, sc := range experiments.Schemes() {
		if sc.String() == s {
			return sc, true
		}
	}
	return 0, false
}

func main() {
	bench := flag.String("bench", "ep", "NAS benchmark: cg, ep, ft, is, lu, mg")
	class := flag.String("class", "A", "NAS class: A or B")
	workload := flag.String("workload", "", "JSON file with a custom workload spec (overrides -bench/-class)")
	schedName := flag.String("sched", "hpl", "scheduler scheme: std, rt, hpl, hpl-dynamic, hpl-naive, pinned, nice")
	reps := flag.Int("reps", 10, "number of repetitions")
	seed := flag.Uint64("seed", 1, "base random seed")
	hz := flag.Int("hz", 0, "timer tick frequency (0 = default 250)")
	topoSpec := flag.String("topo", "", "machine topology as chips x cores x threads, e.g. 4x128x2 (default: the paper's 2x2x2)")
	noDaemons := flag.Bool("no-daemons", false, "disable the background daemon population")
	noStorms := flag.Bool("no-storms", false, "disable heavy maintenance storms")
	spin := flag.Duration("spin", 0, "MPI spin window before blocking (0 = default 20ms)")
	workers := flag.Int("workers", 0, "replication worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	ff := flag.Bool("ff", false, "fast-forward quiescent timer ticks (identical results, less host work)")
	shards := flag.Int("shards", 1, "shard each run's CPUs over host workers (needs -ff; identical results)")
	verbose := flag.Bool("v", false, "print every run")
	flag.Parse()

	var prof nas.Profile
	if *workload != "" {
		f, err := os.Open(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		prof, err = nas.ParseCustom(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		if len(*class) != 1 || (*class != "A" && *class != "B") {
			fmt.Fprintln(os.Stderr, "class must be A or B")
			os.Exit(2)
		}
		var err error
		prof, err = nas.Get(*bench, (*class)[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	scheme, ok := parseScheme(*schedName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schedName)
		os.Exit(2)
	}
	var machine topo.Topology
	if *topoSpec != "" {
		var err error
		machine, err = topo.Parse(*topoSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	opt := experiments.Options{
		Profile:       prof,
		Scheme:        scheme,
		Seed:          *seed,
		Topo:          machine,
		HZ:            *hz,
		NoDaemons:     *noDaemons,
		NoStorms:      *noStorms,
		SpinThreshold: sim.DurationOf(*spin),
		Workers:       *workers,
		FastForward:   *ff,
		Shards:        *shards,
	}

	sw := walltime.Start()
	rs := experiments.RunMany(opt, *reps)
	wall := sw.Elapsed()

	el := make([]float64, len(rs))
	mg := make([]float64, len(rs))
	cx := make([]float64, len(rs))
	for i, r := range rs {
		el[i], mg[i], cx[i] = r.ElapsedSec, r.Migrations(), r.CtxSwitches()
		if *verbose {
			fmt.Printf("run %3d: %8.3fs  migrations=%-6.0f ctxsw=%-7.0f completed=%v\n",
				i, r.ElapsedSec, mg[i], cx[i], r.Completed)
		}
	}
	t := stats.Summarize(el)
	m := stats.Summarize(mg)
	c := stats.Summarize(cx)

	fmt.Printf("%s under %s (%d runs, %.1fs host time)\n",
		prof.Name(), scheme, *reps, wall.Seconds())
	fmt.Printf("  time (s):    min=%.3f avg=%.3f max=%.3f var=%.2f%% p99=%.3f\n",
		t.Min, t.Mean, t.Max, t.VarPct(), t.P99)
	fmt.Printf("  migrations:  min=%.0f avg=%.1f max=%.0f\n", m.Min, m.Mean, m.Max)
	fmt.Printf("  ctx switch:  min=%.0f avg=%.1f max=%.0f\n", c.Min, c.Mean, c.Max)
	if *verbose && len(rs) > 0 {
		last := rs[len(rs)-1]
		st := last.Sched
		fmt.Printf("  schedstat (last run): balance calls=%d pulls=%d idle-pulls=%d idle-pushes=%d wake-preempts=%d cooldown-skips=%d\n",
			st.BalanceCalls, st.BalancePulls, st.IdlePulls, st.IdlePushes,
			st.WakePreempts, st.CooldownSkips)
		fmt.Printf("  energy (last run):    %s\n", last.Energy)
	}
}
