// Command ablations runs the design-choice studies from DESIGN.md:
//
//	A1  HPL with dynamic balancing re-enabled ("balancing tasks
//	    dynamically simply introduces too much OS noise")
//	A2  naive first-fit placement vs the topology-aware spread
//	A3-A5 the Section IV alternatives: standard CFS, nice -20, static
//	    pinning, and the RT scheduler, against HPL
//	A6  tick-frequency sweep (micro-noise / NETTICK discussion)
package main

import (
	"flag"
	"fmt"
	"os"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
)

func main() {
	which := flag.String("run", "all", "ablation to run: dynamic, placement, alternatives, tick, nettick, energy, sync, all")
	bench := flag.String("bench", "is", "NAS benchmark for per-profile ablations")
	class := flag.String("class", "A", "NAS class: A or B")
	reps := flag.Int("reps", 40, "repetitions per configuration")
	seed := flag.Uint64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "replication worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	prof, err := nas.Get(*bench, (*class)[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(name string) {
		switch name {
		case "dynamic":
			fmt.Print(experiments.FormatAblation(
				fmt.Sprintf("A1: dynamic balancing (%s)", prof.Name()),
				experiments.AblationDynamicBalance(prof, *reps, *seed, *workers)))
		case "placement":
			fmt.Print(experiments.FormatAblation(
				"A2: fork placement, 4 ranks of ep.A on 2x2x2 (SMT matters)",
				experiments.AblationPlacement(*reps, *seed, *workers)))
		case "alternatives":
			fmt.Print(experiments.FormatAblation(
				fmt.Sprintf("A3-A5: Section IV alternatives (%s)", prof.Name()),
				experiments.AblationAlternatives(prof, *reps, *seed, *workers)))
		case "tick":
			fmt.Print(experiments.FormatAblation(
				fmt.Sprintf("A6: tick frequency sweep (%s, HPL)", prof.Name()),
				experiments.AblationTick(prof, *reps, *seed, *workers)))
		case "nettick":
			fmt.Print(experiments.FormatAblation(
				fmt.Sprintf("A7: NETTICK adaptive tick (%s)", prof.Name()),
				experiments.AblationNettick(prof, *reps, *seed, *workers)))
		case "energy":
			fmt.Print(experiments.FormatEnergy(experiments.EnergyStudy(*seed)))
		case "sync":
			fmt.Print(experiments.FormatSyncStudy(experiments.SyncStudy(*reps, *seed, *workers)))
		default:
			fmt.Fprintf(os.Stderr, "unknown ablation %q\n", name)
			os.Exit(2)
		}
	}

	if *which == "all" {
		for _, n := range []string{"dynamic", "placement", "alternatives", "tick", "nettick", "energy", "sync"} {
			run(n)
			fmt.Println()
		}
		return
	}
	run(*which)
}
