// Command psq is the simulation-queue client: submit experiment payloads
// to a running simqd dispatcher, watch them, fetch their artifacts, and —
// with psq work — be the worker that runs them.
//
// Payloads are experiments JSON (see internal/experiments.Payload); the
// dispatcher treats them as opaque bytes whose artifact must be a pure
// function of them, so submitting the same payload twice (or retrying it
// after a worker crash) yields byte-identical results.
//
// Examples:
//
//	psq submit -client alice -name hpl-a job.json
//	echo '{"bench":"ft","class":"A","scheme":"hpl","seed":7}' | psq submit -client alice -name ft -
//	psq status 3
//	psq wait 3 && psq result 3 > artifact.jsonl
//	psq work -name worker-1            (run jobs until interrupted)
//	psq work -name worker-1 -once      (drain the queue, then exit)
//	psq drain
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"hplsim/internal/simq"
	"hplsim/internal/simqd"
)

const defaultAddr = "http://127.0.0.1:8347"

func usage() {
	fmt.Fprintln(os.Stderr, `usage: psq <command> [flags] [args]

commands:
  submit [-client C] [-name N] [-prio P] <payload.json|->   queue one job, print its ID
  status <job>                                              print one job's state
  jobs                                                      list every job
  wait [-poll D] <job>                                      block until the job finishes
  result <job>                                              write the artifact to stdout
  cancel <job>                                              withdraw a pending or leased job
  work [-name W] [-poll D] [-once]                          claim and run jobs
  drain                                                     stop intake, let in-flight finish
  stats                                                     print queue aggregates

every command accepts -addr (default `+defaultAddr+`)`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet("psq "+cmd, flag.ExitOnError)
	addr := fs.String("addr", defaultAddr, "dispatcher base URL")

	var err error
	switch cmd {
	case "submit":
		client := fs.String("client", "psq", "client identity (quota accounting)")
		name := fs.String("name", "", "job name (default: the payload file name)")
		prio := fs.Int("prio", 0, "priority; higher runs earlier, aging catches the rest up")
		fs.Parse(args)
		err = submit(simqd.NewClient(*addr), *client, *name, *prio, fs.Args())
	case "status":
		fs.Parse(args)
		err = status(simqd.NewClient(*addr), fs.Args())
	case "jobs":
		fs.Parse(args)
		err = jobs(simqd.NewClient(*addr))
	case "wait":
		poll := fs.Duration("poll", 500*time.Millisecond, "status poll interval")
		fs.Parse(args)
		err = wait(simqd.NewClient(*addr), *poll, fs.Args())
	case "result":
		fs.Parse(args)
		err = result(simqd.NewClient(*addr), fs.Args())
	case "cancel":
		fs.Parse(args)
		err = cancel(simqd.NewClient(*addr), fs.Args())
	case "work":
		name := fs.String("name", "psq-worker", "worker identity on claims and reports")
		poll := fs.Duration("poll", time.Second, "claim poll interval when the queue is idle")
		once := fs.Bool("once", false, "drain the queue and exit instead of polling forever")
		fs.Parse(args)
		err = work(simqd.NewClient(*addr), *name, *poll, *once)
	case "drain":
		fs.Parse(args)
		err = drain(simqd.NewClient(*addr))
	case "stats":
		fs.Parse(args)
		err = stats(simqd.NewClient(*addr))
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "psq %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func jobArg(args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("expected exactly one job ID argument")
	}
	return strconv.Atoi(args[0])
}

func submit(c *simqd.Client, client, name string, prio int, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one payload file argument (- for stdin)")
	}
	var payload []byte
	var err error
	if args[0] == "-" {
		payload, err = io.ReadAll(os.Stdin)
		if name == "" {
			name = "stdin"
		}
	} else {
		payload, err = os.ReadFile(args[0])
		if name == "" {
			name = args[0]
		}
	}
	if err != nil {
		return err
	}
	job, err := c.Submit(client, name, prio, string(payload))
	if err != nil {
		return err
	}
	fmt.Println(job)
	return nil
}

func status(c *simqd.Client, args []string) error {
	job, err := jobArg(args)
	if err != nil {
		return err
	}
	v, err := c.Status(job)
	if err != nil {
		return err
	}
	printJob(v)
	return nil
}

func jobs(c *simqd.Client) error {
	vs, err := c.Jobs()
	if err != nil {
		return err
	}
	for _, v := range vs {
		printJob(v)
	}
	return nil
}

func printJob(v simq.JobView) {
	line := fmt.Sprintf("%d\t%s\t%s/%s\tattempt %d", v.ID, v.State, v.Client, v.Name, v.Attempt)
	if v.Worker != "" {
		line += "\tworker " + v.Worker
	}
	if v.FP != "" {
		line += "\tfp " + v.FP
	}
	if v.Err != "" {
		line += "\terr " + v.Err
	}
	fmt.Println(line)
}

func wait(c *simqd.Client, poll time.Duration, args []string) error {
	job, err := jobArg(args)
	if err != nil {
		return err
	}
	v, err := c.Wait(job, poll)
	if err != nil {
		return err
	}
	printJob(v)
	if v.State != "done" {
		return fmt.Errorf("job %d finished %s", job, v.State)
	}
	return nil
}

func result(c *simqd.Client, args []string) error {
	job, err := jobArg(args)
	if err != nil {
		return err
	}
	b, err := c.Result(job)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

func cancel(c *simqd.Client, args []string) error {
	job, err := jobArg(args)
	if err != nil {
		return err
	}
	return c.Cancel(job)
}

func work(c *simqd.Client, name string, poll time.Duration, once bool) error {
	w := &simqd.Worker{Client: c, Name: name}
	if once {
		n, err := w.DrainQueue()
		fmt.Fprintf(os.Stderr, "psq work: processed %d job(s)\n", n)
		return err
	}
	return w.Serve(poll)
}

func drain(c *simqd.Client) error {
	st, err := c.Drain()
	if err != nil {
		return err
	}
	fmt.Printf("draining; %d pending, %d leased, quiesced=%v\n", st.Pending, st.Leased, st.Quiesced)
	return nil
}

func stats(c *simqd.Client) error {
	st, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("seq %d: %d pending, %d leased, %d done, %d failed, %d canceled\n",
		st.Seq, st.Pending, st.Leased, st.Done, st.Failed, st.Canceled)
	fmt.Printf("rejected %d, duplicates %d, fp-mismatches %d, stale-reports %d, draining=%v quiesced=%v\n",
		st.Rejected, st.Duplicates, st.FPMismatches, st.StaleReports, st.Draining, st.Quiesced)
	return nil
}
