// Command nastables regenerates the paper's Tables Ia, Ib, and II: scheduler
// OS noise (CPU migrations, context switches) and execution-time statistics
// for the NAS Parallel Benchmarks under the standard Linux scheduler and
// under HPL.
//
// Usage:
//
//	nastables -table 1a|1b|2|sched|all [-reps 1000] [-seed 1] [-topo 2x2x2]
//
// Table "sched" is not from the paper: it reports the schedstat view of one
// run per scheme — total and worst per-rank scheduling latency, involuntary
// preemptions, and migrations (see internal/schedstat).
//
// The paper uses 1000 repetitions per configuration; the default here is
// 200, which reproduces every min/avg trend and most tails in seconds of
// wall time. Raise -reps for the full distributions.
package main

import (
	"flag"
	"fmt"
	"os"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/topo"
)

func main() {
	table := flag.String("table", "all", "which table to produce: 1a, 1b, 2, sched, all")
	reps := flag.Int("reps", 200, "repetitions per configuration (paper: 1000)")
	seed := flag.Uint64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "replication worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	bench := flag.String("bench", "is", "NAS benchmark for -table sched")
	class := flag.String("class", "A", "NAS class for -table sched")
	topoSpec := flag.String("topo", "", "machine topology as chips x cores x threads, e.g. 4x128x2 (default: the paper's 2x2x2)")
	ff := flag.Bool("ff", false, "fast-forward quiescent timer ticks (identical tables, less host work)")
	shards := flag.Int("shards", 1, "shard each run's CPUs over host workers (needs -ff; identical tables)")
	flag.Parse()

	var machine topo.Topology
	if *topoSpec != "" {
		var err error
		machine, err = topo.Parse(*topoSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	ex := experiments.Exec{Workers: *workers, FastForward: *ff, Shards: *shards}
	switch *table {
	case "sched":
		prof, err := nas.Get(*bench, (*class)[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(experiments.FormatTableSchedstat(prof.Name(),
			experiments.TableSchedstat(prof,
				[]experiments.Scheme{experiments.Std, experiments.HPL}, *seed, machine, ex)))
	case "1a":
		fmt.Print(experiments.FormatTableI(
			"Table Ia: Scheduler OS noise for NAS (standard Linux)",
			experiments.TableI(experiments.Std, *reps, *seed, ex, machine)))
	case "1b":
		fmt.Print(experiments.FormatTableI(
			"Table Ib: Scheduler OS noise for NAS (HPL)",
			experiments.TableI(experiments.HPL, *reps, *seed, ex, machine)))
	case "2":
		fmt.Print(experiments.FormatTableII(experiments.TableII(*reps, *seed, ex, machine)))
	case "all":
		fmt.Print(experiments.FormatTableI(
			"Table Ia: Scheduler OS noise for NAS (standard Linux)",
			experiments.TableI(experiments.Std, *reps, *seed, ex, machine)))
		fmt.Println()
		fmt.Print(experiments.FormatTableI(
			"Table Ib: Scheduler OS noise for NAS (HPL)",
			experiments.TableI(experiments.HPL, *reps, *seed, ex, machine)))
		fmt.Println()
		fmt.Print(experiments.FormatTableII(experiments.TableII(*reps, *seed, ex, machine)))
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q (want 1a, 1b, 2, sched, all)\n", *table)
		os.Exit(2)
	}
}
