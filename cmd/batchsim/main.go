// Command batchsim runs the two-level scheduling simulation: a cluster of
// simulated nodes fed by a batch queue with a pluggable policy (FCFS, EASY
// backfill, conservative backfill, priority aging), under a synthetic
// arrival trace (Poisson, diurnal, or bursty storms).
//
// The node model is either ideal ("exact": every job runs in its noise-free
// time) or calibrated from full single-node kernel runs ("std"/"hpl": per-run
// slowdowns of the chosen NAS profile under that kernel scheme, drawn with
// the max-of-nodes order statistic — the paper's barrier argument applied at
// cluster scale). Model "both" contrasts std and hpl under identical traces:
// the cluster-level comparison the paper's single-node testbed could not
// make.
//
// Output is a deterministic pure function of the flags: two identical
// invocations produce byte-identical output (no timestamps, no host state).
//
// Examples:
//
//	batchsim -nodes 16 -policy easy -model both
//	batchsim -nodes 64 -policy fcfs,easy -model hpl -seeds 1,2,3,4
//	batchsim -nodes 8 -policy conservative -model exact -trace bursty -jobs 60
//	batchsim -trace-out trace.json -jobs 20            (dump the trace, run nothing)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hplsim/internal/batch"
	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/sim"
	"hplsim/internal/topo"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 16, "cluster size in nodes")
		nodeTopo  = flag.String("node-topo", "", "per-node topology as chips x cores x threads (default: the paper's 2x2x2); its CPU count is the node's rank capacity")
		policies  = flag.String("policy", "easy", "comma-separated batch policies: fcfs, easy, conservative, aging")
		agingRate = flag.Float64("aging-rate", 0.05, "aging policy: priority points per second of wait")
		model     = flag.String("model", "exact", "node model: exact, std, hpl, or both")
		bench     = flag.String("bench", "is", "NAS benchmark behind the calibrated node models")
		class     = flag.String("class", "A", "NAS class behind the calibrated node models")
		calibReps = flag.Int("calib-reps", 4, "kernel runs behind each calibrated node model")
		traceKind = flag.String("trace", batch.TracePoisson, "arrival process: poisson, diurnal, bursty")
		jobs      = flag.Int("jobs", 40, "jobs per trace")
		seeds     = flag.String("seeds", "1", "comma-separated trace seeds; one table row per (seed, policy, model)")
		seed      = flag.Uint64("seed", 7, "seed of the calibration kernel runs")
		workers   = flag.Int("workers", 0, "calibration worker pool (0 = GOMAXPROCS; results are worker-count independent)")
		shards    = flag.Int("shards", 1, "shard each calibration kernel run over host workers (results are shard-count independent)")
		traceOut  = flag.String("trace-out", "", "write the first seed's generated trace as JSON and exit")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: batchsim [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()

	machine := topo.POWER6()
	if *nodeTopo != "" {
		var err error
		machine, err = topo.Parse(*nodeTopo)
		if err != nil {
			fatal(2, err)
		}
	}
	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fatal(2, err)
	}
	policyList := strings.Split(*policies, ",")
	for _, p := range policyList {
		if _, err := batch.NewPolicy(p, *agingRate); err != nil {
			fatal(2, err)
		}
	}

	prof, err := nas.Get(*bench, (*class)[0])
	if err != nil {
		fatal(2, err)
	}

	trace := batch.TraceConfig{
		Kind:             *traceKind,
		Jobs:             *jobs,
		MeanInterarrival: 45 * sim.Second,
		MaxRanks:         *nodes * machine.NumCPUs() / 2,
		MeanWork:         300 * sim.Second,
		WorkSpread:       4,
		EstFactor:        2.0, // honest upper bound for any calibrated model
		EstNoise:         0.5,
		PrioLevels:       4,
		Day:              sim.Duration(*jobs) * 45 * sim.Second,
		Burst:            8,
	}
	if trace.MaxRanks < 1 {
		trace.MaxRanks = 1
	}
	if err := trace.Validate(); err != nil {
		fatal(2, err)
	}

	if *traceOut != "" {
		jobsList, err := batch.GenerateTrace(trace, sim.NewRNG(seedList[0]).Split(0xbeef))
		if err != nil {
			fatal(1, err)
		}
		data, err := batch.MarshalTrace(jobsList)
		if err != nil {
			fatal(1, err)
		}
		if err := writeOut(*traceOut, data); err != nil {
			fatal(1, err)
		}
		return
	}

	var schemes []experiments.Scheme
	switch *model {
	case "exact":
		schemes = nil
	case "std":
		schemes = []experiments.Scheme{experiments.Std}
	case "hpl":
		schemes = []experiments.Scheme{experiments.HPL}
	case "both":
		schemes = []experiments.Scheme{experiments.Std, experiments.HPL}
	default:
		fatal(2, fmt.Errorf("unknown model %q (want exact, std, hpl, both)", *model))
	}

	if schemes == nil {
		runExact(*nodes, machine, policyList, *agingRate, seedList, trace)
		return
	}

	rows, err := experiments.BatchStudy(experiments.BatchStudyOptions{
		Profile:   prof,
		Machine:   machine,
		Nodes:     *nodes,
		CalibReps: *calibReps,
		Seeds:     seedList,
		Policies:  policyList,
		Schemes:   schemes,
		Trace:     trace,
		Seed:      *seed,
		Workers:   *workers,
		Shards:    *shards,
	})
	if err != nil {
		fatal(1, err)
	}
	fmt.Print(experiments.FormatBatchStudy(rows))
}

// runExact simulates the ideal node model: pure queueing, no kernel noise.
func runExact(nodes int, machine topo.Topology, policies []string, agingRate float64, seeds []uint64, tc batch.TraceConfig) {
	cluster := batch.Cluster{Nodes: nodes, RanksPerNode: machine.NumCPUs()}
	var rows []experiments.BatchStudyRow
	for _, seed := range seeds {
		trace, err := batch.GenerateTrace(tc, sim.NewRNG(seed).Split(0xbeef))
		if err != nil {
			fatal(1, err)
		}
		for _, name := range policies {
			policy, err := batch.NewPolicy(name, agingRate)
			if err != nil {
				fatal(2, err)
			}
			res := batch.Simulate(batch.Config{
				Cluster: cluster, Policy: policy, Model: batch.ExactModel{},
				Jobs: trace, Seed: seed,
			})
			rows = append(rows, experiments.BatchStudyRow{
				Seed: seed, Policy: name, Scheme: "exact",
				Makespan:    res.Makespan.Seconds(),
				Utilization: res.Utilization,
				MeanBSLD:    res.MeanBoundedSlowdown,
				MeanWaitSec: res.MeanWait.Seconds(),
				Backfills:   res.Backfills,
				Fingerprint: res.Fingerprint,
			})
		}
	}
	fmt.Print(experiments.FormatBatchStudy(rows))
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds")
	}
	return out, nil
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(code int, err error) {
	fmt.Fprintln(os.Stderr, "batchsim:", err)
	os.Exit(code)
}
