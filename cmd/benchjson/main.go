// Command benchjson runs the engine and replication-harness benchmarks and
// emits a machine-readable trajectory file, so successive commits can be
// compared without scraping `go test -bench` text:
//
//	benchjson [-o BENCH_parallel.json] [-reps 32] [-bench ep -class A]
//
// The report carries the engine hot-path microbenchmarks (ns/op, allocs/op
// — the free-list contract is allocs/op == 0) and the RunMany wall-clock at
// 1, 2, 4, and GOMAXPROCS workers with the speedup over sequential.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"hplsim/internal/batch"
	"hplsim/internal/experiments"
	"hplsim/internal/kernel"
	"hplsim/internal/nas"
	"hplsim/internal/schedstat"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
	"hplsim/internal/walltime"
)

// EngineBench is one microbenchmark reading.
type EngineBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// RunManyBench is the replication harness at one worker count.
type RunManyBench struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_sequential"`
}

// Report is the whole trajectory record.
type Report struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	GoVersion  string         `json:"go_version"`
	Engine     []EngineBench  `json:"engine"`
	Profile    string         `json:"profile"`
	Scheme     string         `json:"scheme"`
	Reps       int            `json:"reps"`
	RunMany    []RunManyBench `json:"run_many"`
}

// FastForwardBench is one row of the std-vs-fast-forward comparison: the
// replication harness run sequentially in one tick mode. The engine-traffic
// counters are from a single representative replication (they are
// deterministic per seed); the wall clock covers all reps.
type FastForwardBench struct {
	Scheme           string  `json:"scheme"`
	HZ               int     `json:"hz"`
	FastForward      bool    `json:"fast_forward"`
	Seconds          float64 `json:"seconds"`
	EventsDispatched uint64  `json:"events_dispatched"`
	LaneFires        uint64  `json:"lane_fires"`
	TicksCoalesced   uint64  `json:"ticks_coalesced"`
	EventsPerVirtSec float64 `json:"events_per_virtual_sec"`
	Speedup          float64 `json:"speedup_vs_std"`
}

// FFReport is the BENCH_fastforward.json record: the same replication
// benchmark with ticks stepped versus fast-forwarded, across schemes and
// tick rates. Host context rides along because the absolute seconds (and
// the flat run_many curve in the sibling report) are meaningless without
// knowing how many cores backed them.
type FFReport struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	GoVersion  string             `json:"go_version"`
	Profile    string             `json:"profile"`
	Ranks      int                `json:"ranks"`
	Reps       int                `json:"reps"`
	Rows       []FastForwardBench `json:"rows"`
}

// ScaleBench is one (topology, implementation) cell of the wide-node
// scaling study: the same HPL replication workload on a growing machine,
// with the kernel's optimized hot paths versus its naive reference scans
// (kernel.Config.Naive). Both runs replay identical seeds and produce
// identical traces; the ratio is pure host cost.
type ScaleBench struct {
	Topo             string  `json:"topo"`
	CPUs             int     `json:"cpus"`
	Naive            bool    `json:"naive"`
	Seconds          float64 `json:"seconds"`
	EventsDispatched uint64  `json:"events_dispatched"`
	LaneFires        uint64  `json:"lane_fires"`
	VirtualSec       float64 `json:"virtual_sec"`
	EventsPerSec     float64 `json:"events_per_host_sec"`
	NsPerSimMs       float64 `json:"ns_per_simulated_ms"`
	SpeedupVsNaive   float64 `json:"speedup_vs_naive"`
}

// ScaleReport is the BENCH_scale.json record: events/sec and ns per
// simulated millisecond across node widths, naive versus optimized.
type ScaleReport struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	GoVersion  string       `json:"go_version"`
	Profile    string       `json:"profile"`
	Scheme     string       `json:"scheme"`
	Reps       int          `json:"reps"`
	Rows       []ScaleBench `json:"rows"`
}

// BatchBench is one cluster-size row of the batch-layer throughput
// study: one EASY-backfill simulation of a Poisson trace on the exact
// node model, reported as dispatched jobs per host second. The decision
// loop re-plans the whole queue on every completion and arrival, so this
// is the scheduler's own cost, not the simulated workload's.
type BatchBench struct {
	Nodes      int     `json:"nodes"`
	Jobs       int     `json:"jobs"`
	Dispatched int     `json:"dispatched"`
	Decisions  int     `json:"decisions"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_host_sec"`
}

// BatchReport is the BENCH_batch.json record.
type BatchReport struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	GoVersion  string       `json:"go_version"`
	Policy     string       `json:"policy"`
	Model      string       `json:"model"`
	Rows       []BatchBench `json:"rows"`
}

// ShardBench is one (topology, shard-count) cell of the conservative
// parallel-sharding study: the same fast-forwarded HPL replication
// workload with the run's CPUs partitioned over 1..chips host workers.
// Every cell replays identical seeds and produces bitwise-identical
// traces (the schedcheck shard oracle enforces it); the ratio is pure
// host cost. ShardPhases counts catch-ups that actually fanned out — a
// zero means the parallel path never ran and the row is vacuous.
type ShardBench struct {
	Topo             string  `json:"topo"`
	CPUs             int     `json:"cpus"`
	Shards           int     `json:"shards"`
	Seconds          float64 `json:"seconds"`
	ShardPhases      uint64  `json:"shard_phases"`
	EventsDispatched uint64  `json:"events_dispatched"`
	LaneFires        uint64  `json:"lane_fires"`
	EventsPerSec     float64 `json:"events_per_host_sec"`
	SpeedupVsSeq     float64 `json:"speedup_vs_sequential"`
}

// ShardCalibBench is the batch-layer row: one BatchCalibrate (the
// cluster study's node-model calibration, already fast-forwarded)
// sequential versus sharded.
type ShardCalibBench struct {
	Topo         string  `json:"topo"`
	Reps         int     `json:"reps"`
	Shards       int     `json:"shards"`
	SecondsSeq   float64 `json:"seconds_sequential"`
	SecondsShard float64 `json:"seconds_sharded"`
	SpeedupVsSeq float64 `json:"speedup_vs_sequential"`
}

// ShardReport is the BENCH_shard.json record: events/sec versus shard
// count. The host context matters more here than anywhere else — on a
// single-core host the gang's workers time-slice one core, so the
// speedup column measures coordination overhead, not parallelism.
// The grain is pinned to 1 (fan out every eligible catch-up) so the
// parallel path dominates the measurement instead of being amortized
// away by the default threshold.
type ShardReport struct {
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	GoVersion  string          `json:"go_version"`
	Profile    string          `json:"profile"`
	Scheme     string          `json:"scheme"`
	Reps       int             `json:"reps"`
	Rows       []ShardBench    `json:"rows"`
	Calib      ShardCalibBench `json:"calibration"`
}

// SchedstatBench is one tracer-mode row of the observability-overhead
// comparison: the same sequential replication workload with no tracer,
// with the streaming JSONL writer, and with the accounting ledger.
type SchedstatBench struct {
	Mode        string  `json:"mode"`
	Seconds     float64 `json:"seconds"`
	OverheadPct float64 `json:"overhead_pct_vs_none"`
}

// SchedstatReport is the BENCH_schedstat.json record: the writer hot-path
// microbenchmarks (the encode buffer is reused, so allocs/op must be 0)
// plus the end-to-end cost of leaving a tracer attached.
type SchedstatReport struct {
	GoMaxProcs int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	GoVersion  string           `json:"go_version"`
	Profile    string           `json:"profile"`
	Scheme     string           `json:"scheme"`
	Reps       int              `json:"reps"`
	Writer     []EngineBench    `json:"writer"`
	Modes      []SchedstatBench `json:"modes"`
}

func engineBench(name string, fn func(b *testing.B)) EngineBench {
	r := testing.Benchmark(fn)
	return EngineBench{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func main() {
	out := flag.String("o", "BENCH_parallel.json", "output file ('' to skip, '-' for stdout)")
	ffOut := flag.String("ff-out", "BENCH_fastforward.json",
		"fast-forward comparison output file ('' to skip, '-' for stdout)")
	statOut := flag.String("stat-out", "BENCH_schedstat.json",
		"schedstat tracer-overhead output file ('' to skip, '-' for stdout)")
	scaleOut := flag.String("scale-out", "BENCH_scale.json",
		"wide-node scaling output file ('' to skip, '-' for stdout)")
	batchOut := flag.String("batch-out", "BENCH_batch.json",
		"batch-layer throughput output file ('' to skip, '-' for stdout)")
	shardOut := flag.String("shard-out", "BENCH_shard.json",
		"parallel-sharding output file ('' to skip, '-' for stdout)")
	shardTopos := flag.String("shard-topos", "2x24x2,4x16x2",
		"comma-separated topologies for the sharding study")
	shardReps := flag.Int("shard-reps", 8, "replications per sharding-study cell")
	batchJobs := flag.Int("batch-jobs", 2000, "jobs per batch throughput measurement")
	scaleTopos := flag.String("scale-topos", "2x2x2,2x16x2,2x64x2,4x128x2",
		"comma-separated topologies for the scaling study")
	scaleReps := flag.Int("scale-reps", 16, "replications per scaling-study cell")
	reps := flag.Int("reps", 32, "replications per worker-count measurement")
	bench := flag.String("bench", "ep", "NAS benchmark for the RunMany measurement")
	class := flag.String("class", "A", "NAS class: A or B")
	flag.Parse()

	if *class == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -class must be A or B")
		os.Exit(2)
	}
	prof, err := nas.Get(*bench, (*class)[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Profile:    prof.Name(),
		Scheme:     experiments.Std.String(),
		Reps:       *reps,
	}

	// Engine hot paths, with allocation accounting: the steady-state
	// After/Step cycle and the deep-queue churn pattern.
	rep.Engine = append(rep.Engine,
		engineBench("ScheduleDispatch", func(b *testing.B) {
			e := sim.NewEngine()
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(sim.Millisecond, fn)
				e.Step()
			}
		}),
		engineBench("HeapChurn1024", func(b *testing.B) {
			e := sim.NewEngine()
			fn := func() {}
			for i := 0; i < 1024; i++ {
				e.After(sim.Duration(i)*sim.Microsecond, fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(1100*sim.Microsecond, fn)
				e.Step()
			}
		}),
	)

	// The replication harness at growing widths. Identical seeds at every
	// width, so the work is identical and the ratio is pure scheduling.
	opt := experiments.Options{Profile: prof, Scheme: experiments.Std, Seed: 1}
	widths := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		widths = append(widths, g)
	}
	var seqSec float64
	for _, w := range widths {
		sw := walltime.Start()
		experiments.RunManyOpt(opt, *reps, w)
		sec := sw.Seconds()
		if w == 1 {
			seqSec = sec
		}
		speedup := seqSec / sec
		if math.IsNaN(speedup) || math.IsInf(speedup, 0) {
			speedup = 0
		}
		rep.RunMany = append(rep.RunMany, RunManyBench{Workers: w, Seconds: sec, Speedup: speedup})
		fmt.Fprintf(os.Stderr, "run_many workers=%-2d %7.3fs  speedup=%.2fx\n", w, sec, speedup)
	}

	if *out != "" {
		writeJSON(*out, rep)
	}

	if *ffOut != "" {
		runFastForward(*ffOut, prof, *reps)
	}
	if *statOut != "" {
		runSchedstat(*statOut, prof, *reps)
	}
	if *scaleOut != "" {
		runScale(*scaleOut, prof, *scaleTopos, *scaleReps)
	}
	if *batchOut != "" {
		runBatch(*batchOut, *batchJobs)
	}
	if *shardOut != "" {
		runShard(*shardOut, prof, *shardTopos, *shardReps)
	}
}

func runShard(out string, prof nas.Profile, topos string, reps int) {
	shardRep := ShardReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Profile:    prof.Name(),
		Scheme:     experiments.HPL.String(),
		Reps:       reps,
	}
	// Grain 1 fans out every eligible catch-up, so the sharded replay path
	// carries the run instead of firing only past the default threshold.
	// Shard counts sweep powers of two up to the chip count (shards are
	// chip-aligned, so chips is the ceiling).
	for _, spec := range strings.Split(topos, ",") {
		machine, err := topo.Parse(strings.TrimSpace(spec))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var seqSec float64
		for s := 1; s <= machine.Chips; s *= 2 {
			o := experiments.Options{
				Profile: prof, Scheme: experiments.HPL, Seed: 1,
				Topo: machine, FastForward: true, Shards: s, ShardGrain: 1,
			}
			sw := walltime.Start()
			experiments.RunManyOpt(o, reps, 1)
			sec := sw.Seconds()
			if s == 1 {
				seqSec = sec
			}
			speedup := seqSec / sec
			if math.IsNaN(speedup) || math.IsInf(speedup, 0) {
				speedup = 0
			}
			probe := experiments.Run(o)
			row := ShardBench{
				Topo:             strings.TrimSpace(spec),
				CPUs:             machine.NumCPUs(),
				Shards:           s,
				Seconds:          sec,
				ShardPhases:      probe.ShardPhases,
				EventsDispatched: probe.EventsDispatched,
				LaneFires:        probe.LaneFires,
				SpeedupVsSeq:     speedup,
			}
			if sec > 0 {
				row.EventsPerSec = float64(probe.EventsDispatched+probe.LaneFires) * float64(reps) / sec
			}
			shardRep.Rows = append(shardRep.Rows, row)
			fmt.Fprintf(os.Stderr, "shard topo=%-8s shards=%-2d %7.3fs  phases=%-6d speedup=%.2fx\n",
				row.Topo, s, sec, row.ShardPhases, speedup)
		}
	}
	// The batch-layer consumer: one node-model calibration (already
	// fast-forwarded, the shards knob's natural production call site),
	// sequential versus sharded at the chip count. The models are
	// identical by construction; only the wall clock differs.
	calibTopo := "2x24x2"
	machine, err := topo.Parse(calibTopo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	calibReps := 4
	sw := walltime.Start()
	if _, err := experiments.BatchCalibrate(prof, experiments.HPL, calibReps, 7, machine, 1, 1); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	seq := sw.Seconds()
	sw = walltime.Start()
	if _, err := experiments.BatchCalibrate(prof, experiments.HPL, calibReps, 7, machine, 1, machine.Chips); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	shd := sw.Seconds()
	speedup := seq / shd
	if math.IsNaN(speedup) || math.IsInf(speedup, 0) {
		speedup = 0
	}
	shardRep.Calib = ShardCalibBench{
		Topo: calibTopo, Reps: calibReps, Shards: machine.Chips,
		SecondsSeq: seq, SecondsShard: shd, SpeedupVsSeq: speedup,
	}
	fmt.Fprintf(os.Stderr, "shard calib topo=%s shards=%d seq=%.3fs sharded=%.3fs speedup=%.2fx\n",
		calibTopo, machine.Chips, seq, shd, speedup)
	writeJSON(out, shardRep)
}

func runBatch(out string, jobs int) {
	batchRep := BatchReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Policy:     "easy",
		Model:      "exact",
	}
	// EASY backfill over a long Poisson trace at the two cluster widths the
	// two-level study targets. The exact node model removes kernel-run cost
	// from the measurement: what is left is queue management, reservation
	// planning, and the backfill scan per decision point.
	for _, nodes := range []int{64, 256} {
		tc := batch.TraceConfig{
			Kind:             batch.TracePoisson,
			Jobs:             jobs,
			MeanInterarrival: 45 * sim.Second,
			MaxRanks:         nodes * 4,
			MeanWork:         300 * sim.Second,
			WorkSpread:       4,
			EstFactor:        1.5,
			EstNoise:         0.3,
			PrioLevels:       1,
		}
		trace, err := batch.GenerateTrace(tc, sim.NewRNG(1).Split(0xbeef))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg := batch.Config{
			Cluster: batch.Cluster{Nodes: nodes, RanksPerNode: 8},
			Policy:  batch.EASY{},
			Model:   batch.ExactModel{},
			Jobs:    trace,
			Seed:    1,
		}
		sw := walltime.Start()
		res := batch.Simulate(cfg)
		sec := sw.Seconds()
		row := BatchBench{
			Nodes:      nodes,
			Jobs:       jobs,
			Dispatched: res.Dispatched,
			Decisions:  res.Decisions,
			Seconds:    sec,
		}
		if sec > 0 {
			row.JobsPerSec = float64(res.Dispatched) / sec
		}
		batchRep.Rows = append(batchRep.Rows, row)
		fmt.Fprintf(os.Stderr, "batch nodes=%-4d jobs=%-6d %7.3fs  jobs/sec=%.0f\n",
			nodes, jobs, sec, row.JobsPerSec)
	}
	writeJSON(out, batchRep)
}

func runScale(out string, prof nas.Profile, topos string, reps int) {
	scaleRep := ScaleReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Profile:    prof.Name(),
		Scheme:     experiments.HPL.String(),
		Reps:       reps,
	}
	// The same HPL replication workload on a growing node, naive scans
	// versus the word-scan hot paths, sequentially so the ratio is clean.
	// Fast-forward is on in both rows — it is the shipping configuration,
	// and the naive switch also covers its per-CPU catch-up loop. The event
	// counters come from a single representative run (deterministic per
	// seed); the wall clock covers all reps.
	for _, spec := range strings.Split(topos, ",") {
		machine, err := topo.Parse(strings.TrimSpace(spec))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var naiveSec float64
		for _, naive := range []bool{true, false} {
			o := experiments.Options{
				Profile: prof, Scheme: experiments.HPL, Seed: 1,
				Topo: machine, FastForward: true, Naive: naive,
			}
			sw := walltime.Start()
			experiments.RunManyOpt(o, reps, 1)
			sec := sw.Seconds()
			if naive {
				naiveSec = sec
			}
			speedup := naiveSec / sec
			if math.IsNaN(speedup) || math.IsInf(speedup, 0) {
				speedup = 0
			}
			probe := experiments.Run(o)
			virt := probe.VirtualSec * float64(reps)
			row := ScaleBench{
				Topo:             strings.TrimSpace(spec),
				CPUs:             machine.NumCPUs(),
				Naive:            naive,
				Seconds:          sec,
				EventsDispatched: probe.EventsDispatched,
				LaneFires:        probe.LaneFires,
				VirtualSec:       probe.VirtualSec,
				SpeedupVsNaive:   speedup,
			}
			if sec > 0 {
				row.EventsPerSec = float64(probe.EventsDispatched+probe.LaneFires) * float64(reps) / sec
			}
			if virt > 0 {
				row.NsPerSimMs = sec * 1e9 / (virt * 1e3)
			}
			scaleRep.Rows = append(scaleRep.Rows, row)
			fmt.Fprintf(os.Stderr, "scale topo=%-8s cpus=%-5d naive=%-5v %7.3fs  ns/sim-ms=%-9.0f speedup=%.2fx\n",
				row.Topo, row.CPUs, naive, sec, row.NsPerSimMs, speedup)
		}
	}
	writeJSON(out, scaleRep)
}

func runFastForward(out string, prof nas.Profile, reps int) {
	ffRep := FFReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Profile:    prof.Name(),
		Ranks:      prof.Ranks,
		Reps:       reps,
	}
	// Std-versus-fast-forward on the sequential replication harness, per
	// scheme and tick rate: the saving is proportional to the tick share
	// of the event stream, so it grows with HZ and with the HPL scheme's
	// quieter queues (fewer heap events per virtual second). Both modes
	// replay identical seeds and, by the schedcheck equivalence oracle,
	// identical traces — the ratio is pure dispatch cost.
	for _, scheme := range []experiments.Scheme{experiments.Std, experiments.HPL} {
		for _, hz := range []int{250, 1000} {
			var stdSec float64
			for _, ff := range []bool{false, true} {
				o := experiments.Options{Profile: prof, Scheme: scheme, Seed: 1, HZ: hz, FastForward: ff}
				sw := walltime.Start()
				experiments.RunManyOpt(o, reps, 1)
				sec := sw.Seconds()
				if !ff {
					stdSec = sec
				}
				speedup := stdSec / sec
				if math.IsNaN(speedup) || math.IsInf(speedup, 0) {
					speedup = 0
				}
				probe := experiments.Run(o)
				ffRep.Rows = append(ffRep.Rows, FastForwardBench{
					Scheme:           scheme.String(),
					HZ:               hz,
					FastForward:      ff,
					Seconds:          sec,
					EventsDispatched: probe.EventsDispatched,
					LaneFires:        probe.LaneFires,
					TicksCoalesced:   probe.TicksCoalesced,
					EventsPerVirtSec: probe.EventsPerVirtualSec(),
					Speedup:          speedup,
				})
				fmt.Fprintf(os.Stderr, "fastforward scheme=%-3s hz=%-4d ff=%-5v %7.3fs  speedup=%.2fx\n",
					scheme, hz, ff, sec, speedup)
			}
		}
	}
	writeJSON(out, ffRep)
}

func runSchedstat(out string, prof nas.Profile, reps int) {
	statRep := SchedstatReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Profile:    prof.Name(),
		Scheme:     experiments.HPL.String(),
		Reps:       reps,
	}
	// The streaming writer's hot path: one canonical JSONL encode per trace
	// event into a reused buffer (allocs/op must stay 0), and the same
	// through the buffered Writer front end.
	swEv := schedstat.NewSwitchEvent(sim.Time(123456789), 3,
		&task.Task{ID: 17, Name: "rank3", State: task.Runnable},
		&task.Task{ID: 12, Name: "ksoftirqd"})
	statRep.Writer = append(statRep.Writer,
		engineBench("AppendJSONL", func(b *testing.B) {
			buf := make([]byte, 0, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = swEv.AppendJSONL(buf[:0])
			}
			_ = buf
		}),
		engineBench("WriterSwitch", func(b *testing.B) {
			w := schedstat.NewWriter(io.Discard)
			prev := &task.Task{ID: 17, Name: "rank3", State: task.Runnable}
			next := &task.Task{ID: 12, Name: "ksoftirqd"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Switch(sim.Time(i), 3, prev, next)
			}
		}),
	)
	// End-to-end tracer cost: identical sequential replications with no
	// tracer, with the JSONL stream going to io.Discard, and with the
	// accounting ledger. A fresh tracer per replication, as real use would.
	statModes := []struct {
		name   string
		tracer func() kernel.Tracer
	}{
		{"none", func() kernel.Tracer { return nil }},
		{"jsonl", func() kernel.Tracer { return schedstat.NewWriter(io.Discard) }},
		{"accounting", func() kernel.Tracer { return schedstat.NewAccounting() }},
	}
	var noneSec float64
	for _, m := range statModes {
		o := experiments.Options{Profile: prof, Scheme: experiments.HPL, Seed: 1}
		sw := walltime.Start()
		for r := 0; r < reps; r++ {
			o.Seed = uint64(r + 1)
			o.Tracer = m.tracer()
			experiments.Run(o)
		}
		sec := sw.Seconds()
		if m.name == "none" {
			noneSec = sec
		}
		overhead := 0.0
		if noneSec > 0 {
			overhead = 100 * (sec - noneSec) / noneSec
		}
		statRep.Modes = append(statRep.Modes, SchedstatBench{
			Mode: m.name, Seconds: sec, OverheadPct: overhead})
		fmt.Fprintf(os.Stderr, "schedstat mode=%-10s %7.3fs  overhead=%+.1f%%\n", m.name, sec, overhead)
	}
	writeJSON(out, statRep)
}

func writeJSON(path string, v any) {
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
