// Command benchjson runs the engine and replication-harness benchmarks and
// emits a machine-readable trajectory file, so successive commits can be
// compared without scraping `go test -bench` text:
//
//	benchjson [-o BENCH_parallel.json] [-reps 32] [-bench ep -class A]
//
// The report carries the engine hot-path microbenchmarks (ns/op, allocs/op
// — the free-list contract is allocs/op == 0) and the RunMany wall-clock at
// 1, 2, 4, and GOMAXPROCS workers with the speedup over sequential.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/sim"
	"hplsim/internal/walltime"
)

// EngineBench is one microbenchmark reading.
type EngineBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// RunManyBench is the replication harness at one worker count.
type RunManyBench struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_sequential"`
}

// Report is the whole trajectory record.
type Report struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	GoVersion  string         `json:"go_version"`
	Engine     []EngineBench  `json:"engine"`
	Profile    string         `json:"profile"`
	Scheme     string         `json:"scheme"`
	Reps       int            `json:"reps"`
	RunMany    []RunManyBench `json:"run_many"`
}

// FastForwardBench is one row of the std-vs-fast-forward comparison: the
// replication harness run sequentially in one tick mode. The engine-traffic
// counters are from a single representative replication (they are
// deterministic per seed); the wall clock covers all reps.
type FastForwardBench struct {
	Scheme           string  `json:"scheme"`
	HZ               int     `json:"hz"`
	FastForward      bool    `json:"fast_forward"`
	Seconds          float64 `json:"seconds"`
	EventsDispatched uint64  `json:"events_dispatched"`
	LaneFires        uint64  `json:"lane_fires"`
	TicksCoalesced   uint64  `json:"ticks_coalesced"`
	EventsPerVirtSec float64 `json:"events_per_virtual_sec"`
	Speedup          float64 `json:"speedup_vs_std"`
}

// FFReport is the BENCH_fastforward.json record: the same replication
// benchmark with ticks stepped versus fast-forwarded, across schemes and
// tick rates. Host context rides along because the absolute seconds (and
// the flat run_many curve in the sibling report) are meaningless without
// knowing how many cores backed them.
type FFReport struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	GoVersion  string             `json:"go_version"`
	Profile    string             `json:"profile"`
	Ranks      int                `json:"ranks"`
	Reps       int                `json:"reps"`
	Rows       []FastForwardBench `json:"rows"`
}

func engineBench(name string, fn func(b *testing.B)) EngineBench {
	r := testing.Benchmark(fn)
	return EngineBench{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func main() {
	out := flag.String("o", "BENCH_parallel.json", "output file ('-' for stdout)")
	ffOut := flag.String("ff-out", "BENCH_fastforward.json",
		"fast-forward comparison output file ('' to skip, '-' for stdout)")
	reps := flag.Int("reps", 32, "replications per worker-count measurement")
	bench := flag.String("bench", "ep", "NAS benchmark for the RunMany measurement")
	class := flag.String("class", "A", "NAS class: A or B")
	flag.Parse()

	if *class == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -class must be A or B")
		os.Exit(2)
	}
	prof, err := nas.Get(*bench, (*class)[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Profile:    prof.Name(),
		Scheme:     experiments.Std.String(),
		Reps:       *reps,
	}

	// Engine hot paths, with allocation accounting: the steady-state
	// After/Step cycle and the deep-queue churn pattern.
	rep.Engine = append(rep.Engine,
		engineBench("ScheduleDispatch", func(b *testing.B) {
			e := sim.NewEngine()
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(sim.Millisecond, fn)
				e.Step()
			}
		}),
		engineBench("HeapChurn1024", func(b *testing.B) {
			e := sim.NewEngine()
			fn := func() {}
			for i := 0; i < 1024; i++ {
				e.After(sim.Duration(i)*sim.Microsecond, fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(1100*sim.Microsecond, fn)
				e.Step()
			}
		}),
	)

	// The replication harness at growing widths. Identical seeds at every
	// width, so the work is identical and the ratio is pure scheduling.
	opt := experiments.Options{Profile: prof, Scheme: experiments.Std, Seed: 1}
	widths := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		widths = append(widths, g)
	}
	var seqSec float64
	for _, w := range widths {
		sw := walltime.Start()
		experiments.RunManyOpt(opt, *reps, w)
		sec := sw.Seconds()
		if w == 1 {
			seqSec = sec
		}
		speedup := seqSec / sec
		if math.IsNaN(speedup) || math.IsInf(speedup, 0) {
			speedup = 0
		}
		rep.RunMany = append(rep.RunMany, RunManyBench{Workers: w, Seconds: sec, Speedup: speedup})
		fmt.Fprintf(os.Stderr, "run_many workers=%-2d %7.3fs  speedup=%.2fx\n", w, sec, speedup)
	}

	writeJSON(*out, rep)

	if *ffOut == "" {
		return
	}
	ffRep := FFReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Profile:    prof.Name(),
		Ranks:      prof.Ranks,
		Reps:       *reps,
	}
	// Std-versus-fast-forward on the sequential replication harness, per
	// scheme and tick rate: the saving is proportional to the tick share
	// of the event stream, so it grows with HZ and with the HPL scheme's
	// quieter queues (fewer heap events per virtual second). Both modes
	// replay identical seeds and, by the schedcheck equivalence oracle,
	// identical traces — the ratio is pure dispatch cost.
	for _, scheme := range []experiments.Scheme{experiments.Std, experiments.HPL} {
		for _, hz := range []int{250, 1000} {
			var stdSec float64
			for _, ff := range []bool{false, true} {
				o := experiments.Options{Profile: prof, Scheme: scheme, Seed: 1, HZ: hz, FastForward: ff}
				sw := walltime.Start()
				experiments.RunManyOpt(o, *reps, 1)
				sec := sw.Seconds()
				if !ff {
					stdSec = sec
				}
				speedup := stdSec / sec
				if math.IsNaN(speedup) || math.IsInf(speedup, 0) {
					speedup = 0
				}
				probe := experiments.Run(o)
				ffRep.Rows = append(ffRep.Rows, FastForwardBench{
					Scheme:           scheme.String(),
					HZ:               hz,
					FastForward:      ff,
					Seconds:          sec,
					EventsDispatched: probe.EventsDispatched,
					LaneFires:        probe.LaneFires,
					TicksCoalesced:   probe.TicksCoalesced,
					EventsPerVirtSec: probe.EventsPerVirtualSec(),
					Speedup:          speedup,
				})
				fmt.Fprintf(os.Stderr, "fastforward scheme=%-3s hz=%-4d ff=%-5v %7.3fs  speedup=%.2fx\n",
					scheme, hz, ff, sec, speedup)
			}
		}
	}
	writeJSON(*ffOut, ffRep)
}

func writeJSON(path string, v any) {
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
