// Command tracer records and exports the scheduling timeline of one
// measured run, and inspects recorded traces. Three modes:
//
//	tracer [-format gantt|jsonl|perfetto] [-o FILE] [run flags]
//	    record one run and export its trace: a text Gantt chart (default),
//	    the canonical JSONL event stream, or Chrome/Perfetto trace_event
//	    JSON for https://ui.perfetto.dev / chrome://tracing.
//
//	tracer stat [run flags]
//	    record one run and print its schedstat tables: per-task run /
//	    runnable-wait / block accounting, per-CPU class occupancy, and the
//	    scheduling-latency histogram.
//
//	tracer diff A.jsonl B.jsonl [-limit N]
//	    compare two JSONL traces and print the first divergences; exits 1
//	    when the traces differ (the golden-trace suite prints this output).
//
// Examples:
//
//	tracer -bench is -class A -sched std -from 150ms -window 400ms
//	tracer -format perfetto -o is_std.json -bench is -sched std
//	tracer stat -bench is -sched hpl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/schedstat"
	"hplsim/internal/sim"
	"hplsim/internal/trace"
)

// runFlags are the flags shared by the record modes (default and stat).
type runFlags struct {
	bench, class, sched string
	seed                uint64
	fastForward         bool
	from, window        time.Duration
	cols                int
	events              bool
	format, out         string
}

func declareRunFlags(fs *flag.FlagSet) *runFlags {
	var rf runFlags
	fs.StringVar(&rf.bench, "bench", "is", "NAS benchmark: cg, ep, ft, is, lu, mg")
	fs.StringVar(&rf.class, "class", "A", "NAS class: A or B")
	fs.StringVar(&rf.sched, "sched", "std", "scheduler scheme")
	fs.Uint64Var(&rf.seed, "seed", 1, "random seed")
	fs.BoolVar(&rf.fastForward, "fastforward", false, "fast-forward quiescent ticks (trace-identical)")
	fs.DurationVar(&rf.from, "from", 150*time.Millisecond, "window start, gantt format (virtual time)")
	fs.DurationVar(&rf.window, "window", 400*time.Millisecond, "window length, gantt format")
	fs.IntVar(&rf.cols, "cols", 120, "Gantt width in cells")
	fs.BoolVar(&rf.events, "events", false, "also dump migration/wake events in the window (gantt)")
	fs.StringVar(&rf.format, "format", "gantt", "export format: gantt, jsonl, perfetto")
	fs.StringVar(&rf.out, "o", "-", "output file for jsonl/perfetto ('-' for stdout)")
	return &rf
}

func (rf *runFlags) options() (experiments.Options, error) {
	prof, err := nas.Get(rf.bench, rf.class[0])
	if err != nil {
		return experiments.Options{}, err
	}
	for _, sc := range experiments.Schemes() {
		if sc.String() == rf.sched {
			return experiments.Options{
				Profile:     prof,
				Scheme:      sc,
				Seed:        rf.seed,
				FastForward: rf.fastForward,
			}, nil
		}
	}
	return experiments.Options{}, fmt.Errorf("unknown scheme %q", rf.sched)
}

func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "stat":
			statMain(args[1:])
			return
		case "diff":
			diffMain(args[1:])
			return
		}
	}
	recordMain(args)
}

// recordMain runs one experiment and exports its trace in -format.
func recordMain(args []string) {
	fs := flag.NewFlagSet("tracer", flag.ExitOnError)
	rf := declareRunFlags(fs)
	fs.Parse(args)
	opt, err := rf.options()
	if err != nil {
		fail(err)
	}

	switch rf.format {
	case "gantt":
		rec := trace.NewRecorder()
		opt.Tracer = rec
		r := experiments.Run(opt)
		lo := sim.Time(sim.DurationOf(rf.from))
		hi := lo.Add(sim.DurationOf(rf.window))
		fmt.Printf("%s under %s (seed %d): elapsed %.3fs, %d migrations, %d ctx switches\n\n",
			opt.Profile.Name(), opt.Scheme, rf.seed, r.ElapsedSec,
			r.Window.Migrations, r.Window.ContextSwitches)
		fmt.Print(rec.Gantt(lo, hi, rf.cols))
		if rf.events {
			fmt.Println("\nevents:")
			n := 0
			for _, e := range rec.Evs {
				if e.At < lo || e.At > hi || e.Kind == "mark" {
					continue
				}
				fmt.Printf("  %v %-8s %-12s %s\n", e.At, e.Kind, e.Task, e.Label)
				n++
				if n > 200 {
					fmt.Println("  ... (truncated)")
					break
				}
			}
		}

	case "jsonl":
		out, err := openOut(rf.out)
		if err != nil {
			fail(err)
		}
		w := schedstat.NewWriter(out)
		opt.Tracer = w
		experiments.Run(opt)
		if err := w.Flush(); err != nil {
			fail(err)
		}
		if rf.out != "-" {
			out.Close()
		}

	case "perfetto":
		col := schedstat.NewCollector()
		opt.Tracer = col
		experiments.Run(opt)
		out, err := openOut(rf.out)
		if err != nil {
			fail(err)
		}
		if err := schedstat.WritePerfetto(out, col.Events); err != nil {
			fail(err)
		}
		if rf.out != "-" {
			out.Close()
		}

	default:
		fail(fmt.Errorf("unknown format %q (want gantt, jsonl, perfetto)", rf.format))
	}
}

// statMain runs one experiment and prints its schedstat tables.
func statMain(args []string) {
	fs := flag.NewFlagSet("tracer stat", flag.ExitOnError)
	rf := declareRunFlags(fs)
	fs.Parse(args)
	opt, err := rf.options()
	if err != nil {
		fail(err)
	}
	r, acct := experiments.RunStat(opt)
	fmt.Printf("%s under %s (seed %d): elapsed %.3fs over %.3fs virtual\n\n",
		opt.Profile.Name(), opt.Scheme, rf.seed, r.ElapsedSec, r.VirtualSec)
	fmt.Println(acct.TaskTable())
	fmt.Println(acct.CPUTable())
	fmt.Println(acct.WaitHistTable())
}

// diffMain compares two JSONL trace files.
func diffMain(args []string) {
	fs := flag.NewFlagSet("tracer diff", flag.ExitOnError)
	limit := fs.Int("limit", 20, "maximum mismatches to print")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fail(fmt.Errorf("usage: tracer diff A.jsonl B.jsonl"))
	}
	diffs, err := schedstat.DiffFiles(fs.Arg(0), fs.Arg(1), *limit)
	if err != nil {
		fail(err)
	}
	if len(diffs) == 0 {
		fmt.Printf("traces identical\n")
		return
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	os.Exit(1)
}
