// Command tracer records and renders the scheduling timeline of one
// measured run: a text Gantt chart of every CPU plus the migration and
// wakeup event log. Useful for seeing exactly how a daemon preempts a
// rank, how the balancer shuffles tasks under the standard scheduler, and
// how HPL's timeline stays clean.
//
//	tracer -bench is -class A -sched std -from 150ms -window 400ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/sim"
	"hplsim/internal/trace"
)

func main() {
	bench := flag.String("bench", "is", "NAS benchmark: cg, ep, ft, is, lu, mg")
	class := flag.String("class", "A", "NAS class: A or B")
	schedName := flag.String("sched", "std", "scheduler scheme")
	seed := flag.Uint64("seed", 1, "random seed")
	from := flag.Duration("from", 150*time.Millisecond, "window start (virtual time)")
	window := flag.Duration("window", 400*time.Millisecond, "window length")
	cols := flag.Int("cols", 120, "Gantt width in cells")
	events := flag.Bool("events", false, "also dump migration/wake events in the window")
	flag.Parse()

	prof, err := nas.Get(*bench, (*class)[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var scheme experiments.Scheme
	found := false
	for _, sc := range experiments.Schemes() {
		if sc.String() == *schedName {
			scheme, found = sc, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schedName)
		os.Exit(2)
	}

	rec := trace.NewRecorder()
	r := experiments.Run(experiments.Options{
		Profile: prof,
		Scheme:  scheme,
		Seed:    *seed,
		Tracer:  rec,
	})

	lo := sim.Time(sim.DurationOf(*from))
	hi := lo.Add(sim.DurationOf(*window))
	fmt.Printf("%s under %s (seed %d): elapsed %.3fs, %d migrations, %d ctx switches\n\n",
		prof.Name(), scheme, *seed, r.ElapsedSec,
		r.Window.Migrations, r.Window.ContextSwitches)
	fmt.Print(rec.Gantt(lo, hi, *cols))

	if *events {
		fmt.Println("\nevents:")
		n := 0
		for _, e := range rec.Evs {
			if e.At < lo || e.At > hi || e.Kind == "mark" {
				continue
			}
			fmt.Printf("  %v %-8s %-12s %s\n", e.At, e.Kind, e.Task, e.Label)
			n++
			if n > 200 {
				fmt.Println("  ... (truncated)")
				break
			}
		}
	}
}
