// Command figures regenerates the paper's figures:
//
//	figures -fig 1          preemption timeline (Figure 1)
//	figures -fig 2          ep.A.8 distribution, standard Linux (Figure 2)
//	figures -fig 3          time vs migrations / context switches (Figures 3a, 3b)
//	figures -fig 4          ep.A.8 distribution, RT scheduler (Figure 4)
//	figures -fig resonance  the Section II noise-resonance scaling argument
//	figures -fig all        everything
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"hplsim/internal/cluster"
	"hplsim/internal/experiments"
)

// writeCSV writes rows to dir/name, creating dir if needed.
func writeCSV(dir, name string, header []string, rows [][]string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write(header); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := w.WriteAll(rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func distCSV(dir, name string, d experiments.DistributionResult) {
	rows := make([][]string, 0, len(d.Results))
	for _, r := range d.Results {
		rows = append(rows, []string{
			ftoa(r.ElapsedSec), ftoa(r.Migrations()), ftoa(r.CtxSwitches()),
		})
	}
	writeCSV(dir, name, []string{"elapsed_s", "migrations", "ctx_switches"}, rows)
}

func main() {
	fig := flag.String("fig", "all", "figure to produce: 1, 2, 3, 4, resonance, all")
	reps := flag.Int("reps", 300, "repetitions for the distribution figures (paper: 1000)")
	seed := flag.Uint64("seed", 1, "base random seed")
	csvDir := flag.String("csv", "", "also write raw per-run data as CSV files into this directory")
	workers := flag.Int("workers", 0, "replication worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	run := func(name string) {
		switch name {
		case "1":
			fmt.Println(experiments.Figure1(*seed))
		case "2":
			d := experiments.Figure2(*reps, *seed, *workers)
			fmt.Println(experiments.FormatDistribution(
				"Figure 2: execution time distribution for NAS ep.A.8 (standard Linux)", d))
			distCSV(*csvDir, "figure2_std.csv", d)
		case "3":
			migr, ctx := experiments.Figure3(*reps, *seed, *workers)
			fmt.Println(experiments.FormatCorrelation("Figure 3a", migr))
			fmt.Println(experiments.FormatCorrelation("Figure 3b", ctx))
			if *csvDir != "" {
				rows := make([][]string, 0, len(migr.X))
				for i := range migr.X {
					rows = append(rows, []string{
						ftoa(migr.X[i]), ftoa(ctx.X[i]), ftoa(migr.Y[i]),
					})
				}
				writeCSV(*csvDir, "figure3.csv",
					[]string{"migrations", "ctx_switches", "elapsed_s"}, rows)
			}
		case "4":
			d := experiments.Figure4(*reps, *seed, *workers)
			fmt.Println(experiments.FormatDistribution(
				"Figure 4: execution time distribution for NAS ep.A.8 (RT scheduler)", d))
			distCSV(*csvDir, "figure4_rt.csv", d)
		case "resonance":
			nodes := []int{1, 4, 16, 64, 256, 1024, 4096}
			std, hpl := experiments.ResonanceStudy(nodes, 20, 75, 400, *seed, *workers)
			fmt.Println("--- standard Linux node ---")
			fmt.Println(cluster.Format(std))
			fmt.Println("--- HPL node ---")
			fmt.Println(cluster.Format(hpl))
			if *csvDir != "" {
				rows := make([][]string, 0, len(std))
				for i := range std {
					rows = append(rows, []string{
						strconv.Itoa(std[i].Nodes),
						ftoa(std[i].MeanSlowdown), ftoa(std[i].P99Slowdown),
						ftoa(hpl[i].MeanSlowdown), ftoa(hpl[i].P99Slowdown),
					})
				}
				writeCSV(*csvDir, "resonance.csv",
					[]string{"nodes", "std_mean", "std_p99", "hpl_mean", "hpl_p99"}, rows)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
	}

	if *fig == "all" {
		for _, f := range []string{"1", "2", "3", "4", "resonance"} {
			run(f)
			fmt.Println()
		}
		return
	}
	run(*fig)
}
