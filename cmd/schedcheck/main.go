// Command schedcheck drives the property-based scheduler harness from the
// command line. It has two modes:
//
// Corpus mode (default) generates -scenarios seeded scenarios starting at
// -seed and checks every applicable oracle (determinism, class-priority
// dominance, fork-time-only migration, noise insulation, permutation
// invariance, time rescaling) against each. The first failing scenario is
// auto-shrunk to a minimal repro and, with -out, written as a replay file
// suitable for committing under internal/schedcheck/testdata/repros/.
//
// Replay mode (-replay) re-checks a repro file, or every *.json repro in a
// directory, and verifies the recorded expectation still holds — "pass"
// repros stay green, "fail" repros keep tripping their pinned oracle.
//
// Exit status is 0 when everything holds, 1 when an oracle fires or a
// replay diverges, 2 on usage or I/O errors.
//
// Examples:
//
//	schedcheck -scenarios 500
//	schedcheck -seed 38 -scenarios 1 -v
//	schedcheck -replay internal/schedcheck/testdata/repros
//	schedcheck -scenarios 200 -out repro.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"hplsim/internal/pool"
	"hplsim/internal/schedcheck"
)

func main() {
	var (
		scenarios = flag.Int("scenarios", 200, "number of seeded scenarios to generate and check")
		seed      = flag.Uint64("seed", 1, "first seed of the corpus")
		replay    = flag.String("replay", "", "replay a repro file or directory instead of generating a corpus")
		out       = flag.String("out", "", "write the shrunk repro of the first failure to this file")
		budget    = flag.Int("shrink-budget", schedcheck.DefaultShrinkBudget, "max oracle checks spent shrinking a failure")
		workers   = flag.Int("workers", 0, "parallel checkers (0 = GOMAXPROCS; results are worker-count independent)")
		verbose   = flag.Bool("v", false, "log every scenario checked")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: schedcheck [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *replay != "" {
		if err := replayPath(*replay); err != nil {
			fmt.Fprintln(os.Stderr, "schedcheck:", err)
			os.Exit(1)
		}
		fmt.Println("replay ok")
		return
	}

	if *scenarios <= 0 {
		fmt.Fprintln(os.Stderr, "schedcheck: -scenarios must be positive")
		os.Exit(2)
	}

	type failure struct {
		seed uint64
		fail *schedcheck.Failure
	}
	var (
		mu    sync.Mutex
		fails []failure
	)
	pool.ForN(*scenarios, *workers, func(i int) {
		sd := *seed + uint64(i)
		s := schedcheck.Generate(sd)
		f := schedcheck.Check(s)
		mu.Lock()
		defer mu.Unlock()
		if *verbose {
			verdict := "ok"
			if f != nil {
				verdict = f.Error()
			}
			fmt.Printf("seed %d: %d ranks, %d daemons, %d rt, %s/%s, barrier=%v: %s\n",
				sd, len(s.Ranks), len(s.Daemons), len(s.RTNoise), s.Physics, s.Scheme, s.Barrier, verdict)
		}
		if f != nil {
			fails = append(fails, failure{sd, f})
		}
	})

	if len(fails) == 0 {
		fmt.Printf("schedcheck: %d scenarios (seeds %d..%d), all oracles green\n",
			*scenarios, *seed, *seed+uint64(*scenarios)-1)
		return
	}

	// Deterministic reporting: pick the lowest failing seed regardless of
	// the order workers finished in.
	first := fails[0]
	for _, f := range fails[1:] {
		if f.seed < first.seed {
			first = f
		}
	}
	fmt.Fprintf(os.Stderr, "schedcheck: %d of %d scenarios failed\n", len(fails), *scenarios)
	fmt.Fprintf(os.Stderr, "seed %d: %v\n", first.seed, first.fail)

	small, sf := schedcheck.Shrink(schedcheck.Generate(first.seed), *budget)
	fmt.Fprintf(os.Stderr, "shrunk to %d tasks: %v\n", small.TaskCount(), sf)
	if *out != "" {
		r := schedcheck.Repro{
			Version:  schedcheck.ReproVersion,
			Note:     fmt.Sprintf("shrunk from seed %d", first.seed),
			Expect:   "fail",
			Oracle:   sf.Oracle,
			Scenario: small,
		}
		if err := schedcheck.WriteRepro(*out, r); err != nil {
			fmt.Fprintln(os.Stderr, "schedcheck:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "repro written to %s\n", *out)
	} else if data, err := small.MarshalIndent(); err == nil {
		fmt.Fprintf(os.Stderr, "shrunk scenario:\n%s\n", data)
	}
	os.Exit(1)
}

// replayPath replays a single repro file, or every repro in a directory.
func replayPath(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return schedcheck.ReplayDir(path)
	}
	return schedcheck.ReplayFile(path)
}
