// Command schedcheck drives the property-based scheduler harnesses from
// the command line. It checks two layers: the node-kernel harness
// (internal/schedcheck, the default) and, with -batch, the cluster batch
// layer (internal/batch/batchcheck). Each layer has two modes:
//
// Corpus mode (default) generates -scenarios seeded scenarios starting at
// -seed and checks every applicable oracle against each. Node oracles:
// determinism, class-priority dominance, fork-time-only migration, noise
// insulation, permutation invariance, time rescaling. Batch oracles:
// determinism fingerprint over dispatch order, node-hour conservation,
// EASY head-reservation, FCFS dominance, completion. The first failing
// scenario is auto-shrunk to a minimal repro and, with -out, written as a
// replay file suitable for committing under the layer's testdata/repros/.
//
// Replay mode (-replay) re-checks a repro file, or every *.json repro in a
// directory, and verifies the recorded expectation still holds — "pass"
// repros stay green, "fail" repros keep tripping their pinned oracle.
//
// Exit status is 0 when everything holds, 1 when an oracle fires or a
// replay diverges, 2 on usage or I/O errors.
//
// Examples:
//
//	schedcheck -scenarios 500
//	schedcheck -seed 38 -scenarios 1 -v
//	schedcheck -replay internal/schedcheck/testdata/repros
//	schedcheck -batch -scenarios 200
//	schedcheck -batch -replay internal/batch/batchcheck/testdata/repros
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"hplsim/internal/batch/batchcheck"
	"hplsim/internal/pool"
	"hplsim/internal/schedcheck"
)

func main() {
	var (
		scenarios = flag.Int("scenarios", 200, "number of seeded scenarios to generate and check")
		seed      = flag.Uint64("seed", 1, "first seed of the corpus")
		batchMode = flag.Bool("batch", false, "check the cluster batch layer instead of the node kernel")
		replay    = flag.String("replay", "", "replay a repro file or directory instead of generating a corpus")
		out       = flag.String("out", "", "write the shrunk repro of the first failure to this file")
		budget    = flag.Int("shrink-budget", schedcheck.DefaultShrinkBudget, "max oracle checks spent shrinking a failure")
		workers   = flag.Int("workers", 0, "parallel checkers (0 = GOMAXPROCS; results are worker-count independent)")
		shards    = flag.Int("shards", 1, "also check sequential/sharded bitwise equivalence at this shard count (node layer; 1 disables)")
		verbose   = flag.Bool("v", false, "log every scenario checked")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: schedcheck [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *replay != "" {
		if err := replayPath(*replay, *batchMode, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "schedcheck:", err)
			os.Exit(1)
		}
		fmt.Println("replay ok")
		return
	}

	if *scenarios <= 0 {
		fmt.Fprintln(os.Stderr, "schedcheck: -scenarios must be positive")
		os.Exit(2)
	}

	if *batchMode {
		batchCorpus(*scenarios, *seed, *out, *budget, *workers, *verbose)
		return
	}

	type failure struct {
		seed uint64
		fail *schedcheck.Failure
	}
	var (
		mu    sync.Mutex
		fails []failure
	)
	pool.ForN(*scenarios, *workers, func(i int) {
		sd := *seed + uint64(i)
		s := schedcheck.Generate(sd)
		f := schedcheck.Check(s)
		if f == nil && *shards > 1 {
			f, _ = schedcheck.CheckShards(s, *shards)
		}
		mu.Lock()
		defer mu.Unlock()
		if *verbose {
			verdict := "ok"
			if f != nil {
				verdict = f.Error()
			}
			fmt.Printf("seed %d: %d ranks, %d daemons, %d rt, %s/%s, barrier=%v: %s\n",
				sd, len(s.Ranks), len(s.Daemons), len(s.RTNoise), s.Physics, s.Scheme, s.Barrier, verdict)
		}
		if f != nil {
			fails = append(fails, failure{sd, f})
		}
	})

	if len(fails) == 0 {
		fmt.Printf("schedcheck: %d scenarios (seeds %d..%d), all oracles green\n",
			*scenarios, *seed, *seed+uint64(*scenarios)-1)
		return
	}

	// Deterministic reporting: pick the lowest failing seed regardless of
	// the order workers finished in.
	first := fails[0]
	for _, f := range fails[1:] {
		if f.seed < first.seed {
			first = f
		}
	}
	fmt.Fprintf(os.Stderr, "schedcheck: %d of %d scenarios failed\n", len(fails), *scenarios)
	fmt.Fprintf(os.Stderr, "seed %d: %v\n", first.seed, first.fail)

	small, sf := schedcheck.Shrink(schedcheck.Generate(first.seed), *budget)
	fmt.Fprintf(os.Stderr, "shrunk to %d tasks: %v\n", small.TaskCount(), sf)
	if *out != "" {
		r := schedcheck.Repro{
			Version:  schedcheck.ReproVersion,
			Note:     fmt.Sprintf("shrunk from seed %d", first.seed),
			Expect:   "fail",
			Oracle:   sf.Oracle,
			Scenario: small,
		}
		if err := schedcheck.WriteRepro(*out, r); err != nil {
			fmt.Fprintln(os.Stderr, "schedcheck:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "repro written to %s\n", *out)
	} else if data, err := small.MarshalIndent(); err == nil {
		fmt.Fprintf(os.Stderr, "shrunk scenario:\n%s\n", data)
	}
	os.Exit(1)
}

// batchCorpus is corpus mode against the cluster batch layer.
func batchCorpus(scenarios int, seed uint64, out string, budget, workers int, verbose bool) {
	type failure struct {
		seed uint64
		fail *batchcheck.Failure
	}
	var (
		mu    sync.Mutex
		fails []failure
	)
	pool.ForN(scenarios, workers, func(i int) {
		sd := seed + uint64(i)
		s := batchcheck.Generate(sd)
		f := batchcheck.Check(s)
		mu.Lock()
		defer mu.Unlock()
		if verbose {
			verdict := "ok"
			if f != nil {
				verdict = f.Error()
			}
			fmt.Printf("seed %d: %d jobs, %d nodes x %d ranks, %s/%s: %s\n",
				sd, len(s.Jobs), s.Nodes, s.RanksPerNode, s.Policy, s.Model, verdict)
		}
		if f != nil {
			fails = append(fails, failure{sd, f})
		}
	})

	if len(fails) == 0 {
		fmt.Printf("schedcheck: %d batch scenarios (seeds %d..%d), all oracles green\n",
			scenarios, seed, seed+uint64(scenarios)-1)
		return
	}

	first := fails[0]
	for _, f := range fails[1:] {
		if f.seed < first.seed {
			first = f
		}
	}
	fmt.Fprintf(os.Stderr, "schedcheck: %d of %d batch scenarios failed\n", len(fails), scenarios)
	fmt.Fprintf(os.Stderr, "seed %d: %v\n", first.seed, first.fail)

	small, sf := batchcheck.Shrink(batchcheck.Generate(first.seed), budget)
	fmt.Fprintf(os.Stderr, "shrunk to %d jobs: %v\n", len(small.Jobs), sf)
	if out != "" {
		r := batchcheck.Repro{
			Version:  batchcheck.ReproVersion,
			Note:     fmt.Sprintf("shrunk from batch seed %d", first.seed),
			Expect:   "fail",
			Oracle:   sf.Oracle,
			Scenario: small,
		}
		if err := batchcheck.WriteRepro(out, r); err != nil {
			fmt.Fprintln(os.Stderr, "schedcheck:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "repro written to %s\n", out)
	} else if data, err := small.MarshalIndent(); err == nil {
		fmt.Fprintf(os.Stderr, "shrunk scenario:\n%s\n", data)
	}
	os.Exit(1)
}

// replayPath replays a single repro file, or every repro in a directory,
// against the selected harness.
func replayPath(path string, batchMode bool, shards int) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if batchMode {
		if info.IsDir() {
			return batchcheck.ReplayDir(path)
		}
		return batchcheck.ReplayFile(path)
	}
	if info.IsDir() {
		return schedcheck.ReplayDir(path, shards)
	}
	return schedcheck.ReplayFile(path, shards)
}
