// Command schedlint enforces the repository's determinism contract as law:
// simulation results must be a pure function of (config, seed), bitwise
// identical at any worker count. The analyzer type-checks the module with
// only the standard library (go/parser + go/types over `go list -export`
// output) and reports every construct that can silently break that
// contract:
//
//	[walltime]  time.Now / time.Since outside internal/walltime
//	[rand]      math/rand, math/rand/v2, or crypto/rand imports
//	[maprange]  range over a map inside the deterministic core
//	[conc]      go statements, sync.WaitGroup, or channel creation
//	            outside internal/pool
//	[heap]      container/heap imports (replaced by repo-local structures)
//	[sortslice] sort.Slice in the deterministic core without a
//	            deterministic-tiebreak comment
//	[getenv]    os.Getenv / os.LookupEnv / os.Environ in the
//	            deterministic core
//
// Test files are exempt. A finding can be suppressed with a
// //schedlint:ignore [rule...] comment on the same line or the line above;
// see DESIGN.md "Enforcing the determinism contract".
//
// Usage:
//
//	schedlint [packages]
//
// Packages default to ./... relative to the enclosing module. Exit status
// is 0 when clean, 1 when diagnostics were reported, 2 on a load failure.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: schedlint [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	diags, err := Run(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d violation(s) of the determinism contract\n", len(diags))
		os.Exit(1)
	}
}
