// Command schedlint enforces the repository's determinism contract as law:
// simulation results must be a pure function of (config, seed), bitwise
// identical at any worker count. The analyzer type-checks the module with
// only the standard library (go/parser + go/types over `go list -export`
// output) and reports every construct that can silently break that
// contract:
//
//	[walltime]   time.Now / time.Since outside internal/walltime
//	             (in test files of deterministic packages too)
//	[rand]       math/rand, math/rand/v2, or crypto/rand imports
//	[maprange]   range over a map inside the deterministic core
//	[conc]       go statements, sync.WaitGroup, or channel creation
//	             outside internal/pool
//	[heap]       container/heap imports (replaced by repo-local structures)
//	[sortslice]  sort.Slice in the deterministic core without a
//	             deterministic-tiebreak comment
//	[getenv]     os.Getenv / os.LookupEnv / os.Environ in the
//	             deterministic core
//	[taint]      a deterministic-core function transitively reaches a
//	             nondeterminism source through any chain of module-local
//	             calls; the full call path is reported
//	[invcheck]   an exported mutating method in internal/rbtree,
//	             internal/sched/cfs, or internal/kernel never reaches its
//	             type's -tags invariants check
//	[staleignore] a //schedlint:ignore directive that suppresses nothing
//
// Test files are otherwise exempt. A finding can be suppressed with a
// //schedlint:ignore [rule...] comment on the same line or the line above;
// see DESIGN.md "Enforcing the determinism contract".
//
// Usage:
//
//	schedlint [packages]
//	schedlint -alloc [-update] [packages]
//
// The second form gates the static allocation budget instead: it runs
// `go build -gcflags=-m` over the hot-path packages, attributes every heap
// escape to its enclosing function, and diffs the counts against
// cmd/schedlint/testdata/alloc_budget.json ([alloc] findings either way —
// a stale budget hides the next regression). -update regenerates the
// budget file deterministically.
//
// Packages default to ./... relative to the enclosing module (the hot-path
// set for -alloc). Exit status is 0 when clean, 1 when diagnostics were
// reported, 2 on a load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

func main() {
	alloc := flag.Bool("alloc", false, "gate the hot-path allocation budget instead of linting")
	update := flag.Bool("update", false, "with -alloc: regenerate the budget file from the current tree")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: schedlint [-alloc [-update]] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}

	if *alloc {
		if len(patterns) == 0 {
			patterns = allocPatterns
		}
		budgetPath := filepath.Join(root, "cmd", "schedlint", "testdata", "alloc_budget.json")
		if *update {
			if err := AllocUpdate(root, patterns, budgetPath); err != nil {
				fmt.Fprintln(os.Stderr, "schedlint:", err)
				os.Exit(2)
			}
			return
		}
		diags, skip, err := AllocCheck(root, patterns, budgetPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedlint:", err)
			os.Exit(2)
		}
		if skip != "" {
			fmt.Fprintln(os.Stderr, "schedlint: skipping alloc gate:", skip)
			return
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "schedlint: %d allocation budget violation(s)\n", len(diags))
			os.Exit(1)
		}
		return
	}

	if *update {
		fmt.Fprintln(os.Stderr, "schedlint: -update requires -alloc")
		os.Exit(2)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := Run(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d violation(s) of the determinism contract\n", len(diags))
		os.Exit(1)
	}
}
