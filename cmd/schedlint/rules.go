package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
)

// Rule identifiers, as printed in diagnostics and accepted by
// //schedlint:ignore directives.
const (
	ruleWalltime  = "walltime"  // time.Now / time.Since outside internal/walltime
	ruleRand      = "rand"      // math/rand, math/rand/v2, crypto/rand imports
	ruleMaprange  = "maprange"  // range over a map in the deterministic core
	ruleConc      = "conc"      // go stmt / sync.WaitGroup / channel creation outside internal/pool
	ruleHeap      = "heap"      // container/heap import (replaced by repo-local structures)
	ruleSortslice = "sortslice" // sort.Slice without a deterministic tiebreak comment
	ruleGetenv    = "getenv"    // os.Getenv & friends in the deterministic core
	ruleTaint     = "taint"     // deterministic core transitively reaches a nondeterministic source
	ruleInvcheck  = "invcheck"  // exported mutator skips its -tags invariants check
	ruleAlloc     = "alloc"     // heap escape over the committed hot-path budget
	ruleStale     = "staleignore"
)

// tiebreakRe matches the comment a sort.Slice call needs to stay allowed:
// the author must state why the order is deterministic.
var tiebreakRe = regexp.MustCompile(`(?i)determin`)

// fileLinter carries the per-file state of one rules pass.
type fileLinter struct {
	fset  *token.FileSet
	info  *types.Info
	file  *ast.File
	scope pkgScope
	root  string
	ign   *ignoreIndex

	// commentAt maps a line number to the concatenated comment text that
	// starts there, for tiebreak-comment lookups.
	commentAt map[int]string

	diags []Diagnostic
}

// lintFile applies every rule in scope to one parsed, type-checked file.
// Suppression state lives in the shared ignore index so the stale audit
// sees uses from every pass.
func lintFile(fset *token.FileSet, f *ast.File, info *types.Info, scope pkgScope, root string, ign *ignoreIndex) []Diagnostic {
	l := &fileLinter{fset: fset, info: info, file: f, scope: scope, root: root, ign: ign,
		commentAt: make(map[int]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := fset.Position(c.Pos()).Line
			l.commentAt[line] += " " + c.Text
		}
	}

	for _, imp := range f.Imports {
		l.checkImport(imp)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !l.scope.isPool {
				l.report(n.Pos(), ruleConc,
					"go statement: unmanaged concurrency breaks run reproducibility; fan out through internal/pool.ForN")
			}
		case *ast.CallExpr:
			l.checkCall(n)
		case *ast.RangeStmt:
			l.checkRange(n)
		case *ast.SelectorExpr:
			l.checkWaitGroup(n)
		}
		return true
	})
	return l.diags
}

func (l *fileLinter) report(pos token.Pos, rule, format string, args ...any) {
	p := l.fset.Position(pos)
	file, err := filepath.Rel(l.root, p.Filename)
	if err != nil {
		file = p.Filename
	}
	rel := filepath.ToSlash(file)
	if l.ign.suppressed(rel, p.Line, rule) {
		return
	}
	l.diags = append(l.diags, Diagnostic{
		File: rel,
		Line: p.Line,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func (l *fileLinter) checkImport(imp *ast.ImportSpec) {
	path, err := strconv.Unquote(imp.Path.Value)
	if err != nil {
		return
	}
	switch path {
	case "container/heap":
		l.report(imp.Pos(), ruleHeap,
			"import container/heap: replaced by the engine's inlined event heap and the rbtree runqueue; do not reintroduce it")
	case "math/rand", "math/rand/v2":
		if !l.scope.isWalltime {
			l.report(imp.Pos(), ruleRand,
				"import %s: draw from a seed-derived internal/sim.RNG stream instead", path)
		}
	case "crypto/rand":
		if !l.scope.isWalltime {
			l.report(imp.Pos(), ruleRand,
				"import crypto/rand: entropy is never reproducible; draw from a seed-derived internal/sim.RNG stream")
		}
	}
}

// funcOf resolves a call's callee to (package path, name) when it is a
// package-level function reached through a selector or a (possibly
// dot-imported) identifier.
func (l *fileLinter) funcOf(call *ast.CallExpr) (string, string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", ""
	}
	obj, ok := l.info.Uses[id]
	if !ok {
		return "", ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", "" // method, not a package-level function
	}
	return fn.Pkg().Path(), fn.Name()
}

func (l *fileLinter) checkCall(call *ast.CallExpr) {
	// Channel creation: make(chan T[, n]) counts as spawning unmanaged
	// communication structure.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) > 0 {
		if tv, ok := l.info.Types[call.Args[0]]; ok && tv.IsType() {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !l.scope.isPool {
				l.report(call.Pos(), ruleConc,
					"channel creation: unmanaged concurrency breaks run reproducibility; fan out through internal/pool.ForN")
			}
		}
	}

	pkg, name := l.funcOf(call)
	if pkg == "" {
		return
	}
	switch {
	case pkg == "time" && (name == "Now" || name == "Since"):
		if !l.scope.isWalltime {
			l.report(call.Pos(), ruleWalltime,
				"call to time.%s: results must be a pure function of (config, seed); host timing goes through internal/walltime", name)
		}
	case pkg == "os" && (name == "Getenv" || name == "LookupEnv" || name == "Environ"):
		if l.scope.deterministic {
			l.report(call.Pos(), ruleGetenv,
				"call to os.%s in the deterministic core: environment state is invisible to the (config, seed) contract; plumb it through a Config field", name)
		}
	case pkg == "sort" && name == "Slice":
		if l.scope.deterministic && !l.hasTiebreakComment(call.Pos()) {
			l.report(call.Pos(), ruleSortslice,
				"sort.Slice is unstable: equal elements land in nondeterministic order; add a deterministic tiebreak to the less function and a comment containing \"deterministic\" explaining it (or use sort.SliceStable over already-deterministic input)")
		}
	}
}

// hasTiebreakComment reports whether the statement at pos carries a comment
// — trailing on the same line, or in the contiguous comment block directly
// above — matching tiebreakRe.
func (l *fileLinter) hasTiebreakComment(pos token.Pos) bool {
	line := l.fset.Position(pos).Line
	if tiebreakRe.MatchString(l.commentAt[line]) {
		return true
	}
	for ln := line - 1; l.commentAt[ln] != ""; ln-- {
		if tiebreakRe.MatchString(l.commentAt[ln]) {
			return true
		}
	}
	return false
}

func (l *fileLinter) checkRange(rng *ast.RangeStmt) {
	if !l.scope.deterministic {
		return
	}
	t := l.info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		l.report(rng.Pos(), ruleMaprange,
			"range over %s: map iteration order is nondeterministic; collect and sort the keys first", t)
	}
}

// checkWaitGroup flags uses of the sync.WaitGroup type: ad-hoc fan-out must
// route through internal/pool so worker count never changes results.
func (l *fileLinter) checkWaitGroup(sel *ast.SelectorExpr) {
	if l.scope.isPool {
		return
	}
	obj, ok := l.info.Uses[sel.Sel]
	if !ok {
		return
	}
	tn, ok := obj.(*types.TypeName)
	if !ok || tn.Pkg() == nil {
		return
	}
	if tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup" {
		l.report(sel.Pos(), ruleConc,
			"sync.WaitGroup: unmanaged concurrency breaks run reproducibility; fan out through internal/pool.ForN")
	}
}
