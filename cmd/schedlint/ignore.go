package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// knownRules is every rule identifier an ignore directive may name. Tokens
// outside this set end the rule list, so a trailing comment on the same
// line (for example a fixture's `// want` marker) is never parsed as a
// rule name.
var knownRules = map[string]bool{
	ruleWalltime:  true,
	ruleRand:      true,
	ruleMaprange:  true,
	ruleConc:      true,
	ruleHeap:      true,
	ruleSortslice: true,
	ruleGetenv:    true,
	ruleTaint:     true,
	ruleInvcheck:  true,
	ruleAlloc:     true,
	ruleStale:     true,
}

// ignoreDirective is one //schedlint:ignore comment. A directive with no
// rule list is "bare" and suppresses every rule at its site; otherwise it
// suppresses exactly the rules it names. Each rule token tracks whether it
// ever suppressed a finding, which feeds the stale-suppression audit.
type ignoreDirective struct {
	file     string // module-relative path, forward slashes
	line     int
	rules    []string // empty means bare
	used     []bool   // parallel to rules
	bareUsed bool
}

// ignoreIndex collects every ignore directive in the linted tree so that
// (a) any pass — per-file rules, taint, invcheck, test lint — can consult
// the same suppression state, and (b) after all passes ran, directives
// that suppressed nothing can be reported as stale.
type ignoreIndex struct {
	byFileLine map[string]map[int]*ignoreDirective
}

func newIgnoreIndex() *ignoreIndex {
	return &ignoreIndex{byFileLine: make(map[string]map[int]*ignoreDirective)}
}

// scanFile records the directives of one parsed file. Following Go's
// directive convention, a comment is a directive only when its text
// begins with //schedlint:ignore — a prose mention of the directive
// elsewhere in a comment does not suppress anything.
func (ix *ignoreIndex) scanFile(fset *token.FileSet, f *ast.File, relFile string) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, isDirective := strings.CutPrefix(c.Text, "//schedlint:ignore")
			if !isDirective {
				continue
			}
			line := fset.Position(c.Pos()).Line
			d := &ignoreDirective{file: relFile, line: line}
			for _, tok := range strings.Fields(rest) {
				if !knownRules[tok] {
					break
				}
				d.rules = append(d.rules, tok)
			}
			d.used = make([]bool, len(d.rules))
			if ix.byFileLine[relFile] == nil {
				ix.byFileLine[relFile] = make(map[int]*ignoreDirective)
			}
			ix.byFileLine[relFile][line] = d
		}
	}
}

// suppressed reports whether a directive on the finding's line or the line
// above covers rule, and marks the matching directive token used.
func (ix *ignoreIndex) suppressed(relFile string, line int, rule string) bool {
	return ix.lineSuppresses(relFile, line, rule) || ix.lineSuppresses(relFile, line-1, rule)
}

// lineSuppresses consults the single directive on one line.
func (ix *ignoreIndex) lineSuppresses(relFile string, line int, rule string) bool {
	d := ix.byFileLine[relFile][line]
	if d == nil {
		return false
	}
	if len(d.rules) == 0 {
		d.bareUsed = true
		return true
	}
	for i, r := range d.rules {
		if r == rule {
			d.used[i] = true
			return true
		}
	}
	return false
}

// audit reports every directive token that suppressed nothing across all
// passes. Stale suppressions are live hazards: they read as "this site is
// exempt" while exempting nothing, and they silently swallow the next
// real finding that appears on their line. The audit runs last, so even a
// staleignore finding can itself be suppressed (consistently with every
// other rule) — which also marks that token used.
func (ix *ignoreIndex) audit() []Diagnostic {
	var diags []Diagnostic
	var files []string
	for f := range ix.byFileLine {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		var lines []int
		for ln := range ix.byFileLine[f] {
			lines = append(lines, ln)
		}
		sort.Ints(lines)
		for _, ln := range lines {
			d := ix.byFileLine[f][ln]
			if len(d.rules) == 0 {
				// A bare directive cannot vouch for its own staleness (it
				// suppresses "everything", which would include this report);
				// only a directive on the line above may.
				if !d.bareUsed && !ix.lineSuppresses(f, ln-1, ruleStale) {
					diags = append(diags, Diagnostic{File: f, Line: ln, Rule: ruleStale,
						Msg: "blanket ignore directive suppresses no finding; remove it"})
				}
				continue
			}
			for i, r := range d.rules {
				if !d.used[i] && !ix.suppressed(f, ln, ruleStale) {
					diags = append(diags, Diagnostic{File: f, Line: ln, Rule: ruleStale,
						Msg: fmt.Sprintf("ignore directive for %q suppresses no finding; remove the stale rule", r)})
				}
			}
		}
	}
	return diags
}
