package main

import (
	"fmt"
	"sort"
	"strings"
)

// The invcheck pass enforces the runtime-invariants contract structurally:
// in the packages that carry build-tag-gated structural audits
// (internal/rbtree, internal/sched/cfs, internal/kernel), every exported
// method that mutates the audited type's state must — directly or through
// any chain of calls, including event closures it registers — reach that
// type's check method. The check methods are discovered by convention:
// they are the methods declared in the package's invariants_off.go (the
// no-op stubs compiled into normal builds; the invariants build replaces
// them with the real audits). A refactor that adds a mutating entry point
// without wiring the audit, or that orphans the audit entirely, fails the
// lint instead of silently narrowing the -tags invariants net.

// invcheckPkgs are the module-relative packages under the contract.
var invcheckPkgs = map[string]bool{
	"internal/rbtree":    true,
	"internal/sched/cfs": true,
	"internal/kernel":    true,
	"internal/shard":     true,
	"internal/batch":     true,
	"internal/simq":      true,
}

const invariantsStubFile = "invariants_off.go"

// runInvcheck reports exported mutating methods that never reach their
// type's invariants check.
func runInvcheck(g *callGraph, ign *ignoreIndex) []Diagnostic {
	// Check methods per (package, receiver type), found via the stub file.
	checks := make(map[string]map[string]bool) // pkgRel+"."+recvType -> set of funcKeys
	for _, n := range g.sortedNodes() {
		if !invcheckPkgs[n.pkgRel] || n.declBase != invariantsStubFile || n.recvType == "" {
			continue
		}
		tkey := n.pkgRel + "." + n.recvType
		if checks[tkey] == nil {
			checks[tkey] = make(map[string]bool)
		}
		checks[tkey][n.key] = true
	}
	if len(checks) == 0 {
		return nil
	}

	// A method "mutates" if it mutates directly or calls, transitively
	// within its own package, something that does. The same-package
	// restriction keeps the property about the audited type's own state:
	// crossing into another package means crossing into that package's
	// contract (and its own invariants check, if it has one).
	mutating := make(map[string]bool)
	nodes := g.sortedNodes()
	for _, n := range nodes {
		if n.mutates {
			mutating[n.key] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if mutating[n.key] {
				continue
			}
			for _, e := range n.calls {
				callee := g.nodes[e.callee]
				if callee != nil && callee.pkgRel == n.pkgRel && mutating[e.callee] {
					mutating[n.key] = true
					changed = true
					break
				}
			}
		}
	}

	var diags []Diagnostic
	for _, n := range nodes {
		if !invcheckPkgs[n.pkgRel] || !n.exported || n.recvType == "" || !n.recvPtr {
			continue
		}
		tkey := n.pkgRel + "." + n.recvType
		checkSet := checks[tkey]
		if len(checkSet) == 0 || checkSet[n.key] || n.declBase == invariantsStubFile {
			continue
		}
		if !mutating[n.key] {
			continue
		}
		if g.reachesFrom(n.key, checkSet) {
			continue
		}
		if ign.suppressed(n.relFile, n.declLine, ruleInvcheck) {
			continue
		}
		diags = append(diags, Diagnostic{
			File: n.relFile,
			Line: n.declLine,
			Rule: ruleInvcheck,
			Msg: fmt.Sprintf("%s mutates %s state but never reaches %s; "+
				"call the -tags invariants check after the mutation (or justify with //schedlint:ignore invcheck)",
				n.short, n.recvType, describeChecks(g, checkSet)),
		})
	}
	return diags
}

// reachesFrom reports whether start can reach any key in targets over
// call edges.
func (g *callGraph) reachesFrom(start string, targets map[string]bool) bool {
	seen := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		key := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if targets[key] {
			return true
		}
		n := g.nodes[key]
		if n == nil {
			continue
		}
		for _, e := range n.calls {
			if !seen[e.callee] {
				seen[e.callee] = true
				stack = append(stack, e.callee)
			}
		}
	}
	return false
}

func describeChecks(g *callGraph, checkSet map[string]bool) string {
	var names []string
	for key := range checkSet {
		if n := g.nodes[key]; n != nil {
			names = append(names, "("+ptrStar(n)+n.recvType+")."+n.name)
		}
	}
	// Deterministic tiebreak: names are unique per type, sorted
	// lexicographically.
	sort.Strings(names)
	return strings.Join(names, " or ")
}

func ptrStar(n *funcNode) string {
	if n.recvPtr {
		return "*"
	}
	return ""
}
