package main

import (
	"fmt"
	"sort"
	"strings"
)

// The interprocedural determinism taint pass closes the loophole the
// per-file rules leave open: wrap time.Now (or a goroutine, or os.Getenv,
// or an order-leaking map range) in a helper one package away and the
// direct-call rules go silent. Here every function that directly performs
// a nondeterministic operation is a source; taint propagates backwards
// over the call graph; and any function in a deterministic-core entry
// package whose call edge leads to a tainted callee is flagged with the
// full witness path, e.g.
//
//	kernel.Tick -> helpers.Jitter -> walltime.Start -> time.Now
//
// The report lands on the call edge that crosses from the core into the
// tainted chain, and a //schedlint:ignore taint directive on that line
// (or the line above) suppresses exactly that edge — the justification
// lives where the dependency is taken, not where the source hides. A
// suppressed edge also stops carrying taint to its caller: the function
// that justified the dependency owns it, and the callers above it stay
// clean instead of each re-reporting the same sanctioned crossing.

// taintRootPkgs are the deterministic-core entry packages: every function
// inside them is an entry point whose transitive behaviour must be a pure
// function of (config, seed). This is deliberately narrower than
// deterministicPkgs: packages like internal/experiments orchestrate
// replications through internal/pool and own their worker-invariance
// proof, so they are governed by the per-file rules only.
var taintRootPkgs = []string{
	"internal/sim",
	"internal/sched",
	"internal/kernel",
	"internal/rbtree",
	"internal/schedcheck",
	"internal/schedstat",
	"internal/shard",
	"internal/batch",
	"internal/simq",
}

func isTaintRoot(rel string) bool {
	for _, p := range taintRootPkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// taintWitness records, for one tainted function, the first step of a
// path that ends at a nondeterministic source.
type taintWitness struct {
	next string       // funcKey of the next node on the path, "" at a source
	src  *taintSource // set only at a direct source
}

// propagateTaint computes the tainted set with witness chains. Direct
// sources seed the set; then taint flows caller-ward to a fixed point,
// except across edges a //schedlint:ignore taint directive sanctions —
// the justified crossing absorbs the taint there. Every witness points
// at a node tainted strictly earlier, so chains always terminate at a
// source even through call cycles, and the deterministic iteration order
// (sorted nodes, edges in body order) makes the reported path stable run
// to run.
func propagateTaint(g *callGraph, ign *ignoreIndex) map[string]*taintWitness {
	tainted := make(map[string]*taintWitness)
	nodes := g.sortedNodes()
	for _, n := range nodes {
		if len(n.sources) > 0 {
			src := n.sources[0]
			for _, s := range n.sources[1:] {
				if s.pos.Filename < src.pos.Filename ||
					(s.pos.Filename == src.pos.Filename && s.pos.Line < src.pos.Line) {
					src = s
				}
			}
			tainted[n.key] = &taintWitness{src: &src}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if tainted[n.key] != nil {
				continue
			}
			for _, e := range n.calls {
				if tainted[e.callee] != nil {
					if ign.suppressed(e.pos.Filename, e.pos.Line, ruleTaint) {
						continue
					}
					tainted[n.key] = &taintWitness{next: e.callee}
					changed = true
					break
				}
			}
		}
	}
	return tainted
}

// taintPath renders the witness chain starting at node key, ending with
// the source description.
func taintPath(g *callGraph, tainted map[string]*taintWitness, key string) string {
	var steps []string
	for key != "" {
		n := g.nodes[key]
		w := tainted[key]
		if n == nil || w == nil {
			steps = append(steps, "?")
			break
		}
		steps = append(steps, n.short)
		if w.src != nil {
			steps = append(steps, w.src.desc)
			break
		}
		key = w.next
	}
	return strings.Join(steps, " -> ")
}

// runTaint reports every call edge from a deterministic-core function to
// a tainted callee. Direct sources inside core functions are not repeated
// here: those are exactly the sites the per-file rules already flag.
func runTaint(g *callGraph, ign *ignoreIndex) []Diagnostic {
	tainted := propagateTaint(g, ign)
	var diags []Diagnostic
	for _, n := range g.sortedNodes() {
		if !isTaintRoot(n.pkgRel) {
			continue
		}
		for _, e := range n.calls {
			if tainted[e.callee] == nil {
				continue
			}
			if ign.suppressed(e.pos.Filename, e.pos.Line, ruleTaint) {
				continue
			}
			path := n.short + " -> " + taintPath(g, tainted, e.callee)
			diags = append(diags, Diagnostic{
				File: e.pos.Filename,
				Line: e.pos.Line,
				Rule: ruleTaint,
				Msg: fmt.Sprintf("deterministic core transitively reaches a nondeterministic source: %s; "+
					"results must be a pure function of (config, seed) — break the chain or justify with //schedlint:ignore taint at this call", path),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		// Deterministic tiebreak: (file, line, message) totally orders the
		// report set.
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Msg < diags[j].Msg
	})
	return diags
}
