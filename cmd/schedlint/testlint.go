package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
)

// Test files are exempt from the determinism rules — tests may randomise,
// fan out, and iterate maps freely — with one exception: in the
// deterministic packages, a test that reads the wall clock is asserting
// on host timing, and a test asserting on host timing is flaky by
// construction (the simulator exists precisely so tests can assert on
// virtual time instead). So _test.go files in deterministic packages are
// linted for the walltime rule only, syntactically: the files are parsed
// but not type-checked (test packages would drag the whole test-dependency
// closure into the load), and a call through the file's own `time` import
// is what fires. A local identifier shadowing the import can in principle
// dodge the check; shadowing an import named `time` in a test would be its
// own review problem.

// lintTestFile reports time.Now / time.Since calls in one parsed test
// file of a deterministic package.
func lintTestFile(fset *token.FileSet, f *ast.File, root string, ign *ignoreIndex) []Diagnostic {
	// Resolve the local name of the "time" import, if any.
	timeName := ""
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "time" {
			continue
		}
		timeName = "time"
		if imp.Name != nil {
			timeName = imp.Name.Name
		}
	}
	if timeName == "" || timeName == "_" {
		return nil
	}

	var diags []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != timeName {
			return true
		}
		if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
			return true
		}
		p := fset.Position(sel.Pos())
		file, err := filepath.Rel(root, p.Filename)
		if err != nil {
			file = p.Filename
		}
		rel := filepath.ToSlash(file)
		if ign.suppressed(rel, p.Line, ruleWalltime) {
			return true
		}
		diags = append(diags, Diagnostic{
			File: rel,
			Line: p.Line,
			Rule: ruleWalltime,
			Msg: "time." + sel.Sel.Name + " in a deterministic-package test: asserting on wall-clock time is flaky by construction; " +
				"assert on the simulated clock (sim.Time) or use testing.B's timer",
		})
		return true
	})
	return diags
}

// lintTestFiles parses and lints the test files of one deterministic
// package. Parse errors are reported as load failures: a test file that
// does not parse cannot be vouched for.
func lintTestFiles(fset *token.FileSet, dir string, names []string, root string, ign *ignoreIndex) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		rel, rerr := filepath.Rel(root, filepath.Join(dir, name))
		if rerr == nil {
			ign.scanFile(fset, f, filepath.ToSlash(rel))
		}
		diags = append(diags, lintTestFile(fset, f, root, ign)...)
	}
	return diags, nil
}
