package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// The call graph underpins the interprocedural passes (taint, invcheck).
// Nodes are module-local function and method declarations; edges are
// statically resolvable calls — package-level functions and methods on
// concrete receivers, including calls made inside function literals
// (attributed to the enclosing declaration, since the literal's body is
// code the declaration can cause to run). Calls through interface values
// and bare function values are opaque: they produce no edge. That makes
// the reachability analysis conservative-but-incomplete in the usual
// direction for a linter — it never invents an edge that cannot exist,
// and the dynamic-dispatch blind spot is covered by the per-file rules,
// which see every package's source directly.

// taintSource is one directly nondeterministic operation inside a
// function body.
type taintSource struct {
	desc string // "time.Now", "go statement", "map range", ...
	pos  token.Position
}

// callEdge is one statically resolved call site.
type callEdge struct {
	callee string // funcKey of the callee
	pos    token.Position
}

// funcNode is one declared function or method in the module.
type funcNode struct {
	key      string // "pkg/path.Func" or "pkg/path.(*Recv).Method"
	short    string // "base.Func" / "base.(*Recv).Method" for path rendering
	pkgRel   string // module-relative package path
	relFile  string // module-relative declaring file
	declBase string // base name of the declaring file
	declLine int
	name     string // bare identifier
	recvType string // receiver base type name, "" for functions
	recvPtr  bool
	exported bool

	sources []taintSource
	calls   []callEdge
	mutates bool // direct mutation of receiver/same-package state
}

// callGraph accumulates nodes package by package as Run type-checks the
// module, then answers reachability queries for the interprocedural
// passes.
type callGraph struct {
	modPath string
	root    string
	nodes   map[string]*funcNode
	order   []string // insertion order: file order within package order
}

func newCallGraph(modPath, root string) *callGraph {
	return &callGraph{modPath: modPath, root: root, nodes: make(map[string]*funcNode)}
}

// funcKey builds the stable cross-package identity of a function object:
// both the declaring package (type-checked from source) and an importing
// package (type-checked against export data) arrive at the same string.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return "" // interface or other unnamed receiver: no concrete decl
		}
		if types.IsInterface(named) {
			return "" // interface method: dynamic dispatch, no static edge
		}
		return fn.Pkg().Path() + ".(" + ptr + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// shortName renders a node for taint-path reporting: package base name
// plus receiver-qualified method name, e.g. "kernel.(*Kernel).Tick" or
// "walltime.Start".
func shortName(pkgPath, recvType string, recvPtr bool, name string) string {
	base := path.Base(pkgPath)
	if recvType == "" {
		return base + "." + name
	}
	ptr := ""
	if recvPtr {
		ptr = "*"
	}
	return base + ".(" + ptr + recvType + ")." + name
}

// sourceOfCall classifies a call to a standard-library function as a
// nondeterminism source. These are exactly the operations the per-file
// rules ban at their call or import site; here they seed the transitive
// analysis so a helper wrapping one of them taints every caller.
func sourceOfCall(pkgPath, name string) string {
	switch pkgPath {
	case "time":
		if name == "Now" || name == "Since" {
			return "time." + name
		}
	case "os":
		if name == "Getenv" || name == "LookupEnv" || name == "Environ" {
			return "os." + name
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		return pkgPath
	}
	return ""
}

// addPackage scans one type-checked module package into the graph.
func (g *callGraph) addPackage(fset *token.FileSet, files []*ast.File, info *types.Info) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g.addFunc(fset, fd, info)
		}
	}
}

func (g *callGraph) relPos(fset *token.FileSet, pos token.Pos) token.Position {
	p := fset.Position(pos)
	if rel, err := filepath.Rel(g.root, p.Filename); err == nil {
		p.Filename = filepath.ToSlash(rel)
	}
	return p
}

func (g *callGraph) addFunc(fset *token.FileSet, fd *ast.FuncDecl, info *types.Info) {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	key := funcKey(obj)
	if key == "" {
		return
	}
	pos := g.relPos(fset, fd.Pos())
	pkgPath := obj.Pkg().Path()
	n := &funcNode{
		key:      key,
		pkgRel:   strings.TrimPrefix(strings.TrimPrefix(pkgPath, g.modPath), "/"),
		relFile:  pos.Filename,
		declBase: path.Base(pos.Filename),
		declLine: pos.Line,
		name:     fd.Name.Name,
		exported: fd.Name.IsExported(),
	}
	var recvObj types.Object
	if sig := obj.Type().(*types.Signature); sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			n.recvPtr = true
		}
		if named, isNamed := t.(*types.Named); isNamed {
			n.recvType = named.Obj().Name()
		}
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			recvObj = info.Defs[fd.Recv.List[0].Names[0]]
		}
	}
	n.short = shortName(pkgPath, n.recvType, n.recvPtr, n.name)

	g.scanBody(fset, fd, info, n, recvObj, obj.Pkg())

	if _, dup := g.nodes[key]; !dup {
		g.order = append(g.order, key)
	}
	g.nodes[key] = n
}

// scanBody walks one declaration body collecting call edges, direct
// nondeterminism sources, and direct state mutation. Mutation tracking is
// alias-aware one level deep: the receiver, any parameter whose type
// points into this package's state (e.g. kernel helpers taking *cpuState),
// and locals derived from either, all count as "this package's state".
func (g *callGraph) scanBody(fset *token.FileSet, fd *ast.FuncDecl, info *types.Info, n *funcNode, recvObj types.Object, pkg *types.Package) {
	aliases := make(map[types.Object]bool)
	if recvObj != nil {
		aliases[recvObj] = true
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && pointsIntoPackage(obj.Type(), pkg) {
					aliases[obj] = true
				}
			}
		}
	}

	rootedInAlias := func(e ast.Expr) bool {
		if id := baseIdent(e); id != nil {
			if obj := info.Uses[id]; obj != nil && aliases[obj] {
				return true
			}
		}
		return false
	}

	hasResults := fd.Type.Results != nil && len(fd.Type.Results.List) > 0

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			n.sources = append(n.sources, taintSource{desc: "go statement", pos: g.relPos(fset, node.Pos())})
		case *ast.RangeStmt:
			// A map range only counts as a source when its iteration
			// order can feed the function's outputs: ranging a map in a
			// function that returns nothing cannot leak ordering to a
			// caller through the return path.
			if hasResults {
				if t := info.TypeOf(node.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						n.sources = append(n.sources, taintSource{desc: "map range", pos: g.relPos(fset, node.Pos())})
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				if node.Tok == token.DEFINE {
					// v := expr rooted in an alias extends the alias set.
					if i < len(node.Rhs) && rootedInAlias(node.Rhs[i]) {
						if id, isIdent := lhs.(*ast.Ident); isIdent {
							if obj := info.Defs[id]; obj != nil {
								aliases[obj] = true
							}
						}
					}
					continue
				}
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if rootedInAlias(lhs) {
						n.mutates = true
					}
				case *ast.Ident:
					// Plain re-binding of a local is not a state mutation.
				}
			}
		case *ast.IncDecStmt:
			switch node.X.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				if rootedInAlias(node.X) {
					n.mutates = true
				}
			}
		case *ast.CallExpr:
			g.scanCall(fset, node, info, n, rootedInAlias)
		}
		return true
	})
}

// scanCall resolves one call expression into either a call edge (module-
// local static callee) or a taint source (nondeterministic stdlib call).
// A call to the builtin delete with an alias-rooted map also marks the
// function as mutating.
func (g *callGraph) scanCall(fset *token.FileSet, call *ast.CallExpr, info *types.Info, n *funcNode, rootedInAlias func(ast.Expr) bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return
	}
	obj := info.Uses[id]
	if obj == nil {
		return
	}
	if b, isBuiltin := obj.(*types.Builtin); isBuiltin {
		if b.Name() == "delete" && len(call.Args) > 0 && rootedInAlias(call.Args[0]) {
			n.mutates = true
		}
		return
	}
	fn, isFunc := obj.(*types.Func)
	if !isFunc || fn.Pkg() == nil {
		return
	}
	pkgPath := fn.Pkg().Path()
	if desc := sourceOfCall(pkgPath, fn.Name()); desc != "" {
		n.sources = append(n.sources, taintSource{desc: desc, pos: g.relPos(fset, call.Pos())})
		return
	}
	if pkgPath != g.modPath && !strings.HasPrefix(pkgPath, g.modPath+"/") {
		return // outside the module: no body to follow
	}
	key := funcKey(fn)
	if key == "" {
		return // interface method: dynamic dispatch
	}
	n.calls = append(n.calls, callEdge{callee: key, pos: g.relPos(fset, call.Pos())})
}

// pointsIntoPackage reports whether t gives write access to state owned
// by pkg: a pointer to (or slice/map of pointers to) a named type
// declared in pkg.
func pointsIntoPackage(t types.Type, pkg *types.Package) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return namedIn(t.Elem(), pkg)
	case *types.Slice:
		return pointsIntoPackage(t.Elem(), pkg)
	case *types.Map:
		return pointsIntoPackage(t.Elem(), pkg)
	}
	return false
}

func namedIn(t types.Type, pkg *types.Package) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == pkg
}

// baseIdent returns the identifier at the root of a selector/index/star
// chain: for `k.cpus[cpu].curr` it returns `k`.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.CallExpr:
			return nil // derived through a call: provenance unknown
		default:
			return nil
		}
	}
}

// sortedNodes returns the graph's nodes in deterministic file/line order.
func (g *callGraph) sortedNodes() []*funcNode {
	nodes := make([]*funcNode, 0, len(g.nodes))
	for _, key := range g.order {
		nodes = append(nodes, g.nodes[key])
	}
	sort.Slice(nodes, func(i, j int) bool {
		// Deterministic tiebreak: (file, line, key) is a total order —
		// two declarations cannot share a file and line.
		if nodes[i].relFile != nodes[j].relFile {
			return nodes[i].relFile < nodes[j].relFile
		}
		if nodes[i].declLine != nodes[j].declLine {
			return nodes[i].declLine < nodes[j].declLine
		}
		return nodes[i].key < nodes[j].key
	})
	return nodes
}

// reaches computes, over the whole graph, which nodes can transitively
// reach any node in targets (a set of funcKeys), following call edges
// forward. Used by invcheck to ask "does this exported mutator ever run
// its invariants check".
func (g *callGraph) reaches(targets map[string]bool) map[string]bool {
	reached := make(map[string]bool, len(targets))
	for k := range targets {
		reached[k] = true
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.sortedNodes() {
			if reached[n.key] {
				continue
			}
			for _, e := range n.calls {
				if reached[e.callee] {
					reached[n.key] = true
					changed = true
					break
				}
			}
		}
	}
	return reached
}

// debugString dumps the graph for tests.
func (g *callGraph) debugString() string {
	var b strings.Builder
	for _, n := range g.sortedNodes() {
		fmt.Fprintf(&b, "%s (mutates=%v)\n", n.key, n.mutates)
		for _, s := range n.sources {
			fmt.Fprintf(&b, "  src %s at %s:%d\n", s.desc, s.pos.Filename, s.pos.Line)
		}
		for _, e := range n.calls {
			fmt.Fprintf(&b, "  -> %s\n", e.callee)
		}
	}
	return b.String()
}
