package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantSpec is one expected diagnostic parsed from a `// want "regex"`
// comment in a fixture file.
type wantSpec struct {
	file    string // relative to the fixture module root, forward slashes
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantMarker = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants scans every fixture .go file for want comments. A line may
// carry several quoted regexes: each becomes its own expectation.
func collectWants(t *testing.T, root string) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantMarker.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				quoted, err := strconv.QuotedPrefix(rest)
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment %q", rel, line, rest)
				}
				pattern, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s:%d: unquoting %q: %v", rel, line, quoted, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", rel, line, pattern, err)
				}
				wants = append(wants, &wantSpec{
					file: filepath.ToSlash(rel), line: line, re: re, raw: pattern,
				})
				rest = strings.TrimSpace(rest[len(quoted):])
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestGoldenFixtures drives the analyzer over the seeded-violation module
// under testdata/src and demands an exact diagnostic set: every want
// comment fires exactly once, nothing else is reported, and the clean
// fixtures (internal/noise, internal/walltime, internal/pool) stay silent.
func TestGoldenFixtures(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("seeded violation fixtures produced no diagnostics")
	}
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatal("no want comments found under testdata/src")
	}

	for _, d := range diags {
		s := d.String()
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && w.re.MatchString(s) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", s)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.raw)
		}
	}

	for _, d := range diags {
		for _, clean := range []string{"internal/noise/", "internal/walltime/", "internal/pool/"} {
			if strings.HasPrefix(d.File, clean) {
				t.Errorf("clean fixture flagged: %s", d)
			}
		}
	}
}

// TestEachRuleFires asserts per-rule coverage of the fixture set, so a rule
// silently disabled by a refactor cannot hide behind the others.
func TestEachRuleFires(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, d := range diags {
		seen[d.Rule]++
	}
	for _, rule := range []string{
		ruleWalltime, ruleRand, ruleMaprange, ruleConc,
		ruleHeap, ruleSortslice, ruleGetenv,
		ruleTaint, ruleInvcheck, ruleStale,
	} {
		if seen[rule] == 0 {
			t.Errorf("rule %q produced no diagnostics on the fixture set", rule)
		}
	}
}

// TestRepoIsClean runs the analyzer over the real repository: the
// determinism contract must hold on every commit, not only in CI.
func TestRepoIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository violates the determinism contract: %s", d)
	}
}

// TestDiagnosticFormat pins the report shape other tooling greps for.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{File: "internal/sim/clock.go", Line: 13, Rule: "walltime", Msg: "call to time.Now"}
	got := d.String()
	want := "internal/sim/clock.go:13: [walltime] call to time.Now"
	if got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
	if fmt.Sprint(d) != got {
		t.Fatal("Diagnostic must format identically through fmt")
	}
}
