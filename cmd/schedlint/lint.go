package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one schedlint finding.
type Diagnostic struct {
	File string // path relative to the module root, forward slashes
	Line int
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Msg)
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Standard     bool
	Export       string
	GoFiles      []string
	TestGoFiles  []string // _test.go in the package itself
	XTestGoFiles []string // _test.go in the external pkg_test package
	Module       *listModule
	Error        *listError
}

type listModule struct {
	Path string
	Dir  string
}

type listError struct {
	Err string
}

// load enumerates the packages matched by patterns under root together with
// their full dependency closure and compiled export data, by shelling out to
// the go command (the only tool that knows the build graph). Export data is
// what lets the type checker resolve imports without re-type-checking the
// world from source.
func load(root string, patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Standard,Export,GoFiles,TestGoFiles,XTestGoFiles,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := &listPkg{}
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export files `go list -export`
// reported, so type-checking a lint target never recurses into source of
// its dependencies.
type exportImporter struct {
	inner   types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, pkgs []*listPkg) *exportImporter {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	e := &exportImporter{exports: exports}
	e.inner = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := e.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.inner.Import(path)
}

// deterministicPkgs are the module-relative package prefixes that form the
// deterministic simulation core: everything inside them must produce
// bitwise-identical results from (config, seed) alone. Packages outside the
// set (stats, trace, topo, cache, perf) either sort before iterating or are
// pure functions of their inputs, and the host-facing cmds may format and
// time freely — but the wall-clock and concurrency rules still apply to
// them.
var deterministicPkgs = []string{
	"internal/sim",
	"internal/kernel",
	"internal/sched",
	"internal/task",
	"internal/rbtree",
	"internal/mpi",
	"internal/nas",
	"internal/noise",
	"internal/cluster",
	"internal/experiments",
	"internal/schedcheck",
	"internal/schedstat",
	"internal/shard",
	"internal/batch",
	"internal/simq",
}

// pkgScope classifies a target package for rule selection.
type pkgScope struct {
	rel           string // module-relative import path
	deterministic bool
	isWalltime    bool // the one package allowed to read the host clock
	isPool        bool // the one package allowed to create goroutines
}

func scopeOf(modPath, importPath string) pkgScope {
	rel := strings.TrimPrefix(importPath, modPath)
	rel = strings.TrimPrefix(rel, "/")
	s := pkgScope{rel: rel}
	s.isWalltime = rel == "internal/walltime"
	s.isPool = rel == "internal/pool"
	for _, p := range deterministicPkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			s.deterministic = true
			break
		}
	}
	return s
}

// FindModuleRoot walks up from dir to the enclosing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// Run lints the module rooted at root, restricted to the packages matched
// by patterns (dependencies are loaded for type information but only
// module-local packages are linted). It layers four passes over one load:
// the per-file syntactic rules, the interprocedural determinism taint, the
// invariants-contract check, and the walltime-only lint of test files in
// deterministic packages — then audits every //schedlint:ignore directive
// for staleness. Test files are otherwise exempt: tests may randomise and
// fan out freely.
func Run(root string, patterns []string) ([]Diagnostic, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := load(root, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, pkgs)
	ign := newIgnoreIndex()
	graph := newCallGraph(modPath, root)

	// Pass 1: parse, type-check, per-file rules; the same walk feeds the
	// call graph and the ignore index. Deferred reporting (diags collected
	// per file, stale audit at the end) keeps suppression-use bookkeeping
	// independent of pass order within a file.
	var diags []Diagnostic
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || p.Module.Dir != root {
			continue
		}
		scope := scopeOf(modPath, p.ImportPath)
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			if rel, rerr := filepath.Rel(root, filepath.Join(p.Dir, name)); rerr == nil {
				ign.scanFile(fset, f, filepath.ToSlash(rel))
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Uses:  make(map[*ast.Ident]types.Object),
			Defs:  make(map[*ast.Ident]types.Object),
		}
		var typeErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if typeErr == nil {
					typeErr = err
				}
			},
		}
		// The package already compiled under `go list -export`, so a type
		// error here is a schedlint bug or stale cache; fail loudly either
		// way rather than lint half-typed syntax.
		conf.Check(p.ImportPath, fset, files, info)
		if typeErr != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, typeErr)
		}
		for _, f := range files {
			diags = append(diags, lintFile(fset, f, info, scope, root, ign)...)
		}
		graph.addPackage(fset, files, info)

		// Pass 4 (interleaved with the load): walltime-only lint of the
		// deterministic packages' test files, syntactic by design.
		if scope.deterministic {
			testNames := append(append([]string{}, p.TestGoFiles...), p.XTestGoFiles...)
			tdiags, err := lintTestFiles(fset, p.Dir, testNames, root, ign)
			if err != nil {
				return nil, err
			}
			diags = append(diags, tdiags...)
		}
	}

	// Pass 2: interprocedural determinism taint over the whole module.
	diags = append(diags, runTaint(graph, ign)...)

	// Pass 3: structural invariants-contract check.
	diags = append(diags, runInvcheck(graph, ign)...)

	// Finally: report ignore directives that suppressed nothing anywhere.
	diags = append(diags, ign.audit()...)

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Msg < diags[j].Msg
	})
	return diags, nil
}
