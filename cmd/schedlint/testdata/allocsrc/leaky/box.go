// Package leaky is a fixture for the allocation gate: Box forces a
// deliberate heap escape that the budget tests pin against.
package leaky

// Box returns the address of its parameter, forcing it to the heap.
func Box(x int) *int {
	return &x
}

// Sum stays on the stack: it must contribute nothing to the budget.
func Sum(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
