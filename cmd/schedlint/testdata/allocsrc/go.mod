module allocsrc

go 1.22
