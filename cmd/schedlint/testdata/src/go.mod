module hplsim

go 1.22
