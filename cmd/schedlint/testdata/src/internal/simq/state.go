// Package simq is a fixture: the simulation-queue state machine joined the
// deterministic core — journal replay must be a pure function of the
// record stream — so the core-scoped rules, the taint audit, and the
// invariants contract all apply to it.
package simq

import "hplsim/internal/util"

// State is an audited queue state machine.
type State struct {
	jobs map[int]string
	ids  []int
}

// Apply mutates and runs the audit: clean.
func (s *State) Apply(id int) {
	s.ids = append(s.ids, id)
	s.check()
}

// Len is read-only: exempt from the contract.
func (s *State) Len() int { return len(s.ids) }

// Reset mutates State without ever reaching the audit.
func (s *State) Reset() { // want `\[invcheck\] simq\.\(\*State\)\.Reset mutates State state but never reaches \(\*State\)\.check`
	s.ids = s.ids[:0]
}

// Names leaks map iteration order from the job table.
func (s *State) Names() int {
	n := 0
	for _, name := range s.jobs { // want `\[maprange\] range over map\[int\]string`
		n += len(name)
	}
	return n
}

// Stamp reaches the host clock through a module-local helper: invisible
// to the per-file walltime rule, caught because simq is a taint root.
func Stamp() int64 {
	return util.Jitter() // want `\[taint\] deterministic core transitively reaches a nondeterministic source: simq\.Stamp -> util\.Jitter -> walltime\.Start -> time\.Now`
}
