//go:build !invariants

package simq

// check is the no-op stub compiled into normal builds; the invariants
// build replaces it with the real queue-state audit.
func (s *State) check() {}
