// Package task is a fixture: unmanaged concurrency in the deterministic
// core.
package task

import "sync"

// FanOut spawns ad-hoc goroutines instead of using internal/pool.
func FanOut(n int) {
	var wg sync.WaitGroup   // want `\[conc\] sync\.WaitGroup`
	ch := make(chan int, n) // want `\[conc\] channel creation`
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `\[conc\] go statement`
			defer wg.Done()
			ch <- 1
		}()
	}
	wg.Wait()
}

// Consume receives from an existing channel: only creation is flagged.
func Consume(ch chan int) int {
	return <-ch
}
