package shard

// Window is the audited synchronization window: the invariants contract
// requires every exported mutating method to reach the check stub.
type Window struct {
	horizon int64
	open    bool
}

// Open mutates and self-audits: clean.
func (w *Window) Open(h int64) {
	w.horizon, w.open = h, true
	w.check()
}

// Horizon is read-only: exempt from the contract.
func (w *Window) Horizon() int64 { return w.horizon }

// Widen mutates Window state without ever reaching the audit.
func (w *Window) Widen(d int64) { // want `\[invcheck\] shard\.\(\*Window\)\.Widen mutates Window state but never reaches \(\*Window\)\.check`
	w.horizon += d
}
