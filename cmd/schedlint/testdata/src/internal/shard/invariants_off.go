//go:build !invariants

package shard

// check is the no-op stub compiled into normal builds; the invariants
// build replaces it with the real window audit.
func (w *Window) check() {}
