// Package shard is a fixture: the parallel-sharding layer joined the
// deterministic core and the taint entry packages, and its gang spawn
// models the one sanctioned concurrency crossing — an edge-level
// //schedlint:ignore taint directive that absorbs the taint where the
// dependency is justified, so callers above it stay clean.
package shard

import (
	"time"

	"hplsim/internal/util"
)

// Replay fans work out through the sanctioned gang edge: the directive
// suppresses the crossing and stops the taint there.
func Replay(fn func()) {
	util.Fanout(fn) //schedlint:ignore taint — fixture: pool-owned gang, results shard-count independent
}

// Phase sits upstream of the sanctioned edge: it must not be reported,
// or the directive would have to be repeated at every caller instead of
// living where the dependency is taken.
func Phase(fn func()) {
	Replay(fn)
}

// Skew reaches the clock through a helper with no directive: the taint
// pass must still flag the crossing now that shard is an entry package.
func Skew() int64 {
	return util.Jitter() // want `\[taint\] .*shard\.Skew -> util\.Jitter -> walltime\.Start`
}

// Stamp reads the host clock directly: shard is core now, so the
// per-file walltime rule owns the site.
func Stamp() int64 {
	return time.Now().UnixNano() // want `\[walltime\] call to time\.Now`
}
