//go:build !invariants

package rbtree

// check is the no-op stub compiled into normal builds; the invariants
// build replaces it with the real structural audit.
func (t *Tree) check() {}
