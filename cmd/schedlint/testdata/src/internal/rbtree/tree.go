// Package rbtree is a fixture: the invariants-contract check. The
// package carries a -tags invariants audit stub (invariants_off.go), so
// every exported mutating method must reach it.
package rbtree

// Tree is an audited structure.
type Tree struct {
	size int
	keys []int
}

// Insert mutates and runs the audit: clean.
func (t *Tree) Insert(k int) {
	t.keys = append(t.keys, k)
	t.size++
	t.check()
}

// Len is read-only: exempt from the contract.
func (t *Tree) Len() int { return t.size }

// Clobber mutates Tree state without ever reaching the audit.
func (t *Tree) Clobber() { // want `\[invcheck\] rbtree\.\(\*Tree\)\.Clobber mutates Tree state but never reaches \(\*Tree\)\.check`
	t.size = 0
	t.keys = t.keys[:0]
}

// Reset mutates through an unexported helper — still no audit on any
// path, and the transitive closure must see that.
func (t *Tree) Reset() { // want `\[invcheck\] rbtree\.\(\*Tree\)\.Reset mutates Tree state but never reaches \(\*Tree\)\.check`
	t.clear()
}

func (t *Tree) clear() {
	t.size = 0
}

// Drain mutates but intentionally defers the audit to its callers.
//
//schedlint:ignore invcheck
func (t *Tree) Drain() []int {
	out := t.keys
	t.keys = nil
	t.size = 0
	return out
}
