// Package walltime is the allowlisted host-clock fixture: wall-clock reads
// here must not be reported.
package walltime

import "time"

// Start reads the host clock inside the one package allowed to.
func Start() time.Time {
	return time.Now()
}

// ElapsedSince measures against the host clock.
func ElapsedSince(t0 time.Time) time.Duration {
	return time.Since(t0)
}
