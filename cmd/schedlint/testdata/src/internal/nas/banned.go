// Package nas is a fixture: banned APIs in the deterministic core.
package nas

import (
	"container/heap" // want `\[heap\] import container/heap`
	"os"
	"sort"
)

// Reheap touches the banned heap package.
func Reheap(h heap.Interface) {
	heap.Init(h)
}

// Flaky sorts with an unstable comparator and no tiebreak justification.
func Flaky(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `\[sortslice\] sort\.Slice is unstable`
}

// Justified carries the required comment and is allowed.
func Justified(xs []int) {
	// Deterministic tiebreak: the inputs are distinct by construction, so
	// equal-element order cannot arise.
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Env reads host environment from simulation code.
func Env() string {
	return os.Getenv("HPLSIM_MODE") // want `\[getenv\] call to os\.Getenv`
}

// Lookup reads host environment from simulation code.
func Lookup() bool {
	_, ok := os.LookupEnv("HPLSIM_MODE") // want `\[getenv\] call to os\.LookupEnv`
	return ok
}
