package schedcheck

import "hplsim/internal/util"

// CorpusHash folds a map through a helper whose iteration order feeds the
// returned hash: shrinking stops being a pure function of the seed.
func CorpusHash(m map[string]int) int {
	return util.Fold(m) // want `\[taint\] .*: schedcheck\.CorpusHash -> util\.Fold -> map range`
}
