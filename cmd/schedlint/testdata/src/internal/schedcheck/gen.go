// Package schedcheck is a fixture: the property harness is part of the
// deterministic core — scenario generation and shrinking must be a pure
// function of the seed, so the core-scoped rules (maprange, sortslice,
// getenv) apply to it in addition to the repo-wide ones.
package schedcheck

import (
	"os"
	"sort"
)

// Scenario is a minimal stand-in for the real scenario schema.
type Scenario struct {
	Seed  uint64
	Tags  map[string]int
	Ranks []int
}

// Fingerprint folds the tag map in iteration order: nondeterministic.
func Fingerprint(s Scenario) uint64 {
	h := s.Seed
	for k, v := range s.Tags { // want `\[maprange\] range over map\[string\]int`
		h ^= uint64(len(k)) * uint64(v)
	}
	return h
}

// SortCandidates orders shrink candidates without a tiebreak: equal-cost
// candidates land in nondeterministic order, so shrinking stops being a
// pure function of the seed.
func SortCandidates(costs []int) {
	sort.Slice(costs, func(i, j int) bool { return costs[i] < costs[j] }) // want `\[sortslice\] sort\.Slice is unstable`
}

// SortRanks is allowed: the less function has a deterministic tiebreak.
func SortRanks(ranks []int) {
	// Keys are unique rank IDs, so the order is deterministic.
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
}

// CorpusSize reads tuning from the environment, invisible to (config, seed).
func CorpusSize() string {
	return os.Getenv("SCHEDCHECK_SCENARIOS") // want `\[getenv\] call to os\.Getenv`
}
