// Package schedstat is a fixture: the observability layer runs inside the
// simulation (its events feed trace fingerprints and golden files), so the
// core-scoped determinism rules apply — encoding order, table order, and
// aggregation must be pure functions of the event stream.
package schedstat

import (
	"sort"
	"time"
)

// Ledger is a minimal stand-in for the real accounting ledger.
type Ledger struct {
	Waits  map[int]int64
	Names  []string
	Stamps []int64
}

// TotalWait folds the per-task map in iteration order: the float/ordering
// of any downstream formatting becomes nondeterministic.
func TotalWait(l Ledger) int64 {
	var total int64
	for id, w := range l.Waits { // want `\[maprange\] range over map\[int\]int64`
		total += w + int64(id)
	}
	return total
}

// SortRows orders table rows without a tiebreak: tasks with equal waits
// render in nondeterministic order, so golden tables drift run to run.
func SortRows(waits []int64) {
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] }) // want `\[sortslice\] sort\.Slice is unstable`
}

// SortNames is allowed: names are unique, so the order is deterministic.
func SortNames(l Ledger) {
	// Keys are unique task names, so the order is deterministic.
	sort.Slice(l.Names, func(i, j int) bool { return l.Names[i] < l.Names[j] })
}

// StampNow leaks the host clock into a trace record.
func StampNow(l *Ledger) {
	l.Stamps = append(l.Stamps, time.Now().UnixNano()) // want `\[walltime\] call to time\.Now`
}
