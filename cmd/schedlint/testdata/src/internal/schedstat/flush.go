package schedstat

import "hplsim/internal/util"

// FlushAsync fans work out through a helper goroutine: the go statement
// is one hop away, but the core edge is still flagged.
func FlushAsync(f func()) {
	util.Fanout(f) // want `\[taint\] .*: schedstat\.FlushAsync -> util\.Fanout -> go statement`
}
