// Package sim is a fixture: wall-clock and randomness violations inside a
// deterministic-core package.
package sim

import (
	"crypto/rand"     // want `\[rand\] import crypto/rand`
	mrand "math/rand" // want `\[rand\] import math/rand`
	"time"
)

// Stamp reads the host clock from simulation code.
func Stamp() int64 {
	return time.Now().UnixNano() // want `\[walltime\] call to time\.Now`
}

// Age measures host elapsed time from simulation code.
func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `\[walltime\] call to time\.Since`
}

// Draw uses the global math/rand stream (flagged at the import).
func Draw() int {
	return mrand.Intn(8)
}

// Fill uses crypto entropy (flagged at the import).
func Fill(b []byte) {
	rand.Read(b)
}
