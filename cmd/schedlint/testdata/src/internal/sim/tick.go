package sim

import "hplsim/internal/util"

// Tick reaches the host clock through two layers of module-local
// helpers: invisible to the per-file walltime rule, caught by taint with
// the full witness path.
func Tick() int64 {
	return util.Jitter() // want `\[taint\] deterministic core transitively reaches a nondeterministic source: sim\.Tick -> util\.Jitter -> walltime\.Start -> time\.Now`
}

// TickJustified takes the same dependency with the justification recorded
// at the call edge crossing into the core — the suppression is used, so
// the stale audit stays quiet about it.
func TickJustified() int64 {
	//schedlint:ignore taint
	return util.Jitter()
}

// Retry reaches the clock through a call cycle.
func Retry() int64 {
	return util.Pong(3) // want `\[taint\] .*: sim\.Retry -> util\.Pong -> util\.Ping -> walltime\.Start -> time\.Now`
}
