package sim

import (
	"testing"
	"time"
)

// TestStampLatency asserts on host elapsed time: flaky by construction,
// and the one rule test files in deterministic packages are held to.
func TestStampLatency(t *testing.T) {
	t0 := time.Now()                  // want `\[walltime\] time\.Now in a deterministic-package test`
	if time.Since(t0) > time.Second { // want `\[walltime\] time\.Since in a deterministic-package test`
		t.Fatal("suspiciously slow")
	}
}
