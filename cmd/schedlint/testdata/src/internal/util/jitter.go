// Package util is a fixture: module-local helpers that hide
// nondeterminism one call away from the deterministic core. util is
// outside the core, so the core-scoped per-file rules stay silent here;
// the interprocedural taint pass flags the core call edges that reach
// into these helpers instead.
package util

import (
	"os"

	"hplsim/internal/walltime"
)

// Jitter wraps the wall clock behind one module-local hop.
func Jitter() int64 {
	return walltime.Start().UnixNano()
}

// Knob wraps an environment read. The getenv rule is core-scoped, so
// nothing is flagged here.
func Knob() string {
	return os.Getenv("HPLSIM_KNOB")
}

// Fanout wraps a goroutine spawn. The conc rule is repo-wide, so the go
// statement is flagged directly — and core callers are flagged again by
// taint, at their call edge.
func Fanout(f func()) {
	go f() // want `\[conc\] go statement`
}

// Fold leaks map iteration order through its return value: a taint
// source, though the maprange rule itself is core-scoped and stays
// silent here.
func Fold(m map[string]int) int {
	acc := 0
	for k, v := range m {
		acc += len(k) * v
	}
	return acc
}

// Ping and Pong recurse into each other before reaching the clock: the
// taint fixpoint must terminate through the cycle and still report a
// finite witness path.
func Ping(n int) int64 {
	if n <= 0 {
		return walltime.Start().UnixNano()
	}
	return Pong(n - 1)
}

// Pong bounces back to Ping.
func Pong(n int) int64 {
	return Ping(n)
}
