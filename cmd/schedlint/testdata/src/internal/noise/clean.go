// Package noise is the clean fixture: a deterministic-core package using
// every allowed escape hatch. schedlint must report nothing here.
package noise

import (
	"os"
	"sort"
)

// Sorted uses sort.Slice with the required justification comment.
func Sorted(xs []int) {
	// Deterministic tiebreak: values are compared with a strict total
	// order over distinct elements.
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Debug reads the environment behind an explicit suppression: the value
// only gates extra logging and never feeds back into simulation state.
func Debug() bool {
	//schedlint:ignore getenv
	return os.Getenv("HPLSIM_DEBUG") != ""
}

// Keys collects and sorts map keys before iterating: no map range.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//schedlint:ignore maprange
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
