// Package stats is a fixture for rule scoping: it is NOT part of the
// deterministic core, so map iteration, sort.Slice, and os.Getenv are
// allowed — but the repo-wide wall-clock and concurrency rules still apply.
package stats

import (
	"os"
	"sort"
	"time"
)

// Group may iterate maps freely outside the core.
func Group(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

// Rank may use sort.Slice without justification outside the core.
func Rank(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Home may read the environment outside the core.
func Home() string {
	return os.Getenv("HOME")
}

// Stamp still may not read the wall clock anywhere in the module.
func Stamp() time.Time {
	return time.Now() // want `\[walltime\] call to time\.Now`
}
