package stats

import (
	"testing"
	"time"
)

// TestStampOutsideCore may read the wall clock freely: stats is outside
// the deterministic core, so its test files are not linted at all.
func TestStampOutsideCore(t *testing.T) {
	if time.Since(time.Now()) > time.Hour {
		t.Fatal("clock went backwards")
	}
}
