package stats

import "time"

// Deadline suppresses the walltime finding it actually has — that token
// is used — but the maprange token guards nothing and is stale.
func Deadline() time.Time {
	return time.Now() //schedlint:ignore walltime maprange // want `\[staleignore\] ignore directive for "maprange" suppresses no finding`
}

// Ceil is clean code under a blanket directive that suppresses nothing.
func Ceil(x float64) float64 {
	//schedlint:ignore // want `\[staleignore\] blanket ignore directive suppresses no finding`
	return x
}
