// Package kernel is a fixture: nondeterministic iteration in the
// deterministic core.
package kernel

// Counters is a named map type: the rule must see through the name.
type Counters map[string]int

// Sum iterates a map directly.
func Sum(m map[int]int) int {
	s := 0
	for k, v := range m { // want `\[maprange\] range over map\[int\]int`
		s += k + v
	}
	return s
}

// Total iterates a named map type.
func Total(c Counters) int {
	s := 0
	for _, v := range c { // want `\[maprange\] range over hplsim/internal/kernel\.Counters`
		s += v
	}
	return s
}

// SliceSum must not be flagged: slices iterate in index order.
func SliceSum(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
