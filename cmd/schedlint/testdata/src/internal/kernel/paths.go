package kernel

import "hplsim/internal/util"

// Budget tunes core behaviour from the host environment, transitively:
// the os.Getenv call sits in another package where the per-file getenv
// rule does not apply, so only taint can see the dependency.
func Budget() string {
	return util.Knob() // want `\[taint\] .*: kernel\.Budget -> util\.Knob -> os\.Getenv`
}
