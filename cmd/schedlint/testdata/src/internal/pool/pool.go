// Package pool is the allowlisted concurrency fixture: goroutines,
// WaitGroups, and channels here must not be reported.
package pool

import "sync"

// ForN is the only sanctioned fan-out primitive.
func ForN(n int, fn func(int)) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
	close(done)
}
