//go:build !invariants

package batch

// check is the no-op stub compiled into normal builds; the invariants
// build replaces it with the real heap-order audit.
func (q *Queue) check() {}
