// Package batch is a fixture: the cluster batch layer joined the
// deterministic core, so all core-scoped rules and the invariants
// contract apply to its job queue.
package batch

// Queue is an audited priority queue.
type Queue struct {
	jobs []int
}

// Push mutates and runs the audit: clean.
func (q *Queue) Push(id int) {
	q.jobs = append(q.jobs, id)
	q.check()
}

// Len is read-only: exempt from the contract.
func (q *Queue) Len() int { return len(q.jobs) }

// Drop mutates Queue state without ever reaching the audit.
func (q *Queue) Drop() { // want `\[invcheck\] batch\.\(\*Queue\)\.Drop mutates Queue state but never reaches \(\*Queue\)\.check`
	q.jobs = q.jobs[:0]
}
