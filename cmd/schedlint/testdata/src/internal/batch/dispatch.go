package batch

import "hplsim/internal/util"

// Tally leaks map iteration order from the batch dispatcher.
func Tally(nodes map[int]int) int {
	s := 0
	for _, free := range nodes { // want `\[maprange\] range over map\[int\]int`
		s += free
	}
	return s
}

// Stamp reaches the host clock through a module-local helper: invisible
// to the per-file walltime rule, caught because batch is a taint root.
func Stamp() int64 {
	return util.Jitter() // want `\[taint\] deterministic core transitively reaches a nondeterministic source: batch\.Stamp -> util\.Jitter -> walltime\.Start -> time\.Now`
}
