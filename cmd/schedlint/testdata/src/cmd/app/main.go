// Command app is a fixture: the wall-clock rule reaches host-facing cmds
// too — they must route timing through internal/walltime.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now() // want `\[walltime\] call to time\.Now`
	fmt.Println(start)
}
