package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// allocPatterns are the hot-path packages under the allocation budget:
// the packages whose inner loops earned their 0-alloc claims in the
// benchmark suites and must not silently regain heap traffic.
var allocPatterns = []string{
	"./internal/sim",
	"./internal/sched/...",
	"./internal/kernel",
	"./internal/topo",
	"./internal/schedstat",
	"./internal/shard",
	"./internal/batch",
	"./internal/simq",
}

// allocBudget is the committed per-function escape budget.
type allocBudget struct {
	// Toolchain records which compiler produced the counts: escape
	// analysis is a compiler implementation detail, so counts are only
	// comparable within one go minor version.
	Toolchain string `json:"toolchain"`
	// Patterns documents the package set the budget covers.
	Patterns []string `json:"patterns"`
	// Funcs maps "pkg/rel/path.(*Recv).Method" to its allowed number of
	// heap-escape sites. Functions absent from the map have budget 0.
	Funcs map[string]int `json:"funcs"`
}

// marshalBudget renders the canonical byte form: sorted keys (Go's JSON
// encoder sorts map keys), two-space indent, trailing newline. `-alloc
// -update` must be byte-identical when nothing changed, so this is the
// only serializer.
func marshalBudget(b *allocBudget) []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		panic("schedlint: marshaling alloc budget: " + err.Error()) // struct of strings and ints cannot fail
	}
	return append(out, '\n')
}

func readBudget(path string) (*allocBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading alloc budget: %v (run `schedlint -alloc -update` to create it)", err)
	}
	b := &allocBudget{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("parsing alloc budget %s: %v", path, err)
	}
	return b, nil
}

// declSite locates a function for diagnostics.
type declSite struct {
	file string // module-relative, forward slashes
	line int
}

// funcIndex maps (file, line) ranges to function keys for one package set.
type funcIndex struct {
	byFile map[string][]declSpan // keyed by module-relative file path
	sites  map[string]declSite   // funcKey -> declaration site
}

type declSpan struct {
	start, end int
	key        string
}

// computeAlloc builds the current escape counts for the packages matched
// by patterns: one `go build -gcflags=-m` per package in sorted import
// order (per-package runs pin the output order; the go command replays
// compiler diagnostics from the build cache byte-identically), parsed and
// attributed to enclosing declarations.
func computeAlloc(root string, patterns []string) (map[string]int, *funcIndex, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := load(root, patterns)
	if err != nil {
		return nil, nil, err
	}
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || p.Module.Dir != root {
			continue
		}
		targets = append(targets, p)
	}
	// load returns the dependency closure too; restrict to the packages
	// the patterns actually matched by rebuilding the match list.
	matched, err := listMatched(root, patterns)
	if err != nil {
		return nil, nil, err
	}
	var build []*listPkg
	for _, p := range targets {
		if matched[p.ImportPath] {
			build = append(build, p)
		}
	}
	// Deterministic tiebreak: import paths are unique, sorted
	// lexicographically.
	sort.Slice(build, func(i, j int) bool { return build[i].ImportPath < build[j].ImportPath })

	idx := &funcIndex{byFile: make(map[string][]declSpan), sites: make(map[string]declSite)}
	fset := token.NewFileSet()
	for _, p := range build {
		rel := strings.TrimPrefix(strings.TrimPrefix(p.ImportPath, modPath), "/")
		for _, name := range p.GoFiles {
			abs := filepath.Join(p.Dir, name)
			f, err := parser.ParseFile(fset, abs, nil, 0)
			if err != nil {
				return nil, nil, fmt.Errorf("parse %s: %v", name, err)
			}
			relFile, err := filepath.Rel(root, abs)
			if err != nil {
				return nil, nil, err
			}
			relFile = filepath.ToSlash(relFile)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				key := rel + "." + recvPrefix(fd) + fd.Name.Name
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				idx.byFile[relFile] = append(idx.byFile[relFile], declSpan{start: start.Line, end: end.Line, key: key})
				idx.sites[key] = declSite{file: relFile, line: start.Line}
			}
		}
	}

	counts := make(map[string]int)
	for _, p := range build {
		cmd := exec.Command("go", "build", "-gcflags=-m", p.ImportPath)
		cmd.Dir = root
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, nil, fmt.Errorf("go build -gcflags=-m %s: %v\n%s", p.ImportPath, err, stderr.String())
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(p.ImportPath, modPath), "/")
		for _, d := range parseEscapeDiagnostics(stderr.Bytes()) {
			counts[idx.attribute(rel, d)]++
		}
	}
	return counts, idx, nil
}

// attribute maps one diagnostic to a function key within package pkgRel.
func (idx *funcIndex) attribute(pkgRel string, d escapeDiag) string {
	if strings.HasPrefix(d.File, "<autogenerated") {
		return pkgRel + ".(autogenerated)"
	}
	for _, span := range idx.byFile[filepath.ToSlash(d.File)] {
		if span.start <= d.Line && d.Line <= span.end {
			return span.key
		}
	}
	return pkgRel + ".(toplevel)"
}

// recvPrefix renders a declaration's receiver as "(T)." / "(*T)." (type
// parameters stripped), or "" for plain functions.
func recvPrefix(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	star := ""
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
		star = "*"
	}
	switch t := t.(type) {
	case *ast.IndexExpr: // generic receiver Tree[V]
		if id, ok := t.X.(*ast.Ident); ok {
			return "(" + star + id.Name + ")."
		}
	case *ast.IndexListExpr: // generic receiver with several type params
		if id, ok := t.X.(*ast.Ident); ok {
			return "(" + star + id.Name + ")."
		}
	case *ast.Ident:
		return "(" + star + t.Name + ")."
	}
	return "(" + star + "?)."
}

// listMatched returns the import paths the patterns match directly
// (without the dependency closure load adds).
func listMatched(root string, patterns []string) (map[string]bool, error) {
	args := append([]string{"list"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	matched := make(map[string]bool)
	for _, line := range strings.Split(stdout.String(), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			matched[line] = true
		}
	}
	return matched, nil
}

// toolchainMinor truncates a runtime version to its minor release:
// "go1.24.0" -> "go1.24". Escape analysis is stable within a minor.
func toolchainMinor(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// AllocUpdate regenerates the budget file from the current tree.
func AllocUpdate(root string, patterns []string, path string) error {
	counts, _, err := computeAlloc(root, patterns)
	if err != nil {
		return err
	}
	b := &allocBudget{Toolchain: runtime.Version(), Patterns: patterns, Funcs: counts}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, marshalBudget(b), 0o644)
}

// AllocCheck diffs the current escape counts against the committed
// budget. It returns the findings, or a non-empty skip reason when the
// gate cannot meaningfully run (budget recorded under a different
// compiler minor — counts are not comparable, CI pins the right one).
func AllocCheck(root string, patterns []string, path string) ([]Diagnostic, string, error) {
	budget, err := readBudget(path)
	if err != nil {
		return nil, "", err
	}
	if toolchainMinor(budget.Toolchain) != toolchainMinor(runtime.Version()) {
		return nil, fmt.Sprintf("alloc budget recorded with %s but running %s; escape counts are only comparable within a compiler minor",
			budget.Toolchain, runtime.Version()), nil
	}
	counts, idx, err := computeAlloc(root, patterns)
	if err != nil {
		return nil, "", err
	}
	relBudget, rerr := filepath.Rel(root, path)
	if rerr != nil {
		relBudget = path
	}
	relBudget = filepath.ToSlash(relBudget)

	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	for k := range budget.Funcs {
		if _, present := counts[k]; !present {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var diags []Diagnostic
	for _, k := range keys {
		got, want := counts[k], budget.Funcs[k]
		if got == want {
			continue
		}
		site, known := idx.sites[k]
		if !known {
			site = declSite{file: relBudget, line: 1}
		}
		switch {
		case got > want:
			diags = append(diags, Diagnostic{
				File: site.file, Line: site.line, Rule: ruleAlloc,
				Msg: fmt.Sprintf("%s: %d heap escape(s), budget %d; a hot path gained an allocation — "+
					"eliminate it or run `schedlint -alloc -update` with a justification", k, got, want),
			})
		default:
			diags = append(diags, Diagnostic{
				File: site.file, Line: site.line, Rule: ruleAlloc,
				Msg: fmt.Sprintf("%s: %d heap escape(s), budget %d; the budget is stale and would hide the "+
					"next regression — run `schedlint -alloc -update`", k, got, want),
			})
		}
	}
	return diags, "", nil
}
