#!/usr/bin/env bash
# simq_crash_harness.sh — the service-level crash-recovery gate, run against
# the real binaries (not httptest): start simqd, put work through it, kill it
# with SIGKILL mid-session, restart it on the same state directory, and
# demand (a) the recovered queue state matches what was journaled, (b) the
# artifact spooled before the crash is still served byte-identically, and
# (c) a resubmission of the same payload after the crash produces a
# byte-identical artifact — the retried-after-crash determinism contract.
#
# Usage: scripts/simq_crash_harness.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-8351}"
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"

WORK="$(mktemp -d)"
STATE="$WORK/state"
SIMQD_PID=""
cleanup() {
    if [ -n "$SIMQD_PID" ]; then
        kill -9 "$SIMQD_PID" 2>/dev/null || true
        wait "$SIMQD_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/simqd" ./cmd/simqd
go build -o "$WORK/psq" ./cmd/psq
PSQ="$WORK/psq"

# A sub-second deterministic payload (the tests' fast custom workload).
cat > "$WORK/job.json" <<'EOF'
{"custom":{"bench":"svc","class":"T","ranks":4,"iterations":4,"target_seconds":0.05,"sensitivity":0.3},"scheme":"hpl","seed":7,"topo":"2x2x2","fastforward":true,"nostorms":true}
EOF

start_simqd() {
    "$WORK/simqd" -dir "$STATE" -addr "$ADDR" &
    SIMQD_PID=$!
    for _ in $(seq 1 50); do
        if curl -sf "$BASE/api/stats" > /dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "simqd did not come up on $ADDR" >&2
    exit 1
}

echo "== session one: submit, run, crash"
start_simqd
JOB_A="$("$PSQ" submit -addr "$BASE" -client harness -name before-crash "$WORK/job.json")"
"$PSQ" work -addr "$BASE" -name w1 -once
# Job B goes in after the worker pass, so it is pending when the crash hits.
JOB_B="$("$PSQ" submit -addr "$BASE" -client harness -name survives-crash-queued "$WORK/job.json")"
"$PSQ" result -addr "$BASE" "$JOB_A" > "$WORK/artifact_a_before.bin"
test -s "$WORK/artifact_a_before.bin"
STATS_BEFORE="$("$PSQ" stats -addr "$BASE" | head -1)"
echo "   pre-crash: $STATS_BEFORE"

echo "== SIGKILL the dispatcher (pid $SIMQD_PID)"
kill -9 "$SIMQD_PID"
wait "$SIMQD_PID" 2>/dev/null || true
SIMQD_PID=""

echo "== session two: restart on the same state directory"
start_simqd
STATS_AFTER="$("$PSQ" stats -addr "$BASE" | head -1)"
echo "   recovered: $STATS_AFTER"
if [ "$STATS_BEFORE" != "$STATS_AFTER" ]; then
    echo "FAIL: recovered queue aggregates differ from pre-crash state" >&2
    exit 1
fi

echo "== artifact spooled before the crash is still served, byte-identical"
"$PSQ" result -addr "$BASE" "$JOB_A" > "$WORK/artifact_a_after.bin"
cmp "$WORK/artifact_a_before.bin" "$WORK/artifact_a_after.bin"

echo "== the job queued across the crash still runs, to the same bytes"
"$PSQ" work -addr "$BASE" -name w2 -once
"$PSQ" result -addr "$BASE" "$JOB_B" > "$WORK/artifact_b.bin"
cmp "$WORK/artifact_a_before.bin" "$WORK/artifact_b.bin"

echo "== a fresh post-crash submission of the same payload reproduces them"
JOB_C="$("$PSQ" submit -addr "$BASE" -client harness -name after-crash "$WORK/job.json")"
"$PSQ" work -addr "$BASE" -name w3 -once
"$PSQ" result -addr "$BASE" "$JOB_C" > "$WORK/artifact_c.bin"
cmp "$WORK/artifact_a_before.bin" "$WORK/artifact_c.bin"

echo "== drain to quiescence"
"$PSQ" drain -addr "$BASE"
"$PSQ" stats -addr "$BASE" | grep -q "quiesced=true"

echo "PASS: crash-recovery and retried-after-crash determinism hold at the binary level"
