// Package task defines the task control block shared by the scheduler
// classes and the simulated kernel: identity, scheduling policy and
// priority, run state, CPU affinity, per-class scheduling-entity fields,
// cache state, the task's pending work, and accounting counters.
package task

import (
	"fmt"
	"math"

	"hplsim/internal/cache"
	"hplsim/internal/rbtree"
	"hplsim/internal/sim"
	"hplsim/internal/topo"
)

// Policy selects the scheduling class and intra-class discipline of a task,
// mirroring Linux's SCHED_* policies plus the paper's new HPC policy.
type Policy int

const (
	// Normal is SCHED_NORMAL, handled by CFS. It is deliberately the
	// zero value: an unspecified policy means an ordinary task.
	Normal Policy = iota
	// FIFO is SCHED_FIFO: real-time, runs until it blocks or a higher
	// priority task preempts it.
	FIFO
	// RR is SCHED_RR: real-time round-robin with a timeslice.
	RR
	// HPC is the paper's new policy: a class strictly between the
	// real-time and normal classes, with a round-robin runqueue and
	// topology-aware fork-time placement.
	HPC
	// Idle marks the per-CPU idle task (swapper).
	Idle
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case RR:
		return "RR"
	case HPC:
		return "HPC"
	case Normal:
		return "NORMAL"
	case Idle:
		return "IDLE"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// RealTime reports whether the policy belongs to the real-time class.
func (p Policy) RealTime() bool { return p == FIFO || p == RR }

// State is the lifecycle state of a task.
type State int

const (
	// New: created, never enqueued.
	New State = iota
	// Runnable: on a runqueue, waiting for a CPU.
	Runnable
	// Running: currently on a CPU.
	Running
	// Sleeping: off the runqueues, waiting for a timer or an event.
	Sleeping
	// Dead: exited.
	Dead
)

func (s State) String() string {
	switch s {
	case New:
		return "new"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Sleeping:
		return "sleeping"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// SpinWork is the Work value of a task that is busy-waiting: it consumes its
// CPU but never completes; the waited-for event replaces the work.
const SpinWork = math.MaxFloat64

// CFSEntity holds the per-task state of the CFS class.
type CFSEntity struct {
	// VRuntime is the task's weighted virtual runtime in nanoseconds.
	VRuntime uint64
	// Weight is the load weight derived from the nice value.
	Weight int64
	// SliceStart is the vruntime at which the current timeslice began,
	// used for tick-driven preemption.
	SliceStart uint64
	// Node is the task's node in the CFS timeline while queued.
	Node *rbtree.Node[*Task]
}

// RTEntity holds the per-task state of the real-time class.
type RTEntity struct {
	// Slice is the remaining SCHED_RR timeslice.
	Slice sim.Duration
}

// HPCEntity holds the per-task state of the HPC class.
type HPCEntity struct {
	// Slice is the remaining round-robin timeslice.
	Slice sim.Duration
}

// Counters are the perf-visible software events of one task.
type Counters struct {
	// NVCSw counts voluntary context switches (the task blocked).
	NVCSw uint64
	// NIVCSw counts involuntary context switches (the task was
	// preempted while still runnable).
	NIVCSw uint64
	// Migrations counts CPU migrations, including fork placement to a
	// CPU other than the parent's, as perf does.
	Migrations uint64
	// WakeUps counts transitions from sleeping to runnable.
	WakeUps uint64
}

// Task is a simulated thread of execution.
type Task struct {
	ID   int
	Name string

	Policy Policy
	// RTPrio is the real-time priority, 1 (low) to 99 (high); valid for
	// FIFO and RR tasks.
	RTPrio int
	// Nice is the CFS nice value, -20 (heavy) to +19 (light).
	Nice int

	State State
	// CPU is the CPU the task is running on, or last ran on.
	CPU int
	// Affinity restricts the CPUs the task may use.
	Affinity topo.CPUMask
	// OnRq reports whether the task is currently queued in its class
	// runqueue (the running task itself is not queued).
	OnRq bool

	CFS CFSEntity
	RT  RTEntity
	HPC HPCEntity

	// Work is the remaining full-speed nanoseconds of the current
	// compute step, or SpinWork for a busy-wait.
	Work float64
	// OnDone is invoked by the kernel when Work reaches zero.
	OnDone func()
	// Sensitivity is the workload's cache sensitivity in [0,1].
	Sensitivity float64

	Cache cache.State

	// SumExec is the accumulated CPU time.
	SumExec sim.Duration
	// LastRan is when the task last ran (for debugging and traces).
	LastRan sim.Time
	// LastMigrated is when the load balancer last moved the task; the
	// balancer refuses to move it again within the cooldown (the
	// cache-hot test of can_migrate_task).
	LastMigrated sim.Time
	// Spawned is when the task was created.
	Spawned sim.Time
	// Exited is when the task died.
	Exited sim.Time

	Counters Counters

	// Parent is the forking task (nil for boot-time tasks).
	Parent *Task
	// LiveChildren counts children that have not yet exited, for wait().
	LiveChildren int
	// WaitingChildren marks a task sleeping in wait() until
	// LiveChildren drops to zero.
	WaitingChildren bool
}

// Spinning reports whether the task is busy-waiting.
func (t *Task) Spinning() bool { return t.Work == SpinWork }

// HasWork reports whether the task has a finite compute step pending.
func (t *Task) HasWork() bool { return t.Work > 0 && t.Work != SpinWork }

func (t *Task) String() string {
	return fmt.Sprintf("%s[%d] %s %s cpu%d", t.Name, t.ID, t.Policy, t.State, t.CPU)
}
