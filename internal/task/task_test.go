package task

import (
	"strings"
	"testing"
)

func TestPolicyZeroValueIsNormal(t *testing.T) {
	// An unspecified policy must mean an ordinary CFS task: kernel.Attr
	// relies on this.
	var p Policy
	if p != Normal {
		t.Fatalf("zero Policy = %v, want Normal", p)
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{
		Normal: "NORMAL", FIFO: "FIFO", RR: "RR", HPC: "HPC", Idle: "IDLE",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if !strings.Contains(Policy(99).String(), "99") {
		t.Fatal("unknown policy string")
	}
}

func TestRealTime(t *testing.T) {
	if !FIFO.RealTime() || !RR.RealTime() {
		t.Fatal("FIFO/RR must be real-time")
	}
	if Normal.RealTime() || HPC.RealTime() || Idle.RealTime() {
		t.Fatal("non-RT policy reports real-time")
	}
}

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		New: "new", Runnable: "runnable", Running: "running",
		Sleeping: "sleeping", Dead: "dead",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestSpinningAndHasWork(t *testing.T) {
	tk := &Task{}
	if tk.Spinning() || tk.HasWork() {
		t.Fatal("zero task spinning or has work")
	}
	tk.Work = SpinWork
	if !tk.Spinning() || tk.HasWork() {
		t.Fatal("spin marker wrong")
	}
	tk.Work = 100
	if tk.Spinning() || !tk.HasWork() {
		t.Fatal("finite work wrong")
	}
}

func TestStringIncludesIdentity(t *testing.T) {
	tk := &Task{ID: 7, Name: "rank3", Policy: HPC, State: Running, CPU: 5}
	s := tk.String()
	for _, frag := range []string{"rank3", "7", "HPC", "running", "cpu5"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String missing %q: %s", frag, s)
		}
	}
}
