package batch

import (
	"fmt"
	"math"
	"sort"

	"hplsim/internal/sim"
)

// NodeModel maps a job's ideal demand (Job.Work) to the wall time it
// actually occupies its node allocation. Implementations must be pure
// functions of (job, nodes, rng-stream): every random decision comes from
// the supplied stream, which the simulator derives per job from the run
// seed — so the drawn runtime for a job is independent of the scheduling
// policy, and policy comparisons on one trace see identical node behaviour.
type NodeModel interface {
	Name() string
	Runtime(j Job, nodes int, rng *sim.RNG) sim.Duration
}

// ExactModel runs every job in exactly its ideal time: a noise-free
// machine with perfectly accurate nodes. It isolates pure queueing effects
// and is the reference point for the Std-vs-HPL contrast.
type ExactModel struct{}

// Name implements NodeModel.
func (ExactModel) Name() string { return "exact" }

// Runtime implements NodeModel.
func (ExactModel) Runtime(j Job, nodes int, rng *sim.RNG) sim.Duration { return j.Work }

// maxOrderDraw draws the maximum of n iid U(0,1) variables with a single
// uniform: P(max <= x) = x^n, so inverting the CDF gives u^(1/n). This is
// the same order-statistic shortcut internal/cluster uses for its barrier
// resonance model — one draw per job instead of one per node keeps the
// cluster run O(jobs) in RNG traffic regardless of node count.
func maxOrderDraw(rng *sim.RNG, n int) float64 {
	u := rng.Float64()
	if n <= 1 {
		return u
	}
	return math.Pow(u, 1/float64(n))
}

// EmpiricalModel draws per-job slowdowns from a measured distribution of
// single-node kernel runs. A job spanning n nodes advances at the pace of
// its slowest node (the BSP barrier argument of the paper's Section II),
// so the model draws the max-order statistic of n samples from the
// empirical slowdown CDF: quantile(u^(1/n)). Build one from kernel runs
// with experiments.BatchCalibrate.
type EmpiricalModel struct {
	label string
	// slowdowns is the sorted sample set; each entry is measured elapsed
	// over ideal time for one full single-node kernel run.
	slowdowns []float64
}

// NewEmpiricalModel sorts a copy of the samples. Every sample must be
// positive; at least one is required.
func NewEmpiricalModel(label string, samples []float64) (*EmpiricalModel, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("batch: empirical model %q: no slowdown samples", label)
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	for _, v := range s {
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("batch: empirical model %q: bad slowdown sample %v", label, v)
		}
	}
	sort.Float64s(s)
	return &EmpiricalModel{label: label, slowdowns: s}, nil
}

// Name implements NodeModel.
func (m *EmpiricalModel) Name() string { return m.label }

// MaxSlowdown is the largest observed sample — an upper bound on any
// runtime the model can produce, useful for sizing walltime estimates.
func (m *EmpiricalModel) MaxSlowdown() float64 { return m.slowdowns[len(m.slowdowns)-1] }

// Runtime implements NodeModel: Work scaled by the drawn max-of-n-nodes
// slowdown, looked up as an empirical quantile.
func (m *EmpiricalModel) Runtime(j Job, nodes int, rng *sim.RNG) sim.Duration {
	q := maxOrderDraw(rng, nodes)
	idx := int(q * float64(len(m.slowdowns)))
	if idx >= len(m.slowdowns) {
		idx = len(m.slowdowns) - 1
	}
	return sim.Duration(float64(j.Work) * m.slowdowns[idx])
}

// UniformModel draws each job's slowdown as the max over its nodes of
// U(Lo, Hi) per-node slowdowns. It is the synthetic stand-in for an
// empirical distribution in property tests: runtimes are bounded by
// Work*Hi, so estimates of Est >= Work*Hi are guaranteed upper bounds and
// the EASY head-reservation oracle applies.
type UniformModel struct {
	Label string
	// Lo and Hi bound the per-node slowdown factor; 1 <= Lo <= Hi.
	Lo, Hi float64
}

// Validate reports the first structural problem with the model.
func (m UniformModel) Validate() error {
	if !(m.Lo >= 1) || !(m.Hi >= m.Lo) || math.IsInf(m.Hi, 0) {
		return fmt.Errorf("batch: uniform model %q: need 1 <= Lo <= Hi, got [%v, %v]", m.Label, m.Lo, m.Hi)
	}
	return nil
}

// Name implements NodeModel.
func (m UniformModel) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return "uniform"
}

// Runtime implements NodeModel.
func (m UniformModel) Runtime(j Job, nodes int, rng *sim.RNG) sim.Duration {
	s := m.Lo + (m.Hi-m.Lo)*maxOrderDraw(rng, nodes)
	return sim.Duration(float64(j.Work) * s)
}
