package batch

import (
	"fmt"

	"hplsim/internal/invariant"
	"hplsim/internal/sim"
)

// FNV-1a-style fold constants, shared with the schedcheck fingerprint so
// both harnesses hash the same way.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvFold(h, x uint64) uint64 { return (h ^ x) * fnvPrime }

// running is one dispatched job in the simulator's actual-time books.
type running struct {
	id     int
	stat   int // index into the stats slice
	nodes  int
	end    sim.Time // actual completion, hidden from policies
	estEnd sim.Time // what policies plan with
}

// simState is the dispatcher's mutable state. The invariants build
// revalidates the capacity accounting identity and queue order after every
// event (see invariants_on.go).
type simState struct {
	total   int
	free    int
	waiting []Waiting // arrival order, ties by ID
	run     []running // unordered; scans sort deterministically
}

// Simulate executes the full cluster run: a discrete-event loop over job
// arrivals and completions, invoking the policy at every event. It is a
// pure function of cfg — two calls with the same config return identical
// results, fingerprint included. Structural misuse (bad config, policy
// returning out-of-range or duplicate indices) panics; scheduling-quality
// violations (overcommit, starvation) do not — those are the oracles' job
// to catch, over the truthful record this function returns.
func Simulate(cfg Config) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}

	jobs := make([]Job, len(cfg.Jobs))
	copy(jobs, cfg.Jobs)
	// Deterministic: arrival order with ID tiebreak is the canonical trace
	// order; stats and dispatch scans inherit it.
	sortJobs(jobs)

	// Pre-draw every job's actual runtime from a per-job stream derived
	// from (seed, job ID) alone: the runtime a job will exhibit is fixed
	// before scheduling starts, so contrasting policies on one trace is an
	// apples-to-apples comparison, and dispatch order cannot perturb the
	// draw stream.
	root := sim.NewRNG(cfg.Seed).Split(0xba7c4)
	nodes := make([]int, len(jobs))
	actual := make([]sim.Duration, len(jobs))
	for i, j := range jobs {
		nodes[i] = cfg.Cluster.NodesFor(j)
		r := cfg.Model.Runtime(j, nodes[i], root.Split(uint64(j.ID)))
		if r <= 0 {
			r = 1 // a model rounding to zero still occupies one tick
		}
		actual[i] = r
	}

	stats := make([]JobStat, len(jobs))
	for i, j := range jobs {
		stats[i] = JobStat{ID: j.ID, Name: j.Name, Nodes: nodes[i], Arrival: j.Arrival, Runtime: actual[i]}
	}

	policy := cfg.Policy
	if cfg.Chaos != (Chaos{}) {
		policy = Chaotic{Inner: cfg.Policy, Faults: cfg.Chaos}
	}

	st := &simState{total: cfg.Cluster.Nodes, free: cfg.Cluster.Nodes}
	res := Result{Fingerprint: fnvOffset}
	nextArrival := 0 // index into jobs of the first not-yet-arrived job
	now := sim.Time(0)

	for {
		// Advance to the next event: the earliest completion or arrival.
		t := Never
		for _, r := range st.run {
			if r.end < t {
				t = r.end
			}
		}
		if nextArrival < len(jobs) && jobs[nextArrival].Arrival < t {
			t = jobs[nextArrival].Arrival
		}
		if t == Never {
			break // no completions pending, no arrivals left
		}
		now = t

		// Completions strictly before arrivals at the same instant: freed
		// nodes are visible to jobs arriving "now", matching a real system
		// where the epilogue runs before the scheduler cycle.
		finishCompleted(st, stats, now)
		for nextArrival < len(jobs) && jobs[nextArrival].Arrival == now {
			st.waiting = append(st.waiting, Waiting{Job: jobs[nextArrival], Nodes: nodes[nextArrival]})
			nextArrival++
		}
		if invariant.Enabled {
			st.checkState()
		}

		if len(st.waiting) == 0 {
			continue
		}
		v := makeView(st, now)
		picks := policy.Pick(v)
		validatePicks(picks, len(v.Queue), policy.Name())
		if cfg.OnDecision != nil {
			cfg.OnDecision(v, picks)
		}
		res.Decisions++

		// Apply the picks in order. No capacity check here by design: the
		// dispatcher trusts the policy, and the conservation oracle audits
		// the resulting trace.
		started := make([]bool, len(st.waiting))
		for _, idx := range picks {
			w := st.waiting[idx]
			si := statIndex(stats, w.Job.ID)
			s := &stats[si]
			s.Started = true
			s.Start = now
			s.End = now.Add(s.Runtime)
			s.Wait = now.Sub(w.Job.Arrival)
			for earlier := 0; earlier < idx; earlier++ {
				if !started[earlier] && !picked(picks, earlier) {
					s.Backfilled = true
					res.Backfills++
					break
				}
			}
			started[idx] = true
			st.free -= w.Nodes
			st.run = append(st.run, running{
				id: w.Job.ID, stat: si, nodes: w.Nodes,
				end:    s.End,
				estEnd: now.Add(w.Job.Est),
			})
			res.Fingerprint = fnvFold(res.Fingerprint, uint64(w.Job.ID))
			res.Fingerprint = fnvFold(res.Fingerprint, uint64(now))
			res.Fingerprint = fnvFold(res.Fingerprint, uint64(w.Nodes))
			res.Dispatched++
		}
		removeStarted(st, started)
		if invariant.Enabled {
			st.checkState()
		}

		if len(st.run) == 0 && nextArrival >= len(jobs) && len(st.waiting) > 0 {
			// Nothing running, nothing arriving, and the policy started
			// nothing: the remaining queue is starved forever (only possible
			// under chaos faults). Record the truth and stop.
			break
		}
	}

	res.Jobs = stats
	summarize(&res, cfg.Cluster.Nodes)
	return res
}

// finishCompleted retires every running job whose actual end is at or
// before now, in deterministic (end, ID) order.
func finishCompleted(st *simState, stats []JobStat, now sim.Time) {
	for {
		best := -1
		for i, r := range st.run {
			if r.end > now {
				continue
			}
			if best < 0 || r.end < st.run[best].end || (r.end == st.run[best].end && r.id < st.run[best].id) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		st.free += st.run[best].nodes
		st.run[best] = st.run[len(st.run)-1]
		st.run = st.run[:len(st.run)-1]
	}
}

// makeView snapshots scheduler-visible state. The slices are fresh copies:
// policies and probes may not alias dispatcher state.
func makeView(st *simState, now sim.Time) View {
	v := View{
		Now:        now,
		Queue:      make([]Waiting, len(st.waiting)),
		Running:    make([]Running, 0, len(st.run)),
		FreeNodes:  st.free,
		TotalNodes: st.total,
	}
	copy(v.Queue, st.waiting)
	for _, r := range st.run {
		v.Running = append(v.Running, Running{ID: r.id, Nodes: r.nodes, EstEnd: r.estEnd})
	}
	sortRunning(v.Running)
	return v
}

// sortRunning is an insertion sort by (EstEnd, ID) — the deterministic
// order the View contract promises policies.
func sortRunning(rs []Running) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j], rs[j-1]
			if a.EstEnd > b.EstEnd || (a.EstEnd == b.EstEnd && a.ID >= b.ID) {
				break
			}
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// sortJobs is an insertion sort by (Arrival, ID) — the canonical trace
// order, deterministic by construction.
func sortJobs(jobs []Job) {
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0; j-- {
			a, b := jobs[j], jobs[j-1]
			if a.Arrival > b.Arrival || (a.Arrival == b.Arrival && a.ID >= b.ID) {
				break
			}
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}
}

func validatePicks(picks []int, queueLen int, policy string) {
	seen := make([]bool, queueLen)
	for _, i := range picks {
		if i < 0 || i >= queueLen {
			panic(fmt.Sprintf("batch: policy %s picked out-of-range queue index %d of %d", policy, i, queueLen))
		}
		if seen[i] {
			panic(fmt.Sprintf("batch: policy %s picked queue index %d twice", policy, i))
		}
		seen[i] = true
	}
}

func picked(picks []int, idx int) bool {
	for _, p := range picks {
		if p == idx {
			return true
		}
	}
	return false
}

// statIndex locates a job's stat by ID. Stats are in (Arrival, ID) order,
// so a linear scan is deterministic; traces are small enough that this
// stays off any hot path.
func statIndex(stats []JobStat, id int) int {
	for i := range stats {
		if stats[i].ID == id {
			return i
		}
	}
	panic(fmt.Sprintf("batch: no stat for job %d", id))
}

// removeStarted compacts the waiting list, preserving arrival order.
func removeStarted(st *simState, started []bool) {
	kept := st.waiting[:0]
	for i, w := range st.waiting {
		if !started[i] {
			kept = append(kept, w)
		}
	}
	// Zero the tail so dropped entries don't pin Job.Name strings.
	for i := len(kept); i < len(st.waiting); i++ {
		st.waiting[i] = Waiting{}
	}
	st.waiting = kept
}

// summarize fills the aggregate metrics from per-job stats.
func summarize(res *Result, clusterNodes int) {
	var nodeSeconds float64
	var waitSum sim.Duration
	var bsldSum float64
	startedCount := 0
	for i := range res.Jobs {
		s := &res.Jobs[i]
		if !s.Started {
			continue
		}
		startedCount++
		if s.End > res.Makespan {
			res.Makespan = s.End
		}
		nodeSeconds += float64(s.Nodes) * s.Runtime.Seconds()
		waitSum += s.Wait
		if s.Wait > res.MaxWait {
			res.MaxWait = s.Wait
		}
		den := s.Runtime
		if den < BSLDThreshold {
			den = BSLDThreshold
		}
		bsld := (s.Wait + s.Runtime).Seconds() / den.Seconds()
		if bsld < 1 {
			bsld = 1
		}
		s.BoundedSlowdown = bsld
		bsldSum += bsld
	}
	if startedCount > 0 {
		res.MeanWait = waitSum / sim.Duration(startedCount)
		res.MeanBoundedSlowdown = bsldSum / float64(startedCount)
	}
	if res.Makespan > 0 {
		res.Utilization = nodeSeconds / (float64(clusterNodes) * res.Makespan.Seconds())
	}
}
