package batch

import (
	"hplsim/internal/invariant"
	"hplsim/internal/sim"
)

// AgingQueue orders jobs by aged priority: a job's effective priority at
// time t is Priority + Rate*(t - Arrival) in priority points per second of
// wait. Because every job ages at the same rate, the relative order of any
// two jobs never changes with t — the comparison reduces to the static key
// Priority - Rate*Arrival — so the queue is an ordinary max-heap on that
// key and needs no re-sifting as time advances. Ties break on earlier
// arrival, then smaller ID, making the pop order total and deterministic.
//
// The heap is hand-rolled rather than container/heap (banned in the
// deterministic core) and doubles as the model-based-testing target: the
// property suite drives it against a sorted-slice reference.
type AgingQueue struct {
	// rate is the aging rate in priority points per second.
	rate float64
	heap []queueEntry
}

type queueEntry struct {
	id      int
	prio    int
	arrival sim.Time
	key     float64
}

// NewAgingQueue builds an empty queue with the given aging rate. A zero
// rate degrades to a pure static-priority queue; a huge rate approaches
// FCFS order.
func NewAgingQueue(rate float64) *AgingQueue {
	return &AgingQueue{rate: rate}
}

// Rate reports the aging rate.
func (q *AgingQueue) Rate() float64 { return q.rate }

// Len reports the number of queued jobs.
func (q *AgingQueue) Len() int { return len(q.heap) }

// EffectiveKey is the time-independent ordering key the queue uses for a
// job: Priority - Rate*Arrival(seconds). At any instant t every job's aged
// priority exceeds its key by the same Rate*t, so larger key == higher
// aged priority, always.
func (q *AgingQueue) EffectiveKey(j Job) float64 {
	return float64(j.Priority) - q.rate*j.Arrival.Seconds()
}

// ahead reports whether a must pop before b.
func ahead(a, b queueEntry) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.id < b.id
}

// Push queues a job.
func (q *AgingQueue) Push(j Job) {
	q.heap = append(q.heap, queueEntry{
		id:      j.ID,
		prio:    j.Priority,
		arrival: j.Arrival,
		key:     q.EffectiveKey(j),
	})
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ahead(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
	if invariant.Enabled {
		q.checkQueue()
	}
}

// Pop removes and returns the ID of the highest aged-priority job. It
// panics on an empty queue.
func (q *AgingQueue) Pop() int {
	if len(q.heap) == 0 {
		panic("batch: Pop on empty AgingQueue")
	}
	top := q.heap[0].id
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(q.heap) && ahead(q.heap[l], q.heap[best]) {
			best = l
		}
		if r < len(q.heap) && ahead(q.heap[r], q.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		i = best
	}
	if invariant.Enabled {
		q.checkQueue()
	}
	return top
}
