package batch

import (
	"testing"

	"hplsim/internal/sim"
)

// refQueue is the obviously-correct reference: a slice kept sorted by
// (key desc, arrival, id) with linear insertion.
type refQueue struct {
	rate    float64
	entries []Job
}

func (r *refQueue) push(j Job) {
	key := func(j Job) float64 { return float64(j.Priority) - r.rate*j.Arrival.Seconds() }
	before := func(a, b Job) bool {
		if key(a) != key(b) {
			return key(a) > key(b)
		}
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return a.ID < b.ID
	}
	i := 0
	for i < len(r.entries) && before(r.entries[i], j) {
		i++
	}
	r.entries = append(r.entries, Job{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = j
}

func (r *refQueue) pop() int {
	id := r.entries[0].ID
	r.entries = r.entries[1:]
	return id
}

// TestAgingQueueModel drives AgingQueue and the sorted-slice reference
// with identical random push/pop streams and demands identical pop
// sequences, across rates including zero (pure priority) and large
// (FCFS-like) aging.
func TestAgingQueueModel(t *testing.T) {
	rates := []float64{0, 0.01, 1, 1000}
	for _, rate := range rates {
		for seed := uint64(1); seed <= 20; seed++ {
			rng := sim.NewRNG(seed).Split(uint64(rate*1000) + 7)
			q := NewAgingQueue(rate)
			ref := &refQueue{rate: rate}
			nextID := 0
			for op := 0; op < 400; op++ {
				if q.Len() != len(ref.entries) {
					t.Fatalf("rate %v seed %d: Len %d, reference %d", rate, seed, q.Len(), len(ref.entries))
				}
				if q.Len() == 0 || rng.Float64() < 0.6 {
					j := Job{
						ID:       nextID,
						Ranks:    1,
						Est:      sim.Second,
						Work:     sim.Second,
						Arrival:  sim.Time(rng.Int63n(1e12)),
						Priority: rng.Intn(5),
					}
					nextID++
					q.Push(j)
					ref.push(j)
					continue
				}
				got, want := q.Pop(), ref.pop()
				if got != want {
					t.Fatalf("rate %v seed %d op %d: Pop() = job %d, reference says job %d", rate, seed, op, got, want)
				}
			}
			for q.Len() > 0 {
				got, want := q.Pop(), ref.pop()
				if got != want {
					t.Fatalf("rate %v seed %d drain: Pop() = job %d, reference says job %d", rate, seed, got, want)
				}
			}
		}
	}
}

// TestAgingQueueAgingChangesOrder pins the semantics the rate is for: a
// low-priority early arrival eventually outranks a high-priority late one.
func TestAgingQueueAgingChangesOrder(t *testing.T) {
	early := Job{ID: 0, Priority: 0, Arrival: 0}
	late := Job{ID: 1, Priority: 5, Arrival: sim.Time(100 * sim.Second)}

	static := NewAgingQueue(0)
	static.Push(early)
	static.Push(late)
	if got := static.Pop(); got != 1 {
		t.Fatalf("rate 0: want the high-priority job first, got job %d", got)
	}

	// At 1 point/second the early job gains 100 points over the late one's
	// head start of 5: it must pop first.
	aged := NewAgingQueue(1)
	aged.Push(early)
	aged.Push(late)
	if got := aged.Pop(); got != 0 {
		t.Fatalf("rate 1: want the aged early job first, got job %d", got)
	}
}

func TestAgingQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on an empty queue did not panic")
		}
	}()
	NewAgingQueue(1).Pop()
}
