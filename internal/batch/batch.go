// Package batch is the cluster-level half of the two-level scheduling
// study: a deterministic job scheduler that queues multi-rank jobs and
// places them onto a simulated cluster of nodes whose behaviour is
// calibrated from the single-node kernel simulation.
//
// The design follows the two-level simulation approach of Eleliemy/Ciorba
// (arXiv:1811.01344) with the pluggable-policy shape of DRAS-CQSim
// (arXiv:2105.07526): a Job (ranks, estimated runtime, arrival, priority)
// enters a queue managed by a Policy (FCFS, EASY backfill, conservative
// backfill, priority aging); the dispatcher allocates whole nodes; and a
// NodeModel maps each job's ideal demand to the wall time it actually
// occupies its allocation. The hybrid construction mirrors
// internal/cluster: node behaviour is measured empirically by full kernel
// runs (internal/experiments builds an EmpiricalModel from Std or HPL
// slowdown samples), and the cluster run draws from that distribution with
// the barrier's max-order statistic across the job's nodes — so the node
// kernel's noise profile propagates into cluster-wide makespan,
// utilization, and backfill accuracy.
//
// Everything is a pure function of (config, seed): the same trace, policy,
// and model replay to bitwise-identical results, which the batchcheck
// oracles (determinism fingerprint, node-hour conservation, EASY
// head-reservation, FCFS dominance) lock down.
package batch

import (
	"fmt"

	"hplsim/internal/sim"
)

// Job is one batch submission.
type Job struct {
	// ID is unique within a trace; dispatch ties break on it.
	ID int
	// Name is a human label; it does not affect scheduling.
	Name string `json:",omitempty"`
	// Ranks is the number of MPI ranks requested. Nodes are allocated
	// whole: a job occupies ceil(Ranks / Cluster.RanksPerNode) nodes.
	Ranks int
	// Est is the user-supplied runtime estimate (the walltime limit).
	// Backfill policies plan with it; the actual runtime comes from the
	// node model.
	Est sim.Duration
	// Work is the job's ideal noise-free runtime: what a perfect node
	// would deliver. Policies never see it.
	Work sim.Duration
	// Arrival is the submission time, measured from the start of the
	// cluster run.
	Arrival sim.Time
	// Priority orders the priority-aging policy (higher = more urgent);
	// the arrival-ordered policies ignore it.
	Priority int
}

// Validate reports the first structural problem with the job.
func (j Job) Validate() error {
	if j.ID < 0 {
		return fmt.Errorf("batch: job %d: negative ID", j.ID)
	}
	if j.Ranks < 1 {
		return fmt.Errorf("batch: job %d: needs at least one rank, got %d", j.ID, j.Ranks)
	}
	if j.Est <= 0 {
		return fmt.Errorf("batch: job %d: non-positive estimate %v", j.ID, j.Est)
	}
	if j.Work <= 0 {
		return fmt.Errorf("batch: job %d: non-positive work %v", j.ID, j.Work)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("batch: job %d: negative arrival %v", j.ID, j.Arrival)
	}
	if j.Priority < 0 {
		return fmt.Errorf("batch: job %d: negative priority %d", j.ID, j.Priority)
	}
	return nil
}

// Cluster describes the machine the batch scheduler feeds.
type Cluster struct {
	// Nodes is the node count.
	Nodes int
	// RanksPerNode is each node's rank capacity, normally the node
	// topology's logical CPU count (topo.Topology.NumCPUs).
	RanksPerNode int
}

// NodesFor reports the whole-node allocation for a job.
func (c Cluster) NodesFor(j Job) int {
	return (j.Ranks + c.RanksPerNode - 1) / c.RanksPerNode
}

// Validate reports the first structural problem with the cluster.
func (c Cluster) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("batch: cluster needs at least one node, got %d", c.Nodes)
	}
	if c.RanksPerNode < 1 {
		return fmt.Errorf("batch: node capacity must be positive, got %d ranks/node", c.RanksPerNode)
	}
	return nil
}

// Waiting is one queued job as a policy sees it.
type Waiting struct {
	Job Job
	// Nodes is the whole-node allocation the job will occupy.
	Nodes int
}

// Running is one dispatched, unfinished job as a policy sees it. Policies
// plan with the estimated end; the actual end is hidden, exactly as a real
// batch system only knows the walltime limit.
type Running struct {
	ID     int
	Nodes  int
	EstEnd sim.Time
}

// View is the scheduler-visible cluster state at one decision point. Queue
// holds the waiting jobs in arrival order (ties by ID); Running holds the
// dispatched jobs sorted by (EstEnd, ID).
type View struct {
	Now        sim.Time
	Queue      []Waiting
	Running    []Running
	FreeNodes  int
	TotalNodes int
}

// Chaos injects deliberate scheduler faults so the batchcheck oracles can
// prove they still fire. Production configurations leave it zero.
type Chaos struct {
	// Overcommit starts the first queued job that does not fit whenever
	// the policy leaves it waiting, violating node-hour conservation.
	Overcommit bool `json:",omitempty"`
	// StarveHead drops the oldest waiting job from every pick, so
	// backfilled jobs overtake it indefinitely — violating FCFS dominance
	// and the EASY head-reservation bound.
	StarveHead bool `json:",omitempty"`
}

// Config parameterises one cluster run.
type Config struct {
	Cluster Cluster
	Policy  Policy
	Model   NodeModel
	// Jobs is the arrival trace. Simulate sorts a copy by (Arrival, ID).
	Jobs []Job
	// Seed derives every random stream of the run (node-model draws).
	Seed uint64
	// Chaos enables fault injection (oracle self-tests only).
	Chaos Chaos
	// OnDecision, if set, observes every scheduling decision: the view the
	// policy saw and the queue indices it started, after chaos rewrites.
	// Probes must not retain the view's slices.
	OnDecision func(v View, started []int)
}

// Validate reports the first structural problem with the configuration.
func (c Config) Validate() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("batch: nil policy")
	}
	if c.Model == nil {
		return fmt.Errorf("batch: nil node model")
	}
	if len(c.Jobs) == 0 {
		return fmt.Errorf("batch: empty job trace")
	}
	seen := make(map[int]bool, len(c.Jobs))
	for _, j := range c.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("batch: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if n := c.Cluster.NodesFor(j); n > c.Cluster.Nodes {
			return fmt.Errorf("batch: job %d needs %d nodes, cluster has %d", j.ID, n, c.Cluster.Nodes)
		}
	}
	return nil
}

// BSLDThreshold is the interactive threshold of the bounded-slowdown
// metric: jobs shorter than this are not penalised for proportionally long
// waits (Feitelson's standard 10 s).
const BSLDThreshold = 10 * sim.Second

// JobStat is the per-job outcome of a cluster run.
type JobStat struct {
	ID      int
	Name    string `json:",omitempty"`
	Nodes   int
	Arrival sim.Time
	// Started is false when the run ended with the job still waiting
	// (only possible under chaos faults).
	Started bool
	Start   sim.Time
	End     sim.Time
	// Wait is Start - Arrival.
	Wait sim.Duration
	// Runtime is the actual occupancy the node model produced.
	Runtime sim.Duration
	// BoundedSlowdown is max(1, (Wait+Runtime)/max(Runtime, BSLDThreshold)).
	BoundedSlowdown float64
	// Backfilled marks a job started while an earlier-arrived job was
	// still waiting.
	Backfilled bool
}

// Result is the outcome of one cluster run.
type Result struct {
	// Jobs holds per-job stats in (Arrival, ID) order.
	Jobs []JobStat
	// Makespan is the last job completion time.
	Makespan sim.Time
	// Utilization is the node-hours delivered to jobs over the node-hours
	// the cluster offered until the makespan.
	Utilization float64
	MeanWait    sim.Duration
	MaxWait     sim.Duration
	// MeanBoundedSlowdown averages the per-job bounded slowdowns.
	MeanBoundedSlowdown float64
	// Backfills counts jobs that overtook an earlier arrival.
	Backfills int
	// Dispatched counts jobs actually started (== len(Jobs) unless chaos
	// starved the tail of the queue).
	Dispatched int
	// Decisions counts scheduling decision points.
	Decisions int
	// Fingerprint folds the dispatch order (job ID, start, nodes) into an
	// FNV-style hash: two runs of the same config must agree bit for bit.
	Fingerprint uint64
}
