package batch

import (
	"encoding/json"
	"fmt"
	"math"

	"hplsim/internal/sim"
)

// Trace kinds understood by GenerateTrace.
const (
	// TracePoisson submits jobs as a homogeneous Poisson process.
	TracePoisson = "poisson"
	// TraceDiurnal modulates the Poisson rate sinusoidally over a Day —
	// busy daytime, quiet night — the canonical production-cluster shape.
	TraceDiurnal = "diurnal"
	// TraceBursty alternates long quiet gaps with tight storms of Burst
	// near-simultaneous submissions (a campaign or a sweep script).
	TraceBursty = "bursty"
)

// TraceConfig parameterises a synthetic arrival trace.
type TraceConfig struct {
	// Kind selects the arrival process: TracePoisson, TraceDiurnal, or
	// TraceBursty.
	Kind string
	// Jobs is the number of jobs to generate.
	Jobs int
	// MeanInterarrival is the average gap between submissions.
	MeanInterarrival sim.Duration
	// MaxRanks caps the per-job rank request; requests are drawn as powers
	// of two up to the cap (HPC jobs overwhelmingly ask for round sizes).
	MaxRanks int
	// MeanWork is the geometric centre of the ideal-runtime distribution.
	MeanWork sim.Duration
	// WorkSpread is the log-uniform half-width factor: work lands in
	// [MeanWork/WorkSpread, MeanWork*WorkSpread]. Must be >= 1.
	WorkSpread float64
	// EstFactor scales actual work into the user's walltime estimate:
	// Est = Work * (EstFactor + U(0, EstNoise)). With EstFactor at or
	// above the node model's worst slowdown, estimates are honest upper
	// bounds and backfill reservations are sound.
	EstFactor float64
	// EstNoise adds user sloppiness on top of EstFactor (extra uniform
	// over-estimation, never under).
	EstNoise float64
	// PrioLevels is the number of distinct priorities, drawn uniformly in
	// [0, PrioLevels); 1 makes every job equal.
	PrioLevels int
	// Day is the diurnal period (TraceDiurnal only).
	Day sim.Duration `json:",omitempty"`
	// Burst is the storm size (TraceBursty only).
	Burst int `json:",omitempty"`
}

// Validate reports the first structural problem with the config.
func (c TraceConfig) Validate() error {
	switch c.Kind {
	case TracePoisson:
	case TraceDiurnal:
		if c.Day <= 0 {
			return fmt.Errorf("batch: diurnal trace needs a positive Day, got %v", c.Day)
		}
	case TraceBursty:
		if c.Burst < 1 {
			return fmt.Errorf("batch: bursty trace needs Burst >= 1, got %d", c.Burst)
		}
	default:
		return fmt.Errorf("batch: unknown trace kind %q", c.Kind)
	}
	if c.Jobs < 1 {
		return fmt.Errorf("batch: trace needs at least one job, got %d", c.Jobs)
	}
	if c.MeanInterarrival <= 0 {
		return fmt.Errorf("batch: non-positive mean interarrival %v", c.MeanInterarrival)
	}
	if c.MaxRanks < 1 {
		return fmt.Errorf("batch: trace needs MaxRanks >= 1, got %d", c.MaxRanks)
	}
	if c.MeanWork <= 0 {
		return fmt.Errorf("batch: non-positive mean work %v", c.MeanWork)
	}
	if !(c.WorkSpread >= 1) || math.IsInf(c.WorkSpread, 0) {
		return fmt.Errorf("batch: work spread must be >= 1, got %v", c.WorkSpread)
	}
	if !(c.EstFactor >= 1) || math.IsInf(c.EstFactor, 0) {
		return fmt.Errorf("batch: estimate factor must be >= 1, got %v", c.EstFactor)
	}
	if !(c.EstNoise >= 0) || math.IsInf(c.EstNoise, 0) {
		return fmt.Errorf("batch: estimate noise must be >= 0, got %v", c.EstNoise)
	}
	if c.PrioLevels < 1 {
		return fmt.Errorf("batch: trace needs PrioLevels >= 1, got %d", c.PrioLevels)
	}
	return nil
}

// GenerateTrace materialises a job trace from the config and a seeded
// stream: a pure function of (cfg, rng state). Jobs come out in (Arrival,
// ID) order with IDs 0..Jobs-1 in submission order.
func GenerateTrace(cfg TraceConfig, rng *sim.RNG) ([]Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arr := rng.Split(0x0a11)
	shape := rng.Split(0x5a9e)

	// logRanks is floor(log2(MaxRanks)): requests are 2^U[0, logRanks].
	logRanks := 0
	for 1<<(logRanks+1) <= cfg.MaxRanks {
		logRanks++
	}

	jobs := make([]Job, cfg.Jobs)
	now := sim.Time(0)
	for i := range jobs {
		now = now.Add(nextGap(cfg, arr, i))

		ranks := 1 << arr.Intn(logRanks+1) // arr stream: arrival-side shape
		if ranks > cfg.MaxRanks {
			ranks = cfg.MaxRanks
		}
		// Log-uniform work: MeanWork * WorkSpread^U(-1, 1).
		exp := 2*shape.Float64() - 1
		work := sim.Duration(float64(cfg.MeanWork) * math.Pow(cfg.WorkSpread, exp))
		if work < 1 {
			work = 1
		}
		est := sim.Duration(float64(work) * (cfg.EstFactor + cfg.EstNoise*shape.Float64()))
		if est < work {
			est = work
		}
		jobs[i] = Job{
			ID:       i,
			Name:     fmt.Sprintf("job%03d", i),
			Ranks:    ranks,
			Est:      est,
			Work:     work,
			Arrival:  now,
			Priority: shape.Intn(cfg.PrioLevels),
		}
	}
	return jobs, nil
}

// nextGap draws the interarrival gap before job i.
func nextGap(cfg TraceConfig, rng *sim.RNG, i int) sim.Duration {
	switch cfg.Kind {
	case TraceDiurnal:
		// Thinned-rate approximation: the local mean stretches against a
		// sinusoid with a 10x peak-to-trough swing. The phase is taken
		// from the job index (not the accumulated clock) so the draw count
		// per job is fixed and the stream stays aligned under shrinking.
		phase := 2 * math.Pi * float64(i) / float64(cfg.Jobs)
		factor := 1.0 / (1.0 + 0.82*math.Sin(phase))
		return rng.ExpDuration(sim.Duration(float64(cfg.MeanInterarrival) * factor))
	case TraceBursty:
		if i%cfg.Burst == 0 {
			// Storm boundary: one long quiet gap carrying the whole
			// inter-storm budget.
			return rng.ExpDuration(cfg.MeanInterarrival * sim.Duration(cfg.Burst))
		}
		// Within a storm submissions land within ~1% of the mean gap.
		return rng.ExpDuration(cfg.MeanInterarrival / 100)
	default: // TracePoisson
		return rng.ExpDuration(cfg.MeanInterarrival)
	}
}

// MarshalTrace renders jobs as canonical indented JSON with a trailing
// newline. Reading the output back and re-marshalling reproduces it byte
// for byte (the fuzz target pins this fixed point).
func MarshalTrace(jobs []Job) ([]byte, error) {
	data, err := json.MarshalIndent(jobs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ReadTrace parses a JSON job trace and validates every job, rejecting
// duplicate IDs. Job order is preserved as written (Simulate canonicalises
// order itself).
func ReadTrace(data []byte) ([]Job, error) {
	var jobs []Job
	if err := json.Unmarshal(data, &jobs); err != nil {
		return nil, fmt.Errorf("batch: parsing trace: %v", err)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("batch: empty trace")
	}
	seen := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("batch: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
	}
	return jobs, nil
}
