package batch

import (
	"fmt"
	"math"

	"hplsim/internal/invariant"
	"hplsim/internal/sim"
)

// Policy decides which waiting jobs to start at a decision point. Pick
// returns indices into v.Queue in start order; the dispatcher starts them
// all without a capacity check of its own (conservation is a property of
// the policy, enforced externally by the batchcheck oracle — which is what
// lets the oracle catch a policy that overcommits). Implementations must
// be deterministic pure functions of the view.
type Policy interface {
	Name() string
	Pick(v View) []int
}

// Never is the sentinel reservation time for a request no future release
// can satisfy. It only arises when capacity accounting is already broken
// (chaos overcommit); healthy configurations always reserve a finite time.
const Never = sim.Time(math.MaxInt64)

// Release is one future capacity-release event, as planned from running
// jobs' estimated ends. HeadReservation and the profile consume slices
// sorted by (At, order of appearance).
type Release struct {
	At    sim.Time
	Nodes int
}

// viewReleases plans the capacity releases of v.Running (already sorted by
// (EstEnd, ID)) plus any jobs the policy just picked at v.Now.
func viewReleases(v View, picked []int) []Release {
	rel := make([]Release, 0, len(v.Running)+len(picked))
	for _, r := range v.Running {
		rel = append(rel, Release{At: r.EstEnd, Nodes: r.Nodes})
	}
	for _, i := range picked {
		rel = append(rel, Release{At: v.Now.Add(v.Queue[i].Job.Est), Nodes: v.Queue[i].Nodes})
	}
	// Deterministic: sorted by release time; equal times keep (EstEnd, ID)
	// order for running jobs and pick order for new starts via stability.
	sortReleases(rel)
	return rel
}

// sortReleases is a stable insertion sort by At. Release lists are short
// (bounded by running jobs) and usually nearly sorted already.
func sortReleases(rel []Release) {
	for i := 1; i < len(rel); i++ {
		for j := i; j > 0 && rel[j].At < rel[j-1].At; j-- {
			rel[j], rel[j-1] = rel[j-1], rel[j]
		}
	}
}

// HeadReservation computes the EASY backfill reservation: the earliest
// time at which `need` nodes are simultaneously free, assuming currently
// running jobs release exactly at their estimated ends, together with the
// number of extra nodes free at that time beyond the head's need. Exported
// so the batchcheck head-no-delay oracle recomputes the same bound the
// policy planned with.
func HeadReservation(now sim.Time, free int, releases []Release, need int) (at sim.Time, extra int) {
	if free >= need {
		return now, free - need
	}
	avail := free
	for _, r := range releases {
		avail += r.Nodes
		if avail >= need {
			at = r.At
			if at < now {
				at = now
			}
			return at, avail - need
		}
	}
	return Never, 0
}

// FCFS starts jobs strictly in arrival order: the queue head blocks
// everything behind it until it fits. The baseline every backfill policy
// must dominate on head wait.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Policy.
func (FCFS) Pick(v View) []int {
	free := v.FreeNodes
	var picks []int
	for i, w := range v.Queue {
		if w.Nodes > free {
			break
		}
		picks = append(picks, i)
		free -= w.Nodes
	}
	return picks
}

// EASY is aggressive (EASY/SLURM-style) backfill: the queue head gets a
// reservation at the earliest estimated-release time it fits, and younger
// jobs may jump it only if they terminate (by estimate) before that shadow
// time or use only the reservation's spare nodes. Exactly one job holds a
// reservation, so only the head's start bound is guaranteed — the
// batchcheck oracle checks that bound.
type EASY struct{}

// Name implements Policy.
func (EASY) Name() string { return "easy" }

// easyPlan is the first phase shared by Pick and EASYReservation: the
// FCFS prefix of immediately-fitting jobs, the index of the blocked head,
// and the head's reservation. headIdx == len(v.Queue) means no job is
// blocked and there is no reservation.
func easyPlan(v View) (picks []int, free, headIdx int, shadow sim.Time, extra int) {
	free = v.FreeNodes
	i := 0
	for i < len(v.Queue) && v.Queue[i].Nodes <= free {
		free -= v.Queue[i].Nodes
		picks = append(picks, i)
		i++
	}
	headIdx = i
	if i < len(v.Queue) {
		shadow, extra = HeadReservation(v.Now, free, viewReleases(v, picks), v.Queue[i].Nodes)
	}
	return picks, free, headIdx, shadow, extra
}

// EASYReservation reports which waiting job EASY would hold a reservation
// for at this decision point — the first job in arrival order that does
// not fit — and the start time that reservation guarantees, assuming
// running jobs release at their estimated ends. ok is false when nothing
// is blocked. The batchcheck head-no-delay oracle recomputes exactly this
// bound and checks the head really started by it.
func EASYReservation(v View) (headID int, at sim.Time, ok bool) {
	_, _, headIdx, shadow, _ := easyPlan(v)
	if headIdx >= len(v.Queue) {
		return 0, 0, false
	}
	return v.Queue[headIdx].Job.ID, shadow, true
}

// Pick implements Policy.
func (EASY) Pick(v View) []int {
	picks, free, i, shadow, extra := easyPlan(v)
	if i >= len(v.Queue) {
		return picks
	}
	for j := i + 1; j < len(v.Queue); j++ {
		n := v.Queue[j].Nodes
		if n > free {
			continue
		}
		endsBeforeShadow := v.Now.Add(v.Queue[j].Job.Est) <= shadow
		if !endsBeforeShadow && n > extra {
			continue
		}
		picks = append(picks, j)
		free -= n
		if !endsBeforeShadow {
			// Runs past the shadow time, so it consumes the nodes the head
			// leaves spare; a before-shadow backfill releases in time and
			// costs the reservation nothing.
			extra -= n
		}
	}
	return picks
}

// Conservative backfill gives every queued job a reservation: a job may
// start now only if doing so delays no earlier-queued job's planned start.
// The plan is recomputed statelessly at each decision point over the
// estimated-release capacity profile, which yields the same reservations
// as an incremental implementation but keeps the policy a pure function of
// the view.
type Conservative struct{}

// Name implements Policy.
func (Conservative) Name() string { return "conservative" }

// Pick implements Policy.
func (Conservative) Pick(v View) []int {
	p := newProfile(v.Now, v.FreeNodes, v.TotalNodes, viewReleases(v, nil))
	var picks []int
	for i, w := range v.Queue {
		at := p.earliest(w.Nodes, w.Job.Est)
		if at == Never {
			continue
		}
		p.reserve(at, w.Job.Est, w.Nodes)
		if at == v.Now {
			picks = append(picks, i)
		}
	}
	return picks
}

// PriorityAging starts jobs in aged-priority order (effective priority
// Priority + Rate*(wait seconds), ties by arrival then ID) and is strict:
// if the highest-priority waiting job does not fit, nothing lower jumps
// it. Aging makes the order starvation-free — any waiting job eventually
// outranks fresh arrivals.
type PriorityAging struct {
	// Rate is the aging rate in priority points per second of wait. Zero
	// degrades to static priorities; very large approaches FCFS.
	Rate float64
}

// Name implements Policy.
func (PriorityAging) Name() string { return "aging" }

// Pick implements Policy.
func (p PriorityAging) Pick(v View) []int {
	q := NewAgingQueue(p.Rate)
	at := make(map[int]int, len(v.Queue))
	for i, w := range v.Queue {
		q.Push(w.Job)
		at[w.Job.ID] = i
	}
	free := v.FreeNodes
	var picks []int
	for q.Len() > 0 {
		i := at[q.Pop()]
		if v.Queue[i].Nodes > free {
			break
		}
		picks = append(picks, i)
		free -= v.Queue[i].Nodes
	}
	return picks
}

// NewPolicy builds a policy from its wire name: "fcfs", "easy",
// "conservative", or "aging" (which takes the aging rate in priority
// points per second; the others ignore it).
func NewPolicy(name string, agingRate float64) (Policy, error) {
	switch name {
	case "fcfs":
		return FCFS{}, nil
	case "easy":
		return EASY{}, nil
	case "conservative":
		return Conservative{}, nil
	case "aging":
		if agingRate < 0 {
			return nil, fmt.Errorf("batch: negative aging rate %v", agingRate)
		}
		return PriorityAging{Rate: agingRate}, nil
	}
	return nil, fmt.Errorf("batch: unknown policy %q", name)
}

// PolicyNames lists the wire names NewPolicy accepts.
func PolicyNames() []string { return []string{"fcfs", "easy", "conservative", "aging"} }

// Chaotic wraps a policy with deliberate faults so the trace-level oracles
// can demonstrate they catch real scheduler bugs. Never used outside
// oracle self-tests.
type Chaotic struct {
	Inner  Policy
	Faults Chaos
}

// Name implements Policy.
func (c Chaotic) Name() string { return c.Inner.Name() + "+chaos" }

// Pick implements Policy.
func (c Chaotic) Pick(v View) []int {
	picks := c.Inner.Pick(v)
	if c.Faults.StarveHead && len(v.Queue) > 0 {
		kept := make([]int, 0, len(picks))
		for _, i := range picks {
			if i != 0 {
				kept = append(kept, i)
			}
		}
		picks = kept
	}
	if c.Faults.Overcommit {
		picked := make([]bool, len(v.Queue))
		free := v.FreeNodes
		for _, i := range picks {
			picked[i] = true
			free -= v.Queue[i].Nodes
		}
		for i, w := range v.Queue {
			if !picked[i] && w.Nodes > free {
				picks = append(picks, i)
				break
			}
		}
	}
	return picks
}

// profile is a piecewise-constant free-node timeline used by conservative
// backfill: breakpoints at estimated release/reservation edges, constant
// free count within each segment, and free[last] extending to infinity.
type profile struct {
	total int
	times []sim.Time // strictly increasing; times[0] is the planning origin
	free  []int      // free[i] holds on [times[i], times[i+1])
}

func newProfile(now sim.Time, free, total int, releases []Release) *profile {
	p := &profile{total: total, times: []sim.Time{now}, free: []int{free}}
	for _, r := range releases {
		at := r.At
		if at < now {
			// An estimate already elapsed; the release is imminent, plan it
			// as available now.
			at = now
		}
		last := len(p.times) - 1
		if at == p.times[last] {
			p.free[last] += r.Nodes
		} else {
			p.times = append(p.times, at)
			p.free = append(p.free, p.free[last]+r.Nodes)
		}
	}
	if invariant.Enabled {
		p.checkProfile()
	}
	return p
}

// earliest finds the first time at which `need` nodes stay free for the
// whole of `dur`, or Never if no plan satisfies it.
func (p *profile) earliest(need int, dur sim.Duration) sim.Time {
	for i := 0; i < len(p.times); i++ {
		if p.free[i] < need {
			continue
		}
		start := p.times[i]
		end := start.Add(dur)
		ok := true
		for k := i + 1; k < len(p.times) && p.times[k] < end; k++ {
			if p.free[k] < need {
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
	if p.free[len(p.free)-1] >= need {
		return p.times[len(p.times)-1]
	}
	return Never
}

// split ensures a breakpoint exists exactly at t (which must be at or
// after the planning origin) and returns the index of the segment that
// starts there.
func (p *profile) split(t sim.Time) int {
	for i, bt := range p.times {
		if bt == t {
			return i
		}
		if bt > t {
			p.times = append(p.times, 0)
			p.free = append(p.free, 0)
			copy(p.times[i+1:], p.times[i:])
			copy(p.free[i+1:], p.free[i:])
			p.times[i] = t
			p.free[i] = p.free[i-1] // i >= 1: times[0] <= t guarantees a left neighbour
			return i
		}
	}
	p.times = append(p.times, t)
	p.free = append(p.free, p.free[len(p.free)-1])
	return len(p.times) - 1
}

// reserve subtracts a planned allocation of `nodes` over [at, at+dur).
func (p *profile) reserve(at sim.Time, dur sim.Duration, nodes int) {
	lo := p.split(at)
	hi := p.split(at.Add(dur))
	for i := lo; i < hi; i++ {
		p.free[i] -= nodes
	}
	if invariant.Enabled {
		p.checkProfile()
	}
}
