//go:build !invariants

package batch

// checkQueue is a no-op in normal builds; see invariants_on.go.
func (q *AgingQueue) checkQueue() {}

// checkState is a no-op in normal builds; see invariants_on.go.
func (s *simState) checkState() {}

// checkProfile is a no-op in normal builds; see invariants_on.go.
func (p *profile) checkProfile() {}
