package batch

import (
	"reflect"
	"testing"

	"hplsim/internal/sim"
)

// fourNodeTrace is the hand-built backfill litmus trace on a 4-node,
// 1-rank-per-node cluster with exact estimates:
//
//	job 0: arrives 0s,  3 nodes, 100s  — leaves a one-node hole
//	job 1: arrives 1s,  4 nodes, 10s   — queue head, blocked until 100s
//	job 2: arrives 2s,  1 node,  10s   — fits the hole; FCFS makes it wait
//	                                     for job 1, EASY backfills it at 2s
func fourNodeTrace() ([]Job, Cluster) {
	jobs := []Job{
		{ID: 0, Ranks: 3, Est: 100 * sim.Second, Work: 100 * sim.Second, Arrival: 0},
		{ID: 1, Ranks: 4, Est: 10 * sim.Second, Work: 10 * sim.Second, Arrival: sim.Time(sim.Second)},
		{ID: 2, Ranks: 1, Est: 10 * sim.Second, Work: 10 * sim.Second, Arrival: sim.Time(2 * sim.Second)},
	}
	return jobs, Cluster{Nodes: 4, RanksPerNode: 1}
}

func statByID(t *testing.T, res Result, id int) JobStat {
	t.Helper()
	for _, s := range res.Jobs {
		if s.ID == id {
			return s
		}
	}
	t.Fatalf("no stat for job %d", id)
	return JobStat{}
}

func TestFCFSNeverOvertakes(t *testing.T) {
	jobs, cl := fourNodeTrace()
	res := Simulate(Config{Cluster: cl, Policy: FCFS{}, Model: ExactModel{}, Jobs: jobs, Seed: 1})
	j1, j2 := statByID(t, res, 1), statByID(t, res, 2)
	if j1.Start != sim.Time(100*sim.Second) {
		t.Fatalf("job 1 started at %v, want 100s", j1.Start)
	}
	if j2.Start < j1.Start {
		t.Fatalf("FCFS let job 2 (start %v) overtake job 1 (start %v)", j2.Start, j1.Start)
	}
	if res.Backfills != 0 {
		t.Fatalf("FCFS recorded %d backfills", res.Backfills)
	}
}

func TestEASYBackfillsWithoutDelayingHead(t *testing.T) {
	jobs, cl := fourNodeTrace()
	res := Simulate(Config{Cluster: cl, Policy: EASY{}, Model: ExactModel{}, Jobs: jobs, Seed: 1})
	j1, j2 := statByID(t, res, 1), statByID(t, res, 2)
	if j2.Start != sim.Time(2*sim.Second) {
		t.Fatalf("EASY did not backfill job 2 immediately: started %v", j2.Start)
	}
	if !j2.Backfilled {
		t.Fatal("job 2 not marked as a backfill")
	}
	if res.Backfills != 1 {
		t.Fatalf("want 1 backfill, got %d", res.Backfills)
	}
	// The head's reservation was 100s (job 0's estimated end); backfilling
	// job 2 (ends 12s) must not move it.
	if j1.Start != sim.Time(100*sim.Second) {
		t.Fatalf("backfill delayed the head: job 1 started %v, want 100s", j1.Start)
	}
}

func TestConservativeMatchesEASYOnLitmus(t *testing.T) {
	jobs, cl := fourNodeTrace()
	res := Simulate(Config{Cluster: cl, Policy: Conservative{}, Model: ExactModel{}, Jobs: jobs, Seed: 1})
	j1, j2 := statByID(t, res, 1), statByID(t, res, 2)
	// Job 2's run [2s, 12s) cannot delay job 1's reservation at 100s, so
	// conservative backfills it too.
	if j2.Start != sim.Time(2*sim.Second) {
		t.Fatalf("conservative did not backfill job 2: started %v", j2.Start)
	}
	if j1.Start != sim.Time(100*sim.Second) {
		t.Fatalf("job 1 started %v, want 100s", j1.Start)
	}
}

func TestPriorityAgingStrictOrder(t *testing.T) {
	// Two one-node jobs queued behind a machine-filling job: the
	// higher-priority later arrival must start first under zero aging.
	jobs := []Job{
		{ID: 0, Ranks: 2, Est: 100 * sim.Second, Work: 100 * sim.Second, Arrival: 0},
		{ID: 1, Ranks: 2, Est: 10 * sim.Second, Work: 10 * sim.Second, Arrival: sim.Time(sim.Second), Priority: 0},
		{ID: 2, Ranks: 2, Est: 10 * sim.Second, Work: 10 * sim.Second, Arrival: sim.Time(2 * sim.Second), Priority: 5},
	}
	cl := Cluster{Nodes: 2, RanksPerNode: 1}
	res := Simulate(Config{Cluster: cl, Policy: PriorityAging{Rate: 0}, Model: ExactModel{}, Jobs: jobs, Seed: 1})
	j1, j2 := statByID(t, res, 1), statByID(t, res, 2)
	if !(j2.Start < j1.Start) {
		t.Fatalf("priority order ignored: job 2 (prio 5) started %v, job 1 (prio 0) %v", j2.Start, j1.Start)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := testTraceConfig(TraceBursty)
	jobs, err := GenerateTrace(cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	policies := []Policy{FCFS{}, EASY{}, Conservative{}, PriorityAging{Rate: 0.05}}
	models := []NodeModel{ExactModel{}, UniformModel{Lo: 1, Hi: 1.4}}
	for _, p := range policies {
		for _, m := range models {
			c := Config{
				Cluster: Cluster{Nodes: 8, RanksPerNode: 4},
				Policy:  p, Model: m, Jobs: jobs, Seed: 99,
			}
			a, b := Simulate(c), Simulate(c)
			if a.Fingerprint != b.Fingerprint {
				t.Fatalf("%s/%s: fingerprints differ: %x vs %x", p.Name(), m.Name(), a.Fingerprint, b.Fingerprint)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%s: identical configs produced different results", p.Name(), m.Name())
			}
			if a.Dispatched != len(jobs) {
				t.Fatalf("%s/%s: dispatched %d of %d jobs", p.Name(), m.Name(), a.Dispatched, len(jobs))
			}
			if !(a.Utilization > 0 && a.Utilization <= 1.0000001) {
				t.Fatalf("%s/%s: utilization %v out of range", p.Name(), m.Name(), a.Utilization)
			}
			if got := maxOverlap(a); got > c.Cluster.Nodes {
				t.Fatalf("%s/%s: peak allocation %d nodes on a %d-node cluster", p.Name(), m.Name(), got, c.Cluster.Nodes)
			}
		}
	}
}

// maxOverlap sweeps the per-job intervals and reports the peak node
// allocation; ends release before coincident starts, matching the
// dispatcher's completions-first event order.
func maxOverlap(res Result) int {
	type edge struct {
		at    sim.Time
		delta int
	}
	var edges []edge
	for _, s := range res.Jobs {
		if !s.Started {
			continue
		}
		edges = append(edges, edge{s.Start, s.Nodes}, edge{s.End, -s.Nodes})
	}
	// Insertion sort by (at, releases first): deterministic sweep order.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0; j-- {
			a, b := edges[j], edges[j-1]
			if a.at > b.at || (a.at == b.at && a.delta >= b.delta) {
				break
			}
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

func TestChaosOvercommitBreaksConservation(t *testing.T) {
	jobs, cl := fourNodeTrace()
	res := Simulate(Config{
		Cluster: cl, Policy: FCFS{}, Model: ExactModel{}, Jobs: jobs, Seed: 1,
		Chaos: Chaos{Overcommit: true},
	})
	if got := maxOverlap(res); got <= cl.Nodes {
		t.Fatalf("overcommit chaos stayed within capacity (peak %d of %d): the fault is not observable", got, cl.Nodes)
	}
}

func TestChaosStarveHeadStrandsJob(t *testing.T) {
	jobs, cl := fourNodeTrace()
	res := Simulate(Config{
		Cluster: cl, Policy: EASY{}, Model: ExactModel{}, Jobs: jobs, Seed: 1,
		Chaos: Chaos{StarveHead: true},
	})
	if res.Dispatched >= len(jobs) {
		t.Fatal("starve-head chaos dispatched every job; the fault is not observable")
	}
	// The truthful record must still mark the stranded job.
	starved := 0
	for _, s := range res.Jobs {
		if !s.Started {
			starved++
		}
	}
	if starved == 0 {
		t.Fatal("no job recorded as unstarted")
	}
}

func TestSimulateRejectsBadConfigs(t *testing.T) {
	jobs, cl := fourNodeTrace()
	bad := []Config{
		{Policy: FCFS{}, Model: ExactModel{}, Jobs: jobs},                                             // zero cluster
		{Cluster: cl, Model: ExactModel{}, Jobs: jobs},                                                // nil policy
		{Cluster: cl, Policy: FCFS{}, Jobs: jobs},                                                     // nil model
		{Cluster: cl, Policy: FCFS{}, Model: ExactModel{}},                                            // no jobs
		{Cluster: Cluster{Nodes: 1, RanksPerNode: 1}, Policy: FCFS{}, Model: ExactModel{}, Jobs: jobs}, // job larger than cluster
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: Simulate accepted an invalid config", i)
				}
			}()
			Simulate(c)
		}()
	}
}

// TestRuntimeIndependentOfPolicy pins the pre-draw discipline: a job's
// drawn runtime depends only on (seed, job ID, model), never on the
// dispatch order the policy produces.
func TestRuntimeIndependentOfPolicy(t *testing.T) {
	cfg := testTraceConfig(TracePoisson)
	jobs, err := GenerateTrace(cfg, sim.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	m := UniformModel{Lo: 1, Hi: 2}
	base := Config{Cluster: Cluster{Nodes: 8, RanksPerNode: 4}, Model: m, Jobs: jobs, Seed: 7}
	a := base
	a.Policy = FCFS{}
	b := base
	b.Policy = EASY{}
	ra, rb := Simulate(a), Simulate(b)
	for i := range ra.Jobs {
		if ra.Jobs[i].Runtime != rb.Jobs[i].Runtime {
			t.Fatalf("job %d runtime differs across policies: %v vs %v",
				ra.Jobs[i].ID, ra.Jobs[i].Runtime, rb.Jobs[i].Runtime)
		}
	}
}
