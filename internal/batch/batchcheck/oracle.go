package batchcheck

import (
	"fmt"
	"reflect"

	"hplsim/internal/batch"
	"hplsim/internal/sim"
)

// Oracle names, stable across versions: committed repros reference them.
const (
	OracleDeterminism  = "determinism"
	OracleConservation = "conservation"
	OracleEASYHead     = "easy-head"
	OracleFCFSOrder    = "fcfs-order"
	OracleCompletion   = "completion"
)

// Failure is one oracle violation.
type Failure struct {
	Oracle string
	Detail string
}

func (f *Failure) Error() string { return fmt.Sprintf("[%s] %s", f.Oracle, f.Detail) }

// easyApplicable gates the head-reservation oracle: the EASY guarantee
// ("the reserved head never starts later than its reservation") only holds
// when walltime estimates are upper bounds on actual runtimes. Generated
// scenarios construct estimates that way; a hand-edited repro with
// under-estimates simply drops the oracle instead of false-firing.
func (s Scenario) easyApplicable() bool {
	if s.Policy != "easy" {
		return false
	}
	bound := s.maxSlowdown()
	for _, j := range s.Jobs {
		if float64(j.Est) < float64(j.Work)*bound {
			return false
		}
	}
	return true
}

// Check runs the scenario's cluster simulation and applies every
// applicable oracle, returning the first failure or nil. It must be a
// deterministic pure function of the scenario: Replay leans on that.
func Check(s Scenario) *Failure {
	if err := s.Validate(); err != nil {
		return &Failure{Oracle: "validate", Detail: err.Error()}
	}

	// The EASY reservation ledger: the tightest reservation ever granted
	// to each job while it sat blocked at the head of the queue.
	reservation := make(map[int]sim.Time)
	resOrder := []int{} // IDs in first-reservation order, for determinism
	cfg := s.config()
	cfg.OnDecision = func(v batch.View, started []int) {
		id, at, ok := batch.EASYReservation(v)
		if !ok {
			return
		}
		prev, seen := reservation[id]
		if !seen {
			resOrder = append(resOrder, id)
			reservation[id] = at
		} else if at < prev {
			reservation[id] = at
		}
	}
	res := batch.Simulate(cfg)

	// Determinism: a second run of the identical config must agree bit for
	// bit, fingerprint first (it digests the dispatch order).
	cfg2 := s.config()
	res2 := batch.Simulate(cfg2)
	if res.Fingerprint != res2.Fingerprint {
		return &Failure{Oracle: OracleDeterminism,
			Detail: fmt.Sprintf("dispatch fingerprints differ across identical runs: %016x vs %016x", res.Fingerprint, res2.Fingerprint)}
	}
	if !reflect.DeepEqual(res, res2) {
		return &Failure{Oracle: OracleDeterminism, Detail: "identical runs produced different results beyond the fingerprint"}
	}

	if f := checkConservation(s, res); f != nil {
		return f
	}
	if s.Policy == "fcfs" {
		if f := checkFCFSOrder(res); f != nil {
			return f
		}
	}
	if s.easyApplicable() {
		if f := checkEASYHead(res, reservation, resOrder); f != nil {
			return f
		}
	}
	if s.Chaos == (batch.Chaos{}) {
		if f := checkCompletion(res); f != nil {
			return f
		}
	}
	return nil
}

// checkConservation sweeps the dispatched intervals and fails if the
// summed allocation ever exceeds cluster capacity. Completions release
// before coincident starts, matching the dispatcher's event order.
func checkConservation(s Scenario, res batch.Result) *Failure {
	type edge struct {
		at    sim.Time
		delta int
		id    int
	}
	var edges []edge
	for _, st := range res.Jobs {
		if !st.Started {
			continue
		}
		if st.End <= st.Start {
			return &Failure{Oracle: OracleConservation,
				Detail: fmt.Sprintf("job %d occupies an empty interval [%v, %v)", st.ID, st.Start, st.End)}
		}
		edges = append(edges, edge{st.Start, st.Nodes, st.ID}, edge{st.End, -st.Nodes, st.ID})
	}
	// Insertion sort by (time, releases first): deterministic and small.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0; j-- {
			a, b := edges[j], edges[j-1]
			if a.at > b.at || (a.at == b.at && a.delta >= b.delta) {
				break
			}
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	used := 0
	for _, e := range edges {
		used += e.delta
		if used > s.Nodes {
			return &Failure{Oracle: OracleConservation,
				Detail: fmt.Sprintf("at %v the cluster holds %d allocated nodes of %d (job %d pushed it over)",
					e.at, used, s.Nodes, e.id)}
		}
	}
	return nil
}

// checkFCFSOrder demands starts in strict arrival order under the FCFS
// policy: an unstarted or overtaken earlier arrival is a violation.
// res.Jobs is already in (Arrival, ID) order.
func checkFCFSOrder(res batch.Result) *Failure {
	for i := 1; i < len(res.Jobs); i++ {
		prev, cur := res.Jobs[i-1], res.Jobs[i]
		if cur.Started && !prev.Started {
			return &Failure{Oracle: OracleFCFSOrder,
				Detail: fmt.Sprintf("job %d started at %v while earlier job %d never started", cur.ID, cur.Start, prev.ID)}
		}
		if cur.Started && prev.Started && cur.Start < prev.Start {
			return &Failure{Oracle: OracleFCFSOrder,
				Detail: fmt.Sprintf("job %d (arrived %v) started at %v, before earlier job %d (arrived %v, started %v)",
					cur.ID, cur.Arrival, cur.Start, prev.ID, prev.Arrival, prev.Start)}
		}
	}
	return nil
}

// checkEASYHead holds EASY to its one guarantee: a job that was granted a
// reservation while blocked at the head starts no later than the tightest
// reservation it was ever granted (estimates are upper bounds here, so
// actual releases only come early and can only improve the bound).
func checkEASYHead(res batch.Result, reservation map[int]sim.Time, resOrder []int) *Failure {
	stats := make(map[int]batch.JobStat, len(res.Jobs))
	for _, st := range res.Jobs {
		stats[st.ID] = st
	}
	for _, id := range resOrder {
		bound := reservation[id]
		st, ok := stats[id]
		if !ok {
			return &Failure{Oracle: OracleEASYHead, Detail: fmt.Sprintf("reserved job %d missing from results", id)}
		}
		if !st.Started {
			return &Failure{Oracle: OracleEASYHead,
				Detail: fmt.Sprintf("job %d held a reservation for %v but never started", id, bound)}
		}
		if st.Start > bound {
			return &Failure{Oracle: OracleEASYHead,
				Detail: fmt.Sprintf("backfill delayed the reserved head: job %d started %v, reservation was %v",
					id, st.Start, bound)}
		}
	}
	return nil
}

// checkCompletion demands every job ran to completion in a chaos-free
// scenario; a stranded job means the scheduler wedged.
func checkCompletion(res batch.Result) *Failure {
	for _, st := range res.Jobs {
		if !st.Started {
			return &Failure{Oracle: OracleCompletion,
				Detail: fmt.Sprintf("job %d (arrived %v) never started", st.ID, st.Arrival)}
		}
	}
	if res.Dispatched != len(res.Jobs) {
		return &Failure{Oracle: OracleCompletion,
			Detail: fmt.Sprintf("dispatched %d of %d jobs", res.Dispatched, len(res.Jobs))}
	}
	return nil
}
