package batchcheck

import (
	"path/filepath"
	"reflect"
	"testing"

	"hplsim/internal/batch"
)

// TestCorpus runs the full 200-seed corpus CI uses: every generated
// scenario must satisfy all applicable oracles.
func TestCorpus(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	for seed := uint64(0); seed < uint64(n); seed++ {
		s := Generate(seed)
		if f := Check(s); f != nil {
			data, _ := s.MarshalIndent()
			t.Fatalf("seed %d: %v\nscenario:\n%s", seed, f, data)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generator is not a pure function of the seed", seed)
		}
	}
}

func TestGenerateCoversSpace(t *testing.T) {
	policies := map[string]bool{}
	models := map[string]bool{}
	for seed := uint64(0); seed < 200; seed++ {
		s := Generate(seed)
		policies[s.Policy] = true
		models[s.Model] = true
	}
	for _, p := range batch.PolicyNames() {
		if !policies[p] {
			t.Errorf("200 seeds never generated policy %q", p)
		}
	}
	for _, m := range []string{ModelExact, ModelNoisy} {
		if !models[m] {
			t.Errorf("200 seeds never generated model %q", m)
		}
	}
}

// chaosScenario is a base scenario the fault injectors visibly corrupt.
func chaosScenario(policy string, chaos batch.Chaos) Scenario {
	s := Generate(12)
	s.Policy = policy
	s.Chaos = chaos
	return s
}

// litmusScenario is the hand-built 4-node backfill litmus: job 1 (whole
// machine) blocks behind job 0 (3 nodes, long) and is the job EASY holds a
// reservation for; job 2 backfills the hole. Starving the head here
// strands job 1 with a recorded reservation, which is exactly what the
// easy-head oracle must catch.
func litmusScenario(policy string, chaos batch.Chaos) Scenario {
	const sec = 1_000_000_000
	return Scenario{
		Seed: 1, Nodes: 4, RanksPerNode: 1,
		Policy: policy, Model: ModelExact,
		Jobs: []batch.Job{
			{ID: 0, Ranks: 3, Est: 100 * sec, Work: 100 * sec, Arrival: 0},
			{ID: 1, Ranks: 4, Est: 10 * sec, Work: 10 * sec, Arrival: 1 * sec},
			{ID: 2, Ranks: 1, Est: 10 * sec, Work: 10 * sec, Arrival: 2 * sec},
		},
		Chaos: chaos,
	}
}

// TestOraclesCatchChaos proves each oracle still fires on the fault it was
// built for — the harness's own regression test against rotting oracles.
func TestOraclesCatchChaos(t *testing.T) {
	cases := []struct {
		name   string
		s      Scenario
		oracle string
	}{
		{"overcommit breaks conservation", chaosScenario("easy", batch.Chaos{Overcommit: true}), OracleConservation},
		{"starved head breaks fcfs order", chaosScenario("fcfs", batch.Chaos{StarveHead: true}), OracleFCFSOrder},
		{"starved head breaks the easy reservation", litmusScenario("easy", batch.Chaos{StarveHead: true}), OracleEASYHead},
	}
	for _, tc := range cases {
		f := Check(tc.s)
		if f == nil {
			t.Errorf("%s: no oracle fired", tc.name)
			continue
		}
		if f.Oracle != tc.oracle {
			t.Errorf("%s: oracle %q fired, want %q (%s)", tc.name, f.Oracle, tc.oracle, f.Detail)
		}
	}
}

// TestShrinkReduces pins that the shrinker makes failing scenarios
// strictly smaller while preserving the failing oracle.
func TestShrinkReduces(t *testing.T) {
	s := chaosScenario("easy", batch.Chaos{Overcommit: true})
	small, f := Shrink(s, 0)
	if f == nil {
		t.Fatal("shrink lost the failure")
	}
	if f.Oracle != OracleConservation {
		t.Fatalf("shrink wandered to oracle %q", f.Oracle)
	}
	if len(small.Jobs) >= len(s.Jobs) {
		t.Fatalf("shrink kept %d of %d jobs", len(small.Jobs), len(s.Jobs))
	}
	if err := small.Validate(); err != nil {
		t.Fatalf("shrunk scenario is invalid: %v", err)
	}
	// The shrunk scenario must still fail standalone (no hidden state).
	if f2 := Check(small); f2 == nil || f2.Oracle != f.Oracle {
		t.Fatalf("shrunk scenario does not reproduce: %v", f2)
	}
}

func TestShrinkPassingScenarioIsIdentity(t *testing.T) {
	s := Generate(3)
	same, f := Shrink(s, 0)
	if f != nil {
		t.Fatalf("passing scenario shrank to a failure: %v", f)
	}
	if !reflect.DeepEqual(s, same) {
		t.Fatal("passing scenario was modified by Shrink")
	}
}

func TestReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	small, f := Shrink(chaosScenario("fcfs", batch.Chaos{StarveHead: true}), 0)
	if f == nil {
		t.Fatal("expected a failure to pin")
	}
	r := Repro{Version: ReproVersion, Note: "round-trip test", Expect: "fail", Oracle: f.Oracle, Scenario: small}
	path := filepath.Join(dir, "x.json")
	if err := WriteRepro(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatal("repro did not survive the round trip")
	}
	if err := ReplayFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestCommittedRepros replays the corpus CI replays: the committed files
// must keep reproducing their recorded verdicts.
func TestCommittedRepros(t *testing.T) {
	if err := ReplayDir("testdata/repros"); err != nil {
		t.Fatal(err)
	}
}
