package batchcheck

import (
	"fmt"

	"hplsim/internal/batch"
	"hplsim/internal/sim"
)

// Generate materialises the scenario for a seed: a pure function, so the
// corpus is reproducible from seed ranges alone. Every stream draw is
// unconditional — choices that end up unused (the aging rate of a FCFS
// scenario, the spread of an exact-model one) are still drawn — so one
// decision never shifts the stream of the next and scenarios stay stable
// under generator evolution.
func Generate(seed uint64) Scenario {
	rng := sim.NewRNG(seed).Split(0xbc01)

	nodeChoices := []int{4, 8, 16, 32}
	rpnChoices := []int{1, 2, 4, 8}
	kinds := []string{batch.TracePoisson, batch.TraceDiurnal, batch.TraceBursty}

	s := Scenario{Seed: seed}
	s.Nodes = nodeChoices[rng.Intn(len(nodeChoices))]
	s.RanksPerNode = rpnChoices[rng.Intn(len(rpnChoices))]
	names := batch.PolicyNames()
	s.Policy = names[rng.Intn(len(names))]
	s.AgingRate = 0.01 + rng.Float64() // drawn even when the policy ignores it
	s.Spread = 0.1 + 0.7*rng.Float64() // drawn even for the exact model
	if rng.Float64() < 0.35 {
		s.Model = ModelExact
	} else {
		s.Model = ModelNoisy
	}

	// Offered load ~ E[job node-seconds] / (interarrival * capacity),
	// aimed between lightly loaded and saturated so queues actually form
	// and backfill has holes to fill.
	kind := kinds[rng.Intn(len(kinds))]
	jobs := 8 + rng.Intn(25)
	meanWork := sim.Seconds(60 + 540*rng.Float64())
	maxNodesPerJob := 1 + rng.Intn(s.Nodes)
	maxRanks := maxNodesPerJob * s.RanksPerNode
	rho := 0.5 + rng.Float64()
	meanJobNodes := float64(maxNodesPerJob+1) / 2
	interarrival := sim.Duration(float64(meanWork) * meanJobNodes / (rho * float64(s.Nodes)))
	if interarrival < sim.Second {
		interarrival = sim.Second
	}

	tc := batch.TraceConfig{
		Kind:             kind,
		Jobs:             jobs,
		MeanInterarrival: interarrival,
		MaxRanks:         maxRanks,
		MeanWork:         meanWork,
		WorkSpread:       1.5 + 3*rng.Float64(),
		// Estimates stay honest upper bounds on any runtime the model can
		// draw, keeping the EASY head-reservation oracle applicable.
		EstFactor:  s.maxSlowdown() + 0.05 + 0.45*rng.Float64(),
		EstNoise:   0.5 * rng.Float64(),
		PrioLevels: 1 + rng.Intn(5),
		Day:        sim.Duration(jobs) * interarrival,
		Burst:      2 + rng.Intn(6),
	}
	trace, err := batch.GenerateTrace(tc, rng.Split(0x77ace))
	if err != nil {
		panic(fmt.Sprintf("batchcheck: generator built an invalid trace config: %v", err))
	}
	s.Jobs = trace
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("batchcheck: generator built an invalid scenario: %v", err))
	}
	return s
}
