package batchcheck

import "hplsim/internal/sim"

// DefaultShrinkBudget bounds the number of Check calls a shrink may spend.
const DefaultShrinkBudget = 200

// Shrink greedily reduces a failing scenario while it keeps failing (any
// oracle): drop jobs, compress arrival gaps, halve work and estimates
// together, shrink the cluster, flatten priorities, simplify the model.
// It returns the smallest failing scenario found and its failure; a
// passing input comes back unchanged with a nil failure. budget caps the
// Check calls (<= 0 means DefaultShrinkBudget).
func Shrink(s Scenario, budget int) (Scenario, *Failure) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	fail := Check(s)
	if fail == nil {
		return s, nil
	}
	checks := 1
	cur := s
	for checks < budget {
		improved := false
		for _, cand := range candidates(cur) {
			if cand.Validate() != nil {
				continue
			}
			if checks >= budget {
				break
			}
			f := Check(cand)
			checks++
			if f != nil {
				cur, fail = cand, f
				improved = true
				break // restart from the reduced scenario
			}
		}
		if !improved {
			break
		}
	}
	return cur, fail
}

// candidates enumerates one-step reductions, biggest wins first. Every
// candidate is a fresh deep copy.
func candidates(s Scenario) []Scenario {
	var out []Scenario

	// Halve the trace, then drop individual jobs.
	if n := len(s.Jobs); n >= 2 {
		c := s.clone()
		c.Jobs = c.Jobs[:n/2]
		out = append(out, c)
	}
	for i := range s.Jobs {
		c := s.clone()
		c.Jobs = append(c.Jobs[:i], c.Jobs[i+1:]...)
		out = append(out, c)
	}

	// Shrink the machine (jobs that no longer fit invalidate the
	// candidate and Validate filters it out).
	if s.Nodes > 1 {
		c := s.clone()
		c.Nodes /= 2
		out = append(out, c)
	}

	// Halve every duration together (work and estimate keep their ratio,
	// so oracle applicability is preserved) and compress arrivals.
	c := s.clone()
	shrunkDur := false
	for i := range c.Jobs {
		if c.Jobs[i].Work >= 2*sim.Second {
			c.Jobs[i].Work /= 2
			c.Jobs[i].Est /= 2
			shrunkDur = true
		}
	}
	if shrunkDur {
		out = append(out, c)
	}
	c = s.clone()
	shrunkArr := false
	for i := range c.Jobs {
		if c.Jobs[i].Arrival >= 2 {
			c.Jobs[i].Arrival /= 2
			shrunkArr = true
		}
	}
	if shrunkArr {
		out = append(out, c)
	}

	// Flatten priorities and simplify the model.
	flat := s.clone()
	anyPrio := false
	for i := range flat.Jobs {
		if flat.Jobs[i].Priority != 0 {
			flat.Jobs[i].Priority = 0
			anyPrio = true
		}
	}
	if anyPrio {
		out = append(out, flat)
	}
	if s.Model == ModelNoisy {
		c := s.clone()
		c.Model = ModelExact
		c.Spread = 0
		out = append(out, c)
	}
	return out
}
