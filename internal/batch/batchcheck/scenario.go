// Package batchcheck is the property-based test harness for the batch
// layer, mirroring internal/schedcheck one level up: a seeded generator
// materialises cluster scenarios (machine size, policy, node model, job
// trace), trace-level oracles check every run (determinism fingerprint,
// node-hour conservation, EASY head-reservation, FCFS dominance,
// completion), failures shrink greedily, and shrunken repros are committed
// as JSON under testdata/repros and replayed in CI.
package batchcheck

import (
	"encoding/json"
	"fmt"

	"hplsim/internal/batch"
)

// Model wire names.
const (
	// ModelExact runs every job in exactly its ideal time.
	ModelExact = "exact"
	// ModelNoisy draws per-node slowdowns uniformly from [1, 1+Spread]
	// and takes the max across the job's nodes.
	ModelNoisy = "noisy"
)

// Scenario is one self-contained batch-layer check: everything Check
// needs to run the cluster simulation and judge it.
type Scenario struct {
	// Seed drives the node-model draws inside the run.
	Seed uint64
	// Nodes and RanksPerNode shape the cluster.
	Nodes        int
	RanksPerNode int
	// Policy is a batch.NewPolicy wire name.
	Policy string
	// AgingRate parameterises the "aging" policy (points per second).
	AgingRate float64 `json:",omitempty"`
	// Model is ModelExact or ModelNoisy.
	Model string
	// Spread is the noisy model's slowdown width: slowdowns land in
	// [1, 1+Spread].
	Spread float64 `json:",omitempty"`
	// Jobs is the materialised arrival trace.
	Jobs []batch.Job
	// Chaos injects scheduler faults; committed "fail" repros use it to
	// pin that the oracles keep catching real bugs.
	Chaos batch.Chaos `json:",omitempty"`
}

// Validate reports the first structural problem with the scenario.
func (s Scenario) Validate() error {
	if s.Nodes < 1 || s.Nodes > 1024 {
		return fmt.Errorf("batchcheck: nodes %d outside [1, 1024]", s.Nodes)
	}
	if s.RanksPerNode < 1 || s.RanksPerNode > 256 {
		return fmt.Errorf("batchcheck: ranks/node %d outside [1, 256]", s.RanksPerNode)
	}
	if _, err := batch.NewPolicy(s.Policy, s.AgingRate); err != nil {
		return err
	}
	switch s.Model {
	case ModelExact:
	case ModelNoisy:
		if !(s.Spread >= 0 && s.Spread <= 10) {
			return fmt.Errorf("batchcheck: spread %v outside [0, 10]", s.Spread)
		}
	default:
		return fmt.Errorf("batchcheck: unknown model %q", s.Model)
	}
	if len(s.Jobs) == 0 || len(s.Jobs) > 4096 {
		return fmt.Errorf("batchcheck: job count %d outside [1, 4096]", len(s.Jobs))
	}
	cl := s.cluster()
	seen := make(map[int]bool, len(s.Jobs))
	for _, j := range s.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("batchcheck: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
		if n := cl.NodesFor(j); n > cl.Nodes {
			return fmt.Errorf("batchcheck: job %d needs %d nodes, cluster has %d", j.ID, n, cl.Nodes)
		}
	}
	return nil
}

func (s Scenario) cluster() batch.Cluster {
	return batch.Cluster{Nodes: s.Nodes, RanksPerNode: s.RanksPerNode}
}

// maxSlowdown bounds the runtime inflation the scenario's model can apply.
func (s Scenario) maxSlowdown() float64 {
	if s.Model == ModelNoisy {
		return 1 + s.Spread
	}
	return 1
}

func (s Scenario) model() batch.NodeModel {
	if s.Model == ModelNoisy {
		return batch.UniformModel{Label: ModelNoisy, Lo: 1, Hi: 1 + s.Spread}
	}
	return batch.ExactModel{}
}

// config assembles the batch.Config the scenario describes. Callers own
// the OnDecision hook.
func (s Scenario) config() batch.Config {
	p, err := batch.NewPolicy(s.Policy, s.AgingRate)
	if err != nil {
		panic(err) // Validate ran first
	}
	return batch.Config{
		Cluster: s.cluster(),
		Policy:  p,
		Model:   s.model(),
		Jobs:    s.Jobs,
		Seed:    s.Seed,
		Chaos:   s.Chaos,
	}
}

// clone deep-copies the scenario so shrink candidates never alias.
func (s Scenario) clone() Scenario {
	c := s
	c.Jobs = make([]batch.Job, len(s.Jobs))
	copy(c.Jobs, s.Jobs)
	return c
}

// MarshalIndent renders the scenario as stable indented JSON.
func (s Scenario) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
