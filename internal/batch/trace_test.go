package batch

import (
	"bytes"
	"reflect"
	"testing"

	"hplsim/internal/sim"
)

func testTraceConfig(kind string) TraceConfig {
	cfg := TraceConfig{
		Kind:             kind,
		Jobs:             50,
		MeanInterarrival: 30 * sim.Second,
		MaxRanks:         16,
		MeanWork:         120 * sim.Second,
		WorkSpread:       4,
		EstFactor:        1.5,
		EstNoise:         1,
		PrioLevels:       3,
	}
	switch kind {
	case TraceDiurnal:
		cfg.Day = 24 * 3600 * sim.Second
	case TraceBursty:
		cfg.Burst = 8
	}
	return cfg
}

func TestGenerateTraceAllKinds(t *testing.T) {
	for _, kind := range []string{TracePoisson, TraceDiurnal, TraceBursty} {
		cfg := testTraceConfig(kind)
		jobs, err := GenerateTrace(cfg, sim.NewRNG(42))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(jobs) != cfg.Jobs {
			t.Fatalf("%s: got %d jobs, want %d", kind, len(jobs), cfg.Jobs)
		}
		for i, j := range jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("%s: job %d invalid: %v", kind, i, err)
			}
			if j.ID != i {
				t.Fatalf("%s: job %d has ID %d", kind, i, j.ID)
			}
			if j.Ranks > cfg.MaxRanks {
				t.Fatalf("%s: job %d asks %d ranks, cap %d", kind, i, j.Ranks, cfg.MaxRanks)
			}
			if j.Est < j.Work {
				t.Fatalf("%s: job %d estimate %v below work %v", kind, i, j.Est, j.Work)
			}
			if i > 0 && j.Arrival < jobs[i-1].Arrival {
				t.Fatalf("%s: arrivals not monotone at %d: %v after %v", kind, i, j.Arrival, jobs[i-1].Arrival)
			}
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	for _, kind := range []string{TracePoisson, TraceDiurnal, TraceBursty} {
		cfg := testTraceConfig(kind)
		a, err := GenerateTrace(cfg, sim.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateTrace(cfg, sim.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different traces", kind)
		}
		c, err := GenerateTrace(cfg, sim.NewRNG(8))
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical traces", kind)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	jobs, err := GenerateTrace(testTraceConfig(TracePoisson), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalTrace(jobs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, back) {
		t.Fatal("trace did not survive a marshal/read round trip")
	}
}

func TestReadTraceRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":      `{]`,
		"empty":        `[]`,
		"duplicate ID": `[{"ID":1,"Ranks":1,"Est":5,"Work":5,"Arrival":0},{"ID":1,"Ranks":1,"Est":5,"Work":5,"Arrival":9}]`,
		"zero ranks":   `[{"ID":0,"Ranks":0,"Est":5,"Work":5,"Arrival":0}]`,
		"zero work":    `[{"ID":0,"Ranks":1,"Est":5,"Work":0,"Arrival":0}]`,
	}
	for name, data := range cases {
		if _, err := ReadTrace([]byte(data)); err == nil {
			t.Errorf("%s: ReadTrace accepted %q", name, data)
		}
	}
}

// FuzzReadTrace asserts ReadTrace never panics and, whenever it accepts an
// input, that MarshalTrace(ReadTrace(x)) is a fixed point: reading the
// canonical form back reproduces it byte for byte.
func FuzzReadTrace(f *testing.F) {
	jobs, err := GenerateTrace(testTraceConfig(TraceBursty), sim.NewRNG(11))
	if err != nil {
		f.Fatal(err)
	}
	seed, err := MarshalTrace(jobs[:5])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"ID":0,"Ranks":1,"Est":5,"Work":5,"Arrival":0,"Priority":2}]`))
	f.Add([]byte(`[{"ID":3,"Name":"x","Ranks":4,"Est":50,"Work":40,"Arrival":7}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ReadTrace(data)
		if err != nil {
			return
		}
		canon, err := MarshalTrace(parsed)
		if err != nil {
			t.Fatalf("accepted trace failed to marshal: %v", err)
		}
		again, err := ReadTrace(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		canon2, err := MarshalTrace(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", canon, canon2)
		}
	})
}
