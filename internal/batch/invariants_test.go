//go:build invariants

package batch

import (
	"testing"

	"hplsim/internal/invariant"
	"hplsim/internal/sim"
)

// expectViolation runs fn and demands it panics with an
// invariant.Violation; any other outcome fails the test.
func expectViolation(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted state passed the invariant check")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("panic was not an invariant.Violation: %v", r)
		}
	}()
	fn()
}

func TestCorruptQueueHeapPanics(t *testing.T) {
	q := NewAgingQueue(1)
	for i := 0; i < 8; i++ {
		q.Push(Job{ID: i, Priority: i, Arrival: sim.Time(i) * sim.Time(sim.Second)})
	}
	// Swap the root below one of its children: heap order broken.
	q.heap[0], q.heap[len(q.heap)-1] = q.heap[len(q.heap)-1], q.heap[0]
	expectViolation(t, func() {
		q.Push(Job{ID: 99, Priority: 1, Arrival: sim.Time(sim.Second)})
	})
}

func TestCorruptQueueKeyPanics(t *testing.T) {
	q := NewAgingQueue(1)
	q.Push(Job{ID: 0, Priority: 3, Arrival: 0})
	q.Push(Job{ID: 1, Priority: 1, Arrival: 0})
	// A key that no longer matches its (prio, arrival) derivation.
	q.heap[0].key += 42
	expectViolation(t, func() { q.Push(Job{ID: 2, Priority: 2, Arrival: 0}) })
}

func TestCorruptSimStateFreePanics(t *testing.T) {
	st := &simState{total: 8, free: 8}
	st.run = append(st.run, running{id: 0, nodes: 3, end: sim.Time(10 * sim.Second)})
	// Books say 8 free, but a running job holds 3 of 8: identity broken.
	expectViolation(t, func() { st.checkState() })
}

func TestCorruptSimStateOrderPanics(t *testing.T) {
	st := &simState{total: 4, free: 4}
	st.waiting = []Waiting{
		{Job: Job{ID: 1, Arrival: sim.Time(5 * sim.Second)}, Nodes: 1},
		{Job: Job{ID: 0, Arrival: sim.Time(2 * sim.Second)}, Nodes: 1},
	}
	expectViolation(t, func() { st.checkState() })
}

func TestCorruptProfilePanics(t *testing.T) {
	p := newProfile(0, 2, 4, []Release{{At: sim.Time(10 * sim.Second), Nodes: 2}})
	// Breakpoints out of order.
	p.times[1] = p.times[0] - 1
	expectViolation(t, func() { p.checkProfile() })
}

func TestCorruptProfileOverCapacityPanics(t *testing.T) {
	p := newProfile(0, 2, 4, []Release{{At: sim.Time(10 * sim.Second), Nodes: 2}})
	// A segment planning more free nodes than the cluster has.
	p.free[1] = 9
	expectViolation(t, func() { p.checkProfile() })
}

// TestInvariantsLiveInSimulate proves the checks actually run on the real
// code path under the tag: a full simulation passes them at every event.
func TestInvariantsLiveInSimulate(t *testing.T) {
	jobs, err := GenerateTrace(testTraceConfig(TraceBursty), sim.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{FCFS{}, EASY{}, Conservative{}, PriorityAging{Rate: 0.1}} {
		Simulate(Config{
			Cluster: Cluster{Nodes: 8, RanksPerNode: 4},
			Policy:  p, Model: UniformModel{Lo: 1, Hi: 1.3}, Jobs: jobs, Seed: 3,
		})
	}
	// Chaos runs must also pass the structural checks: overcommit breaks
	// the conservation *property*, not the accounting *identity*.
	Simulate(Config{
		Cluster: Cluster{Nodes: 8, RanksPerNode: 4},
		Policy:  EASY{}, Model: ExactModel{}, Jobs: jobs, Seed: 3,
		Chaos: Chaos{Overcommit: true, StarveHead: true},
	})
}
