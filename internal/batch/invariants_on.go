//go:build invariants

package batch

import "hplsim/internal/invariant"

// checkQueue verifies the aging heap: every parent pops no later than its
// children, keys agree with the entries they were derived from, and the
// backing slice has no zero-value holes.
func (q *AgingQueue) checkQueue() {
	for i, e := range q.heap {
		want := float64(e.prio) - q.rate*e.arrival.Seconds()
		if e.key != want {
			invariant.Violated("batch: queue entry %d key %v, want %v from (prio %d, arrival %v)",
				e.id, e.key, want, e.prio, e.arrival)
		}
		if i == 0 {
			continue
		}
		parent := (i - 1) / 2
		if ahead(e, q.heap[parent]) {
			invariant.Violated("batch: aging heap order broken: child %d (key %v) ahead of parent %d (key %v)",
				e.id, e.key, q.heap[parent].id, q.heap[parent].key)
		}
	}
}

// checkState verifies the dispatcher's capacity accounting identity —
// free == total - sum(running allocations) — and that the waiting list is
// in (Arrival, ID) order with sane allocations. The identity holds even
// under chaos overcommit (free simply goes negative), so fault-injected
// runs still pass the structural check while the conservation oracle
// flags them at the trace level.
func (s *simState) checkState() {
	used := 0
	for _, r := range s.run {
		if r.nodes < 1 {
			invariant.Violated("batch: running job %d holds %d nodes", r.id, r.nodes)
		}
		used += r.nodes
	}
	if s.free != s.total-used {
		invariant.Violated("batch: capacity books broken: free %d, want %d (total %d - running %d)",
			s.free, s.total-used, s.total, used)
	}
	for i := 1; i < len(s.waiting); i++ {
		a, b := s.waiting[i-1].Job, s.waiting[i].Job
		if a.Arrival > b.Arrival || (a.Arrival == b.Arrival && a.ID >= b.ID) {
			invariant.Violated("batch: waiting queue out of arrival order at %d: (%v, job %d) before (%v, job %d)",
				i, a.Arrival, a.ID, b.Arrival, b.ID)
		}
	}
}

// checkProfile verifies the conservative-backfill capacity timeline:
// breakpoints strictly increase, the segment slices agree in length, and
// no segment plans more free nodes than the cluster has (releases can only
// return capacity that allocations took out, even under overcommit).
func (p *profile) checkProfile() {
	if len(p.times) == 0 || len(p.times) != len(p.free) {
		invariant.Violated("batch: profile shape broken: %d times, %d segments", len(p.times), len(p.free))
	}
	for i := 1; i < len(p.times); i++ {
		if p.times[i] <= p.times[i-1] {
			invariant.Violated("batch: profile breakpoints not increasing: %v then %v", p.times[i-1], p.times[i])
		}
	}
	for i, f := range p.free {
		if f > p.total {
			invariant.Violated("batch: profile plans %d free nodes at %v, cluster has %d", f, p.times[i], p.total)
		}
	}
}
