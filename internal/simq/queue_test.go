package simq

import (
	"sort"
	"testing"
)

// splitmix64 is the tests' deterministic PRNG (math/rand is banned in
// deterministic packages; test files keep the habit so fixtures never
// drift between runs).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func alwaysLive(job, attempt int) bool { return true }

func TestQueuePopOrderMatchesReference(t *testing.T) {
	for _, rate := range []float64{0, 0.5, 4} {
		q := NewQueue(rate)
		var ref []queueEntry
		seed := uint64(42)
		for i := 0; i < 200; i++ {
			prio := int(splitmix64(&seed) % 32)
			submit := int64(splitmix64(&seed) % 1e9)
			q.Push(i, 1, prio, submit)
			ref = append(ref, queueEntry{job: i, attempt: 1, submit: submit, key: q.Key(prio, submit)})
		}
		sort.Slice(ref, func(i, j int) bool { return ahead(ref[i], ref[j]) }) // deterministic: ahead is a total order
		for i, want := range ref {
			job, attempt, ok := q.Pop(alwaysLive)
			if !ok {
				t.Fatalf("rate %v: queue empty after %d pops, want %d", rate, i, len(ref))
			}
			if job != want.job || attempt != want.attempt {
				t.Fatalf("rate %v: pop %d = job %d, want job %d", rate, i, job, want.job)
			}
		}
		if _, _, ok := q.Pop(alwaysLive); ok {
			t.Fatalf("rate %v: queue not empty after draining", rate)
		}
	}
}

func TestQueueAgingOvertake(t *testing.T) {
	// At 1 priority point per second, a prio-1 job submitted at t=0
	// outranks a prio-5 job submitted 10 s later: 1 - 0 > 5 - 10.
	q := NewQueue(1)
	q.Push(0, 1, 1, 0)
	q.Push(1, 1, 5, 10_000_000_000)
	job, _, ok := q.Pop(alwaysLive)
	if !ok || job != 0 {
		t.Fatalf("pop = job %d ok=%v, want the aged job 0", job, ok)
	}
	// With no aging the higher static priority wins.
	q = NewQueue(0)
	q.Push(0, 1, 1, 0)
	q.Push(1, 1, 5, 10_000_000_000)
	job, _, ok = q.Pop(alwaysLive)
	if !ok || job != 1 {
		t.Fatalf("pop = job %d ok=%v, want the higher-priority job 1", job, ok)
	}
}

func TestQueueTieBreaksOnJobID(t *testing.T) {
	q := NewQueue(0)
	for _, job := range []int{3, 0, 2, 1} {
		q.Push(job, 1, 7, 100)
	}
	for want := 0; want < 4; want++ {
		job, _, ok := q.Pop(alwaysLive)
		if !ok || job != want {
			t.Fatalf("pop = job %d ok=%v, want job %d (submission order)", job, ok, want)
		}
	}
}

func TestQueueLazyDeletion(t *testing.T) {
	q := NewQueue(0)
	dead := map[int]bool{1: true, 3: true}
	for i := 0; i < 5; i++ {
		q.Push(i, 1, 10-i, 0)
	}
	live := func(job, attempt int) bool { return !dead[job] }
	var got []int
	for {
		job, _, ok := q.Pop(live)
		if !ok {
			break
		}
		got = append(got, job)
	}
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
}

func TestQueuePeekDiscardsStaleOnly(t *testing.T) {
	q := NewQueue(0)
	q.Push(0, 1, 5, 0) // stale
	q.Push(1, 1, 3, 0) // live
	live := func(job, attempt int) bool { return job != 0 }
	job, _, ok := q.Peek(live)
	if !ok || job != 1 {
		t.Fatalf("peek = job %d ok=%v, want job 1", job, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("peek left %d entries, want 1 (stale discarded, live kept)", q.Len())
	}
	// Peek again: still there, still job 1.
	if job, _, ok = q.Peek(live); !ok || job != 1 {
		t.Fatalf("second peek = job %d ok=%v, want job 1", job, ok)
	}
	if job, _, ok = q.Pop(live); !ok || job != 1 {
		t.Fatalf("pop after peek = job %d ok=%v, want job 1", job, ok)
	}
}

// TestQueueModel drives the heap against a flat-slice reference through a
// deterministic random op mix, including retries that re-push a job at a
// higher attempt and make the old entry stale.
func TestQueueModel(t *testing.T) {
	q := NewQueue(2)
	type key struct{ job, attempt int }
	liveSet := make(map[key]bool)
	var ref []queueEntry
	live := func(job, attempt int) bool { return liveSet[key{job, attempt}] }
	refPop := func() (queueEntry, bool) {
		best := -1
		for i, e := range ref {
			if !liveSet[key{e.job, e.attempt}] {
				continue
			}
			if best < 0 || ahead(e, ref[best]) {
				best = i
			}
		}
		if best < 0 {
			return queueEntry{}, false
		}
		e := ref[best]
		ref = append(ref[:best], ref[best+1:]...)
		return e, true
	}

	seed := uint64(7)
	nextJob := 0
	attempts := make(map[int]int)
	for step := 0; step < 2000; step++ {
		switch splitmix64(&seed) % 4 {
		case 0, 1: // push a fresh job
			prio := int(splitmix64(&seed) % 16)
			submit := int64(splitmix64(&seed) % 1e10)
			attempts[nextJob] = 1
			liveSet[key{nextJob, 1}] = true
			q.Push(nextJob, 1, prio, submit)
			ref = append(ref, queueEntry{job: nextJob, attempt: 1, submit: submit, key: q.Key(prio, submit)})
			nextJob++
		case 2: // retry a random live job: stale its entry, re-push
			if nextJob == 0 {
				continue
			}
			job := int(splitmix64(&seed) % uint64(nextJob))
			a := attempts[job]
			if !liveSet[key{job, a}] {
				continue
			}
			liveSet[key{job, a}] = false
			prio := int(splitmix64(&seed) % 16)
			submit := int64(splitmix64(&seed) % 1e10)
			attempts[job] = a + 1
			liveSet[key{job, a + 1}] = true
			q.Push(job, a+1, prio, submit)
			ref = append(ref, queueEntry{job: job, attempt: a + 1, submit: submit, key: q.Key(prio, submit)})
		case 3: // pop and compare
			want, wantOK := refPop()
			job, attempt, ok := q.Pop(live)
			if ok != wantOK {
				t.Fatalf("step %d: pop ok=%v, reference ok=%v", step, ok, wantOK)
			}
			if ok && (job != want.job || attempt != want.attempt) {
				t.Fatalf("step %d: pop = job %d attempt %d, reference job %d attempt %d",
					step, job, attempt, want.job, want.attempt)
			}
			if ok {
				liveSet[key{job, attempt}] = false
			}
		}
	}
}

func TestCoolHeapOrder(t *testing.T) {
	var c coolHeap
	seed := uint64(3)
	for i := 0; i < 100; i++ {
		c.push(coolEntry{nb: int64(splitmix64(&seed) % 1000), job: i, attempt: 1})
	}
	prev := coolEntry{nb: -1}
	for i := 0; i < 100; i++ {
		e, ok := c.pop()
		if !ok {
			t.Fatalf("cool heap empty after %d pops", i)
		}
		if i > 0 && coolAhead(e, prev) {
			t.Fatalf("cool pop %d out of order: nb %d after nb %d", i, e.nb, prev.nb)
		}
		prev = e
	}
}

func TestLeaseHeapOrder(t *testing.T) {
	var h leaseHeap
	seed := uint64(5)
	for i := 0; i < 100; i++ {
		h.push(leaseEntry{deadline: int64(splitmix64(&seed) % 1000), job: i, attempt: 1})
	}
	prev := leaseEntry{deadline: -1}
	for i := 0; i < 100; i++ {
		e, ok := h.pop()
		if !ok {
			t.Fatalf("lease heap empty after %d pops", i)
		}
		if i > 0 && leaseAhead(e, prev) {
			t.Fatalf("lease pop %d out of order: deadline %d after %d", i, e.deadline, prev.deadline)
		}
		prev = e
	}
}
