//go:build invariants

package simq

import (
	"testing"

	"hplsim/internal/invariant"
)

// expectViolation runs fn and demands it panics with an
// invariant.Violation; any other outcome fails the test. These tests are
// what prove the -tags invariants audits actually execute — a silently
// disabled check would pass corrupted state.
func expectViolation(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted state passed the invariant check")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("panic was not an invariant.Violation: %v", r)
		}
	}()
	fn()
}

func TestCorruptReadyHeapPanics(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < 8; i++ {
		q.Push(i, 1, i, int64(i))
	}
	// Swap the root below one of its children: heap order broken.
	q.heap[0], q.heap[len(q.heap)-1] = q.heap[len(q.heap)-1], q.heap[0]
	expectViolation(t, func() { q.Push(99, 1, 1, 99) })
}

func TestCorruptStateCountsPanics(t *testing.T) {
	s := NewState(Config{})
	mustApply(t, s, Record{Seq: 1, Op: OpSubmit, T: 10, Job: 0, Client: "c", Name: "j", Payload: "{}"})
	// Books claim one extra done job.
	s.counts[Done]++
	expectViolation(t, func() {
		s.Apply(Record{Seq: 2, Op: OpSubmit, T: 20, Job: 1, Client: "c", Name: "k", Payload: "{}"})
	})
}

func TestCorruptStateInflightPanics(t *testing.T) {
	s := NewState(Config{})
	mustApply(t, s, Record{Seq: 1, Op: OpSubmit, T: 10, Job: 0, Client: "c", Name: "j", Payload: "{}"})
	s.inflight["c"] = 7
	expectViolation(t, func() { s.PeekClaim(20) })
}

func TestCorruptLeaseDeadlinePanics(t *testing.T) {
	s := NewState(Config{})
	mustApply(t, s, Record{Seq: 1, Op: OpSubmit, T: 10, Job: 0, Client: "c", Name: "j", Payload: "{}"})
	mustApply(t, s, Record{Seq: 2, Op: OpClaim, T: 20, Job: 0, Worker: "w", Attempt: 1, Deadline: 1000})
	// The job's deadline drifts from its lease-heap entry.
	s.jobs[0].deadline = 999
	expectViolation(t, func() { s.NextExpiry(30) })
}

func TestCorruptReadyKeyPanics(t *testing.T) {
	s := NewState(Config{AgingRate: 1})
	mustApply(t, s, Record{Seq: 1, Op: OpSubmit, T: 10, Job: 0, Client: "c", Name: "j", Payload: "{}"})
	s.ready.heap[0].key += 42
	expectViolation(t, func() { s.PeekClaim(20) })
}
