package simq

import (
	"bytes"
	"testing"
)

// FuzzReadJournal pins the journal reader's safety contract: arbitrary
// bytes never panic, and any input it accepts is canonicalised — writing
// the parsed records and reading them back is a fixed point. The recovery
// reader additionally must hand back a goodBytes offset whose prefix the
// strict reader accepts with the same records.
func FuzzReadJournal(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add(MarshalJournal(sampleJournal()))
	f.Add(MarshalJournal(sampleJournal())[:37])
	f.Add([]byte(`{"seq":1,"op":"submit","t":1,"job":0,"client":"c","name":"n","prio":0,"payload":""}` + "\n"))
	f.Add([]byte(`{"seq":1,"op":"drain","t":-1}`))
	f.Add([]byte(`{"seq":1,"op":"vanish","t":1}` + "\n"))
	f.Add([]byte(`{"seq":18446744073709551615,"op":"cancel","t":9223372036854775807,"job":-1}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte("{\"seq\":1,\"op\":\"complete\",\"t\":1,\"job\":0,\"worker\":\"\\u0000 x\",\"attempt\":1,\"fp\":\"x\",\"bytes\":1}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadJournal(bytes.NewReader(data))
		if err == nil {
			// write∘read∘write fixed point.
			b := MarshalJournal(recs)
			again, err2 := ReadJournal(bytes.NewReader(b))
			if err2 != nil {
				t.Fatalf("canonical re-read failed: %v", err2)
			}
			if !bytes.Equal(MarshalJournal(again), b) {
				t.Fatal("write∘read∘write is not a fixed point")
			}
		}

		rrecs, goodBytes, rerr := RecoverJournal(bytes.NewReader(data))
		if rerr != nil {
			return
		}
		if goodBytes < 0 || goodBytes > int64(len(data)) {
			t.Fatalf("goodBytes %d out of range [0, %d]", goodBytes, len(data))
		}
		// The recovered prefix must parse strictly to the same records.
		srecs, serr := ReadJournal(bytes.NewReader(data[:goodBytes]))
		if serr != nil {
			t.Fatalf("strict read of recovered prefix failed: %v", serr)
		}
		if len(srecs) != len(rrecs) {
			t.Fatalf("strict read of prefix has %d records, recovery reported %d", len(srecs), len(rrecs))
		}
		for i := range srecs {
			if srecs[i] != rrecs[i] {
				t.Fatalf("record %d differs between recovery and strict prefix read", i)
			}
		}
	})
}
