package simq

// The HTTP/JSON wire protocol between psq-style clients, simd-style
// workers, and the dispatcher. Pure data — the HTTP plumbing lives in
// internal/simqd; keeping the types here lets the deterministic tests
// exercise encode/decode without a socket.

// API paths served by the dispatcher.
const (
	PathSubmit   = "/api/submit"
	PathStatus   = "/api/status"
	PathJobs     = "/api/jobs"
	PathClaim    = "/api/claim"
	PathComplete = "/api/complete"
	PathFail     = "/api/fail"
	PathCancel   = "/api/cancel"
	PathResult   = "/api/result"
	PathDrain    = "/api/drain"
	PathStats    = "/api/stats"
)

// SubmitRequest asks the dispatcher to queue one job. Payload is the
// opaque job spec the worker will execute (canonical compact JSON; see
// experiments.Payload for the standard scenario/experiment schema).
type SubmitRequest struct {
	Client  string `json:"client"`
	Name    string `json:"name"`
	Prio    int    `json:"prio"`
	Payload string `json:"payload"`
}

// SubmitReply returns the assigned job ID.
type SubmitReply struct {
	Job int `json:"job"`
}

// ClaimRequest asks for the next runnable job on behalf of a worker.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// ClaimReply hands a leased job to a worker. A 204 response (no body)
// means nothing is runnable right now.
type ClaimReply struct {
	Job      int    `json:"job"`
	Name     string `json:"name"`
	Attempt  int    `json:"attempt"`
	Payload  string `json:"payload"`
	Deadline int64  `json:"deadline"`
}

// CompleteRequest uploads a result artifact for a leased job. Artifact
// bytes ride as base64 (encoding/json's []byte form); FP must equal the
// FNV-1a fingerprint of the bytes — the dispatcher re-hashes and rejects
// a mismatch before journaling anything.
type CompleteRequest struct {
	Worker   string `json:"worker"`
	Job      int    `json:"job"`
	Attempt  int    `json:"attempt"`
	FP       string `json:"fp"`
	Artifact []byte `json:"artifact"`
}

// FailRequest reports a worker-side execution failure.
type FailRequest struct {
	Worker  string `json:"worker"`
	Job     int    `json:"job"`
	Attempt int    `json:"attempt"`
	Err     string `json:"err"`
}

// CancelRequest withdraws a job.
type CancelRequest struct {
	Job int `json:"job"`
}

// ErrorReply is the JSON body of every non-2xx response.
type ErrorReply struct {
	Error string `json:"error"`
}

// StatsReply extends the queue aggregate with service-level counters kept
// outside the journaled state (they describe traffic, not queue truth).
type StatsReply struct {
	Stats
	// Rejected counts quota/drain submit rejections since this
	// dispatcher process started (rejections are never journaled, so the
	// counter resets on restart — by design).
	Rejected uint64 `json:"rejected"`
	// Duplicates counts idempotent duplicate completion deliveries.
	Duplicates uint64 `json:"duplicates"`
	// FPMismatches counts completion deliveries whose artifact bytes
	// disagreed with an earlier verified result — each one is a
	// determinism-contract violation caught at the service boundary.
	FPMismatches uint64 `json:"fp_mismatches"`
	// StaleReports counts completions/failures for leases that had
	// already expired and been re-queued or re-leased.
	StaleReports uint64 `json:"stale_reports"`
}
