package simq

import (
	"hplsim/internal/invariant"
)

// Queue orders ready jobs by aged priority, reusing the internal/batch
// AgingQueue insight: when every job ages at the same rate, the comparison
// reduces to the static key Prio - Rate*Submit(seconds), so the queue is
// an ordinary hand-rolled max-heap (container/heap is banned in the
// deterministic core) and never re-sifts as time advances. Ties break on
// smaller job ID — submission order — making the pop order total and
// deterministic.
//
// Deletion is lazy: the state machine cancels or requeues jobs by bumping
// their attempt, and Pop skips entries whose (job, attempt) the caller no
// longer recognises. An entry is live while the validity callback accepts
// it; stale entries cost one comparison on their way out.
type Queue struct {
	rate float64
	heap []queueEntry
}

type queueEntry struct {
	job     int
	attempt int
	submit  int64 // submission stamp, ns (aging anchor)
	key     float64
}

// NewQueue builds an empty queue with the given aging rate (priority
// points per second of wait; 0 = static priority).
func NewQueue(rate float64) *Queue {
	return &Queue{rate: rate}
}

// Rate reports the aging rate.
func (q *Queue) Rate() float64 { return q.rate }

// Len reports the number of entries, live and stale alike.
func (q *Queue) Len() int { return len(q.heap) }

// Key is the time-independent ordering key for a job submitted at submit
// nanoseconds with the given priority.
func (q *Queue) Key(prio int, submit int64) float64 {
	return float64(prio) - q.rate*(float64(submit)/1e9)
}

// ahead reports whether a must pop before b.
func ahead(a, b queueEntry) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	return a.job < b.job
}

// Push queues attempt of job. The submit stamp is the job's original
// submission time, so a retried job keeps the age it has earned.
func (q *Queue) Push(job, attempt, prio int, submit int64) {
	q.heap = append(q.heap, queueEntry{
		job:     job,
		attempt: attempt,
		submit:  submit,
		key:     q.Key(prio, submit),
	})
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ahead(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
	if invariant.Enabled {
		q.checkQueue()
	}
}

// Pop removes and returns the highest-priority live entry, discarding
// stale entries (those live rejects) along the way. ok is false when no
// live entry remains.
func (q *Queue) Pop(live func(job, attempt int) bool) (job, attempt int, ok bool) {
	for len(q.heap) > 0 {
		top := q.heap[0]
		last := len(q.heap) - 1
		q.heap[0] = q.heap[last]
		q.heap = q.heap[:last]
		q.siftDown()
		if live(top.job, top.attempt) {
			if invariant.Enabled {
				q.checkQueue()
			}
			return top.job, top.attempt, true
		}
	}
	if invariant.Enabled {
		q.checkQueue()
	}
	return 0, 0, false
}

// Peek reports the highest-priority live entry without removing it,
// discarding stale entries it passes over.
func (q *Queue) Peek(live func(job, attempt int) bool) (job, attempt int, ok bool) {
	for len(q.heap) > 0 {
		top := q.heap[0]
		if live(top.job, top.attempt) {
			if invariant.Enabled {
				q.checkQueue()
			}
			return top.job, top.attempt, true
		}
		last := len(q.heap) - 1
		q.heap[0] = q.heap[last]
		q.heap = q.heap[:last]
		q.siftDown()
	}
	if invariant.Enabled {
		q.checkQueue()
	}
	return 0, 0, false
}

func (q *Queue) siftDown() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(q.heap) && ahead(q.heap[l], q.heap[best]) {
			best = l
		}
		if r < len(q.heap) && ahead(q.heap[r], q.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		i = best
	}
}

// coolHeap is the companion min-heap of cooling (backoff-delayed) retry
// entries, ordered by not-before stamp with (job) as the deterministic
// tiebreak. Entries move to the ready Queue when the observed time passes
// their stamp; like Queue, deletion is lazy.
type coolHeap struct {
	heap []coolEntry
}

type coolEntry struct {
	nb      int64
	job     int
	attempt int
	submit  int64
}

func coolAhead(a, b coolEntry) bool {
	if a.nb != b.nb {
		return a.nb < b.nb
	}
	return a.job < b.job
}

func (c *coolHeap) push(e coolEntry) {
	c.heap = append(c.heap, e)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !coolAhead(c.heap[i], c.heap[parent]) {
			break
		}
		c.heap[i], c.heap[parent] = c.heap[parent], c.heap[i]
		i = parent
	}
}

// pop removes the earliest entry; callers check liveness and nb.
func (c *coolHeap) pop() (coolEntry, bool) {
	if len(c.heap) == 0 {
		return coolEntry{}, false
	}
	top := c.heap[0]
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap = c.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(c.heap) && coolAhead(c.heap[l], c.heap[best]) {
			best = l
		}
		if r < len(c.heap) && coolAhead(c.heap[r], c.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		c.heap[i], c.heap[best] = c.heap[best], c.heap[i]
		i = best
	}
	return top, true
}

func (c *coolHeap) peek() (coolEntry, bool) {
	if len(c.heap) == 0 {
		return coolEntry{}, false
	}
	return c.heap[0], true
}

// leaseHeap orders live leases by deadline so expiry sweeps are O(log n)
// per expiry instead of a scan over every job. Same lazy-deletion scheme:
// completing or failing a lease leaves its entry behind to be skipped.
type leaseHeap struct {
	heap []leaseEntry
}

type leaseEntry struct {
	deadline int64
	job      int
	attempt  int
}

func leaseAhead(a, b leaseEntry) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.job < b.job
}

func (h *leaseHeap) push(e leaseEntry) {
	h.heap = append(h.heap, e)
	i := len(h.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !leaseAhead(h.heap[i], h.heap[parent]) {
			break
		}
		h.heap[i], h.heap[parent] = h.heap[parent], h.heap[i]
		i = parent
	}
}

func (h *leaseHeap) pop() (leaseEntry, bool) {
	if len(h.heap) == 0 {
		return leaseEntry{}, false
	}
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.heap = h.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.heap) && leaseAhead(h.heap[l], h.heap[best]) {
			best = l
		}
		if r < len(h.heap) && leaseAhead(h.heap[r], h.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.heap[i], h.heap[best] = h.heap[best], h.heap[i]
		i = best
	}
	return top, true
}

func (h *leaseHeap) peek() (leaseEntry, bool) {
	if len(h.heap) == 0 {
		return leaseEntry{}, false
	}
	return h.heap[0], true
}
