package simq

import (
	"errors"
	"strings"
	"testing"

	"hplsim/internal/sim"
)

func mustApply(t *testing.T, s *State, rec Record) {
	t.Helper()
	if err := s.Apply(rec); err != nil {
		t.Fatalf("Apply(%+v): %v", rec, err)
	}
}

// script drives a State exactly the way the service edge does — decide,
// stamp a record, apply — while keeping the record sequence for replay
// tests. It is the in-process twin of internal/simqd's commit path.
type script struct {
	t    *testing.T
	s    *State
	recs []Record
}

func newScript(t *testing.T, cfg Config) *script {
	return &script{t: t, s: NewState(cfg)}
}

func (sc *script) apply(rec Record) Record {
	sc.t.Helper()
	rec.Seq = sc.s.NextSeq()
	mustApply(sc.t, sc.s, rec)
	sc.recs = append(sc.recs, rec)
	return rec
}

func (sc *script) submit(now int64, client, name string, prio int) int {
	sc.t.Helper()
	if err := sc.s.SubmitErr(client); err != nil {
		sc.t.Fatalf("submit %q at t=%d rejected: %v", name, now, err)
	}
	id := sc.s.NextID()
	sc.apply(Record{Op: OpSubmit, T: now, Job: id, Client: client, Name: name, Prio: prio, Payload: `{"bench":"` + name + `"}`})
	return id
}

func (sc *script) claim(now int64, worker string) (job, attempt int) {
	sc.t.Helper()
	job, attempt, ok := sc.s.PeekClaim(now)
	if !ok {
		sc.t.Fatalf("nothing claimable at t=%d", now)
	}
	sc.apply(Record{Op: OpClaim, T: now, Job: job, Worker: worker, Attempt: attempt,
		Deadline: now + int64(sc.s.Config().LeaseFor)})
	return job, attempt
}

func (sc *script) complete(now int64, worker string, job, attempt int, artifact []byte) {
	sc.t.Helper()
	sc.apply(Record{Op: OpComplete, T: now, Job: job, Worker: worker, Attempt: attempt,
		FP: FingerprintString(Fingerprint(artifact)), Bytes: len(artifact)})
}

func (sc *script) fail(now int64, worker string, job, attempt int, msg string) {
	sc.t.Helper()
	sc.apply(Record{Op: OpFail, T: now, Job: job, Worker: worker, Attempt: attempt,
		Err: msg, NB: sc.s.ExpiryDisposition(now, attempt)})
}

// expireAll journals expire records for every lease past its deadline at
// now, the way the edge sweeps before serving a claim.
func (sc *script) expireAll(now int64) int {
	sc.t.Helper()
	n := 0
	for {
		job, attempt, ok := sc.s.NextExpiry(now)
		if !ok {
			return n
		}
		sc.apply(Record{Op: OpExpire, T: now, Job: job, Attempt: attempt,
			NB: sc.s.ExpiryDisposition(now, attempt)})
		n++
	}
}

func (sc *script) state(job int) JobState {
	sc.t.Helper()
	v, ok := sc.s.Job(job)
	if !ok {
		sc.t.Fatalf("job %d unknown", job)
	}
	switch v.State {
	case "pending":
		return Pending
	case "leased":
		return Leased
	case "done":
		return Done
	case "failed":
		return Failed
	case "canceled":
		return Canceled
	}
	sc.t.Fatalf("job %d in unknown state %q", job, v.State)
	return 0
}

const tick = int64(sim.Second)

func TestLifecycleComplete(t *testing.T) {
	sc := newScript(t, Config{})
	j := sc.submit(1*tick, "alice", "ft", 5)
	if got := sc.s.InFlight("alice"); got != 1 {
		t.Fatalf("in-flight after submit = %d, want 1", got)
	}
	job, attempt := sc.claim(2*tick, "w1")
	if job != j || attempt != 1 {
		t.Fatalf("claimed job %d attempt %d, want job %d attempt 1", job, attempt, j)
	}
	sc.complete(3*tick, "w1", job, attempt, []byte("artifact"))
	v, _ := sc.s.Job(j)
	if v.State != "done" || v.FP == "" || v.Bytes != 8 || v.DoneT != 3*tick {
		t.Fatalf("done view = %+v", v)
	}
	if sc.s.InFlight("alice") != 0 {
		t.Fatalf("in-flight after completion = %d, want 0", sc.s.InFlight("alice"))
	}
	st := sc.s.Stats()
	if st.Done != 1 || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryKeepsEarnedAge(t *testing.T) {
	// Two jobs age at 1 prio/s. Job 0 (prio 1, submitted first) fails once;
	// its retry keeps the original submit stamp, so it still outranks job 1
	// (prio 2, submitted much later) once its backoff cools.
	sc := newScript(t, Config{AgingRate: 1})
	j0 := sc.submit(0, "a", "old", 1)
	job, attempt := sc.claim(1*tick, "w1")
	sc.fail(2*tick, "w1", job, attempt, "transient")
	j1 := sc.submit(10*tick, "a", "young", 2)
	// Backoff after attempt 1 is BackoffBase (1 s): cooled by t=3 s.
	job, attempt = sc.claim(11*tick, "w2")
	if job != j0 || attempt != 2 {
		t.Fatalf("claimed job %d attempt %d, want aged job %d attempt 2 (j1=%d)", job, attempt, j0, j1)
	}
}

func TestBackoffSchedule(t *testing.T) {
	cfg := Config{BackoffBase: sim.Second, BackoffCap: 5 * sim.Second}.WithDefaults()
	want := []sim.Duration{sim.Second, 2 * sim.Second, 4 * sim.Second, 5 * sim.Second, 5 * sim.Second}
	for i, w := range want {
		if got := cfg.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestExpiryDisposition(t *testing.T) {
	cfg := Config{MaxAttempts: 2, BackoffBase: sim.Second}
	s := NewState(cfg)
	if nb := s.ExpiryDisposition(100, 1); nb != 100+int64(sim.Second) {
		t.Errorf("disposition of attempt 1 = %d, want requeue at %d", nb, 100+int64(sim.Second))
	}
	if nb := s.ExpiryDisposition(100, 2); nb != 0 {
		t.Errorf("disposition of final attempt = %d, want 0 (terminal)", nb)
	}
}

func TestLeaseExpiryRequeuesWithBackoff(t *testing.T) {
	sc := newScript(t, Config{MaxAttempts: 2})
	j := sc.submit(0, "a", "ft", 1)
	_, _ = sc.claim(1*tick, "w1")
	deadline := 1*tick + int64(sc.s.Config().LeaseFor)

	// Before the deadline nothing expires.
	if n := sc.expireAll(deadline - 1); n != 0 {
		t.Fatalf("expired %d leases before the deadline", n)
	}
	if n := sc.expireAll(deadline); n != 1 {
		t.Fatalf("expired %d leases at the deadline, want 1", n)
	}
	if sc.state(j) != Pending {
		t.Fatalf("job %d after first expiry: %v, want pending (1 attempt left)", j, sc.state(j))
	}
	// Still cooling: not claimable until deadline+backoff.
	if _, _, ok := sc.s.PeekClaim(deadline + 1); ok {
		t.Fatal("cooled job claimable before its backoff passed")
	}
	cooled := deadline + int64(sc.s.Config().Backoff(1))
	job, attempt := sc.claim(cooled, "w2")
	if job != j || attempt != 2 {
		t.Fatalf("reclaim = job %d attempt %d, want job %d attempt 2", job, attempt, j)
	}
	// Second expiry exhausts the budget: terminal failure.
	sc.expireAll(cooled + int64(sc.s.Config().LeaseFor))
	if sc.state(j) != Failed {
		t.Fatalf("job %d after final expiry: %v, want failed", j, sc.state(j))
	}
	v, _ := sc.s.Job(j)
	if !strings.Contains(v.Err, "lease expired") {
		t.Fatalf("terminal expiry err = %q", v.Err)
	}
	if sc.s.InFlight("a") != 0 {
		t.Fatalf("in-flight after terminal failure = %d", sc.s.InFlight("a"))
	}
}

func TestQuotaRejectionsAreDeterministic(t *testing.T) {
	sc := newScript(t, Config{QuotaPerClient: 2})
	sc.submit(1, "alice", "a", 0)
	j2 := sc.submit(2, "alice", "b", 0)
	// Third submit rejected — and rejected identically on every ask.
	for i := 0; i < 3; i++ {
		if err := sc.s.SubmitErr("alice"); !errors.Is(err, ErrQuota) {
			t.Fatalf("ask %d: SubmitErr = %v, want ErrQuota", i, err)
		}
	}
	// Another client is unaffected.
	if err := sc.s.SubmitErr("bob"); err != nil {
		t.Fatalf("bob rejected: %v", err)
	}
	// Completing one of alice's jobs frees a slot.
	job, attempt := sc.claim(3, "w")
	if job != sc.recs[0].Job {
		t.Fatalf("claimed job %d, want the first submit", job)
	}
	sc.complete(4, "w", job, attempt, []byte("x"))
	if err := sc.s.SubmitErr("alice"); err != nil {
		t.Fatalf("after completion SubmitErr = %v, want nil", err)
	}
	// Canceling the other also frees its slot.
	sc.apply(Record{Op: OpCancel, T: 5, Job: j2})
	if got := sc.s.InFlight("alice"); got != 0 {
		t.Fatalf("in-flight after cancel = %d, want 0", got)
	}
}

func TestDrainStopsSubmitsFinishesInFlight(t *testing.T) {
	sc := newScript(t, Config{})
	j := sc.submit(1, "a", "slow", 0)
	job, attempt := sc.claim(2, "w")
	sc.apply(Record{Op: OpDrain, T: 3})
	if !sc.s.Draining() {
		t.Fatal("not draining after drain record")
	}
	if err := sc.s.SubmitErr("b"); !errors.Is(err, ErrDraining) {
		t.Fatalf("SubmitErr while draining = %v, want ErrDraining", err)
	}
	if sc.s.Quiesced() {
		t.Fatal("quiesced with a lease still out")
	}
	// The in-flight job still completes.
	sc.complete(4, "w", job, attempt, []byte("done late"))
	if sc.state(j) != Done {
		t.Fatalf("in-flight job ended %v, want done", sc.state(j))
	}
	if !sc.s.Quiesced() {
		t.Fatal("not quiesced after the last lease resolved")
	}
}

func TestApplyRejectsSeqGapAndStampRegression(t *testing.T) {
	s := NewState(Config{})
	mustApply(t, s, Record{Seq: 1, Op: OpSubmit, T: 10, Job: 0, Client: "c", Name: "j", Payload: "{}"})
	if err := s.Apply(Record{Seq: 3, Op: OpDrain, T: 20}); err == nil || !strings.Contains(err.Error(), "seq") {
		t.Fatalf("seq gap accepted: %v", err)
	}
	if err := s.Apply(Record{Seq: 2, Op: OpDrain, T: 5}); err == nil || !strings.Contains(err.Error(), "precedes") {
		t.Fatalf("stamp regression accepted: %v", err)
	}
	// State is untouched by rejected records.
	if s.Seq() != 1 || s.LastStamp() != 10 {
		t.Fatalf("rejected records mutated state: seq=%d last=%d", s.Seq(), s.LastStamp())
	}
}

func TestApplyRejectsClaimDivergence(t *testing.T) {
	s := NewState(Config{})
	mustApply(t, s, Record{Seq: 1, Op: OpSubmit, T: 10, Job: 0, Client: "c", Name: "lo", Prio: 1, Payload: "{}"})
	mustApply(t, s, Record{Seq: 2, Op: OpSubmit, T: 11, Job: 1, Client: "c", Name: "hi", Prio: 9, Payload: "{}"})
	// The queue head is job 1 (higher priority); a journal claiming job 0
	// was written by diverged logic and must be refused.
	err := s.Apply(Record{Seq: 3, Op: OpClaim, T: 12, Job: 0, Worker: "w", Attempt: 1, Deadline: 99 * tick})
	if err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("diverged claim accepted: %v", err)
	}
	// Claiming from an empty queue is likewise detected.
	s2 := NewState(Config{})
	err = s2.Apply(Record{Seq: 1, Op: OpClaim, T: 1, Job: 0, Worker: "w", Attempt: 1, Deadline: 2})
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("claim against empty queue accepted: %v", err)
	}
}

func TestApplyRejectsForeignLeaseResolution(t *testing.T) {
	sc := newScript(t, Config{})
	sc.submit(1, "a", "ft", 0)
	job, attempt := sc.claim(2, "w1")
	bad := []Record{
		{Op: OpComplete, T: 3, Job: job, Worker: "w2", Attempt: attempt, FP: "ff", Bytes: 1},     // wrong worker
		{Op: OpComplete, T: 3, Job: job, Worker: "w1", Attempt: attempt + 1, FP: "ff", Bytes: 1}, // wrong attempt
		{Op: OpComplete, T: 3, Job: job, Worker: "w1", Attempt: attempt},                         // no fingerprint
		{Op: OpComplete, T: 3, Job: 42, Worker: "w1", Attempt: attempt, FP: "ff", Bytes: 1},      // unknown job
		{Op: OpFail, T: 3, Job: job, Worker: "w2", Attempt: attempt, Err: "x"},                   // wrong worker
		{Op: OpExpire, T: 3, Job: job, Attempt: attempt},                                         // before deadline
	}
	for i, rec := range bad {
		rec.Seq = sc.s.NextSeq()
		if err := sc.s.Apply(rec); err == nil {
			t.Errorf("bad record %d (%s) accepted", i, rec.Op)
		}
	}
	// The real resolution still goes through.
	sc.complete(3, "w1", job, attempt, []byte("ok"))
}

func TestCancel(t *testing.T) {
	sc := newScript(t, Config{})
	j0 := sc.submit(1, "a", "p", 0)
	j1 := sc.submit(2, "a", "q", 9)
	job, attempt := sc.claim(3, "w") // claims j1 (higher prio)
	if job != j1 {
		t.Fatalf("claimed %d, want %d", job, j1)
	}
	sc.apply(Record{Op: OpCancel, T: 4, Job: j0}) // cancel pending
	sc.apply(Record{Op: OpCancel, T: 5, Job: j1}) // cancel leased
	if sc.state(j0) != Canceled || sc.state(j1) != Canceled {
		t.Fatalf("states after cancel: %v, %v", sc.state(j0), sc.state(j1))
	}
	// A canceled lease's late completion is refused (stale report).
	rec := Record{Seq: sc.s.NextSeq(), Op: OpComplete, T: 6, Job: j1, Worker: "w", Attempt: attempt, FP: "ff", Bytes: 1}
	if err := sc.s.Apply(rec); err == nil {
		t.Fatal("completion of a canceled job accepted")
	}
	// Canceling a canceled job is refused.
	rec = Record{Seq: sc.s.NextSeq(), Op: OpCancel, T: 6, Job: j0}
	if err := sc.s.Apply(rec); err == nil {
		t.Fatal("double cancel accepted")
	}
	if sc.s.InFlight("a") != 0 {
		t.Fatalf("in-flight after cancels = %d", sc.s.InFlight("a"))
	}
}

func TestJobsAndPayloadAccessors(t *testing.T) {
	sc := newScript(t, Config{})
	sc.submit(1, "a", "x", 0)
	sc.submit(2, "b", "y", 0)
	views := sc.s.Jobs()
	if len(views) != 2 || views[0].ID != 0 || views[1].ID != 1 {
		t.Fatalf("Jobs() = %+v", views)
	}
	if p, ok := sc.s.Payload(0); !ok || p != `{"bench":"x"}` {
		t.Fatalf("Payload(0) = %q, %v", p, ok)
	}
	if _, ok := sc.s.Payload(99); ok {
		t.Fatal("Payload(99) found a job")
	}
	if _, ok := sc.s.Job(99); ok {
		t.Fatal("Job(99) found a job")
	}
}

func TestSubmitRecordValidation(t *testing.T) {
	s := NewState(Config{QuotaPerClient: 1})
	// Wrong job ID.
	if err := s.Apply(Record{Seq: 1, Op: OpSubmit, T: 1, Job: 7, Client: "c", Name: "n", Payload: "{}"}); err == nil {
		t.Fatal("submit with wrong job ID accepted")
	}
	// Missing client.
	if err := s.Apply(Record{Seq: 1, Op: OpSubmit, T: 1, Job: 0, Name: "n", Payload: "{}"}); err == nil {
		t.Fatal("submit with no client accepted")
	}
	mustApply(t, s, Record{Seq: 1, Op: OpSubmit, T: 1, Job: 0, Client: "c", Name: "n", Payload: "{}"})
	// A journaled submit that violates the quota means the journal and the
	// admission logic disagree: replay must refuse it.
	if err := s.Apply(Record{Seq: 2, Op: OpSubmit, T: 2, Job: 1, Client: "c", Name: "n2", Payload: "{}"}); err == nil ||
		!errors.Is(err, ErrQuota) {
		t.Fatalf("inadmissible journaled submit: %v, want ErrQuota", err)
	}
	// Claim deadline before its stamp is refused.
	if err := s.Apply(Record{Seq: 2, Op: OpClaim, T: 10, Job: 0, Worker: "w", Attempt: 1, Deadline: 9}); err == nil {
		t.Fatal("claim with deadline before stamp accepted")
	}
	// Unknown op is refused.
	if err := s.Apply(Record{Seq: 2, Op: "vanish", T: 10}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestStateStringer(t *testing.T) {
	want := map[JobState]string{Pending: "pending", Leased: "leased", Done: "done",
		Failed: "failed", Canceled: "canceled", JobState(9): "JobState(9)"}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), w)
		}
	}
	for _, f := range []Fault{FaultWorkerCrash, FaultDropResult, FaultDuplicateDelivery, FaultDispatcherCrash, Fault(99)} {
		if f.String() == "" {
			t.Errorf("Fault(%d).String() empty", int(f))
		}
	}
}
