package simq

// Chaos drives the service's failure paths deterministically from a seed:
// every fault decision is a pure hash of (seed, fault, a, b), so a chaos
// run is exactly reproducible — the property harnesses rely on replaying
// the same faults while asserting the same final artifacts. The zero
// value injects nothing.
//
// Probabilities are per decision point: a worker consults WorkerCrash and
// DropResult once per (job, attempt), DuplicateDelivery once per
// completion; the crash harness consults DispatcherCrash once per
// journaled record seq.
type Chaos struct {
	// Seed keys every decision; two Chaos values with different seeds
	// fault different (job, attempt) pairs.
	Seed uint64
	// WorkerCrash is the probability a worker dies right after claiming a
	// job, before running it: the lease must expire for progress.
	WorkerCrash float64
	// DropResult is the probability a worker runs the job to completion
	// but the result report is lost: same recovery path as a crash, but
	// the compute was spent — retries must still be byte-identical.
	DropResult float64
	// DuplicateDelivery is the probability a worker reports one
	// completion twice: the dispatcher must treat the second as an
	// idempotent no-op after verifying fingerprint equality.
	DuplicateDelivery float64
	// DispatcherCrash is the probability the dispatcher dies immediately
	// after journaling a record — before replying — used by the
	// crash-recovery harnesses to pick kill points.
	DispatcherCrash float64
}

// Fault names one injection point.
type Fault int

const (
	// FaultWorkerCrash kills the worker after claim, before execution.
	FaultWorkerCrash Fault = iota
	// FaultDropResult loses the completion report after execution.
	FaultDropResult
	// FaultDuplicateDelivery sends the completion report twice.
	FaultDuplicateDelivery
	// FaultDispatcherCrash kills the dispatcher after a journal append.
	FaultDispatcherCrash
)

func (f Fault) String() string {
	switch f {
	case FaultWorkerCrash:
		return "worker-crash"
	case FaultDropResult:
		return "drop-result"
	case FaultDuplicateDelivery:
		return "duplicate-delivery"
	case FaultDispatcherCrash:
		return "dispatcher-crash"
	default:
		return "fault-unknown"
	}
}

// Enabled reports whether any fault has a non-zero probability.
func (c Chaos) Enabled() bool {
	return c.WorkerCrash > 0 || c.DropResult > 0 || c.DuplicateDelivery > 0 ||
		c.DispatcherCrash > 0
}

// rate returns the configured probability for f.
func (c Chaos) rate(f Fault) float64 {
	switch f {
	case FaultWorkerCrash:
		return c.WorkerCrash
	case FaultDropResult:
		return c.DropResult
	case FaultDuplicateDelivery:
		return c.DuplicateDelivery
	case FaultDispatcherCrash:
		return c.DispatcherCrash
	default:
		return 0
	}
}

// Hit decides fault f at decision point (a, b) — conventionally (job,
// attempt) for worker faults and (seq, 0) for dispatcher faults. The
// decision is stateless: the same (seed, f, a, b) always lands the same
// way, whichever order the service reaches its decision points in.
func (c Chaos) Hit(f Fault, a, b uint64) bool {
	p := c.rate(f)
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := uint64(fnvOffset)
	for _, v := range [4]uint64{c.Seed, uint64(f), a, b} {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * fnvPrime
			v >>= 8
		}
	}
	// Top 53 bits -> uniform float in [0, 1).
	u := float64(h>>11) / (1 << 53)
	return u < p
}
