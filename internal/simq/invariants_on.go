//go:build invariants

package simq

import "hplsim/internal/invariant"

// checkQueue verifies the aging heap: parent entries pop no later than
// their children, and every key agrees with its (derivable) submit stamp.
// Keys are recomputed from the entry's own fields — a prio drift cannot be
// detected here because the entry does not carry prio, but the state-level
// audit cross-checks entries against the job table.
func (q *Queue) checkQueue() {
	for i := range q.heap {
		if i == 0 {
			continue
		}
		parent := (i - 1) / 2
		if ahead(q.heap[i], q.heap[parent]) {
			invariant.Violated("simq: ready heap order broken: child job %d (key %v) ahead of parent job %d (key %v)",
				q.heap[i].job, q.heap[i].key, q.heap[parent].job, q.heap[parent].key)
		}
	}
}

// checkState verifies the dispatcher bookkeeping identities after every
// mutation:
//
//   - per-state counts equal a recount over the job table;
//   - per-client in-flight books equal a recount of pending+leased jobs;
//   - the ids slice is sorted, duplicate-free, and covers the job table;
//   - every ready entry's key matches the job it names (live entries
//     only — stale entries are awaiting lazy discard);
//   - every pending job has exactly one live entry across ready+cooling,
//     and every leased job exactly one live lease entry;
//   - cooling and lease heaps are in heap order;
//   - seq/stamp sanity: nextID matches the table size.
func (s *State) checkState() {
	var counts [5]int
	inflight := make(map[string]int)
	for _, id := range s.ids {
		j := s.jobs[id]
		if j == nil {
			invariant.Violated("simq: ids slice names unknown job %d", id)
		}
		counts[j.state]++
		if j.state == Pending || j.state == Leased {
			inflight[j.client]++
		}
	}
	if len(s.ids) != len(s.jobs) {
		invariant.Violated("simq: ids slice has %d entries, job table %d", len(s.ids), len(s.jobs))
	}
	for i := 1; i < len(s.ids); i++ {
		if s.ids[i-1] >= s.ids[i] {
			invariant.Violated("simq: ids slice out of order at %d: %d then %d", i, s.ids[i-1], s.ids[i])
		}
	}
	for st, n := range counts {
		if s.counts[st] != n {
			invariant.Violated("simq: %v count is %d, recount says %d", JobState(st), s.counts[st], n)
		}
	}
	for _, client := range s.sortedClients() {
		if s.inflight[client] != inflight[client] {
			invariant.Violated("simq: client %q in-flight books say %d, recount says %d",
				client, s.inflight[client], inflight[client])
		}
	}
	if len(s.jobs) > 0 && s.nextID != s.ids[len(s.ids)-1]+1 {
		invariant.Violated("simq: nextID %d does not follow last job %d", s.nextID, s.ids[len(s.ids)-1])
	}

	// Heap orders.
	s.ready.checkQueue()
	for i := 1; i < len(s.cooling.heap); i++ {
		parent := (i - 1) / 2
		if coolAhead(s.cooling.heap[i], s.cooling.heap[parent]) {
			invariant.Violated("simq: cooling heap order broken at %d", i)
		}
	}
	for i := 1; i < len(s.leases.heap); i++ {
		parent := (i - 1) / 2
		if leaseAhead(s.leases.heap[i], s.leases.heap[parent]) {
			invariant.Violated("simq: lease heap order broken at %d", i)
		}
	}

	// Exactly one live entry per pending job, one live lease per leased
	// job; live ready keys agree with the job table.
	liveEntry := make(map[int]int)
	for _, e := range s.ready.heap {
		j := s.jobs[e.job]
		if j == nil || j.state != Pending || j.attempt+1 != e.attempt {
			continue // stale, awaiting lazy discard
		}
		liveEntry[e.job]++
		if want := s.ready.Key(j.prio, j.submit); e.key != want {
			invariant.Violated("simq: ready entry for job %d has key %v, want %v from (prio %d, submit %d)",
				e.job, e.key, want, j.prio, j.submit)
		}
		if e.submit != j.submit {
			invariant.Violated("simq: ready entry for job %d anchors at %d, job submitted at %d",
				e.job, e.submit, j.submit)
		}
	}
	for _, e := range s.cooling.heap {
		j := s.jobs[e.job]
		if j == nil || j.state != Pending || j.attempt+1 != e.attempt {
			continue
		}
		liveEntry[e.job]++
	}
	liveLease := make(map[int]int)
	for _, e := range s.leases.heap {
		j := s.jobs[e.job]
		if j == nil || j.state != Leased || j.attempt != e.attempt {
			continue
		}
		liveLease[e.job]++
		if j.deadline != e.deadline {
			invariant.Violated("simq: lease entry for job %d carries deadline %d, job says %d",
				e.job, e.deadline, j.deadline)
		}
	}
	for _, id := range s.ids {
		j := s.jobs[id]
		switch j.state {
		case Pending:
			if liveEntry[id] != 1 {
				invariant.Violated("simq: pending job %d has %d live queue entries, want exactly 1", id, liveEntry[id])
			}
		case Leased:
			if liveLease[id] != 1 {
				invariant.Violated("simq: leased job %d has %d live lease entries, want exactly 1", id, liveLease[id])
			}
		}
	}
}
