package simq

import "testing"

func TestChaosZeroValueInjectsNothing(t *testing.T) {
	var c Chaos
	if c.Enabled() {
		t.Fatal("zero Chaos reports Enabled")
	}
	for f := FaultWorkerCrash; f <= FaultDispatcherCrash; f++ {
		for i := uint64(0); i < 100; i++ {
			if c.Hit(f, i, i) {
				t.Fatalf("zero Chaos hit %v at (%d, %d)", f, i, i)
			}
		}
	}
}

func TestChaosCertainFaultAlwaysHits(t *testing.T) {
	c := Chaos{Seed: 1, WorkerCrash: 1}
	if !c.Enabled() {
		t.Fatal("Chaos with WorkerCrash=1 not Enabled")
	}
	for i := uint64(0); i < 100; i++ {
		if !c.Hit(FaultWorkerCrash, i, 1) {
			t.Fatalf("p=1 fault missed at (%d, 1)", i)
		}
		// Other faults stay at their zero probability.
		if c.Hit(FaultDropResult, i, 1) {
			t.Fatalf("unconfigured fault hit at (%d, 1)", i)
		}
	}
}

// TestChaosIsDeterministic: the same (seed, fault, a, b) always lands the
// same way, in any evaluation order — the property the reproducible chaos
// harnesses depend on.
func TestChaosIsDeterministic(t *testing.T) {
	c := Chaos{Seed: 42, WorkerCrash: 0.3, DropResult: 0.3}
	first := make(map[[3]uint64]bool)
	for a := uint64(0); a < 50; a++ {
		for b := uint64(1); b <= 3; b++ {
			first[[3]uint64{uint64(FaultWorkerCrash), a, b}] = c.Hit(FaultWorkerCrash, a, b)
			first[[3]uint64{uint64(FaultDropResult), a, b}] = c.Hit(FaultDropResult, a, b)
		}
	}
	// Re-evaluate in reverse order.
	for a := uint64(49); ; a-- {
		for b := uint64(3); b >= 1; b-- {
			if c.Hit(FaultWorkerCrash, a, b) != first[[3]uint64{uint64(FaultWorkerCrash), a, b}] {
				t.Fatalf("WorkerCrash(%d, %d) changed between evaluations", a, b)
			}
			if c.Hit(FaultDropResult, a, b) != first[[3]uint64{uint64(FaultDropResult), a, b}] {
				t.Fatalf("DropResult(%d, %d) changed between evaluations", a, b)
			}
		}
		if a == 0 {
			break
		}
	}
}

// TestChaosRateSanity: over many decision points the hit fraction tracks
// the configured probability, and the two fault channels under one seed
// are decorrelated.
func TestChaosRateSanity(t *testing.T) {
	c := Chaos{Seed: 7, WorkerCrash: 0.5, DropResult: 0.1}
	const n = 20000
	crash, drop, both := 0, 0, 0
	for i := uint64(0); i < n; i++ {
		hc := c.Hit(FaultWorkerCrash, i, 1)
		hd := c.Hit(FaultDropResult, i, 1)
		if hc {
			crash++
		}
		if hd {
			drop++
		}
		if hc && hd {
			both++
		}
	}
	if f := float64(crash) / n; f < 0.45 || f > 0.55 {
		t.Errorf("p=0.5 fault hit fraction %.3f, want ~0.5", f)
	}
	if f := float64(drop) / n; f < 0.07 || f > 0.13 {
		t.Errorf("p=0.1 fault hit fraction %.3f, want ~0.1", f)
	}
	// Independent channels: joint rate near the product, not near either
	// marginal (which would mean one hash drives both).
	if f := float64(both) / n; f < 0.02 || f > 0.08 {
		t.Errorf("joint hit fraction %.3f, want ~0.05 (independent channels)", f)
	}
}

// TestChaosSeedSensitivity: different seeds select different fault sets.
func TestChaosSeedSensitivity(t *testing.T) {
	a := Chaos{Seed: 1, WorkerCrash: 0.5}
	b := Chaos{Seed: 2, WorkerCrash: 0.5}
	differ := 0
	for i := uint64(0); i < 1000; i++ {
		if a.Hit(FaultWorkerCrash, i, 1) != b.Hit(FaultWorkerCrash, i, 1) {
			differ++
		}
	}
	if differ < 300 {
		t.Fatalf("seeds 1 and 2 agree on %d/1000 decisions — seed barely matters", 1000-differ)
	}
}
