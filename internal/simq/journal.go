package simq

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"hplsim/internal/schedstat"
)

// Journal record operations, the `op` field of each JSONL line. Every
// queue-state transition is exactly one record; anything that does not
// change state (a quota rejection, a duplicate delivery, a status read)
// is never journaled.
const (
	// OpSubmit accepts a job into the queue.
	OpSubmit = "submit"
	// OpClaim leases the named job to a worker under a deadline. The
	// record names the job the dispatcher chose; replay verifies the
	// choice against its own queue head, so a divergent pick is detected
	// rather than silently adopted.
	OpClaim = "claim"
	// OpComplete records a verified result artifact for the job's current
	// lease (fingerprint + byte length; artifact bytes live in the spool).
	OpComplete = "complete"
	// OpFail records a worker-reported failure of the current lease. A
	// non-zero nb requeues the job (cooling until nb); nb == 0 means the
	// attempt budget is exhausted and the job is Failed.
	OpFail = "fail"
	// OpExpire records a lease deadline passing with no result. Same nb
	// disposition as OpFail.
	OpExpire = "expire"
	// OpCancel withdraws a pending or leased job.
	OpCancel = "cancel"
	// OpDrain puts the queue in drain mode: no new submits, in-flight
	// jobs run to completion.
	OpDrain = "drain"
)

// Record is one journal line. Which fields are meaningful depends on Op;
// ReadJournal zeroes the rest so parsed records compare cleanly:
//
//	submit:   Seq, T, Job, Client, Name, Prio, Payload
//	claim:    Seq, T, Job, Worker, Attempt, Deadline
//	complete: Seq, T, Job, Worker, Attempt, FP, Bytes
//	fail:     Seq, T, Job, Worker, Attempt, Err, NB
//	expire:   Seq, T, Job, Attempt, NB
//	cancel:   Seq, T, Job
//	drain:    Seq, T
type Record struct {
	Seq uint64 `json:"seq"` // 1-based, strictly sequential
	Op  string `json:"op"`
	T   int64  `json:"t"` // dispatcher stamp, nanoseconds, non-decreasing

	Job     int    `json:"job"`
	Client  string `json:"client"`
	Name    string `json:"name"`
	Prio    int    `json:"prio"`
	Payload string `json:"payload"` // opaque job spec, canonical compact JSON

	Worker   string `json:"worker"`
	Attempt  int    `json:"attempt"`  // 1-based execution attempt
	Deadline int64  `json:"deadline"` // claim: lease expiry stamp
	NB       int64  `json:"nb"`       // fail/expire: requeue not-before stamp, 0 = terminal

	FP    string `json:"fp"` // complete: artifact FNV-1a fingerprint, %016x
	Bytes int    `json:"bytes"`
	Err   string `json:"err"` // fail: worker-reported cause
}

// AppendJSONL appends the canonical one-line JSON encoding of r, including
// the trailing newline: fixed key order, fixed per-op field set, built on
// the schedstat canonical-JSONL primitives. One record has exactly one
// byte representation — that is what makes journal prefixes comparable
// across runs and write∘read∘write a fixed point.
func (r Record) AppendJSONL(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = appendUint(b, r.Seq)
	b = append(b, `,"op":`...)
	b = schedstat.AppendJSONString(b, r.Op)
	b = schedstat.AppendKeyInt(b, "t", r.T)
	switch r.Op {
	case OpSubmit:
		b = schedstat.AppendKeyInt(b, "job", int64(r.Job))
		b = schedstat.AppendKeyStr(b, "client", r.Client)
		b = schedstat.AppendKeyStr(b, "name", r.Name)
		b = schedstat.AppendKeyInt(b, "prio", int64(r.Prio))
		b = schedstat.AppendKeyStr(b, "payload", r.Payload)
	case OpClaim:
		b = schedstat.AppendKeyInt(b, "job", int64(r.Job))
		b = schedstat.AppendKeyStr(b, "worker", r.Worker)
		b = schedstat.AppendKeyInt(b, "attempt", int64(r.Attempt))
		b = schedstat.AppendKeyInt(b, "deadline", r.Deadline)
	case OpComplete:
		b = schedstat.AppendKeyInt(b, "job", int64(r.Job))
		b = schedstat.AppendKeyStr(b, "worker", r.Worker)
		b = schedstat.AppendKeyInt(b, "attempt", int64(r.Attempt))
		b = schedstat.AppendKeyStr(b, "fp", r.FP)
		b = schedstat.AppendKeyInt(b, "bytes", int64(r.Bytes))
	case OpFail:
		b = schedstat.AppendKeyInt(b, "job", int64(r.Job))
		b = schedstat.AppendKeyStr(b, "worker", r.Worker)
		b = schedstat.AppendKeyInt(b, "attempt", int64(r.Attempt))
		b = schedstat.AppendKeyStr(b, "err", r.Err)
		b = schedstat.AppendKeyInt(b, "nb", r.NB)
	case OpExpire:
		b = schedstat.AppendKeyInt(b, "job", int64(r.Job))
		b = schedstat.AppendKeyInt(b, "attempt", int64(r.Attempt))
		b = schedstat.AppendKeyInt(b, "nb", r.NB)
	case OpCancel:
		b = schedstat.AppendKeyInt(b, "job", int64(r.Job))
	case OpDrain:
		// seq, op, t only.
	}
	return append(b, '}', '\n')
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// String renders the canonical encoding without the newline.
func (r Record) String() string {
	b := r.AppendJSONL(nil)
	return string(b[:len(b)-1])
}

// normalize zeroes every field that is not part of r's op and rejects
// unknown ops, so hand-written or padded JSON compares equal to what the
// writer produces.
func (r *Record) normalize() error {
	keep := *r
	*r = Record{Seq: keep.Seq, Op: keep.Op, T: keep.T}
	switch keep.Op {
	case OpSubmit:
		r.Job, r.Client, r.Name, r.Prio, r.Payload =
			keep.Job, keep.Client, keep.Name, keep.Prio, keep.Payload
	case OpClaim:
		r.Job, r.Worker, r.Attempt, r.Deadline =
			keep.Job, keep.Worker, keep.Attempt, keep.Deadline
	case OpComplete:
		r.Job, r.Worker, r.Attempt, r.FP, r.Bytes =
			keep.Job, keep.Worker, keep.Attempt, keep.FP, keep.Bytes
	case OpFail:
		r.Job, r.Worker, r.Attempt, r.Err, r.NB =
			keep.Job, keep.Worker, keep.Attempt, keep.Err, keep.NB
	case OpExpire:
		r.Job, r.Attempt, r.NB = keep.Job, keep.Attempt, keep.NB
	case OpCancel:
		r.Job = keep.Job
	case OpDrain:
		// seq, op, t only.
	default:
		return fmt.Errorf("simq: unknown journal op %q", keep.Op)
	}
	return nil
}

// MarshalJournal renders a whole record sequence in canonical JSONL.
func MarshalJournal(recs []Record) []byte {
	var b []byte
	for _, r := range recs {
		b = r.AppendJSONL(b)
	}
	return b
}

// ReadJournal parses a JSONL journal strictly: every line must be a valid
// record. Malformed input returns an error with its line number; it never
// panics. Blank lines are permitted and skipped. Reading the output of
// MarshalJournal reproduces the records exactly (the fuzz target pins the
// write∘read∘write fixed point).
func ReadJournal(r io.Reader) ([]Record, error) {
	recs, _, err := readJournal(r, false)
	return recs, err
}

// RecoverJournal parses a journal that may end mid-record — the footprint
// of a dispatcher killed during an append. A final line that fails to
// parse AND is not newline-terminated is treated as a torn write: the
// records before it are returned together with the byte offset where the
// torn tail begins, so the caller can truncate and resume appending.
// Corruption anywhere else is still an error: a torn tail is the only
// damage a crash can inflict on an append-only file.
func RecoverJournal(r io.Reader) (recs []Record, goodBytes int64, err error) {
	return readJournal(r, true)
}

func readJournal(r io.Reader, recover bool) ([]Record, int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var recs []Record
	var off int64
	for line := 1; ; line++ {
		raw, err := br.ReadBytes('\n')
		terminated := err == nil
		if err != nil && err != io.EOF {
			return nil, 0, fmt.Errorf("simq: journal line %d: %v", line, err)
		}
		if len(raw) == 0 {
			return recs, off, nil
		}
		trimmed := bytes.TrimSpace(raw)
		if len(trimmed) == 0 {
			off += int64(len(raw))
			if !terminated {
				return recs, off, nil
			}
			continue
		}
		var rec Record
		perr := json.Unmarshal(trimmed, &rec)
		if perr == nil {
			perr = rec.normalize()
		}
		if perr != nil {
			if recover && !terminated {
				// Torn tail: the crash interrupted this append.
				return recs, off, nil
			}
			return nil, 0, fmt.Errorf("simq: journal line %d: %v", line, perr)
		}
		recs = append(recs, rec)
		off += int64(len(raw))
		if !terminated {
			return recs, off, nil
		}
	}
}

// JournalWriter streams canonical journal records to an io.Writer with one
// reusable encode buffer (the schedstat.Writer shape). Errors are sticky.
// It does not buffer across records: after Append returns nil the record's
// bytes have been handed to the underlying writer, which is what gives the
// dispatcher its write-ahead guarantee when w is an *os.File.
type JournalWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewJournalWriter returns a journal appender over w.
func NewJournalWriter(w io.Writer) *JournalWriter {
	return &JournalWriter{w: w, buf: make([]byte, 0, 256)}
}

// Append writes one record and reports the first error seen.
func (w *JournalWriter) Append(r Record) error {
	if w.err != nil {
		return w.err
	}
	w.buf = r.AppendJSONL(w.buf[:0])
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = err
	}
	return w.err
}

// Err reports the first underlying write error, if any.
func (w *JournalWriter) Err() error { return w.err }
