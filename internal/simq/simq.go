// Package simq is the deterministic core of the simulation-queue service:
// a priority job queue whose every state transition is one journaled
// record, so the dispatcher's state is a pure function of the record
// sequence. The service edge (internal/simqd) decides a transition, writes
// the record to the journal, and only then applies it — a killed
// dispatcher replays its journal on restart and recovers bitwise-identical
// queue state. Wall-clock time never enters this package: records carry
// stamps assigned at the edge, and every Apply/decision method takes the
// observed time as a parameter.
//
// The determinism contract (PRs 2-9) is what makes the service testable to
// a standard no real scheduler can meet: any worker re-running any job
// must produce a bitwise-identical result artifact, so retries, duplicate
// deliveries, and crash recovery all reduce to byte-equality assertions.
package simq

import (
	"fmt"

	"hplsim/internal/sim"
)

// JobState is the lifecycle state of one queued job.
type JobState int

const (
	// Pending jobs sit in the priority queue (possibly cooling under a
	// retry backoff) waiting to be claimed.
	Pending JobState = iota
	// Leased jobs are held by a worker under a deadline; an expired lease
	// requeues the job with capped backoff.
	Leased
	// Done jobs have a verified result artifact.
	Done
	// Failed jobs exhausted their attempts (or failed terminally).
	Failed
	// Canceled jobs were withdrawn by a client before completing.
	Canceled
)

func (s JobState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Leased:
		return "leased"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Config parameterises the queue's policy knobs. The zero value selects
// the defaults below; the journal is self-contained (requeue records carry
// their computed backoff), so replaying a journal does not depend on the
// config that produced it.
type Config struct {
	// LeaseFor is how long a claimed job stays leased before the
	// dispatcher may presume the worker dead and requeue it.
	LeaseFor sim.Duration
	// MaxAttempts caps total executions of one job (first run + retries).
	MaxAttempts int
	// BackoffBase is the requeue delay after the first failed attempt;
	// each further attempt doubles it up to BackoffCap.
	BackoffBase sim.Duration
	// BackoffCap bounds the exponential backoff.
	BackoffCap sim.Duration
	// AgingRate is the priority-aging rate in priority points per second
	// of queue wait (the internal/batch AgingQueue shape: uniform aging
	// reduces to a static key). 0 = pure static priority, FIFO within a
	// priority level.
	AgingRate float64
	// QuotaPerClient caps one client's in-flight (pending + leased) jobs;
	// submits beyond it are rejected 429-style. 0 selects the default.
	QuotaPerClient int
}

// Defaults for the zero Config.
const (
	DefaultLeaseFor       = 30 * sim.Second
	DefaultMaxAttempts    = 3
	DefaultBackoffBase    = sim.Second
	DefaultBackoffCap     = 60 * sim.Second
	DefaultQuotaPerClient = 16
)

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.LeaseFor <= 0 {
		c.LeaseFor = DefaultLeaseFor
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = DefaultBackoffCap
	}
	if c.QuotaPerClient <= 0 {
		c.QuotaPerClient = DefaultQuotaPerClient
	}
	return c
}

// Backoff is the requeue delay after attempt n (1-based): BackoffBase
// doubled per further attempt, capped at BackoffCap. A pure function so
// the edge can stamp requeue records and replay stays config-free.
func (c Config) Backoff(attempt int) sim.Duration {
	d := c.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.BackoffCap {
			return c.BackoffCap
		}
	}
	if d > c.BackoffCap {
		return c.BackoffCap
	}
	return d
}

// FNV-1a, the repository's standard cheap fingerprint (same constants as
// the schedcheck dispatch fingerprint).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Fingerprint is the FNV-1a hash of b: the artifact identity the
// dispatcher verifies on completion and duplicate delivery. Two workers
// re-running the same job must produce the same fingerprint — that is the
// determinism contract at the service boundary.
func Fingerprint(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// FingerprintString renders fp in the fixed-width hex form records use.
func FingerprintString(fp uint64) string {
	return fmt.Sprintf("%016x", fp)
}
