package simq

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// sampleJournal is one of every op in a coherent order, reused across the
// encode/decode and recovery tests.
func sampleJournal() []Record {
	return []Record{
		{Seq: 1, Op: OpSubmit, T: 100, Job: 0, Client: "alice", Name: "ft-A", Prio: 5, Payload: `{"bench":"ft"}`},
		{Seq: 2, Op: OpSubmit, T: 150, Job: 1, Client: "bob", Name: "cg-B", Prio: 9, Payload: `{"bench":"cg"}`},
		{Seq: 3, Op: OpClaim, T: 200, Job: 1, Worker: "w1", Attempt: 1, Deadline: 30_000_000_200},
		{Seq: 4, Op: OpFail, T: 300, Job: 1, Worker: "w1", Attempt: 1, Err: "oom", NB: 1_000_000_300},
		{Seq: 5, Op: OpClaim, T: 400, Job: 0, Worker: "w2", Attempt: 1, Deadline: 30_000_000_400},
		{Seq: 6, Op: OpExpire, T: 30_000_000_401, Job: 0, Attempt: 1, NB: 32_000_000_401},
		{Seq: 7, Op: OpClaim, T: 32_000_000_500, Job: 1, Worker: "w2", Attempt: 2, Deadline: 62_000_000_500},
		{Seq: 8, Op: OpComplete, T: 32_000_000_900, Job: 1, Worker: "w2", Attempt: 2, FP: "00000000deadbeef", Bytes: 512},
		{Seq: 9, Op: OpCancel, T: 33_000_000_000, Job: 0},
		{Seq: 10, Op: OpDrain, T: 34_000_000_000},
	}
}

func TestRecordCanonicalEncoding(t *testing.T) {
	tests := []struct {
		rec  Record
		want string
	}{
		{
			Record{Seq: 1, Op: OpSubmit, T: 100, Job: 0, Client: "a", Name: "n", Prio: 5, Payload: `{"x":1}`},
			`{"seq":1,"op":"submit","t":100,"job":0,"client":"a","name":"n","prio":5,"payload":"{\"x\":1}"}`,
		},
		{
			Record{Seq: 2, Op: OpClaim, T: 200, Job: 3, Worker: "w", Attempt: 1, Deadline: 900},
			`{"seq":2,"op":"claim","t":200,"job":3,"worker":"w","attempt":1,"deadline":900}`,
		},
		{
			Record{Seq: 3, Op: OpComplete, T: 300, Job: 3, Worker: "w", Attempt: 1, FP: "0123456789abcdef", Bytes: 42},
			`{"seq":3,"op":"complete","t":300,"job":3,"worker":"w","attempt":1,"fp":"0123456789abcdef","bytes":42}`,
		},
		{
			Record{Seq: 4, Op: OpFail, T: 400, Job: 3, Worker: "w", Attempt: 1, Err: "boom", NB: 500},
			`{"seq":4,"op":"fail","t":400,"job":3,"worker":"w","attempt":1,"err":"boom","nb":500}`,
		},
		{
			Record{Seq: 5, Op: OpExpire, T: 500, Job: 3, Attempt: 2, NB: 0},
			`{"seq":5,"op":"expire","t":500,"job":3,"attempt":2,"nb":0}`,
		},
		{
			Record{Seq: 6, Op: OpCancel, T: 600, Job: 3},
			`{"seq":6,"op":"cancel","t":600,"job":3}`,
		},
		{
			Record{Seq: 7, Op: OpDrain, T: 700},
			`{"seq":7,"op":"drain","t":700}`,
		},
	}
	for _, tc := range tests {
		if got := tc.rec.String(); got != tc.want {
			t.Errorf("%s record:\n got  %s\n want %s", tc.rec.Op, got, tc.want)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	recs := sampleJournal()
	b := MarshalJournal(recs)
	got, err := ReadJournal(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d round-tripped as %+v, want %+v", i, got[i], recs[i])
		}
	}
	// write∘read∘write fixed point.
	if again := MarshalJournal(got); !bytes.Equal(again, b) {
		t.Fatal("re-marshal of read records differs from original bytes")
	}
}

func TestReadJournalNormalizesForeignFields(t *testing.T) {
	// A cancel record padded with fields cancel does not carry must compare
	// equal to the canonical form.
	in := `{"seq":1,"op":"cancel","t":5,"job":2,"worker":"sneaky","fp":"ff","nb":9}` + "\n"
	recs, err := ReadJournal(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	want := Record{Seq: 1, Op: OpCancel, T: 5, Job: 2}
	if len(recs) != 1 || recs[0] != want {
		t.Fatalf("read %+v, want %+v", recs, want)
	}
}

func TestReadJournalSkipsBlankLines(t *testing.T) {
	in := "\n" + Record{Seq: 1, Op: OpDrain, T: 5}.String() + "\n\n  \n"
	recs, err := ReadJournal(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("read %d records, want 1", len(recs))
	}
}

func TestReadJournalErrorsCarryLineNumbers(t *testing.T) {
	tests := []struct {
		name string
		in   string
		frag string
	}{
		{"malformed json", "{\"seq\":1,\"op\":\"drain\",\"t\":1}\nnot json\n", "line 2"},
		{"unknown op", "{\"seq\":1,\"op\":\"vanish\",\"t\":1}\n", `unknown journal op "vanish"`},
		{"wrong type", "{\"seq\":\"one\",\"op\":\"drain\",\"t\":1}\n", "line 1"},
	}
	for _, tc := range tests {
		_, err := ReadJournal(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: ReadJournal accepted bad input", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}

func TestRecoverJournalTornTail(t *testing.T) {
	recs := sampleJournal()
	full := MarshalJournal(recs)
	// goodBytes for the intact prefix of 9 records.
	prefix := MarshalJournal(recs[:9])
	// Cut at several points inside the final record's JSON (cutting only
	// the trailing newline leaves complete JSON — covered below).
	for _, cut := range []int{1, 5, len(full) - len(prefix) - 2} {
		torn := full[:len(prefix)+cut]
		got, goodBytes, err := RecoverJournal(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("cut %d: RecoverJournal: %v", cut, err)
		}
		if goodBytes != int64(len(prefix)) {
			t.Fatalf("cut %d: goodBytes = %d, want %d", cut, goodBytes, len(prefix))
		}
		if len(got) != 9 {
			t.Fatalf("cut %d: recovered %d records, want 9", cut, len(got))
		}
		// Strict reading of the torn file fails...
		if _, err := ReadJournal(bytes.NewReader(torn)); err == nil {
			t.Fatalf("cut %d: strict ReadJournal accepted a torn journal", cut)
		}
		// ...but the truncated-to-goodBytes file reads clean.
		if again, err := ReadJournal(bytes.NewReader(torn[:goodBytes])); err != nil || len(again) != 9 {
			t.Fatalf("cut %d: truncated journal reads %d records, err %v", cut, len(again), err)
		}
	}

	// A crash that wrote the whole final record but not its newline lost
	// nothing: the record is intact and recovery keeps it.
	almost := full[:len(full)-1]
	got, goodBytes, err := RecoverJournal(bytes.NewReader(almost))
	if err != nil {
		t.Fatalf("RecoverJournal(missing newline): %v", err)
	}
	if len(got) != 10 || goodBytes != int64(len(almost)) {
		t.Fatalf("missing-newline recovery = %d records, goodBytes %d; want 10, %d", len(got), goodBytes, len(almost))
	}
}

func TestRecoverJournalIntactFile(t *testing.T) {
	full := MarshalJournal(sampleJournal())
	recs, goodBytes, err := RecoverJournal(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("RecoverJournal: %v", err)
	}
	if goodBytes != int64(len(full)) || len(recs) != 10 {
		t.Fatalf("goodBytes=%d recs=%d, want %d and 10", goodBytes, len(recs), len(full))
	}
}

func TestRecoverJournalRejectsMidFileCorruption(t *testing.T) {
	// A torn tail is the only damage a crash can cause; garbage on an
	// interior (newline-terminated) line is corruption even in recover mode.
	in := "garbage\n" + Record{Seq: 1, Op: OpDrain, T: 5}.String() + "\n"
	if _, _, err := RecoverJournal(strings.NewReader(in)); err == nil {
		t.Fatal("RecoverJournal accepted interior corruption")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk gone")
	}
	w.n--
	return len(p), nil
}

func TestJournalWriterStickyError(t *testing.T) {
	w := NewJournalWriter(&failWriter{n: 1})
	if err := w.Append(Record{Seq: 1, Op: OpDrain, T: 1}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := w.Append(Record{Seq: 2, Op: OpDrain, T: 2}); err == nil {
		t.Fatal("second append should fail")
	}
	if err := w.Append(Record{Seq: 3, Op: OpDrain, T: 3}); err == nil || w.Err() == nil {
		t.Fatal("error did not stick")
	}
}

func TestJournalWriterMatchesMarshal(t *testing.T) {
	recs := sampleJournal()
	var buf bytes.Buffer
	w := NewJournalWriter(&buf)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if !bytes.Equal(buf.Bytes(), MarshalJournal(recs)) {
		t.Fatal("streamed journal differs from MarshalJournal")
	}
}

func TestFingerprint(t *testing.T) {
	// FNV-1a reference vectors.
	if got := Fingerprint(nil); got != 0xcbf29ce484222325 {
		t.Errorf("Fingerprint(nil) = %#x, want the FNV offset basis", got)
	}
	if got := Fingerprint([]byte("a")); got != 0xaf63dc4c8601ec8c {
		t.Errorf("Fingerprint(a) = %#x, want 0xaf63dc4c8601ec8c", got)
	}
	if got := FingerprintString(0xaf63dc4c8601ec8c); got != "af63dc4c8601ec8c" {
		t.Errorf("FingerprintString = %q", got)
	}
	if got := FingerprintString(0x1); got != "0000000000000001" {
		t.Errorf("FingerprintString not fixed width: %q", got)
	}
}
