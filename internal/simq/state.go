package simq

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"hplsim/internal/invariant"
)

// Submit admission errors, mapped to 429/503-style replies at the HTTP
// edge. Rejections are pure functions of (state, config) — deterministic —
// and are never journaled, because they change nothing.
var (
	// ErrDraining rejects submits while the queue is draining.
	ErrDraining = errors.New("simq: queue is draining")
	// ErrQuota rejects submits from a client at its in-flight cap.
	ErrQuota = errors.New("simq: client in-flight quota exceeded")
)

// State is the dispatcher's replayable queue state: a pure function of the
// journal record sequence. The service edge decides a transition, journals
// the record, then calls Apply; recovery is ReadJournal + Apply in a loop.
// Apply re-validates every record against the state it meets, so replaying
// a journal against diverged logic (or a corrupted journal against sound
// logic) fails loudly instead of silently rebuilding something else.
type State struct {
	cfg  Config
	seq  uint64 // last applied record seq
	last int64  // last applied stamp (stamps are non-decreasing)

	jobs     map[int]*jobInfo
	ids      []int // sorted job IDs, maintained incrementally
	nextID   int
	ready    *Queue
	cooling  coolHeap
	leases   leaseHeap
	inflight map[string]int // client -> pending+leased jobs
	draining bool

	// counts per JobState, maintained incrementally for O(1) stats.
	counts [5]int
}

type jobInfo struct {
	id        int
	client    string
	name      string
	prio      int
	payload   string
	submit    int64
	state     JobState
	attempt   int // claims so far; a pending job's next claim is attempt+1
	worker    string
	deadline  int64
	notBefore int64
	fp        string
	bytes     int
	errMsg    string
	done      int64
}

// NewState builds an empty queue state under cfg (zero fields defaulted).
func NewState(cfg Config) *State {
	return &State{
		cfg:      cfg.WithDefaults(),
		jobs:     make(map[int]*jobInfo),
		ready:    NewQueue(cfg.AgingRate),
		inflight: make(map[string]int),
	}
}

// Config reports the effective (defaulted) configuration.
func (s *State) Config() Config { return s.cfg }

// Seq reports the last applied record sequence number.
func (s *State) Seq() uint64 { return s.seq }

// NextSeq is the sequence number the next record must carry.
func (s *State) NextSeq() uint64 { return s.seq + 1 }

// LastStamp reports the stamp of the last applied record.
func (s *State) LastStamp() int64 { return s.last }

// NextID is the ID the next submitted job will receive.
func (s *State) NextID() int { return s.nextID }

// Draining reports whether the queue has stopped accepting submissions.
func (s *State) Draining() bool { return s.draining }

// Quiesced reports drain completion: draining with no pending or leased
// jobs left.
func (s *State) Quiesced() bool {
	return s.draining && s.counts[Pending] == 0 && s.counts[Leased] == 0
}

// InFlight reports client's pending+leased job count.
func (s *State) InFlight(client string) int { return s.inflight[client] }

// Count reports how many jobs are in the given state.
func (s *State) Count(st JobState) int { return s.counts[st] }

// SubmitErr reports why a submit from client would be rejected, or nil.
// Admission is checked before journaling: rejected submits never reach
// the journal.
func (s *State) SubmitErr(client string) error {
	if s.draining {
		return ErrDraining
	}
	if s.inflight[client] >= s.cfg.QuotaPerClient {
		return ErrQuota
	}
	return nil
}

// liveReady reports whether a ready-heap entry still names the next claim
// of a pending job.
func (s *State) liveReady(job, attempt int) bool {
	j := s.jobs[job]
	return j != nil && j.state == Pending && j.attempt+1 == attempt
}

// sweep moves cooled retry entries whose not-before stamp has passed into
// the ready queue. The ready/cooling split is an implementation detail —
// Snapshot never exposes it — so sweeping at whatever times the edge
// happens to observe cannot diverge replay from the original run.
func (s *State) sweep(now int64) {
	for {
		top, ok := s.cooling.peek()
		if !ok || top.nb > now {
			return
		}
		s.cooling.pop()
		j := s.jobs[top.job]
		if j == nil || j.state != Pending || j.attempt+1 != top.attempt {
			continue // stale: job moved on while cooling
		}
		s.ready.Push(top.job, top.attempt, j.prio, j.submit)
	}
}

// PeekClaim reports the job the dispatcher must lease next at time now,
// without transitioning it: the highest aged priority among pending jobs
// whose backoff (if any) has cooled. The claim record the edge then
// journals names this job, and Apply verifies the choice on replay.
func (s *State) PeekClaim(now int64) (job, attempt int, ok bool) {
	s.sweep(now)
	job, attempt, ok = s.ready.Peek(s.liveReady)
	if invariant.Enabled {
		s.checkState()
	}
	return job, attempt, ok
}

// NextExpiry reports the earliest leased job whose deadline has passed at
// time now. The edge journals one expire record per call until none
// remain, before any other transition at now.
func (s *State) NextExpiry(now int64) (job, attempt int, ok bool) {
	for {
		top, ok := s.leases.peek()
		if !ok || top.deadline > now {
			if invariant.Enabled {
				s.checkState()
			}
			return 0, 0, false
		}
		j := s.jobs[top.job]
		if j == nil || j.state != Leased || j.attempt != top.attempt {
			s.leases.pop() // stale: lease already resolved
			continue
		}
		if invariant.Enabled {
			s.checkState()
		}
		return top.job, top.attempt, true
	}
}

// ExpiryDisposition computes the nb field for an expire/fail record of the
// given attempt: the cooled requeue stamp, or 0 when the attempt budget is
// exhausted. Pure, so the edge stamps records and replay stays config-free.
func (s *State) ExpiryDisposition(now int64, attempt int) int64 {
	if attempt >= s.cfg.MaxAttempts {
		return 0
	}
	return now + int64(s.cfg.Backoff(attempt))
}

// Apply transitions the state by one journal record. It is the only
// mutation entry point; every path revalidates the record against the
// current state and returns an error on any mismatch (corrupt journal,
// diverged decision logic, or a record applied out of order).
func (s *State) Apply(rec Record) error {
	if rec.Seq != s.seq+1 {
		return fmt.Errorf("simq: record seq %d applied after seq %d", rec.Seq, s.seq)
	}
	if rec.T < s.last {
		return fmt.Errorf("simq: record %d stamp %d precedes stamp %d", rec.Seq, rec.T, s.last)
	}
	var err error
	switch rec.Op {
	case OpSubmit:
		err = s.applySubmit(rec)
	case OpClaim:
		err = s.applyClaim(rec)
	case OpComplete:
		err = s.applyComplete(rec)
	case OpFail:
		err = s.applyResolve(rec, true)
	case OpExpire:
		err = s.applyResolve(rec, false)
	case OpCancel:
		err = s.applyCancel(rec)
	case OpDrain:
		s.draining = true
	default:
		err = fmt.Errorf("simq: unknown journal op %q", rec.Op)
	}
	if err != nil {
		return err
	}
	s.seq = rec.Seq
	s.last = rec.T
	if invariant.Enabled {
		s.checkState()
	}
	return nil
}

func (s *State) applySubmit(rec Record) error {
	if err := s.SubmitErr(rec.Client); err != nil {
		return fmt.Errorf("simq: journaled submit of job %d was inadmissible: %w", rec.Job, err)
	}
	if rec.Job != s.nextID {
		return fmt.Errorf("simq: submit record names job %d, next ID is %d", rec.Job, s.nextID)
	}
	if rec.Client == "" {
		return fmt.Errorf("simq: submit record for job %d has no client", rec.Job)
	}
	j := &jobInfo{
		id:      rec.Job,
		client:  rec.Client,
		name:    rec.Name,
		prio:    rec.Prio,
		payload: rec.Payload,
		submit:  rec.T,
		state:   Pending,
	}
	s.jobs[rec.Job] = j
	s.ids = append(s.ids, rec.Job)
	s.nextID = rec.Job + 1
	s.inflight[rec.Client]++
	s.counts[Pending]++
	s.ready.Push(rec.Job, 1, rec.Prio, rec.T)
	return nil
}

func (s *State) applyClaim(rec Record) error {
	s.sweep(rec.T)
	job, attempt, ok := s.ready.Pop(s.liveReady)
	if !ok {
		return fmt.Errorf("simq: claim record %d names job %d but the queue is empty at t=%d", rec.Seq, rec.Job, rec.T)
	}
	if job != rec.Job || attempt != rec.Attempt {
		return fmt.Errorf("simq: claim divergence at record %d: journal says job %d attempt %d, queue head is job %d attempt %d",
			rec.Seq, rec.Job, rec.Attempt, job, attempt)
	}
	if rec.Deadline < rec.T {
		return fmt.Errorf("simq: claim record %d has deadline %d before stamp %d", rec.Seq, rec.Deadline, rec.T)
	}
	j := s.jobs[job]
	j.state = Leased
	j.attempt = attempt
	j.worker = rec.Worker
	j.deadline = rec.Deadline
	j.notBefore = 0
	s.counts[Pending]--
	s.counts[Leased]++
	s.leases.push(leaseEntry{deadline: rec.Deadline, job: job, attempt: attempt})
	return nil
}

// leaseOf fetches the job a lease-resolving record refers to, verifying
// the record matches the live lease.
func (s *State) leaseOf(rec Record, needWorker bool) (*jobInfo, error) {
	j := s.jobs[rec.Job]
	if j == nil {
		return nil, fmt.Errorf("simq: record %d resolves unknown job %d", rec.Seq, rec.Job)
	}
	if j.state != Leased {
		return nil, fmt.Errorf("simq: record %d resolves job %d in state %v", rec.Seq, rec.Job, j.state)
	}
	if j.attempt != rec.Attempt {
		return nil, fmt.Errorf("simq: record %d resolves job %d attempt %d, lease is attempt %d",
			rec.Seq, rec.Job, rec.Attempt, j.attempt)
	}
	if needWorker && j.worker != rec.Worker {
		return nil, fmt.Errorf("simq: record %d resolves job %d via worker %q, lease is held by %q",
			rec.Seq, rec.Job, rec.Worker, j.worker)
	}
	return j, nil
}

func (s *State) applyComplete(rec Record) error {
	j, err := s.leaseOf(rec, true)
	if err != nil {
		return err
	}
	if rec.FP == "" {
		return fmt.Errorf("simq: complete record %d for job %d has no fingerprint", rec.Seq, rec.Job)
	}
	j.state = Done
	j.fp = rec.FP
	j.bytes = rec.Bytes
	j.done = rec.T
	s.counts[Leased]--
	s.counts[Done]++
	s.inflight[j.client]--
	return nil
}

// applyResolve handles fail and expire: the lease dies; nb > 0 cools the
// job for a retry, nb == 0 fails it terminally.
func (s *State) applyResolve(rec Record, workerReported bool) error {
	j, err := s.leaseOf(rec, workerReported)
	if err != nil {
		return err
	}
	if !workerReported && rec.T < j.deadline {
		return fmt.Errorf("simq: expire record %d at t=%d precedes job %d's deadline %d",
			rec.Seq, rec.T, rec.Job, j.deadline)
	}
	s.counts[Leased]--
	if rec.NB > 0 {
		j.state = Pending
		j.notBefore = rec.NB
		j.worker = ""
		j.deadline = 0
		s.counts[Pending]++
		s.cooling.push(coolEntry{nb: rec.NB, job: j.id, attempt: j.attempt + 1, submit: j.submit})
	} else {
		j.state = Failed
		j.errMsg = rec.Err
		if !workerReported && j.errMsg == "" {
			j.errMsg = fmt.Sprintf("lease expired after %d attempts", j.attempt)
		}
		s.counts[Failed]++
		s.inflight[j.client]--
	}
	return nil
}

func (s *State) applyCancel(rec Record) error {
	j := s.jobs[rec.Job]
	if j == nil {
		return fmt.Errorf("simq: cancel record %d names unknown job %d", rec.Seq, rec.Job)
	}
	if j.state != Pending && j.state != Leased {
		return fmt.Errorf("simq: cancel record %d names job %d in state %v", rec.Seq, rec.Job, j.state)
	}
	s.counts[j.state]--
	j.state = Canceled
	s.counts[Canceled]++
	s.inflight[j.client]--
	return nil
}

// JobView is the externally visible form of one job, shared by the status
// API and Snapshot. Field order is fixed: Snapshot bytes are canonical.
type JobView struct {
	ID        int    `json:"id"`
	Client    string `json:"client"`
	Name      string `json:"name"`
	Prio      int    `json:"prio"`
	State     string `json:"state"`
	Attempt   int    `json:"attempt"`
	Worker    string `json:"worker,omitempty"`
	SubmitT   int64  `json:"submit_t"`
	Deadline  int64  `json:"deadline,omitempty"`
	NotBefore int64  `json:"not_before,omitempty"`
	FP        string `json:"fp,omitempty"`
	Bytes     int    `json:"bytes,omitempty"`
	Err       string `json:"err,omitempty"`
	DoneT     int64  `json:"done_t,omitempty"`
}

func (j *jobInfo) view() JobView {
	return JobView{
		ID: j.id, Client: j.client, Name: j.name, Prio: j.prio,
		State: j.state.String(), Attempt: j.attempt, Worker: j.worker,
		SubmitT: j.submit, Deadline: j.deadline, NotBefore: j.notBefore,
		FP: j.fp, Bytes: j.bytes, Err: j.errMsg, DoneT: j.done,
	}
}

// Job reports the view of one job.
func (s *State) Job(id int) (JobView, bool) {
	j := s.jobs[id]
	if j == nil {
		return JobView{}, false
	}
	return j.view(), true
}

// Payload reports the opaque payload of one job.
func (s *State) Payload(id int) (string, bool) {
	j := s.jobs[id]
	if j == nil {
		return "", false
	}
	return j.payload, true
}

// Jobs reports every job in ID (submission) order.
func (s *State) Jobs() []JobView {
	out := make([]JobView, 0, len(s.ids))
	for _, id := range s.ids {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// snapshot is the canonical serialized state shape.
type snapshot struct {
	Seq      uint64    `json:"seq"`
	LastT    int64     `json:"last_t"`
	NextID   int       `json:"next_id"`
	Draining bool      `json:"draining"`
	Jobs     []JobView `json:"jobs"`
}

// Snapshot renders the complete queue state as canonical JSON: jobs in ID
// order, fixed field sets, no internal heap layout (the ready/cooling
// split is derivable and deliberately excluded). Two States built from the
// same record sequence produce byte-identical snapshots — the
// crash-recovery oracle.
func (s *State) Snapshot() []byte {
	snap := snapshot{
		Seq:      s.seq,
		LastT:    s.last,
		NextID:   s.nextID,
		Draining: s.draining,
		Jobs:     s.Jobs(),
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		panic("simq: snapshot marshal cannot fail: " + err.Error())
	}
	return append(b, '\n')
}

// Replay builds a State by applying every record in order, failing on the
// first invalid one. This is dispatcher crash recovery in one call.
func Replay(cfg Config, recs []Record) (*State, error) {
	s := NewState(cfg)
	for _, rec := range recs {
		if err := s.Apply(rec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Stats is the aggregate the /api/stats endpoint serves.
type Stats struct {
	Seq      uint64 `json:"seq"`
	Pending  int    `json:"pending"`
	Leased   int    `json:"leased"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Canceled int    `json:"canceled"`
	Draining bool   `json:"draining"`
	Quiesced bool   `json:"quiesced"`
}

// Stats summarises the queue.
func (s *State) Stats() Stats {
	return Stats{
		Seq:      s.seq,
		Pending:  s.counts[Pending],
		Leased:   s.counts[Leased],
		Done:     s.counts[Done],
		Failed:   s.counts[Failed],
		Canceled: s.counts[Canceled],
		Draining: s.draining,
		Quiesced: s.Quiesced(),
	}
}

// sortedClients returns the inflight map's keys in deterministic order,
// for the invariants audit and tests.
func (s *State) sortedClients() []string {
	keys := make([]string, 0, len(s.inflight))
	for k := range s.inflight { //schedlint:ignore maprange — keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
