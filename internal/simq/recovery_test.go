package simq

import (
	"bytes"
	"testing"

	"hplsim/internal/sim"
)

// scriptedRun drives a full service history — submits from several
// clients, claims, a worker failure with retry, a lease expiry, a
// duplicate-proof completion, a cancel, and a drain — capturing the
// canonical Snapshot after every record. It is the reference run the
// crash-recovery tests replay against.
func scriptedRun(t *testing.T) (cfg Config, recs []Record, snaps [][]byte) {
	t.Helper()
	cfg = Config{LeaseFor: 10 * sim.Second, MaxAttempts: 3, BackoffBase: sim.Second,
		BackoffCap: 4 * sim.Second, AgingRate: 0.5, QuotaPerClient: 4}
	sc := newScript(t, cfg)
	snap := func() { snaps = append(snaps, sc.s.Snapshot()) }

	j0 := sc.submit(1*tick, "alice", "ft", 3)
	snap()
	j1 := sc.submit(2*tick, "bob", "cg", 8)
	snap()
	j2 := sc.submit(3*tick, "alice", "mg", 1)
	snap()

	// bob's cg outranks everything: claimed first.
	job, attempt := sc.claim(4*tick, "w1")
	if job != j1 {
		t.Fatalf("first claim = job %d, want %d", job, j1)
	}
	snap()
	// w1 dies; the lease expires at 14 s and cg requeues with backoff.
	job, attempt = sc.claim(5*tick, "w2")
	if job != j0 {
		t.Fatalf("second claim = job %d, want %d", job, j0)
	}
	snap()
	sc.complete(6*tick, "w2", j0, attempt, []byte("artifact-ft"))
	snap()
	if n := sc.expireAll(14 * tick); n != 1 {
		t.Fatalf("expired %d leases, want 1 (w1's cg)", n)
	}
	snap()
	// cg cools until 15 s; meanwhile mg is the only ready job.
	job, attempt = sc.claim(14*tick+int64(sim.Millisecond), "w2")
	if job != j2 {
		t.Fatalf("third claim = job %d, want %d (mg while cg cools)", job, j2)
	}
	snap()
	sc.fail(15*tick, "w2", j2, attempt, "node oom")
	snap()
	// cg cooled: reclaim and complete it.
	job, attempt = sc.claim(16*tick, "w3")
	if job != j1 || attempt != 2 {
		t.Fatalf("fourth claim = job %d attempt %d, want %d attempt 2", job, attempt, j1)
	}
	snap()
	sc.complete(17*tick, "w3", j1, attempt, []byte("artifact-cg"))
	snap()
	// mg cooled at 16 s: claim it, then cancel it mid-lease.
	job, _ = sc.claim(18*tick, "w1")
	if job != j2 {
		t.Fatalf("fifth claim = job %d, want %d", job, j2)
	}
	snap()
	sc.apply(Record{Op: OpCancel, T: 19 * tick, Job: j2})
	snap()
	sc.apply(Record{Op: OpDrain, T: 20 * tick})
	snap()

	if len(sc.recs) != len(snaps) {
		t.Fatalf("captured %d snapshots for %d records", len(snaps), len(sc.recs))
	}
	return cfg, sc.recs, snaps
}

// TestRecoverAtEveryOffset is the crash-recovery oracle: for every prefix
// length N of the reference journal, a dispatcher that died after
// journaling record N and replayed its journal on restart must land in
// byte-identical state to the uninterrupted run as of record N.
func TestRecoverAtEveryOffset(t *testing.T) {
	cfg, recs, snaps := scriptedRun(t)

	// N = 0: an empty journal recovers the empty state.
	empty, err := Replay(cfg, nil)
	if err != nil {
		t.Fatalf("replay of empty journal: %v", err)
	}
	if !bytes.Equal(empty.Snapshot(), NewState(cfg).Snapshot()) {
		t.Fatal("empty replay differs from fresh state")
	}

	for n := 1; n <= len(recs); n++ {
		recovered, err := Replay(cfg, recs[:n])
		if err != nil {
			t.Fatalf("replay of %d-record prefix: %v", n, err)
		}
		if got, want := recovered.Snapshot(), snaps[n-1]; !bytes.Equal(got, want) {
			t.Errorf("prefix %d: recovered snapshot differs from live run\nrecovered:\n%s\nlive:\n%s", n, got, want)
		}
		// The recovered dispatcher resumes exactly where the record
		// sequence left off.
		if recovered.NextSeq() != recs[n-1].Seq+1 {
			t.Errorf("prefix %d: NextSeq = %d, want %d", n, recovered.NextSeq(), recs[n-1].Seq+1)
		}
	}
}

// TestRecoverThroughJournalBytes runs the same oracle through the byte
// layer: marshal the journal, tear it at every byte of the final record,
// recover with RecoverJournal, replay, and compare snapshots. This is the
// exact code path a restarted dispatcher takes over its journal file.
func TestRecoverThroughJournalBytes(t *testing.T) {
	cfg, recs, snaps := scriptedRun(t)
	full := MarshalJournal(recs)

	for n := 1; n <= len(recs); n++ {
		prefix := MarshalJournal(recs[:n])
		// Tear a few bytes into the next record (or use the clean prefix
		// when n is the last record).
		torn := prefix
		if n < len(recs) {
			next := recs[n].AppendJSONL(nil)
			torn = append(append([]byte{}, prefix...), next[:len(next)/2]...)
		}
		got, goodBytes, err := RecoverJournal(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("prefix %d: RecoverJournal: %v", n, err)
		}
		if goodBytes != int64(len(prefix)) {
			t.Fatalf("prefix %d: goodBytes = %d, want %d", n, goodBytes, len(prefix))
		}
		recovered, err := Replay(cfg, got)
		if err != nil {
			t.Fatalf("prefix %d: replay: %v", n, err)
		}
		if !bytes.Equal(recovered.Snapshot(), snaps[n-1]) {
			t.Errorf("prefix %d: snapshot after torn-tail recovery differs from live run", n)
		}
	}

	// Sanity: the full journal replays to the final snapshot.
	got, _, err := RecoverJournal(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("RecoverJournal(full): %v", err)
	}
	final, err := Replay(cfg, got)
	if err != nil {
		t.Fatalf("replay(full): %v", err)
	}
	if !bytes.Equal(final.Snapshot(), snaps[len(snaps)-1]) {
		t.Fatal("full replay differs from live final state")
	}
}

// TestReplayIsConfigFree: requeue records carry their computed backoff, so
// a journal replays identically under a different Config — the journal is
// self-contained.
func TestReplayIsConfigFree(t *testing.T) {
	cfg, recs, snaps := scriptedRun(t)
	other := Config{LeaseFor: 99 * sim.Second, MaxAttempts: 7, BackoffBase: 9 * sim.Second,
		AgingRate: cfg.AgingRate, QuotaPerClient: cfg.QuotaPerClient}
	replayed, err := Replay(other, recs)
	if err != nil {
		t.Fatalf("replay under different config: %v", err)
	}
	if !bytes.Equal(replayed.Snapshot(), snaps[len(snaps)-1]) {
		t.Fatal("snapshot depends on replay-time lease/backoff config")
	}
}

// TestReplayRejectsTamperedJournal: corrupting any claim decision in the
// journal is detected by replay, not silently adopted.
func TestReplayRejectsTamperedJournal(t *testing.T) {
	cfg, recs, _ := scriptedRun(t)
	for i, rec := range recs {
		if rec.Op != OpClaim {
			continue
		}
		tampered := make([]Record, len(recs))
		copy(tampered, recs)
		tampered[i].Job = rec.Job + 1000
		if _, err := Replay(cfg, tampered); err == nil {
			t.Errorf("tampered claim at record %d replayed cleanly", i)
		}
	}
}

// TestSnapshotIsReadableJSON: snapshots parse and carry the fields the
// status API promises.
func TestSnapshotIsReadableJSON(t *testing.T) {
	cfg, recs, snaps := scriptedRun(t)
	s, err := Replay(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	snap := snaps[len(snaps)-1]
	if snap[len(snap)-1] != '\n' {
		t.Fatal("snapshot not newline-terminated")
	}
	if got := s.Stats(); got.Done != 2 || got.Failed != 0 || got.Canceled != 1 || !got.Draining {
		t.Fatalf("final stats = %+v", got)
	}
	if !s.Quiesced() {
		t.Fatal("drained queue with no in-flight work should be quiesced")
	}
}
