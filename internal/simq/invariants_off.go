//go:build !invariants

package simq

// checkQueue is a no-op in normal builds; see invariants_on.go.
func (q *Queue) checkQueue() {}

// checkState is a no-op in normal builds; see invariants_on.go.
func (s *State) checkState() {}
