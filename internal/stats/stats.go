// Package stats provides the statistics the paper reports: min/avg/max
// summaries, the paper's variation metric (max-min)/min, fixed-bin
// histograms for the execution-time distribution figures, and Pearson
// correlation with a least-squares fit for the time-vs-events figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary are the aggregate statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	Median float64
	P95    float64
	P99    float64
}

// VarPct is the paper's variation metric: (max-min)/min * 100
// ("variation is computed as the difference between maximum and minimum
// performance values divided by the minimum value", Section V).
func (s Summary) VarPct() float64 {
	if s.Min == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Min * 100
}

// CV is the coefficient of variation (stddev/mean), a secondary stability
// metric.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// Summarize computes the Summary of xs. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumsq float64
	for _, x := range sorted {
		sum += x
		sumsq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Median: Quantile(sorted, 0.5),
		P95:    Quantile(sorted, 0.95),
		P99:    Quantile(sorted, 0.99),
	}
}

// Quantile returns the q-quantile (0..1) of an ascending-sorted sample,
// with linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram builds a histogram with nbins bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // float edge
			i--
		}
		h.Counts[i]++
	}
}

// Total reports the number of samples recorded, including out-of-range.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinCenter reports the centre of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Render draws the histogram as ASCII art, one row per bin, the way the
// experiment binaries print the paper's Figures 2 and 4.
func (h *Histogram) Render(width int, label string) string {
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, under=%d, over=%d)\n", label, h.Total(), h.Under, h.Over)
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(&b, "%10.3f | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	return b.String()
}

// Pearson computes the Pearson correlation coefficient of (x, y) pairs.
// It returns 0 for degenerate inputs.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// LinearFit returns the least-squares slope and intercept of y over x.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	vx := sxx/n - sx/n*sx/n
	if vx == 0 {
		return 0, sy / n
	}
	slope = (sxy/n - sx/n*sy/n) / vx
	intercept = sy/n - slope*sx/n
	return slope, intercept
}

// Bin2D groups ys by integer-rounded xs and returns the sorted unique xs
// with the mean y per group — the format of the paper's Figures 3a/3b
// (execution time as a function of event count).
func Bin2D(xs, ys []float64) (bx, by []float64) {
	groups := make(map[int][]float64)
	for i := range xs {
		k := int(math.Round(xs[i]))
		groups[k] = append(groups[k], ys[i])
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		var sum float64
		for _, y := range groups[k] {
			sum += y
		}
		bx = append(bx, float64(k))
		by = append(by, sum/float64(len(groups[k])))
	}
	return bx, by
}
