package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary %+v", s)
	}
	if !approx(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if !approx(s.Stddev, 2, 1e-12) {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if !approx(s.Median, 4.5, 1e-12) {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.VarPct() != 0 || s.CV() != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestVarPctMatchesPaperDefinition(t *testing.T) {
	// ep.A.8 standard Linux: min 8.54, max 14.59 => 70.84%.
	s := Summary{Min: 8.54, Max: 14.59}
	if !approx(s.VarPct(), 70.84, 0.01) {
		t.Fatalf("VarPct = %v, want 70.84", s.VarPct())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if !approx(Quantile(xs, 0.5), 3, 1e-12) {
		t.Fatal("median quantile wrong")
	}
	if !approx(Quantile(xs, 0.25), 2, 1e-12) {
		t.Fatal("interpolated quantile wrong")
	}
}

func TestSummaryInvariants(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P95 <= s.P99 && s.Stddev >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count %d", i, c)
		}
	}
	if h.Under != 1 || h.Over != 1 || h.Total() != 12 {
		t.Fatalf("under/over/total = %d/%d/%d", h.Under, h.Over, h.Total())
	}
	if !approx(h.BinCenter(0), 0.5, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
	out := h.Render(20, "test")
	if !strings.Contains(out, "test (n=12") {
		t.Fatalf("render header missing: %q", out)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0)    // lowest bin
	h.Add(0.99) // highest bin
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("edge binning wrong: %v", h.Counts)
	}
	h.Add(1) // boundary goes to Over
	if h.Over != 1 {
		t.Fatal("hi boundary not counted as over")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !approx(Pearson(xs, ys), 1, 1e-12) {
		t.Fatalf("r = %v, want 1", Pearson(xs, ys))
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !approx(Pearson(xs, neg), -1, 1e-12) {
		t.Fatalf("r = %v, want -1", Pearson(xs, neg))
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant x should give r=0")
	}
	if Pearson([]float64{1}, []float64{1}) != 0 {
		t.Fatal("n<2 should give r=0")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, icpt := LinearFit(xs, ys)
	if !approx(slope, 2, 1e-9) || !approx(icpt, 1, 1e-9) {
		t.Fatalf("fit = %v x + %v, want 2x+1", slope, icpt)
	}
}

func TestBin2D(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 2}
	ys := []float64{10, 20, 30, 30, 60}
	bx, by := Bin2D(xs, ys)
	if len(bx) != 2 || bx[0] != 1 || bx[1] != 2 {
		t.Fatalf("bx = %v", bx)
	}
	if !approx(by[0], 15, 1e-12) || !approx(by[1], 40, 1e-12) {
		t.Fatalf("by = %v", by)
	}
}
