//go:build invariants

package shard

import (
	"hplsim/internal/invariant"
	"hplsim/internal/sim"
)

// check is the horizon-violation audit: a worker about to replay a tick
// stretch ending at `last` must stay inside the open window — strictly
// before the horizon, or at it only for CPUs below the tie id. A violation
// means the coordinator's conservative lookahead was wrong (or was
// deliberately skewed by Chaos{ShardSkew}), and replaying would let a
// cross-shard event observe state from inside a committed window; panic
// before any state is touched. check runs concurrently from gang workers
// and only reads the window, which the coordinator wrote before the phase
// barrier.
func (w *Window) check(cpu int, last sim.Time) {
	invariant.Check(w.open, "shard: commit on a window that was never opened")
	invariant.Check(last < w.horizon || (last == w.horizon && cpu < w.tieID),
		"%s", w.violation(cpu, last))
}
