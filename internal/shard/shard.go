// Package shard partitions one simulation's CPUs into chip-aligned shards
// for the conservative parallel catch-up phase (DESIGN.md, "Parallel
// sharding"). Each shard owns a contiguous CPU range cut on chip
// boundaries, so everything a fast-forward tick replay touches — the CPU's
// runqueues, its core's busy-time sum, its SMT siblings' idle state — stays
// inside one shard and one worker. The coordinator opens a synchronization
// Window per phase (the horizon up to which replay is provably quiescent),
// fans the shards out over a pool.Gang, and merges the per-shard Scratch
// deltas back in canonical shard order, which is what keeps the merged
// counters, traces, and fingerprints bitwise identical to sequential mode.
package shard

import (
	"fmt"

	"hplsim/internal/sim"
	"hplsim/internal/topo"
)

// Plan is a chip-aligned contiguous partition of a node's CPUs. The zero
// Plan is invalid; use NewPlan.
type Plan struct {
	shards int
	of     []int // cpu -> shard
	bounds []int // shard s owns CPUs [bounds[s], bounds[s+1])
}

// NewPlan partitions t's CPUs into at most `shards` chip-aligned shards.
// The count clamps to [1, t.Chips]: a shard boundary inside a chip would
// split an SMT core's siblings (and a core's busy-time sum) across
// workers, so chips are the finest safe grain. Chips are distributed as
// evenly as possible, earlier shards taking the remainder — a pure
// function of (topology, shards), independent of the host.
func NewPlan(t topo.Topology, shards int) Plan {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > t.Chips {
		shards = t.Chips
	}
	perChip := t.CoresPerChip * t.ThreadsPerCore
	p := Plan{
		shards: shards,
		of:     make([]int, t.NumCPUs()),
		bounds: make([]int, shards+1),
	}
	chip := 0
	for s := 0; s < shards; s++ {
		p.bounds[s] = chip * perChip
		chip += t.Chips / shards
		if s < t.Chips%shards {
			chip++
		}
	}
	p.bounds[shards] = t.Chips * perChip
	for s := 0; s < shards; s++ {
		for cpu := p.bounds[s]; cpu < p.bounds[s+1]; cpu++ {
			p.of[cpu] = s
		}
	}
	return p
}

// Shards reports the number of shards in the plan.
func (p Plan) Shards() int { return p.shards }

// Of reports the shard owning cpu.
func (p Plan) Of(cpu int) int { return p.of[cpu] }

// Range reports the CPU interval [lo, hi) owned by shard s.
func (p Plan) Range(s int) (lo, hi int) { return p.bounds[s], p.bounds[s+1] }

// Scratch is one shard's private mailbox for the global counters a replay
// phase touches. Workers accumulate into their own Scratch; the coordinator
// merges them into the real counters in ascending shard order after the
// barrier, so the totals are identical to the sequential ascending-CPU
// accumulation (unsigned sums commute exactly).
type Scratch struct {
	// Ticks and TicksCoalesced are the perf.Counters deltas of the
	// shard's replayed ticks.
	Ticks          uint64
	TicksCoalesced uint64
}

// Reset clears the scratch for the next phase.
func (s *Scratch) Reset() { *s = Scratch{} }

// Window is the committed synchronization window of one parallel catch-up
// phase. The coordinator Opens it with the true horizon — the instant of
// the next heap event (or run end), before which replay is provably
// quiescent — and each worker Commits every tick stretch it is about to
// replay. Under -tags invariants, a committed stretch extending past the
// horizon (a cross-shard event would land inside an already-replayed
// window) panics instead of silently diverging; normal builds compile the
// audit away.
type Window struct {
	horizon sim.Time
	tieID   int
	open    bool
}

// Open starts a phase: ticks strictly before horizon are inside the
// window, and ticks exactly at the horizon only for CPUs below tieID
// (the engine's lowest-lane-first tie-break; see kernel catchUp).
func (w *Window) Open(horizon sim.Time, tieID int) {
	w.horizon, w.tieID, w.open = horizon, tieID, true
	// Self-audit the freshly opened bounds so the -tags invariants check
	// is wired into every phase even when no worker commits a stretch.
	w.check(-1, horizon.Add(-1))
}

// Commit audits one tick stretch: cpu is about to replay ticks up to and
// including `last`. Commit only reads the window (workers call it
// concurrently); the audit, when compiled in, panics on a violation.
func (w *Window) Commit(cpu int, last sim.Time) {
	w.check(cpu, last)
}

// violation renders the panic message of a window violation.
func (w *Window) violation(cpu int, last sim.Time) string {
	return fmt.Sprintf(
		"shard: cpu %d committed a tick at %v beyond the synchronization horizon %v (tie %d): "+
			"a cross-shard event would land inside an already-replayed window",
		cpu, last, w.horizon, w.tieID)
}
