package shard

import (
	"testing"

	"hplsim/internal/topo"
)

// TestPlanPartition checks the structural contract of NewPlan on a sweep of
// topologies and shard counts: every CPU is owned by exactly one shard,
// shards are contiguous and ascending, no chip (and so no core or SMT pair)
// straddles a boundary, and the chip distribution is as even as possible.
func TestPlanPartition(t *testing.T) {
	topos := []topo.Topology{
		{Chips: 1, CoresPerChip: 4, ThreadsPerCore: 1},
		{Chips: 2, CoresPerChip: 2, ThreadsPerCore: 2}, // POWER6
		{Chips: 3, CoresPerChip: 8, ThreadsPerCore: 2},
		{Chips: 4, CoresPerChip: 16, ThreadsPerCore: 2},
		{Chips: 7, CoresPerChip: 3, ThreadsPerCore: 4},
	}
	for _, tp := range topos {
		perChip := tp.CoresPerChip * tp.ThreadsPerCore
		for want := 1; want <= tp.Chips+2; want++ {
			p := NewPlan(tp, want)
			shards := p.Shards()
			if shards > tp.Chips || shards > want || shards < 1 {
				t.Fatalf("%+v shards=%d: plan has %d shards", tp, want, shards)
			}
			if want <= tp.Chips && shards != want {
				t.Fatalf("%+v: asked for %d shards within chip count, got %d", tp, want, shards)
			}
			covered := 0
			minChips, maxChips := tp.Chips, 0
			for s := 0; s < shards; s++ {
				lo, hi := p.Range(s)
				if lo != covered {
					t.Fatalf("%+v shards=%d: shard %d starts at %d, want %d (gap or overlap)", tp, want, s, lo, covered)
				}
				if (hi-lo)%perChip != 0 || hi <= lo {
					t.Fatalf("%+v shards=%d: shard %d owns [%d,%d), not a whole number of chips", tp, want, s, lo, hi)
				}
				chips := (hi - lo) / perChip
				if chips < minChips {
					minChips = chips
				}
				if chips > maxChips {
					maxChips = chips
				}
				for cpu := lo; cpu < hi; cpu++ {
					if p.Of(cpu) != s {
						t.Fatalf("%+v shards=%d: Of(%d)=%d, Range says %d", tp, want, cpu, p.Of(cpu), s)
					}
				}
				covered = hi
			}
			if covered != tp.NumCPUs() {
				t.Fatalf("%+v shards=%d: plan covers %d CPUs, topology has %d", tp, want, covered, tp.NumCPUs())
			}
			if maxChips-minChips > 1 {
				t.Fatalf("%+v shards=%d: uneven chip split, shards own between %d and %d chips", tp, want, minChips, maxChips)
			}
		}
	}
}

// TestPlanClamps: degenerate shard counts clamp instead of failing, so a
// -shards flag larger than the machine is a request for "as parallel as the
// topology allows", matching the Config.Shards doc.
func TestPlanClamps(t *testing.T) {
	tp := topo.Topology{Chips: 2, CoresPerChip: 2, ThreadsPerCore: 2}
	if got := NewPlan(tp, 0).Shards(); got != 1 {
		t.Errorf("shards=0 clamps to %d, want 1", got)
	}
	if got := NewPlan(tp, -3).Shards(); got != 1 {
		t.Errorf("shards=-3 clamps to %d, want 1", got)
	}
	if got := NewPlan(tp, 64).Shards(); got != tp.Chips {
		t.Errorf("shards=64 clamps to %d, want %d", got, tp.Chips)
	}
}

func TestPlanRejectsInvalidTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid topology")
		}
	}()
	NewPlan(topo.Topology{}, 2)
}
