//go:build invariants

package shard

import (
	"testing"

	"hplsim/internal/invariant"
	"hplsim/internal/sim"
)

func expectViolation(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the window audit to panic")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("expected invariant.Violation, got %v", r)
		}
	}()
	fn()
}

// TestWindowAudit pins the horizon semantics the kernel relies on: ticks
// strictly before the horizon are always inside the window, ticks exactly at
// the horizon only for CPUs below the tie id, and anything later panics.
func TestWindowAudit(t *testing.T) {
	horizon := sim.Time(10 * sim.Millisecond)
	var w Window
	w.Open(horizon, 3)

	w.Commit(7, horizon.Add(-1))         // strictly inside: any CPU
	w.Commit(2, horizon)                 // at the horizon, below the tie id
	w.Commit(0, sim.Time(0))             // far inside
	expectViolation(t, func() { w.Commit(3, horizon) })        // at horizon, at tie id
	expectViolation(t, func() { w.Commit(0, horizon.Add(1)) }) // past horizon, any CPU
}

func TestWindowCommitWithoutOpen(t *testing.T) {
	var w Window
	expectViolation(t, func() { w.Commit(0, sim.Time(0)) })
}
