//go:build !invariants

package shard

import "hplsim/internal/sim"

// check is a no-op in normal builds; see invariants_on.go.
func (w *Window) check(cpu int, last sim.Time) {}
