// Package noise generates the operating-system background activity whose
// interference with HPC applications the paper measures: periodic kernel
// threads and user daemons (high-frequency, short-duration noise), rare
// heavy maintenance storms (low-frequency, long-duration noise), job
// launcher activity around mpiexec, and Ferreira-style fixed-frequency
// noise injection for resonance studies.
package noise

import (
	"fmt"

	"hplsim/internal/kernel"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// Dist selects a sampling distribution for daemon service times.
type Dist int

const (
	// Fixed always returns the mean.
	Fixed Dist = iota
	// Exp samples exponentially with the given mean.
	Exp
	// Uniform samples uniformly in [0.5, 1.5) x mean.
	Uniform
)

func sample(rng *sim.RNG, d Dist, mean sim.Duration) sim.Duration {
	switch d {
	case Exp:
		return rng.ExpDuration(mean)
	case Uniform:
		return rng.UniformDuration(mean/2, mean*3/2)
	default:
		return mean
	}
}

// DaemonSpec describes one periodic background task.
type DaemonSpec struct {
	Name string
	// Policy and priority: most daemons are CFS; kernel workers like the
	// migration thread are FIFO with high priority.
	Policy task.Policy
	RTPrio int
	Nice   int
	// Period is the mean sleep between activations.
	Period sim.Duration
	// PeriodJitter de-synchronises activations (fraction of Period).
	PeriodJitter float64
	// Service is the mean CPU burst per activation.
	Service sim.Duration
	// ServiceDist is the burst length distribution.
	ServiceDist Dist
	// Affinity pins the daemon to a CPU subset; zero means all CPUs.
	Affinity topo.CPUMask
}

// Spawn starts the daemon on the kernel. It runs forever (daemons never
// exit); the run ends when the simulation stops.
func (s DaemonSpec) Spawn(k *kernel.Kernel, rng *sim.RNG) *task.Task {
	jitter := s.PeriodJitter
	if jitter == 0 {
		jitter = 0.2
	}
	return k.Spawn(nil, kernel.Attr{
		Name:     s.Name,
		Policy:   s.Policy,
		RTPrio:   s.RTPrio,
		Nice:     s.Nice,
		Affinity: s.Affinity,
	}, func(p *kernel.Proc) {
		var cycle func()
		cycle = func() {
			p.Sleep(rng.Jitter(s.Period, jitter), func() {
				p.Compute(sample(rng, s.ServiceDist, s.Service), cycle)
			})
		}
		// Stagger the first activation uniformly over one period so
		// daemons do not thunder together at boot.
		p.Sleep(rng.UniformDuration(0, s.Period), func() {
			p.Compute(sample(rng, s.ServiceDist, s.Service), cycle)
		})
	})
}

// SystemDaemons is the background population of a 2.6.3x-era cluster node:
// a handful of kernel worker threads with sub-second periods and short
// bursts, plus user-space services with longer periods and heavier bursts
// (syslog, cron, monitoring). Aggregate activation rate is roughly 13/s,
// which reproduces the growth of context switches with runtime seen in the
// paper's Table Ia.
func SystemDaemons() []DaemonSpec {
	return []DaemonSpec{
		// Kernel worker threads: frequent, very short.
		{Name: "kblockd", Period: 250 * sim.Millisecond, Service: 90 * sim.Microsecond, ServiceDist: Exp},
		{Name: "kswapd", Period: 500 * sim.Millisecond, Service: 150 * sim.Microsecond, ServiceDist: Exp},
		{Name: "kjournald", Period: 400 * sim.Millisecond, Service: 200 * sim.Microsecond, ServiceDist: Exp},
		{Name: "flush-8:0", Period: 600 * sim.Millisecond, Service: 250 * sim.Microsecond, ServiceDist: Exp},
		{Name: "ksoftirqd", Period: 300 * sim.Millisecond, Service: 60 * sim.Microsecond, ServiceDist: Exp},
		{Name: "kondemand", Period: 320 * sim.Millisecond, Service: 50 * sim.Microsecond, ServiceDist: Fixed},
		// User-space services.
		{Name: "syslogd", Period: 900 * sim.Millisecond, Service: 300 * sim.Microsecond, ServiceDist: Exp},
		{Name: "irqbalance", Period: 10 * sim.Second, Service: 800 * sim.Microsecond, ServiceDist: Fixed},
		{Name: "crond", Period: 30 * sim.Second, Service: 12 * sim.Millisecond, ServiceDist: Exp},
		{Name: "sshd", Period: 20 * sim.Second, Service: sim.Millisecond, ServiceDist: Exp},
		{Name: "automount", Period: 5 * sim.Second, Service: 500 * sim.Microsecond, ServiceDist: Exp},
		{Name: "sendmail", Period: 15 * sim.Second, Service: 2 * sim.Millisecond, ServiceDist: Exp},
		// Cluster management and monitoring: the "statistics collectors"
		// the paper names as the archetypal noise source.
		{Name: "gmond", Period: 4 * sim.Second, Service: 35 * sim.Millisecond, ServiceDist: Uniform},
		// Scheduled jobs: occasional CPU-heavy work (log compression,
		// package scans) that stretches a colliding run by seconds.
		{Name: "cron-job", Period: 240 * sim.Second, Service: 3 * sim.Second, ServiceDist: Uniform},
		{Name: "sadc", Period: 8 * sim.Second, Service: 70 * sim.Millisecond, ServiceDist: Uniform},
		{Name: "nscd", Period: 2 * sim.Second, Service: 400 * sim.Microsecond, ServiceDist: Exp},
	}
}

// SpawnSystem starts the full standard daemon population and returns it.
func SpawnSystem(k *kernel.Kernel, rng *sim.RNG) []*task.Task {
	specs := SystemDaemons()
	out := make([]*task.Task, 0, len(specs))
	for i, s := range specs {
		out = append(out, s.Spawn(k, rng.Split(uint64(i))))
	}
	return out
}

// StormConfig describes rare heavy maintenance activity (log rotation,
// updatedb, backup agents, package scans): the low-frequency,
// long-duration noise class. A storm spawns several CPU-hungry CFS workers
// for seconds to minutes; under CFS fair sharing they can take a large
// fraction of the machine away from an application.
type StormConfig struct {
	// MeanInterarrival between storms (Poisson arrivals).
	MeanInterarrival sim.Duration
	// DurMin/DurMax bound the storm length (uniform).
	DurMin, DurMax sim.Duration
	// WorkersMin/WorkersMax bound the worker count (uniform).
	WorkersMin, WorkersMax int
	// DeepFraction of storms are "deep": worker count x4 and duration
	// x3, modelling full-system maintenance (backup, updatedb) that can
	// starve an application for minutes — the source of the extreme
	// outliers in Table II's standard-Linux maxima.
	DeepFraction float64
}

// DefaultStorms sizes storms so that roughly 1-3% of short benchmark runs
// collide with one, reproducing the heavy upper tails of Table II's
// standard-Linux columns.
func DefaultStorms() StormConfig {
	return StormConfig{
		MeanInterarrival: 1200 * sim.Second,
		DurMin:           8 * sim.Second,
		DurMax:           30 * sim.Second,
		WorkersMin:       6,
		WorkersMax:       16,
		DeepFraction:     0.2,
	}
}

// Arm schedules storm arrivals on the kernel. To make separate runs
// statistically stationary, a storm may already be in progress at time
// zero: with probability duration/interarrival the first storm starts
// immediately with a partially elapsed duration.
func (c StormConfig) Arm(k *kernel.Kernel, rng *sim.RNG) {
	if c.MeanInterarrival <= 0 {
		return
	}
	meanDur := (c.DurMin + c.DurMax) / 2
	pActive := float64(meanDur) / float64(c.MeanInterarrival)
	var schedule func(first bool)
	start := func(remaining sim.Duration) {
		workers := c.WorkersMin
		if c.WorkersMax > c.WorkersMin {
			workers += rng.Intn(c.WorkersMax - c.WorkersMin + 1)
		}
		if rng.Float64() < c.DeepFraction {
			workers *= 4
			remaining *= 3
		}
		for i := 0; i < workers; i++ {
			spawnStormWorker(k, fmt.Sprintf("storm-%d", i), remaining, rng.Split(uint64(i)+1000))
		}
		// Heavy maintenance also generates interrupt pressure: disk and
		// network IRQs serviced in hardware-interrupt context, stealing
		// a few percent from whatever runs, regardless of scheduling
		// class, without a single context switch. This is the noise no
		// scheduler policy can deflect — the reason even the paper's
		// HPL shows occasional multi-percent maxima on long runs
		// (cg.B +3.3%, lu.B +8%), and part of the residual variation of
		// the RT scheduler in Figure 4.
		for cpu := 0; cpu < k.Topo.NumCPUs(); cpu++ {
			armIRQPressure(k, cpu, remaining, rng.Split(uint64(cpu)+5000))
		}
	}
	schedule = func(first bool) {
		if first && rng.Float64() < pActive {
			// Stationary residual: a storm is already running.
			rem := rng.UniformDuration(c.DurMin/2, c.DurMax)
			start(rem)
		}
		gap := rng.ExpDuration(c.MeanInterarrival)
		k.Eng.After(gap, func() {
			start(rng.UniformDuration(c.DurMin, c.DurMax))
			schedule(false)
		})
	}
	schedule(true)
}

// spawnStormWorker runs compute bursts with brief sleeps for `dur`, then
// exits. The sleep/wake cycling keeps the worker visible to wakeup
// preemption and the load balancer, like real I/O-bound maintenance jobs.
func spawnStormWorker(k *kernel.Kernel, name string, dur sim.Duration, rng *sim.RNG) {
	deadline := k.Now().Add(dur)
	k.Spawn(nil, kernel.Attr{Name: name, Nice: 0}, func(p *kernel.Proc) {
		var cycle func()
		cycle = func() {
			if k.Now() >= deadline {
				p.Exit()
				return
			}
			p.Compute(rng.UniformDuration(40*sim.Millisecond, 200*sim.Millisecond), func() {
				p.Sleep(rng.UniformDuration(sim.Millisecond, 8*sim.Millisecond), cycle)
			})
		}
		cycle()
	})
}

// armIRQPressure schedules hardware-interrupt time theft on one CPU for
// `dur`: bursts of 50-150us at ~6ms intervals (~1.7% of the CPU), the
// interrupt load of saturated disk and network during maintenance.
func armIRQPressure(k *kernel.Kernel, cpu int, dur sim.Duration, rng *sim.RNG) {
	deadline := k.Now().Add(dur)
	var next func()
	next = func() {
		if k.Now() >= deadline {
			return
		}
		k.StealTime(cpu, rng.UniformDuration(50*sim.Microsecond, 150*sim.Microsecond))
		k.Eng.After(rng.ExpDuration(6*sim.Millisecond), next)
	}
	k.Eng.After(rng.UniformDuration(0, 6*sim.Millisecond), next)
}

// LauncherNoise models the short-lived helper processes around an MPI job
// launch and teardown (orted/rsh helpers, shell wrappers, PAM/env setup):
// n CFS tasks that each run a couple of brief compute/sleep cycles and
// exit. This is the roughly constant, data-set-independent context-switch
// baseline visible in the paper's Table Ib.
func LauncherNoise(k *kernel.Kernel, parent *task.Task, n int, rng *sim.RNG) {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("orted-%d", i)
		r := rng.Split(uint64(i))
		k.Spawn(parent, kernel.Attr{Name: name}, func(p *kernel.Proc) {
			cycles := 1 + r.Intn(3)
			var cycle func()
			cycle = func() {
				p.Compute(r.UniformDuration(200*sim.Microsecond, 1500*sim.Microsecond), func() {
					cycles--
					if cycles == 0 {
						p.Exit()
						return
					}
					p.Sleep(r.UniformDuration(sim.Millisecond, 4*sim.Millisecond), cycle)
				})
			}
			// Stagger starts across the launch window.
			p.Sleep(r.UniformDuration(0, 20*sim.Millisecond), cycle)
		})
	}
}

// Injection is Ferreira-style kernel noise injection: on every CPU, a
// high-priority task wakes at a fixed frequency and spins for a fixed
// duration. Used by the resonance experiment to dial noise precisely.
type Injection struct {
	// Frequency is activations per second (per CPU).
	Frequency float64
	// Duration is the CPU time stolen per activation.
	Duration sim.Duration
}

// Arm starts one injector per CPU. Injectors are SCHED_FIFO priority 90,
// so they preempt everything including HPC tasks, like in-kernel noise.
func (inj Injection) Arm(k *kernel.Kernel, rng *sim.RNG) {
	if inj.Frequency <= 0 || inj.Duration <= 0 {
		return
	}
	period := sim.Seconds(1 / inj.Frequency)
	for cpu := 0; cpu < k.Topo.NumCPUs(); cpu++ {
		cpu := cpu
		r := rng.Split(uint64(cpu))
		k.Spawn(nil, kernel.Attr{
			Name:     fmt.Sprintf("inject/%d", cpu),
			Policy:   task.FIFO,
			RTPrio:   90,
			Affinity: maskOf(cpu),
		}, func(p *kernel.Proc) {
			var cycle func()
			cycle = func() {
				p.Sleep(r.Jitter(period, 0.05), func() {
					p.Compute(inj.Duration, cycle)
				})
			}
			p.Sleep(r.UniformDuration(0, period), func() {
				p.Compute(inj.Duration, cycle)
			})
		})
	}
}

func maskOf(cpu int) topo.CPUMask { return topo.MaskOf(cpu) }
