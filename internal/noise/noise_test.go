package noise

import (
	"testing"

	"hplsim/internal/kernel"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

func newNode(seed uint64) *kernel.Kernel {
	return kernel.New(kernel.Config{Topo: topo.POWER6(), Seed: seed})
}

func TestDaemonCycles(t *testing.T) {
	k := newNode(1)
	spec := DaemonSpec{
		Name:    "testd",
		Period:  100 * sim.Millisecond,
		Service: 2 * sim.Millisecond,
	}
	d := spec.Spawn(k, k.RNG(1))
	k.Run(sim.Time(2 * sim.Second))
	// ~20 activations of 2ms each: SumExec near 40ms.
	if d.SumExec < 20*sim.Millisecond || d.SumExec > 80*sim.Millisecond {
		t.Fatalf("daemon SumExec = %v, want ~40ms", d.SumExec)
	}
	if d.Counters.WakeUps < 10 {
		t.Fatalf("daemon woke only %d times", d.Counters.WakeUps)
	}
	if d.State == task.Dead {
		t.Fatal("daemon exited")
	}
}

func TestSystemDaemonsAggregateRate(t *testing.T) {
	// The population's activation rate underpins the Table Ia
	// calibration: roughly 10-20 wakeups per second system-wide.
	k := newNode(2)
	SpawnSystem(k, k.RNG(1))
	k.Run(sim.Time(10 * sim.Second))
	wakes := k.Perf.Wakeups
	perSec := float64(wakes) / 10
	if perSec < 8 || perSec > 30 {
		t.Fatalf("daemon wakeups/s = %.1f, want ~10-20", perSec)
	}
}

func TestSystemDaemonsNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range SystemDaemons() {
		if seen[s.Name] {
			t.Fatalf("duplicate daemon %q", s.Name)
		}
		seen[s.Name] = true
		if s.Period <= 0 || s.Service <= 0 {
			t.Fatalf("daemon %q has non-positive period/service", s.Name)
		}
	}
}

func TestStormSpawnsAndEnds(t *testing.T) {
	k := newNode(3)
	cfg := StormConfig{
		MeanInterarrival: 500 * sim.Millisecond,
		DurMin:           100 * sim.Millisecond,
		DurMax:           200 * sim.Millisecond,
		WorkersMin:       4,
		WorkersMax:       4,
	}
	cfg.Arm(k, k.RNG(1))
	k.Run(sim.Time(3 * sim.Second))
	var workers, dead int
	for _, tt := range k.Tasks() {
		if len(tt.Name) >= 5 && tt.Name[:5] == "storm" {
			workers++
			if tt.State == task.Dead {
				dead++
			}
		}
	}
	if workers == 0 {
		t.Fatal("no storm workers spawned in 3s with 0.5s interarrival")
	}
	if dead == 0 {
		t.Fatal("no storm worker exited")
	}
}

func TestStormZeroInterarrivalDisabled(t *testing.T) {
	k := newNode(4)
	StormConfig{}.Arm(k, k.RNG(1))
	k.Run(sim.Time(sim.Second))
	if len(k.Tasks()) != k.Topo.NumCPUs() {
		t.Fatal("disabled storm config spawned tasks")
	}
}

func TestInjectionStealsShare(t *testing.T) {
	// 2% injection must slow a CPU-bound task by ~2%.
	k := newNode(5)
	inj := Injection{Frequency: 100, Duration: 200 * sim.Microsecond}
	inj.Arm(k, k.RNG(1))
	var done sim.Time
	k.Spawn(nil, kernel.Attr{Name: "w", Affinity: topo.MaskOf(0)}, func(p *kernel.Proc) {
		p.Compute(sim.Duration(sim.Second), func() { done = p.Now(); p.Exit() })
	})
	k.Run(sim.Time(5 * sim.Second))
	slowdown := done.Seconds() - 1.0
	if slowdown < 0.01 || slowdown > 0.05 {
		t.Fatalf("2%% injection produced %.1f%% slowdown", slowdown*100)
	}
}

func TestInjectionDisabled(t *testing.T) {
	k := newNode(6)
	Injection{}.Arm(k, k.RNG(1))
	if len(k.Tasks()) != k.Topo.NumCPUs() {
		t.Fatal("zero injection spawned tasks")
	}
}

func TestLauncherNoiseExitsQuickly(t *testing.T) {
	k := newNode(7)
	parent := k.Spawn(nil, kernel.Attr{Name: "mpiexec"}, func(p *kernel.Proc) {
		p.Compute(sim.Millisecond, func() {
			LauncherNoise(k, p.T, 6, k.RNG(2))
			p.WaitChildren(func() { p.Exit() })
		})
	})
	k.Run(sim.Time(sim.Second))
	if parent.State != task.Dead {
		t.Fatal("launcher helpers did not all exit")
	}
	helpers := 0
	for _, tt := range k.Tasks() {
		if len(tt.Name) > 5 && tt.Name[:5] == "orted" {
			helpers++
			if tt.State != task.Dead {
				t.Fatalf("helper %v still alive", tt)
			}
		}
	}
	if helpers != 6 {
		t.Fatalf("spawned %d helpers, want 6", helpers)
	}
}

func TestIRQPressureClassIndependent(t *testing.T) {
	// Interrupt time theft must slow an HPC task even though no other
	// task ever runs, and must not add context switches.
	run := func(withIRQ bool) (sim.Time, uint64) {
		k := kernel.New(kernel.Config{
			Topo:    topo.POWER6(),
			Balance: sched.BalanceHPL,
			Seed:    8,
		})
		if withIRQ {
			for cpu := 0; cpu < k.Topo.NumCPUs(); cpu++ {
				armIRQPressure(k, cpu, 5*sim.Second, k.RNG(uint64(cpu)))
			}
		}
		var done sim.Time
		k.Spawn(nil, kernel.Attr{Name: "rank", Policy: task.HPC, Affinity: topo.MaskOf(0)},
			func(p *kernel.Proc) {
				p.Compute(sim.Duration(sim.Second), func() { done = p.Now(); p.Exit() })
			})
		k.Run(sim.Time(5 * sim.Second))
		return done, k.Perf.ContextSwitches
	}
	base, baseCtx := run(false)
	slowed, irqCtx := run(true)
	if slowed <= base {
		t.Fatal("irq pressure did not slow the HPC task")
	}
	loss := (slowed.Seconds() - base.Seconds()) / base.Seconds()
	if loss < 0.005 || loss > 0.05 {
		t.Fatalf("irq pressure stole %.2f%%, want ~1.7%%", loss*100)
	}
	if irqCtx > baseCtx+2 {
		t.Fatalf("irq pressure added context switches: %d vs %d", irqCtx, baseCtx)
	}
}

func TestSampleDistributions(t *testing.T) {
	rng := sim.NewRNG(9)
	if got := sample(rng, Fixed, sim.Millisecond); got != sim.Millisecond {
		t.Fatalf("Fixed sample = %v", got)
	}
	for i := 0; i < 100; i++ {
		u := sample(rng, Uniform, 10*sim.Millisecond)
		if u < 5*sim.Millisecond || u >= 15*sim.Millisecond {
			t.Fatalf("Uniform sample out of band: %v", u)
		}
		if e := sample(rng, Exp, sim.Millisecond); e < 0 {
			t.Fatalf("Exp sample negative: %v", e)
		}
	}
}
