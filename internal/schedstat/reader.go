package schedstat

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReadTrace parses a JSONL trace stream. Events are normalized to their
// canonical field sets, so Marshal(ReadTrace(x)) is byte-stable: feeding
// the output back through ReadTrace reproduces it exactly. Malformed input
// returns an error (with its line number); it never panics. Blank lines are
// permitted and skipped.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var evs []Event
	for line := 1; sc.Scan(); line++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("schedstat: line %d: %v", line, err)
		}
		if err := e.normalize(); err != nil {
			return nil, fmt.Errorf("schedstat: line %d: %v", line, err)
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("schedstat: %v", err)
	}
	return evs, nil
}

// ReadTraceFile reads a JSONL trace from disk.
func ReadTraceFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
