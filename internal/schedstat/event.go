// Package schedstat is the scheduler observability layer: a streaming
// structured trace format (JSONL on the wire, Chrome/Perfetto trace_event
// on export) and per-task/per-CPU accounting in the spirit of Linux's
// /proc/schedstat — run time, runnable-wait (scheduling latency), block
// time, slice counts, migrations — fed entirely through the kernel's
// Tracer hooks. With no tracer configured the kernel's hot path is
// untouched; with the streaming writer attached, long runs cost a bounded
// reusable buffer instead of the Recorder's unbounded in-memory span maps.
//
// The JSONL encoding is canonical: for every event kind there is exactly
// one byte representation (fixed key order, fixed field set, integer
// nanosecond times). Canonical bytes are what make golden-trace regression
// tests, byte-stable read/write round trips, and cross-run `tracer diff`
// meaningful.
package schedstat

import (
	"fmt"
	"strconv"
)

// Event kinds, the `ev` field of each JSONL record.
const (
	KindSwitch  = "switch"
	KindWake    = "wake"
	KindMigrate = "migrate"
	KindFork    = "fork"
	KindExit    = "exit"
	KindMark    = "mark"
)

// Event is one structured trace record. Which fields are meaningful depends
// on Ev; ReadTrace zeroes the rest so parsed events compare cleanly:
//
//	switch:  T, CPU, Prev, PID, PState, Next, NID
//	wake:    T, Task, TID, CPU
//	migrate: T, Task, TID, From, To, Kind
//	fork:    T, Task, TID, CPU, Policy
//	exit:    T, Task, TID
//	mark:    T, Task, TID, Label
type Event struct {
	Ev string `json:"ev"`
	T  int64  `json:"t"` // virtual time, integer nanoseconds

	CPU  int    `json:"cpu"`
	Task string `json:"task"`
	TID  int    `json:"tid"`

	Prev   string `json:"prev"`
	PID    int    `json:"pid"`
	PState string `json:"pstate"` // prev's state at switch-out: runnable|sleeping|dead
	Next   string `json:"next"`
	NID    int    `json:"nid"`

	From int    `json:"from"`
	To   int    `json:"to"`
	Kind string `json:"kind"` // migrate cause: fork|wake|balance

	Policy string `json:"policy"`
	Label  string `json:"label"`
}

// AppendJSONString appends s as a JSON string literal. The escaping is
// minimal and fixed — `"`, `\`, and control bytes only — so that a string
// has exactly one encoding (encoding/json's HTML-escaping variants would
// re-encode `<` differently from raw bytes). Exported together with
// AppendKeyStr/AppendKeyInt as the canonical-JSONL building blocks other
// journaled formats (internal/simq) share.
func AppendJSONString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// AppendKeyStr appends `,"key":"v"` with canonical string escaping.
func AppendKeyStr(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return AppendJSONString(b, v)
}

// AppendKeyInt appends `,"key":v` with the integer in base 10.
func AppendKeyInt(b []byte, key string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

// AppendJSONL appends the canonical one-line JSON encoding of e, including
// the trailing newline. It allocates only when b needs to grow.
func (e Event) AppendJSONL(b []byte) []byte {
	b = append(b, `{"ev":`...)
	b = AppendJSONString(b, e.Ev)
	b = AppendKeyInt(b, "t", e.T)
	switch e.Ev {
	case KindSwitch:
		b = AppendKeyInt(b, "cpu", int64(e.CPU))
		b = AppendKeyStr(b, "prev", e.Prev)
		b = AppendKeyInt(b, "pid", int64(e.PID))
		b = AppendKeyStr(b, "pstate", e.PState)
		b = AppendKeyStr(b, "next", e.Next)
		b = AppendKeyInt(b, "nid", int64(e.NID))
	case KindWake:
		b = AppendKeyStr(b, "task", e.Task)
		b = AppendKeyInt(b, "tid", int64(e.TID))
		b = AppendKeyInt(b, "cpu", int64(e.CPU))
	case KindMigrate:
		b = AppendKeyStr(b, "task", e.Task)
		b = AppendKeyInt(b, "tid", int64(e.TID))
		b = AppendKeyInt(b, "from", int64(e.From))
		b = AppendKeyInt(b, "to", int64(e.To))
		b = AppendKeyStr(b, "kind", e.Kind)
	case KindFork:
		b = AppendKeyStr(b, "task", e.Task)
		b = AppendKeyInt(b, "tid", int64(e.TID))
		b = AppendKeyInt(b, "cpu", int64(e.CPU))
		b = AppendKeyStr(b, "policy", e.Policy)
	case KindExit:
		b = AppendKeyStr(b, "task", e.Task)
		b = AppendKeyInt(b, "tid", int64(e.TID))
	case KindMark:
		b = AppendKeyStr(b, "task", e.Task)
		b = AppendKeyInt(b, "tid", int64(e.TID))
		b = AppendKeyStr(b, "label", e.Label)
	}
	return append(b, '}', '\n')
}

// String renders the canonical encoding without the newline, for error
// messages and diffs.
func (e Event) String() string {
	b := e.AppendJSONL(nil)
	return string(b[:len(b)-1])
}

// normalize zeroes every field that is not part of e's kind, so events
// parsed from hand-written or padded JSON compare equal to the events the
// writer would produce. It reports an error for unknown kinds.
func (e *Event) normalize() error {
	keep := *e
	*e = Event{Ev: keep.Ev, T: keep.T}
	switch keep.Ev {
	case KindSwitch:
		e.CPU, e.Prev, e.PID, e.PState = keep.CPU, keep.Prev, keep.PID, keep.PState
		e.Next, e.NID = keep.Next, keep.NID
	case KindWake:
		e.Task, e.TID, e.CPU = keep.Task, keep.TID, keep.CPU
	case KindMigrate:
		e.Task, e.TID, e.From, e.To, e.Kind = keep.Task, keep.TID, keep.From, keep.To, keep.Kind
	case KindFork:
		e.Task, e.TID, e.CPU, e.Policy = keep.Task, keep.TID, keep.CPU, keep.Policy
	case KindExit:
		e.Task, e.TID = keep.Task, keep.TID
	case KindMark:
		e.Task, e.TID, e.Label = keep.Task, keep.TID, keep.Label
	default:
		return fmt.Errorf("schedstat: unknown event kind %q", keep.Ev)
	}
	return nil
}

// Marshal renders a whole event stream in canonical JSONL.
func Marshal(evs []Event) []byte {
	var b []byte
	for _, e := range evs {
		b = e.AppendJSONL(b)
	}
	return b
}
