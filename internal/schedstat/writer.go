package schedstat

import (
	"bufio"
	"io"

	"hplsim/internal/kernel"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// Every schedstat sink speaks the full tracer surface: base events, typed
// migrations, and task lifecycle edges.
var (
	_ kernel.KindTracer = (*Writer)(nil)
	_ kernel.TaskTracer = (*Writer)(nil)
	_ kernel.KindTracer = (*Collector)(nil)
	_ kernel.TaskTracer = (*Collector)(nil)
	_ kernel.KindTracer = (*Accounting)(nil)
	_ kernel.TaskTracer = (*Accounting)(nil)
)

// Event constructors shared by the streaming writer, the in-memory
// collector, and the accounting layer. Each mirrors one kernel tracer hook.

// NewSwitchEvent records a context switch on cpu.
func NewSwitchEvent(now sim.Time, cpu int, prev, next *task.Task) Event {
	return Event{Ev: KindSwitch, T: int64(now), CPU: cpu,
		Prev: prev.Name, PID: prev.ID, PState: prev.State.String(),
		Next: next.Name, NID: next.ID}
}

// NewWakeEvent records a wakeup of t onto cpu.
func NewWakeEvent(now sim.Time, t *task.Task, cpu int) Event {
	return Event{Ev: KindWake, T: int64(now), Task: t.Name, TID: t.ID, CPU: cpu}
}

// NewMigrateEvent records a CPU change of t with its cause.
func NewMigrateEvent(now sim.Time, t *task.Task, from, to int, kind kernel.MigrateKind) Event {
	return Event{Ev: KindMigrate, T: int64(now), Task: t.Name, TID: t.ID,
		From: from, To: to, Kind: kind.String()}
}

// NewForkEvent records the first enqueue of a freshly created task.
func NewForkEvent(now sim.Time, t *task.Task, cpu int) Event {
	return Event{Ev: KindFork, T: int64(now), Task: t.Name, TID: t.ID,
		CPU: cpu, Policy: t.Policy.String()}
}

// NewExitEvent records a task leaving the system.
func NewExitEvent(now sim.Time, t *task.Task) Event {
	return Event{Ev: KindExit, T: int64(now), Task: t.Name, TID: t.ID}
}

// NewMarkEvent records a workload-defined point event.
func NewMarkEvent(now sim.Time, t *task.Task, label string) Event {
	return Event{Ev: KindMark, T: int64(now), Task: t.Name, TID: t.ID, Label: label}
}

// Writer streams canonical JSONL trace records to an io.Writer as the
// simulation runs. It implements kernel.Tracer, kernel.KindTracer, and
// kernel.TaskTracer, holds one reusable encode buffer plus a bufio stage,
// and never retains events — memory stays constant however long the run.
// Errors from the underlying writer are sticky and reported by Flush/Err.
type Writer struct {
	bw  *bufio.Writer
	buf []byte
	err error
}

// NewWriter returns a streaming trace writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

func (w *Writer) emit(e Event) {
	if w.err != nil {
		return
	}
	w.buf = e.AppendJSONL(w.buf[:0])
	if _, err := w.bw.Write(w.buf); err != nil {
		w.err = err
	}
}

// Switch implements kernel.Tracer.
func (w *Writer) Switch(now sim.Time, cpu int, prev, next *task.Task) {
	w.emit(NewSwitchEvent(now, cpu, prev, next))
}

// Migrate implements kernel.Tracer; kinds arrive through MigrateK.
func (w *Writer) Migrate(now sim.Time, t *task.Task, from, to int) {}

// MigrateK implements kernel.KindTracer.
func (w *Writer) MigrateK(now sim.Time, t *task.Task, from, to int, kind kernel.MigrateKind) {
	w.emit(NewMigrateEvent(now, t, from, to, kind))
}

// Wake implements kernel.Tracer.
func (w *Writer) Wake(now sim.Time, t *task.Task, cpu int) {
	w.emit(NewWakeEvent(now, t, cpu))
}

// Mark implements kernel.Tracer.
func (w *Writer) Mark(now sim.Time, t *task.Task, label string) {
	w.emit(NewMarkEvent(now, t, label))
}

// Fork implements kernel.TaskTracer.
func (w *Writer) Fork(now sim.Time, t *task.Task, cpu int) {
	w.emit(NewForkEvent(now, t, cpu))
}

// Exit implements kernel.TaskTracer.
func (w *Writer) Exit(now sim.Time, t *task.Task) {
	w.emit(NewExitEvent(now, t))
}

// Flush drains the buffered output and returns the first error seen.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Err reports the first underlying write error, if any.
func (w *Writer) Err() error { return w.err }

// Collector gathers the event stream in memory, for in-process conversion
// (Perfetto export, golden generation, diffing). It implements the same
// tracer interfaces as Writer.
type Collector struct {
	Events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Switch implements kernel.Tracer.
func (c *Collector) Switch(now sim.Time, cpu int, prev, next *task.Task) {
	c.Events = append(c.Events, NewSwitchEvent(now, cpu, prev, next))
}

// Migrate implements kernel.Tracer; kinds arrive through MigrateK.
func (c *Collector) Migrate(now sim.Time, t *task.Task, from, to int) {}

// MigrateK implements kernel.KindTracer.
func (c *Collector) MigrateK(now sim.Time, t *task.Task, from, to int, kind kernel.MigrateKind) {
	c.Events = append(c.Events, NewMigrateEvent(now, t, from, to, kind))
}

// Wake implements kernel.Tracer.
func (c *Collector) Wake(now sim.Time, t *task.Task, cpu int) {
	c.Events = append(c.Events, NewWakeEvent(now, t, cpu))
}

// Mark implements kernel.Tracer.
func (c *Collector) Mark(now sim.Time, t *task.Task, label string) {
	c.Events = append(c.Events, NewMarkEvent(now, t, label))
}

// Fork implements kernel.TaskTracer.
func (c *Collector) Fork(now sim.Time, t *task.Task, cpu int) {
	c.Events = append(c.Events, NewForkEvent(now, t, cpu))
}

// Exit implements kernel.TaskTracer.
func (c *Collector) Exit(now sim.Time, t *task.Task) {
	c.Events = append(c.Events, NewExitEvent(now, t))
}

// Window returns the events with lo <= T < hi, preserving order.
func (c *Collector) Window(lo, hi sim.Time) []Event {
	var out []Event
	for _, e := range c.Events {
		if e.T >= int64(lo) && e.T < int64(hi) {
			out = append(out, e)
		}
	}
	return out
}
