package schedstat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace drives the reader with arbitrary bytes. Two properties:
// the reader never panics, and any stream it accepts is a fixed point of
// the canonical encoding — write(read(x)) == write(read(write(read(x)))).
func FuzzReadTrace(f *testing.F) {
	f.Add([]byte(Marshal(sampleEvents())))
	f.Add([]byte(`{"ev":"switch","t":0,"cpu":0,"prev":"a","pid":1,"pstate":"runnable","next":"b","nid":2}` + "\n"))
	f.Add([]byte(`{"ev":"wake","t":-5,"task":"x","tid":0,"cpu":99}` + "\n"))
	f.Add([]byte(`{"ev":"mark","t":1,"task":"\u00e9","tid":1,"label":"\\\""}` + "\n"))
	f.Add([]byte(`{"ev":"nap","t":1}` + "\n"))
	f.Add([]byte("{not json}\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n'})
	f.Add([]byte(`{"ev":"exit","t":9223372036854775807,"task":"` + strings.Repeat("q", 300) + `","tid":1}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		once := Marshal(evs)
		evs2, err := ReadTrace(bytes.NewReader(once))
		if err != nil {
			t.Fatalf("canonical output rejected on re-read: %v\n%q", err, once)
		}
		twice := Marshal(evs2)
		if !bytes.Equal(once, twice) {
			t.Fatalf("canonical encoding is not a fixed point:\n%q\nvs\n%q", once, twice)
		}
	})
}
