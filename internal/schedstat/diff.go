package schedstat

import "fmt"

// Diff compares two event streams record by record and returns up to limit
// human-readable mismatch lines ("" slice means identical). Index-aligned
// comparison is the right shape for this format: traces of the same
// scenario are bitwise identical, so the first divergence, not a minimal
// edit script, is what a regression hunt needs.
func Diff(a, b []Event, limit int) []string {
	if limit <= 0 {
		limit = 20
	}
	var out []string
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n && len(out) < limit; i++ {
		if a[i] != b[i] {
			out = append(out,
				fmt.Sprintf("event %d:\n  a: %s\n  b: %s", i, a[i], b[i]))
		}
	}
	if len(a) != len(b) && len(out) < limit {
		extra, side := a, "a"
		if len(b) > len(a) {
			extra, side = b, "b"
		}
		out = append(out, fmt.Sprintf("length differs: a has %d events, b has %d; first extra in %s: %s",
			len(a), len(b), side, extra[n]))
	}
	return out
}

// DiffFiles diffs two JSONL trace files by path.
func DiffFiles(pathA, pathB string, limit int) ([]string, error) {
	a, err := ReadTraceFile(pathA)
	if err != nil {
		return nil, err
	}
	b, err := ReadTraceFile(pathB)
	if err != nil {
		return nil, err
	}
	return Diff(a, b, limit), nil
}
