package schedstat

import (
	"strings"
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

func at(ms int64) sim.Time { return sim.Time(ms) * sim.Time(sim.Millisecond) }

// driveLedger plays a small hand-written schedule into a sink implementing
// the full tracer surface. Timeline on cpu0:
//
//	t=0    rank forks (wait opens)
//	t=2ms  rank switches in (wait 2ms)
//	t=10ms daemon wakes
//	t=10ms rank preempted by daemon (run 8ms, wait reopens)
//	t=11ms daemon blocks, rank back in (wait 1ms, daemon run 1ms)
//	t=20ms rank exits, idle in (run 9ms)
type tracerSink interface {
	Switch(now sim.Time, cpu int, prev, next *task.Task)
	Wake(now sim.Time, t *task.Task, cpu int)
	Fork(now sim.Time, t *task.Task, cpu int)
	Exit(now sim.Time, t *task.Task)
}

func driveLedger(s tracerSink) {
	idle := &task.Task{ID: 0, Name: "swapper/0", Policy: task.Idle, State: task.Runnable}
	rank := &task.Task{ID: 1, Name: "rank0", Policy: task.HPC}
	daemon := &task.Task{ID: 2, Name: "daemon", Policy: task.Normal}

	s.Fork(at(0), rank, 0)
	s.Switch(at(2), 0, idle, rank)
	s.Wake(at(10), daemon, 0)
	rank.State = task.Runnable
	s.Switch(at(10), 0, rank, daemon)
	daemon.State = task.Sleeping
	s.Switch(at(11), 0, daemon, rank)
	rank.State = task.Dead
	s.Exit(at(20), rank)
	s.Switch(at(20), 0, rank, idle)
}

func TestAccountingLedger(t *testing.T) {
	a := NewAccounting()
	driveLedger(a)
	a.Finish()

	rank := a.Tasks[1]
	if rank == nil || rank.Name != "rank0" || rank.Class != sched.ClassHPC {
		t.Fatalf("rank ledger = %+v", rank)
	}
	if rank.Run != 17*sim.Millisecond {
		t.Errorf("rank run = %v, want 17ms", rank.Run)
	}
	if rank.Wait != 3*sim.Millisecond || rank.WaitMax != 2*sim.Millisecond {
		t.Errorf("rank wait = %v max %v, want 3ms max 2ms", rank.Wait, rank.WaitMax)
	}
	if rank.Preempt != 1 || rank.Slices != 2 || !rank.Dead {
		t.Errorf("rank counters = %+v", rank)
	}

	d := a.Tasks[2]
	if d.Run != sim.Millisecond || d.Yields != 1 || d.Wakeups != 1 || d.Wait != 0 {
		t.Errorf("daemon ledger = %+v", d)
	}

	c := a.CPUs[0]
	if c.Switches != 4 {
		t.Errorf("cpu switches = %d, want 4", c.Switches)
	}
	if c.ClassTime[sched.ClassHPC] != 17*sim.Millisecond ||
		c.ClassTime[sched.ClassCFS] != sim.Millisecond ||
		c.ClassTime[sched.ClassIdle] != 2*sim.Millisecond {
		t.Errorf("cpu class occupancy = %v", c.ClassTime)
	}
	if c.Busy() != 18*sim.Millisecond {
		t.Errorf("cpu busy = %v, want 18ms", c.Busy())
	}
}

func TestAccountingOnWaitHook(t *testing.T) {
	a := NewAccounting()
	var waits []sim.Duration
	a.OnWait = func(now sim.Time, tk *task.Task, cpu int, wait sim.Duration) {
		if tk.Name == "rank0" {
			waits = append(waits, wait)
		}
	}
	driveLedger(a)
	if len(waits) != 2 || waits[0] != 2*sim.Millisecond || waits[1] != sim.Millisecond {
		t.Fatalf("OnWait waits = %v, want [2ms 1ms]", waits)
	}
}

// TestReplayMatchesLive: tabulating a recorded stream offline must agree
// with the live ledger — same events, same tables.
func TestReplayMatchesLive(t *testing.T) {
	live := NewAccounting()
	col := NewCollector()
	driveLedger(live)
	driveLedger(col)
	live.Finish()

	replayed := NewAccounting()
	replayed.Replay(col.Events)
	replayed.Finish()

	if got, want := replayed.TaskTable(), live.TaskTable(); got != want {
		t.Fatalf("replayed task table differs:\n%s\nvs live:\n%s", got, want)
	}
	if got, want := replayed.CPUTable(), live.CPUTable(); got != want {
		t.Fatalf("replayed cpu table differs:\n%s\nvs live:\n%s", got, want)
	}
}

func TestFinishIdempotentAndAggregate(t *testing.T) {
	a := NewAccounting()
	driveLedger(a)
	a.Finish()
	run := a.Tasks[1].Run
	a.Finish()
	if a.Tasks[1].Run != run {
		t.Fatal("second Finish re-settled spans")
	}
	agg := a.Aggregate("rank")
	if agg.N != 1 || agg.Run != run || agg.Preempt != 1 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if a.End() != at(20) {
		t.Fatalf("End = %v, want 20ms", a.End())
	}
}

func TestTablesRender(t *testing.T) {
	a := NewAccounting()
	driveLedger(a)
	a.Finish()
	tt := a.TaskTable()
	if !strings.Contains(tt, "rank0") || !strings.Contains(tt, "dead") ||
		strings.Contains(tt, "swapper") {
		t.Fatalf("task table:\n%s", tt)
	}
	ct := a.CPUTable()
	if !strings.Contains(ct, "cpu0") || !strings.Contains(ct, "BUSY%") {
		t.Fatalf("cpu table:\n%s", ct)
	}
	if !strings.Contains(a.WaitHistTable(), "runnable-wait latency") {
		t.Fatalf("hist table:\n%s", a.WaitHistTable())
	}
}
