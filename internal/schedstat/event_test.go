package schedstat

import (
	"bytes"
	"strings"
	"testing"

	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// sampleEvents covers every kind with representative field values.
func sampleEvents() []Event {
	prev := &task.Task{ID: 3, Name: "rank0", State: task.Runnable}
	next := &task.Task{ID: 4, Name: "rank1"}
	t := &task.Task{ID: 5, Name: "daemon", Policy: task.Normal}
	return []Event{
		NewForkEvent(0, &task.Task{ID: 3, Name: "rank0", Policy: task.HPC}, 1),
		NewWakeEvent(sim.Time(sim.Millisecond), t, 0),
		NewSwitchEvent(sim.Time(2*sim.Millisecond), 0, prev, next),
		NewMigrateEvent(sim.Time(3*sim.Millisecond), t, 0, 2, 1),
		NewMarkEvent(sim.Time(4*sim.Millisecond), t, "arrive:0"),
		NewExitEvent(sim.Time(5*sim.Millisecond), t),
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	in := sampleEvents()
	data := Marshal(in)
	got, err := ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(in) {
		t.Fatalf("read %d events, wrote %d", len(got), len(in))
	}
	again := Marshal(got)
	if !bytes.Equal(data, again) {
		t.Fatalf("write∘read∘write not byte-stable:\n%s\nvs\n%s", data, again)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], in[i])
		}
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	data := []byte("\n" + NewExitEvent(1, &task.Task{ID: 1, Name: "a"}).String() + "\n\n")
	evs, err := ReadTrace(bytes.NewReader(data))
	if err != nil || len(evs) != 1 {
		t.Fatalf("evs=%v err=%v", evs, err)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := map[string]string{
		"malformed JSON": "{not json}\n",
		"unknown kind":   `{"ev":"nap","t":1}` + "\n",
		"non-integer t":  `{"ev":"exit","t":1.5,"task":"a","tid":1}` + "\n",
		"wrong type":     `{"ev":"wake","t":"soon","task":"a","tid":1,"cpu":0}` + "\n",
		"bare array":     "[1,2,3]\n",
		"truncated":      `{"ev":"exit"`,
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestNormalizeDropsForeignFields(t *testing.T) {
	// A wake event carrying switch-only fields must canonicalise to the
	// wake field set, so the re-encoding is independent of junk input.
	in := `{"ev":"wake","t":7,"task":"a","tid":1,"cpu":2,"prev":"x","pid":9,"label":"junk"}` + "\n"
	evs, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	want := Event{Ev: KindWake, T: 7, Task: "a", TID: 1, CPU: 2}
	if evs[0] != want {
		t.Fatalf("normalize kept foreign fields: %+v", evs[0])
	}
}

func TestStringEscaping(t *testing.T) {
	e := NewMarkEvent(1, &task.Task{ID: 1, Name: "a\"b\\c"}, "tab\there\nnewline\x01ctl")
	line := e.AppendJSONL(nil)
	evs, err := ReadTrace(bytes.NewReader(line))
	if err != nil {
		t.Fatalf("ReadTrace of escaped line %q: %v", line, err)
	}
	if evs[0].Task != "a\"b\\c" || evs[0].Label != "tab\there\nnewline\x01ctl" {
		t.Fatalf("escaping lost content: %+v", evs[0])
	}
	if bytes.ContainsAny(bytes.TrimSuffix(line, []byte("\n")), "\n\t") {
		t.Fatalf("raw control bytes leaked into the line: %q", line)
	}
}

func TestDiff(t *testing.T) {
	a := sampleEvents()
	if d := Diff(a, sampleEvents(), 10); len(d) != 0 {
		t.Fatalf("identical traces diff: %v", d)
	}
	b := sampleEvents()
	b[2].CPU = 7
	d := Diff(a, b, 10)
	if len(d) != 1 || !strings.Contains(d[0], "event 2") {
		t.Fatalf("single-field drift diff = %v", d)
	}
	d = Diff(a, a[:4], 10)
	if len(d) == 0 || !strings.Contains(strings.Join(d, " "), "a has 6 events, b has 4") {
		t.Fatalf("length drift diff = %v", d)
	}
}

func TestCollectorWindow(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 5; i++ {
		c.Exit(sim.Time(i)*sim.Time(sim.Millisecond), &task.Task{ID: i, Name: "a"})
	}
	w := c.Window(sim.Time(sim.Millisecond), sim.Time(3*sim.Millisecond))
	if len(w) != 2 || w[0].TID != 1 || w[1].TID != 2 {
		t.Fatalf("window [1ms,3ms) = %+v", w)
	}
}
