package schedstat

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWritePerfetto(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleEvents()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var spans, instants, meta int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Errorf("complete event %q has non-positive dur %v", e.Name, e.Dur)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	// sampleEvents switches rank1 in at 2ms and never out: one closed span
	// at the trace end, plus the wake/migrate/mark/exit/fork instants.
	if spans == 0 || instants == 0 || meta == 0 {
		t.Fatalf("span/instant/meta counts = %d/%d/%d, want all > 0\n%s",
			spans, instants, meta, buf.String())
	}
}

func TestWritePerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil); err != nil {
		t.Fatalf("WritePerfetto(nil): %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty trace is invalid JSON: %s", buf.Bytes())
	}
}
