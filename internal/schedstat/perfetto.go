package schedstat

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// pfArgs is the args payload of a metadata record.
type pfArgs struct {
	Name string `json:"name"`
}

// pfEvent is one Chrome trace_event record. Field order is fixed by the
// struct, so the export is deterministic.
type pfEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"` // microseconds
	Dur  float64 `json:"dur,omitempty"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
	Args *pfArgs `json:"args,omitempty"`
}

// pfTrace is the top-level trace_event JSON object.
type pfTrace struct {
	TraceEvents     []pfEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

func usec(tns int64) float64 { return float64(tns) / 1e3 }

// pfOpen tracks the task occupying one CPU between switch events.
type pfOpen struct {
	name  string
	id    int
	start int64
	live  bool
}

// WritePerfetto converts an event stream to Chrome/Perfetto trace_event
// JSON: one thread per CPU under pid 0, "X" complete events for run spans
// (idle swapper spans are left blank), and "i" instant events for wakes,
// migrations, forks, exits, and marks. The output loads directly in
// https://ui.perfetto.dev or chrome://tracing.
func WritePerfetto(w io.Writer, evs []Event) error {
	var out []pfEvent
	var open []pfOpen // indexed by CPU
	grow := func(cpu int) {
		for len(open) <= cpu {
			open = append(open, pfOpen{})
		}
	}
	isIdle := func(name string) bool { return strings.HasPrefix(name, "swapper") }
	closeSpan := func(cpu int, end int64) {
		o := open[cpu]
		if !o.live || isIdle(o.name) || end <= o.start {
			return
		}
		out = append(out, pfEvent{
			Name: o.name, Ph: "X", TS: usec(o.start), Dur: usec(end) - usec(o.start),
			PID: 0, TID: cpu,
		})
	}
	// tidOf places a per-task instant on the CPU currently running the
	// task, if a switch has shown us where that is.
	tidOf := func(id int) int {
		for cpu := range open {
			if open[cpu].live && open[cpu].id == id {
				return cpu
			}
		}
		return 0
	}
	instant := func(name string, t int64, tid int) pfEvent {
		return pfEvent{Name: name, Ph: "i", TS: usec(t), PID: 0, TID: tid, S: "t"}
	}

	var maxT int64
	for _, e := range evs {
		if e.T > maxT {
			maxT = e.T
		}
		switch e.Ev {
		case KindSwitch:
			grow(e.CPU)
			closeSpan(e.CPU, e.T)
			open[e.CPU] = pfOpen{name: e.Next, id: e.NID, start: e.T, live: true}
		case KindWake:
			grow(e.CPU)
			out = append(out, instant(fmt.Sprintf("wake %s", e.Task), e.T, e.CPU))
		case KindMigrate:
			grow(e.To)
			out = append(out, instant(
				fmt.Sprintf("migrate %s cpu%d->cpu%d (%s)", e.Task, e.From, e.To, e.Kind), e.T, e.To))
		case KindFork:
			grow(e.CPU)
			out = append(out, instant(fmt.Sprintf("fork %s", e.Task), e.T, e.CPU))
		case KindExit:
			out = append(out, instant(fmt.Sprintf("exit %s", e.Task), e.T, tidOf(e.TID)))
		case KindMark:
			out = append(out, instant(fmt.Sprintf("mark %s %s", e.Task, e.Label), e.T, tidOf(e.TID)))
		}
	}
	for cpu := range open {
		closeSpan(cpu, maxT)
	}

	meta := []pfEvent{{
		Name: "process_name", Ph: "M", PID: 0, TID: 0, Args: &pfArgs{Name: "hplsim"},
	}}
	for cpu := range open {
		meta = append(meta, pfEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: cpu,
			Args: &pfArgs{Name: fmt.Sprintf("cpu%d", cpu)},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(pfTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}
