package schedstat

import (
	"fmt"
	"strings"

	"hplsim/internal/kernel"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/stats"
	"hplsim/internal/task"
)

// unset marks an interval anchor with no interval in flight.
const unset = sim.Time(-1)

// Wait-latency histogram shape: 4ms bins over [0, 200ms). 200ms covers the
// HPC timeslice (100ms) plus generous tick slack; longer waits land in the
// overflow count.
const (
	waitHistHiMs = 200.0
	waitHistBins = 50
)

// TaskStats is the per-task ledger, the simulator's /proc/<pid>/schedstat:
// where the task's wall-clock went, split by scheduler-visible cause.
type TaskStats struct {
	ID    int
	Name  string
	Class int // sched.Class* bucket of the last observed policy

	Run     sim.Duration // on-CPU, switch-in to switch-out
	Wait    sim.Duration // runnable-wait: fork/wake/preempt to switch-in
	Block   sim.Duration // asleep: blocking switch-out to wake
	WaitMax sim.Duration // worst single runnable-wait

	Slices     uint64 // switch-ins
	Preempt    uint64 // involuntary switch-outs (still runnable)
	Yields     uint64 // voluntary switch-outs (blocked)
	Wakeups    uint64
	Migrations uint64
	Dead       bool

	waitSince  sim.Time
	blockSince sim.Time
	onSince    sim.Time
}

// CPUStats is the per-CPU ledger: occupancy split by scheduling class.
type CPUStats struct {
	CPU       int
	Switches  uint64
	ClassTime [sched.NumClasses]sim.Duration

	currClass int
	since     sim.Time
	currID    int
}

// Busy reports non-idle occupancy.
func (c *CPUStats) Busy() sim.Duration {
	var busy sim.Duration
	for i, d := range c.ClassTime {
		if i != sched.ClassIdle {
			busy += d
		}
	}
	return busy
}

// Accounting threads per-task and per-CPU schedstat accounting through the
// kernel tracer hooks. It implements kernel.Tracer, kernel.KindTracer, and
// kernel.TaskTracer; attach it as Config.Tracer (or feed it a recorded
// event stream via Replay) and call Finish after the run.
type Accounting struct {
	Tasks []*TaskStats // dense, indexed by task ID; nil where never observed
	CPUs  []*CPUStats  // dense, indexed by CPU id

	// WaitHist is the all-class runnable-wait latency histogram, in
	// milliseconds; ClassWait splits it by scheduling class.
	WaitHist  *stats.Histogram
	ClassWait [sched.NumClasses]*stats.Histogram

	// OnWait, if non-nil, is called at every switch-in that closes a
	// runnable-wait interval, with the measured wait. The schedcheck
	// latency oracle hangs off this hook.
	OnWait func(now sim.Time, t *task.Task, cpu int, wait sim.Duration)

	last sim.Time
	done bool
}

// NewAccounting returns an empty ledger.
func NewAccounting() *Accounting {
	a := &Accounting{WaitHist: stats.NewHistogram(0, waitHistHiMs, waitHistBins)}
	for i := range a.ClassWait {
		a.ClassWait[i] = stats.NewHistogram(0, waitHistHiMs, waitHistBins)
	}
	return a
}

func (a *Accounting) touch(now sim.Time) {
	if now > a.last {
		a.last = now
	}
}

func (a *Accounting) taskOf(t *task.Task) *TaskStats {
	for len(a.Tasks) <= t.ID {
		a.Tasks = append(a.Tasks, nil)
	}
	ts := a.Tasks[t.ID]
	if ts == nil {
		ts = &TaskStats{ID: t.ID, Name: t.Name,
			waitSince: unset, blockSince: unset, onSince: unset}
		a.Tasks[t.ID] = ts
	}
	ts.Class = sched.ClassIndexFor(t.Policy) // follows sched_setscheduler
	return ts
}

func (a *Accounting) cpuOf(cpu int) *CPUStats {
	for len(a.CPUs) <= cpu {
		a.CPUs = append(a.CPUs, nil)
	}
	c := a.CPUs[cpu]
	if c == nil {
		// Before its first switch a CPU has idled since boot.
		c = &CPUStats{CPU: cpu, currClass: sched.ClassIdle}
		a.CPUs[cpu] = c
	}
	return c
}

// Switch implements kernel.Tracer. prev.State at this instant tells the
// cause of the switch-out: Runnable means preempted (the wait clock starts
// again immediately), Sleeping means blocked, Dead means exited.
func (a *Accounting) Switch(now sim.Time, cpu int, prev, next *task.Task) {
	a.touch(now)
	c := a.cpuOf(cpu)
	c.Switches++
	c.ClassTime[c.currClass] += now.Sub(c.since)
	c.currClass = sched.ClassIndexFor(next.Policy)
	c.currID = next.ID
	c.since = now

	if prev.Policy != task.Idle {
		pt := a.taskOf(prev)
		if pt.onSince != unset {
			pt.Run += now.Sub(pt.onSince)
			pt.onSince = unset
		}
		switch prev.State {
		case task.Runnable:
			pt.Preempt++
			pt.waitSince = now
		case task.Sleeping:
			pt.Yields++
			pt.blockSince = now
		case task.Dead:
			pt.Dead = true
		}
	}
	if next.Policy != task.Idle {
		nt := a.taskOf(next)
		nt.Slices++
		if nt.waitSince != unset {
			wait := now.Sub(nt.waitSince)
			nt.waitSince = unset
			nt.Wait += wait
			if wait > nt.WaitMax {
				nt.WaitMax = wait
			}
			ms := float64(wait) / 1e6
			a.WaitHist.Add(ms)
			a.ClassWait[nt.Class].Add(ms)
			if a.OnWait != nil {
				a.OnWait(now, next, cpu, wait)
			}
		}
		nt.onSince = now
	}
}

// Wake implements kernel.Tracer: close the block interval, open the wait
// interval. A task whose spin window expired while queued (BlockQueued)
// re-arms its wait clock here, discarding the stale anchor.
func (a *Accounting) Wake(now sim.Time, t *task.Task, cpu int) {
	a.touch(now)
	tt := a.taskOf(t)
	tt.Wakeups++
	if tt.blockSince != unset {
		tt.Block += now.Sub(tt.blockSince)
		tt.blockSince = unset
	}
	tt.waitSince = now
}

// Fork implements kernel.TaskTracer: a fork-time enqueue opens the task's
// first wait interval.
func (a *Accounting) Fork(now sim.Time, t *task.Task, cpu int) {
	a.touch(now)
	a.taskOf(t).waitSince = now
}

// Exit implements kernel.TaskTracer. The final run span is settled by the
// context switch that follows at the same instant.
func (a *Accounting) Exit(now sim.Time, t *task.Task) {
	a.touch(now)
	a.taskOf(t).Dead = true
}

// MigrateK implements kernel.KindTracer.
func (a *Accounting) MigrateK(now sim.Time, t *task.Task, from, to int, kind kernel.MigrateKind) {
	a.touch(now)
	a.taskOf(t).Migrations++
}

// Migrate implements kernel.Tracer (kinds arrive through MigrateK).
func (a *Accounting) Migrate(now sim.Time, t *task.Task, from, to int) {}

// Mark implements kernel.Tracer.
func (a *Accounting) Mark(now sim.Time, t *task.Task, label string) {}

// Replay feeds a recorded event stream through the ledger, so trace files
// written earlier can be tabulated offline (cmd/tracer stat reads a run
// live, but diffing pipelines tabulate from disk). Lifecycle context the
// live hooks read from *task.Task is reconstructed from the canonical
// fields.
func (a *Accounting) Replay(evs []Event) {
	st := func(name string) task.State {
		switch name {
		case "runnable":
			return task.Runnable
		case "sleeping":
			return task.Sleeping
		case "dead":
			return task.Dead
		default:
			return task.Running
		}
	}
	pol := func(name string) task.Policy {
		switch name {
		case "FIFO":
			return task.FIFO
		case "RR":
			return task.RR
		case "HPC":
			return task.HPC
		case "IDLE":
			return task.Idle
		default:
			return task.Normal
		}
	}
	polOf := func(taskName string) task.Policy {
		if strings.HasPrefix(taskName, "swapper") {
			return task.Idle
		}
		return task.Normal
	}
	// Replay tracks the policy each task last exhibited, so switch events
	// (which carry no policy) classify correctly.
	seen := make([]task.Policy, 0, 64)
	remember := func(id int, p task.Policy) {
		for len(seen) <= id {
			seen = append(seen, task.Normal)
		}
		seen[id] = p
	}
	policyAt := func(id int, name string) task.Policy {
		if id < len(seen) && !strings.HasPrefix(name, "swapper") {
			return seen[id]
		}
		return polOf(name)
	}
	for _, e := range evs {
		switch e.Ev {
		case KindSwitch:
			prev := &task.Task{ID: e.PID, Name: e.Prev,
				Policy: policyAt(e.PID, e.Prev), State: st(e.PState)}
			next := &task.Task{ID: e.NID, Name: e.Next,
				Policy: policyAt(e.NID, e.Next), State: task.Running}
			a.Switch(sim.Time(e.T), e.CPU, prev, next)
		case KindWake:
			a.Wake(sim.Time(e.T), &task.Task{ID: e.TID, Name: e.Task,
				Policy: policyAt(e.TID, e.Task)}, e.CPU)
		case KindFork:
			p := pol(e.Policy)
			remember(e.TID, p)
			a.Fork(sim.Time(e.T), &task.Task{ID: e.TID, Name: e.Task, Policy: p}, e.CPU)
		case KindExit:
			a.Exit(sim.Time(e.T), &task.Task{ID: e.TID, Name: e.Task,
				Policy: policyAt(e.TID, e.Task)})
		case KindMigrate:
			a.MigrateK(sim.Time(e.T), &task.Task{ID: e.TID, Name: e.Task,
				Policy: policyAt(e.TID, e.Task)}, e.From, e.To, 0)
		}
	}
}

// Finish settles open run spans and CPU occupancy at the last observed
// instant, so totals cover the whole trace. Call once, after the run.
func (a *Accounting) Finish() {
	if a.done {
		return
	}
	a.done = true
	for _, c := range a.CPUs {
		if c == nil {
			continue
		}
		c.ClassTime[c.currClass] += a.last.Sub(c.since)
		c.since = a.last
	}
	for _, ts := range a.Tasks {
		if ts == nil {
			continue
		}
		if ts.onSince != unset {
			ts.Run += a.last.Sub(ts.onSince)
			ts.onSince = unset
		}
	}
}

// End reports the last instant the ledger observed.
func (a *Accounting) End() sim.Time { return a.last }

// TaskAggregate sums TaskStats over a name-selected group of tasks.
type TaskAggregate struct {
	N                           int
	Run, Wait, Block            sim.Duration
	WaitMax                     sim.Duration
	Slices, Preempt, Migrations uint64
}

// Aggregate sums the stats of every task whose name starts with prefix
// (e.g. "rank" for the MPI ranks of a measured run).
func (a *Accounting) Aggregate(prefix string) TaskAggregate {
	var agg TaskAggregate
	for _, ts := range a.Tasks {
		if ts == nil || !strings.HasPrefix(ts.Name, prefix) {
			continue
		}
		agg.N++
		agg.Run += ts.Run
		agg.Wait += ts.Wait
		agg.Block += ts.Block
		if ts.WaitMax > agg.WaitMax {
			agg.WaitMax = ts.WaitMax
		}
		agg.Slices += ts.Slices
		agg.Preempt += ts.Preempt
		agg.Migrations += ts.Migrations
	}
	return agg
}

func ms(d sim.Duration) float64 { return float64(d) / 1e6 }

// TaskTable renders the per-task ledger, one row per non-idle task in ID
// order (dense IDs make the order deterministic without sorting).
func (a *Accounting) TaskTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %4s %-5s %12s %12s %12s %12s %7s %8s %6s %5s\n",
		"TASK", "ID", "CLASS", "RUN(ms)", "WAIT(ms)", "MAXWAIT(ms)", "BLOCK(ms)",
		"SLICES", "PREEMPT", "MIGR", "STATE")
	for _, ts := range a.Tasks {
		if ts == nil || ts.Class == sched.ClassIdle {
			continue
		}
		state := "live"
		if ts.Dead {
			state = "dead"
		}
		fmt.Fprintf(&b, "%-14s %4d %-5s %12.3f %12.3f %12.3f %12.3f %7d %8d %6d %5s\n",
			ts.Name, ts.ID, sched.ClassName(ts.Class),
			ms(ts.Run), ms(ts.Wait), ms(ts.WaitMax), ms(ts.Block),
			ts.Slices, ts.Preempt, ts.Migrations, state)
	}
	return b.String()
}

// CPUTable renders the per-CPU occupancy ledger.
func (a *Accounting) CPUTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %9s %12s %12s %12s %12s %7s\n",
		"CPU", "SWITCHES", "RT(ms)", "HPC(ms)", "CFS(ms)", "IDLE(ms)", "BUSY%")
	for _, c := range a.CPUs {
		if c == nil {
			continue
		}
		total := c.Busy() + c.ClassTime[sched.ClassIdle]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(c.Busy()) / float64(total)
		}
		fmt.Fprintf(&b, "cpu%-2d %9d %12.3f %12.3f %12.3f %12.3f %6.1f%%\n",
			c.CPU, c.Switches,
			ms(c.ClassTime[sched.ClassRT]), ms(c.ClassTime[sched.ClassHPC]),
			ms(c.ClassTime[sched.ClassCFS]), ms(c.ClassTime[sched.ClassIdle]), pct)
	}
	return b.String()
}

// WaitHistTable renders the scheduling-latency histogram.
func (a *Accounting) WaitHistTable() string {
	return a.WaitHist.Render(40, "runnable-wait latency (ms)")
}
