package schedstat_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
	"hplsim/internal/noise"
	"hplsim/internal/schedstat"
	"hplsim/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// collect runs one experiment with an in-memory collector attached and
// returns its full event stream.
func collect(opt experiments.Options) []schedstat.Event {
	col := schedstat.NewCollector()
	opt.Tracer = col
	experiments.Run(opt)
	return col.Events
}

func isA(t *testing.T) nas.Profile {
	t.Helper()
	prof, err := nas.Get("is", 'A')
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// window clips a stream to [lo, hi) so the committed goldens stay a few
// hundred lines while still covering a representative slice of the run.
func window(evs []schedstat.Event, lo, hi sim.Duration) []schedstat.Event {
	var out []schedstat.Event
	for _, e := range evs {
		if e.T >= int64(lo) && e.T < int64(hi) {
			out = append(out, e)
		}
	}
	return out
}

// onlyKinds keeps the listed event kinds, preserving order.
func onlyKinds(evs []schedstat.Event, kinds ...string) []schedstat.Event {
	keep := func(k string) bool {
		for _, want := range kinds {
			if k == want {
				return true
			}
		}
		return false
	}
	var out []schedstat.Event
	for _, e := range evs {
		if keep(e.Ev) {
			out = append(out, e)
		}
	}
	return out
}

// goldenCases are the three canonical scenarios of the regression suite.
// Each generator takes the tick mode so the suite can assert bitwise
// fast-forward equivalence on exactly the committed streams.
func goldenCases(t *testing.T) []struct {
	name string
	gen  func(fastForward bool) []schedstat.Event
} {
	prof := isA(t)
	return []struct {
		name string
		gen  func(fastForward bool) []schedstat.Event
	}{
		{
			// IS.A under the standard scheduler: daemons preempt ranks and
			// the balancer migrates them mid-run.
			name: "is_a_std",
			gen: func(ff bool) []schedstat.Event {
				evs := collect(experiments.Options{
					Profile: prof, Scheme: experiments.Std, Seed: 1, FastForward: ff})
				return window(evs, 150*sim.Millisecond, 550*sim.Millisecond)
			},
		},
		{
			// The same slice under HPL: ranks hold their CPUs, daemons
			// queue behind them.
			name: "is_a_hpl",
			gen: func(ff bool) []schedstat.Event {
				evs := collect(experiments.Options{
					Profile: prof, Scheme: experiments.HPL, Seed: 1, FastForward: ff})
				return window(evs, 150*sim.Millisecond, 550*sim.Millisecond)
			},
		},
		{
			// Ferreira-style injected noise under HPL: FIFO injectors
			// preempt the ranks at 100 Hz.
			name: "noise_injection",
			gen: func(ff bool) []schedstat.Event {
				evs := collect(experiments.Options{
					Profile: prof, Scheme: experiments.HPL, Seed: 1, FastForward: ff,
					Inject: noise.Injection{Frequency: 100, Duration: 250 * sim.Microsecond}})
				return window(evs, 150*sim.Millisecond, 350*sim.Millisecond)
			},
		},
		{
			// The task lifecycle view of an HPL run: every fork with its
			// placement migration (one per rank, spread over the topology)
			// and every exit.
			name: "fork_placement",
			gen: func(ff bool) []schedstat.Event {
				evs := collect(experiments.Options{
					Profile: prof, Scheme: experiments.HPL, Seed: 1, FastForward: ff,
					NoStorms: true})
				return onlyKinds(evs, schedstat.KindFork, schedstat.KindMigrate, schedstat.KindExit)
			},
		},
	}
}

// TestGoldenTraces pins the canonical JSONL streams byte for byte. On
// drift it prints the structured diff; regenerate deliberately with
// `go test ./internal/schedstat -run TestGoldenTraces -update`.
func TestGoldenTraces(t *testing.T) {
	for _, c := range goldenCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join("testdata", c.name+".jsonl")
			got := schedstat.Marshal(c.gen(false))
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if !bytes.Equal(got, want) {
				wantEvs, rerr := schedstat.ReadTrace(bytes.NewReader(want))
				if rerr != nil {
					t.Fatalf("golden drifted and the committed file does not parse: %v", rerr)
				}
				gotEvs, _ := schedstat.ReadTrace(bytes.NewReader(got))
				diffs := schedstat.Diff(wantEvs, gotEvs, 10)
				t.Fatalf("trace drifted from golden %s (-update to accept):\n%s",
					path, strings.Join(diffs, "\n"))
			}

			// The committed stream must be a fixed point of the canonical
			// encoding: read it back and re-marshal.
			evs, err := schedstat.ReadTrace(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("golden does not parse: %v", err)
			}
			if again := schedstat.Marshal(evs); !bytes.Equal(again, want) {
				t.Fatal("golden is not canonical: read∘write changed bytes")
			}
		})
	}
}

// TestGoldenTracesFastForward asserts the tentpole equivalence claim on
// the committed scenarios: eliding quiescent ticks must not move, add, or
// drop a single trace event.
func TestGoldenTracesFastForward(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs every golden scenario in both tick modes")
	}
	for _, c := range goldenCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			std := schedstat.Marshal(c.gen(false))
			ff := schedstat.Marshal(c.gen(true))
			if !bytes.Equal(std, ff) {
				stdEvs, _ := schedstat.ReadTrace(bytes.NewReader(std))
				ffEvs, _ := schedstat.ReadTrace(bytes.NewReader(ff))
				t.Fatalf("fast-forward changed the trace:\n%s",
					strings.Join(schedstat.Diff(stdEvs, ffEvs, 10), "\n"))
			}
		})
	}
}
