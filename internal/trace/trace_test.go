package trace

import (
	"strings"
	"testing"

	"hplsim/internal/sim"
	"hplsim/internal/task"
)

func mk(name string) *task.Task { return &task.Task{Name: name} }

func TestSpansRecorded(t *testing.T) {
	r := NewRecorder()
	a, b := mk("a"), mk("b")
	r.Switch(0, 0, mk("swapper/0"), a)
	r.Switch(sim.Time(10*sim.Millisecond), 0, a, b)
	r.Switch(sim.Time(15*sim.Millisecond), 0, b, a)
	r.Close(sim.Time(20 * sim.Millisecond))

	spans := r.TaskSpans("a")
	if len(spans) != 2 {
		t.Fatalf("a spans = %d, want 2", len(spans))
	}
	if spans[0].Start != 0 || spans[0].End != sim.Time(10*sim.Millisecond) {
		t.Fatalf("first span = %+v", spans[0])
	}
	if spans[1].End != sim.Time(20*sim.Millisecond) {
		t.Fatalf("Close did not flush: %+v", spans[1])
	}
	bs := r.TaskSpans("b")
	if len(bs) != 1 || bs[0].Start != sim.Time(10*sim.Millisecond) {
		t.Fatalf("b spans = %+v", bs)
	}
}

func TestEventsRecorded(t *testing.T) {
	r := NewRecorder()
	a := mk("rank0")
	r.Wake(sim.Time(sim.Millisecond), a, 3)
	r.Migrate(sim.Time(2*sim.Millisecond), a, 3, 5)
	r.Mark(sim.Time(3*sim.Millisecond), a, "arrive:0")
	r.Mark(sim.Time(4*sim.Millisecond), a, "release:0")
	if len(r.Evs) != 4 {
		t.Fatalf("events = %d, want 4", len(r.Evs))
	}
	marks := r.Marks("arrive")
	if len(marks) != 1 || marks[0].Label != "arrive:0" {
		t.Fatalf("Marks = %+v", marks)
	}
}

func TestGanttRendering(t *testing.T) {
	r := NewRecorder()
	a := mk("rank1")
	r.Switch(0, 2, mk("swapper/2"), a)
	r.Switch(sim.Time(50*sim.Millisecond), 2, a, mk("swapper/2"))
	r.Close(sim.Time(100 * sim.Millisecond))

	out := r.Gantt(0, sim.Time(100*sim.Millisecond), 10)
	if !strings.Contains(out, "cpu2") {
		t.Fatalf("missing cpu row:\n%s", out)
	}
	// First half busy with rank1 ('1'), second half idle ('.').
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "cpu2") {
			line = l
		}
	}
	if !strings.Contains(line, "11111") || !strings.Contains(line, ".....") {
		t.Fatalf("cpu2 row wrong: %q", line)
	}
}

func TestGanttEmptyWindow(t *testing.T) {
	r := NewRecorder()
	if r.Gantt(10, 10, 5) != "" || r.Gantt(0, 10, 0) != "" {
		t.Fatal("degenerate windows should render empty")
	}
}

func TestGlyph(t *testing.T) {
	cases := map[string]byte{
		"rank3":     '3',
		"daemon":    'd',
		"kswapd":    'k',
		"storm-12":  '2',
		"swapper/0": '0', // filtered before rendering, but glyph is defined
	}
	for name, want := range cases {
		if got := glyph(name); got != want {
			t.Fatalf("glyph(%q) = %c, want %c", name, got, want)
		}
	}
	if glyph("") != '?' {
		t.Fatal("empty glyph")
	}
}

func TestSwitchOpensNewSpanPerCPU(t *testing.T) {
	r := NewRecorder()
	a, b := mk("a"), mk("b")
	r.Switch(0, 0, mk("swapper/0"), a)
	r.Switch(0, 1, mk("swapper/1"), b)
	r.Close(sim.Time(sim.Millisecond))
	if len(r.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (one per CPU)", len(r.Spans))
	}
	cpus := map[int]bool{}
	for _, s := range r.Spans {
		cpus[s.CPU] = true
	}
	if !cpus[0] || !cpus[1] {
		t.Fatal("per-CPU spans wrong")
	}
}

func TestCloseDropsZeroLengthSpans(t *testing.T) {
	r := NewRecorder()
	a := mk("a")
	r.Switch(0, 0, mk("swapper/0"), a)
	// A switch at the exact close instant leaves a span opened at t=now;
	// Close must not emit it as a zero-length phantom.
	now := sim.Time(10 * sim.Millisecond)
	r.Switch(now, 0, a, mk("b"))
	r.Close(now)
	if len(r.Spans) != 1 {
		t.Fatalf("spans = %+v, want only a's real span", r.Spans)
	}
	if r.Spans[0].Task != "a" || r.Spans[0].End != now {
		t.Fatalf("surviving span = %+v", r.Spans[0])
	}
	for _, s := range r.Spans {
		if s.End <= s.Start {
			t.Fatalf("phantom span after Close: %+v", s)
		}
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	r := NewRecorder()
	r.Switch(0, 0, mk("swapper/0"), mk("a"))
	r.Close(sim.Time(5 * sim.Millisecond))
	n := len(r.Spans)
	r.Close(sim.Time(9 * sim.Millisecond))
	if len(r.Spans) != n {
		t.Fatalf("second Close added spans: %d -> %d", n, len(r.Spans))
	}
}

func TestTaskSpansDeterministicOrder(t *testing.T) {
	r := NewRecorder()
	// Two equal-start spans for the same task on different CPUs, inserted
	// in descending CPU order; the sort tiebreak must normalise them.
	r.Spans = []Span{
		{CPU: 3, Task: "a", Start: 0, End: sim.Time(2 * sim.Millisecond)},
		{CPU: 1, Task: "a", Start: 0, End: sim.Time(2 * sim.Millisecond)},
		{CPU: 2, Task: "a", Start: 0, End: sim.Time(sim.Millisecond)},
	}
	got := r.TaskSpans("a")
	if got[0].CPU != 2 || got[1].CPU != 1 || got[2].CPU != 3 {
		t.Fatalf("tiebreak order wrong: %+v", got)
	}
}

func TestTaskSpansOverlappingWindows(t *testing.T) {
	r := NewRecorder()
	a, b := mk("a"), mk("b")
	// a runs [0,10ms) on cpu0 while also appearing on cpu1 [5ms,15ms) —
	// impossible in the kernel but the recorder is a passive sink and must
	// report both spans faithfully, in deterministic order.
	r.Switch(0, 0, mk("swapper/0"), a)
	r.Switch(sim.Time(5*sim.Millisecond), 1, mk("swapper/1"), a)
	r.Switch(sim.Time(10*sim.Millisecond), 0, a, b)
	r.Switch(sim.Time(15*sim.Millisecond), 1, a, mk("swapper/1"))
	r.Close(sim.Time(20 * sim.Millisecond))

	got := r.TaskSpans("a")
	if len(got) != 2 {
		t.Fatalf("a spans = %+v, want 2", got)
	}
	if got[0].CPU != 0 || got[0].Start != 0 || got[0].End != sim.Time(10*sim.Millisecond) {
		t.Fatalf("first overlapping span = %+v", got[0])
	}
	if got[1].CPU != 1 || got[1].Start != sim.Time(5*sim.Millisecond) || got[1].End != sim.Time(15*sim.Millisecond) {
		t.Fatalf("second overlapping span = %+v", got[1])
	}
}
