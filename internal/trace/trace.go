// Package trace records scheduling timelines and renders them as text
// Gantt charts. It reproduces the paper's Figure 1: the effect of a single
// process preemption on a parallel application that synchronises at
// barriers — one delayed rank holds every other rank at the barrier.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// Span is a contiguous interval during which a task occupied a CPU.
type Span struct {
	CPU   int
	Task  string
	Start sim.Time
	End   sim.Time
}

// Event is a point event (wakeup, migration, barrier mark).
type Event struct {
	At    sim.Time
	Task  string
	Kind  string
	Label string
}

// Recorder implements kernel.Tracer, collecting spans and events.
type Recorder struct {
	// open tracks the running task per CPU and when it started.
	open  map[int]openSpan
	Spans []Span
	Evs   []Event
}

type openSpan struct {
	name  string
	start sim.Time
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[int]openSpan)}
}

// Switch implements kernel.Tracer.
func (r *Recorder) Switch(now sim.Time, cpu int, prev, next *task.Task) {
	if o, ok := r.open[cpu]; ok {
		r.Spans = append(r.Spans, Span{CPU: cpu, Task: o.name, Start: o.start, End: now})
	}
	r.open[cpu] = openSpan{name: next.Name, start: now}
}

// Migrate implements kernel.Tracer.
func (r *Recorder) Migrate(now sim.Time, t *task.Task, from, to int) {
	r.Evs = append(r.Evs, Event{At: now, Task: t.Name, Kind: "migrate",
		Label: fmt.Sprintf("cpu%d->cpu%d", from, to)})
}

// Wake implements kernel.Tracer.
func (r *Recorder) Wake(now sim.Time, t *task.Task, cpu int) {
	r.Evs = append(r.Evs, Event{At: now, Task: t.Name, Kind: "wake",
		Label: fmt.Sprintf("cpu%d", cpu)})
}

// Mark implements kernel.Tracer.
func (r *Recorder) Mark(now sim.Time, t *task.Task, label string) {
	r.Evs = append(r.Evs, Event{At: now, Task: t.Name, Kind: "mark", Label: label})
}

// Close flushes still-open spans at the given end time. A span whose start
// is not strictly before now would render as a zero-length (or, if the
// caller passes a stale timestamp, negative) phantom; those are dropped
// rather than recorded.
func (r *Recorder) Close(now sim.Time) {
	cpus := make([]int, 0, len(r.open))
	for cpu := range r.open {
		cpus = append(cpus, cpu)
	}
	sort.Ints(cpus)
	for _, cpu := range cpus {
		o := r.open[cpu]
		if o.start >= now {
			continue
		}
		r.Spans = append(r.Spans, Span{CPU: cpu, Task: o.name, Start: o.start, End: now})
	}
	r.open = make(map[int]openSpan)
}

// Gantt renders the recorded spans between lo and hi as one text row per
// CPU, with `cols` character cells. Each cell shows the first letter of the
// task that occupied most of the cell ('.' for idle).
func (r *Recorder) Gantt(lo, hi sim.Time, cols int) string {
	if hi <= lo || cols <= 0 {
		return ""
	}
	// Collect CPUs.
	cpuSet := map[int]bool{}
	for _, s := range r.Spans {
		cpuSet[s.CPU] = true
	}
	cpus := make([]int, 0, len(cpuSet))
	for cpu := range cpuSet {
		cpus = append(cpus, cpu)
	}
	sort.Ints(cpus)

	cell := float64(hi-lo) / float64(cols)
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (1 cell = %v)\n", lo, hi,
		sim.Duration(cell))
	for _, cpu := range cpus {
		row := make([]byte, cols)
		occupancy := make([]float64, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range r.Spans {
			if s.CPU != cpu || s.End <= lo || s.Start >= hi {
				continue
			}
			if strings.HasPrefix(s.Task, "swapper") {
				continue
			}
			start, end := s.Start, s.End
			if start < lo {
				start = lo
			}
			if end > hi {
				end = hi
			}
			c0 := int(float64(start-lo) / cell)
			c1 := int(float64(end-lo) / cell)
			for c := c0; c <= c1 && c < cols; c++ {
				cellLo := lo.Add(sim.Duration(float64(c) * cell))
				cellHi := lo.Add(sim.Duration(float64(c+1) * cell))
				ov := overlap(start, end, cellLo, cellHi)
				if ov > occupancy[c] {
					occupancy[c] = ov
					row[c] = glyph(s.Task)
				}
			}
		}
		fmt.Fprintf(&b, "cpu%-2d |%s|\n", cpu, string(row))
	}
	return b.String()
}

func overlap(a0, a1, b0, b1 sim.Time) float64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return float64(hi - lo)
}

// glyph picks a display character for a task name: the trailing digit of
// rank names ("rank3" -> '3'), otherwise the first letter.
func glyph(name string) byte {
	if name == "" {
		return '?'
	}
	last := name[len(name)-1]
	if last >= '0' && last <= '9' {
		return last
	}
	return name[0]
}

// TaskSpans returns the spans of one task, sorted by start time.
func (r *Recorder) TaskSpans(name string) []Span {
	var out []Span
	for _, s := range r.Spans {
		if s.Task == name {
			out = append(out, s)
		}
	}
	// Tiebreak on (End, CPU) so equal-start spans — e.g. the same task
	// bouncing between CPUs at one instant — sort deterministically.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].CPU < out[j].CPU
	})
	return out
}

// Marks returns all mark events with the given label prefix.
func (r *Recorder) Marks(prefix string) []Event {
	var out []Event
	for _, e := range r.Evs {
		if e.Kind == "mark" && strings.HasPrefix(e.Label, prefix) {
			out = append(out, e)
		}
	}
	return out
}
