package walltime

import "testing"

func TestStopwatch(t *testing.T) {
	sw := Start()
	d := sw.Elapsed()
	if d < 0 {
		t.Fatalf("Elapsed went backwards: %v", d)
	}
	if d2 := sw.Elapsed(); d2 < d {
		t.Fatalf("Elapsed not monotonic: %v then %v", d, d2)
	}
	if sw.Seconds() < 0 {
		t.Fatalf("Seconds negative")
	}
}
