// Package walltime is the only place the repository may read the host
// wall clock. Simulation results must be a pure function of (config, seed):
// schedlint bans time.Now and time.Since everywhere else, so host-side
// timing (progress reporting, benchmark harnesses) routes through the
// Stopwatch here and a stray wall-clock read in simulation code fails CI
// instead of silently breaking reproducibility.
package walltime

import "time"

// Stopwatch marks a start instant on the host clock. The zero value is not
// meaningful; obtain one with Start.
type Stopwatch struct {
	start time.Time
}

// Start begins timing host wall-clock elapsed time.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed reports the host time since Start.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}

// Seconds reports the elapsed host time in seconds.
func (s Stopwatch) Seconds() float64 {
	return s.Elapsed().Seconds()
}
