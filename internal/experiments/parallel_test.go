package experiments

import (
	"reflect"
	"testing"

	"hplsim/internal/nas"
)

// TestRunManyWorkerCountInvariance is the determinism contract of the
// parallel replication harness: the same Options must produce deeply equal
// results at every worker count. Any mutable state leaking between
// concurrently running kernels (a shared RNG, a package-level counter, an
// aliased slice) shows up here as a diff — and under `go test -race` as a
// report.
func TestRunManyWorkerCountInvariance(t *testing.T) {
	opt := Options{Profile: nas.MustGet("is", 'A'), Scheme: Std, Seed: 77}
	const reps = 6
	seq := RunManyOpt(opt, reps, 1)
	for _, workers := range []int{2, 8} {
		par := RunManyOpt(opt, reps, workers)
		if !reflect.DeepEqual(seq, par) {
			for i := range seq {
				if !reflect.DeepEqual(seq[i], par[i]) {
					t.Errorf("workers=%d rep %d diverged:\nseq: %+v\npar: %+v",
						workers, i, seq[i], par[i])
				}
			}
			t.Fatalf("workers=%d results differ from sequential", workers)
		}
	}
}

// TestRunManyWorkerCountInvarianceHPL repeats the check under the HPC
// class (different balancer and placement paths) with storms suppressed,
// so both major scheduler configurations are covered.
func TestRunManyWorkerCountInvarianceHPL(t *testing.T) {
	opt := Options{Profile: nas.MustGet("cg", 'A'), Scheme: HPL, Seed: 78, NoStorms: true}
	const reps = 4
	seq := RunManyOpt(opt, reps, 1)
	par := RunManyOpt(opt, reps, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("HPL results depend on the worker count")
	}
}

// TestRunManyDefaultsMatchExplicit checks the Options.Workers plumbing:
// RunMany(opt) honours opt.Workers and equals the explicit RunManyOpt call.
func TestRunManyDefaultsMatchExplicit(t *testing.T) {
	opt := Options{Profile: nas.MustGet("is", 'A'), Scheme: HPL, Seed: 79}
	opt.Workers = 3
	a := RunMany(opt, 3)
	b := RunManyOpt(opt, 3, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunMany(opt) does not match RunManyOpt(opt, reps, opt.Workers)")
	}
}

// TestCollectNodeSampleWorkerInvariance extends the contract to the
// cluster sampling path: the empirical distribution handed to the
// resonance study must not depend on the worker count.
func TestCollectNodeSampleWorkerInvariance(t *testing.T) {
	prof := nas.MustGet("is", 'A')
	seq := CollectNodeSample(prof, Std, 4, 80, 1)
	par := CollectNodeSample(prof, Std, 4, 80, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("node sample depends on the worker count")
	}
}
