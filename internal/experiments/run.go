// Package experiments reproduces the paper's measurement methodology and
// each of its tables and figures.
//
// A single Run boots a fresh simulated node with the standard daemon
// population and storm process, then executes the paper's command chain
//
//	perf stat -a  ->  chrt --hpc  ->  mpiexec -n 8  ->  ranks
//
// recording the NAS-reported execution time and the perf window's context
// switches and CPU migrations. The scheduler scheme selects the paper's
// configurations: standard CFS, the RT scheduler (Figure 4), HPL (the
// contribution), and the alternatives Section IV argues against (static
// pinning, nice -20) plus the ablations in DESIGN.md.
package experiments

import (
	"fmt"

	"hplsim/internal/kernel"
	"hplsim/internal/mpi"
	"hplsim/internal/nas"
	"hplsim/internal/noise"
	"hplsim/internal/perf"
	"hplsim/internal/pool"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// Scheme selects the scheduler configuration of a run.
type Scheme int

const (
	// Std is the unmodified kernel: ranks under CFS, standard balancing.
	Std Scheme = iota
	// RT runs the ranks under SCHED_RR priority 50 via chrt -r
	// (Figure 4).
	RT
	// HPL is the paper's system: ranks in the HPC class, fork-time
	// topology-aware placement, no dynamic balancing while HPC tasks
	// are alive.
	HPL
	// HPLDynamic is ablation A1: the HPC class with dynamic balancing
	// left enabled for all classes.
	HPLDynamic
	// HPLNaive is ablation A2: HPL with first-fit placement instead of
	// the topology-aware spread.
	HPLNaive
	// Pinned is CFS with each rank bound to one hardware thread via
	// sched_setaffinity (the static alternative of Section IV).
	Pinned
	// Nice is CFS with ranks at nice -20 (the priority alternative of
	// Section IV).
	Nice
	// CNK models the lightweight-kernel gold standard of the paper's
	// related work (IBM's Compute Node Kernel): a dedicated compute
	// node with no daemon population, no maintenance storms, no
	// launcher helpers, and only a housekeeping tick. It bounds the
	// best any scheduler policy could do, quantifying the paper's claim
	// that HPL makes a monolithic kernel "behave like a micro-kernel".
	CNK
)

func (s Scheme) String() string {
	switch s {
	case Std:
		return "std"
	case RT:
		return "rt"
	case HPL:
		return "hpl"
	case HPLDynamic:
		return "hpl-dynamic"
	case HPLNaive:
		return "hpl-naive"
	case Pinned:
		return "pinned"
	case Nice:
		return "nice"
	case CNK:
		return "cnk"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists all runnable schemes.
func Schemes() []Scheme {
	return []Scheme{Std, RT, HPL, HPLDynamic, HPLNaive, Pinned, Nice, CNK}
}

// Options parameterise one run.
type Options struct {
	Profile nas.Profile
	Scheme  Scheme
	Seed    uint64
	// Topo overrides the machine topology (zero value = the paper's
	// POWER6 2x2x2). Wide nodes (e.g. 4x128x2) are fully supported; the
	// rank count still comes from the NAS profile, so oversubscription
	// or undersubscription follows from the topology choice.
	Topo topo.Topology
	// HZ overrides the tick frequency (0 = default 250).
	HZ int
	// AdaptiveTick enables the NETTICK-style housekeeping tick for lone
	// HPC tasks (Section V).
	AdaptiveTick bool
	// FastForward enables the kernel's virtual-time fast-forward: ticks
	// that provably decide nothing are replayed in batch instead of being
	// dispatched. Trace-equivalent to the default mode (the schedcheck
	// fast-forward oracle enforces it); changes only wall-clock cost and
	// the engine traffic metrics.
	FastForward bool
	// Naive selects the kernel's reference implementations of the wide-node
	// hot paths (linear lane scans, full-topology balance sweeps, per-CPU
	// tick catch-up): scheduling behaviour is identical, only the host cost
	// changes. It exists so BENCH_scale.json can record the pre-optimization
	// baseline alongside the optimized runs.
	Naive bool
	// Shards partitions one run's CPUs into chip-aligned shards replayed
	// on parallel host workers during fast-forward catch-up (kernel
	// Config.Shards). 0 or 1 = sequential; results are bitwise identical
	// at any value. Unlike Workers, which parallelizes across
	// replications, Shards parallelizes inside a single run.
	Shards int
	// ShardGrain overrides the minimum catch-up size that fans out over
	// the shard gang (kernel Config.ShardGrain): 0 = the kernel default,
	// 1 = every eligible catch-up. Bitwise-identical results at any
	// grain; the equivalence harnesses use 1 to exercise the parallel
	// path on workloads with naturally small catch-ups.
	ShardGrain int
	// NoDaemons suppresses the background daemon population.
	NoDaemons bool
	// NoStorms suppresses the heavy-storm process.
	NoStorms bool
	// Storms overrides the storm configuration (nil = default).
	Storms *noise.StormConfig
	// Inject adds Ferreira-style fixed noise (resonance studies).
	Inject noise.Injection
	// Tracer, if set, records the run's timeline.
	Tracer kernel.Tracer
	// SpinThreshold overrides the MPI spin window (0 = default).
	SpinThreshold sim.Duration
	// Horizon caps the virtual runtime (0 = automatic).
	Horizon sim.Duration
	// Workers bounds the replication worker pool used by RunMany:
	// 0 = GOMAXPROCS, 1 = sequential. Results are independent of the
	// worker count (see RunManyOpt).
	Workers int
}

// Result is the outcome of one measured run.
type Result struct {
	// ElapsedSec is the NAS-reported execution time: rank launch to last
	// rank exit, in seconds.
	ElapsedSec float64
	// Window holds the perf event deltas over the measurement window.
	Window perf.Counters
	// Completed is false if the run hit the horizon (censored).
	Completed bool
	// IterationSec are the gaps between successive collective releases,
	// i.e. the per-iteration wall times seen by the barrier (used by the
	// cluster resonance study).
	IterationSec []float64
	// Sched are the scheduler's decision counters over the whole run.
	Sched sched.Stats
	// Energy is the node's integrated energy over the whole run.
	Energy kernel.EnergyReport
	// EventsDispatched counts heap events the engine dispatched over the
	// whole run (timer-lane firings are separate, in LaneFires); with
	// TicksCoalesced and VirtualSec it quantifies what fast-forward saves.
	EventsDispatched uint64
	// LaneFires counts timer-lane firings (delivered ticks).
	LaneFires uint64
	// TicksCoalesced counts ticks settled by fast-forward replay instead
	// of dispatch (0 in standard mode).
	TicksCoalesced uint64
	// ShardPhases counts catch-ups that fanned out over the shard gang
	// (0 on sequential configurations). A host-side execution-strategy
	// diagnostic, not a simulated observable: it is excluded from every
	// equivalence comparison, and exists so tests and BENCH_shard.json
	// can prove the parallel path ran.
	ShardPhases uint64
	// VirtualSec is the virtual time the run covered, in seconds.
	VirtualSec float64
}

// EventsPerVirtualSec is the engine traffic rate: dispatched heap events
// plus delivered ticks per simulated second — the quantity fast-forward
// exists to shrink.
func (r Result) EventsPerVirtualSec() float64 {
	if r.VirtualSec <= 0 {
		return 0
	}
	return float64(r.EventsDispatched+r.LaneFires) / r.VirtualSec
}

// Migrations is shorthand for the window's migration count.
func (r Result) Migrations() float64 { return float64(r.Window.Migrations) }

// CtxSwitches is shorthand for the window's context-switch count.
func (r Result) CtxSwitches() float64 { return float64(r.Window.ContextSwitches) }

// launchDelay is when the perf command starts after boot, leaving the
// daemon population time to reach steady state.
const launchDelay = 150 * sim.Millisecond

// Run executes one full measured run.
func Run(opt Options) Result {
	prof := opt.Profile

	balance := sched.BalanceStandard
	switch opt.Scheme {
	case HPL, HPLNaive, CNK:
		balance = sched.BalanceHPL
	case HPLDynamic:
		balance = sched.BalanceHPLDynamic
	}
	if opt.Scheme == CNK {
		// A dedicated compute-node kernel: nothing else on the node.
		opt.NoDaemons = true
		opt.NoStorms = true
		opt.AdaptiveTick = true
	}

	k := kernel.New(kernel.Config{
		Topo:              opt.Topo,
		HZ:                opt.HZ,
		Balance:           balance,
		HPCNaivePlacement: opt.Scheme == HPLNaive,
		AdaptiveTick:      opt.AdaptiveTick,
		FastForward:       opt.FastForward,
		Naive:             opt.Naive,
		Shards:            opt.Shards,
		ShardGrain:        opt.ShardGrain,
		Seed:              opt.Seed,
		Tracer:            opt.Tracer,
	})

	if !opt.NoDaemons {
		noise.SpawnSystem(k, k.RNG(100))
	}
	if !opt.NoStorms {
		storms := noise.DefaultStorms()
		if opt.Storms != nil {
			storms = *opt.Storms
		}
		storms.Arm(k, k.RNG(101))
	}
	if opt.Inject.Frequency > 0 {
		opt.Inject.Arm(k, k.RNG(102))
	}

	// Scheduler scheme for the measured processes.
	rankPolicy, rankRTPrio, rankNice := task.Normal, 0, 0
	toolPolicy, toolRTPrio := task.Normal, 0
	switch opt.Scheme {
	case RT:
		rankPolicy, rankRTPrio = task.RR, 50
		toolPolicy, toolRTPrio = task.RR, 50
	case HPL, HPLDynamic, HPLNaive, CNK:
		rankPolicy = task.HPC
		toolPolicy = task.HPC
	case Nice:
		rankNice = -20
	}

	wcfg := prof.WorldConfig(rankPolicy, rankRTPrio, opt.SpinThreshold)
	wcfg.Nice = rankNice
	if opt.Scheme == Pinned {
		pins := make([]int, k.Topo.NumCPUs())
		for i := range pins {
			pins[i] = i
		}
		wcfg.PinCPUs = pins
	}

	world := mpi.NewWorld(k, wcfg)
	program := prof.Program(k.RNG(103))

	var res Result
	var window *perf.Window
	appDone := false
	world.OnComplete = func() { appDone = true }

	// The measurement chain: perf -> chrt -> mpiexec -> ranks.
	k.Spawn(nil, kernel.Attr{Name: "perf"}, func(pp *kernel.Proc) {
		pp.Sleep(launchDelay, func() {
			pp.Compute(2*sim.Millisecond, func() {
				// perf stat -a: the system-wide window opens just
				// before the measured command is forked.
				window = perf.Open(&k.Perf)
				pp.Spawn(kernel.Attr{Name: "chrt", Policy: toolPolicy, RTPrio: toolRTPrio},
					func(cp *kernel.Proc) {
						cp.Compute(sim.Millisecond, func() {
							runMpiexec(k, cp, world, program, toolPolicy, toolRTPrio,
								opt.Scheme == CNK, &appDone)
							cp.WaitChildren(func() {
								cp.Compute(500*sim.Microsecond, func() { cp.Exit() })
							})
						})
					})
				pp.WaitChildren(func() {
					// chrt exited: close the window and report.
					pp.Compute(sim.Millisecond, func() {
						res.Window = window.Close()
						res.Completed = true
						pp.Exit()
						// Small drain so teardown switches settle,
						// then end the run.
						k.Eng.After(20*sim.Millisecond, k.Stop)
					})
				})
			})
		})
	})

	horizon := opt.Horizon
	if horizon == 0 {
		horizon = sim.Seconds(prof.TargetSeconds*150) + 240*sim.Second
	}
	k.Run(sim.Time(horizon))

	if !res.Completed && window != nil {
		res.Window = window.Close()
	}
	if world.Elapsed() > 0 {
		res.ElapsedSec = world.Elapsed().Seconds()
	} else {
		// Censored: the app never finished within the horizon.
		res.ElapsedSec = horizon.Seconds()
	}
	if n := len(world.ReleaseTimes); n > 1 {
		res.IterationSec = make([]float64, 0, n-1)
		for i := 1; i < n; i++ {
			res.IterationSec = append(res.IterationSec,
				world.ReleaseTimes[i].Sub(world.ReleaseTimes[i-1]).Seconds())
		}
	}
	res.Sched = k.Sched.Stats()
	res.Energy = k.Energy()
	res.EventsDispatched = k.Eng.Dispatched
	res.LaneFires = k.Eng.LaneFires
	res.TicksCoalesced = k.Perf.TicksCoalesced
	res.ShardPhases = k.ShardPhases()
	res.VirtualSec = sim.Duration(k.Now()).Seconds()
	return res
}

// runMpiexec models the launcher: it forks short-lived helper processes
// (the launch/teardown noise of Table Ib's constant baseline), starts the
// ranks, and polls its children's stdio until they finish, like a real
// mpiexec. The poller is the "ninth task" whose RT-class wakeups trigger
// the balancing pathology of Section IV.
func runMpiexec(k *kernel.Kernel, chrt *kernel.Proc, world *mpi.World,
	program mpi.Program, policy task.Policy, rtprio int, noHelpers bool, appDone *bool) {

	chrt.Spawn(kernel.Attr{Name: "mpiexec", Policy: policy, RTPrio: rtprio},
		func(mp *kernel.Proc) {
			mp.Compute(2*sim.Millisecond, func() {
				// Launch helpers (CFS regardless of the app class)
				// and the ranks. A dedicated CNK node has no helper
				// processes.
				if !noHelpers {
					noise.LauncherNoise(k, mp.T, 3, k.RNG(104))
				}
				world.Launch(mp, program)
				// stdio poll loop until the ranks are done.
				poll := k.RNG(105)
				var cycle func()
				cycle = func() {
					if *appDone {
						mp.WaitChildren(func() {
							mp.Compute(sim.Millisecond, func() { mp.Exit() })
						})
						return
					}
					mp.Sleep(poll.Jitter(3*sim.Second, 0.2), func() {
						mp.Compute(300*sim.Microsecond, cycle)
					})
				}
				cycle()
			})
		})
}

// RunMany performs reps independent runs with derived seeds, fanned out
// over opt.Workers goroutines (0 = GOMAXPROCS). It is shorthand for
// RunManyOpt(opt, reps, opt.Workers).
func RunMany(opt Options, reps int) []Result {
	return RunManyOpt(opt, reps, opt.Workers)
}

// RunManyOpt performs reps independent runs with derived seeds over a
// bounded worker pool. workers <= 0 selects GOMAXPROCS; workers == 1 runs
// strictly sequentially on the calling goroutine.
//
// Determinism contract: every rep builds its own kernel.Kernel and
// sim.Engine from a seed that is a pure function of (opt.Seed, rep index),
// shares no mutable state with its siblings, and writes its Result into the
// slot picked by its index — so the returned slice is bitwise identical to
// a sequential run regardless of the worker count (enforced by
// TestRunManyWorkerCountInvariance and `go test -race`).
//
// A non-nil opt.Tracer forces workers to 1: a tracer is a single timeline
// and interleaving runs into it would be meaningless.
func RunManyOpt(opt Options, reps, workers int) []Result {
	if opt.Tracer != nil {
		workers = 1
	}
	out := make([]Result, reps)
	pool.ForN(reps, workers, func(i int) {
		o := opt
		o.Seed = opt.Seed + uint64(i)*0x9e37
		out[i] = Run(o)
	})
	return out
}
