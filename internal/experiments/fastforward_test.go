package experiments

import (
	"testing"

	"hplsim/internal/nas"
)

// TestFastForwardRunEquivalence runs the full measurement chain (daemons,
// storms, perf window, launcher noise) in both tick modes: every reported
// observable must match bitwise; only the engine traffic may differ.
func TestFastForwardRunEquivalence(t *testing.T) {
	for _, scheme := range []Scheme{Std, HPL, CNK} {
		opt := Options{Profile: nas.MustGet("is", 'A'), Scheme: scheme, Seed: 90}
		std := Run(opt)
		opt.FastForward = true
		ff := Run(opt)

		if std.ElapsedSec != ff.ElapsedSec {
			t.Errorf("%v: elapsed %v vs %v", scheme, std.ElapsedSec, ff.ElapsedSec)
		}
		w1, w2 := std.Window, ff.Window
		w1.TicksCoalesced, w2.TicksCoalesced = 0, 0
		if w1 != w2 {
			t.Errorf("%v: perf window diverges:\n std %+v\n ff  %+v", scheme, w1, w2)
		}
		if std.Sched != ff.Sched {
			t.Errorf("%v: sched stats diverge:\n std %+v\n ff  %+v", scheme, std.Sched, ff.Sched)
		}
		if std.Energy != ff.Energy {
			t.Errorf("%v: energy diverges:\n std %+v\n ff  %+v", scheme, std.Energy, ff.Energy)
		}
		if std.VirtualSec != ff.VirtualSec {
			t.Errorf("%v: virtual time %v vs %v", scheme, std.VirtualSec, ff.VirtualSec)
		}
		if ff.TicksCoalesced == 0 {
			t.Errorf("%v: fast-forward coalesced nothing", scheme)
		}
		if std.TicksCoalesced != 0 {
			t.Errorf("%v: standard mode reported %d coalesced ticks", scheme, std.TicksCoalesced)
		}
		if ff.LaneFires >= std.LaneFires {
			t.Errorf("%v: lane fires %d (ff) vs %d (std): no tick traffic saved",
				scheme, ff.LaneFires, std.LaneFires)
		}
		if t.Failed() {
			t.Fatalf("divergence under scheme %v", scheme)
		}
	}
}
