package experiments

import (
	"fmt"
	"strings"

	"hplsim/internal/nas"
	"hplsim/internal/schedstat"
	"hplsim/internal/topo"
)

// RunStat is Run with the schedstat accounting ledger attached: the same
// measured run, plus per-task and per-CPU wait/run/block accounting. The
// options must not carry another tracer (one run feeds one tracer).
func RunStat(opt Options) (Result, *schedstat.Accounting) {
	if opt.Tracer != nil {
		panic("experiments: RunStat needs the tracer slot")
	}
	acct := schedstat.NewAccounting()
	opt.Tracer = acct
	r := Run(opt)
	acct.Finish()
	return r, acct
}

// SchedstatRow condenses one scheme's schedstat ledger to the columns the
// paper's story needs: how long ranks waited to get back on CPU, how often
// daemons preempted them, and how much the balancer moved them.
type SchedstatRow struct {
	Scheme       Scheme
	ElapsedSec   float64
	RankWaitMs   float64 // total runnable-wait across ranks, ms
	RankMaxWait  float64 // worst single scheduling latency of any rank, ms
	RankPreempts uint64  // involuntary rank switch-outs
	RankMigr     uint64  // rank migrations (HPL: one fork placement each)
	RankSlices   uint64
}

// TableSchedstat runs the profile once per scheme and tabulates the ranks'
// schedstat aggregates. machine overrides the topology (zero value = the
// paper's POWER6).
func TableSchedstat(prof nas.Profile, schemes []Scheme, seed uint64, machine topo.Topology, ex Exec) []SchedstatRow {
	rows := make([]SchedstatRow, 0, len(schemes))
	for _, sc := range schemes {
		r, acct := RunStat(Options{Profile: prof, Scheme: sc, Seed: seed, Topo: machine,
			FastForward: ex.FastForward, Shards: ex.Shards})
		agg := acct.Aggregate("rank")
		rows = append(rows, SchedstatRow{
			Scheme:       sc,
			ElapsedSec:   r.ElapsedSec,
			RankWaitMs:   float64(agg.Wait) / 1e6,
			RankMaxWait:  float64(agg.WaitMax) / 1e6,
			RankPreempts: agg.Preempt,
			RankMigr:     agg.Migrations,
			RankSlices:   agg.Slices,
		})
	}
	return rows
}

// FormatTableSchedstat renders the schedstat comparison table.
func FormatTableSchedstat(name string, rows []SchedstatRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Schedstat: %s — per-rank scheduling latency by scheme\n", name)
	fmt.Fprintf(&b, "%-12s %10s %14s %14s %9s %6s %8s\n",
		"scheme", "elapsed_s", "rank_wait_ms", "max_wait_ms", "preempts", "migr", "slices")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10.3f %14.3f %14.3f %9d %6d %8d\n",
			r.Scheme, r.ElapsedSec, r.RankWaitMs, r.RankMaxWait,
			r.RankPreempts, r.RankMigr, r.RankSlices)
	}
	return b.String()
}
