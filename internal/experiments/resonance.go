package experiments

import (
	"hplsim/internal/cluster"
	"hplsim/internal/nas"
	"hplsim/internal/sim"
)

// CollectNodeSample gathers the per-iteration time distribution of one
// (profile, scheme) node configuration by running the full single-node
// simulation `runs` times over a bounded worker pool (workers <= 0 selects
// GOMAXPROCS). The sample is assembled in rep order, so it is independent
// of the worker count.
func CollectNodeSample(prof nas.Profile, scheme Scheme, runs int, seed uint64, workers int) cluster.NodeSample {
	rs := RunManyOpt(Options{Profile: prof, Scheme: scheme, Seed: seed}, runs, workers)
	var iters []float64
	for _, r := range rs {
		iters = append(iters, r.IterationSec...)
	}
	// The ideal iteration time: per-iteration work at the steady SMT
	// rate plus the communication charge.
	ideal := (prof.WorkPerIter() + float64(prof.CommPerIter)) /
		nas.SMTSteadyFactor / 1e9
	return cluster.NodeSample{IterationSec: iters, Ideal: ideal}
}

// ResonanceStudy runs the Section II scaling argument end to end for both
// the standard scheduler and HPL: measure each node configuration, then
// compose clusters of growing size. It returns (std, hpl) scaling curves.
// workers bounds both the node-measurement pool and the Monte-Carlo
// composition pool.
func ResonanceStudy(nodes []int, nodeRuns, iters, draws int, seed uint64, workers int) (std, hpl []cluster.Point) {
	prof := nas.MustGet("cg", 'B') // iteration-rich, medium length
	rng := sim.NewRNG(seed)
	stdSample := CollectNodeSample(prof, Std, nodeRuns, seed, workers)
	hplSample := CollectNodeSample(prof, HPL, nodeRuns, seed+1, workers)
	std = cluster.ResonanceOpt(stdSample, nodes, iters, draws, rng.Split(1), workers)
	hpl = cluster.ResonanceOpt(hplSample, nodes, iters, draws, rng.Split(2), workers)
	return std, hpl
}
