package experiments

import (
	"hplsim/internal/cluster"
	"hplsim/internal/nas"
	"hplsim/internal/sim"
)

// CollectNodeSample gathers the per-iteration time distribution of one
// (profile, scheme) node configuration by running the full single-node
// simulation `runs` times.
func CollectNodeSample(prof nas.Profile, scheme Scheme, runs int, seed uint64) cluster.NodeSample {
	rs := RunMany(Options{Profile: prof, Scheme: scheme, Seed: seed}, runs)
	var iters []float64
	for _, r := range rs {
		iters = append(iters, r.IterationSec...)
	}
	// The ideal iteration time: per-iteration work at the steady SMT
	// rate plus the communication charge.
	ideal := (prof.WorkPerIter() + float64(prof.CommPerIter)) /
		nas.SMTSteadyFactor / 1e9
	return cluster.NodeSample{IterationSec: iters, Ideal: ideal}
}

// ResonanceStudy runs the Section II scaling argument end to end for both
// the standard scheduler and HPL: measure each node configuration, then
// compose clusters of growing size. It returns (std, hpl) scaling curves.
func ResonanceStudy(nodes []int, nodeRuns, iters, draws int, seed uint64) (std, hpl []cluster.Point) {
	prof := nas.MustGet("cg", 'B') // iteration-rich, medium length
	rng := sim.NewRNG(seed)
	stdSample := CollectNodeSample(prof, Std, nodeRuns, seed)
	hplSample := CollectNodeSample(prof, HPL, nodeRuns, seed+1)
	std = cluster.Resonance(stdSample, nodes, iters, draws, rng.Split(1))
	hpl = cluster.Resonance(hplSample, nodes, iters, draws, rng.Split(2))
	return std, hpl
}
