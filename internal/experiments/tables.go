package experiments

import (
	"fmt"
	"strings"

	"hplsim/internal/nas"
	"hplsim/internal/stats"
	"hplsim/internal/topo"
)

// Exec bundles the host-side execution knobs the table producers thread
// into Options: the replication worker pool, the fast-forward tick mode,
// and parallel sharding of each run. None of them change a single simulated
// result — the worker-count, fast-forward, and sharding equivalences are
// all pinned by regression tests — so every table is identical at any Exec.
type Exec struct {
	// Workers bounds the replication pool (0 = GOMAXPROCS).
	Workers int
	// FastForward elides quiescent timer ticks (Options.FastForward).
	FastForward bool
	// Shards shards each run's CPUs over host workers (Options.Shards;
	// needs FastForward to have any effect).
	Shards int
}

// TableIRow is one row of the paper's Table I: scheduler OS noise (CPU
// migrations and context switches) for one NAS configuration.
type TableIRow struct {
	Bench      string
	Migrations stats.Summary
	CtxSw      stats.Summary
}

// TableI reproduces Table Ia (scheme Std) or Ib (scheme HPL): for every NAS
// configuration, the min/avg/max of CPU migrations and context switches
// over reps runs. machine overrides the topology (zero value = the paper's
// POWER6).
func TableI(scheme Scheme, reps int, seed uint64, ex Exec, machine topo.Topology) []TableIRow {
	var rows []TableIRow
	for _, prof := range nas.All() {
		rs := RunManyOpt(Options{Profile: prof, Scheme: scheme, Seed: seed, Topo: machine,
			FastForward: ex.FastForward, Shards: ex.Shards}, reps, ex.Workers)
		mig := make([]float64, len(rs))
		ctx := make([]float64, len(rs))
		for i, r := range rs {
			mig[i] = r.Migrations()
			ctx[i] = r.CtxSwitches()
		}
		rows = append(rows, TableIRow{
			Bench:      prof.Name(),
			Migrations: stats.Summarize(mig),
			CtxSw:      stats.Summarize(ctx),
		})
	}
	return rows
}

// FormatTableI renders rows in the paper's layout.
func FormatTableI(title string, rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s | %26s | %29s\n", "Bench", "CPU Migrations", "Context Switches")
	fmt.Fprintf(&b, "%-8s | %8s %8s %8s | %9s %9s %9s\n",
		"", "Min.", "Avg.", "Max.", "Min.", "Avg.", "Max.")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %8.0f %8.2f %8.0f | %9.0f %9.2f %9.0f\n",
			r.Bench,
			r.Migrations.Min, r.Migrations.Mean, r.Migrations.Max,
			r.CtxSw.Min, r.CtxSw.Mean, r.CtxSw.Max)
	}
	return b.String()
}

// TableIIRow is one row of the paper's Table II: execution time statistics
// under the standard kernel and under HPL.
type TableIIRow struct {
	Bench string
	Std   stats.Summary
	HPL   stats.Summary
}

// TableII reproduces Table II: execution time min/avg/max and Var% for
// every NAS configuration under Std and HPL. machine overrides the topology
// (zero value = the paper's POWER6).
func TableII(reps int, seed uint64, ex Exec, machine topo.Topology) []TableIIRow {
	var rows []TableIIRow
	for _, prof := range nas.All() {
		row := TableIIRow{Bench: prof.Name()}
		for _, scheme := range []Scheme{Std, HPL} {
			rs := RunManyOpt(Options{Profile: prof, Scheme: scheme, Seed: seed, Topo: machine,
				FastForward: ex.FastForward, Shards: ex.Shards}, reps, ex.Workers)
			el := make([]float64, len(rs))
			for i, r := range rs {
				el[i] = r.ElapsedSec
			}
			s := stats.Summarize(el)
			if scheme == Std {
				row.Std = s
			} else {
				row.HPL = s
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTableII renders rows in the paper's layout.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("Table II: NAS Execution Time: Std. Linux VS HPL (seconds)\n")
	fmt.Fprintf(&b, "%-8s | %31s | %31s\n", "Bench", "Std. Linux", "HPL")
	fmt.Fprintf(&b, "%-8s | %7s %7s %7s %8s | %7s %7s %7s %8s\n",
		"", "Min.", "Avg.", "Max.", "Var.%", "Min.", "Avg.", "Max.", "Var.%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s | %7.2f %7.2f %7.2f %8.2f | %7.2f %7.2f %7.2f %8.2f\n",
			r.Bench,
			r.Std.Min, r.Std.Mean, r.Std.Max, r.Std.VarPct(),
			r.HPL.Min, r.HPL.Mean, r.HPL.Max, r.HPL.VarPct())
	}
	return b.String()
}

// SchemeTimes collects execution-time statistics for one profile under one
// scheme (used by ablations and the CLI).
func SchemeTimes(prof nas.Profile, scheme Scheme, reps int, seed uint64, workers int) stats.Summary {
	rs := RunManyOpt(Options{Profile: prof, Scheme: scheme, Seed: seed}, reps, workers)
	el := make([]float64, len(rs))
	for i, r := range rs {
		el[i] = r.ElapsedSec
	}
	return stats.Summarize(el)
}
