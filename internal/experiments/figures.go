package experiments

import (
	"fmt"
	"strings"

	"hplsim/internal/kernel"
	"hplsim/internal/mpi"
	"hplsim/internal/nas"
	"hplsim/internal/sim"
	"hplsim/internal/stats"
	"hplsim/internal/task"
	"hplsim/internal/topo"
	"hplsim/internal/trace"
)

// Figure1 reproduces the paper's Figure 1: the effect of process preemption
// on a parallel application. Four CFS ranks iterate compute/barrier on four
// dedicated cores of a quiet node; midway, a single daemon wakes on rank0's
// CPU and preempts it. The rendered timeline shows every other rank idling
// at the barrier until the delayed rank arrives.
func Figure1(seed uint64) string {
	rec := trace.NewRecorder()
	k := kernel.New(kernel.Config{Seed: seed, Tracer: rec})

	const (
		iters    = 4
		iterWork = 20 * sim.Millisecond
	)
	// Pin one rank per physical core so the timeline is easy to read;
	// pinning also matches the figure's intent (the preemption effect,
	// not placement effects).
	w := mpi.NewWorld(k, mpi.Config{
		Ranks:         4,
		Policy:        task.Normal,
		SpinThreshold: 2 * sim.Millisecond,
		PinCPUs:       []int{0, 2, 4, 6},
	})
	w.OnComplete = func() {
		k.Eng.After(5*sim.Millisecond, k.Stop)
	}
	w.Launch(nil, func(r *mpi.Rank) {
		iter := 0
		var step func()
		step = func() {
			if iter == iters {
				r.Finish()
				return
			}
			iter++
			r.Compute(iterWork, func() { r.Barrier(step) })
		}
		step()
	})

	// One daemon, aimed at rank0's CPU midway through the second
	// iteration: the Figure 1 scenario of a kernel/user daemon preempting
	// one process of the parallel application.
	k.Eng.After(28*sim.Millisecond, func() {
		cpu := w.Ranks[0].P.T.CPU
		k.Spawn(nil, kernel.Attr{
			Name:     "daemon",
			Affinity: maskOf(cpu),
		}, func(p *kernel.Proc) {
			p.Compute(10*sim.Millisecond, func() { p.Exit() })
		})
	})

	k.Run(sim.Time(sim.Second))
	rec.Close(k.Now())

	var b strings.Builder
	b.WriteString("Figure 1: effects of process pre-emption on a parallel application\n")
	b.WriteString("(ranks 0-3 compute 20ms per iteration and synchronise at a barrier;\n")
	b.WriteString(" a daemon 'd' preempts rank 0 at t=28ms; '.' is idle/barrier wait)\n\n")
	b.WriteString(rec.Gantt(0, sim.Time(110*sim.Millisecond), 100))
	return b.String()
}

// DistributionResult is the outcome of a distribution experiment
// (Figures 2 and 4).
type DistributionResult struct {
	Scheme  Scheme
	Times   stats.Summary
	Hist    *stats.Histogram
	Results []Result
}

// distribution runs ep.A.8 reps times under the scheme and builds the
// execution-time histogram.
func distribution(scheme Scheme, reps int, seed uint64, workers int) DistributionResult {
	prof := nas.MustGet("ep", 'A')
	rs := RunManyOpt(Options{Profile: prof, Scheme: scheme, Seed: seed}, reps, workers)
	el := make([]float64, len(rs))
	for i, r := range rs {
		el[i] = r.ElapsedSec
	}
	sum := stats.Summarize(el)
	// The paper's histograms span 8.5 to 15 seconds.
	h := stats.NewHistogram(8.4, 15.0, 33)
	for _, t := range el {
		h.Add(t)
	}
	return DistributionResult{Scheme: scheme, Times: sum, Hist: h, Results: rs}
}

// Figure2 reproduces the execution-time distribution of ep.A.8 under the
// standard Linux scheduler (1000 runs in the paper).
func Figure2(reps int, seed uint64, workers int) DistributionResult {
	return distribution(Std, reps, seed, workers)
}

// Figure4 reproduces the execution-time distribution of ep.A.8 under the
// real-time scheduler.
func Figure4(reps int, seed uint64, workers int) DistributionResult {
	return distribution(RT, reps, seed, workers)
}

// FormatDistribution renders a distribution result like Figures 2 and 4.
func FormatDistribution(label string, d DistributionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", label)
	fmt.Fprintf(&b, "min=%.2fs avg=%.2fs max=%.2fs var=%.2f%%\n\n",
		d.Times.Min, d.Times.Mean, d.Times.Max, d.Times.VarPct())
	b.WriteString(d.Hist.Render(60, "execution time (s) vs runs"))
	return b.String()
}

// CorrelationResult holds Figure 3's data: execution time against a
// software performance event.
type CorrelationResult struct {
	Event   string
	X, Y    []float64 // event count, execution time
	R       float64   // Pearson correlation
	Slope   float64   // seconds per event
	MeansX  []float64 // binned event counts
	MeansY  []float64 // mean execution time per bin
	Summary stats.Summary
}

// Figure3 reproduces Figures 3a and 3b: for ep.A.8 under the standard
// scheduler, execution time as a function of CPU migrations (3a) and
// context switches (3b), with the correlation the paper reads off the
// plots. The same runs serve both panels, as in the paper.
func Figure3(reps int, seed uint64, workers int) (migr, ctx CorrelationResult) {
	d := distribution(Std, reps, seed, workers)
	times := make([]float64, len(d.Results))
	migs := make([]float64, len(d.Results))
	ctxs := make([]float64, len(d.Results))
	for i, r := range d.Results {
		times[i] = r.ElapsedSec
		migs[i] = r.Migrations()
		ctxs[i] = r.CtxSwitches()
	}
	build := func(event string, xs []float64) CorrelationResult {
		slope, _ := stats.LinearFit(xs, times)
		bx, by := stats.Bin2D(xs, times)
		return CorrelationResult{
			Event: event, X: xs, Y: times,
			R: stats.Pearson(xs, times), Slope: slope,
			MeansX: bx, MeansY: by,
			Summary: stats.Summarize(times),
		}
	}
	return build("cpu-migrations", migs), build("context-switches", ctxs)
}

// FormatCorrelation renders one Figure 3 panel as a binned series plus the
// correlation statistics.
func FormatCorrelation(label string, c CorrelationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: execution time vs %s\n", label, c.Event)
	fmt.Fprintf(&b, "Pearson r = %.3f, slope = %.4f s/event, n = %d\n",
		c.R, c.Slope, len(c.X))
	// Quantile-bin the event counts into ten groups for a compact series.
	type pair struct{ x, y float64 }
	pairs := make([]pair, len(c.X))
	for i := range c.X {
		pairs[i] = pair{c.X[i], c.Y[i]}
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].x < pairs[j-1].x; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	nb := 10
	if len(pairs) < nb {
		nb = len(pairs)
	}
	fmt.Fprintf(&b, "%12s %12s %6s\n", c.Event, "mean time(s)", "n")
	for i := 0; i < nb; i++ {
		lo, hi := i*len(pairs)/nb, (i+1)*len(pairs)/nb
		if hi <= lo {
			continue
		}
		var sx, sy float64
		for _, p := range pairs[lo:hi] {
			sx += p.x
			sy += p.y
		}
		n := float64(hi - lo)
		fmt.Fprintf(&b, "%12.1f %12.3f %6d\n", sx/n, sy/n, hi-lo)
	}
	return b.String()
}

func maskOf(cpu int) topo.CPUMask { return topo.MaskOf(cpu) }
