package experiments

import (
	"bytes"
	"testing"

	"hplsim/internal/nas"
	"hplsim/internal/schedstat"
)

// TestShardedRunEquivalence pins the contract of Options.Shards: a run
// sharded over parallel host workers must be bitwise identical to the
// sequential run — same observables, same event traffic, and the same
// scheduling trace event for event — under both tick modes (with
// FastForward off, sharding is an inert knob and the equivalence is the
// trivial one; with it on, the parallel catch-up phase carries the run).
// Only host cost may differ, which is what BENCH_shard.json measures.
func TestShardedRunEquivalence(t *testing.T) {
	machine := wideTopo(t)
	for _, scheme := range []Scheme{Std, HPL} {
		for _, ff := range []bool{false, true} {
			opt := Options{
				Profile: nas.MustGet("is", 'A'), Scheme: scheme, Seed: 93,
				Topo: machine, FastForward: ff,
			}
			var seqTrace, shardTrace bytes.Buffer
			opt.Shards = 1
			opt.Tracer = schedstat.NewWriter(&seqTrace)
			seq := Run(opt)
			opt.Shards = 4
			// Grain 1 fans out every eligible catch-up: this workload's
			// catch-ups are below the default grain, and a gated-out
			// parallel path would make the equivalence vacuous.
			opt.ShardGrain = 1
			opt.Tracer = schedstat.NewWriter(&shardTrace)
			sharded := Run(opt)
			if ff && sharded.ShardPhases == 0 {
				t.Fatalf("%v ff=%v: no parallel phases ran; the sharded side degenerated to sequential", scheme, ff)
			}

			if seq.ElapsedSec != sharded.ElapsedSec {
				t.Errorf("%v ff=%v: elapsed %v vs %v", scheme, ff, seq.ElapsedSec, sharded.ElapsedSec)
			}
			if seq.Window != sharded.Window {
				t.Errorf("%v ff=%v: perf window diverges:\n seq   %+v\n shard %+v",
					scheme, ff, seq.Window, sharded.Window)
			}
			if seq.Sched != sharded.Sched {
				t.Errorf("%v ff=%v: sched stats diverge:\n seq   %+v\n shard %+v",
					scheme, ff, seq.Sched, sharded.Sched)
			}
			if seq.Energy != sharded.Energy {
				t.Errorf("%v ff=%v: energy diverges:\n seq   %+v\n shard %+v",
					scheme, ff, seq.Energy, sharded.Energy)
			}
			if seq.EventsDispatched != sharded.EventsDispatched ||
				seq.LaneFires != sharded.LaneFires ||
				seq.TicksCoalesced != sharded.TicksCoalesced {
				t.Errorf("%v ff=%v: engine traffic diverges: seq %d/%d/%d vs shard %d/%d/%d",
					scheme, ff,
					seq.EventsDispatched, seq.LaneFires, seq.TicksCoalesced,
					sharded.EventsDispatched, sharded.LaneFires, sharded.TicksCoalesced)
			}
			if !bytes.Equal(seqTrace.Bytes(), shardTrace.Bytes()) {
				t.Errorf("%v ff=%v: scheduling traces diverge (%d vs %d bytes)",
					scheme, ff, seqTrace.Len(), shardTrace.Len())
			}
			if t.Failed() {
				t.Fatalf("sequential/sharded divergence under scheme %v ff=%v", scheme, ff)
			}
		}
	}
}
