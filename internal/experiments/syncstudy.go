package experiments

import (
	"fmt"
	"strings"

	"hplsim/internal/kernel"
	"hplsim/internal/mpi"
	"hplsim/internal/nas"
	"hplsim/internal/noise"
	"hplsim/internal/pool"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/stats"
	"hplsim/internal/task"
)

// SyncRow is one configuration of the synchronisation-structure study.
type SyncRow struct {
	Label string
	Times stats.Summary
}

// SyncStudy compares how the same OS noise propagates through two coupling
// structures (Section VI: "impact on HPC applications is higher when the
// OS noise resonates with the application"): global collectives, where
// every rank waits for the slowest each iteration, versus a pipelined
// wavefront, where ranks couple only to their neighbours.
//
// Both run the same profile under the standard scheduler with identical
// noise seeds, and under HPL as the noise-free reference. The measured
// outcome (EXPERIMENTS.md) is that the pipeline suffers *more* relative
// overhead than the barrier: a barrier absorbs a delay into a single
// max() per iteration, while a dependency chain both serialises delays
// along the critical path and idles CPUs waiting for neighbours — handing
// the standard scheduler idle slots to fill with daemons and balancing.
// Fine-grained coupling resonates with fine-grained noise, exactly the
// resonance rule of Ferreira et al.
func SyncStudy(reps int, seed uint64, workers int) []SyncRow {
	prof := nas.MustGet("is", 'A')
	rows := []SyncRow{}
	for _, cfg := range []struct {
		label     string
		wavefront bool
		scheme    Scheme
	}{
		{"barrier-coupled, HPL (reference)", false, HPL},
		{"barrier-coupled, std Linux", false, Std},
		{"wavefront-coupled, HPL (reference)", true, HPL},
		{"wavefront-coupled, std Linux", true, Std},
	} {
		cfg := cfg
		el := make([]float64, reps)
		pool.ForN(reps, workers, func(i int) {
			el[i] = runSync(prof, cfg.wavefront, cfg.scheme, seed+uint64(i)*6151)
		})
		rows = append(rows, SyncRow{Label: cfg.label, Times: stats.Summarize(el)})
	}
	return rows
}

// runSync runs one job with the chosen coupling structure and scheduler.
func runSync(prof nas.Profile, wavefront bool, scheme Scheme, seed uint64) float64 {
	balance := sched.BalanceStandard
	policy := task.Normal
	if scheme == HPL {
		balance = sched.BalanceHPL
		policy = task.HPC
	}
	k := kernel.New(kernel.Config{Balance: balance, Seed: seed})
	if scheme == Std {
		noise.SpawnSystem(k, k.RNG(100))
	}
	w := mpi.NewWorld(k, prof.WorldConfig(policy, 0, 0))
	w.OnComplete = func() { k.Eng.After(sim.Millisecond, k.Stop) }
	var program mpi.Program
	if wavefront {
		program = prof.ProgramWavefront(k.RNG(103))
	} else {
		program = prof.Program(k.RNG(103))
	}
	w.Launch(nil, program)
	k.Run(sim.Time(sim.Seconds(prof.TargetSeconds*100) + 120*sim.Second))
	return w.Elapsed().Seconds()
}

// FormatSyncStudy renders the study with per-structure noise overheads.
func FormatSyncStudy(rows []SyncRow) string {
	var b strings.Builder
	b.WriteString("Synchronisation structure vs noise propagation (is.A-sized job)\n")
	fmt.Fprintf(&b, "%-36s %9s %9s %9s %8s\n",
		"configuration", "min(s)", "avg(s)", "max(s)", "var%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %9.3f %9.3f %9.3f %8.2f\n",
			r.Label, r.Times.Min, r.Times.Mean, r.Times.Max, r.Times.VarPct())
	}
	if len(rows) == 4 {
		barrier := rows[1].Times.Mean/rows[0].Times.Mean - 1
		wave := rows[3].Times.Mean/rows[2].Times.Mean - 1
		fmt.Fprintf(&b, "\nnoise overhead through barriers: %+.1f%%, through the pipeline: %+.1f%%\n",
			barrier*100, wave*100)
	}
	return b.String()
}
