package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hplsim/internal/nas"
)

// fastPayload is a sub-second custom workload for service-path tests.
func fastPayload() Payload {
	return Payload{
		Custom: &nas.CustomSpec{
			Bench: "svc", Class: "T", Ranks: 4, Iterations: 4,
			TargetSeconds: 0.05, Sensitivity: 0.3,
		},
		Scheme:      "hpl",
		Seed:        7,
		Topo:        "2x2x2",
		FastForward: true,
		NoStorms:    true,
	}
}

func TestParsePayloadRejectsBadSpecs(t *testing.T) {
	bad := []struct {
		name string
		in   string
		frag string
	}{
		{"unknown field", `{"scheme":"std","bench":"ft","class":"A","typo":1}`, "typo"},
		{"no workload", `{"scheme":"std"}`, "no workload"},
		{"both workloads", `{"scheme":"std","bench":"ft","class":"A","custom":{"bench":"x","class":"A","ranks":1,"iterations":1,"target_seconds":1}}`, "both"},
		{"bad scheme", `{"scheme":"warp","bench":"ft","class":"A"}`, "scheme"},
		{"bad class", `{"scheme":"std","bench":"ft","class":"AA"}`, "class"},
		{"unknown profile", `{"scheme":"std","bench":"zz","class":"A"}`, "zz"},
		{"bad topo", `{"scheme":"std","bench":"ft","class":"A","topo":"round"}`, "topo"},
		{"negative shards", `{"scheme":"std","bench":"ft","class":"A","shards":-1}`, "shards"},
		{"invalid custom", `{"scheme":"std","custom":{"bench":"x","class":"A","ranks":0,"iterations":1,"target_seconds":1}}`, "ranks"},
	}
	for _, tc := range bad {
		if _, err := ParsePayload([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}

func TestPayloadCanonicalAbsorbsFormatting(t *testing.T) {
	p := fastPayload()
	// A whitespace-padded, key-reordered encoding of the same spec.
	loose := `{
		"seed": 7, "scheme": "hpl", "topo": "2x2x2",
		"fastforward": true, "nostorms": true,
		"custom": {"bench":"svc","class":"T","ranks":4,"iterations":4,
		           "target_seconds":0.05,"sensitivity":0.3}
	}`
	parsed, err := ParsePayload([]byte(loose))
	if err != nil {
		t.Fatalf("ParsePayload: %v", err)
	}
	if parsed.Canonical() != p.Canonical() {
		t.Fatalf("canonical forms differ:\n %s\n %s", parsed.Canonical(), p.Canonical())
	}
	// Canonical parses back to itself.
	again, err := ParsePayload([]byte(p.Canonical()))
	if err != nil {
		t.Fatalf("re-parse canonical: %v", err)
	}
	if again.Canonical() != p.Canonical() {
		t.Fatal("canonical form is not a fixed point")
	}
}

// TestRunPayloadDeterministic is the contract the queue service rests on:
// the artifact is a pure function of the payload bytes.
func TestRunPayloadDeterministic(t *testing.T) {
	p := fastPayload()
	a, err := RunPayload(p)
	if err != nil {
		t.Fatalf("RunPayload: %v", err)
	}
	b, err := RunPayload(p)
	if err != nil {
		t.Fatalf("RunPayload (second): %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two runs of the same payload produced different artifacts")
	}

	var sum PayloadSummary
	line := a[:bytes.IndexByte(a, '\n')]
	if err := json.Unmarshal(line, &sum); err != nil {
		t.Fatalf("summary line does not parse: %v", err)
	}
	if !sum.Completed || sum.ElapsedSec <= 0 || sum.TraceEvents == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.TraceFP) != 16 {
		t.Fatalf("trace fingerprint %q not fixed-width", sum.TraceFP)
	}

	// A different seed produces a different artifact (the fingerprint is
	// doing real work).
	p2 := p
	p2.Seed = 8
	c, err := RunPayload(p2)
	if err != nil {
		t.Fatalf("RunPayload(seed 8): %v", err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical artifacts")
	}
}

// TestRunPayloadTraceShipping: with Trace set the artifact carries the
// trace whose fingerprint the summary names; without it, only the line.
func TestRunPayloadTraceShipping(t *testing.T) {
	p := fastPayload()
	p.Trace = true
	withTrace, err := RunPayload(p)
	if err != nil {
		t.Fatalf("RunPayload(trace): %v", err)
	}
	p.Trace = false
	bare, err := RunPayload(p)
	if err != nil {
		t.Fatalf("RunPayload(bare): %v", err)
	}
	if n := bytes.IndexByte(bare, '\n'); n != len(bare)-1 {
		t.Fatal("bare artifact has more than the summary line")
	}

	cut := bytes.IndexByte(withTrace, '\n')
	var sum PayloadSummary
	if err := json.Unmarshal(withTrace[:cut], &sum); err != nil {
		t.Fatal(err)
	}
	trace := withTrace[cut+1:]
	if got := len(bytes.Split(bytes.TrimSuffix(trace, []byte("\n")), []byte("\n"))); got != sum.TraceEvents {
		t.Fatalf("shipped trace has %d lines, summary says %d", got, sum.TraceEvents)
	}
	if got := fingerprintHex(trace); got != sum.TraceFP {
		t.Fatalf("shipped trace fingerprints to %s, summary says %s", got, sum.TraceFP)
	}
	// The two summaries differ only in the payload's trace flag: the
	// measured run is identical.
	var bareSum PayloadSummary
	if err := json.Unmarshal(bare[:len(bare)-1], &bareSum); err != nil {
		t.Fatal(err)
	}
	if bareSum.TraceFP != sum.TraceFP || bareSum.ElapsedSec != sum.ElapsedSec {
		t.Fatal("trace shipping changed the measured run")
	}
}

func fingerprintHex(b []byte) string {
	h := fnv1a(b)
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = hexdigits[h&0xf]
		h >>= 4
	}
	return string(out)
}
