package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"hplsim/internal/nas"
	"hplsim/internal/schedstat"
	"hplsim/internal/topo"
)

// Payload is the JSON job spec the simulation-queue service executes: one
// measured run, fully determined by its fields. The artifact a worker
// produces for a payload is a pure function of the payload bytes — any
// worker, any attempt, any host — which is what lets the dispatcher verify
// retried and duplicated deliveries by fingerprint alone.
//
// Exactly one of Bench/Class (a NAS profile) or Custom must be set.
type Payload struct {
	// Bench/Class name a built-in NAS profile (e.g. "ft"/"A").
	Bench string `json:"bench,omitempty"`
	Class string `json:"class,omitempty"`
	// Custom embeds a user-defined workload instead of a NAS profile.
	Custom *nas.CustomSpec `json:"custom,omitempty"`
	// Scheme is the scheduler configuration, by name ("std", "hpl", ...).
	Scheme string `json:"scheme"`
	// Seed keys the run's deterministic randomness.
	Seed uint64 `json:"seed"`
	// Topo overrides the machine ("2x2x2" chips x cores x threads;
	// empty = the paper's POWER6).
	Topo string `json:"topo,omitempty"`
	// HZ overrides the tick frequency (0 = default).
	HZ int `json:"hz,omitempty"`
	// FastForward enables virtual-time fast-forward (trace-equivalent).
	FastForward bool `json:"fastforward,omitempty"`
	// Shards fans a single run out over chip-aligned host shards
	// (bitwise-identical results at any value).
	Shards int `json:"shards,omitempty"`
	// NoDaemons / NoStorms suppress the background load.
	NoDaemons bool `json:"nodaemons,omitempty"`
	NoStorms  bool `json:"nostorms,omitempty"`
	// Trace appends the full schedstat event trace to the artifact after
	// the summary line. Off, the artifact still carries the trace's
	// fingerprint, so equivalence checks stay byte-strength either way.
	Trace bool `json:"trace,omitempty"`
}

// ParseScheme resolves a scheme name.
func ParseScheme(name string) (Scheme, bool) {
	for _, s := range Schemes() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// ParsePayload decodes and validates one payload from its JSON bytes.
// Unknown fields are rejected: a payload is an artifact-identity input, so
// silently dropping a field would let two different specs collide.
func ParsePayload(b []byte) (Payload, error) {
	var p Payload
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Payload{}, fmt.Errorf("experiments: parsing payload: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Payload{}, err
	}
	return p, nil
}

// Validate reports the first problem with the payload.
func (p Payload) Validate() error {
	if _, err := p.profile(); err != nil {
		return err
	}
	if _, ok := ParseScheme(p.Scheme); !ok {
		names := make([]string, 0, len(Schemes()))
		for _, s := range Schemes() {
			names = append(names, s.String())
		}
		return fmt.Errorf("experiments: payload scheme %q is not one of %s",
			p.Scheme, strings.Join(names, ", "))
	}
	if p.Topo != "" {
		if _, err := topo.Parse(p.Topo); err != nil {
			return fmt.Errorf("experiments: payload topo: %w", err)
		}
	}
	if p.Shards < 0 {
		return fmt.Errorf("experiments: payload shards must be >= 0, got %d", p.Shards)
	}
	return nil
}

func (p Payload) profile() (nas.Profile, error) {
	switch {
	case p.Custom != nil && p.Bench != "":
		return nas.Profile{}, fmt.Errorf("experiments: payload sets both bench %q and a custom workload", p.Bench)
	case p.Custom != nil:
		return p.Custom.Profile()
	case p.Bench == "":
		return nas.Profile{}, fmt.Errorf("experiments: payload names no workload (bench or custom)")
	case len(p.Class) != 1:
		return nas.Profile{}, fmt.Errorf("experiments: payload class must be one character, got %q", p.Class)
	default:
		return nas.Get(p.Bench, p.Class[0])
	}
}

// Canonical renders the payload in its canonical compact form: parse it
// back and re-marshal. Two textually different encodings of the same spec
// submit as the same payload string, so their artifacts are comparable.
func (p Payload) Canonical() string {
	b, err := json.Marshal(p)
	if err != nil {
		panic("experiments: payload marshal cannot fail: " + err.Error())
	}
	return string(b)
}

// PayloadSummary is the first line of every artifact: the payload echoed
// back plus the run's headline observables. Field order is fixed by the
// struct; encoding/json emits it deterministically, so the summary line is
// canonical.
type PayloadSummary struct {
	Payload     Payload `json:"payload"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	Completed   bool    `json:"completed"`
	CtxSwitches uint64  `json:"ctx_switches"`
	Migrations  uint64  `json:"migrations"`
	VirtualSec  float64 `json:"virtual_sec"`
	// TraceFP is the FNV-1a fingerprint of the schedstat trace bytes
	// (%016x), recorded whether or not the trace itself is shipped.
	TraceFP string `json:"trace_fp"`
	// TraceEvents counts trace lines behind TraceFP.
	TraceEvents int `json:"trace_events"`
}

// fnv1a matches the simq/schedcheck fingerprint so artifact and trace
// fingerprints are comparable across the toolchain.
func fnv1a(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return h
}

// RunPayload executes one payload and renders its artifact: a summary JSON
// line, then (with Trace set) the schedstat event trace in canonical JSONL.
// The artifact is a pure function of the payload — the determinism contract
// the queue service's retry and duplicate-delivery verification rests on.
func RunPayload(p Payload) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prof, err := p.profile()
	if err != nil {
		return nil, err
	}
	scheme, _ := ParseScheme(p.Scheme)
	var machine topo.Topology
	if p.Topo != "" {
		if machine, err = topo.Parse(p.Topo); err != nil {
			return nil, err
		}
	}

	var trace bytes.Buffer
	w := schedstat.NewWriter(&trace)
	res := Run(Options{
		Profile:     prof,
		Scheme:      scheme,
		Seed:        p.Seed,
		Topo:        machine,
		HZ:          p.HZ,
		FastForward: p.FastForward,
		Shards:      p.Shards,
		NoDaemons:   p.NoDaemons,
		NoStorms:    p.NoStorms,
		Tracer:      w,
	})
	if err := w.Flush(); err != nil {
		return nil, fmt.Errorf("experiments: flushing payload trace: %w", err)
	}

	summary := PayloadSummary{
		Payload:     p,
		ElapsedSec:  res.ElapsedSec,
		Completed:   res.Completed,
		CtxSwitches: res.Window.ContextSwitches,
		Migrations:  res.Window.Migrations,
		VirtualSec:  res.VirtualSec,
		TraceFP:     fmt.Sprintf("%016x", fnv1a(trace.Bytes())),
		TraceEvents: bytes.Count(trace.Bytes(), []byte("\n")),
	}
	line, err := json.Marshal(summary)
	if err != nil {
		return nil, fmt.Errorf("experiments: marshaling payload summary: %w", err)
	}
	artifact := append(line, '\n')
	if p.Trace {
		artifact = append(artifact, trace.Bytes()...)
	}
	return artifact, nil
}
