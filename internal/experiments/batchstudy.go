package experiments

import (
	"fmt"
	"strings"

	"hplsim/internal/batch"
	"hplsim/internal/nas"
	"hplsim/internal/sim"
	"hplsim/internal/topo"
)

// This file is the second level of the two-level scheduling study
// (ROADMAP item 2, after Eleliemy/Ciorba arXiv:1811.01344): the batch
// layer's node model is calibrated from full single-node kernel runs, so
// node-level OS policy (Std vs HPL) propagates into cluster-level
// makespan, utilization, and backfill accuracy — the comparison the
// paper's single-node testbed could not make.

// BatchCalibrate measures a node model for one scheduling scheme: reps
// full kernel runs of the profile, each run's slowdown taken as elapsed
// over the profile's ideal (noise-free) target time, collected into a
// batch.EmpiricalModel. The batch simulator then draws each job's runtime
// as Work times the max-of-nodes order statistic over this distribution —
// the hybrid construction of internal/cluster, reused one level up.
// shards > 1 runs each calibration kernel under the parallel catch-up
// phase; the samples — and so the model — are bitwise identical to the
// sequential ones, only host time differs.
func BatchCalibrate(prof nas.Profile, scheme Scheme, reps int, seed uint64, machine topo.Topology, workers, shards int) (*batch.EmpiricalModel, error) {
	if reps < 1 {
		return nil, fmt.Errorf("experiments: batch calibration needs reps >= 1, got %d", reps)
	}
	rs := RunManyOpt(Options{
		Profile: prof, Scheme: scheme, Seed: seed, Topo: machine,
		FastForward: true, Shards: shards,
	}, reps, workers)
	samples := make([]float64, 0, len(rs))
	for _, r := range rs {
		if !r.Completed {
			continue
		}
		samples = append(samples, r.ElapsedSec/prof.TargetSeconds)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("experiments: every calibration run was censored (%s under %s)", prof.Name(), scheme)
	}
	return batch.NewEmpiricalModel(scheme.String(), samples)
}

// BatchStudyOptions parameterises the cluster-level Std-vs-HPL contrast.
type BatchStudyOptions struct {
	// Profile is the per-node workload used for calibration (default
	// is.A, the cheapest paper benchmark).
	Profile nas.Profile
	// Machine is the node topology (zero = the paper's POWER6 2x2x2);
	// its logical CPU count is the cluster's ranks-per-node.
	Machine topo.Topology
	// Nodes is the cluster size.
	Nodes int
	// CalibReps is the number of kernel runs behind each scheme's model.
	CalibReps int
	// Seeds are the trace seeds; each yields one row per policy/scheme.
	Seeds []uint64
	// Policies are batch.NewPolicy wire names.
	Policies []string
	// Schemes are the node-kernel schemes to contrast.
	Schemes []Scheme
	// Trace shapes the job load. The zero value selects a default
	// Poisson trace sized to the cluster.
	Trace batch.TraceConfig
	// Seed seeds the calibration kernel runs.
	Seed uint64
	// Workers bounds calibration parallelism (0 = GOMAXPROCS).
	Workers int
	// Shards shards each calibration kernel run over host workers
	// (Options.Shards); the study's rows are independent of it.
	Shards int
}

// BatchStudyRow is one (seed, policy, scheme) cell of the study.
type BatchStudyRow struct {
	Seed        uint64
	Policy      string
	Scheme      string
	Makespan    float64 // seconds
	Utilization float64
	MeanBSLD    float64
	MeanWaitSec float64
	Backfills   int
	Fingerprint uint64
}

// defaultBatchTrace sizes a Poisson load for the cluster: jobs up to half
// the machine, minute-scale work, honest but sloppy estimates.
func defaultBatchTrace(nodes, ranksPerNode int, maxSlowdown float64) batch.TraceConfig {
	maxRanks := nodes * ranksPerNode / 2
	if maxRanks < 1 {
		maxRanks = 1
	}
	return batch.TraceConfig{
		Kind:             batch.TracePoisson,
		Jobs:             40,
		MeanInterarrival: 45 * sim.Second,
		MaxRanks:         maxRanks,
		MeanWork:         300 * sim.Second,
		WorkSpread:       4,
		EstFactor:        maxSlowdown + 0.1,
		EstNoise:         0.5,
		PrioLevels:       1,
	}
}

// BatchStudy runs the full grid: calibrate one node model per scheme,
// generate one job trace per seed (identical across policies and schemes),
// and simulate every combination. Identical traces mean every makespan
// delta is attributable to the node kernel's noise profile or the queue
// policy — nothing else varies.
func BatchStudy(opt BatchStudyOptions) ([]BatchStudyRow, error) {
	if opt.Nodes < 1 {
		return nil, fmt.Errorf("experiments: batch study needs a positive cluster size")
	}
	if len(opt.Seeds) == 0 || len(opt.Policies) == 0 || len(opt.Schemes) == 0 {
		return nil, fmt.Errorf("experiments: batch study needs seeds, policies, and schemes")
	}
	ranksPerNode := opt.Machine.NumCPUs()
	if ranksPerNode == 0 {
		ranksPerNode = topo.POWER6().NumCPUs()
	}
	cluster := batch.Cluster{Nodes: opt.Nodes, RanksPerNode: ranksPerNode}

	models := make([]*batch.EmpiricalModel, len(opt.Schemes))
	maxSlow := 1.0
	for i, scheme := range opt.Schemes {
		m, err := BatchCalibrate(opt.Profile, scheme, opt.CalibReps, opt.Seed, opt.Machine, opt.Workers, opt.Shards)
		if err != nil {
			return nil, err
		}
		models[i] = m
		if m.MaxSlowdown() > maxSlow {
			maxSlow = m.MaxSlowdown()
		}
	}

	var rows []BatchStudyRow
	for _, seed := range opt.Seeds {
		tc := opt.Trace
		if tc.Kind == "" {
			tc = defaultBatchTrace(opt.Nodes, ranksPerNode, maxSlow)
		}
		trace, err := batch.GenerateTrace(tc, sim.NewRNG(seed).Split(0xbeef))
		if err != nil {
			return nil, err
		}
		for _, policyName := range opt.Policies {
			policy, err := batch.NewPolicy(policyName, 0.05)
			if err != nil {
				return nil, err
			}
			for i, scheme := range opt.Schemes {
				res := batch.Simulate(batch.Config{
					Cluster: cluster,
					Policy:  policy,
					Model:   models[i],
					Jobs:    trace,
					Seed:    seed,
				})
				rows = append(rows, BatchStudyRow{
					Seed:        seed,
					Policy:      policyName,
					Scheme:      scheme.String(),
					Makespan:    res.Makespan.Seconds(),
					Utilization: res.Utilization,
					MeanBSLD:    res.MeanBoundedSlowdown,
					MeanWaitSec: res.MeanWait.Seconds(),
					Backfills:   res.Backfills,
					Fingerprint: res.Fingerprint,
				})
			}
		}
	}
	return rows, nil
}

// FormatBatchStudy renders the study as a fixed-width table, one row per
// (seed, policy, scheme) cell.
func FormatBatchStudy(rows []BatchStudyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Two-level scheduling: cluster metrics under identical job traces\n")
	fmt.Fprintf(&b, "%6s | %-12s | %-6s | %12s %7s %9s %11s %9s\n",
		"Seed", "Policy", "Node", "Makespan(s)", "Util", "MeanBSLD", "MeanWait(s)", "Backfills")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d | %-12s | %-6s | %12.1f %7.3f %9.2f %11.1f %9d\n",
			r.Seed, r.Policy, r.Scheme, r.Makespan, r.Utilization, r.MeanBSLD, r.MeanWaitSec, r.Backfills)
	}
	return b.String()
}
