package experiments_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hplsim/internal/experiments"
	"hplsim/internal/nas"
)

var updateBatch = flag.Bool("update", false, "rewrite the golden batch-study table")

func batchStudyOptions(t *testing.T) experiments.BatchStudyOptions {
	t.Helper()
	prof, err := nas.Get("is", 'A')
	if err != nil {
		t.Fatal(err)
	}
	return experiments.BatchStudyOptions{
		Profile:   prof,
		Nodes:     16,
		CalibReps: 4,
		Seeds:     []uint64{1, 2, 3, 4},
		Policies:  []string{"fcfs", "easy"},
		Schemes:   []experiments.Scheme{experiments.Std, experiments.HPL},
		Seed:      7,
	}
}

// TestBatchStudyGolden pins the full 4 seeds x {FCFS, EASY} x {Std, HPL}
// table byte for byte, following the schedstat golden-suite pattern:
// `go test ./internal/experiments -run BatchStudyGolden -update` rewrites
// the fixture after a deliberate behaviour change.
func TestBatchStudyGolden(t *testing.T) {
	rows, err := experiments.BatchStudy(batchStudyOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 2 * 2; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	got := []byte(experiments.FormatBatchStudy(rows))

	path := filepath.Join("testdata", "batch_study.golden")
	if *updateBatch {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("batch study drifted from the golden table.\ngot:\n%s\nwant:\n%s\n(run with -update if the change is deliberate)", got, want)
	}
}

// TestBatchStudyDeterministic pins that the whole two-level pipeline —
// kernel calibration runs included — is a pure function of its options.
func TestBatchStudyDeterministic(t *testing.T) {
	opt := batchStudyOptions(t)
	opt.Seeds = []uint64{1}
	a, err := experiments.BatchStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.BatchStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical study options produced different tables")
	}
}

// TestBatchStudySchemesDiffer is the scientific smoke test: the Std and
// HPL node kernels must produce different cluster outcomes on at least one
// (seed, policy) cell — otherwise the node model is not propagating into
// the batch layer at all.
func TestBatchStudySchemesDiffer(t *testing.T) {
	rows, err := experiments.BatchStudy(batchStudyOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[[2]string][]experiments.BatchStudyRow)
	for _, r := range rows {
		key := [2]string{r.Policy, r.Scheme}
		byCell[key] = append(byCell[key], r)
	}
	differ := false
	for _, r := range rows {
		if r.Scheme != "std" {
			continue
		}
		for _, h := range rows {
			if h.Seed == r.Seed && h.Policy == r.Policy && h.Scheme == "hpl" && h.Makespan != r.Makespan {
				differ = true
			}
		}
	}
	if !differ {
		t.Fatal("Std and HPL node models produced identical makespans on every cell")
	}
}
