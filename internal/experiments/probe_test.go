package experiments

import (
	"fmt"
	"testing"

	"hplsim/internal/nas"
	"hplsim/internal/stats"
)

func TestProbeEpDistributions(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	for _, sc := range []Scheme{Std, RT, HPL} {
		rs := RunMany(Options{Profile: nas.MustGet("ep", 'A'), Scheme: sc, Seed: 1000}, 150)
		el := make([]float64, len(rs))
		mg := make([]float64, len(rs))
		cx := make([]float64, len(rs))
		for i, r := range rs {
			el[i], mg[i], cx[i] = r.ElapsedSec, r.Migrations(), r.CtxSwitches()
		}
		s := stats.Summarize(el)
		m := stats.Summarize(mg)
		c := stats.Summarize(cx)
		fmt.Printf("%-4v time[%0.2f/%0.2f/%0.2f var%%=%0.0f p95=%0.2f] migr[%0.0f/%0.0f/%0.0f] ctx[%0.0f/%0.0f/%0.0f]\n",
			sc, s.Min, s.Mean, s.Max, s.VarPct(), s.P95, m.Min, m.Mean, m.Max, c.Min, c.Mean, c.Max)
	}
}
