package experiments

import (
	"testing"

	"hplsim/internal/nas"
)

// The std/fast-forward benchmark pair measures the replication cost of one
// ep.A run per iteration in each tick mode; cmd/benchjson records the same
// comparison (across schemes and tick rates) into BENCH_fastforward.json.

func BenchmarkRunStandard(b *testing.B) {
	opt := Options{Profile: nas.MustGet("ep", 'A'), Scheme: HPL, Seed: 1}
	for i := 0; i < b.N; i++ {
		opt.Seed++
		Run(opt)
	}
}

func BenchmarkRunFastForward(b *testing.B) {
	opt := Options{Profile: nas.MustGet("ep", 'A'), Scheme: HPL, Seed: 1, FastForward: true}
	for i := 0; i < b.N; i++ {
		opt.Seed++
		Run(opt)
	}
}
