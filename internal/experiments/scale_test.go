package experiments

import (
	"bytes"
	"testing"

	"hplsim/internal/nas"
	"hplsim/internal/schedstat"
	"hplsim/internal/topo"
)

// wideTopo is a multi-word machine (96 CPUs, masks span two words) small
// enough for quick equivalence runs.
func wideTopo(t *testing.T) topo.Topology {
	t.Helper()
	m, err := topo.Parse("2x24x2")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestNaiveRunEquivalence pins the contract of the kernel's Naive switch on
// a multi-word topology: the naive reference scans and the optimized word
// scans must produce bitwise-identical runs — same observables, same event
// traffic, and the same scheduling trace event for event. Only host cost
// may differ, which is what BENCH_scale.json measures.
func TestNaiveRunEquivalence(t *testing.T) {
	machine := wideTopo(t)
	for _, scheme := range []Scheme{Std, HPL} {
		for _, ff := range []bool{false, true} {
			opt := Options{
				Profile: nas.MustGet("is", 'A'), Scheme: scheme, Seed: 91,
				Topo: machine, FastForward: ff,
			}
			var naiveTrace, optTrace bytes.Buffer
			opt.Naive = true
			opt.Tracer = schedstat.NewWriter(&naiveTrace)
			naive := Run(opt)
			opt.Naive = false
			opt.Tracer = schedstat.NewWriter(&optTrace)
			fast := Run(opt)

			if naive.ElapsedSec != fast.ElapsedSec {
				t.Errorf("%v ff=%v: elapsed %v vs %v", scheme, ff, naive.ElapsedSec, fast.ElapsedSec)
			}
			if naive.Window != fast.Window {
				t.Errorf("%v ff=%v: perf window diverges:\n naive %+v\n opt   %+v",
					scheme, ff, naive.Window, fast.Window)
			}
			if naive.Sched != fast.Sched {
				t.Errorf("%v ff=%v: sched stats diverge:\n naive %+v\n opt   %+v",
					scheme, ff, naive.Sched, fast.Sched)
			}
			if naive.Energy != fast.Energy {
				t.Errorf("%v ff=%v: energy diverges:\n naive %+v\n opt   %+v",
					scheme, ff, naive.Energy, fast.Energy)
			}
			if naive.EventsDispatched != fast.EventsDispatched ||
				naive.LaneFires != fast.LaneFires ||
				naive.TicksCoalesced != fast.TicksCoalesced {
				t.Errorf("%v ff=%v: engine traffic diverges: naive %d/%d/%d vs opt %d/%d/%d",
					scheme, ff,
					naive.EventsDispatched, naive.LaneFires, naive.TicksCoalesced,
					fast.EventsDispatched, fast.LaneFires, fast.TicksCoalesced)
			}
			if !bytes.Equal(naiveTrace.Bytes(), optTrace.Bytes()) {
				t.Errorf("%v ff=%v: scheduling traces diverge (%d vs %d bytes)",
					scheme, ff, naiveTrace.Len(), optTrace.Len())
			}
			if t.Failed() {
				t.Fatalf("naive/optimized divergence under scheme %v ff=%v", scheme, ff)
			}
		}
	}
}

// TestWideNodeHPLSmoke boots the 1024-CPU node of the scaling study
// (4 chips x 128 cores x 2 threads) and runs a full measured HPL scenario
// on it: the run must complete, and HPL's fork-time-only contract must hold
// at width — each rank migrates at most once, at placement.
func TestWideNodeHPLSmoke(t *testing.T) {
	machine, err := topo.Parse("4x128x2")
	if err != nil {
		t.Fatal(err)
	}
	prof := nas.MustGet("is", 'A')
	r := Run(Options{
		Profile: prof, Scheme: HPL, Seed: 92,
		Topo: machine, FastForward: true,
	})
	if !r.Completed {
		t.Fatal("1024-CPU HPL run did not complete")
	}
	if r.ElapsedSec <= 0 {
		t.Fatalf("elapsed %v", r.ElapsedSec)
	}
	if got, max := r.Window.Migrations, uint64(prof.Ranks)*3; got > max {
		t.Errorf("window migrations %d exceed %d: dynamic balancing leaked into HPL at width", got, max)
	}
}
