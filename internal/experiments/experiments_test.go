package experiments

import (
	"strings"
	"testing"

	"hplsim/internal/nas"
	"hplsim/internal/stats"
	"hplsim/internal/topo"
)

// gather runs a profile under a scheme and summarises times/migrations/
// context switches.
func gather(t *testing.T, bench string, class byte, scheme Scheme, reps int, seed uint64) (times, mig, ctx stats.Summary) {
	t.Helper()
	rs := RunMany(Options{Profile: nas.MustGet(bench, class), Scheme: scheme, Seed: seed}, reps)
	el := make([]float64, len(rs))
	mg := make([]float64, len(rs))
	cx := make([]float64, len(rs))
	for i, r := range rs {
		if !r.Completed {
			t.Fatalf("run %d did not complete", i)
		}
		el[i], mg[i], cx[i] = r.ElapsedSec, r.Migrations(), r.CtxSwitches()
	}
	return stats.Summarize(el), stats.Summarize(mg), stats.Summarize(cx)
}

func TestHPLMigrationFloor(t *testing.T) {
	// Table Ib: HPL performs only the startup migrations (~10-14: eight
	// rank placements, mpiexec, chrt, perf, plus post-app balancing).
	_, mig, _ := gather(t, "is", 'A', HPL, 15, 42)
	if mig.Mean < 7 || mig.Mean > 20 {
		t.Fatalf("HPL migrations avg = %.1f, want ~10-14", mig.Mean)
	}
	if mig.Max > 30 {
		t.Fatalf("HPL migrations max = %.0f, want < 30", mig.Max)
	}
}

func TestHPLContextSwitchBaseline(t *testing.T) {
	// Table Ib: context switches under HPL sit near a constant baseline
	// (~300-400) and do not scale with the data-set size.
	_, _, ctxA := gather(t, "is", 'A', HPL, 10, 43)
	_, _, ctxB := gather(t, "is", 'B', HPL, 10, 43)
	for _, c := range []stats.Summary{ctxA, ctxB} {
		if c.Mean < 250 || c.Mean > 500 {
			t.Fatalf("HPL ctx switches avg = %.1f, want ~300-400", c.Mean)
		}
	}
	// Class B is 5x longer than class A; the baseline must not scale
	// with it (paper: 347 vs 355 for is).
	if ctxB.Mean > ctxA.Mean*1.4 {
		t.Fatalf("HPL ctx switches scale with data set: A=%.0f B=%.0f",
			ctxA.Mean, ctxB.Mean)
	}
}

func TestStdNoiseExceedsHPL(t *testing.T) {
	// Table I: the standard kernel migrates and switches far more.
	_, migStd, ctxStd := gather(t, "cg", 'A', Std, 15, 44)
	_, migHPL, ctxHPL := gather(t, "cg", 'A', HPL, 15, 44)
	if migStd.Mean < migHPL.Mean*2 {
		t.Fatalf("std migrations (%.1f) not clearly above HPL (%.1f)",
			migStd.Mean, migHPL.Mean)
	}
	if ctxStd.Mean < ctxHPL.Mean {
		t.Fatalf("std ctx switches (%.1f) below HPL (%.1f)",
			ctxStd.Mean, ctxHPL.Mean)
	}
}

func TestHPLVarianceCollapse(t *testing.T) {
	// Table II's headline: HPL collapses run-to-run variation to a few
	// percent while the standard kernel varies wildly.
	timesStd, _, _ := gather(t, "is", 'A', Std, 25, 45)
	timesHPL, _, _ := gather(t, "is", 'A', HPL, 25, 45)
	if timesHPL.VarPct() > 5 {
		t.Fatalf("HPL variation = %.1f%%, want < 5%%", timesHPL.VarPct())
	}
	if timesStd.VarPct() < timesHPL.VarPct()*3 {
		t.Fatalf("std variation (%.1f%%) not clearly above HPL (%.1f%%)",
			timesStd.VarPct(), timesHPL.VarPct())
	}
	// HPL's best time is at least as good as the standard kernel's.
	if timesHPL.Min > timesStd.Min*1.03 {
		t.Fatalf("HPL min (%.3f) worse than std min (%.3f)",
			timesHPL.Min, timesStd.Min)
	}
}

func TestCalibrationMatchesPaperHPLMinima(t *testing.T) {
	// The HPL minimum of every configuration must sit within a few
	// percent of the paper's Table II HPL minimum (the calibration
	// anchor). Class A profiles only, to keep the test quick.
	for _, prof := range nas.All() {
		if prof.Class != 'A' || prof.Bench == "ep" || prof.Bench == "lu" {
			continue // ep/lu class A take tens of simulated seconds
		}
		rs := RunMany(Options{Profile: prof, Scheme: HPL, Seed: 46}, 5)
		min := rs[0].ElapsedSec
		for _, r := range rs {
			if r.ElapsedSec < min {
				min = r.ElapsedSec
			}
		}
		lo, hi := prof.TargetSeconds*0.97, prof.TargetSeconds*1.12
		if min < lo || min > hi {
			t.Errorf("%s: HPL min %.3fs outside [%.3f, %.3f] (target %.2f)",
				prof.Name(), min, lo, hi, prof.TargetSeconds)
		}
	}
}

func TestRTIntermediate(t *testing.T) {
	// Figure 4: the RT scheduler is much more stable than standard CFS
	// but is not noise-free: throttling shifts it measurably above HPL.
	timesStd, _, _ := gather(t, "is", 'A', Std, 20, 47)
	timesRT, migRT, _ := gather(t, "is", 'A', RT, 20, 47)
	timesHPL, migHPL, _ := gather(t, "is", 'A', HPL, 20, 47)
	if timesRT.VarPct() > timesStd.VarPct() {
		t.Fatalf("RT variation (%.1f%%) above std (%.1f%%)",
			timesRT.VarPct(), timesStd.VarPct())
	}
	if migRT.Mean < migHPL.Mean*2 {
		t.Fatalf("RT migrations (%.1f) should clearly exceed HPL (%.1f)",
			migRT.Mean, migHPL.Mean)
	}
	_ = timesHPL
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(Options{Profile: nas.MustGet("is", 'A'), Scheme: Std, Seed: 48})
	b := Run(Options{Profile: nas.MustGet("is", 'A'), Scheme: Std, Seed: 48})
	if a.ElapsedSec != b.ElapsedSec || a.Window != b.Window {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
	c := Run(Options{Profile: nas.MustGet("is", 'A'), Scheme: Std, Seed: 49})
	if a.ElapsedSec == c.ElapsedSec && a.Window == c.Window {
		t.Fatal("different seeds produced identical results")
	}
}

func TestFigure1Renders(t *testing.T) {
	out := Figure1(5)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "cpu0") {
		t.Fatalf("Figure 1 output malformed:\n%s", out)
	}
	// The daemon must appear in the timeline.
	if !strings.Contains(out, "d") {
		t.Fatal("daemon not visible in Figure 1 timeline")
	}
}

func TestFigure3Correlation(t *testing.T) {
	// Figures 3a/3b: execution time correlates positively with both CPU
	// migrations and context switches under the standard scheduler.
	migr, ctx := Figure3(25, 50, 0)
	if migr.R <= 0.1 {
		t.Fatalf("time-vs-migrations correlation r = %.3f, want clearly positive", migr.R)
	}
	if ctx.R <= 0.1 {
		t.Fatalf("time-vs-ctxsw correlation r = %.3f, want clearly positive", ctx.R)
	}
}

func TestTablesRender(t *testing.T) {
	rows := TableI(HPL, 3, 51, Exec{}, topo.Topology{})
	if len(rows) != 12 {
		t.Fatalf("Table I rows = %d, want 12", len(rows))
	}
	out := FormatTableI("Table Ib", rows)
	if !strings.Contains(out, "ep.A.8") || !strings.Contains(out, "mg.B.8") {
		t.Fatalf("Table I missing rows:\n%s", out)
	}
}

func TestAblationTickMonotone(t *testing.T) {
	// A6: more ticks, more stolen time. HZ=1000 must not be faster than
	// HZ=100 on average.
	rows := AblationTick(nas.MustGet("is", 'A'), 8, 52, 0)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2].Times.Mean < rows[0].Times.Mean*0.999 {
		t.Fatalf("HZ=1000 (%.4f) faster than HZ=100 (%.4f)",
			rows[2].Times.Mean, rows[0].Times.Mean)
	}
}

func TestAblationPlacement(t *testing.T) {
	// A2: with 4 ranks, topology-aware placement (one rank per core)
	// beats naive first-fit (two SMT siblings per core) by roughly the
	// SMT factor.
	rows := AblationPlacement(3, 53, 0)
	topoAware, naive := rows[0].Times.Mean, rows[1].Times.Mean
	if naive < topoAware*1.2 {
		t.Fatalf("naive placement (%.2fs) not clearly slower than topology-aware (%.2fs)",
			naive, topoAware)
	}
}

func TestResonanceGrowsWithNodes(t *testing.T) {
	// Section II: noise amplifies with scale under the standard kernel
	// and stays flat under HPL.
	std, hpl := ResonanceStudy([]int{1, 64, 1024}, 6, 50, 200, 54, 0)
	if std[2].MeanSlowdown <= std[0].MeanSlowdown {
		t.Fatalf("std slowdown does not grow with nodes: %+v", std)
	}
	if hpl[2].MeanSlowdown > 1.1 {
		t.Fatalf("HPL slowdown at 1024 nodes = %.3f, want ~1.0", hpl[2].MeanSlowdown)
	}
	if std[2].MeanSlowdown < hpl[2].MeanSlowdown {
		t.Fatalf("std (%.3f) below HPL (%.3f) at scale",
			std[2].MeanSlowdown, hpl[2].MeanSlowdown)
	}
}

func TestAblationNettickImproves(t *testing.T) {
	// A7: the adaptive housekeeping tick removes most timer micro-noise;
	// HZ=1000 + NETTICK must beat plain HZ=1000 and be at least as good
	// as HZ=250.
	rows := AblationNettick(nas.MustGet("is", 'A'), 6, 60, 0)
	hz1000, hz250, nettick := rows[0].Times.Mean, rows[1].Times.Mean, rows[2].Times.Mean
	if nettick > hz1000 {
		t.Fatalf("NETTICK (%.4f) slower than plain HZ=1000 (%.4f)", nettick, hz1000)
	}
	if nettick > hz250*1.005 {
		t.Fatalf("NETTICK (%.4f) clearly slower than HZ=250 (%.4f)", nettick, hz250)
	}
}

func TestEnergyStudyTradeoff(t *testing.T) {
	rows := EnergyStudy(61)
	aware, packed := rows[0], rows[1]
	// Spreading must be faster (no SMT sharing); packing must draw less
	// average power (fewer cores awake).
	if aware.Seconds >= packed.Seconds {
		t.Fatalf("topology-aware (%.2fs) not faster than packed (%.2fs)",
			aware.Seconds, packed.Seconds)
	}
	if packed.Watts >= aware.Watts {
		t.Fatalf("packed (%.1fW) not lower power than spread (%.1fW)",
			packed.Watts, aware.Watts)
	}
}

func TestHPLApproachesCNK(t *testing.T) {
	// The paper's framing: HPL makes a monolithic kernel "behave like a
	// micro-kernel". Against the CNK bound (dedicated node, no daemons,
	// housekeeping tick), HPL's mean must be within 1.5% and its
	// best-case within 0.5%.
	hpl, _, _ := gather(t, "is", 'A', HPL, 10, 62)
	cnk, _, _ := gather(t, "is", 'A', CNK, 10, 62)
	if hpl.Min > cnk.Min*1.005 {
		t.Fatalf("HPL best (%.4f) more than 0.5%% behind CNK (%.4f)",
			hpl.Min, cnk.Min)
	}
	if hpl.Mean > cnk.Mean*1.015 {
		t.Fatalf("HPL mean (%.4f) more than 1.5%% behind CNK (%.4f)",
			hpl.Mean, cnk.Mean)
	}
	// And the ordering is right: a dedicated kernel is never slower.
	if cnk.Mean > hpl.Mean*1.005 {
		t.Fatalf("CNK (%.4f) slower than HPL (%.4f)?", cnk.Mean, hpl.Mean)
	}
}

func TestSyncStudyStructure(t *testing.T) {
	rows := SyncStudy(3, 70, 0)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// The wavefront reference must be slower than the barrier reference
	// (the pipeline serialises the critical path)...
	if rows[2].Times.Mean <= rows[0].Times.Mean {
		t.Fatalf("wavefront HPL (%.3f) not slower than barrier HPL (%.3f)",
			rows[2].Times.Mean, rows[0].Times.Mean)
	}
	// ...and noise must cost something in both structures.
	if rows[1].Times.Mean < rows[0].Times.Mean {
		t.Fatal("std barrier run beat the HPL reference")
	}
	if rows[3].Times.Mean < rows[2].Times.Mean {
		t.Fatal("std wavefront run beat the HPL reference")
	}
	out := FormatSyncStudy(rows)
	if !strings.Contains(out, "noise overhead") {
		t.Fatalf("summary line missing:\n%s", out)
	}
}

func TestSchemeStringsRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Schemes() {
		s := sc.String()
		if seen[s] {
			t.Fatalf("duplicate scheme name %q", s)
		}
		seen[s] = true
	}
	for _, want := range []string{"std", "rt", "hpl", "pinned", "nice", "cnk"} {
		if !seen[want] {
			t.Fatalf("scheme %q missing from Schemes()", want)
		}
	}
}

func TestResultCarriesStatsAndEnergy(t *testing.T) {
	r := Run(Options{Profile: nas.MustGet("is", 'A'), Scheme: Std, Seed: 71})
	if r.Energy.Joules <= 0 {
		t.Fatal("energy report missing")
	}
	if r.Sched.BalanceCalls == 0 {
		t.Fatal("schedstat missing under the standard scheduler")
	}
	if len(r.IterationSec) == 0 {
		t.Fatal("iteration times missing")
	}
}
