package experiments

import (
	"fmt"
	"strings"

	"hplsim/internal/kernel"
	"hplsim/internal/mpi"
	"hplsim/internal/nas"
	"hplsim/internal/pool"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/stats"
	"hplsim/internal/task"
)

// AblationRow compares one configuration against the HPL baseline.
type AblationRow struct {
	Label string
	Times stats.Summary
	Mig   stats.Summary
	Ctx   stats.Summary
}

// runScheme collects a row for one (profile, scheme) pair.
func runScheme(label string, prof nas.Profile, scheme Scheme, reps int, seed uint64, workers int) AblationRow {
	rs := RunManyOpt(Options{Profile: prof, Scheme: scheme, Seed: seed}, reps, workers)
	el := make([]float64, len(rs))
	mg := make([]float64, len(rs))
	cx := make([]float64, len(rs))
	for i, r := range rs {
		el[i], mg[i], cx[i] = r.ElapsedSec, r.Migrations(), r.CtxSwitches()
	}
	return AblationRow{
		Label: label,
		Times: stats.Summarize(el),
		Mig:   stats.Summarize(mg),
		Ctx:   stats.Summarize(cx),
	}
}

// AblationDynamicBalance (A1) tests the paper's claim that "balancing tasks
// dynamically simply introduces too much OS noise": the HPC class with the
// dynamic load balancer left on, against proper HPL.
func AblationDynamicBalance(prof nas.Profile, reps int, seed uint64, workers int) []AblationRow {
	return []AblationRow{
		runScheme("hpl (fork-time only)", prof, HPL, reps, seed, workers),
		runScheme("hpl + dynamic balance", prof, HPLDynamic, reps, seed, workers),
	}
}

// AblationPlacement (A2) tests the topology-aware spread against first-fit
// placement. The difference shows with fewer ranks than hardware threads:
// with four ranks, topology-aware placement gives every rank a whole core
// while first-fit packs two SMT siblings per core on one chip.
func AblationPlacement(reps int, seed uint64, workers int) []AblationRow {
	// A 4-rank variant of ep.A: same per-rank work, half the ranks.
	prof := nas.MustGet("ep", 'A')
	rows := []AblationRow{}
	for _, cfg := range []struct {
		label string
		naive bool
	}{
		{"topology-aware placement", false},
		{"naive first-fit placement", true},
	} {
		cfg := cfg
		el := make([]float64, reps)
		pool.ForN(reps, workers, func(i int) {
			el[i] = runFourRanks(prof, cfg.naive, seed+uint64(i)*7919)
		})
		rows = append(rows, AblationRow{Label: cfg.label, Times: stats.Summarize(el)})
	}
	return rows
}

// runFourRanks runs a 4-rank ep-like job under HPL and returns the elapsed
// seconds. Kept separate from Run because the paper's harness is fixed at
// 8 ranks.
func runFourRanks(prof nas.Profile, naive bool, seed uint64) float64 {
	k := kernel.New(kernel.Config{
		Balance:           sched.BalanceHPL,
		HPCNaivePlacement: naive,
		Seed:              seed,
	})
	cfg := prof.WorldConfig(task.HPC, 0, 0)
	cfg.Ranks = 4
	w := mpi.NewWorld(k, cfg)
	w.OnComplete = func() { k.Eng.After(sim.Millisecond, k.Stop) }
	w.Launch(nil, prof.Program(k.RNG(1)))
	k.Run(sim.Time(sim.Seconds(prof.TargetSeconds*20) + 60*sim.Second))
	return w.Elapsed().Seconds()
}

// AblationAlternatives compares the Section IV alternatives (RT scheduler,
// static pinning, nice -20) and standard CFS against HPL on one profile,
// with the CNK-style dedicated node as the lightweight-kernel bound from
// the paper's related work.
func AblationAlternatives(prof nas.Profile, reps int, seed uint64, workers int) []AblationRow {
	rows := []AblationRow{}
	for _, s := range []Scheme{Std, Nice, Pinned, RT, HPL, CNK} {
		rows = append(rows, runScheme(s.String(), prof, s, reps, seed, workers))
	}
	return rows
}

// AblationTick (A6) sweeps the timer frequency to expose tick micro-noise
// (the NETTICK discussion in Section V): higher HZ steals more CPU time
// and adds scheduling points.
func AblationTick(prof nas.Profile, reps int, seed uint64, workers int) []AblationRow {
	rows := []AblationRow{}
	for _, hz := range []int{100, 250, 1000} {
		rs := RunManyOpt(Options{Profile: prof, Scheme: HPL, Seed: seed, HZ: hz}, reps, workers)
		el := make([]float64, len(rs))
		for i, r := range rs {
			el[i] = r.ElapsedSec
		}
		rows = append(rows, AblationRow{
			Label: fmt.Sprintf("HZ=%d", hz),
			Times: stats.Summarize(el),
		})
	}
	return rows
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-26s | %8s %8s %8s %8s | %9s %9s\n",
		"configuration", "min(s)", "avg(s)", "max(s)", "var%", "migr avg", "ctx avg")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s | %8.3f %8.3f %8.3f %8.2f | %9.1f %9.1f\n",
			r.Label, r.Times.Min, r.Times.Mean, r.Times.Max, r.Times.VarPct(),
			r.Mig.Mean, r.Ctx.Mean)
	}
	return b.String()
}

// AblationNettick (A7) measures the NETTICK-style adaptive tick the paper
// pairs with HPL: with the housekeeping tick, the timer micro-noise on
// lone HPC ranks all but disappears.
func AblationNettick(prof nas.Profile, reps int, seed uint64, workers int) []AblationRow {
	rows := []AblationRow{}
	for _, cfg := range []struct {
		label    string
		adaptive bool
		hz       int
	}{
		{"HPL, HZ=1000", false, 1000},
		{"HPL, HZ=250", false, 250},
		{"HPL + NETTICK", true, 1000},
	} {
		rs := RunManyOpt(Options{Profile: prof, Scheme: HPL, Seed: seed,
			HZ: cfg.hz, AdaptiveTick: cfg.adaptive}, reps, workers)
		el := make([]float64, len(rs))
		for i, r := range rs {
			el[i] = r.ElapsedSec
		}
		rows = append(rows, AblationRow{Label: cfg.label, Times: stats.Summarize(el)})
	}
	return rows
}

// EnergyRow reports the energy/performance trade-off of one placement.
type EnergyRow struct {
	Label   string
	Seconds float64
	Joules  float64
	Watts   float64
}

// EnergyStudy quantifies the power dimension the paper leaves as future
// work: a 4-rank job placed topology-aware (one rank per core, four cores
// awake) versus packed (two cores awake, SMT-shared). Spreading finishes
// faster; packing draws less power; the energy verdict depends on both.
func EnergyStudy(seed uint64) []EnergyRow {
	prof := nas.MustGet("ep", 'A')
	rows := []EnergyRow{}
	for _, cfg := range []struct {
		label string
		naive bool
	}{
		{"topology-aware (4 cores awake)", false},
		{"packed first-fit (2 cores awake)", true},
	} {
		k := kernel.New(kernel.Config{
			Balance:           sched.BalanceHPL,
			HPCNaivePlacement: cfg.naive,
			Seed:              seed,
		})
		wcfg := prof.WorldConfig(task.HPC, 0, 0)
		wcfg.Ranks = 4
		w := mpi.NewWorld(k, wcfg)
		w.OnComplete = func() { k.Stop() }
		w.Launch(nil, prof.Program(k.RNG(1)))
		k.Run(sim.Time(sim.Seconds(prof.TargetSeconds*20) + 60*sim.Second))
		e := k.Energy()
		rows = append(rows, EnergyRow{
			Label:   cfg.label,
			Seconds: w.Elapsed().Seconds(),
			Joules:  e.Joules,
			Watts:   e.AvgWatts,
		})
	}
	return rows
}

// FormatEnergy renders the energy study.
func FormatEnergy(rows []EnergyRow) string {
	var b strings.Builder
	b.WriteString("Energy/performance trade-off of HPC placement (4 ranks, ep.A-sized work)\n")
	fmt.Fprintf(&b, "%-34s %10s %12s %10s\n", "placement", "time (s)", "energy (J)", "avg W")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %10.2f %12.0f %10.1f\n", r.Label, r.Seconds, r.Joules, r.Watts)
	}
	return b.String()
}
