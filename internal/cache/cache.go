// Package cache models the per-core cache warmth of tasks and its effect on
// execution speed.
//
// The paper attributes the indirect cost of preemption and CPU migration to
// cache effects: a preempting process evicts an HPC task's lines, and a
// migrated task "may lose its cache contents and cannot run at full speed
// until the cache rewarms" (Section III). We capture that with a scalar
// warmth w in [0,1] per task:
//
//   - while the task runs, warmth approaches 1 with time constant WarmTau:
//     dw/dt = (1-w)/WarmTau
//   - execution speed is ips * (1 - S*(1-w)), where S in [0,1] is the
//     workload's cache sensitivity (fraction of peak lost when fully cold);
//   - when other tasks run on the same core, warmth decays exponentially
//     with the exposure time (EvictTau);
//   - a migration to a different physical core zeroes warmth; a migration
//     between SMT siblings keeps it (they share L1/L2 on POWER6).
//
// Work is measured in nanoseconds of full-speed compute, so a task with
// sensitivity 0 and no SMT contention finishes W nanoseconds of work in
// exactly W nanoseconds. The integration below is exact for the warmth ODE,
// and FinishTime inverts it with a guarded Newton iteration.
package cache

import (
	"math"

	"hplsim/internal/sim"
)

// Model holds the cache time constants for a machine.
type Model struct {
	// WarmTau is the rewarm time constant: after running cold for
	// WarmTau, a task has recovered ~63% of its warmth.
	WarmTau sim.Duration
	// EvictTau is the eviction time constant: after other tasks have run
	// on the warm core for EvictTau, warmth has decayed to ~37%.
	EvictTau sim.Duration
}

// DefaultModel returns constants sized for a POWER6-class core: 64 KiB L1 +
// 4 MiB semi-private L2 rewarm in a few milliseconds of misses, and a
// preempting daemon of comparable footprint evicts on a similar scale.
func DefaultModel() Model {
	return Model{
		WarmTau:  3 * sim.Millisecond,
		EvictTau: 4 * sim.Millisecond,
	}
}

// Warmth evolves warmth w0 after running for dt.
func (m Model) Warmth(w0 float64, dt sim.Duration) float64 {
	if dt <= 0 {
		return w0
	}
	return 1 - (1-w0)*math.Exp(-float64(dt)/float64(m.WarmTau))
}

// Evict decays warmth w0 after other tasks have occupied the core for
// exposure time.
func (m Model) Evict(w0 float64, exposure sim.Duration) float64 {
	if exposure <= 0 {
		return w0
	}
	return w0 * math.Exp(-float64(exposure)/float64(m.EvictTau))
}

// Progress reports the work (full-speed nanoseconds) completed by a task
// that runs for dt starting at warmth w0 with sensitivity s, and the warmth
// at the end of the span. The result is the exact integral of the speed
// curve ips(t) = 1 - s*(1-w(t)).
func (m Model) Progress(dt sim.Duration, w0, s float64) (work float64, w1 float64) {
	if dt <= 0 {
		return 0, w0
	}
	if w0 == 1 {
		// Saturated warmth is the ODE's fixed point: the general
		// expressions below reduce to work == t and w1 == 1 exactly
		// (cold == 0 and 1-(1-1)*e^x == 1 bitwise), so skipping the two
		// math.Exp calls cannot perturb a trace. Long-running tasks
		// saturate within ~40*WarmTau, making this the hot tick path.
		return float64(dt), 1
	}
	t := float64(dt)
	tau := float64(m.WarmTau)
	cold := s * (1 - w0)
	// integral of cold*e^(-t/tau) over the span
	lost := cold * tau * (1 - math.Exp(-t/tau))
	return t - lost, m.Warmth(w0, dt)
}

// FinishTime reports the wall time needed to complete `work` full-speed
// nanoseconds starting at warmth w0 with sensitivity s. It inverts
// Progress; Progress(FinishTime(W), w0, s) == W to within a nanosecond.
func (m Model) FinishTime(work float64, w0, s float64) sim.Duration {
	if work <= 0 {
		return 0
	}
	tau := float64(m.WarmTau)
	c := s * (1 - w0) * tau // total work deficit if run forever from cold
	if c < 1e-9 {
		return sim.Duration(math.Ceil(work))
	}
	// Solve f(t) = t - c*(1-e^(-t/tau)) - work = 0. f is convex and
	// increasing; starting from the upper bound work+c Newton converges
	// monotonically from above.
	t := work + c
	for i := 0; i < 32; i++ {
		et := math.Exp(-t / tau)
		f := t - c*(1-et) - work
		if f < 0.5 { // within half a nanosecond
			break
		}
		df := 1 - c/tau*et
		t -= f / df
	}
	if t < work {
		t = work // speed never exceeds 1: wall time >= work
	}
	return sim.Duration(math.Ceil(t))
}

// Speed reports the instantaneous execution speed (fraction of peak) at
// warmth w with sensitivity s.
func Speed(w, s float64) float64 { return 1 - s*(1-w) }

// State is the cache bookkeeping attached to each task.
type State struct {
	// Warmth is the task's current cache warmth in [0,1], valid for Core.
	Warmth float64
	// Core is the physical core the warmth refers to, -1 if never run.
	Core int
	// BusySnapshot is the owning core's busy-time accumulator at the
	// moment the task was last descheduled; the difference on resume is
	// the eviction exposure.
	BusySnapshot sim.Duration
}

// NewState returns the cold initial state.
func NewState() State { return State{Core: -1} }

// OnMigrate updates warmth for a move to newCore. Moves between SMT
// siblings (same physical core) preserve warmth; anything else is a cold
// start, matching the paper's footnote that migration overhead "is
// mitigated if the source and destination cores share some levels of
// cache".
func (s *State) OnMigrate(newCore int) {
	if s.Core != newCore {
		s.Warmth = 0
		s.Core = newCore
	}
}
