package cache

import (
	"math"
	"testing"
	"testing/quick"

	"hplsim/internal/sim"
)

func TestWarmthMonotone(t *testing.T) {
	m := DefaultModel()
	w := 0.0
	for i := 0; i < 20; i++ {
		w2 := m.Warmth(w, sim.Millisecond)
		if w2 < w || w2 > 1 {
			t.Fatalf("warmth not monotone in [0,1]: %v -> %v", w, w2)
		}
		w = w2
	}
	if w < 0.95 {
		t.Fatalf("warmth after 20ms (tau=3ms) = %v, want near 1", w)
	}
}

func TestWarmthComposition(t *testing.T) {
	// Running 5ms then 7ms equals running 12ms.
	m := DefaultModel()
	a := m.Warmth(m.Warmth(0.2, 5*sim.Millisecond), 7*sim.Millisecond)
	b := m.Warmth(0.2, 12*sim.Millisecond)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("warmth not compositional: %v vs %v", a, b)
	}
}

func TestEvict(t *testing.T) {
	m := DefaultModel()
	w := m.Evict(1.0, m.EvictTau)
	if math.Abs(w-1/math.E) > 1e-9 {
		t.Fatalf("Evict after one tau = %v, want 1/e", w)
	}
	if m.Evict(0.5, 0) != 0.5 {
		t.Fatal("zero exposure changed warmth")
	}
}

func TestProgressInsensitiveTask(t *testing.T) {
	// Sensitivity 0: work == wall time exactly.
	m := DefaultModel()
	work, w1 := m.Progress(10*sim.Millisecond, 0, 0)
	if work != float64(10*sim.Millisecond) {
		t.Fatalf("work = %v, want 10ms", work)
	}
	if w1 <= 0.9 {
		t.Fatalf("warmth did not rise: %v", w1)
	}
}

func TestProgressColdPenalty(t *testing.T) {
	// A fully cold, fully sensitive task loses about tau of work when
	// running much longer than tau.
	m := DefaultModel()
	dt := 100 * sim.Millisecond
	work, _ := m.Progress(dt, 0, 1)
	lost := float64(dt) - work
	if math.Abs(lost-float64(m.WarmTau)) > float64(m.WarmTau)*1e-6 {
		t.Fatalf("asymptotic loss = %v ns, want ~tau = %v", lost, m.WarmTau)
	}
}

func TestProgressAdditive(t *testing.T) {
	// Splitting a span at any point yields the same total work.
	m := DefaultModel()
	w0, s := 0.3, 0.6
	whole, _ := m.Progress(9*sim.Millisecond, w0, s)
	a, wm := m.Progress(4*sim.Millisecond, w0, s)
	b, _ := m.Progress(5*sim.Millisecond, wm, s)
	if math.Abs(whole-(a+b)) > 1e-6 {
		t.Fatalf("progress not additive: %v vs %v", whole, a+b)
	}
}

func TestFinishTimeInvertsProgress(t *testing.T) {
	m := DefaultModel()
	check := func(workMs, w0f, sf uint16) bool {
		work := float64(workMs%200+1) * 1e6 // 1..200ms of work
		w0 := float64(w0f%1000) / 1000
		s := float64(sf%1000) / 1000
		dt := m.FinishTime(work, w0, s)
		got, _ := m.Progress(dt, w0, s)
		// FinishTime rounds up to whole ns, so got >= work, within 2ns
		// of slack (1ns rounding + speed<=1).
		return got >= work-1e-6 && got <= work+2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFinishTimeBounds(t *testing.T) {
	m := DefaultModel()
	work := float64(5 * sim.Millisecond)
	dt := m.FinishTime(work, 0, 0.8)
	if float64(dt) < work {
		t.Fatalf("finish faster than full speed: %v < %v", dt, work)
	}
	upper := work + 0.8*float64(m.WarmTau)
	if float64(dt) > upper+1 {
		t.Fatalf("finish slower than cold bound: %v > %v", float64(dt), upper)
	}
	if m.FinishTime(0, 0, 1) != 0 {
		t.Fatal("zero work takes time")
	}
}

func TestFinishTimeWarmIsFaster(t *testing.T) {
	m := DefaultModel()
	work := float64(2 * sim.Millisecond)
	cold := m.FinishTime(work, 0, 0.7)
	warm := m.FinishTime(work, 0.9, 0.7)
	if warm >= cold {
		t.Fatalf("warm start not faster: warm=%v cold=%v", warm, cold)
	}
}

func TestSpeed(t *testing.T) {
	if Speed(1, 1) != 1 || Speed(0, 1) != 0 || Speed(0, 0.4) != 0.6 {
		t.Fatal("Speed formula wrong")
	}
}

func TestStateMigration(t *testing.T) {
	s := NewState()
	if s.Core != -1 {
		t.Fatal("initial core not -1")
	}
	s.Warmth = 0.8
	s.Core = 2
	s.OnMigrate(2) // same core: keep warmth
	if s.Warmth != 0.8 {
		t.Fatal("same-core migrate lost warmth")
	}
	s.OnMigrate(3) // cross-core: cold
	if s.Warmth != 0 || s.Core != 3 {
		t.Fatalf("cross-core migrate kept warmth: %+v", s)
	}
}

func BenchmarkFinishTime(b *testing.B) {
	m := DefaultModel()
	for i := 0; i < b.N; i++ {
		m.FinishTime(float64(3*sim.Millisecond), 0.2, 0.7)
	}
}

func BenchmarkProgress(b *testing.B) {
	m := DefaultModel()
	for i := 0; i < b.N; i++ {
		m.Progress(4*sim.Millisecond, 0.3, 0.5)
	}
}
