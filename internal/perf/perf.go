// Package perf collects the software performance events the paper measures
// with the Linux perf tool (Section III): context switches and CPU
// migrations, plus a breakdown the analysis uses (voluntary vs involuntary
// switches, wakeups, balance operations).
//
// Counters accumulate system-wide from boot; an experiment opens a Window
// when its measurement starts (perf launching chrt) and closes it when the
// measured command exits, mirroring `perf stat -a`.
package perf

import "fmt"

// Counters are monotonically increasing system-wide event counts.
type Counters struct {
	// ContextSwitches counts scheduler switches where the outgoing and
	// incoming tasks differ (including switches to and from idle), as
	// perf's context-switches event does.
	ContextSwitches uint64
	// Migrations counts task placements on a CPU different from the
	// task's previous one: fork placement, wake balancing, and load
	// balancer moves, as perf's cpu-migrations event does.
	Migrations uint64

	// VoluntarySwitches counts switches where the outgoing task blocked.
	VoluntarySwitches uint64
	// InvoluntarySwitches counts switches where the outgoing task was
	// preempted while still runnable.
	InvoluntarySwitches uint64
	// Wakeups counts sleeping-to-runnable transitions.
	Wakeups uint64
	// BalanceMoves counts migrations performed by the load balancer
	// (periodic or idle pull), a subset of Migrations.
	BalanceMoves uint64
	// Forks counts task creations.
	Forks uint64
	// Ticks counts timer interrupts delivered to busy CPUs, whether
	// dispatched live or replayed by the fast-forward mode (the two
	// tick modes agree on this count by construction).
	Ticks uint64
	// TicksCoalesced counts the subset of Ticks that fast-forward mode
	// settled by replay instead of dispatching. Zero in standard mode;
	// purely diagnostic — it measures how much event traffic coalescing
	// removed, not a scheduling behaviour.
	TicksCoalesced uint64
}

// Sub returns the per-window deltas c - start.
func (c Counters) Sub(start Counters) Counters {
	return Counters{
		ContextSwitches:     c.ContextSwitches - start.ContextSwitches,
		Migrations:          c.Migrations - start.Migrations,
		VoluntarySwitches:   c.VoluntarySwitches - start.VoluntarySwitches,
		InvoluntarySwitches: c.InvoluntarySwitches - start.InvoluntarySwitches,
		Wakeups:             c.Wakeups - start.Wakeups,
		BalanceMoves:        c.BalanceMoves - start.BalanceMoves,
		Forks:               c.Forks - start.Forks,
		Ticks:               c.Ticks - start.Ticks,
		TicksCoalesced:      c.TicksCoalesced - start.TicksCoalesced,
	}
}

func (c Counters) String() string {
	return fmt.Sprintf("ctxsw=%d (vol=%d invol=%d) migrations=%d (balance=%d) wakeups=%d forks=%d",
		c.ContextSwitches, c.VoluntarySwitches, c.InvoluntarySwitches,
		c.Migrations, c.BalanceMoves, c.Wakeups, c.Forks)
}

// Window is an open measurement interval over a Counters instance.
type Window struct {
	src   *Counters
	start Counters
}

// Open starts a system-wide measurement window, like `perf stat -a cmd`.
func Open(src *Counters) *Window {
	return &Window{src: src, start: *src}
}

// Close returns the event deltas accumulated since Open.
func (w *Window) Close() Counters {
	return w.src.Sub(w.start)
}
