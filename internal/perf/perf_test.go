package perf

import (
	"strings"
	"testing"
)

func TestWindowDeltas(t *testing.T) {
	var c Counters
	c.ContextSwitches = 100
	c.Migrations = 10

	w := Open(&c)
	c.ContextSwitches += 50
	c.Migrations += 5
	c.VoluntarySwitches += 30
	c.InvoluntarySwitches += 20
	c.Wakeups += 7
	c.BalanceMoves += 3
	c.Forks += 2
	c.Ticks += 1000

	got := w.Close()
	want := Counters{
		ContextSwitches: 50, Migrations: 5,
		VoluntarySwitches: 30, InvoluntarySwitches: 20,
		Wakeups: 7, BalanceMoves: 3, Forks: 2, Ticks: 1000,
	}
	if got != want {
		t.Fatalf("window = %+v, want %+v", got, want)
	}
}

func TestWindowIsolation(t *testing.T) {
	var c Counters
	c.ContextSwitches = 5
	w1 := Open(&c)
	c.ContextSwitches = 8
	w2 := Open(&c)
	c.ContextSwitches = 10
	if w1.Close().ContextSwitches != 5 {
		t.Fatal("w1 delta wrong")
	}
	if w2.Close().ContextSwitches != 2 {
		t.Fatal("w2 delta wrong")
	}
}

func TestCloseIdempotentSnapshot(t *testing.T) {
	var c Counters
	w := Open(&c)
	c.Migrations = 3
	a := w.Close()
	c.Migrations = 7
	b := w.Close()
	if a.Migrations != 3 || b.Migrations != 7 {
		t.Fatalf("close snapshots wrong: %d then %d", a.Migrations, b.Migrations)
	}
}

func TestSub(t *testing.T) {
	a := Counters{ContextSwitches: 10, Migrations: 4}
	b := Counters{ContextSwitches: 3, Migrations: 1}
	d := a.Sub(b)
	if d.ContextSwitches != 7 || d.Migrations != 3 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestString(t *testing.T) {
	c := Counters{ContextSwitches: 42, Migrations: 7, VoluntarySwitches: 30,
		InvoluntarySwitches: 12, BalanceMoves: 2, Wakeups: 9, Forks: 1}
	s := c.String()
	for _, frag := range []string{"ctxsw=42", "migrations=7", "vol=30", "invol=12"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String missing %q: %s", frag, s)
		}
	}
}
