package sim

import "math"

// RNG is a small, fast, deterministic random number generator based on
// SplitMix64. Each subsystem of the simulation owns its own stream (derived
// with Split) so that adding random draws to one subsystem does not perturb
// the sequence seen by another — a property that keeps calibrated
// experiments stable as the model evolves.
type RNG struct {
	seed  uint64 // the seed this stream was created with; immutable
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed, state: seed + 0x9e3779b97f4a7c15}
}

// Split derives an independent child stream identified by label. The child
// sequence is a pure function of (parent seed, label), not of how many draws
// the parent has made, so subsystem streams are stable.
func (r *RNG) Split(label uint64) *RNG {
	z := r.seed + (label+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(z ^ (z >> 31))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1). Multiply by the desired mean.
func (r *RNG) ExpFloat64() float64 {
	// Inverse-CDF; clamp the uniform away from 0 to avoid +Inf.
	u := r.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	return -math.Log(u)
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, via the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpDuration returns an exponentially distributed duration with the given
// mean.
func (r *RNG) ExpDuration(mean Duration) Duration {
	return Duration(float64(mean) * r.ExpFloat64())
}

// UniformDuration returns a duration uniform in [lo, hi).
func (r *RNG) UniformDuration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Int63n(int64(hi-lo)))
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]. Useful for
// de-synchronising periodic activities.
func (r *RNG) Jitter(d Duration, f float64) Duration {
	scale := 1 + f*(2*r.Float64()-1)
	return Duration(float64(d) * scale)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
