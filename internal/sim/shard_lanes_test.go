package sim

import (
	"reflect"
	"testing"
)

// TestShardedLaneHeapsMatchSingleHeap pins the SetShards contract: splitting
// the lane index over per-shard heaps must not change a single observable
// firing. Two engines run the same deterministic lane schedule — one with
// all lanes in the default heap, one sharded three ways — and the (time, id)
// firing sequences must be identical, ties and all.
func TestShardedLaneHeapsMatchSingleHeap(t *testing.T) {
	const lanes = 12
	run := func(shards int) []int64 {
		e := NewEngine()
		var fired []int64
		// A small LCG drives re-arming so the schedule is irregular but
		// identical across both engines, with deliberate ties (coarse grid).
		state := uint64(0x9e3779b97f4a7c15)
		next := func() uint64 { state = state*6364136223846793005 + 1442695040888963407; return state }
		for i := 0; i < lanes; i++ {
			id := i
			id = e.NewLane(func() {
				fired = append(fired, int64(e.Now())<<8|int64(id))
				if step := Duration(next()%5) * Millisecond; e.Now() < Time(200*Millisecond) {
					e.ArmLane(id, e.Now().Add(step+Millisecond))
				}
			})
		}
		if shards > 1 {
			shardOf := make([]int, lanes)
			for i := range shardOf {
				shardOf[i] = i % shards // interleaved, not contiguous: any map must work
			}
			e.SetShards(shards, shardOf)
		}
		for i := 0; i < lanes; i++ {
			e.ArmLane(i, Time(Duration(i%3)*Millisecond)) // ties on the grid
		}
		e.Run(Time(250 * Millisecond))
		return fired
	}
	seq, sharded := run(1), run(3)
	if len(seq) == 0 {
		t.Fatal("schedule fired no lanes; test is vacuous")
	}
	if !reflect.DeepEqual(seq, sharded) {
		t.Fatalf("lane firing sequences diverge:\n single heap %v\n sharded     %v", seq, sharded)
	}
}

// TestSetShardsRejectsMisuse: the shard map is fixed before any lane arms,
// and malformed maps fail loudly instead of silently mis-heaping lanes.
func TestSetShardsRejectsMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	fresh := func() *Engine {
		e := NewEngine()
		e.NewLane(func() {})
		e.NewLane(func() {})
		return e
	}
	mustPanic("zero shards", func() { fresh().SetShards(0, []int{0, 0}) })
	mustPanic("length mismatch", func() { fresh().SetShards(2, []int{0}) })
	mustPanic("assignment out of range", func() { fresh().SetShards(2, []int{0, 2}) })
	mustPanic("after arming", func() {
		e := fresh()
		e.ArmLane(0, Time(Millisecond))
		e.SetShards(2, []int{0, 1})
	})
}
