package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30*Millisecond, func() { got = append(got, 3) })
	e.After(10*Millisecond, func() { got = append(got, 1) })
	e.After(20*Millisecond, func() { got = append(got, 2) })
	e.Run(Infinity)
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30*Millisecond) {
		t.Fatalf("final time = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	at := Time(5 * Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		e.At(at, func() { got = append(got, i) })
	}
	e.Run(Infinity)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events dispatched out of FIFO order: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(Millisecond, func() { fired = true })
	e.Cancel(ev)
	e.Run(Infinity)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
	// Double-cancel is a no-op.
	e.Cancel(ev)
}

func TestEngineCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	later := e.After(2*Millisecond, func() { fired = true })
	e.After(Millisecond, func() { e.Cancel(later) })
	e.Run(Infinity)
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestEngineReschedule(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.After(Millisecond, func() { at = e.Now() })
	e.Reschedule(ev, Time(7*Millisecond))
	e.Run(Infinity)
	if at != Time(7*Millisecond) {
		t.Fatalf("rescheduled event fired at %v, want 7ms", at)
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	e.After(Millisecond, func() { count++ })
	e.After(10*Millisecond, func() { count++ })
	e.Run(Time(5 * Millisecond))
	if count != 1 {
		t.Fatalf("events before limit = %d, want 1", count)
	}
	if e.Now() != Time(5*Millisecond) {
		t.Fatalf("clock after limited run = %v, want 5ms", e.Now())
	}
	e.Run(Infinity)
	if count != 2 {
		t.Fatalf("events after resume = %d, want 2", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.After(Millisecond, func() { count++; e.Stop() })
	e.After(2*Millisecond, func() { count++ })
	e.Run(Infinity)
	if count != 1 {
		t.Fatalf("events after Stop = %d, want 1", count)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run(Infinity)
}

func TestEngineChainedEvents(t *testing.T) {
	// An event that schedules another at the same instant must run it in
	// the same pass (events never fire before their time, never skip).
	e := NewEngine()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 100 {
			e.At(e.Now(), chain)
		}
	}
	e.After(Millisecond, chain)
	e.Run(Infinity)
	if depth != 100 {
		t.Fatalf("chain depth = %d, want 100", depth)
	}
	if e.Now() != Time(Millisecond) {
		t.Fatalf("clock advanced during same-time chain: %v", e.Now())
	}
}

func TestEngineMonotonicClock(t *testing.T) {
	// Property: for any batch of event delays, dispatch times are
	// non-decreasing.
	check := func(delays []uint32) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.After(Duration(d%1e6)*Microsecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(Infinity)
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEventRecyclingKeepsStaleRefsInert(t *testing.T) {
	// A ref to a fired event must stay a no-op for Cancel even after the
	// engine recycles the Event object into a new scheduling.
	e := NewEngine()
	firstFired := false
	first := e.After(Millisecond, func() { firstFired = true })
	e.Run(Infinity)
	if !firstFired {
		t.Fatal("first event did not fire")
	}
	if !first.Cancelled() {
		t.Fatal("fired event does not report cancelled")
	}
	// The free list hands the same object to the next scheduling.
	secondFired := false
	second := e.After(Millisecond, func() { secondFired = true })
	if !second.Pending() {
		t.Fatal("second event not pending")
	}
	// Cancelling through the stale ref must not touch the new event.
	e.Cancel(first)
	if !second.Pending() {
		t.Fatal("stale Cancel hit a recycled event")
	}
	e.Run(Infinity)
	if !secondFired {
		t.Fatal("second event did not fire")
	}
	// The zero ref is inert everywhere.
	var zero EventRef
	if !zero.Cancelled() {
		t.Fatal("zero ref reports pending")
	}
	e.Cancel(zero)
}

func TestEngineSteadyStateDoesNotAllocate(t *testing.T) {
	// The After/Step cycle must recycle events instead of allocating:
	// this is the engine hot path of every kernel run.
	e := NewEngine()
	fn := func() {}
	// Warm the free list and the queue's backing array.
	for i := 0; i < 64; i++ {
		e.After(Duration(i)*Microsecond, fn)
	}
	e.Run(Infinity)
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(Millisecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state After/Step allocates %.1f objects per cycle, want 0", allocs)
	}
}

func TestEngineHeapChurnOrdering(t *testing.T) {
	// Interleave inserts, cancels, and reschedules over a deep queue and
	// check dispatch order matches (when, seq) exactly.
	e := NewEngine()
	r := NewRNG(123)
	type rec struct {
		when Time
		seq  int
	}
	var got []rec
	var refs []EventRef
	seq := 0
	for i := 0; i < 2000; i++ {
		when := e.Now().Add(Duration(r.Intn(5000)) * Microsecond)
		s := seq
		seq++
		refs = append(refs, e.At(when, func() {
			got = append(got, rec{e.Now(), s})
		}))
		switch r.Intn(10) {
		case 0:
			e.Cancel(refs[r.Intn(len(refs))])
		case 1:
			h := refs[r.Intn(len(refs))]
			if h.Pending() {
				e.Reschedule(h, e.Now().Add(Duration(r.Intn(5000))*Microsecond))
			}
		}
		if r.Intn(3) == 0 {
			e.Step()
		}
	}
	e.Run(Infinity)
	for i := 1; i < len(got); i++ {
		if got[i].when < got[i-1].when {
			t.Fatalf("dispatch times went backwards at %d: %v then %v",
				i, got[i-1].when, got[i].when)
		}
	}
	for _, h := range refs {
		if h.Pending() {
			t.Fatal("event still pending after Run(Infinity)")
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	// Child streams depend only on (seed, label), not on parent draws.
	a := NewRNG(7)
	b := NewRNG(7)
	b.Uint64()
	b.Uint64()
	ca, cb := a.Split(3), b.Split(3)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split stream depends on parent draw count")
		}
	}
	// Different labels give different streams.
	if a.Split(1).Uint64() == a.Split(2).Uint64() {
		t.Fatal("Split streams with different labels collide")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("exponential mean = %v, want ~1.0", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(4)
	base := 10 * Millisecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.1)
		if j < 9*Millisecond || j > 11*Millisecond {
			t.Fatalf("Jitter out of band: %v", j)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	tt := Time(0).Add(3 * Second)
	if tt.Seconds() != 3 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if tt.Sub(Time(Second)) != 2*Second {
		t.Fatalf("Sub = %v", tt.Sub(Time(Second)))
	}
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
}
