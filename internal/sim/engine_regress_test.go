package sim

import "testing"

// Regression tests for engine edge cases: free-list recycling versus stale
// refs, heap removal at the boundary slots, the fired/cancelled contracts of
// Reschedule and Shift, and the determinism contract for same-instant
// dispatch (FIFO by sequence number; lanes before heap events, lower lane
// ids first).

func TestEngineCancelLastHeapElement(t *testing.T) {
	// Cancelling the only queued event must leave an empty, runnable
	// engine (remove(0) of a one-element heap).
	e := NewEngine()
	only := e.After(Millisecond, func() { t.Fatal("cancelled event fired") })
	e.Cancel(only)
	if e.Pending() != 0 {
		t.Fatalf("queue holds %d events after cancelling the only one", e.Pending())
	}
	e.Run(Infinity)

	// Cancelling the event in the last heap slot exercises the remove
	// path that pops the tail without sifting. Ascending insertion times
	// keep the heap array in insertion order, so the last insert occupies
	// the last slot.
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		e.After(Duration(i+1)*Millisecond, func() { got = append(got, i) })
	}
	last := e.After(9*Millisecond, func() { t.Fatal("cancelled tail event fired") })
	e.Cancel(last)
	e.Run(Infinity)
	if len(got) != 8 {
		t.Fatalf("dispatched %d of 8 surviving events: %v", len(got), got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("dispatch order disturbed by tail cancel: %v", got)
		}
	}
}

func TestEngineRescheduleFiredPanics(t *testing.T) {
	// Reschedule and Shift require a pending event: using a ref whose
	// event fired (or was cancelled) must panic rather than corrupt the
	// queue — the generation stamp detects it even after the Event object
	// has been recycled into a new scheduling.
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}

	e := NewEngine()
	fired := e.After(Millisecond, func() {})
	e.Run(Infinity)
	// Recycle the fired event's object into a live scheduling: the stale
	// ref must still be rejected by its generation, not resolve to the
	// new tenant.
	fresh := e.After(Millisecond, func() {})
	mustPanic("Reschedule(fired)", func() { e.Reschedule(fired, e.Now().Add(Millisecond)) })
	mustPanic("Shift(fired)", func() { e.Shift(fired, e.Now().Add(Millisecond)) })
	if !fresh.Pending() {
		t.Fatal("stale Reschedule/Shift disturbed the recycled event's new scheduling")
	}

	cancelled := e.After(2*Millisecond, func() {})
	e.Cancel(cancelled)
	mustPanic("Reschedule(cancelled)", func() { e.Reschedule(cancelled, e.Now().Add(Millisecond)) })
	mustPanic("Shift(cancelled)", func() { e.Shift(cancelled, e.Now().Add(Millisecond)) })
	e.Run(Infinity)
}

func TestEngineTieBreakRescheduleVsShift(t *testing.T) {
	// The determinism contract for same-instant events is FIFO by
	// sequence number. Reschedule consumes a fresh sequence number, so a
	// rescheduled event goes behind existing same-instant peers; Shift
	// preserves the sequence number, so a shifted event keeps its rank.
	at := Time(10 * Millisecond)
	var got []string

	e := NewEngine()
	moved := e.At(Time(Millisecond), func() { got = append(got, "moved") })
	e.At(at, func() { got = append(got, "a") })
	e.At(at, func() { got = append(got, "b") })
	e.Reschedule(moved, at)
	e.Run(Infinity)
	if want := "a,b,moved"; join(got) != want {
		t.Fatalf("Reschedule tie-break: dispatched %q, want %q", join(got), want)
	}

	got = nil
	e = NewEngine()
	shifted := e.At(Time(Millisecond), func() { got = append(got, "shifted") })
	e.At(at, func() { got = append(got, "a") })
	e.At(at, func() { got = append(got, "b") })
	e.Shift(shifted, at)
	e.Run(Infinity)
	if want := "shifted,a,b"; join(got) != want {
		t.Fatalf("Shift tie-break: dispatched %q, want %q", join(got), want)
	}

	// Shifting in several hops or one hop must land in the same state:
	// fast-forward relies on batching per-tick shifts into one.
	got = nil
	e = NewEngine()
	hop := e.At(Time(Millisecond), func() { got = append(got, "hop") })
	e.At(at, func() { got = append(got, "a") })
	e.Shift(hop, Time(4*Millisecond))
	e.Shift(hop, Time(7*Millisecond))
	e.Shift(hop, at)
	e.Run(Infinity)
	if want := "hop,a"; join(got) != want {
		t.Fatalf("chained Shift tie-break: dispatched %q, want %q", join(got), want)
	}
}

func TestEngineLaneOrdering(t *testing.T) {
	// At one instant: every armed lane fires before any heap event, and
	// lanes fire lowest id first regardless of arming order.
	e := NewEngine()
	var got []string
	l0 := e.NewLane(func() { got = append(got, "lane0") })
	l1 := e.NewLane(func() { got = append(got, "lane1") })
	at := Time(3 * Millisecond)
	e.At(at, func() { got = append(got, "event") })
	e.ArmLane(l1, at) // armed first, still fires second
	e.ArmLane(l0, at)
	e.Run(Infinity)
	if want := "lane0,lane1,event"; join(got) != want {
		t.Fatalf("same-instant order %q, want %q", join(got), want)
	}
	if e.LaneFires != 2 {
		t.Fatalf("LaneFires = %d, want 2", e.LaneFires)
	}

	// A lane consumes no sequence number: heap FIFO order across a lane
	// firing is undisturbed, and the lane disarms itself after firing.
	if e.LaneWhen(l0) != Infinity || e.LaneWhen(l1) != Infinity {
		t.Fatal("fired lanes did not disarm")
	}
	got = nil
	e.At(e.Now().Add(Millisecond), func() { got = append(got, "x") })
	e.ArmLane(l0, e.Now().Add(Millisecond))
	e.At(e.Now().Add(Millisecond), func() { got = append(got, "y") })
	e.Run(Infinity)
	if want := "lane0,x,y"; join(got) != want {
		t.Fatalf("lane between schedulings: %q, want %q", join(got), want)
	}
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
