package sim

import "testing"

func BenchmarkScheduleDispatch(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Millisecond, fn)
		e.Step()
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	// 1024 pending events, steady insert/dispatch churn: the scheduler
	// kernel's hot pattern.
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.After(Duration(i)*Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1100*Microsecond, fn)
		e.Step()
	}
}

func BenchmarkCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(Millisecond, fn)
		e.Cancel(ev)
	}
}

func BenchmarkReschedule(b *testing.B) {
	// The timer-interrupt path: a deep queue whose head keeps moving
	// (completion events pushed back by tick costs).
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.After(Duration(i+1)*Millisecond, fn)
	}
	ev := e.After(500*Microsecond, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reschedule(ev, e.Now().Add(500*Microsecond))
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkRNGExpDuration(b *testing.B) {
	r := NewRNG(2)
	for i := 0; i < b.N; i++ {
		r.ExpDuration(Millisecond)
	}
}
