// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, a cancellable event queue with stable FIFO tie-breaking,
// and seedable random-number streams.
//
// All simulated subsystems in this repository (the kernel, the noise
// generator, the MPI runtime) are driven by a single Engine so that a given
// seed always reproduces the same execution, event for event.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start of
// the simulation. It is deliberately distinct from time.Time: simulated time
// has no calendar and advances only when the Engine dispatches events.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration, which has the same representation.
type Duration int64

// Common durations, mirroring the time package for readability at call sites.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Infinity is a time later than any reachable simulation time.
const Infinity Time = 1<<63 - 1

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats t as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Std converts d to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats d using time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// DurationOf converts a time.Duration to a simulated Duration.
func DurationOf(d time.Duration) Duration { return Duration(d) }

// Seconds builds a Duration from floating-point seconds. It is the inverse
// of Duration.Seconds for values representable in nanoseconds.
func Seconds(s float64) Duration { return Duration(s * 1e9) }
