package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created by Engine.At and
// Engine.After and may be cancelled until they fire.
type Event struct {
	when   Time
	seq    uint64 // tie-break: FIFO among events at the same instant
	index  int    // heap index, -1 when not queued
	fn     func()
	callAt Time // diagnostic: time the event was scheduled
}

// When reports the virtual time at which the event will fire (or fired).
func (e *Event) When() Time { return e.when }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index < 0 }

// eventQueue is a binary heap ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use; the simulation model is single-threaded by design so that
// runs are exactly reproducible.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// Dispatched counts events that have fired, for diagnostics and tests.
	Dispatched uint64
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at time t. Scheduling in the past panics: that is
// always a model bug, and silently reordering events would destroy
// determinism.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn, callAt: e.now}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.At(e.now.Add(d), fn)
}

// Cancel removes ev from the queue. Cancelling an event that already fired
// or was already cancelled is a no-op, so callers need not track firing.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Reschedule moves a pending event to a new absolute time, preserving FIFO
// order relative to newly created events (it receives a fresh sequence
// number). If ev has fired or been cancelled, Reschedule panics.
func (e *Engine) Reschedule(ev *Event, t Time) {
	if ev.index < 0 {
		panic("sim: rescheduling a fired or cancelled event")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
	}
	heap.Remove(&e.queue, ev.index)
	ev.when = t
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step dispatches the single earliest event. It reports false if the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.when < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = ev.when
	e.Dispatched++
	ev.fn()
	return true
}

// Run dispatches events in order until the queue drains, Stop is called, or
// the next event lies beyond limit. It returns the virtual time at exit.
// Pass Infinity to run to completion.
func (e *Engine) Run(limit Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		if e.queue[0].when > limit {
			// Advance the clock to the limit so callers observe a
			// consistent "simulated until" time.
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}
