package sim

import "fmt"

// Event is a scheduled callback. Events are engine-owned: once an event has
// fired or been cancelled the Engine recycles the object through a free
// list, so user code never holds an Event directly — it holds an EventRef,
// whose generation stamp distinguishes the referenced scheduling from any
// later reuse of the same object.
type Event struct {
	when  Time
	seq   uint64 // tie-break: FIFO among events at the same instant
	index int    // heap index, -1 when not queued
	gen   uint64 // incremented on recycle; stale EventRefs stop matching
	fn    func()
}

// EventRef is a handle to a scheduled callback, returned by Engine.At and
// Engine.After. The zero EventRef is inert: Cancel ignores it and Cancelled
// reports true. Refs are plain values — copying one is free and allocates
// nothing.
type EventRef struct {
	ev  *Event
	gen uint64
}

// Pending reports whether the referenced event is still queued (neither
// fired nor cancelled).
func (h EventRef) Pending() bool {
	return h.ev != nil && h.gen == h.ev.gen && h.ev.index >= 0
}

// Cancelled reports whether the event has been cancelled or already fired.
func (h EventRef) Cancelled() bool { return !h.Pending() }

// When reports the virtual time at which the event will fire. It is only
// meaningful while the event is pending.
func (h EventRef) When() Time { return h.ev.when }

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use; the simulation model is single-threaded by design so that
// runs are exactly reproducible. Concurrency lives a level up: independent
// replications each own an Engine (see internal/experiments.RunManyOpt).
//
// The event queue is an inlined binary heap ordered by (when, seq), and
// fired or cancelled events are recycled through a per-engine free list, so
// steady-state scheduling (After/Step cycles) does not allocate.
type Engine struct {
	now     Time
	queue   []*Event
	free    []*Event
	seq     uint64
	stopped bool
	// Dispatched counts events that have fired, for diagnostics and tests.
	Dispatched uint64
	// Observer, if non-nil, is invoked at every dispatch after the clock
	// advances and before the callback runs. The schedcheck harness hashes
	// the (when, seq) stream through it to fingerprint a run. Observers
	// must not schedule, cancel, or otherwise touch the engine.
	Observer func(at Time, seq uint64)
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// alloc takes an Event from the free list, or makes a new one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return new(Event)
}

// recycle returns a no-longer-queued event to the free list. Bumping the
// generation invalidates every outstanding EventRef to this scheduling.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil // release the closure for GC
	e.free = append(e.free, ev)
}

// At schedules fn to run at time t. Scheduling in the past panics: that is
// always a model bug, and silently reordering events would destroy
// determinism.
func (e *Engine) At(t Time, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.when = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) EventRef {
	return e.At(e.now.Add(d), fn)
}

// Cancel removes the referenced event from the queue. Cancelling an event
// that already fired or was already cancelled is a no-op (the generation
// stamp no longer matches), so callers need not track firing.
func (e *Engine) Cancel(h EventRef) {
	if !h.Pending() {
		return
	}
	e.remove(h.ev.index)
	e.recycle(h.ev)
}

// Reschedule moves a pending event to a new absolute time, preserving FIFO
// order relative to newly created events (it receives a fresh sequence
// number). If the event has fired or been cancelled, Reschedule panics.
func (e *Engine) Reschedule(h EventRef, t Time) {
	if !h.Pending() {
		panic("sim: rescheduling a fired or cancelled event")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
	}
	ev := h.ev
	e.remove(ev.index)
	ev.when = t
	ev.seq = e.seq
	e.seq++
	e.push(ev)
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step dispatches the single earliest event. It reports false if the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.popMin()
	if ev.when < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = ev.when
	e.Dispatched++
	if e.Observer != nil {
		e.Observer(ev.when, ev.seq)
	}
	fn := ev.fn
	// Recycle before dispatch: the common pattern of a callback scheduling
	// its successor then reuses this very object, so steady-state churn
	// touches no new memory. Outstanding refs are invalidated by the
	// generation bump, exactly as if the event had merely fired.
	e.recycle(ev)
	fn()
	return true
}

// Run dispatches events in order until the queue drains, Stop is called, or
// the next event lies beyond limit. It returns the virtual time at exit.
// Pass Infinity to run to completion.
func (e *Engine) Run(limit Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		if e.queue[0].when > limit {
			// Advance the clock to the limit so callers observe a
			// consistent "simulated until" time.
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}

// less orders the heap by (when, seq): earliest first, FIFO among equals.
func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	q := e.queue
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

// push appends ev and restores the heap property.
func (e *Engine) push(ev *Event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.up(ev.index)
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	q := e.queue
	ev := q[0]
	n := len(q) - 1
	e.swap(0, n)
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.down(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the event at heap index i.
func (e *Engine) remove(i int) {
	q := e.queue
	n := len(q) - 1
	ev := q[i]
	if i != n {
		e.swap(i, n)
	}
	q[n] = nil
	e.queue = q[:n]
	if i != n {
		if !e.down(i) {
			e.up(i)
		}
	}
	ev.index = -1
}

// up sifts the event at index i toward the root.
func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

// down sifts the event at index i toward the leaves; it reports whether the
// event moved.
func (e *Engine) down(i int) bool {
	n := len(e.queue)
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			break
		}
		e.swap(i, least)
		i = least
	}
	return i != start
}
