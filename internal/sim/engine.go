package sim

import "fmt"

// Event is a scheduled callback. Events are engine-owned: once an event has
// fired or been cancelled the Engine recycles the object through a free
// list, so user code never holds an Event directly — it holds an EventRef,
// whose generation stamp distinguishes the referenced scheduling from any
// later reuse of the same object.
type Event struct {
	when  Time
	seq   uint64 // tie-break: FIFO among events at the same instant
	index int    // heap index, -1 when not queued
	gen   uint64 // incremented on recycle; stale EventRefs stop matching
	fn    func()
}

// EventRef is a handle to a scheduled callback, returned by Engine.At and
// Engine.After. The zero EventRef is inert: Cancel ignores it and Cancelled
// reports true. Refs are plain values — copying one is free and allocates
// nothing.
type EventRef struct {
	ev  *Event
	gen uint64
}

// Pending reports whether the referenced event is still queued (neither
// fired nor cancelled).
func (h EventRef) Pending() bool {
	return h.ev != nil && h.gen == h.ev.gen && h.ev.index >= 0
}

// Cancelled reports whether the event has been cancelled or already fired.
func (h EventRef) Cancelled() bool { return !h.Pending() }

// When reports the virtual time at which the event will fire. It is only
// meaningful while the event is pending.
func (h EventRef) When() Time { return h.ev.when }

// timerLane is one registered periodic-timer slot (see Engine.NewLane).
type timerLane struct {
	when Time // Infinity while disarmed
	fn   func()
	pos  int // index in laneHeap, -1 while disarmed
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use; the simulation model is single-threaded by design so that
// runs are exactly reproducible. Concurrency lives a level up: independent
// replications each own an Engine (see internal/experiments.RunManyOpt).
//
// The event queue is an inlined binary heap ordered by (when, seq), and
// fired or cancelled events are recycled through a per-engine free list, so
// steady-state scheduling (After/Step cycles) does not allocate.
//
// Alongside the heap the engine carries a small set of timer lanes: one
// re-armable timer slot per registered lane, held outside the heap and
// outside the main sequence space. Lanes model periodic hardware timers
// (the kernel's per-CPU tick): arming one is a single field write, and
// because lane firings consume no sequence numbers, eliding or re-arming
// them never perturbs the FIFO ordering of ordinary events — the property
// the fast-forward mode's trace-equivalence proof rests on.
type Engine struct {
	now   Time
	queue []*Event
	free  []*Event
	lanes []timerLane
	// laneHeaps index the armed lanes ordered by (when, id), one heap per
	// lane shard, so finding the next lane firing is O(#shards) regardless
	// of how many lanes (CPUs) exist — the linear scan this replaces
	// dominated wide-node runs. There is a single heap until SetShards
	// partitions the lanes; with shards, each heap is owned by one shard
	// of the parallel catch-up phase and the merge frontier (nextLane)
	// takes the minimum over the shard roots, which is exactly the global
	// (when, id) minimum because the global minimum is the minimum of its
	// own shard.
	laneHeaps [][]int
	// laneShard maps lane id to its heap; nil means everything in heap 0.
	laneShard []int
	seq       uint64
	stopped   bool
	// NaiveLanes restores the O(#lanes) linear scan for the next armed
	// lane (benchmark baseline only). It must be set before any lane is
	// armed and never changed afterwards.
	NaiveLanes bool
	// Dispatched counts heap events that have fired, for diagnostics and
	// tests. Lane firings are counted separately in LaneFires.
	Dispatched uint64
	// LaneFires counts timer-lane firings.
	LaneFires uint64
	// Observer, if non-nil, is invoked at every heap-event dispatch after
	// the clock advances and before the callback runs. The schedcheck
	// harness hashes the (when, seq) stream through it to fingerprint a
	// run. Timer-lane firings are not observed: they are exactly the
	// events the fast-forward mode elides, so keeping them out of the
	// fingerprint makes the two modes directly comparable. Observers must
	// not schedule, cancel, or otherwise touch the engine.
	Observer func(at Time, seq uint64)
	// BeforeEvent, if non-nil, runs immediately before each heap-event
	// dispatch in Run, with the event's time (the clock has not advanced
	// yet). Unlike Observer it may mutate the engine — shift or cancel
	// pending events, arm lanes — as long as every mutation targets times
	// >= at; Run re-evaluates what fires next afterwards. The kernel's
	// fast-forward mode uses it to settle elided-tick accounting before
	// any event can observe stale per-CPU state.
	BeforeEvent func(at Time)
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{laneHeaps: make([][]int, 1)}
}

// SetShards partitions the timer lanes into independently-heaped shards:
// lane id i joins heap shardOf[i]. The parallel catch-up phase gives each
// shard ownership of its CPUs' lanes; keeping per-shard heaps makes that
// ownership structural while nextLane's min-over-roots merge frontier
// preserves the exact global (when, id) firing order, so sequential and
// sharded runs dispatch identically. SetShards must be called after every
// NewLane and before any lane is armed, and is incompatible with
// NaiveLanes (which bypasses the heaps).
func (e *Engine) SetShards(shards int, shardOf []int) {
	if shards < 1 {
		panic("sim: SetShards needs at least one shard")
	}
	if len(shardOf) != len(e.lanes) {
		panic(fmt.Sprintf("sim: SetShards got %d shard assignments for %d lanes", len(shardOf), len(e.lanes)))
	}
	for i := range e.lanes {
		if e.lanes[i].pos >= 0 || e.lanes[i].when != Infinity {
			panic("sim: SetShards after a lane was armed")
		}
		if shardOf[i] < 0 || shardOf[i] >= shards {
			panic(fmt.Sprintf("sim: lane %d assigned to shard %d of %d", i, shardOf[i], shards))
		}
	}
	e.laneHeaps = make([][]int, shards)
	e.laneShard = append([]int(nil), shardOf...)
}

// laneShardOf reports the heap owning lane id.
func (e *Engine) laneShardOf(id int) int {
	if e.laneShard == nil {
		return 0
	}
	return e.laneShard[id]
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// alloc takes an Event from the free list, or makes a new one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return new(Event)
}

// recycle returns a no-longer-queued event to the free list. Bumping the
// generation invalidates every outstanding EventRef to this scheduling.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil // release the closure for GC
	e.free = append(e.free, ev)
}

// At schedules fn to run at time t. Scheduling in the past panics: that is
// always a model bug, and silently reordering events would destroy
// determinism.
func (e *Engine) At(t Time, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.when = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) EventRef {
	return e.At(e.now.Add(d), fn)
}

// Cancel removes the referenced event from the queue. Cancelling an event
// that already fired or was already cancelled is a no-op (the generation
// stamp no longer matches), so callers need not track firing.
func (e *Engine) Cancel(h EventRef) {
	if !h.Pending() {
		return
	}
	e.remove(h.ev.index)
	e.recycle(h.ev)
}

// Reschedule moves a pending event to a new absolute time, preserving FIFO
// order relative to newly created events (it receives a fresh sequence
// number). If the event has fired or been cancelled, Reschedule panics.
func (e *Engine) Reschedule(h EventRef, t Time) {
	if !h.Pending() {
		panic("sim: rescheduling a fired or cancelled event")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, e.now))
	}
	ev := h.ev
	e.remove(ev.index)
	ev.when = t
	ev.seq = e.seq
	e.seq++
	e.push(ev)
}

// Shift moves a pending event to a new time while preserving its sequence
// number, unlike Reschedule (which re-sequences behind newly created
// events). Shifting models a cost displacing an already-scheduled outcome —
// the tick stealing time from a projected completion — where the event's
// identity, and hence its FIFO rank among same-instant peers, must not
// change. Because no sequence number is consumed, shifting an event one
// time or many times to the same final instant leaves the engine in an
// identical state, which is what lets fast-forward batch per-tick cost
// theft into a single shift. Shifting a fired or cancelled event panics.
func (e *Engine) Shift(h EventRef, t Time) {
	if !h.Pending() {
		panic("sim: shifting a fired or cancelled event")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: shifting event to %v before now %v", t, e.now))
	}
	ev := h.ev
	e.remove(ev.index)
	ev.when = t
	e.push(ev)
}

// NewLane registers a timer lane firing fn and returns its id. Lanes start
// disarmed. Lane ids are dense and stable for the engine's lifetime.
func (e *Engine) NewLane(fn func()) int {
	e.lanes = append(e.lanes, timerLane{when: Infinity, fn: fn, pos: -1})
	return len(e.lanes) - 1
}

// ArmLane sets the lane's next firing time. Arming an armed lane simply
// moves it; arming in the past panics. The lane disarms itself when it
// fires; the callback re-arms it for periodic behaviour.
func (e *Engine) ArmLane(id int, t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: arming lane %d at %v before now %v", id, t, e.now))
	}
	l := &e.lanes[id]
	l.when = t
	if e.NaiveLanes {
		return
	}
	sh := e.laneShardOf(id)
	h := e.laneHeaps[sh]
	if l.pos >= 0 {
		if !e.laneDown(h, l.pos) {
			e.laneUp(h, l.pos)
		}
		return
	}
	l.pos = len(h)
	e.laneHeaps[sh] = append(h, id)
	e.laneUp(e.laneHeaps[sh], l.pos)
}

// DisarmLane stops the lane from firing until re-armed.
func (e *Engine) DisarmLane(id int) {
	l := &e.lanes[id]
	l.when = Infinity
	if e.NaiveLanes || l.pos < 0 {
		return
	}
	e.laneRemove(e.laneShardOf(id), l.pos)
}

// LaneWhen reports the lane's next firing time, Infinity if disarmed.
func (e *Engine) LaneWhen(id int) Time { return e.lanes[id].when }

// nextLane returns the earliest armed lane and its time. Ties between lanes
// break to the lowest id (part of the determinism contract); each heap's
// comparator orders by (when, id), so taking the best of the shard roots is
// exactly what the linear scan would have found — the global minimum is the
// minimum of whichever shard holds it.
func (e *Engine) nextLane() (id int, when Time) {
	if e.NaiveLanes {
		id, when = -1, Infinity
		for i := range e.lanes {
			if e.lanes[i].when < when {
				id, when = i, e.lanes[i].when
			}
		}
		return id, when
	}
	id, when = -1, Infinity
	for _, h := range e.laneHeaps {
		if len(h) == 0 {
			continue
		}
		c := h[0]
		if w := e.lanes[c].when; w < when || (w == when && (id < 0 || c < id)) {
			id, when = c, w
		}
	}
	return id, when
}

// laneLess orders armed lanes of one heap by (when, id).
func (e *Engine) laneLess(h []int, i, j int) bool {
	a, b := h[i], h[j]
	if e.lanes[a].when != e.lanes[b].when {
		return e.lanes[a].when < e.lanes[b].when
	}
	return a < b
}

func (e *Engine) laneSwap(h []int, i, j int) {
	h[i], h[j] = h[j], h[i]
	e.lanes[h[i]].pos = i
	e.lanes[h[j]].pos = j
}

// laneRemove deletes the lane at index i of shard sh's heap and marks it
// disarmed.
func (e *Engine) laneRemove(sh, i int) {
	h := e.laneHeaps[sh]
	n := len(h) - 1
	id := h[i]
	if i != n {
		e.laneSwap(h, i, n)
	}
	h = h[:n]
	e.laneHeaps[sh] = h
	if i != n {
		if !e.laneDown(h, i) {
			e.laneUp(h, i)
		}
	}
	e.lanes[id].pos = -1
}

// laneUp sifts the heap entry at index i toward the root.
func (e *Engine) laneUp(h []int, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.laneLess(h, i, parent) {
			break
		}
		e.laneSwap(h, i, parent)
		i = parent
	}
}

// laneDown sifts the heap entry at index i toward the leaves; it reports
// whether the entry moved.
func (e *Engine) laneDown(h []int, i int) bool {
	n := len(h)
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.laneLess(h, right, left) {
			least = right
		}
		if !e.laneLess(h, least, i) {
			break
		}
		e.laneSwap(h, i, least)
		i = least
	}
	return i != start
}

// Stop makes the current Run call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether the last Run call exited because of Stop rather
// than by draining the queue or reaching its limit.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending reports the number of queued heap events (armed lanes excluded).
func (e *Engine) Pending() int { return len(e.queue) }

// Step dispatches the single earliest heap event, ignoring lanes and the
// BeforeEvent hook. It reports false if the queue is empty. It exists for
// microbenchmarks and engine tests; simulations that use lanes must be
// driven through Run.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.popMin()
	if ev.when < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = ev.when
	e.Dispatched++
	if e.Observer != nil {
		e.Observer(ev.when, ev.seq)
	}
	fn := ev.fn
	// Recycle before dispatch: the common pattern of a callback scheduling
	// its successor then reuses this very object, so steady-state churn
	// touches no new memory. Outstanding refs are invalidated by the
	// generation bump, exactly as if the event had merely fired.
	e.recycle(ev)
	fn()
	return true
}

// Run dispatches heap events and lane firings in time order until the queue
// drains (with every lane disarmed), Stop is called, or the next dispatch
// lies beyond limit. At equal times lanes fire before heap events (and
// lower lane ids before higher): a timer interrupt pre-empts whatever else
// was due at the same instant. It returns the virtual time at exit. Pass
// Infinity to run to completion.
func (e *Engine) Run(limit Time) Time {
	e.stopped = false
	for !e.stopped {
		li, lt := e.nextLane()
		ht := Infinity
		if len(e.queue) > 0 {
			ht = e.queue[0].when
		}
		if lt == Infinity && ht == Infinity {
			break
		}
		if lt > limit && ht > limit {
			// Advance the clock to the limit so callers observe a
			// consistent "simulated until" time.
			e.now = limit
			break
		}
		if lt <= ht {
			e.now = lt
			e.DisarmLane(li)
			e.LaneFires++
			e.lanes[li].fn()
			continue
		}
		if e.BeforeEvent != nil {
			e.BeforeEvent(ht)
			if e.stopped {
				break
			}
			// The hook may have shifted the front event later or armed a
			// lane: if what fires next changed, re-evaluate; otherwise
			// fall through and dispatch (the hook is idempotent at a
			// given instant, so it is not re-run).
			_, lt2 := e.nextLane()
			ht2 := Infinity
			if len(e.queue) > 0 {
				ht2 = e.queue[0].when
			}
			if lt2 <= ht2 || ht2 != ht {
				continue
			}
		}
		e.Step()
	}
	return e.now
}

// less orders the heap by (when, seq): earliest first, FIFO among equals.
func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	q := e.queue
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

// push appends ev and restores the heap property.
func (e *Engine) push(ev *Event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.up(ev.index)
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	q := e.queue
	ev := q[0]
	n := len(q) - 1
	e.swap(0, n)
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.down(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the event at heap index i.
func (e *Engine) remove(i int) {
	q := e.queue
	n := len(q) - 1
	ev := q[i]
	if i != n {
		e.swap(i, n)
	}
	q[n] = nil
	e.queue = q[:n]
	if i != n {
		if !e.down(i) {
			e.up(i)
		}
	}
	ev.index = -1
}

// up sifts the event at index i toward the root.
func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

// down sifts the event at index i toward the leaves; it reports whether the
// event moved.
func (e *Engine) down(i int) bool {
	n := len(e.queue)
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			break
		}
		e.swap(i, least)
		i = least
	}
	return i != start
}
