package mpi

import (
	"testing"

	"hplsim/internal/kernel"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// newNode builds an 8-CPU POWER6-like kernel with negligible overheads.
func newNode(seed uint64, policy sched.BalancePolicy) *kernel.Kernel {
	return kernel.New(kernel.Config{
		Topo:       topo.POWER6(),
		SwitchCost: 1,
		TickCost:   1,
		SMTFactors: []float64{1, 1},
		Balance:    policy,
		Seed:       seed,
	})
}

// spmd returns a program of n iterations of (compute work, barrier).
func spmd(n int, work sim.Duration) Program {
	return func(r *Rank) {
		iter := 0
		var step func()
		step = func() {
			if iter == n {
				r.Finish()
				return
			}
			iter++
			r.Compute(work, func() { r.Barrier(step) })
		}
		step()
	}
}

func TestBalancedSPMDCompletes(t *testing.T) {
	k := newNode(1, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 8, Policy: task.HPC})
	completed := false
	w.OnComplete = func() { completed = true; k.Stop() }
	w.Launch(nil, spmd(10, 10*sim.Millisecond))
	k.Run(sim.Time(10 * sim.Second))
	if !completed {
		t.Fatal("SPMD job did not complete")
	}
	// 10 iterations x 10ms: barriers on a quiet machine add only
	// microseconds.
	el := w.Elapsed()
	if el < 100*sim.Millisecond || el > 105*sim.Millisecond {
		t.Fatalf("elapsed %v, want ~100ms", el)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	// Ranks with different per-iteration compute must all wait for the
	// slowest: total = iterations x slowest.
	k := newNode(2, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 4, Policy: task.HPC})
	w.OnComplete = func() { k.Stop() }
	w.Launch(nil, func(r *Rank) {
		work := sim.Duration(r.ID+1) * 5 * sim.Millisecond // 5,10,15,20ms
		iter := 0
		var step func()
		step = func() {
			if iter == 5 {
				r.Finish()
				return
			}
			iter++
			r.Compute(work, func() { r.Barrier(step) })
		}
		step()
	})
	k.Run(sim.Time(10 * sim.Second))
	el := w.Elapsed()
	want := 5 * 20 * sim.Millisecond
	if el < want || el > want+10*sim.Millisecond {
		t.Fatalf("elapsed %v, want ~%v (slowest rank dominates)", el, want)
	}
}

func TestFastRanksSpinNotBlock(t *testing.T) {
	// Skew below the spin threshold: ranks never block, so the only
	// voluntary switches are the final exits.
	k := newNode(3, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 4, Policy: task.HPC,
		SpinThreshold: 50 * sim.Millisecond})
	// No Stop: with no daemons the event queue drains on its own, letting
	// the final exit switches land before we read the counters.
	w.Launch(nil, func(r *Rank) {
		work := 10*sim.Millisecond + sim.Duration(r.ID)*sim.Millisecond
		iter := 0
		var step func()
		step = func() {
			if iter == 3 {
				r.Finish()
				return
			}
			iter++
			r.Compute(work, func() { r.Barrier(step) })
		}
		step()
	})
	k.Run(sim.Time(10 * sim.Second))
	if got := k.Perf.VoluntarySwitches; got != 4 {
		t.Fatalf("voluntary switches = %d, want 4 (exits only)", got)
	}
	if k.Perf.Wakeups != 0 {
		t.Fatalf("wakeups = %d, want 0 (nobody blocked)", k.Perf.Wakeups)
	}
}

func TestSlowRankMakesPeersBlock(t *testing.T) {
	// Skew above the spin threshold: fast ranks block and are woken.
	k := newNode(4, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 4, Policy: task.HPC,
		SpinThreshold: 2 * sim.Millisecond})
	w.OnComplete = func() { k.Stop() }
	w.Launch(nil, func(r *Rank) {
		work := 5 * sim.Millisecond
		if r.ID == 0 {
			work = 50 * sim.Millisecond // straggler
		}
		iter := 0
		var step func()
		step = func() {
			if iter == 2 {
				r.Finish()
				return
			}
			iter++
			r.Compute(work, func() { r.Barrier(step) })
		}
		step()
	})
	k.Run(sim.Time(10 * sim.Second))
	if k.Perf.Wakeups < 6 {
		t.Fatalf("wakeups = %d, want >= 6 (3 peers x 2 barriers)", k.Perf.Wakeups)
	}
	el := w.Elapsed()
	want := 100 * sim.Millisecond
	if el < want || el > want+10*sim.Millisecond {
		t.Fatalf("elapsed %v, want ~%v", el, want)
	}
}

func TestAllreduceChargesCommCost(t *testing.T) {
	k := newNode(5, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 2, Policy: task.HPC,
		Latency: sim.Millisecond, BytesPerSec: 1e9})
	w.OnComplete = func() { k.Stop() }
	w.Launch(nil, func(r *Rank) {
		iter := 0
		var step func()
		step = func() {
			if iter == 10 {
				r.Finish()
				return
			}
			iter++
			r.Compute(5*sim.Millisecond, func() {
				r.Allreduce(1_000_000, step) // 1MB at 1GB/s = 1ms
			})
		}
		step()
	})
	k.Run(sim.Time(10 * sim.Second))
	// 10 x (5ms compute + 1ms latency + 1ms payload) = 70ms.
	el := w.Elapsed()
	want := 70 * sim.Millisecond
	if el < want-2*sim.Millisecond || el > want+5*sim.Millisecond {
		t.Fatalf("elapsed %v, want ~%v", el, want)
	}
}

func TestLaunchFromParent(t *testing.T) {
	// mpiexec pattern: parent forks ranks and waits for them.
	k := newNode(6, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 8, Policy: task.HPC})
	var parentDone sim.Time
	k.Spawn(nil, kernel.Attr{Name: "mpiexec", Policy: task.HPC}, func(p *kernel.Proc) {
		p.Compute(sim.Millisecond, func() {
			w.Launch(p, spmd(5, 10*sim.Millisecond))
			p.WaitChildren(func() {
				parentDone = p.Now()
				p.Exit()
				k.Stop()
			})
		})
	})
	k.Run(sim.Time(10 * sim.Second))
	if parentDone == 0 {
		t.Fatal("mpiexec never returned from wait")
	}
	if parentDone < sim.Time(51*sim.Millisecond) {
		t.Fatalf("mpiexec done at %v, before ranks could finish", parentDone)
	}
	// All ranks exited before the parent.
	for _, tt := range k.Tasks() {
		if tt.Parent != nil && tt.State != task.Dead {
			t.Fatalf("child %v not dead at parent exit", tt)
		}
	}
}

func TestEightRanksUseAllCPUsUnderHPL(t *testing.T) {
	k := newNode(7, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 8, Policy: task.HPC})
	w.OnComplete = func() { k.Stop() }
	w.Launch(nil, spmd(1, 50*sim.Millisecond))
	k.Run(sim.Time(sim.Second))
	cpus := map[int]bool{}
	for _, r := range w.Ranks {
		cpus[r.P.T.CPU] = true
	}
	if len(cpus) != 8 {
		t.Fatalf("8 ranks used %d CPUs, want 8", len(cpus))
	}
	// One fork-placement migration per rank, nothing else.
	if k.Perf.Migrations > 8 {
		t.Fatalf("migrations = %d, want <= 8 under HPL", k.Perf.Migrations)
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() (sim.Duration, uint64) {
		k := newNode(99, sched.BalanceStandard)
		w := NewWorld(k, Config{Ranks: 8, Policy: task.Normal,
			SpinThreshold: sim.Millisecond})
		w.OnComplete = func() { k.Stop() }
		w.Launch(nil, spmd(20, 3*sim.Millisecond))
		k.Run(sim.Time(20 * sim.Second))
		return w.Elapsed(), k.Perf.ContextSwitches
	}
	e1, c1 := run()
	e2, c2 := run()
	if e1 != e2 || c1 != c2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", e1, c1, e2, c2)
	}
}

func TestTwoConcurrentJobsUnderHPL(t *testing.T) {
	// Two 8-rank jobs oversubscribe the node 2x: the HPC class
	// round-robins them (100ms slices), both finish, and the makespan is
	// roughly the sum of the two jobs' solo times.
	k := newNode(8, sched.BalanceHPL)
	mk := func() *World {
		w := NewWorld(k, Config{Ranks: 8, Policy: task.HPC})
		w.Launch(nil, spmd(5, 30*sim.Millisecond))
		return w
	}
	w1 := mk()
	w2 := mk()
	k.Run(sim.Time(10 * sim.Second))
	if w1.Elapsed() <= 0 || w2.Elapsed() <= 0 {
		t.Fatal("a job did not finish under oversubscription")
	}
	// Solo each job is ~150ms (beyond one 100ms round-robin slice, so
	// the jobs genuinely interleave); sharing the machine, the last
	// finisher lands near the 300ms combined demand and neither job is
	// starved.
	last := w1.Elapsed()
	if w2.Elapsed() > last {
		last = w2.Elapsed()
	}
	if last < 290*sim.Millisecond || last > 420*sim.Millisecond {
		t.Fatalf("makespan %v, want ~300ms for 2x oversubscription", last)
	}
	for i, w := range []*World{w1, w2} {
		if w.Elapsed() < 150*sim.Millisecond {
			t.Fatalf("job %d finished impossibly fast: %v", i, w.Elapsed())
		}
	}
}

func TestJobsOfDifferentPoliciesCoexist(t *testing.T) {
	// An HPC job and a CFS job share the node: the HPC job runs as if
	// alone; the CFS job only progresses in the gaps (here: after the
	// HPC job exits).
	k := newNode(9, sched.BalanceHPL)
	hpcJob := NewWorld(k, Config{Ranks: 8, Policy: task.HPC})
	cfsJob := NewWorld(k, Config{Ranks: 8, Policy: task.Normal})
	hpcJob.Launch(nil, spmd(5, 20*sim.Millisecond))
	cfsJob.Launch(nil, spmd(2, 10*sim.Millisecond))
	k.Run(sim.Time(10 * sim.Second))

	hpcEl := hpcJob.Elapsed()
	if hpcEl > 110*sim.Millisecond {
		t.Fatalf("HPC job slowed by CFS job: %v", hpcEl)
	}
	if cfsJob.Elapsed() <= 0 {
		t.Fatal("CFS job starved forever")
	}
}
