package mpi

import (
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

func TestSendBeforeRecv(t *testing.T) {
	// Rank 0 sends early; rank 1 receives later from its mailbox.
	k := newNode(10, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 2, Policy: task.HPC, Latency: sim.Microsecond})
	var got int
	w.OnComplete = func() { k.Stop() }
	w.Launch(nil, func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 7, 4096, func() { r.Finish() })
			return
		}
		r.Compute(10*sim.Millisecond, func() {
			r.Recv(7, func(bytes int) {
				got = bytes
				r.Finish()
			})
		})
	})
	k.Run(sim.Time(sim.Second))
	if got != 4096 {
		t.Fatalf("received %d bytes, want 4096", got)
	}
}

func TestRecvBeforeSendBlocksAndWakes(t *testing.T) {
	// Rank 1 receives first (blocks after the spin window); rank 0 sends
	// much later; the receive must complete.
	k := newNode(11, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 2, Policy: task.HPC,
		SpinThreshold: sim.Millisecond, Latency: sim.Microsecond})
	var doneAt sim.Time
	w.OnComplete = func() { k.Stop() }
	w.Launch(nil, func(r *Rank) {
		if r.ID == 0 {
			r.Compute(50*sim.Millisecond, func() {
				r.Send(1, 1, 100, func() { r.Finish() })
			})
			return
		}
		r.Recv(1, func(int) {
			doneAt = k.Now()
			r.Finish()
		})
	})
	k.Run(sim.Time(sim.Second))
	if doneAt < sim.Time(50*sim.Millisecond) {
		t.Fatalf("receive completed at %v, before the send", doneAt)
	}
	if k.Perf.Wakeups == 0 {
		t.Fatal("blocked receiver was never woken")
	}
}

func TestRecvSpinsWithinWindow(t *testing.T) {
	// The send arrives inside the spin window: no block, no wakeup.
	k := newNode(12, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 2, Policy: task.HPC,
		SpinThreshold: 100 * sim.Millisecond, Latency: sim.Microsecond})
	w.OnComplete = func() { k.Stop() }
	w.Launch(nil, func(r *Rank) {
		if r.ID == 0 {
			r.Compute(5*sim.Millisecond, func() {
				r.Send(1, 2, 8, func() { r.Finish() })
			})
			return
		}
		r.Recv(2, func(int) { r.Finish() })
	})
	k.Run(sim.Time(sim.Second))
	if k.Perf.Wakeups != 0 {
		t.Fatalf("wakeups = %d, want 0 (receiver should spin)", k.Perf.Wakeups)
	}
}

func TestPayloadCostsBandwidth(t *testing.T) {
	// 10MB at 1GB/s adds ~10ms to the transfer.
	elapsed := func(bytes int) sim.Duration {
		k := newNode(13, sched.BalanceHPL)
		w := NewWorld(k, Config{Ranks: 2, Policy: task.HPC,
			Latency: sim.Microsecond, BytesPerSec: 1e9})
		w.OnComplete = func() { k.Stop() }
		w.Launch(nil, func(r *Rank) {
			if r.ID == 0 {
				r.Send(1, 3, bytes, func() { r.Finish() })
				return
			}
			r.Recv(3, func(int) { r.Finish() })
		})
		k.Run(sim.Time(sim.Second))
		return w.Elapsed()
	}
	small := elapsed(1)
	big := elapsed(10_000_000)
	extra := big - small
	// Copy cost is charged on both sides: ~20ms for 10MB.
	if extra < 15*sim.Millisecond || extra > 30*sim.Millisecond {
		t.Fatalf("10MB added %v, want ~20ms at 1GB/s", extra)
	}
}

func TestRingPipeline(t *testing.T) {
	// A token passed around a 4-rank ring: strict ordering, every rank
	// handles it once per lap.
	k := newNode(14, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 4, Policy: task.HPC, Latency: sim.Microsecond})
	const laps = 5
	hops := 0
	w.OnComplete = func() { k.Stop() }
	w.Launch(nil, func(r *Rank) {
		next := (r.ID + 1) % 4
		var pass func(lap int)
		pass = func(lap int) {
			if lap == laps {
				r.Finish()
				return
			}
			r.Recv(lap*10+r.ID, func(int) {
				hops++
				r.Compute(sim.Millisecond, func() {
					nextTag := lap*10 + next
					if next == 0 {
						nextTag = (lap + 1) * 10 // wrapped: next lap
					}
					r.Send(next, nextTag, 8, func() { pass(lap + 1) })
				})
			})
		}
		if r.ID == 0 {
			// Rank 0 seeds the token.
			r.Send(next, 0*10+next, 8, func() { pass(0) })
		} else {
			pass(0)
		}
	})
	k.Run(sim.Time(10 * sim.Second))
	if hops == 0 {
		t.Fatal("token never moved")
	}
}

func TestWavefrontExchange(t *testing.T) {
	// lu-style neighbour pipeline: each rank receives from its left,
	// computes, sends right; 8 ranks, 10 sweeps.
	k := newNode(15, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 8, Policy: task.HPC, Latency: 20 * sim.Microsecond})
	w.OnComplete = func() { k.Stop() }
	w.Launch(nil, func(r *Rank) {
		sweep := 0
		var step func()
		step = func() {
			if sweep == 10 {
				r.Finish()
				return
			}
			sweep++
			compute := func() {
				r.Compute(2*sim.Millisecond, func() {
					if r.ID < 7 {
						r.Send(r.ID+1, sweep*100+r.ID+1, 1024, step)
					} else {
						step()
					}
				})
			}
			if r.ID > 0 {
				r.Recv(sweep*100+r.ID, func(int) { compute() })
			} else {
				compute()
			}
		}
		step()
	})
	k.Run(sim.Time(10 * sim.Second))
	el := w.Elapsed()
	// Pipeline: first sweep fills (8 stages x ~2ms), later sweeps
	// overlap; the total is far below 8 x 10 x 2ms serial and at least
	// the 10 x 2ms critical path.
	if el < 20*sim.Millisecond || el > 80*sim.Millisecond {
		t.Fatalf("wavefront elapsed %v, want pipeline-overlapped (~20-60ms)", el)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	k := newNode(16, sched.BalanceHPL)
	w := NewWorld(k, Config{Ranks: 2, Policy: task.HPC})
	defer func() {
		if recover() == nil {
			t.Fatal("Send to invalid rank did not panic")
		}
	}()
	w.Launch(nil, func(r *Rank) {
		if r.ID == 0 {
			r.Send(9, 0, 0, func() { r.Finish() })
			return
		}
		r.Compute(sim.Millisecond, func() { r.Finish() })
	})
	k.Run(sim.Time(sim.Second))
}
