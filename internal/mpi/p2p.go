package mpi

import (
	"fmt"

	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// Point-to-point messaging. Sends are buffered and asynchronous (eager
// protocol, like small-message MPI_Send); receives follow the same
// spin-then-block waiting discipline as the collectives. This is the
// substrate for wavefront workloads such as NAS lu, whose pipelined SSOR
// sweeps synchronise neighbour-to-neighbour rather than globally.

// message is one in-flight point-to-point payload.
type message struct {
	from, to int
	tag      int
	bytes    int
}

// pending tracks one rank blocked in Recv.
type recvWait struct {
	tag    int
	then   func(bytes int)
	spinEv sim.EventRef
}

// Send posts a message to rank `to` and continues immediately after the
// local copy cost (eager send). If the peer is already waiting for this
// tag, delivery happens now.
func (r *Rank) Send(to, tag, bytes int, then func()) {
	w := r.W
	if to < 0 || to >= len(w.Ranks) {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", to))
	}
	cost := w.sendCost(bytes)
	r.P.Compute(cost, func() {
		peer := w.Ranks[to]
		msg := message{from: r.ID, to: to, tag: tag, bytes: bytes}
		if peer.recv != nil && peer.recv.tag == tag {
			peer.deliver(msg)
			then()
			return
		}
		peer.mailbox = append(peer.mailbox, msg)
		then()
	})
}

// Recv waits for a message with the given tag. If one is already buffered,
// the receive completes after the copy cost; otherwise the rank spins for
// the world's spin window, then blocks. `then` receives the payload size.
func (r *Rank) Recv(tag int, then func(bytes int)) {
	for i, m := range r.mailbox {
		if m.tag == tag {
			r.mailbox = append(r.mailbox[:i:i], r.mailbox[i+1:]...)
			r.P.Compute(r.W.sendCost(m.bytes), func() { then(m.bytes) })
			return
		}
	}
	w := r.W
	r.recv = &recvWait{tag: tag, then: then}
	switch {
	case w.Cfg.SpinThreshold < 0:
		r.P.Spin()
	case w.Cfg.SpinThreshold == 0:
		r.recvBlock()
	default:
		r.P.Spin()
		r.recv.spinEv = w.K.Eng.After(w.Cfg.SpinThreshold, r.recvSpinExpired)
	}
}

// recvSpinExpired converts a spinning receive into a blocking one.
func (r *Rank) recvSpinExpired() {
	if r.recv == nil {
		return
	}
	r.recv.spinEv = sim.EventRef{}
	r.recvBlock()
}

// recvBlock parks the task until a matching Send wakes it.
func (r *Rank) recvBlock() {
	t := r.P.T
	switch t.State {
	case task.Running:
		t.Work = 0
		t.OnDone = nil
		r.W.K.Block(t)
	case task.Runnable:
		r.W.K.BlockQueued(t, nil)
	}
}

// deliver completes a waiting receive with msg.
func (r *Rank) deliver(msg message) {
	wait := r.recv
	r.recv = nil
	r.W.K.Eng.Cancel(wait.spinEv)
	t := r.P.T
	cost := r.W.sendCost(msg.bytes)
	cont := func() { wait.then(msg.bytes) }
	if t.State == task.Sleeping {
		t.Work = float64(cost)
		t.OnDone = cont
		r.W.K.Wake(t)
		return
	}
	// Spinning (running or preempted-runnable): replace the spin.
	r.W.K.SetStep(t, float64(cost), cont)
}

// sendCost is the per-message cost: latency plus payload over bandwidth.
func (w *World) sendCost(bytes int) sim.Duration {
	cost := w.Cfg.Latency
	if w.Cfg.BytesPerSec > 0 && bytes > 0 {
		cost += sim.Seconds(float64(bytes) / w.Cfg.BytesPerSec)
	}
	if cost <= 0 {
		cost = sim.Microsecond
	}
	return cost
}

// SendRecv exchanges messages with a peer: posts a send and then receives
// with the same tag — the shift/exchange primitive of halo updates.
func (r *Rank) SendRecv(peer, tag, bytes int, then func()) {
	r.Send(peer, tag, bytes, func() {
		r.Recv(tag, func(int) { then() })
	})
}
