// Package mpi simulates the MPI runtime behaviour that matters to the
// paper: SPMD ranks alternating compute and synchronisation phases
// (Section II), launched by an mpiexec-like parent, synchronising through
// barriers and allreduces.
//
// Waiting follows the adaptive strategy of real MPI libraries: a rank
// arriving at a synchronisation point busy-waits (consuming its CPU, which
// keeps it visible to the scheduler and contends with its SMT sibling) for
// a bounded spin window, then blocks. In a quiet system barrier skew stays
// below the spin window and ranks never block; when OS noise delays one
// rank, its peers exhaust the window, block, free their CPUs — and the
// idle-balancing cascade the paper describes begins.
package mpi

import (
	"fmt"

	"hplsim/internal/kernel"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// Config parameterises a World.
type Config struct {
	// Ranks is the number of MPI processes.
	Ranks int
	// Policy is the scheduling policy of the ranks (Normal, RR, HPC).
	Policy task.Policy
	// RTPrio applies when Policy is FIFO/RR.
	RTPrio int
	// Nice applies when Policy is Normal (the paper's nice-based
	// prioritisation alternative).
	Nice int
	// PinCPUs, when non-empty, pins rank i to PinCPUs[i mod len]: the
	// static sched_setaffinity binding discussed in Section IV.
	PinCPUs []int
	// SpinThreshold is how long a rank busy-waits at a synchronisation
	// point before blocking. Zero means block immediately; a negative
	// value means spin forever.
	SpinThreshold sim.Duration
	// Sensitivity is the cache sensitivity of rank compute phases.
	Sensitivity float64
	// Latency is the per-synchronisation network/copy cost charged to
	// every rank after a collective releases.
	Latency sim.Duration
	// BytesPerSec is the simulated interconnect bandwidth for payload
	// cost in Allreduce; zero disables the payload term.
	BytesPerSec float64
}

// DefaultSpinThreshold mirrors common MPI progress engines: they busy-poll
// for tens of milliseconds before yielding to the OS, so ordinary iteration
// skew never blocks (keeping the paper's flat context-switch floor under
// HPL) while genuine noise delays — daemon bursts, storms — push peers past
// the window and into the block/idle-balance cascade.
const DefaultSpinThreshold = 20 * sim.Millisecond

// Program defines what each rank executes. It is called once per rank when
// the rank first runs; the implementation drives the rank through its
// phases using the Rank API.
type Program func(r *Rank)

// World is one MPI job: a set of ranks and their barrier state.
type World struct {
	K   *kernel.Kernel
	Cfg Config

	Ranks []*Rank

	// barrier state
	arrived int
	epoch   int

	started  sim.Time
	finished sim.Time
	nLive    int
	// OnComplete runs when the last rank exits.
	OnComplete func()
	// ReleaseTimes records the instant of every collective release, for
	// per-iteration analyses (the cluster resonance study).
	ReleaseTimes []sim.Time
}

// Rank is one MPI process.
type Rank struct {
	W  *World
	ID int
	P  *kernel.Proc

	// collective wait state
	waiting bool
	blocked bool
	cont    func()
	spinEv  sim.EventRef

	// point-to-point state
	mailbox []message
	recv    *recvWait
}

// NewWorld creates a world; ranks are created by Launch.
func NewWorld(k *kernel.Kernel, cfg Config) *World {
	if cfg.Ranks <= 0 {
		panic("mpi: world needs at least one rank")
	}
	if cfg.SpinThreshold == 0 {
		cfg.SpinThreshold = DefaultSpinThreshold
	}
	return &World{K: k, Cfg: cfg}
}

// Launch forks the ranks from the given parent task (the mpiexec process).
// Each rank runs program. The parent is typically blocked in WaitChildren
// afterwards; Launch itself returns immediately.
func (w *World) Launch(parent *kernel.Proc, program Program) {
	w.started = w.K.Now()
	w.nLive = w.Cfg.Ranks
	// Create every rank before spawning any: a program may address its
	// peers (Send/Recv) from its very first step.
	for i := 0; i < w.Cfg.Ranks; i++ {
		w.Ranks = append(w.Ranks, &Rank{W: w, ID: i})
	}
	for i := 0; i < w.Cfg.Ranks; i++ {
		r := w.Ranks[i]
		attr := kernel.Attr{
			Name:        fmt.Sprintf("rank%d", i),
			Policy:      w.Cfg.Policy,
			RTPrio:      w.Cfg.RTPrio,
			Nice:        w.Cfg.Nice,
			Sensitivity: w.Cfg.Sensitivity,
		}
		if len(w.Cfg.PinCPUs) > 0 {
			attr.Affinity = topo.MaskOf(w.Cfg.PinCPUs[i%len(w.Cfg.PinCPUs)])
		}
		spawn := func(p *kernel.Proc) {
			r.P = p
			program(r)
		}
		if parent != nil {
			parent.Spawn(attr, spawn)
		} else {
			w.K.Spawn(nil, attr, spawn)
		}
	}
}

// Elapsed reports the wall time between launch and last rank exit.
func (w *World) Elapsed() sim.Duration {
	return w.finished.Sub(w.started)
}

// Compute runs `work` of full-speed CPU time, then `then`.
func (r *Rank) Compute(work sim.Duration, then func()) {
	r.P.Compute(work, then)
}

// ComputeF is Compute with fractional work.
func (r *Rank) ComputeF(work float64, then func()) {
	r.P.ComputeF(work, then)
}

// Finish terminates the rank. When the last rank finishes, the world's
// completion time is recorded and OnComplete fires.
func (r *Rank) Finish() {
	w := r.W
	w.nLive--
	if w.nLive == 0 {
		w.finished = w.K.Now()
		if w.OnComplete != nil {
			w.OnComplete()
		}
	}
	r.P.Exit()
}

// Barrier arrives at the world barrier; when the last rank arrives, all
// ranks continue with their `then` continuations.
func (r *Rank) Barrier(then func()) {
	r.arriveSync(then)
}

// Allreduce is a barrier followed by a per-rank communication cost: the
// collective's latency plus payload transfer time, charged as work after
// the release.
func (r *Rank) Allreduce(bytes int, then func()) {
	w := r.W
	comm := w.Cfg.Latency
	if w.Cfg.BytesPerSec > 0 && bytes > 0 {
		comm += sim.Seconds(float64(bytes) / w.Cfg.BytesPerSec)
	}
	if comm <= 0 {
		comm = sim.Microsecond
	}
	r.arriveSync(func() {
		r.P.Compute(comm, then)
	})
}

// arriveSync implements the spin-then-block synchronisation point.
func (r *Rank) arriveSync(then func()) {
	w := r.W
	r.P.Mark(fmt.Sprintf("arrive:%d", w.epoch))
	w.arrived++
	if w.arrived == len(w.Ranks) {
		w.release(r, then)
		return
	}
	// Not the last: wait. Spin first, then block.
	r.waiting = true
	r.cont = then
	switch {
	case w.Cfg.SpinThreshold < 0:
		r.P.Spin()
	case w.Cfg.SpinThreshold == 0:
		r.blocked = true
		r.P.Block(then)
	default:
		r.P.Spin()
		r.spinEv = w.K.Eng.After(w.Cfg.SpinThreshold, r.spinExpired)
	}
}

// spinExpired fires when a rank has busy-waited for the full spin window:
// it gives up its CPU and blocks until the release.
func (r *Rank) spinExpired() {
	r.spinEv = sim.EventRef{}
	if !r.waiting {
		return // raced with release
	}
	r.blocked = true
	t := r.P.T
	cont := r.cont
	switch t.State {
	case task.Running:
		t.Work = 0
		t.OnDone = cont
		r.W.K.Block(t)
	case task.Runnable:
		// Preempted while spinning: leave the runqueue quietly.
		r.W.K.BlockQueued(t, cont)
	}
}

// release wakes every waiting rank and continues the releasing rank itself.
func (w *World) release(last *Rank, lastThen func()) {
	w.arrived = 0
	w.epoch++
	w.ReleaseTimes = append(w.ReleaseTimes, w.K.Now())
	for _, r := range w.Ranks {
		if !r.waiting {
			continue
		}
		r.waiting = false
		w.K.Eng.Cancel(r.spinEv)
		r.spinEv = sim.EventRef{}
		cont := r.cont
		r.cont = nil
		if r.blocked {
			r.blocked = false
			// The continuation was installed when the rank blocked.
			w.K.Wake(r.P.T)
		} else {
			// The rank is spinning (running or preempted-runnable):
			// replace the spin with the continuation.
			w.K.SetStep(r.P.T, 0, cont)
		}
		r.P.Mark(fmt.Sprintf("release:%d", w.epoch-1))
	}
	// The last arriver continues directly.
	w.K.SetStep(last.P.T, 0, lastThen)
}
