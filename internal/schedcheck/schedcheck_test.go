package schedcheck

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"hplsim/internal/pool"
	"hplsim/internal/sim"
)

// corpusSize is the seeded scenario budget the CI suite must keep green.
const corpusSize = 200

// TestScenarioCorpus runs the full oracle battery over the first corpusSize
// generated scenarios. Any failure is shrunk and dumped so the log carries a
// ready-to-commit repro.
func TestScenarioCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is not short")
	}
	type bad struct {
		seed uint64
		fail *Failure
	}
	var mu sync.Mutex
	var fails []bad
	pool.ForN(corpusSize, 0, func(i int) {
		seed := uint64(i) + 1
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			mu.Lock()
			fails = append(fails, bad{seed, &Failure{Oracle: OracleInvalid, Detail: err.Error()}})
			mu.Unlock()
			return
		}
		if f := Check(s); f != nil {
			mu.Lock()
			fails = append(fails, bad{seed, f})
			mu.Unlock()
		}
	})
	for _, b := range fails {
		t.Errorf("seed %d: %v", b.seed, b.fail)
	}
	if len(fails) > 0 {
		small, f := Shrink(Generate(fails[0].seed), 0)
		data, _ := small.MarshalIndent()
		t.Logf("shrunk repro for seed %d (%v):\n%s", fails[0].seed, f, data)
	}
}

// TestGenerateDeterministic pins the generator contract: a scenario is a
// pure function of its seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic:\n%+v\nvs\n%+v", seed, a, b)
		}
		if a.Chaos.HPCMigration {
			t.Fatalf("seed %d: generator produced a chaos scenario", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
	}
}

// TestScenarioRoundTrip checks that scenarios survive the JSON encoding used
// by repro files without loss.
func TestScenarioRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		s := Generate(seed)
		data, err := s.MarshalIndent()
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("seed %d: scenario changed across JSON round trip:\n%+v\nvs\n%+v", seed, s, back)
		}
	}
}

// TestRescaledScalesEverything guards the rescale transform itself: every
// duration field must be multiplied, or the rescale oracle would compare
// incomparable runs.
func TestRescaledScalesEverything(t *testing.T) {
	s := Scenario{
		Seed:          3,
		Topo:          TopoSpec{Chips: 2, Cores: 2, Threads: 2},
		Physics:       PhysicsIdeal,
		Scheme:        SchemeHPL,
		HZ:            250,
		Barrier:       true,
		SpinThreshold: sim.Millisecond,
		LaunchAt:      2 * sim.Millisecond,
		Ranks: []RankSpec{
			{Start: sim.Millisecond, Phases: []Phase{{Compute: sim.Millisecond, Sleep: 100 * sim.Microsecond, Iters: 2}}},
		},
		Daemons: []NoiseSpec{{Period: 5 * sim.Millisecond, Service: 50 * sim.Microsecond}},
		RTNoise: []RTSpec{{CPU: 0, Prio: 60, Period: 7 * sim.Millisecond, Service: 30 * sim.Microsecond}},
		Horizon: 100 * sim.Millisecond,
	}
	r := s.rescaled(2)
	checks := []struct {
		name string
		got  sim.Duration
		base sim.Duration
	}{
		{"spin", r.SpinThreshold, s.SpinThreshold},
		{"launch", r.LaunchAt, s.LaunchAt},
		{"start", r.Ranks[0].Start, s.Ranks[0].Start},
		{"compute", r.Ranks[0].Phases[0].Compute, s.Ranks[0].Phases[0].Compute},
		{"sleep", r.Ranks[0].Phases[0].Sleep, s.Ranks[0].Phases[0].Sleep},
		{"daemon period", r.Daemons[0].Period, s.Daemons[0].Period},
		{"daemon service", r.Daemons[0].Service, s.Daemons[0].Service},
		{"rt period", r.RTNoise[0].Period, s.RTNoise[0].Period},
		{"rt service", r.RTNoise[0].Service, s.RTNoise[0].Service},
		{"horizon", r.Horizon, s.Horizon},
	}
	for _, c := range checks {
		if c.got != 2*c.base {
			t.Errorf("%s: %v, want %v doubled", c.name, c.got, c.base)
		}
	}
	// The original must be untouched (rescaled works on a deep copy).
	if s.Ranks[0].Phases[0].Compute != sim.Millisecond {
		t.Error("rescaled mutated its receiver")
	}
}

// TestValidateRejects enumerates the structural guards a repro file (or a
// buggy shrinker candidate) must not slip past.
func TestValidateRejects(t *testing.T) {
	ok := Generate(1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("generated scenario invalid: %v", err)
	}
	mut := func(f func(*Scenario)) Scenario {
		c := ok.clone()
		f(&c)
		return c
	}
	cases := []struct {
		name string
		s    Scenario
	}{
		{"huge topology", mut(func(s *Scenario) { s.Topo.Chips = 5 })},
		{"zero HZ", mut(func(s *Scenario) { s.HZ = 0 })},
		{"bad physics", mut(func(s *Scenario) { s.Physics = "quantum" })},
		{"bad scheme", mut(func(s *Scenario) { s.Scheme = "fifo" })},
		{"no ranks", mut(func(s *Scenario) { s.Ranks = nil })},
		{"empty phases", mut(func(s *Scenario) { s.Ranks[0].Phases = nil })},
		{"zero compute", mut(func(s *Scenario) { s.Ranks[0].Phases[0].Compute = 0 })},
		{"zero horizon", mut(func(s *Scenario) { s.Horizon = 0 })},
		{"barrier without spin", mut(func(s *Scenario) {
			s.Barrier = true
			s.SpinThreshold = 0
		})},
		{"rt off-topology", mut(func(s *Scenario) {
			s.RTNoise = []RTSpec{{CPU: s.Topo.NumCPUs(), Prio: 50, Period: sim.Millisecond, Service: 100 * sim.Microsecond}}
		})},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken scenario", c.name)
		}
	}
}

// TestRotation sanity-checks the permutation used by the oracle.
func TestRotation(t *testing.T) {
	got := rotation(4)
	want := []int{1, 2, 3, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotation(4) = %v, want %v", got, want)
	}
}

// TestDiffObs covers the comparator driving three of the oracles.
func TestDiffObs(t *testing.T) {
	a := []rankObs{{Completed: true, Runtime: 10, Busy: 8, Migrations: 1}}
	if d := diffObs(a, a, true, 1); d != "" {
		t.Fatalf("identical observables diff: %s", d)
	}
	scaled := []rankObs{{Completed: true, Runtime: 20, Busy: 16, Migrations: 1}}
	if d := diffObs(a, scaled, true, 2); d != "" {
		t.Fatalf("exact 2x scaling diff: %s", d)
	}
	moved := []rankObs{{Completed: true, Runtime: 10, Busy: 8, Migrations: 2}}
	if d := diffObs(a, moved, true, 1); d == "" {
		t.Fatal("migration mismatch not reported")
	}
	if d := diffObs(a, moved, false, 1); d != "" {
		t.Fatalf("migration mismatch reported with withMigrations=false: %s", d)
	}
	slower := []rankObs{{Completed: true, Runtime: 11, Busy: 8, Migrations: 1}}
	if d := diffObs(a, slower, true, 1); d == "" {
		t.Fatal("runtime mismatch not reported")
	}
}
