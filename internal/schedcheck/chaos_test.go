package schedcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hplsim/internal/sim"
)

// chaosScenario is a healthy-looking overloaded scenario with the
// post-fork-migration fault switched on: the kernel re-enables dynamic HPC
// balancing, which the fork-time-only migration oracle must catch.
func chaosScenario() Scenario {
	s := Scenario{
		Seed:    7,
		Topo:    TopoSpec{Chips: 1, Cores: 2, Threads: 2},
		Physics: PhysicsIdeal,
		Scheme:  SchemeHPL,
		HZ:      250,
		Chaos:   ChaosSpec{HPCMigration: true},
	}
	for i := 0; i < 6; i++ {
		s.Ranks = append(s.Ranks, RankSpec{
			Start: sim.Duration(i) * sim.Millisecond,
			Phases: []Phase{
				{Compute: 2 * sim.Millisecond, Sleep: 500 * sim.Microsecond, Iters: 3},
			},
		})
	}
	s.Daemons = []NoiseSpec{{Period: 5 * sim.Millisecond, Service: 200 * sim.Microsecond}}
	s.Horizon = horizonFor(s)
	return s
}

// TestChaosCaughtAndShrunk is the harness's end-to-end self-test: a
// deliberately broken scheduler must be caught by an oracle, shrink to a
// small repro, serialize, and replay deterministically.
func TestChaosCaughtAndShrunk(t *testing.T) {
	s := chaosScenario()
	f := Check(s)
	if f == nil {
		t.Fatal("chaos scenario passed all oracles; fault injection is dead")
	}
	if f.Oracle != OracleMigration && f.Oracle != OracleNoise {
		t.Fatalf("chaos caught by %v, want %s or %s", f, OracleMigration, OracleNoise)
	}
	t.Logf("chaos caught: %v", f)

	small, sf := Shrink(s, 0)
	if sf == nil {
		t.Fatal("shrink lost the failure")
	}
	if small.TaskCount() > 8 {
		t.Fatalf("shrunk repro still has %d tasks, want <= 8", small.TaskCount())
	}
	if small.TaskCount() > s.TaskCount() {
		t.Fatalf("shrink grew the scenario: %d -> %d tasks", s.TaskCount(), small.TaskCount())
	}
	t.Logf("shrunk %d -> %d tasks, topo %v -> %v, caught by %v",
		s.TaskCount(), small.TaskCount(), s.Topo, small.Topo, sf.Oracle)

	// Round-trip the shrunk scenario through a repro file and replay it.
	path := filepath.Join(t.TempDir(), "chaos.json")
	repro := Repro{
		Version:  ReproVersion,
		Note:     "self-test: post-fork HPC migration fault",
		Expect:   "fail",
		Oracle:   sf.Oracle,
		Scenario: small,
	}
	if err := WriteRepro(path, repro); err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	if err := ReplayFile(path, 1); err != nil {
		t.Fatalf("ReplayFile: %v", err)
	}
}

// TestChaosOffIsClean pins down that the chaos scenario only fails because
// of the injected fault: with chaos off it must pass every oracle.
func TestChaosOffIsClean(t *testing.T) {
	s := chaosScenario()
	s.Chaos = ChaosSpec{}
	if f := Check(s); f != nil {
		t.Fatalf("fault-free twin of the chaos scenario fails: %v", f)
	}
}

// TestShrinkPassingScenario: shrinking a green scenario is the identity.
func TestShrinkPassingScenario(t *testing.T) {
	s := Generate(1)
	small, f := Shrink(s, 0)
	if f != nil {
		t.Fatalf("green scenario shrank to a failure: %v", f)
	}
	if small.TaskCount() != s.TaskCount() {
		t.Fatal("shrink modified a passing scenario")
	}
}

// TestReplayExpectations covers the replay verdict matrix.
func TestReplayExpectations(t *testing.T) {
	green := Generate(1)
	if err := Replay(Repro{Version: ReproVersion, Expect: "pass", Scenario: green}, 1); err != nil {
		t.Fatalf("pass-expectation on a green scenario: %v", err)
	}
	err := Replay(Repro{Version: ReproVersion, Expect: "fail", Oracle: OracleMigration, Scenario: green}, 1)
	if err == nil || !strings.Contains(err.Error(), "all oracles passed") {
		t.Fatalf("fail-expectation on a green scenario: %v", err)
	}
	chaos := chaosScenario()
	if err := Replay(Repro{Version: ReproVersion, Expect: "fail", Scenario: chaos}, 1); err != nil {
		t.Fatalf("fail-expectation without a pinned oracle: %v", err)
	}
	if err := Replay(Repro{Version: ReproVersion, Expect: "pass", Scenario: chaos}, 1); err == nil {
		t.Fatal("pass-expectation on a failing scenario did not error")
	}
}

// TestReadReproRejects covers the repro-file guards.
func TestReadReproRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if _, err := ReadRepro(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ReadRepro(write("garbage.json", "{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadRepro(write("version.json", `{"Version": 99, "Expect": "pass"}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := ReadRepro(write("expect.json", `{"Version": 1, "Expect": "maybe"}`)); err == nil {
		t.Error("bad expectation accepted")
	}
	if err := ReplayDir(dir, 1); err == nil {
		t.Error("ReplayDir over broken files did not error")
	}
	if err := ReplayDir(filepath.Join(dir, "empty"), 1); err == nil {
		t.Error("ReplayDir over a missing dir did not error")
	}
}

// TestCommittedRepros replays every repro checked in under testdata/repros,
// exactly as the CI job and cmd/schedcheck -replay do — sequential and
// sharded four ways, so each repro also pins sequential/sharded bitwise
// equivalence.
func TestCommittedRepros(t *testing.T) {
	if err := ReplayDir(filepath.Join("testdata", "repros"), 4); err != nil {
		t.Fatal(err)
	}
}

// noRotateScenario is an oversubscribed single-CPU scenario with the
// rotation-suppression fault switched on: the HPC class refills an expired
// timeslice without rescheduling, so the queued peer waits far beyond the
// round-robin bound the latency oracle enforces.
func noRotateScenario() Scenario {
	return Scenario{
		Seed:    11,
		Topo:    TopoSpec{Chips: 1, Cores: 1, Threads: 1},
		Physics: PhysicsIdeal,
		Scheme:  SchemeHPL,
		HZ:      250,
		Ranks: []RankSpec{
			{Phases: []Phase{{Compute: 400 * sim.Millisecond, Iters: 1}}},
			{Phases: []Phase{{Compute: 10 * sim.Millisecond, Iters: 1}}},
		},
		Horizon: sim.Duration(sim.Second),
		Chaos:   ChaosSpec{HPCNoRotate: true},
	}
}

// TestChaosNoRotateCaught: suppressed round-robin rotation must be caught
// by the runnable-wait latency oracle. rank1 forks behind one running HPC
// peer, so its bound is one timeslice plus a tick (104ms at HZ 250); with
// rotation suppressed it waits the peer's full 400ms compute.
func TestChaosNoRotateCaught(t *testing.T) {
	f := Check(noRotateScenario())
	if f == nil {
		t.Fatal("no-rotate chaos passed all oracles; the latency oracle is dead")
	}
	if f.Oracle != OracleLatency {
		t.Fatalf("no-rotate chaos caught by %v, want %s", f, OracleLatency)
	}
	t.Logf("chaos caught: %v", f)
}

// TestChaosNoRotateOffIsClean: the fault-free twin must satisfy the
// latency bound — rotation puts rank1 on CPU within timeslice + tick.
func TestChaosNoRotateOffIsClean(t *testing.T) {
	s := noRotateScenario()
	s.Chaos = ChaosSpec{}
	if f := Check(s); f != nil {
		t.Fatalf("fault-free twin of the no-rotate scenario fails: %v", f)
	}
}
