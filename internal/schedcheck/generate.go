package schedcheck

import "hplsim/internal/sim"

// Generate builds a random scenario from a seed. The result is a pure
// function of the seed: the corpus in CI and a failure reproduced locally
// see byte-identical scenarios. Chaos is never generated — fault injection
// is reserved for the harness's own self-tests.
func Generate(seed uint64) Scenario {
	rng := sim.NewRNG(seed).Split(0x5ce7a810)

	s := Scenario{
		Seed: seed,
		Topo: TopoSpec{
			Chips:   1 + rng.Intn(2),
			Cores:   1 + rng.Intn(2),
			Threads: 1 + rng.Intn(2),
		},
		HZ: []int{100, 250, 1000}[rng.Intn(3)],
	}
	// Occasionally draw a wide node (up to 4x16x2 = 128 CPUs) so the oracles
	// run on topologies whose CPU masks span multiple words. The draw is
	// taken unconditionally to keep the RNG stream aligned across seeds.
	wideTopo := TopoSpec{
		Chips:   2 + rng.Intn(3),
		Cores:   8 + rng.Intn(9),
		Threads: 1 + rng.Intn(2),
	}
	if rng.Float64() < 0.15 {
		s.Topo = wideTopo
	}
	if rng.Float64() < 0.7 {
		s.Physics = PhysicsIdeal
	} else {
		s.Physics = PhysicsRealistic
	}
	if rng.Float64() < 0.8 {
		s.Scheme = SchemeHPL
	} else {
		s.Scheme = SchemeStandard
	}

	nCPU := s.Topo.NumCPUs()
	// Mostly at most one rank per CPU (where the paper's exactness claims
	// live), sometimes oversubscribed to exercise the round-robin path. On
	// wide nodes the rank count is capped so corpus runtime stays bounded:
	// the interesting part of a 128-CPU scenario is the mask width, not
	// simulating 128 concurrent ranks.
	maxRanks := min(nCPU, 24)
	ranks := 1 + rng.Intn(maxRanks)
	if rng.Float64() < 0.25 {
		ranks = nCPU + 1 + rng.Intn(3)
		if ranks > maxRanks+3 {
			ranks = maxRanks + 3
		}
	}

	s.Barrier = ranks >= 2 && rng.Float64() < 0.5
	if s.Barrier {
		s.SpinThreshold = []sim.Duration{
			100 * sim.Microsecond, sim.Millisecond, 5 * sim.Millisecond, 20 * sim.Millisecond,
		}[rng.Intn(4)]
		s.LaunchAt = rng.UniformDuration(sim.Millisecond, 10*sim.Millisecond)
	}

	phase := func() Phase {
		p := Phase{
			Compute: rng.UniformDuration(200*sim.Microsecond, 5*sim.Millisecond),
			Iters:   1 + rng.Intn(4),
		}
		if !s.Barrier && rng.Float64() < 0.5 {
			p.Sleep = rng.UniformDuration(100*sim.Microsecond, sim.Millisecond)
		}
		return p
	}
	if s.Barrier {
		// Barrier mode: every rank shares one phase skeleton (equal
		// barrier arrival counts) but computes its own durations, giving
		// the skew that exercises spin-then-block.
		nPhases := 1 + rng.Intn(3)
		skeleton := make([]int, nPhases)
		for i := range skeleton {
			skeleton[i] = 1 + rng.Intn(4)
		}
		for r := 0; r < ranks; r++ {
			spec := RankSpec{}
			for _, iters := range skeleton {
				p := phase()
				p.Iters = iters
				spec.Phases = append(spec.Phases, p)
			}
			s.Ranks = append(s.Ranks, spec)
		}
	} else {
		for r := 0; r < ranks; r++ {
			spec := RankSpec{Start: rng.UniformDuration(0, 15*sim.Millisecond)}
			nPhases := 1 + rng.Intn(3)
			for i := 0; i < nPhases; i++ {
				spec.Phases = append(spec.Phases, phase())
			}
			s.Ranks = append(s.Ranks, spec)
		}
	}

	for i, n := 0, 1+rng.Intn(4); i < n; i++ {
		s.Daemons = append(s.Daemons, NoiseSpec{
			Period:  rng.UniformDuration(2*sim.Millisecond, 20*sim.Millisecond),
			Service: rng.UniformDuration(20*sim.Microsecond, 300*sim.Microsecond),
		})
	}
	if rng.Float64() < 0.4 {
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			s.RTNoise = append(s.RTNoise, RTSpec{
				CPU:     rng.Intn(nCPU),
				Prio:    50 + rng.Intn(40),
				Period:  rng.UniformDuration(2*sim.Millisecond, 20*sim.Millisecond),
				Service: rng.UniformDuration(20*sim.Microsecond, 200*sim.Microsecond),
			})
		}
	}

	s.Horizon = horizonFor(s)
	return s
}

// horizonFor sizes the simulation bound so every rank finishes even if all
// compute serialized onto one CPU, with margin for noise theft and
// realistic-physics overheads.
func horizonFor(s Scenario) sim.Duration {
	var serial, maxStart sim.Duration
	for _, r := range s.Ranks {
		serial += r.serial()
		if r.Start > maxStart {
			maxStart = r.Start
		}
	}
	return 4*serial + maxStart + s.LaunchAt + 300*sim.Millisecond
}
