package schedcheck

import (
	"bytes"
	"fmt"

	"hplsim/internal/schedstat"
)

// CheckShards is the parallel-sharding equivalence oracle: running the
// scenario with its CPUs sharded over host workers must be bitwise identical
// to the sequential run — the same dispatch fingerprint, per-workload
// observables, perf counters, and the same full schedstat ledger byte for
// byte — under both tick modes. Unlike the metamorphic oracles it has no
// physics or scheme applicability predicate: sharding is an execution
// strategy, never a model change, so the claim holds on every valid
// scenario. It returns the first divergence (Oracle: OracleShard) or nil,
// plus the number of parallel fan-outs the sharded runs performed — zero
// means the comparison was vacuous (single-chip topology, or no catch-up
// ever had pending work in two shards), which callers aggregating over a
// corpus should assert against.
func CheckShards(s Scenario, shards int) (*Failure, uint64) {
	if shards <= 1 || s.Topo.Chips < 2 {
		return nil, 0
	}
	if err := s.Validate(); err != nil {
		return &Failure{Oracle: OracleInvalid, Detail: err.Error()}, 0
	}
	var phases uint64
	for _, ff := range []bool{false, true} {
		var seqTrace, shardTrace bytes.Buffer
		seq := run(s, runCfg{fastForward: ff, trace: schedstat.NewWriter(&seqTrace)})
		shd := run(s, runCfg{fastForward: ff, shards: shards, trace: schedstat.NewWriter(&shardTrace)})
		phases += shd.shardPhases
		if seq.eventHash != shd.eventHash {
			return &Failure{Oracle: OracleShard, Detail: fmt.Sprintf(
				"ff=%v shards=%d: dispatch fingerprint differs from sequential: %016x vs %016x",
				ff, shards, seq.eventHash, shd.eventHash)}, phases
		}
		if d := diffObs(seq.obs, shd.obs, true, 1); d != "" {
			return &Failure{Oracle: OracleShard, Detail: fmt.Sprintf(
				"ff=%v shards=%d: sharding changed observables: %s", ff, shards, d)}, phases
		}
		if seq.perf != shd.perf {
			return &Failure{Oracle: OracleShard, Detail: fmt.Sprintf(
				"ff=%v shards=%d: sharding changed perf counters: seq %+v vs shard %+v",
				ff, shards, seq.perf, shd.perf)}, phases
		}
		if !bytes.Equal(seqTrace.Bytes(), shardTrace.Bytes()) {
			return &Failure{Oracle: OracleShard, Detail: fmt.Sprintf(
				"ff=%v shards=%d: schedstat traces diverge (%d vs %d bytes)",
				ff, shards, seqTrace.Len(), shardTrace.Len())}, phases
		}
	}
	return nil, phases
}
