//go:build invariants

package schedcheck

import (
	"testing"

	"hplsim/internal/invariant"
	"hplsim/internal/schedstat"
)

// TestChaosShardSkewPanicsUnderAudit is the -tags invariants twin of
// TestChaosShardSkewCaught: with the shard window audit compiled in, the
// mis-set horizon must die in the audit on the first fan-out — before a
// single out-of-window tick is replayed — rather than surface later as a
// trace divergence.
func TestChaosShardSkewPanicsUnderAudit(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("skewed sharded run completed; the window audit never fired")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("expected invariant.Violation, got %v", r)
		}
	}()
	var sink nopWriter
	run(skewScenario(), runCfg{fastForward: true, shards: 2, trace: schedstat.NewWriter(&sink)})
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
