package schedcheck

import "hplsim/internal/sim"

// minCompute keeps shrunk phases meaningful: below this the simulation is
// all edges and no steady state.
const minCompute = 50 * sim.Microsecond

// DefaultShrinkBudget bounds the number of Check calls a shrink may spend.
const DefaultShrinkBudget = 200

// Shrink greedily reduces a failing scenario while it keeps failing (any
// oracle): drop noise tasks, drop ranks, drop phases, halve iteration
// counts and durations, and shrink the topology. It returns the smallest
// failing scenario found and its failure; if the input scenario passes, it
// is returned unchanged with a nil failure. budget caps the number of
// Check calls (<= 0 means DefaultShrinkBudget).
func Shrink(s Scenario, budget int) (Scenario, *Failure) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	fail := Check(s)
	if fail == nil {
		return s, nil
	}
	checks := 1
	cur := s
	for checks < budget {
		improved := false
		for _, cand := range candidates(cur) {
			if cand.Validate() != nil {
				continue
			}
			if checks >= budget {
				break
			}
			f := Check(cand)
			checks++
			if f != nil {
				cur, fail = cand, f
				improved = true
				break // restart from the reduced scenario
			}
		}
		if !improved {
			break
		}
	}
	return cur, fail
}

// candidates enumerates one-step reductions of the scenario, biggest wins
// first. Every candidate is a fresh deep copy.
func candidates(s Scenario) []Scenario {
	var out []Scenario

	// Halve, then drop individual noise tasks.
	if n := len(s.Daemons); n >= 2 {
		c := s.clone()
		c.Daemons = c.Daemons[:n/2]
		out = append(out, c)
	}
	for i := range s.Daemons {
		c := s.clone()
		c.Daemons = append(c.Daemons[:i], c.Daemons[i+1:]...)
		out = append(out, c)
	}
	if n := len(s.RTNoise); n >= 2 {
		c := s.clone()
		c.RTNoise = c.RTNoise[:n/2]
		out = append(out, c)
	}
	for i := range s.RTNoise {
		c := s.clone()
		c.RTNoise = append(c.RTNoise[:i], c.RTNoise[i+1:]...)
		out = append(out, c)
	}

	// Drop ranks (keep at least one). Barrier iteration counts stay equal
	// because whole ranks are removed.
	if n := len(s.Ranks); n >= 3 {
		c := s.clone()
		c.Ranks = c.Ranks[:(n+1)/2]
		out = append(out, c)
	}
	if len(s.Ranks) >= 2 {
		for i := range s.Ranks {
			c := s.clone()
			c.Ranks = append(c.Ranks[:i], c.Ranks[i+1:]...)
			out = append(out, c)
		}
	}

	// Shrink the topology one dimension at a time, halving so wide nodes
	// (up to 4x16x2) converge in a few steps. Candidates that strand an
	// RT-pinned CPU outside the smaller topology fail Validate and are
	// skipped by the caller.
	if s.Topo.Threads > 1 {
		c := s.clone()
		c.Topo.Threads /= 2
		out = append(out, c)
	}
	if s.Topo.Cores > 1 {
		c := s.clone()
		c.Topo.Cores /= 2
		out = append(out, c)
	}
	if s.Topo.Chips > 1 {
		c := s.clone()
		c.Topo.Chips /= 2
		out = append(out, c)
	}

	// Drop the last phase of every rank together (keeps barrier arrival
	// counts equal across ranks).
	dropLast := true
	for _, r := range s.Ranks {
		if len(r.Phases) < 2 {
			dropLast = false
		}
	}
	if dropLast {
		c := s.clone()
		for i := range c.Ranks {
			c.Ranks[i].Phases = c.Ranks[i].Phases[:len(c.Ranks[i].Phases)-1]
		}
		out = append(out, c)
	}

	// Halve iteration counts of every phase together.
	canHalveIters := false
	for _, r := range s.Ranks {
		for _, p := range r.Phases {
			if p.Iters >= 2 {
				canHalveIters = true
			}
		}
	}
	if canHalveIters && !s.Barrier {
		c := s.clone()
		for i := range c.Ranks {
			for j := range c.Ranks[i].Phases {
				if c.Ranks[i].Phases[j].Iters >= 2 {
					c.Ranks[i].Phases[j].Iters /= 2
				}
			}
		}
		out = append(out, c)
	}
	if s.Barrier {
		// In barrier mode iteration counts are aligned per phase index
		// across ranks; halve them in lockstep.
		c := s.clone()
		changed := false
		for j := range c.Ranks[0].Phases {
			if c.Ranks[0].Phases[j].Iters >= 2 {
				changed = true
				for i := range c.Ranks {
					c.Ranks[i].Phases[j].Iters /= 2
				}
			}
		}
		if changed {
			out = append(out, c)
		}
	}

	// Halve compute and sleep durations, and the noise schedules.
	{
		c := s.clone()
		changed := false
		for i := range c.Ranks {
			c.Ranks[i].Start /= 2
			for j := range c.Ranks[i].Phases {
				p := &c.Ranks[i].Phases[j]
				if p.Compute/2 >= minCompute {
					p.Compute /= 2
					changed = true
				}
				if p.Sleep > 0 {
					p.Sleep /= 2
					changed = true
				}
			}
		}
		for i := range c.Daemons {
			c.Daemons[i].Period /= 2
			if c.Daemons[i].Service/2 > 0 {
				c.Daemons[i].Service /= 2
			}
		}
		if changed {
			out = append(out, c)
		}
	}

	// Zero all sleeps (independent mode; barrier phases rarely sleep).
	{
		c := s.clone()
		changed := false
		for i := range c.Ranks {
			for j := range c.Ranks[i].Phases {
				if c.Ranks[i].Phases[j].Sleep > 0 {
					c.Ranks[i].Phases[j].Sleep = 0
					changed = true
				}
			}
		}
		if changed {
			out = append(out, c)
		}
	}

	return out
}
