package schedcheck

import (
	"fmt"

	"hplsim/internal/kernel"
	"hplsim/internal/mpi"
	"hplsim/internal/noise"
	"hplsim/internal/perf"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// rankObs are the per-workload observables the metamorphic oracles compare.
// "Workload" is the phase list from the scenario; under a permutation the
// workload runs in a different fork slot but keeps its observables.
type rankObs struct {
	Completed  bool
	Runtime    sim.Duration // exit minus spawn; censored at the horizon
	Busy       sim.Duration // accumulated CPU time, including barrier spin
	Migrations uint64
}

// report is the outcome of one simulation of a scenario.
type report struct {
	eventHash uint64
	obs       []rankObs // indexed by workload
	domViol   []string  // class-priority dominance violations
	migViol   []string  // fork-time-only migration violations
	perf      perf.Counters
}

// recorder implements kernel.Tracer and kernel.KindTracer: it probes the
// scheduler at every context switch and migration, and fingerprints the
// engine's dispatch stream through the Observer hook.
type recorder struct {
	k      *kernel.Kernel
	scheme string

	hash      uint64
	domViol   []string
	migViol   []string
	forkMoves []int // per task ID, count of fork-placement migrations
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newRecorder(scheme string) *recorder {
	return &recorder{scheme: scheme, hash: fnvOffset}
}

// observe folds every event dispatch into an FNV-style fingerprint. Two
// runs of the same scenario must produce the same stream bit for bit.
func (r *recorder) observe(at sim.Time, seq uint64) {
	r.hash = (r.hash ^ uint64(at)) * fnvPrime
	r.hash = (r.hash ^ seq) * fnvPrime
}

// Switch implements kernel.Tracer: the dominance probe. The class chain
// promises that no CFS task runs while an HPC task is runnable on the same
// CPU, so observing a Normal task switched in with a non-empty HPC queue is
// a scheduler bug, whatever the configuration.
func (r *recorder) Switch(now sim.Time, cpu int, prev, next *task.Task) {
	if next.Policy != task.Normal {
		return
	}
	if n := r.k.Sched.QueuedOf("hpc", cpu); n > 0 {
		r.domViol = append(r.domViol, fmt.Sprintf(
			"t=%v cpu%d: CFS task %q switched in with %d HPC task(s) queued", now, cpu, next.Name, n))
	}
}

// MigrateK implements kernel.KindTracer: the fork-time-only probe. Under
// the HPL scheme an HPC task may migrate exactly once, at fork placement.
func (r *recorder) MigrateK(now sim.Time, t *task.Task, from, to int, kind kernel.MigrateKind) {
	if t.Policy != task.HPC || r.scheme != SchemeHPL {
		return
	}
	if kind != kernel.MigrateFork {
		r.migViol = append(r.migViol, fmt.Sprintf(
			"t=%v: HPC task %q moved cpu%d->cpu%d by %v after placement", now, t.Name, from, to, kind))
		return
	}
	for len(r.forkMoves) <= t.ID {
		r.forkMoves = append(r.forkMoves, 0)
	}
	r.forkMoves[t.ID]++
	if r.forkMoves[t.ID] > 1 {
		r.migViol = append(r.migViol, fmt.Sprintf(
			"t=%v: HPC task %q fork-migrated %d times", now, t.Name, r.forkMoves[t.ID]))
	}
}

// Migrate implements kernel.Tracer (kinds arrive through MigrateK).
func (r *recorder) Migrate(now sim.Time, t *task.Task, from, to int) {}

// Wake implements kernel.Tracer.
func (r *recorder) Wake(now sim.Time, t *task.Task, cpu int) {}

// Mark implements kernel.Tracer.
func (r *recorder) Mark(now sim.Time, t *task.Task, label string) {}

// kernelConfig maps a scenario onto a kernel configuration. Ideal physics
// zeroes every source of friction so the metamorphic oracles hold exactly;
// realistic physics keeps the kernel defaults.
func kernelConfig(s Scenario, rec *recorder) kernel.Config {
	cfg := kernel.Config{
		Topo:   s.Topo.Topology(),
		HZ:     s.HZ,
		Seed:   s.Seed,
		Tracer: rec,
		Chaos:  sched.Chaos{HPCMigration: s.Chaos.HPCMigration},
	}
	if s.Scheme == SchemeStandard {
		cfg.Balance = sched.BalanceStandard
	} else {
		cfg.Balance = sched.BalanceHPL
	}
	if s.Physics == PhysicsIdeal {
		cfg.NoOverheads = true
		cfg.SMTFactors = []float64{1, 1}
	}
	return cfg
}

// runOnce simulates the scenario with workload assign[slot] running in fork
// slot `slot` (nil means identity) and reports observables and violations.
func runOnce(s Scenario, assign []int) report { return runMode(s, assign, false) }

// runMode is runOnce with an explicit tick mode: fastForward selects the
// kernel's virtual-time fast-forward, which the equivalence oracle compares
// against the step-every-tick baseline.
func runMode(s Scenario, assign []int, fastForward bool) report {
	if assign == nil {
		assign = make([]int, len(s.Ranks))
		for i := range assign {
			assign[i] = i
		}
	}
	rec := newRecorder(s.Scheme)
	cfg := kernelConfig(s, rec)
	cfg.FastForward = fastForward
	k := kernel.New(cfg)
	rec.k = k
	k.Eng.Observer = rec.observe

	for i, d := range s.Daemons {
		noise.DaemonSpec{
			Name:    fmt.Sprintf("daemon%d", i),
			Period:  d.Period,
			Service: d.Service,
		}.Spawn(k, k.RNG(0xda30+uint64(i)))
	}
	for i, rt := range s.RTNoise {
		noise.DaemonSpec{
			Name:     fmt.Sprintf("rtnoise%d", i),
			Policy:   task.FIFO,
			RTPrio:   rt.Prio,
			Period:   rt.Period,
			Service:  rt.Service,
			Affinity: topo.MaskOf(rt.CPU),
		}.Spawn(k, k.RNG(0xf1f0+uint64(i)))
	}

	tasks := make([]*task.Task, len(s.Ranks)) // indexed by workload
	var world *mpi.World
	if s.Barrier {
		world = mpi.NewWorld(k, mpi.Config{
			Ranks:         len(s.Ranks),
			Policy:        task.HPC,
			SpinThreshold: s.SpinThreshold,
		})
		k.Eng.After(s.LaunchAt, func() {
			world.Launch(nil, func(r *mpi.Rank) {
				runRankMPI(r, s.Ranks[assign[r.ID]].Phases)
			})
		})
	} else {
		for slot := range s.Ranks {
			slot := slot
			wl := assign[slot]
			k.Eng.After(s.Ranks[slot].Start, func() {
				tasks[wl] = k.Spawn(nil, kernel.Attr{
					Name:   fmt.Sprintf("rank%d", slot),
					Policy: task.HPC,
				}, func(p *kernel.Proc) {
					runRank(p, s.Ranks[wl].Phases)
				})
			})
		}
	}

	k.Run(sim.Time(0).Add(s.Horizon))
	end := k.Now()

	if world != nil {
		for slot, r := range world.Ranks {
			if r.P != nil {
				tasks[assign[slot]] = r.P.T
			}
		}
	}
	rep := report{
		eventHash: rec.hash,
		obs:       make([]rankObs, len(s.Ranks)),
		domViol:   rec.domViol,
		migViol:   rec.migViol,
		perf:      k.Perf,
	}
	for wl, t := range tasks {
		if t == nil {
			continue // never spawned within the horizon
		}
		o := rankObs{Busy: t.SumExec, Migrations: t.Counters.Migrations}
		if t.State == task.Dead {
			o.Completed = true
			o.Runtime = t.Exited.Sub(t.Spawned)
		} else {
			o.Runtime = end.Sub(t.Spawned)
		}
		rep.obs[wl] = o
	}
	return rep
}

// runRank drives an independent rank through its phases: compute, optional
// sleep, repeat, exit.
func runRank(p *kernel.Proc, phases []Phase) {
	var step func(pi, it int)
	step = func(pi, it int) {
		if pi == len(phases) {
			p.Exit()
			return
		}
		ph := phases[pi]
		npi, nit := pi, it+1
		if nit >= ph.Iters {
			npi, nit = pi+1, 0
		}
		p.Compute(ph.Compute, func() {
			if ph.Sleep > 0 {
				p.Sleep(ph.Sleep, func() { step(npi, nit) })
			} else {
				step(npi, nit)
			}
		})
	}
	step(0, 0)
}

// runRankMPI drives a barrier-coupled rank: compute, optional sleep,
// barrier, repeat, finish. Validation guarantees equal iteration counts
// across ranks, so every barrier releases.
func runRankMPI(r *mpi.Rank, phases []Phase) {
	var step func(pi, it int)
	step = func(pi, it int) {
		if pi == len(phases) {
			r.Finish()
			return
		}
		ph := phases[pi]
		npi, nit := pi, it+1
		if nit >= ph.Iters {
			npi, nit = pi+1, 0
		}
		r.Compute(ph.Compute, func() {
			arrive := func() { r.Barrier(func() { step(npi, nit) }) }
			if ph.Sleep > 0 {
				r.P.Sleep(ph.Sleep, arrive)
			} else {
				arrive()
			}
		})
	}
	step(0, 0)
}
