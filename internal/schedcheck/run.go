package schedcheck

import (
	"fmt"

	"hplsim/internal/kernel"
	"hplsim/internal/mpi"
	"hplsim/internal/noise"
	"hplsim/internal/perf"
	"hplsim/internal/sched"
	"hplsim/internal/sched/hpc"
	"hplsim/internal/schedstat"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// rankObs are the per-workload observables the metamorphic oracles compare.
// "Workload" is the phase list from the scenario; under a permutation the
// workload runs in a different fork slot but keeps its observables.
type rankObs struct {
	Completed  bool
	Runtime    sim.Duration // exit minus spawn; censored at the horizon
	Busy       sim.Duration // accumulated CPU time, including barrier spin
	Migrations uint64
}

// report is the outcome of one simulation of a scenario.
type report struct {
	eventHash uint64
	obs       []rankObs // indexed by workload
	domViol   []string  // class-priority dominance violations
	migViol   []string  // fork-time-only migration violations
	latViol   []string  // runnable-wait latency-bound violations
	perf      perf.Counters
	// shardPhases counts parallel catch-up fan-outs — a host-side execution
	// diagnostic the shard oracle uses to prove the parallel path ran, never
	// part of any equivalence comparison.
	shardPhases uint64
}

// recorder implements kernel.Tracer, kernel.KindTracer, and
// kernel.TaskTracer: it probes the scheduler at every context switch and
// migration, fingerprints the engine's dispatch stream through the Observer
// hook, and feeds a schedstat accounting ledger whose wait measurements the
// latency oracle checks against the round-robin bound.
type recorder struct {
	k      *kernel.Kernel
	scheme string
	// trace, when set, receives every tracer callback verbatim: the shard
	// oracle captures the full schedstat ledger of a run this way and
	// compares it byte for byte between sequential and sharded executions.
	trace *schedstat.Writer

	hash      uint64
	domViol   []string
	migViol   []string
	latViol   []string
	forkMoves []int // per task ID, count of fork-placement migrations

	acct *schedstat.Accounting
	// latOn arms the runnable-wait latency oracle: under ideal HPL physics
	// with no RT noise and no migration chaos, an HPC task made runnable
	// behind `ahead` same-class tasks waits at most ahead*(timeslice +
	// tick period) — each task ahead runs one full quantum plus the tick
	// granularity at which slice expiry is detected.
	latOn     bool
	slicePlus sim.Duration   // hpc.Timeslice + tick period, the per-ahead-task budget
	bounds    []sim.Duration // per task ID; noBound when unarmed
}

// noBound marks a task with no armed wait bound (an ahead count of zero is
// a legitimate bound, so the sentinel is negative).
const noBound = sim.Duration(-1)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newRecorder(s Scenario) *recorder {
	r := &recorder{
		scheme: s.Scheme,
		hash:   fnvOffset,
		acct:   schedstat.NewAccounting(),
		latOn: s.Physics == PhysicsIdeal && s.Scheme == SchemeHPL &&
			len(s.RTNoise) == 0 && !s.Chaos.HPCMigration,
		slicePlus: hpc.Timeslice + sim.Duration(int64(sim.Second)/int64(s.HZ)),
	}
	r.acct.OnWait = r.checkWait
	return r
}

// armBound records that t became runnable behind `ahead` HPC tasks on its
// CPU; its next on-CPU latency must not exceed ahead*slicePlus.
func (r *recorder) armBound(t *task.Task, ahead int) {
	for len(r.bounds) <= t.ID {
		r.bounds = append(r.bounds, noBound)
	}
	r.bounds[t.ID] = sim.Duration(ahead) * r.slicePlus
}

// disarmBound forgets t's bound (migration moves it to a queue whose ahead
// count was not observed).
func (r *recorder) disarmBound(id int) {
	if id < len(r.bounds) {
		r.bounds[id] = noBound
	}
}

// hpcAhead counts the HPC tasks already committed to cpu: the queued ones
// plus a currently running one.
func (r *recorder) hpcAhead(cpu int) int {
	ahead := r.k.Sched.QueuedOf("hpc", cpu)
	if c := r.k.Sched.Curr(cpu); c != nil && c.Policy == task.HPC {
		ahead++
	}
	return ahead
}

// checkWait is the accounting ledger's OnWait hook: it fires when a task
// goes on CPU, with the runnable-wait it just served.
func (r *recorder) checkWait(now sim.Time, t *task.Task, cpu int, wait sim.Duration) {
	if !r.latOn || t.Policy != task.HPC || t.ID >= len(r.bounds) {
		return
	}
	b := r.bounds[t.ID]
	r.bounds[t.ID] = noBound
	if b >= 0 && wait > b {
		r.latViol = append(r.latViol, fmt.Sprintf(
			"t=%v cpu%d: HPC task %q waited %v for the CPU, bound %v", now, cpu, t.Name, wait, b))
	}
}

// observe folds every event dispatch into an FNV-style fingerprint. Two
// runs of the same scenario must produce the same stream bit for bit.
func (r *recorder) observe(at sim.Time, seq uint64) {
	r.hash = (r.hash ^ uint64(at)) * fnvPrime
	r.hash = (r.hash ^ seq) * fnvPrime
}

// Switch implements kernel.Tracer: the dominance probe. The class chain
// promises that no CFS task runs while an HPC task is runnable on the same
// CPU, so observing a Normal task switched in with a non-empty HPC queue is
// a scheduler bug, whatever the configuration.
func (r *recorder) Switch(now sim.Time, cpu int, prev, next *task.Task) {
	if r.trace != nil {
		r.trace.Switch(now, cpu, prev, next)
	}
	r.acct.Switch(now, cpu, prev, next)
	if r.latOn && prev.Policy == task.HPC && prev.State == task.Runnable {
		// prev was preempted and requeued: it is already counted in
		// QueuedOf, and next (just picked, off the queue) goes ahead of it
		// when it is also HPC.
		ahead := r.k.Sched.QueuedOf("hpc", cpu) - 1
		if next.Policy == task.HPC {
			ahead++
		}
		if ahead >= 0 {
			r.armBound(prev, ahead)
		}
	}
	if next.Policy != task.Normal {
		return
	}
	if n := r.k.Sched.QueuedOf("hpc", cpu); n > 0 {
		r.domViol = append(r.domViol, fmt.Sprintf(
			"t=%v cpu%d: CFS task %q switched in with %d HPC task(s) queued", now, cpu, next.Name, n))
	}
}

// MigrateK implements kernel.KindTracer: the fork-time-only probe. Under
// the HPL scheme an HPC task may migrate exactly once, at fork placement.
func (r *recorder) MigrateK(now sim.Time, t *task.Task, from, to int, kind kernel.MigrateKind) {
	if r.trace != nil {
		r.trace.MigrateK(now, t, from, to, kind)
	}
	r.acct.MigrateK(now, t, from, to, kind)
	r.disarmBound(t.ID)
	if t.Policy != task.HPC || r.scheme != SchemeHPL {
		return
	}
	if kind != kernel.MigrateFork {
		r.migViol = append(r.migViol, fmt.Sprintf(
			"t=%v: HPC task %q moved cpu%d->cpu%d by %v after placement", now, t.Name, from, to, kind))
		return
	}
	for len(r.forkMoves) <= t.ID {
		r.forkMoves = append(r.forkMoves, 0)
	}
	r.forkMoves[t.ID]++
	if r.forkMoves[t.ID] > 1 {
		r.migViol = append(r.migViol, fmt.Sprintf(
			"t=%v: HPC task %q fork-migrated %d times", now, t.Name, r.forkMoves[t.ID]))
	}
}

// Migrate implements kernel.Tracer (kinds arrive through MigrateK).
func (r *recorder) Migrate(now sim.Time, t *task.Task, from, to int) {}

// Wake implements kernel.Tracer. The wake hook fires before the enqueue,
// so the queue census counts exactly the tasks ahead of t.
func (r *recorder) Wake(now sim.Time, t *task.Task, cpu int) {
	if r.trace != nil {
		r.trace.Wake(now, t, cpu)
	}
	r.acct.Wake(now, t, cpu)
	if r.latOn && t.Policy == task.HPC {
		r.armBound(t, r.hpcAhead(cpu))
	}
}

// Mark implements kernel.Tracer.
func (r *recorder) Mark(now sim.Time, t *task.Task, label string) {
	if r.trace != nil {
		r.trace.Mark(now, t, label)
	}
	r.acct.Mark(now, t, label)
}

// Fork implements kernel.TaskTracer; like Wake it fires pre-enqueue.
func (r *recorder) Fork(now sim.Time, t *task.Task, cpu int) {
	if r.trace != nil {
		r.trace.Fork(now, t, cpu)
	}
	r.acct.Fork(now, t, cpu)
	if r.latOn && t.Policy == task.HPC {
		r.armBound(t, r.hpcAhead(cpu))
	}
}

// Exit implements kernel.TaskTracer.
func (r *recorder) Exit(now sim.Time, t *task.Task) {
	if r.trace != nil {
		r.trace.Exit(now, t)
	}
	r.acct.Exit(now, t)
}

// kernelConfig maps a scenario onto a kernel configuration. Ideal physics
// zeroes every source of friction so the metamorphic oracles hold exactly;
// realistic physics keeps the kernel defaults.
func kernelConfig(s Scenario, rec *recorder) kernel.Config {
	cfg := kernel.Config{
		Topo:   s.Topo.Topology(),
		HZ:     s.HZ,
		Seed:   s.Seed,
		Tracer: rec,
		Chaos: sched.Chaos{
			HPCMigration: s.Chaos.HPCMigration,
			HPCNoRotate:  s.Chaos.HPCNoRotate,
			ShardSkew:    s.Chaos.ShardSkew,
		},
	}
	if s.Scheme == SchemeStandard {
		cfg.Balance = sched.BalanceStandard
	} else {
		cfg.Balance = sched.BalanceHPL
	}
	if s.Physics == PhysicsIdeal {
		cfg.NoOverheads = true
		cfg.SMTFactors = []float64{1, 1}
	}
	return cfg
}

// runCfg selects the execution strategy of one simulation — never the
// simulated behaviour, which must be identical across all of them.
type runCfg struct {
	assign      []int
	fastForward bool
	// shards > 1 runs the parallel catch-up phase at grain 1 (every
	// eligible catch-up fans out), the configuration the shard oracle
	// compares against sequential.
	shards int
	// trace, when set, captures the full schedstat ledger of the run.
	trace *schedstat.Writer
}

// runOnce simulates the scenario with workload assign[slot] running in fork
// slot `slot` (nil means identity) and reports observables and violations.
func runOnce(s Scenario, assign []int) report { return run(s, runCfg{assign: assign}) }

// runMode is runOnce with an explicit tick mode: fastForward selects the
// kernel's virtual-time fast-forward, which the equivalence oracle compares
// against the step-every-tick baseline.
func runMode(s Scenario, assign []int, fastForward bool) report {
	return run(s, runCfg{assign: assign, fastForward: fastForward})
}

// run simulates the scenario under one execution strategy.
func run(s Scenario, rc runCfg) report {
	assign := rc.assign
	if assign == nil {
		assign = make([]int, len(s.Ranks))
		for i := range assign {
			assign[i] = i
		}
	}
	rec := newRecorder(s)
	rec.trace = rc.trace
	cfg := kernelConfig(s, rec)
	cfg.FastForward = rc.fastForward
	if rc.shards > 1 {
		cfg.Shards = rc.shards
		cfg.ShardGrain = 1
	}
	k := kernel.New(cfg)
	rec.k = k
	k.Eng.Observer = rec.observe

	for i, d := range s.Daemons {
		noise.DaemonSpec{
			Name:    fmt.Sprintf("daemon%d", i),
			Period:  d.Period,
			Service: d.Service,
		}.Spawn(k, k.RNG(0xda30+uint64(i)))
	}
	for i, rt := range s.RTNoise {
		noise.DaemonSpec{
			Name:     fmt.Sprintf("rtnoise%d", i),
			Policy:   task.FIFO,
			RTPrio:   rt.Prio,
			Period:   rt.Period,
			Service:  rt.Service,
			Affinity: topo.MaskOf(rt.CPU),
		}.Spawn(k, k.RNG(0xf1f0+uint64(i)))
	}

	tasks := make([]*task.Task, len(s.Ranks)) // indexed by workload
	var world *mpi.World
	if s.Barrier {
		world = mpi.NewWorld(k, mpi.Config{
			Ranks:         len(s.Ranks),
			Policy:        task.HPC,
			SpinThreshold: s.SpinThreshold,
		})
		k.Eng.After(s.LaunchAt, func() {
			world.Launch(nil, func(r *mpi.Rank) {
				runRankMPI(r, s.Ranks[assign[r.ID]].Phases)
			})
		})
	} else {
		for slot := range s.Ranks {
			slot := slot
			wl := assign[slot]
			k.Eng.After(s.Ranks[slot].Start, func() {
				tasks[wl] = k.Spawn(nil, kernel.Attr{
					Name:   fmt.Sprintf("rank%d", slot),
					Policy: task.HPC,
				}, func(p *kernel.Proc) {
					runRank(p, s.Ranks[wl].Phases)
				})
			})
		}
	}

	k.Run(sim.Time(0).Add(s.Horizon))
	end := k.Now()

	if world != nil {
		for slot, r := range world.Ranks {
			if r.P != nil {
				tasks[assign[slot]] = r.P.T
			}
		}
	}
	rep := report{
		eventHash:   rec.hash,
		obs:         make([]rankObs, len(s.Ranks)),
		domViol:     rec.domViol,
		migViol:     rec.migViol,
		latViol:     rec.latViol,
		perf:        k.Perf,
		shardPhases: k.ShardPhases(),
	}
	for wl, t := range tasks {
		if t == nil {
			continue // never spawned within the horizon
		}
		o := rankObs{Busy: t.SumExec, Migrations: t.Counters.Migrations}
		if t.State == task.Dead {
			o.Completed = true
			o.Runtime = t.Exited.Sub(t.Spawned)
		} else {
			o.Runtime = end.Sub(t.Spawned)
		}
		rep.obs[wl] = o
	}
	return rep
}

// runRank drives an independent rank through its phases: compute, optional
// sleep, repeat, exit.
func runRank(p *kernel.Proc, phases []Phase) {
	var step func(pi, it int)
	step = func(pi, it int) {
		if pi == len(phases) {
			p.Exit()
			return
		}
		ph := phases[pi]
		npi, nit := pi, it+1
		if nit >= ph.Iters {
			npi, nit = pi+1, 0
		}
		p.Compute(ph.Compute, func() {
			if ph.Sleep > 0 {
				p.Sleep(ph.Sleep, func() { step(npi, nit) })
			} else {
				step(npi, nit)
			}
		})
	}
	step(0, 0)
}

// runRankMPI drives a barrier-coupled rank: compute, optional sleep,
// barrier, repeat, finish. Validation guarantees equal iteration counts
// across ranks, so every barrier releases.
func runRankMPI(r *mpi.Rank, phases []Phase) {
	var step func(pi, it int)
	step = func(pi, it int) {
		if pi == len(phases) {
			r.Finish()
			return
		}
		ph := phases[pi]
		npi, nit := pi, it+1
		if nit >= ph.Iters {
			npi, nit = pi+1, 0
		}
		r.Compute(ph.Compute, func() {
			arrive := func() { r.Barrier(func() { step(npi, nit) }) }
			if ph.Sleep > 0 {
				r.P.Sleep(ph.Sleep, arrive)
			} else {
				arrive()
			}
		})
	}
	step(0, 0)
}
