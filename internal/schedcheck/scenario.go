// Package schedcheck is a property-based testing harness for the simulated
// scheduler. It generates randomized-but-seeded scenarios (HPC rank mixes,
// NAS-like phase patterns, daemon noise schedules, topologies from 1x1x1 up
// to wide 4x16x2 multi-word nodes) and checks metamorphic and invariant
// oracles over full simulation traces:
//
//   - determinism: the same scenario replayed twice yields an identical
//     event stream and identical observables;
//   - class-priority dominance: no CFS task is switched in while an HPC
//     task is runnable on the same CPU;
//   - fork-time-only migration: under the HPL policy an HPC task moves
//     CPUs at most once, at fork placement, and never afterwards;
//   - noise insulation: adding CFS daemons must not change any HPC rank's
//     completion time, busy time, or migration count;
//   - permutation invariance: reassigning the rank workloads across fork
//     slots yields an isomorphic schedule (per-workload observables are
//     unchanged);
//   - time-rescaling consistency: scaling every scenario duration by 2
//     scales every HPC observable by exactly 2.
//
// The metamorphic oracles are exact, not tolerance-based: they hold on the
// "ideal physics" machine (no switch or tick cost, no SMT slowdown, no
// cache sensitivity) under the HPL balance policy with at most one rank per
// CPU, and each oracle carries an applicability predicate encoding exactly
// those conditions. Failing scenarios auto-shrink to a minimal repro and
// serialize to a replay file runnable by cmd/schedcheck.
package schedcheck

import (
	"encoding/json"
	"fmt"

	"hplsim/internal/sim"
	"hplsim/internal/topo"
)

// Physics selects the machine model of a scenario.
const (
	// PhysicsIdeal is the frictionless machine: zero switch and tick
	// cost, no SMT slowdown, cache-insensitive ranks. The metamorphic
	// oracles hold exactly on it.
	PhysicsIdeal = "ideal"
	// PhysicsRealistic keeps the kernel's default costs; only the
	// invariant oracles (determinism, dominance, migration) apply.
	PhysicsRealistic = "realistic"
)

// Scheme selects the balance policy of a scenario.
const (
	// SchemeHPL is the paper's policy: fork-time placement only.
	SchemeHPL = "hpl"
	// SchemeStandard is vanilla dynamic balancing.
	SchemeStandard = "standard"
)

// TopoSpec is a serializable topology: chips x cores x threads. The harness
// explores 1x1x1 up to 4x16x2 (128 CPUs — wide enough that CPU masks span
// multiple words), with the paper's 2x2x2 POWER6 shape in the common range.
type TopoSpec struct {
	Chips   int
	Cores   int
	Threads int
}

// Topology converts the spec to the simulator's topology type.
func (t TopoSpec) Topology() topo.Topology {
	return topo.Topology{Chips: t.Chips, CoresPerChip: t.Cores, ThreadsPerCore: t.Threads}
}

// NumCPUs reports the logical CPU count.
func (t TopoSpec) NumCPUs() int { return t.Chips * t.Cores * t.Threads }

// Phase is one compute/sleep cycle of a rank program, repeated Iters times.
// In barrier mode the sleep is replaced by a barrier arrival.
type Phase struct {
	Compute sim.Duration
	Sleep   sim.Duration `json:",omitempty"`
	Iters   int
}

// RankSpec describes one HPC rank slot. Start is the spawn offset in
// independent mode; in barrier mode all ranks launch together at LaunchAt.
type RankSpec struct {
	Start  sim.Duration `json:",omitempty"`
	Phases []Phase
}

// serial is the rank's total compute+sleep demand.
func (r RankSpec) serial() sim.Duration {
	var total sim.Duration
	for _, p := range r.Phases {
		total += sim.Duration(p.Iters) * (p.Compute + p.Sleep)
	}
	return total
}

// iters is the rank's total phase-iteration count (= barrier arrivals in
// barrier mode).
func (r RankSpec) iters() int {
	n := 0
	for _, p := range r.Phases {
		n += p.Iters
	}
	return n
}

// NoiseSpec describes one periodic CFS daemon.
type NoiseSpec struct {
	Period  sim.Duration
	Service sim.Duration
}

// RTSpec describes one periodic SCHED_FIFO noise task pinned to a single
// CPU. Pinning keeps real-time placement independent of what the other
// classes are doing, so the metamorphic comparisons stay exact.
type RTSpec struct {
	CPU     int
	Prio    int
	Period  sim.Duration
	Service sim.Duration
}

// ChaosSpec mirrors sched.Chaos in the scenario schema.
type ChaosSpec struct {
	HPCMigration bool `json:",omitempty"`
	HPCNoRotate  bool `json:",omitempty"`
	// ShardSkew mis-sets the parallel catch-up horizon. It only bites in
	// sharded runs: normal builds diverge from sequential (the shard oracle
	// catches it), -tags invariants builds panic in the window audit.
	ShardSkew bool `json:",omitempty"`
}

// Scenario is one self-contained, seeded simulation setup. It serializes to
// JSON (durations as integer nanoseconds) for repro files.
type Scenario struct {
	Seed    uint64
	Topo    TopoSpec
	Physics string
	Scheme  string
	HZ      int

	// Barrier couples the ranks through an MPI world with spin-then-block
	// barriers after every phase iteration; otherwise ranks run
	// independently, spawned at their Start offsets.
	Barrier bool `json:",omitempty"`
	// SpinThreshold is the barrier busy-wait window (barrier mode only;
	// always explicit and positive so it participates in rescaling).
	SpinThreshold sim.Duration `json:",omitempty"`
	// LaunchAt is when the MPI world launches (barrier mode only).
	LaunchAt sim.Duration `json:",omitempty"`

	Ranks   []RankSpec
	Daemons []NoiseSpec `json:",omitempty"`
	RTNoise []RTSpec    `json:",omitempty"`

	// Horizon bounds the simulation; it is sized so every rank finishes.
	Horizon sim.Duration

	Chaos ChaosSpec `json:",omitempty"`
}

// Validate reports the first structural problem with the scenario.
func (s Scenario) Validate() error {
	if err := s.Topo.Topology().Validate(); err != nil {
		return err
	}
	if s.Topo.Chips > 4 || s.Topo.Cores > 16 || s.Topo.Threads > 2 {
		return fmt.Errorf("schedcheck: topology %v exceeds the 4x16x2 envelope", s.Topo)
	}
	if s.Physics != PhysicsIdeal && s.Physics != PhysicsRealistic {
		return fmt.Errorf("schedcheck: unknown physics %q", s.Physics)
	}
	if s.Scheme != SchemeHPL && s.Scheme != SchemeStandard {
		return fmt.Errorf("schedcheck: unknown scheme %q", s.Scheme)
	}
	if s.HZ <= 0 {
		return fmt.Errorf("schedcheck: HZ must be positive, got %d", s.HZ)
	}
	if len(s.Ranks) == 0 {
		return fmt.Errorf("schedcheck: scenario has no ranks")
	}
	for i, r := range s.Ranks {
		if len(r.Phases) == 0 {
			return fmt.Errorf("schedcheck: rank %d has no phases", i)
		}
		for j, p := range r.Phases {
			if p.Compute <= 0 || p.Iters <= 0 || p.Sleep < 0 {
				return fmt.Errorf("schedcheck: rank %d phase %d is degenerate: %+v", i, j, p)
			}
		}
		if r.Start < 0 {
			return fmt.Errorf("schedcheck: rank %d has negative start", i)
		}
	}
	if s.Barrier {
		if s.SpinThreshold <= 0 {
			return fmt.Errorf("schedcheck: barrier mode needs a positive spin threshold")
		}
		// Barrier release needs every rank to arrive: unequal iteration
		// counts would deadlock the world.
		want := s.Ranks[0].iters()
		for i, r := range s.Ranks {
			if r.iters() != want {
				return fmt.Errorf("schedcheck: barrier mode rank %d has %d iterations, rank 0 has %d", i, r.iters(), want)
			}
		}
	}
	for i, d := range s.Daemons {
		if d.Period <= 0 || d.Service <= 0 {
			return fmt.Errorf("schedcheck: daemon %d is degenerate: %+v", i, d)
		}
	}
	for i, r := range s.RTNoise {
		if r.CPU < 0 || r.CPU >= s.Topo.NumCPUs() {
			return fmt.Errorf("schedcheck: rt noise %d pinned to CPU %d of %d", i, r.CPU, s.Topo.NumCPUs())
		}
		if r.Period <= 0 || r.Service <= 0 || r.Prio < 1 || r.Prio > 99 {
			return fmt.Errorf("schedcheck: rt noise %d is degenerate: %+v", i, r)
		}
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("schedcheck: horizon must be positive")
	}
	return nil
}

// TaskCount is the number of workload tasks the scenario creates (ranks
// plus noise tasks; per-CPU idle tasks excluded). The shrinker minimizes it.
func (s Scenario) TaskCount() int {
	return len(s.Ranks) + len(s.Daemons) + len(s.RTNoise)
}

// clone deep-copies the scenario so transforms never alias slices.
func (s Scenario) clone() Scenario {
	c := s
	c.Ranks = make([]RankSpec, len(s.Ranks))
	for i, r := range s.Ranks {
		c.Ranks[i] = r
		c.Ranks[i].Phases = append([]Phase(nil), r.Phases...)
	}
	c.Daemons = append([]NoiseSpec(nil), s.Daemons...)
	c.RTNoise = append([]RTSpec(nil), s.RTNoise...)
	return c
}

// withoutCFSNoise is the noise-insulation counterpart: the same scenario
// with every CFS daemon removed.
func (s Scenario) withoutCFSNoise() Scenario {
	c := s.clone()
	c.Daemons = nil
	return c
}

// rescaled multiplies every duration in the scenario by factor. The factor
// must be a power of two so that float64 work arithmetic scales exactly.
func (s Scenario) rescaled(factor int64) Scenario {
	c := s.clone()
	f := sim.Duration(factor)
	for i := range c.Ranks {
		c.Ranks[i].Start *= f
		for j := range c.Ranks[i].Phases {
			c.Ranks[i].Phases[j].Compute *= f
			c.Ranks[i].Phases[j].Sleep *= f
		}
	}
	for i := range c.Daemons {
		c.Daemons[i].Period *= f
		c.Daemons[i].Service *= f
	}
	for i := range c.RTNoise {
		c.RTNoise[i].Period *= f
		c.RTNoise[i].Service *= f
	}
	c.SpinThreshold *= f
	c.LaunchAt *= f
	c.Horizon *= f
	return c
}

// rotation is the workload permutation used by the permutation oracle:
// workload (slot+1) mod n runs in fork slot `slot`. Any nontrivial
// permutation works; a rotation touches every slot.
func rotation(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = (i + 1) % n
	}
	return p
}

// MarshalIndent renders the scenario as indented JSON.
func (s Scenario) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
