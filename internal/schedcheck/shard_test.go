package schedcheck

import (
	"sync"
	"sync/atomic"
	"testing"

	"hplsim/internal/pool"
	"hplsim/internal/sim"
)

// TestShardedScenarioCorpus runs the sharding equivalence oracle over the
// same generated corpus the main oracle battery covers: every scenario,
// sequential vs four shards, both tick modes, full schedstat traces. The
// aggregated fan-out count must be positive, or the whole corpus silently
// degenerated to sequential execution and the equivalence was vacuous.
func TestShardedScenarioCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is not short")
	}
	var mu sync.Mutex
	var phases atomic.Uint64
	type bad struct {
		seed uint64
		fail *Failure
	}
	var fails []bad
	pool.ForN(corpusSize, 0, func(i int) {
		seed := uint64(i) + 1
		f, p := CheckShards(Generate(seed), 4)
		phases.Add(p)
		if f != nil {
			mu.Lock()
			fails = append(fails, bad{seed, f})
			mu.Unlock()
		}
	})
	for _, b := range fails {
		t.Errorf("seed %d: %v", b.seed, b.fail)
	}
	if phases.Load() == 0 {
		t.Fatal("no scenario in the corpus ever fanned out; the sharding oracle is vacuous")
	}
	t.Logf("corpus of %d scenarios: %d parallel fan-outs", corpusSize, phases.Load())
}

// skewScenario is a wide compute-heavy setup whose fast-forward catch-ups
// have pending ticks on both chips, with the horizon-skew fault switched on.
func skewScenario() Scenario {
	s := Scenario{
		Seed:    17,
		Topo:    TopoSpec{Chips: 2, Cores: 2, Threads: 2},
		Physics: PhysicsRealistic,
		Scheme:  SchemeHPL,
		HZ:      1000,
		Chaos:   ChaosSpec{ShardSkew: true},
	}
	for i := 0; i < 8; i++ {
		s.Ranks = append(s.Ranks, RankSpec{
			Phases: []Phase{{Compute: 20 * sim.Millisecond, Iters: 3}},
		})
	}
	s.Horizon = horizonFor(s)
	return s
}

// TestCheckShardsSkipsDegenerate: single-chip topologies and shard counts
// of one have nothing to compare, and must report a clean skip, not a
// spurious pass with hidden work.
func TestCheckShardsSkipsDegenerate(t *testing.T) {
	s := skewScenario() // even the fault must be unreachable when skipped
	s.Topo = TopoSpec{Chips: 1, Cores: 4, Threads: 2}
	if f, p := CheckShards(s, 4); f != nil || p != 0 {
		t.Fatalf("single-chip topology: got %v with %d phases, want clean skip", f, p)
	}
	if f, p := CheckShards(skewScenario(), 1); f != nil || p != 0 {
		t.Fatalf("shards=1: got %v with %d phases, want clean skip", f, p)
	}
}
