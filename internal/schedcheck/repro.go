package schedcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ReproVersion is bumped when the scenario schema changes incompatibly.
const ReproVersion = 1

// Repro is a committed replay file: a scenario plus the outcome it must
// reproduce. Expect "pass" pins a scenario that once failed and was fixed
// (a regression test); Expect "fail" pins a deliberately broken
// configuration (chaos) that the oracles must keep catching.
type Repro struct {
	Version int
	Note    string `json:",omitempty"`
	// Expect is "pass" or "fail".
	Expect string
	// Oracle, when set with Expect "fail", is the oracle that must fire.
	Oracle   string `json:",omitempty"`
	Scenario Scenario
}

// WriteRepro serializes the repro as indented JSON.
func WriteRepro(path string, r Repro) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRepro loads a repro file.
func ReadRepro(path string) (Repro, error) {
	var r Repro
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	if r.Version != ReproVersion {
		return r, fmt.Errorf("%s: repro version %d, this harness speaks %d", path, r.Version, ReproVersion)
	}
	if r.Expect != "pass" && r.Expect != "fail" {
		return r, fmt.Errorf("%s: expect must be \"pass\" or \"fail\", got %q", path, r.Expect)
	}
	return r, nil
}

// Replay checks the repro's scenario twice and verifies both that the
// verdict is deterministic and that it matches the recorded expectation.
// With shards > 1 it additionally runs the sharding equivalence oracle, so
// every committed repro — pass and fail alike — doubles as a bitwise
// sequential-vs-sharded comparison (ShardSkew repros are exempt: that fault
// exists to break the sharded run).
func Replay(r Repro, shards int) error {
	first := Check(r.Scenario)
	second := Check(r.Scenario)
	if (first == nil) != (second == nil) ||
		(first != nil && first.Oracle != second.Oracle) {
		return fmt.Errorf("verdict is not deterministic: %v vs %v", first, second)
	}
	switch r.Expect {
	case "fail":
		if first == nil {
			return fmt.Errorf("expected oracle %q to fire, but all oracles passed", r.Oracle)
		}
		if r.Oracle != "" && first.Oracle != r.Oracle {
			return fmt.Errorf("expected oracle %q, got %v", r.Oracle, first)
		}
	default: // "pass"
		if first != nil {
			return fmt.Errorf("expected all oracles to pass, got %v", first)
		}
	}
	if shards > 1 && !r.Scenario.Chaos.ShardSkew {
		if f, _ := CheckShards(r.Scenario, shards); f != nil {
			return fmt.Errorf("sharded replay (shards=%d): %v", shards, f)
		}
	}
	return nil
}

// ReplayFile replays one repro file.
func ReplayFile(path string, shards int) error {
	r, err := ReadRepro(path)
	if err != nil {
		return err
	}
	if err := Replay(r, shards); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	return nil
}

// ReplayDir replays every *.json repro under dir, in name order, and
// returns the first error.
func ReplayDir(dir string, shards int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("%s: no repro files", dir)
	}
	for _, name := range names {
		if err := ReplayFile(filepath.Join(dir, name), shards); err != nil {
			return err
		}
	}
	return nil
}
