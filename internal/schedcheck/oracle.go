package schedcheck

import (
	"fmt"
	"strings"

	"hplsim/internal/sim"
)

// Oracle names, as reported in failures and repro files.
const (
	OracleInvalid     = "invalid"
	OracleDominance   = "dominance"
	OracleMigration   = "hpc-migration"
	OracleLatency     = "hpc-wait-latency"
	OracleDeterminism = "determinism"
	OracleFastForward = "fast-forward"
	OracleNoise       = "noise-insulation"
	OraclePermutation = "permutation"
	OracleRescale     = "rescale"
	OracleShard       = "shard"
)

// Failure describes one oracle violation on a scenario.
type Failure struct {
	Oracle string
	Detail string
}

func (f *Failure) Error() string { return fmt.Sprintf("[%s] %s", f.Oracle, f.Detail) }

// rescaleFactor is the time-rescaling multiplier. It must be a power of two
// so that the kernel's float64 work arithmetic scales without rounding.
const rescaleFactor = 2

// idealHPL reports whether the scenario runs on the exactness-preserving
// configuration: frictionless machine and fork-time-only balancing.
func (s Scenario) idealHPL() bool {
	return s.Physics == PhysicsIdeal && s.Scheme == SchemeHPL
}

// noiseApplicable: adding CFS daemons is exactly invisible to HPC ranks
// when the machine is ideal, balancing is HPL, and no CPU ever queues two
// ranks (oversubscription makes round-robin rotation phase depend on tick
// alignment, which daemons shift).
func (s Scenario) noiseApplicable() bool {
	return s.idealHPL() && len(s.Ranks) <= s.Topo.NumCPUs() && len(s.Daemons) > 0
}

// permApplicable: reassigning workloads across fork slots preserves
// per-workload observables when placement is symmetric (ideal HPL, one rank
// per CPU) and no RT noise singles out specific CPUs. Staggered starts
// combined with sleep phases are excluded: fork placement cannot see a
// sleeping rank, so a later fork may legitimately share its CPU, and which
// pair collides depends on the workload-to-slot assignment. In barrier mode
// every rank is placed at launch, before anyone sleeps, so sleeps are safe.
func (s Scenario) permApplicable() bool {
	if !s.idealHPL() || len(s.Ranks) < 2 ||
		len(s.Ranks) > s.Topo.NumCPUs() || len(s.RTNoise) > 0 {
		return false
	}
	if s.Barrier {
		return true
	}
	for _, r := range s.Ranks {
		for _, p := range r.Phases {
			if p.Sleep > 0 {
				return false
			}
		}
	}
	return true
}

// rescaleApplicable: doubling every duration doubles every HPC observable
// on the ideal machine. RT noise is excluded because its activation stagger
// draws from a modulo-based uniform sampler that does not scale linearly.
func (s Scenario) rescaleApplicable() bool {
	return s.idealHPL() && len(s.Ranks) <= s.Topo.NumCPUs() && len(s.RTNoise) == 0
}

// Check runs every applicable oracle against the scenario and returns the
// first failure, or nil if all oracles are green. The invariant oracles
// (dominance, fork-time-only migration, determinism) always run; the
// metamorphic oracles run when their applicability predicate holds.
func Check(s Scenario) *Failure {
	if err := s.Validate(); err != nil {
		return &Failure{Oracle: OracleInvalid, Detail: err.Error()}
	}

	base := runOnce(s, nil)
	if f := violationFailure(base); f != nil {
		return f
	}

	again := runOnce(s, nil)
	if base.eventHash != again.eventHash {
		return &Failure{Oracle: OracleDeterminism, Detail: fmt.Sprintf(
			"event-stream fingerprint differs between identical runs: %016x vs %016x",
			base.eventHash, again.eventHash)}
	}
	if d := diffObs(base.obs, again.obs, true, 1); d != "" {
		return &Failure{Oracle: OracleDeterminism, Detail: "observables differ between identical runs: " + d}
	}

	// Fast-forward equivalence: eliding quiescent ticks must be invisible
	// to every observable — the dispatch fingerprint (lane firings are
	// outside it in both modes), per-workload observables, and the full
	// perf counter set except the diagnostic coalescing count. This oracle
	// applies unconditionally: the equivalence claim has no applicability
	// predicate to hide behind.
	ff := runMode(s, nil, true)
	if base.eventHash != ff.eventHash {
		return &Failure{Oracle: OracleFastForward, Detail: fmt.Sprintf(
			"dispatch fingerprint differs between tick modes: std %016x vs ff %016x",
			base.eventHash, ff.eventHash)}
	}
	if d := diffObs(base.obs, ff.obs, true, 1); d != "" {
		return &Failure{Oracle: OracleFastForward, Detail: "fast-forward changed observables: " + d}
	}
	pa, pb := base.perf, ff.perf
	pa.TicksCoalesced, pb.TicksCoalesced = 0, 0
	if pa != pb {
		return &Failure{Oracle: OracleFastForward, Detail: fmt.Sprintf(
			"fast-forward changed perf counters: std %+v vs ff %+v", pa, pb)}
	}

	if s.noiseApplicable() {
		quiet := runOnce(s.withoutCFSNoise(), nil)
		if f := violationFailure(quiet); f != nil {
			return f
		}
		if d := diffObs(quiet.obs, base.obs, true, 1); d != "" {
			return &Failure{Oracle: OracleNoise, Detail: fmt.Sprintf(
				"removing %d CFS daemon(s) changed HPC observables: %s", len(s.Daemons), d)}
		}
	}

	if s.permApplicable() {
		perm := runOnce(s, rotation(len(s.Ranks)))
		if f := violationFailure(perm); f != nil {
			return f
		}
		// Migration counts are excluded: fork slot 0 inherits CPU 0 and
		// never counts a placement migration, whichever workload runs it.
		if d := diffObs(base.obs, perm.obs, false, 1); d != "" {
			return &Failure{Oracle: OraclePermutation, Detail: "rotating workloads across fork slots changed per-workload observables: " + d}
		}
	}

	if s.rescaleApplicable() {
		scaled := runOnce(s.rescaled(rescaleFactor), nil)
		if f := violationFailure(scaled); f != nil {
			return f
		}
		if d := diffObs(base.obs, scaled.obs, true, rescaleFactor); d != "" {
			return &Failure{Oracle: OracleRescale, Detail: fmt.Sprintf(
				"scaling all durations by %d did not scale HPC observables by %d: %s",
				rescaleFactor, rescaleFactor, d)}
		}
	}

	return nil
}

// violationFailure converts trace-probe violations of a run into a Failure.
func violationFailure(r report) *Failure {
	if len(r.domViol) > 0 {
		return &Failure{Oracle: OracleDominance, Detail: summarize(r.domViol)}
	}
	if len(r.migViol) > 0 {
		return &Failure{Oracle: OracleMigration, Detail: summarize(r.migViol)}
	}
	if len(r.latViol) > 0 {
		return &Failure{Oracle: OracleLatency, Detail: summarize(r.latViol)}
	}
	return nil
}

func summarize(viol []string) string {
	const maxShown = 3
	shown := viol
	if len(shown) > maxShown {
		shown = shown[:maxShown]
	}
	out := strings.Join(shown, "; ")
	if len(viol) > maxShown {
		out += fmt.Sprintf("; ... (%d total)", len(viol))
	}
	return out
}

// diffObs compares two observable sets per workload; b is expected to equal
// a with every duration multiplied by scale. It returns "" on a match, or a
// description of the first mismatch. Migration counts are compared only
// when withMigrations is set.
func diffObs(a, b []rankObs, withMigrations bool, scale int64) string {
	if len(a) != len(b) {
		return fmt.Sprintf("workload count %d vs %d", len(a), len(b))
	}
	for w := range a {
		x, y := a[w], b[w]
		if x.Completed != y.Completed {
			return fmt.Sprintf("workload %d: completed %v vs %v", w, x.Completed, y.Completed)
		}
		if x.Runtime*sim.Duration(scale) != y.Runtime {
			return fmt.Sprintf("workload %d: runtime %v*%d vs %v", w, x.Runtime, scale, y.Runtime)
		}
		if x.Busy*sim.Duration(scale) != y.Busy {
			return fmt.Sprintf("workload %d: busy %v*%d vs %v", w, x.Busy, scale, y.Busy)
		}
		if withMigrations && x.Migrations != y.Migrations {
			return fmt.Sprintf("workload %d: migrations %d vs %d", w, x.Migrations, y.Migrations)
		}
	}
	return ""
}
