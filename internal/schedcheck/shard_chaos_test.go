//go:build !invariants

package schedcheck

import "testing"

// TestChaosShardSkewCaught: with the window audit compiled out (a normal
// build), a mis-set horizon makes the gang replay ticks past the committed
// window and the sharded run genuinely diverges — the sharding equivalence
// oracle must catch it. The -tags invariants twin of this test lives in
// shard_invariants_test.go, where the same fault panics in the audit before
// any divergence can happen.
func TestChaosShardSkewCaught(t *testing.T) {
	f, _ := CheckShards(skewScenario(), 2)
	if f == nil {
		t.Fatal("shard-skew chaos passed the sharding oracle; the fault injection is dead")
	}
	if f.Oracle != OracleShard {
		t.Fatalf("shard-skew chaos caught by %v, want %s", f, OracleShard)
	}
	t.Logf("chaos caught: %v", f)
}

// TestChaosShardSkewOffIsClean pins that the skew scenario only fails
// because of the injected fault.
func TestChaosShardSkewOffIsClean(t *testing.T) {
	s := skewScenario()
	s.Chaos = ChaosSpec{}
	f, phases := CheckShards(s, 2)
	if f != nil {
		t.Fatalf("fault-free twin of the skew scenario fails: %v", f)
	}
	if phases == 0 {
		t.Fatal("fault-free twin never fanned out; the skew test proves nothing")
	}
}
