//go:build invariants

package rbtree

import (
	"testing"

	"hplsim/internal/invariant"
)

// expectViolation runs fn and fails unless it panics with an
// invariant.Violation whose message contains the tree's rule prefix.
func expectViolation(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted tree passed checkInvariants")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("expected invariant.Violation, got %v", r)
		}
	}()
	fn()
}

func build(n int) *Tree[int] {
	tr := &Tree[int]{}
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i*7%n), i)
	}
	return tr
}

func TestCorruptRootColor(t *testing.T) {
	tr := build(16)
	tr.root.color = red
	expectViolation(t, func() { tr.checkInvariants() })
}

func TestCorruptRedRed(t *testing.T) {
	tr := build(64)
	// Force a red-red edge: find a black non-root node with a parent and
	// recolor it red together with its parent.
	n := tr.leftmost
	for n != nil && (n.parent == nil || n.parent.parent == nil) {
		n = n.Next()
	}
	if n == nil {
		t.Fatal("no suitable node")
	}
	n.color = red
	n.parent.color = red
	expectViolation(t, func() { tr.checkInvariants() })
}

func TestCorruptLeftmostCache(t *testing.T) {
	tr := build(16)
	tr.leftmost = tr.leftmost.Next()
	expectViolation(t, func() { tr.checkInvariants() })
}

func TestCorruptSize(t *testing.T) {
	tr := build(16)
	tr.size++
	expectViolation(t, func() { tr.checkInvariants() })
}

func TestCorruptOrder(t *testing.T) {
	tr := build(16)
	tr.leftmost.key = 1 << 60 // minimum now claims a huge key
	expectViolation(t, func() { tr.checkInvariants() })
}

func TestMutationsRunChecks(t *testing.T) {
	// Insert and Remove must invoke the checker when the tag is on: corrupt
	// the tree, then trigger the check through the public mutation API.
	tr := build(16)
	tr.size += 3
	expectViolation(t, func() { tr.Insert(99, 99) })
}
