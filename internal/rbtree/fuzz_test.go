package rbtree

import (
	"sort"
	"testing"
)

// FuzzInsertDelete drives an arbitrary interleaving of inserts and removes
// decoded from the fuzz input and cross-checks the tree against a reference
// model: a sorted slice ordered by (key, insertion sequence). After every
// operation the model and the tree must agree on size, minimum, and full
// in-order traversal. Under `-tags invariants` every mutation additionally
// runs the structural red-black checker, so the fuzzer searches for
// operation sequences that corrupt the tree itself, not just its contents.
func FuzzInsertDelete(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x80, 0x04, 0x81})
	f.Add([]byte{0x10, 0x10, 0x10, 0x80, 0x80, 0x80})
	f.Add([]byte{0x00, 0xff, 0x7f, 0x81, 0x01, 0x80, 0x82})
	f.Fuzz(func(t *testing.T, data []byte) {
		type ref struct {
			key  uint64
			seq  int
			node *Node[int]
		}
		tr := &Tree[int]{}
		var model []ref
		seq := 0

		check := func() {
			t.Helper()
			tr.checkInvariants()
			if tr.Len() != len(model) {
				t.Fatalf("tree len %d, model len %d", tr.Len(), len(model))
			}
			if len(model) == 0 {
				if tr.Min() != nil {
					t.Fatal("non-nil Min on empty tree")
				}
				return
			}
			if tr.Min() != model[0].node {
				t.Fatalf("Min is key %d, model minimum is key %d",
					tr.Min().Key(), model[0].key)
			}
			i := 0
			tr.Walk(func(n *Node[int]) {
				if i >= len(model) {
					t.Fatalf("walk visited more than %d nodes", len(model))
				}
				if n != model[i].node {
					t.Fatalf("walk position %d: key %d, model expects key %d",
						i, n.Key(), model[i].key)
				}
				i++
			})
			if i != len(model) {
				t.Fatalf("walk visited %d nodes, model holds %d", i, len(model))
			}
		}

		for _, b := range data {
			if b < 0x80 {
				// Insert with a small key space so ties exercise the
				// FIFO sequence ordering.
				key := uint64(b % 32)
				n := tr.Insert(key, seq)
				model = append(model, ref{key: key, seq: seq, node: n})
				sort.SliceStable(model, func(i, j int) bool {
					return model[i].key < model[j].key
				})
				seq++
			} else if len(model) > 0 {
				// Remove the element selected by the low bits.
				i := int(b-0x80) % len(model)
				tr.Remove(model[i].node)
				model = append(model[:i], model[i+1:]...)
			}
			check()
		}
	})
}
