//go:build !invariants

package rbtree

// checkInvariants is a no-op in normal builds; see invariants_on.go.
func (t *Tree[V]) checkInvariants() {}
