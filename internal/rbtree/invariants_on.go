//go:build invariants

package rbtree

import "hplsim/internal/invariant"

// checkInvariants verifies the full red-black contract after a mutation:
// BST order under (key, seq), no red node with a red child, equal black
// height on every root-to-nil path, consistent parent links, a correctly
// cached leftmost node, and an accurate size. It is compiled in only under
// the invariants build tag; Insert and Remove call it on every mutation, so
// a corrupting rebalance panics at the operation that introduced it rather
// than surfacing as a wrong scheduling decision much later.
func (t *Tree[V]) checkInvariants() {
	if t.root == nil {
		invariant.Check(t.leftmost == nil, "rbtree: empty tree caches a leftmost node")
		invariant.Check(t.size == 0, "rbtree: empty tree has size %d", t.size)
		return
	}
	invariant.Check(t.root.parent == nil, "rbtree: root has a parent")
	invariant.Check(t.root.color == black, "rbtree: root is red")

	count := 0
	blackHeight := -1
	var prev *Node[V]
	var walk func(n *Node[V], blacks int)
	walk = func(n *Node[V], blacks int) {
		if n == nil {
			if blackHeight < 0 {
				blackHeight = blacks
			}
			invariant.Check(blacks == blackHeight,
				"rbtree: black height %d on one path, %d on another", blacks, blackHeight)
			return
		}
		if n.color == black {
			blacks++
		} else {
			invariant.Check(n.parent != nil && n.parent.color == black,
				"rbtree: red-red edge at key %d", n.key)
		}
		invariant.Check(n.left == nil || n.left.parent == n,
			"rbtree: broken parent link below key %d (left)", n.key)
		invariant.Check(n.right == nil || n.right.parent == n,
			"rbtree: broken parent link below key %d (right)", n.key)

		walk(n.left, blacks)
		if prev == nil {
			invariant.Check(n == t.leftmost,
				"rbtree: cached leftmost has key %d but minimum is %d", t.leftmost.key, n.key)
		} else {
			invariant.Check(t.less(prev, n),
				"rbtree: order violation: (%d,%d) precedes (%d,%d)", prev.key, prev.seq, n.key, n.seq)
		}
		prev = n
		count++
		walk(n.right, blacks)
	}
	walk(t.root, 0)
	invariant.Check(count == t.size, "rbtree: size is %d but tree holds %d nodes", t.size, count)
}
