package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// validate checks the red-black invariants and returns the black height.
// It fails the test on any violation.
func validate(t *testing.T, tr *Tree[int]) {
	t.Helper()
	if tr.root == nil {
		if tr.leftmost != nil {
			t.Fatal("empty tree has non-nil leftmost")
		}
		return
	}
	if tr.root.color != black {
		t.Fatal("root is not black")
	}
	var check func(n *Node[int], min, max *uint64) int
	check = func(n *Node[int], min, max *uint64) int {
		if n == nil {
			return 1
		}
		if min != nil && n.key < *min {
			t.Fatal("BST order violated (left)")
		}
		if max != nil && n.key > *max {
			t.Fatal("BST order violated (right)")
		}
		if n.color == red {
			if (n.left != nil && n.left.color == red) ||
				(n.right != nil && n.right.color == red) {
				t.Fatal("red node has red child")
			}
		}
		if n.left != nil && n.left.parent != n {
			t.Fatal("left child parent pointer broken")
		}
		if n.right != nil && n.right.parent != n {
			t.Fatal("right child parent pointer broken")
		}
		lh := check(n.left, min, &n.key)
		rh := check(n.right, &n.key, max)
		if lh != rh {
			t.Fatalf("black height mismatch: %d vs %d", lh, rh)
		}
		if n.color == black {
			return lh + 1
		}
		return lh
	}
	check(tr.root, nil, nil)

	// leftmost cache agrees with a full walk.
	m := tr.root
	for m.left != nil {
		m = m.left
	}
	if tr.leftmost != m {
		t.Fatal("cached leftmost is stale")
	}
}

func TestInsertRemoveSmall(t *testing.T) {
	var tr Tree[int]
	nodes := make([]*Node[int], 0)
	for i, k := range []uint64{5, 2, 8, 1, 9, 3, 7, 4, 6, 0} {
		nodes = append(nodes, tr.Insert(k, i))
		validate(t, &tr)
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Min().Key() != 0 {
		t.Fatalf("Min key = %d", tr.Min().Key())
	}
	for _, n := range nodes {
		tr.Remove(n)
		validate(t, &tr)
	}
	if tr.Len() != 0 || tr.Min() != nil {
		t.Fatal("tree not empty after removing all")
	}
}

func TestMinIsSmallest(t *testing.T) {
	var tr Tree[int]
	r := rand.New(rand.NewSource(1))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(r.Intn(1000))
		tr.Insert(keys[i], i)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if tr.Min().Key() != keys[0] {
		t.Fatalf("Min = %d, want %d", tr.Min().Key(), keys[0])
	}
}

func TestFIFOAmongEqualKeys(t *testing.T) {
	// CFS relies on FIFO order among entities with equal vruntime.
	var tr Tree[int]
	for i := 0; i < 5; i++ {
		tr.Insert(42, i)
	}
	for want := 0; want < 5; want++ {
		m := tr.Min()
		if m.Value != want {
			t.Fatalf("tie-broken Min value = %d, want %d", m.Value, want)
		}
		tr.Remove(m)
	}
}

func TestWalkSorted(t *testing.T) {
	var tr Tree[int]
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		tr.Insert(uint64(r.Intn(100)), i)
	}
	var prev uint64
	first := true
	count := 0
	tr.Walk(func(n *Node[int]) {
		if !first && n.Key() < prev {
			t.Fatal("Walk not sorted")
		}
		prev, first = n.Key(), false
		count++
	})
	if count != 500 {
		t.Fatalf("Walk visited %d nodes, want 500", count)
	}
}

func TestRandomChurn(t *testing.T) {
	// Interleaved inserts and removals, validating the invariants after
	// every mutation. This is the scheduler's actual access pattern:
	// the leftmost node is removed most often.
	var tr Tree[int]
	r := rand.New(rand.NewSource(3))
	live := make([]*Node[int], 0, 1024)
	for step := 0; step < 4000; step++ {
		switch {
		case len(live) == 0 || r.Intn(3) > 0:
			live = append(live, tr.Insert(uint64(r.Intn(50)), step))
		case r.Intn(2) == 0:
			// Remove leftmost (pick-next pattern).
			m := tr.Min()
			for i, n := range live {
				if n == m {
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					break
				}
			}
			tr.Remove(m)
		default:
			// Remove a random node (dequeue on sleep pattern).
			i := r.Intn(len(live))
			tr.Remove(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%97 == 0 {
			validate(t, &tr)
		}
		if tr.Len() != len(live) {
			t.Fatalf("Len = %d, tracked %d", tr.Len(), len(live))
		}
	}
	validate(t, &tr)
}

func TestPropertySortedExtraction(t *testing.T) {
	// Property: inserting any multiset of keys and repeatedly extracting
	// Min yields the keys in sorted order.
	check := func(keys []uint16) bool {
		var tr Tree[int]
		for i, k := range keys {
			tr.Insert(uint64(k), i)
		}
		want := make([]uint64, len(keys))
		for i, k := range keys {
			want[i] = uint64(k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; i < len(want); i++ {
			m := tr.Min()
			if m == nil || m.Key() != want[i] {
				return false
			}
			tr.Remove(m)
		}
		return tr.Len() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNextTraversal(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 64; i++ {
		tr.Insert(uint64(i*2), i)
	}
	n := tr.Min()
	for i := 0; i < 64; i++ {
		if n == nil || n.Key() != uint64(i*2) {
			t.Fatalf("Next traversal broke at %d", i)
		}
		n = n.Next()
	}
	if n != nil {
		t.Fatal("Next past last is not nil")
	}
}

func BenchmarkInsertRemoveLeftmost(b *testing.B) {
	var tr Tree[int]
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 64; i++ {
		tr.Insert(uint64(r.Intn(1000)), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := tr.Min()
		k := m.Key()
		tr.Remove(m)
		tr.Insert(k+uint64(r.Intn(16)), i)
	}
}
