// Package rbtree implements a red-black tree with a cached leftmost node.
//
// This is the data structure the Linux Completely Fair Scheduler uses for
// its runqueue timeline: tasks are keyed by virtual runtime, the scheduler
// repeatedly takes the leftmost (smallest-key) node, and insertions and
// deletions must be O(log n) with a worst-case balanced height. The
// implementation here is generic so tests can exercise it with simple
// integer payloads while the CFS class stores task entities.
package rbtree

import "hplsim/internal/invariant"

type color bool

const (
	red   color = false
	black color = true
)

// Node is a tree node holding a value of type V. Nodes are allocated by
// Insert and owned by the tree until removed.
type Node[V any] struct {
	Value               V
	key                 uint64
	seq                 uint64 // insertion order, breaks key ties FIFO
	left, right, parent *Node[V]
	color               color
}

// Key reports the key the node was inserted with.
func (n *Node[V]) Key() uint64 { return n.key }

// Tree is a red-black tree ordered by (key, insertion sequence). The zero
// value is an empty tree ready for use.
type Tree[V any] struct {
	root     *Node[V]
	leftmost *Node[V]
	size     int
	seq      uint64
}

// Len reports the number of nodes in the tree.
func (t *Tree[V]) Len() int { return t.size }

// Min returns the node with the smallest key (oldest among ties), or nil if
// the tree is empty. It is O(1): the leftmost node is cached, exactly as in
// the kernel's rb_leftmost optimisation.
func (t *Tree[V]) Min() *Node[V] { return t.leftmost }

func (t *Tree[V]) less(a, b *Node[V]) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// Insert adds value under key and returns the new node.
func (t *Tree[V]) Insert(key uint64, value V) *Node[V] {
	n := &Node[V]{Value: value, key: key, seq: t.seq, color: red}
	t.seq++
	t.size++

	// Standard BST insert, tracking whether we stayed leftmost.
	var parent *Node[V]
	link := &t.root
	isLeftmost := true
	for *link != nil {
		parent = *link
		if t.less(n, parent) {
			link = &parent.left
		} else {
			link = &parent.right
			isLeftmost = false
		}
	}
	n.parent = parent
	*link = n
	if isLeftmost {
		t.leftmost = n
	}
	t.insertFixup(n)
	if invariant.Enabled {
		t.checkInvariants()
	}
	return n
}

func (t *Tree[V]) rotateLeft(x *Node[V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[V]) rotateRight(x *Node[V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[V]) insertFixup(z *Node[V]) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateRight(gp)
		} else {
			uncle := gp.left
			if uncle != nil && uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateLeft(gp)
		}
	}
	t.root.color = black
}

// Next returns the in-order successor of n, or nil.
func (n *Node[V]) Next() *Node[V] {
	if n.right != nil {
		m := n.right
		for m.left != nil {
			m = m.left
		}
		return m
	}
	p := n.parent
	for p != nil && n == p.right {
		n, p = p, p.parent
	}
	return p
}

// Remove deletes node n from the tree. Removing a node that is not in the
// tree corrupts it; callers track membership (as the scheduler does with
// its on_rq flag).
func (t *Tree[V]) Remove(n *Node[V]) {
	t.size--
	if t.leftmost == n {
		t.leftmost = n.Next()
	}

	// Classic CLRS delete with fixup. y is the node physically removed
	// or moved; x is the child that replaces it (possibly nil, with
	// xParent tracking its parent).
	var x, xParent *Node[V]
	y := n
	yColor := y.color

	switch {
	case n.left == nil:
		x = n.right
		xParent = n.parent
		t.transplant(n, n.right)
	case n.right == nil:
		x = n.left
		xParent = n.parent
		t.transplant(n, n.left)
	default:
		y = n.right
		for y.left != nil {
			y = y.left
		}
		yColor = y.color
		x = y.right
		if y.parent == n {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = n.right
			y.right.parent = y
		}
		t.transplant(n, y)
		y.left = n.left
		y.left.parent = y
		y.color = n.color
	}

	if yColor == black {
		t.deleteFixup(x, xParent)
	}
	n.left, n.right, n.parent = nil, nil, nil
	if invariant.Enabled {
		t.checkInvariants()
	}
}

func (t *Tree[V]) transplant(u, v *Node[V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree[V]) deleteFixup(x, parent *Node[V]) {
	for x != t.root && (x == nil || x.color == black) {
		if x == parent.left {
			w := parent.right
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if (w.left == nil || w.left.color == black) &&
				(w.right == nil || w.right.color == black) {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if w.right == nil || w.right.color == black {
					if w.left != nil {
						w.left.color = black
					}
					w.color = red
					t.rotateRight(w)
					w = parent.right
				}
				w.color = parent.color
				parent.color = black
				if w.right != nil {
					w.right.color = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if (w.left == nil || w.left.color == black) &&
				(w.right == nil || w.right.color == black) {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if w.left == nil || w.left.color == black {
					if w.right != nil {
						w.right.color = black
					}
					w.color = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.color = parent.color
				parent.color = black
				if w.left != nil {
					w.left.color = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.color = black
	}
}

// Walk calls fn for every node in key order.
func (t *Tree[V]) Walk(fn func(*Node[V])) {
	for n := t.leftmost; n != nil; n = n.Next() {
		fn(n)
	}
}
