package nas

import (
	"strings"
	"testing"

	"hplsim/internal/sim"
)

const goodSpec = `{
  "bench": "myapp", "class": "A", "ranks": 8,
  "iterations": 40, "target_seconds": 3.5,
  "sensitivity": 0.4, "comm_per_iter_us": 500,
  "imbalance_pct": 0.5, "jitter_pct": 0.3, "run_var_pct": 1.0
}`

func TestParseCustom(t *testing.T) {
	p, err := ParseCustom(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "myapp.A.8" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.Iterations != 40 || p.TargetSeconds != 3.5 {
		t.Fatalf("fields wrong: %+v", p)
	}
	if p.CommPerIter != 500*sim.Microsecond {
		t.Fatalf("CommPerIter = %v", p.CommPerIter)
	}
	if p.WorkPerIter() <= 0 {
		t.Fatal("work not derivable")
	}
}

func TestParseCustomRejectsBadSpecs(t *testing.T) {
	cases := []struct{ name, json string }{
		{"missing bench", `{"class":"A","ranks":8,"iterations":1,"target_seconds":1}`},
		{"bad class", `{"bench":"x","class":"AB","ranks":8,"iterations":1,"target_seconds":1}`},
		{"zero ranks", `{"bench":"x","class":"A","ranks":0,"iterations":1,"target_seconds":1}`},
		{"zero iterations", `{"bench":"x","class":"A","ranks":8,"iterations":0,"target_seconds":1}`},
		{"negative target", `{"bench":"x","class":"A","ranks":8,"iterations":1,"target_seconds":-1}`},
		{"sensitivity > 1", `{"bench":"x","class":"A","ranks":8,"iterations":1,"target_seconds":1,"sensitivity":2}`},
		{"unknown field", `{"bench":"x","class":"A","ranks":8,"iterations":1,"target_seconds":1,"bogus":1}`},
		{"not json", `nope`},
	}
	for _, c := range cases {
		if _, err := ParseCustom(strings.NewReader(c.json)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCustomProfileRuns(t *testing.T) {
	p, err := ParseCustom(strings.NewReader(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	el, _ := runProfile(t, p, 5)
	if el < p.TargetSeconds*0.97 || el > p.TargetSeconds*1.10 {
		t.Fatalf("custom profile elapsed %.3fs vs target %.2fs", el, p.TargetSeconds)
	}
}
