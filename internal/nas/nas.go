// Package nas models the MPI NAS Parallel Benchmarks (version 3.3, classes
// A and B, 8 ranks) at the level of detail that matters for scheduler
// studies: the SPMD compute/synchronise cycle, iteration counts,
// communication intensity, cache sensitivity, and intrinsic run-to-run
// variability.
//
// Calibration: per-iteration work is derived from the paper's Table II HPL
// minima — the noise-free execution times on the dual-POWER6 js22 node with
// all eight hardware threads busy (SMT factor 0.64). The *scheduler-induced*
// behaviour (standard-Linux variance, migrations, context switches) is not
// calibrated; it emerges from the kernel, noise, and MPI models.
//
// RunVarPct models application-intrinsic run-to-run variability (memory
// layout and allocation luck) and is calibrated to the residual variation
// the paper reports *under HPL*, i.e. with scheduler noise removed. The
// paper itself treats those residuals as the application's noise floor.
package nas

import (
	"fmt"

	"hplsim/internal/mpi"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// SMTSteadyFactor is the per-thread throughput with both hardware threads
// of a POWER6 core busy — the steady state of an 8-rank run on the js22.
const SMTSteadyFactor = 0.64

// Profile describes one benchmark/class configuration.
type Profile struct {
	// Bench is the NAS benchmark name: cg, ep, ft, is, lu, mg.
	Bench string
	// Class is the data-set class: 'A' or 'B'.
	Class byte
	// Ranks is the number of MPI processes (the paper uses 8).
	Ranks int
	// Iterations is the number of compute/synchronise cycles.
	Iterations int
	// TargetSeconds is the calibration anchor: the paper's Table II HPL
	// minimum execution time.
	TargetSeconds float64
	// Sensitivity is the cache sensitivity of the compute phases in
	// [0,1]: the fraction of peak speed lost when fully cold.
	Sensitivity float64
	// CommPerIter is the per-rank communication cost charged after each
	// collective (latency + payload), as CPU work.
	CommPerIter sim.Duration
	// ImbalancePct is the static per-rank work spread drawn once per run
	// (uniform in [-x, +x] percent); lu's pipelined sweeps make it the
	// most imbalanced benchmark.
	ImbalancePct float64
	// JitterPct is the per-iteration, per-rank random work variation
	// (standard deviation, percent).
	JitterPct float64
	// RunVarPct is the application-intrinsic whole-run variability: each
	// run's work is scaled by 1 + U(0, x/100).
	RunVarPct float64
}

// Name returns the paper's naming convention, e.g. "ep.A.8".
func (p Profile) Name() string {
	return fmt.Sprintf("%s.%c.%d", p.Bench, p.Class, p.Ranks)
}

// profiles are the twelve configurations of the paper's Tables I and II.
var profiles = []Profile{
	// CG: conjugate gradient — many short iterations, allreduce-heavy.
	{Bench: "cg", Class: 'A', Ranks: 8, Iterations: 15, TargetSeconds: 0.68,
		Sensitivity: 0.35, CommPerIter: 1500 * sim.Microsecond,
		ImbalancePct: 0.3, JitterPct: 0.3, RunVarPct: 2.5},
	{Bench: "cg", Class: 'B', Ranks: 8, Iterations: 75, TargetSeconds: 36.96,
		Sensitivity: 0.35, CommPerIter: 8 * sim.Millisecond,
		ImbalancePct: 0.3, JitterPct: 0.3, RunVarPct: 2.8},
	// EP: embarrassingly parallel — almost no communication; the paper's
	// probe workload for Figures 2-4.
	{Bench: "ep", Class: 'A', Ranks: 8, Iterations: 4, TargetSeconds: 8.54,
		Sensitivity: 0.05, CommPerIter: 50 * sim.Microsecond,
		ImbalancePct: 0.1, JitterPct: 0.05, RunVarPct: 0.25},
	{Bench: "ep", Class: 'B', Ranks: 8, Iterations: 4, TargetSeconds: 34.14,
		Sensitivity: 0.05, CommPerIter: 50 * sim.Microsecond,
		ImbalancePct: 0.1, JitterPct: 0.05, RunVarPct: 0.4},
	// FT: 3-D FFT — all-to-all transposes, high memory traffic.
	{Bench: "ft", Class: 'A', Ranks: 8, Iterations: 6, TargetSeconds: 2.05,
		Sensitivity: 0.5, CommPerIter: 6 * sim.Millisecond,
		ImbalancePct: 0.3, JitterPct: 0.3, RunVarPct: 1.1},
	{Bench: "ft", Class: 'B', Ranks: 8, Iterations: 20, TargetSeconds: 22.58,
		Sensitivity: 0.5, CommPerIter: 20 * sim.Millisecond,
		ImbalancePct: 0.3, JitterPct: 0.3, RunVarPct: 0.45},
	// IS: integer sort — short, bucket exchange per iteration.
	{Bench: "is", Class: 'A', Ranks: 8, Iterations: 10, TargetSeconds: 0.35,
		Sensitivity: 0.3, CommPerIter: 2 * sim.Millisecond,
		ImbalancePct: 0.4, JitterPct: 0.5, RunVarPct: 2.3},
	{Bench: "is", Class: 'B', Ranks: 8, Iterations: 10, TargetSeconds: 1.82,
		Sensitivity: 0.3, CommPerIter: 10 * sim.Millisecond,
		ImbalancePct: 0.4, JitterPct: 0.5, RunVarPct: 0.9},
	// LU: pipelined SSOR sweeps — many fine-grained iterations, the
	// benchmark with the largest intrinsic imbalance and variability.
	{Bench: "lu", Class: 'A', Ranks: 8, Iterations: 250, TargetSeconds: 17.71,
		Sensitivity: 0.35, CommPerIter: 300 * sim.Microsecond,
		ImbalancePct: 0.5, JitterPct: 0.2, RunVarPct: 1.3},
	{Bench: "lu", Class: 'B', Ranks: 8, Iterations: 250, TargetSeconds: 71.81,
		Sensitivity: 0.35, CommPerIter: sim.Millisecond,
		ImbalancePct: 0.5, JitterPct: 0.2, RunVarPct: 7.0},
	// MG: multigrid — few iterations, strongly cache sensitive.
	{Bench: "mg", Class: 'A', Ranks: 8, Iterations: 4, TargetSeconds: 0.96,
		Sensitivity: 0.6, CommPerIter: 4 * sim.Millisecond,
		ImbalancePct: 0.3, JitterPct: 0.3, RunVarPct: 0.8},
	{Bench: "mg", Class: 'B', Ranks: 8, Iterations: 20, TargetSeconds: 4.48,
		Sensitivity: 0.6, CommPerIter: 8 * sim.Millisecond,
		ImbalancePct: 0.3, JitterPct: 0.3, RunVarPct: 1.1},
}

// All returns the twelve paper configurations in table order.
func All() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Get looks up a profile by benchmark name and class.
func Get(bench string, class byte) (Profile, error) {
	for _, p := range profiles {
		if p.Bench == bench && p.Class == class {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("nas: unknown benchmark %s.%c", bench, class)
}

// MustGet is Get or panic, for table-driven experiment code.
func MustGet(bench string, class byte) Profile {
	p, err := Get(bench, class)
	if err != nil {
		panic(err)
	}
	return p
}

// initWork is the per-rank MPI_Init + setup cost before the timed loop.
const initWork = 4 * sim.Millisecond

// initCycles and finalizeCycles are the blocking I/O handshakes of
// MPI_Init and MPI_Finalize (connection setup, address exchange, stdio
// teardown). Each cycle is a short compute followed by a blocking wait, so
// every cycle costs two context switches. These handshakes are what makes
// the paper's Table Ib context-switch counts (~350) nearly constant and
// independent of the data-set size: they scale with the rank count, not
// with the computation.
const (
	initCycles     = 12
	finalizeCycles = 4
)

// WorkPerIter derives the per-rank, per-iteration full-speed work from the
// calibration target, assuming the steady-state SMT factor.
func (p Profile) WorkPerIter() float64 {
	wallPerIter := p.TargetSeconds / float64(p.Iterations)
	w := wallPerIter*1e9*SMTSteadyFactor - float64(p.CommPerIter)
	if w < 1e3 {
		w = 1e3
	}
	return w
}

// WorldConfig builds the mpi.Config for running this profile under the
// given scheduling policy.
func (p Profile) WorldConfig(policy task.Policy, rtprio int, spin sim.Duration) mpi.Config {
	return mpi.Config{
		Ranks:         p.Ranks,
		Policy:        policy,
		RTPrio:        rtprio,
		SpinThreshold: spin,
		Sensitivity:   p.Sensitivity,
		Latency:       p.CommPerIter,
	}
}

// Program builds the per-run rank program. rng supplies this run's
// intrinsic randomness: the whole-run scale, the static per-rank imbalance,
// and per-iteration jitter.
func (p Profile) Program(rng *sim.RNG) mpi.Program {
	runScale := 1 + rng.Float64()*p.RunVarPct/100
	base := p.WorkPerIter() * runScale
	imb := p.ImbalancePct / 100
	jit := p.JitterPct / 100
	return func(r *mpi.Rank) {
		rrng := rng.Split(uint64(r.ID) + 17)
		rankScale := 1 + imb*(2*rrng.Float64()-1)
		iter := 0
		var step func()
		step = func() {
			if iter == p.Iterations {
				// MPI_Finalize: stdio flush and connection teardown.
				handshake(r, rrng, finalizeCycles, r.Finish)
				return
			}
			iter++
			w := base * rankScale
			if jit > 0 {
				w *= 1 + jit*rrng.NormFloat64()
				if w < base/2 {
					w = base / 2
				}
			}
			r.ComputeF(w, func() {
				r.Allreduce(0, step)
			})
		}
		// MPI_Init: blocking connection handshakes, then the setup
		// compute, then the first synchronisation aligns the ranks
		// before the timed section.
		handshake(r, rrng, initCycles, func() {
			r.Compute(initWork, func() { r.Barrier(step) })
		})
	}
}

// handshake performs n short compute+blocking-wait cycles (pipe I/O with
// the launcher or peers), then runs `then`.
func handshake(r *mpi.Rank, rng *sim.RNG, n int, then func()) {
	var cycle func()
	cycle = func() {
		if n == 0 {
			then()
			return
		}
		n--
		r.Compute(rng.UniformDuration(100*sim.Microsecond, 400*sim.Microsecond), func() {
			r.P.Sleep(rng.UniformDuration(100*sim.Microsecond, 500*sim.Microsecond), cycle)
		})
	}
	cycle()
}

// microseconds converts a float microsecond count to a Duration.
func microseconds(us float64) sim.Duration {
	return sim.Duration(us * 1e3)
}
