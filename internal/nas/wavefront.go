package nas

import (
	"hplsim/internal/mpi"
	"hplsim/internal/sim"
)

// ProgramWavefront builds an alternative rank program using lu's real
// communication structure: pipelined neighbour-to-neighbour sweeps
// (SendRecv along a rank chain) instead of global collectives. The total
// work matches Program's calibration; what changes is how noise
// propagates — a global barrier amplifies any one rank's delay to
// everyone immediately, while a pipeline lets delays overlap with
// downstream computation and only the critical path suffers.
//
// This is the substrate for the synchronisation-structure study: the same
// noise, measured through two coupling patterns.
func (p Profile) ProgramWavefront(rng *sim.RNG) mpi.Program {
	runScale := 1 + rng.Float64()*p.RunVarPct/100
	base := p.WorkPerIter() * runScale
	imb := p.ImbalancePct / 100
	jit := p.JitterPct / 100
	return func(r *mpi.Rank) {
		rrng := rng.Split(uint64(r.ID) + 31)
		rankScale := 1 + imb*(2*rrng.Float64()-1)
		n := len(r.W.Ranks)
		iter := 0
		var sweep func()
		sweep = func() {
			if iter == p.Iterations {
				handshake(r, rrng, finalizeCycles, r.Finish)
				return
			}
			iter++
			w := base * rankScale
			if jit > 0 {
				w *= 1 + jit*rrng.NormFloat64()
				if w < base/2 {
					w = base / 2
				}
			}
			compute := func() {
				r.ComputeF(w, func() {
					if r.ID < n-1 {
						// Pass the wavefront downstream.
						r.Send(r.ID+1, iter*1000+r.ID+1, 4096, sweep)
					} else {
						sweep()
					}
				})
			}
			if r.ID > 0 {
				// Wait for the upstream neighbour's boundary data.
				r.Recv(iter*1000+r.ID, func(int) { compute() })
			} else {
				compute()
			}
		}
		handshake(r, rrng, initCycles, func() {
			r.Compute(initWork, func() { r.Barrier(sweep) })
		})
	}
}
