package nas

import (
	"testing"

	"hplsim/internal/kernel"
	"hplsim/internal/mpi"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

func TestAllTwelveConfigurations(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("profiles = %d, want 12 (paper Tables I and II)", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.Name()] {
			t.Fatalf("duplicate profile %s", p.Name())
		}
		seen[p.Name()] = true
		if p.Ranks != 8 {
			t.Fatalf("%s: ranks = %d, want 8", p.Name(), p.Ranks)
		}
		if p.Iterations <= 0 || p.TargetSeconds <= 0 {
			t.Fatalf("%s: bad iterations/target", p.Name())
		}
		if p.Sensitivity < 0 || p.Sensitivity > 1 {
			t.Fatalf("%s: sensitivity out of range", p.Name())
		}
	}
	// The paper's exact set.
	for _, name := range []string{"cg", "ep", "ft", "is", "lu", "mg"} {
		for _, class := range []byte{'A', 'B'} {
			if _, err := Get(name, class); err != nil {
				t.Fatalf("missing %s.%c", name, class)
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("bt", 'A'); err == nil {
		t.Fatal("bt should be unknown (paper omits non-8-rank benchmarks)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet of unknown did not panic")
		}
	}()
	MustGet("zz", 'Q')
}

func TestName(t *testing.T) {
	if got := MustGet("ep", 'A').Name(); got != "ep.A.8" {
		t.Fatalf("Name = %q", got)
	}
}

func TestWorkPerIterPositiveAndConsistent(t *testing.T) {
	for _, p := range All() {
		w := p.WorkPerIter()
		if w <= 0 {
			t.Fatalf("%s: non-positive work", p.Name())
		}
		// Reconstruct the target: iterations x (work+comm)/smt ~ target.
		total := float64(p.Iterations) * (w + float64(p.CommPerIter)) /
			SMTSteadyFactor / 1e9
		if total < p.TargetSeconds*0.98 || total > p.TargetSeconds*1.02 {
			t.Fatalf("%s: reconstructed %.3fs vs target %.2fs", p.Name(), total, p.TargetSeconds)
		}
	}
}

func TestTargetsMatchPaperTableII(t *testing.T) {
	// Spot-check the calibration anchors against Table II HPL minima.
	anchors := map[string]float64{
		"cg.A.8": 0.68, "ep.A.8": 8.54, "ft.A.8": 2.05,
		"is.B.8": 1.82, "lu.B.8": 71.81, "mg.B.8": 4.48,
	}
	for name, want := range anchors {
		for _, p := range All() {
			if p.Name() == name && p.TargetSeconds != want {
				t.Fatalf("%s target = %v, want %v", name, p.TargetSeconds, want)
			}
		}
	}
}

// runProfile executes a profile noise-free under HPL and returns elapsed
// seconds and the kernel.
func runProfile(t *testing.T, p Profile, seed uint64) (float64, *kernel.Kernel) {
	t.Helper()
	k := kernel.New(kernel.Config{
		Topo:    topo.POWER6(),
		Balance: sched.BalanceHPL,
		Seed:    seed,
	})
	w := mpi.NewWorld(k, p.WorldConfig(task.HPC, 0, 0))
	w.OnComplete = func() { k.Eng.After(sim.Millisecond, k.Stop) }
	w.Launch(nil, p.Program(k.RNG(1)))
	k.Run(sim.Time(sim.Seconds(p.TargetSeconds*30) + 120*sim.Second))
	if w.Elapsed() <= 0 {
		t.Fatalf("%s did not complete", p.Name())
	}
	return w.Elapsed().Seconds(), k
}

func TestProgramHitsCalibrationTarget(t *testing.T) {
	for _, name := range []string{"is", "mg", "ft", "cg"} {
		p := MustGet(name, 'A')
		el, _ := runProfile(t, p, 7)
		// Noise-free run lands within ~8% above the target (startup,
		// handshakes, first-iteration cold caches).
		if el < p.TargetSeconds*0.97 || el > p.TargetSeconds*1.10 {
			t.Errorf("%s: elapsed %.3fs vs target %.2fs", p.Name(), el, p.TargetSeconds)
		}
	}
}

func TestRunVarDrawsDiffer(t *testing.T) {
	// Two runs with different seeds see different intrinsic work scales.
	p := MustGet("is", 'A')
	a, _ := runProfile(t, p, 1)
	b, _ := runProfile(t, p, 2)
	if a == b {
		t.Fatal("intrinsic run variability missing: identical elapsed")
	}
	// But bounded by RunVarPct (plus small scheduling noise).
	hi, lo := a, b
	if hi < lo {
		hi, lo = lo, hi
	}
	if (hi-lo)/lo > (p.RunVarPct+2)/100 {
		t.Fatalf("runs differ by %.1f%%, beyond RunVarPct %.1f%%",
			(hi-lo)/lo*100, p.RunVarPct)
	}
}

func TestHandshakesProduceVoluntarySwitches(t *testing.T) {
	p := MustGet("is", 'A')
	_, k := runProfile(t, p, 3)
	// Each rank performs initCycles+finalizeCycles blocking waits.
	want := uint64(p.Ranks * (initCycles + finalizeCycles))
	if k.Perf.VoluntarySwitches < want {
		t.Fatalf("voluntary switches = %d, want >= %d (handshakes)",
			k.Perf.VoluntarySwitches, want)
	}
}

func TestEpBarelyCommunicates(t *testing.T) {
	ep := MustGet("ep", 'A')
	cg := MustGet("cg", 'A')
	epComm := float64(ep.CommPerIter) * float64(ep.Iterations) / (ep.TargetSeconds * 1e9)
	cgComm := float64(cg.CommPerIter) * float64(cg.Iterations) / (cg.TargetSeconds * 1e9)
	if epComm > 0.001 {
		t.Fatalf("ep communication share %.4f, want < 0.1%%", epComm)
	}
	if cgComm < epComm*10 {
		t.Fatalf("cg should be far more communication-heavy than ep")
	}
}

func TestWavefrontCompletesAndPipelines(t *testing.T) {
	p := MustGet("is", 'A')
	k := kernel.New(kernel.Config{
		Topo:    topo.POWER6(),
		Balance: sched.BalanceHPL,
		Seed:    21,
	})
	w := mpi.NewWorld(k, p.WorldConfig(task.HPC, 0, 0))
	w.OnComplete = func() { k.Eng.After(sim.Millisecond, k.Stop) }
	w.Launch(nil, p.ProgramWavefront(k.RNG(1)))
	k.Run(sim.Time(sim.Seconds(p.TargetSeconds*60) + 120*sim.Second))
	el := w.Elapsed().Seconds()
	if el <= 0 {
		t.Fatal("wavefront job did not complete")
	}
	// The pipeline serialises along the critical path: slower than the
	// barrier version (which runs all ranks concurrently per iteration)
	// but far better than fully serial (8x).
	if el < p.TargetSeconds || el > p.TargetSeconds*8 {
		t.Fatalf("wavefront elapsed %.3fs vs target %.2fs: outside pipeline bounds",
			el, p.TargetSeconds)
	}
}
