package nas

import (
	"encoding/json"
	"fmt"
	"io"
)

// CustomSpec is the JSON schema for user-defined workload profiles, so the
// harness can study applications beyond the NAS suite without recompiling:
//
//	{
//	  "bench": "myapp", "class": "A", "ranks": 8,
//	  "iterations": 40, "target_seconds": 3.5,
//	  "sensitivity": 0.4, "comm_per_iter_us": 500,
//	  "imbalance_pct": 0.5, "jitter_pct": 0.3, "run_var_pct": 1.0
//	}
type CustomSpec struct {
	Bench         string  `json:"bench"`
	Class         string  `json:"class"`
	Ranks         int     `json:"ranks"`
	Iterations    int     `json:"iterations"`
	TargetSeconds float64 `json:"target_seconds"`
	Sensitivity   float64 `json:"sensitivity"`
	CommPerIterUS float64 `json:"comm_per_iter_us"`
	ImbalancePct  float64 `json:"imbalance_pct"`
	JitterPct     float64 `json:"jitter_pct"`
	RunVarPct     float64 `json:"run_var_pct"`
}

// Validate reports the first problem with the spec.
func (c CustomSpec) Validate() error {
	switch {
	case c.Bench == "":
		return fmt.Errorf("nas: custom spec needs a bench name")
	case len(c.Class) != 1:
		return fmt.Errorf("nas: class must be one character, got %q", c.Class)
	case c.Ranks <= 0:
		return fmt.Errorf("nas: ranks must be positive, got %d", c.Ranks)
	case c.Iterations <= 0:
		return fmt.Errorf("nas: iterations must be positive, got %d", c.Iterations)
	case c.TargetSeconds <= 0:
		return fmt.Errorf("nas: target_seconds must be positive, got %v", c.TargetSeconds)
	case c.Sensitivity < 0 || c.Sensitivity > 1:
		return fmt.Errorf("nas: sensitivity must be in [0,1], got %v", c.Sensitivity)
	case c.CommPerIterUS < 0 || c.ImbalancePct < 0 || c.JitterPct < 0 || c.RunVarPct < 0:
		return fmt.Errorf("nas: negative noise parameter")
	}
	return nil
}

// Profile converts the spec into a runnable Profile.
func (c CustomSpec) Profile() (Profile, error) {
	if err := c.Validate(); err != nil {
		return Profile{}, err
	}
	return Profile{
		Bench:         c.Bench,
		Class:         c.Class[0],
		Ranks:         c.Ranks,
		Iterations:    c.Iterations,
		TargetSeconds: c.TargetSeconds,
		Sensitivity:   c.Sensitivity,
		CommPerIter:   microseconds(c.CommPerIterUS),
		ImbalancePct:  c.ImbalancePct,
		JitterPct:     c.JitterPct,
		RunVarPct:     c.RunVarPct,
	}, nil
}

// ParseCustom reads one CustomSpec from JSON.
func ParseCustom(r io.Reader) (Profile, error) {
	var spec CustomSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Profile{}, fmt.Errorf("nas: parsing custom workload: %w", err)
	}
	return spec.Profile()
}
