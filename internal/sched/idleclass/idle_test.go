package idleclass_test

import (
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sched/cfs"
	"hplsim/internal/sched/hpc"
	"hplsim/internal/sched/idleclass"
	"hplsim/internal/sched/rt"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

type hooks struct{}

func (hooks) Resched(int)                   {}
func (hooks) Migrated(*task.Task, int, int) {}

func setup() (*sched.Scheduler, *idleclass.Class) {
	tp := topo.POWER6()
	n := tp.NumCPUs()
	idle := idleclass.New(n)
	s := sched.New(sched.Config{
		Topo:    tp,
		Classes: []sched.Class{rt.New(n), hpc.New(n), cfs.New(n, cfs.DefaultTunables()), idle},
		Hooks:   hooks{},
		RNG:     sim.NewRNG(5),
		Now:     func() sim.Time { return 0 },
		Timer:   func(sim.Duration, func()) {},
	})
	for cpu := 0; cpu < n; cpu++ {
		t := &task.Task{ID: 1000 + cpu, Policy: task.Idle, State: task.Running, CPU: cpu}
		idle.SetIdleTask(cpu, t)
		s.SetCurr(cpu, t)
	}
	return s, idle
}

func TestAlwaysPicksSwapper(t *testing.T) {
	s, c := setup()
	for cpu := 0; cpu < 8; cpu++ {
		got := c.PickNext(s, cpu)
		if got == nil || got.Policy != task.Idle || got != c.IdleTask(cpu) {
			t.Fatalf("PickNext(%d) = %v", cpu, got)
		}
	}
}

func TestSchedulerNeverFails(t *testing.T) {
	// "The idle class always contains at least the idle process, thus
	// the scheduler's search cannot fail" (Section IV).
	s, c := setup()
	got := s.PickNext(3)
	if got != c.IdleTask(3) {
		t.Fatalf("empty system picked %v", got)
	}
}

func TestEnqueuePanics(t *testing.T) {
	s, c := setup()
	defer func() {
		if recover() == nil {
			t.Fatal("enqueue of idle task did not panic")
		}
	}()
	c.Enqueue(s, 0, c.IdleTask(0), sched.EnqueueWake)
}

func TestQueuedZeroAndNoSteal(t *testing.T) {
	s, c := setup()
	if c.Queued(s, 0) != 0 {
		t.Fatal("idle class reports queued tasks")
	}
	if c.StealFrom(s, 0, 1) != nil {
		t.Fatal("idle class allowed a steal")
	}
}

func TestSelectCPUPinned(t *testing.T) {
	s, c := setup()
	if got := c.SelectCPU(s, c.IdleTask(2), 2, sched.EnqueueWake); got != 2 {
		t.Fatalf("idle task moved to %d", got)
	}
}

func TestEverythingPreemptsIdle(t *testing.T) {
	s, c := setup()
	w := &task.Task{ID: 1, Policy: task.Normal}
	if !c.CheckPreempt(s, 0, c.IdleTask(0), w) {
		t.Fatal("idle task not preempted")
	}
}

func TestHandles(t *testing.T) {
	_, c := setup()
	if !c.Handles(task.Idle) || c.Handles(task.Normal) {
		t.Fatal("Handles wrong")
	}
	if c.Name() != "idle" {
		t.Fatal("name wrong")
	}
}
