// Package idleclass implements the lowest scheduling class: it always has
// exactly the per-CPU idle task (swapper) available, so the scheduler
// core's search for a runnable task can never fail — "the idle class always
// contains at least the idle process" (Section IV).
package idleclass

import (
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// Class is the idle scheduling class.
type Class struct {
	idle []*task.Task
}

// New returns an idle class for nCPUs. The kernel must register each CPU's
// idle task with SetIdleTask before the scheduler runs.
func New(nCPUs int) *Class {
	return &Class{idle: make([]*task.Task, nCPUs)}
}

// SetIdleTask registers the swapper task of cpu.
func (c *Class) SetIdleTask(cpu int, t *task.Task) { c.idle[cpu] = t }

// IdleTask returns the swapper task of cpu.
func (c *Class) IdleTask(cpu int) *task.Task { return c.idle[cpu] }

// Name implements sched.Class.
func (c *Class) Name() string { return "idle" }

// Handles implements sched.Class.
func (c *Class) Handles(p task.Policy) bool { return p == task.Idle }

// Enqueue implements sched.Class. The idle task is never enqueued: it is
// conjured by PickNext. Reaching here is a kernel bug.
func (c *Class) Enqueue(s *sched.Scheduler, cpu int, t *task.Task, kind sched.WakeKind) {
	panic("idleclass: idle task enqueued")
}

// Dequeue implements sched.Class.
func (c *Class) Dequeue(s *sched.Scheduler, cpu int, t *task.Task) {
	panic("idleclass: idle task dequeued")
}

// PickNext implements sched.Class: always the CPU's swapper.
func (c *Class) PickNext(s *sched.Scheduler, cpu int) *task.Task {
	if c.idle[cpu] == nil {
		panic("idleclass: no idle task registered")
	}
	return c.idle[cpu]
}

// ExecCharge implements sched.Class: idle time is not charged anywhere.
func (c *Class) ExecCharge(s *sched.Scheduler, cpu int, t *task.Task, delta sim.Duration) {}

// Tick implements sched.Class. Idle CPUs are tickless in this model, so
// this is never called; it is a no-op for safety.
func (c *Class) Tick(s *sched.Scheduler, cpu int, t *task.Task) {}

// CheckPreempt implements sched.Class: anything preempts idle. (The
// scheduler core handles cross-class preemption; two idle tasks never
// contend.)
func (c *Class) CheckPreempt(s *sched.Scheduler, cpu int, curr, w *task.Task) bool {
	return true
}

// Queued implements sched.Class.
func (c *Class) Queued(s *sched.Scheduler, cpu int) int { return 0 }

// StealFrom implements sched.Class: idle tasks never migrate.
func (c *Class) StealFrom(s *sched.Scheduler, from, to int) *task.Task { return nil }

// SelectCPU implements sched.Class: idle tasks are pinned to their CPU.
func (c *Class) SelectCPU(s *sched.Scheduler, t *task.Task, origin int, kind sched.WakeKind) int {
	return origin
}

// NextDecision implements sched.Class: no tick ever changes a decision for
// an idle CPU (idle CPUs are tickless anyway).
func (c *Class) NextDecision(s *sched.Scheduler, cpu int, t *task.Task, anchor sim.Time) sim.Time {
	return sim.Infinity
}
