package rt_test

import (
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sched/cfs"
	"hplsim/internal/sched/hpc"
	"hplsim/internal/sched/idleclass"
	"hplsim/internal/sched/rt"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

type harness struct {
	now     sim.Time
	resched []int
	timers  []struct {
		at sim.Time
		fn func()
	}
}

func (h *harness) Resched(cpu int)                     { h.resched = append(h.resched, cpu) }
func (h *harness) Migrated(t *task.Task, from, to int) {}

func (h *harness) advance(d sim.Duration) {
	h.now = h.now.Add(d)
	rest := h.timers[:0]
	for _, tm := range h.timers {
		if tm.at <= h.now {
			tm.fn()
		} else {
			rest = append(rest, tm)
		}
	}
	h.timers = rest
}

func setup() (*sched.Scheduler, *rt.Class, *harness) {
	h := &harness{}
	tp := topo.POWER6()
	n := tp.NumCPUs()
	c := rt.New(n)
	idle := idleclass.New(n)
	s := sched.New(sched.Config{
		Topo:    tp,
		Classes: []sched.Class{c, hpc.New(n), cfs.New(n, cfs.DefaultTunables()), idle},
		Hooks:   h,
		Policy:  sched.BalanceStandard,
		RNG:     sim.NewRNG(3),
		Now:     func() sim.Time { return h.now },
		Timer: func(d sim.Duration, fn func()) {
			h.timers = append(h.timers, struct {
				at sim.Time
				fn func()
			}{h.now.Add(d), fn})
		},
	})
	for cpu := 0; cpu < n; cpu++ {
		t := &task.Task{ID: 1000 + cpu, Policy: task.Idle, State: task.Running,
			CPU: cpu, Affinity: topo.MaskOf(cpu)}
		idle.SetIdleTask(cpu, t)
		s.SetCurr(cpu, t)
	}
	return s, c, h
}

func mkRT(id int, p task.Policy, prio int) *task.Task {
	return &task.Task{ID: id, Policy: p, RTPrio: prio,
		State: task.Runnable, Affinity: topo.MaskAll(8)}
}

func TestPickHighestPriority(t *testing.T) {
	s, c, _ := setup()
	lo := mkRT(1, task.FIFO, 10)
	hi := mkRT(2, task.FIFO, 80)
	mid := mkRT(3, task.FIFO, 40)
	for _, tk := range []*task.Task{lo, hi, mid} {
		c.Enqueue(s, 0, tk, sched.EnqueueWake)
	}
	for _, want := range []*task.Task{hi, mid, lo} {
		if got := c.PickNext(s, 0); got != want {
			t.Fatalf("PickNext = %v, want %v", got, want)
		}
	}
	if c.PickNext(s, 0) != nil {
		t.Fatal("empty queue returned a task")
	}
}

func TestFIFOOrderWithinPriority(t *testing.T) {
	s, c, _ := setup()
	a, b := mkRT(1, task.FIFO, 50), mkRT(2, task.FIFO, 50)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	c.Enqueue(s, 0, b, sched.EnqueueWake)
	if c.PickNext(s, 0) != a {
		t.Fatal("FIFO order violated")
	}
	// A preempted FIFO task returns to the HEAD of its priority list.
	c.Enqueue(s, 0, a, sched.EnqueuePutPrev)
	if c.PickNext(s, 0) != a {
		t.Fatal("preempted FIFO task did not return to head")
	}
}

func TestRRSliceRefillAndRotation(t *testing.T) {
	s, c, h := setup()
	a, b := mkRT(1, task.RR, 50), mkRT(2, task.RR, 50)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	c.Enqueue(s, 0, b, sched.EnqueueWake)
	curr := c.PickNext(s, 0)
	s.SetCurr(0, curr)
	if curr.RT.Slice != rt.RRTimeslice {
		t.Fatalf("slice not refilled: %v", curr.RT.Slice)
	}
	h.resched = nil
	c.ExecCharge(s, 0, curr, rt.RRTimeslice/2)
	c.Tick(s, 0, curr)
	if len(h.resched) != 0 {
		t.Fatal("RR rotated before quantum expiry")
	}
	c.ExecCharge(s, 0, curr, rt.RRTimeslice)
	c.Tick(s, 0, curr)
	if len(h.resched) == 0 {
		t.Fatal("RR did not rotate after quantum expiry")
	}
}

func TestRRAloneNoRotation(t *testing.T) {
	s, c, h := setup()
	a := mkRT(1, task.RR, 50)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	curr := c.PickNext(s, 0)
	s.SetCurr(0, curr)
	c.ExecCharge(s, 0, curr, 2*rt.RRTimeslice)
	h.resched = nil
	c.Tick(s, 0, curr)
	if len(h.resched) != 0 {
		t.Fatal("lone RR task rotated")
	}
}

func TestThrottling(t *testing.T) {
	s, c, h := setup()
	a := mkRT(1, task.RR, 50)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	curr := c.PickNext(s, 0)
	s.SetCurr(0, curr)

	// Burn the full RT budget: the class must request a reschedule and
	// refuse to serve RT tasks until the period rolls.
	h.resched = nil
	c.ExecCharge(s, 0, curr, rt.ThrottleRuntime)
	if len(h.resched) == 0 {
		t.Fatal("throttle did not trigger a reschedule")
	}
	c.Enqueue(s, 0, curr, sched.EnqueuePutPrev)
	if got := c.PickNext(s, 0); got != nil {
		t.Fatalf("throttled queue served %v", got)
	}
	// After the period rolls (driven by the unthrottle timer), service
	// resumes.
	h.advance(rt.ThrottlePeriod + sim.Millisecond)
	if got := c.PickNext(s, 0); got != curr {
		t.Fatalf("unthrottled queue returned %v", got)
	}
}

func TestThrottleBudgetIsPerCPU(t *testing.T) {
	s, c, _ := setup()
	a, b := mkRT(1, task.RR, 50), mkRT(2, task.RR, 50)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	c.Enqueue(s, 1, b, sched.EnqueueWake)
	ca := c.PickNext(s, 0)
	s.SetCurr(0, ca)
	c.ExecCharge(s, 0, ca, rt.ThrottleRuntime)
	// CPU 1 still has budget.
	if got := c.PickNext(s, 1); got != b {
		t.Fatalf("CPU 1 throttled by CPU 0's usage: got %v", got)
	}
}

func TestStealRequiresOverload(t *testing.T) {
	s, c, _ := setup()
	a := mkRT(1, task.RR, 50)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	if got := c.StealFrom(s, 0, 1); got != nil {
		t.Fatalf("stole from non-overloaded queue: %v", got)
	}
	b := mkRT(2, task.RR, 60)
	c.Enqueue(s, 0, b, sched.EnqueueWake)
	if got := c.StealFrom(s, 0, 1); got != b {
		t.Fatalf("StealFrom = %v, want highest-priority queued %v", got, b)
	}
}

func TestSelectCPUFindsDisplaceable(t *testing.T) {
	s, c, _ := setup()
	// Occupy CPU 0 with an equal-priority RT task; the wakee should go
	// to an idle CPU instead.
	a := mkRT(1, task.RR, 50)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	s.SetCurr(0, c.PickNext(s, 0))

	w := mkRT(2, task.RR, 50)
	got := c.SelectCPU(s, w, 0, sched.EnqueueWake)
	if got == 0 {
		t.Fatal("wakee placed behind equal-priority RT task despite idle CPUs")
	}
}

func TestSelectCPUPrefersIdleOriginOverSearch(t *testing.T) {
	s, c, _ := setup()
	w := mkRT(1, task.RR, 50)
	if got := c.SelectCPU(s, w, 6, sched.EnqueueWake); got != 6 {
		t.Fatalf("wake = %d, want idle origin 6", got)
	}
}

func TestHandles(t *testing.T) {
	_, c, _ := setup()
	if !c.Handles(task.FIFO) || !c.Handles(task.RR) {
		t.Fatal("rt must handle FIFO and RR")
	}
	if c.Handles(task.Normal) || c.Handles(task.HPC) || c.Handles(task.Idle) {
		t.Fatal("rt handles foreign policy")
	}
	if c.Name() != "rt" {
		t.Fatal("name wrong")
	}
}

func TestQueuedCount(t *testing.T) {
	s, c, _ := setup()
	for i := 0; i < 5; i++ {
		c.Enqueue(s, 2, mkRT(10+i, task.FIFO, 10+i), sched.EnqueueWake)
	}
	if c.Queued(s, 2) != 5 {
		t.Fatalf("Queued = %d, want 5", c.Queued(s, 2))
	}
}
