// Package rt implements the real-time scheduling class (SCHED_FIFO and
// SCHED_RR): 99 strict priority levels with per-level FIFO queues, a
// round-robin timeslice for RR tasks, and the wake placement that prefers
// CPUs running lower-priority work.
//
// This is the paper's Figure 4 baseline. Running the NAS ranks under
// SCHED_RR shields them from CFS daemons but, as Section IV explains, does
// not eliminate noise: with more RT tasks than CPUs (mpiexec plus eight
// ranks), every balancing pass leaves the system imbalanced and keeps
// migrating tasks.
package rt

import (
	"math/bits"

	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// RRTimeslice is the SCHED_RR quantum (Linux: 100 ms).
const RRTimeslice = 100 * sim.Millisecond

// RT group throttling, as in stock 2.6.3x kernels
// (sched_rt_period_us = 1s, sched_rt_runtime_us = 950ms): real-time tasks
// may consume at most ThrottleRuntime of CPU per ThrottlePeriod on each
// CPU; in the remaining slack, lower classes run. This is the safety valve
// that keeps a runaway RT task from locking up a machine — and the reason
// the paper's Figure 4 baseline (NAS under SCHED_RR) is *not* noise-free:
// once a spinning rank exhausts the RT budget, CFS daemons get the CPU for
// up to 5% of every second.
const (
	ThrottlePeriod  = sim.Second
	ThrottleRuntime = 950 * sim.Millisecond
)

// maxPrio is the number of real-time priority levels (1..99 used).
const maxPrio = 100

// runqueue is the per-CPU RT state: an active array of FIFO queues with a
// bitmap for O(1) highest-priority lookup, plus the throttling budget.
type runqueue struct {
	queues [maxPrio][]*task.Task
	bitmap [2]uint64
	count  int

	// rtTime is the RT CPU time consumed in the current period.
	rtTime sim.Duration
	// periodStart anchors the current throttle period.
	periodStart sim.Time
	// throttled blocks PickNext until the period rolls over.
	throttled bool
	// unthrottleArmed guards against arming multiple unthrottle timers.
	unthrottleArmed bool
}

// rollPeriod resets the budget if the throttle period has elapsed.
func (rq *runqueue) rollPeriod(now sim.Time) {
	if now.Sub(rq.periodStart) >= ThrottlePeriod {
		rq.periodStart = now
		rq.rtTime = 0
		rq.throttled = false
	}
}

func (rq *runqueue) setBit(p int)   { rq.bitmap[p/64] |= 1 << uint(p%64) }
func (rq *runqueue) clearBit(p int) { rq.bitmap[p/64] &^= 1 << uint(p%64) }

// highest returns the highest set priority, or -1.
func (rq *runqueue) highest() int {
	if rq.bitmap[1] != 0 {
		return 127 - bits.LeadingZeros64(rq.bitmap[1])
	}
	if rq.bitmap[0] != 0 {
		return 63 - bits.LeadingZeros64(rq.bitmap[0])
	}
	return -1
}

// Class is the real-time scheduling class.
type Class struct {
	rqs []runqueue
}

// New returns an RT class for nCPUs.
func New(nCPUs int) *Class {
	return &Class{rqs: make([]runqueue, nCPUs)}
}

// Name implements sched.Class.
func (c *Class) Name() string { return "rt" }

// Handles implements sched.Class.
func (c *Class) Handles(p task.Policy) bool { return p.RealTime() }

// Enqueue implements sched.Class. A preempted FIFO task returns to the head
// of its priority queue (it was not done with its turn); everything else
// goes to the tail.
func (c *Class) Enqueue(s *sched.Scheduler, cpu int, t *task.Task, kind sched.WakeKind) {
	rq := &c.rqs[cpu]
	p := t.RTPrio
	if kind == sched.EnqueuePutPrev && t.Policy == task.FIFO {
		rq.queues[p] = append([]*task.Task{t}, rq.queues[p]...)
	} else {
		rq.queues[p] = append(rq.queues[p], t)
	}
	rq.setBit(p)
	rq.count++
}

// Dequeue implements sched.Class.
func (c *Class) Dequeue(s *sched.Scheduler, cpu int, t *task.Task) {
	rq := &c.rqs[cpu]
	q := rq.queues[t.RTPrio]
	for i, qt := range q {
		if qt == t {
			rq.queues[t.RTPrio] = append(q[:i:i], q[i+1:]...)
			if len(rq.queues[t.RTPrio]) == 0 {
				rq.clearBit(t.RTPrio)
			}
			rq.count--
			return
		}
	}
	panic("rt: dequeue of task not queued")
}

// PickNext implements sched.Class.
func (c *Class) PickNext(s *sched.Scheduler, cpu int) *task.Task {
	rq := &c.rqs[cpu]
	rq.rollPeriod(s.Now())
	if rq.throttled {
		return nil // budget exhausted: let lower classes run
	}
	p := rq.highest()
	if p < 0 {
		return nil
	}
	t := rq.queues[p][0]
	c.Dequeue(s, cpu, t)
	if t.Policy == task.RR && t.RT.Slice <= 0 {
		t.RT.Slice = RRTimeslice
	}
	return t
}

// ExecCharge implements sched.Class: burn the RR timeslice and the per-CPU
// RT throttling budget.
func (c *Class) ExecCharge(s *sched.Scheduler, cpu int, t *task.Task, delta sim.Duration) {
	if t.Policy == task.RR {
		t.RT.Slice -= delta
	}
	rq := &c.rqs[cpu]
	now := s.Now()
	rq.rollPeriod(now)
	rq.rtTime += delta
	if rq.rtTime >= ThrottleRuntime && !rq.throttled {
		rq.throttled = true
		s.Resched(cpu)
		if !rq.unthrottleArmed {
			rq.unthrottleArmed = true
			wait := rq.periodStart.Add(sim.Duration(ThrottlePeriod)).Sub(now)
			if wait < 0 {
				wait = 0
			}
			cpu := cpu
			s.Timer(wait, func() {
				rq.unthrottleArmed = false
				rq.rollPeriod(s.Now())
				if rq.count > 0 {
					s.Resched(cpu)
				}
			})
		}
	}
}

// Tick implements sched.Class: rotate RR tasks whose quantum expired, but
// only if a same-priority peer is waiting (otherwise just refill).
func (c *Class) Tick(s *sched.Scheduler, cpu int, t *task.Task) {
	if t.Policy != task.RR || t.RT.Slice > 0 {
		return
	}
	t.RT.Slice = RRTimeslice
	rq := &c.rqs[cpu]
	if len(rq.queues[t.RTPrio]) > 0 {
		s.Resched(cpu)
	}
}

// CheckPreempt implements sched.Class: strictly higher priority preempts.
func (c *Class) CheckPreempt(s *sched.Scheduler, cpu int, curr, w *task.Task) bool {
	return w.RTPrio > curr.RTPrio
}

// NextDecision implements sched.Class. Two tick-driven events can change a
// decision for a running RT task: the RR rotation (only when a same-priority
// peer is waiting — with no peer, Tick merely refills the slice) and the
// throttle budget crossing in ExecCharge. Both bounds rely on execution time
// by instant x being at most x - anchor; a period rollover can only reset the
// budget and push the real crossing later, so ignoring it stays conservative.
func (c *Class) NextDecision(s *sched.Scheduler, cpu int, t *task.Task, anchor sim.Time) sim.Time {
	rq := &c.rqs[cpu]
	d := sim.Infinity
	if t.Policy == task.RR && len(rq.queues[t.RTPrio]) > 0 {
		slice := t.RT.Slice
		if slice < 0 {
			slice = 0
		}
		d = anchor.Add(slice)
	}
	left := ThrottleRuntime - rq.rtTime
	if left < 0 {
		left = 0
	}
	if trip := anchor.Add(left); trip < d {
		d = trip
	}
	return d
}

// Queued implements sched.Class.
func (c *Class) Queued(s *sched.Scheduler, cpu int) int { return c.rqs[cpu].count }

// StealFrom implements sched.Class: pull the highest-priority queued RT
// task that may run on `to`. Following the kernel's pull_rt_task, only
// *overloaded* runqueues (two or more queued RT tasks) are eligible
// sources: a throttled CPU with its single rank briefly queued is not
// raided, otherwise every throttle window would shuffle the whole job.
// The paper notes that because there are few RT tasks, the probability of
// triggering such an operation is higher than for CFS.
func (c *Class) StealFrom(s *sched.Scheduler, from, to int) *task.Task {
	rq := &c.rqs[from]
	if rq.count < 2 {
		return nil
	}
	for p := rq.highest(); p > 0; p-- {
		for _, t := range rq.queues[p] {
			if t.Affinity.Has(to) && s.CanMigrate(t) {
				c.Dequeue(s, from, t)
				return t
			}
		}
	}
	return nil
}

// SelectCPU implements sched.Class. Both fork and wake placement look for
// the CPU running the lowest-priority work (idle beats CFS beats lower RT),
// falling back to the origin, like find_lowest_rq.
func (c *Class) SelectCPU(s *sched.Scheduler, t *task.Task, origin int, kind sched.WakeKind) int {
	if t.Affinity.Has(origin) {
		if curr := s.Curr(origin); curr == nil || rtBeats(t, curr) {
			return origin
		}
	}
	best, bestRank := -1, 0
	t.Affinity.ForEach(func(cpu int) {
		curr := s.Curr(cpu)
		rank := currRank(curr)
		if rank > bestRank {
			best, bestRank = cpu, rank
		}
	})
	if best >= 0 && bestRank > 1 {
		// Found a CPU running something we can displace.
		return best
	}
	if t.Affinity.Has(origin) {
		return origin
	}
	return t.Affinity.First()
}

// rtBeats reports whether RT task t would immediately run on a CPU whose
// current task is curr.
func rtBeats(t *task.Task, curr *task.Task) bool {
	if curr.Policy == task.Idle || curr.Policy == task.Normal || curr.Policy == task.HPC {
		return true
	}
	return curr.Policy.RealTime() && t.RTPrio > curr.RTPrio
}

// currRank scores how displaceable a CPU's current task is: idle is best,
// then CFS, then HPC, then RT (not displaceable by an equal-priority wakee).
func currRank(curr *task.Task) int {
	if curr == nil {
		return 4
	}
	switch curr.Policy {
	case task.Idle:
		return 4
	case task.Normal:
		return 3
	case task.HPC:
		return 2
	default:
		return 1
	}
}
