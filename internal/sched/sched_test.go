package sched_test

import (
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sched/cfs"
	"hplsim/internal/sched/hpc"
	"hplsim/internal/sched/idleclass"
	"hplsim/internal/sched/rt"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// harness is a minimal stand-in for the kernel: it records reschedule
// requests and migrations, and owns the virtual clock.
type harness struct {
	now      sim.Time
	resched  []int
	migrated []*task.Task
	timers   []timer
}

type timer struct {
	at sim.Time
	fn func()
}

func (h *harness) Resched(cpu int) { h.resched = append(h.resched, cpu) }
func (h *harness) Migrated(t *task.Task, from, to int) {
	h.migrated = append(h.migrated, t)
}

// advance moves the clock and fires due timers.
func (h *harness) advance(d sim.Duration) {
	h.now = h.now.Add(d)
	var rest []timer
	for _, t := range h.timers {
		if t.at <= h.now {
			t.fn()
		} else {
			rest = append(rest, t)
		}
	}
	h.timers = rest
}

// newScheduler builds the standard class chain over a POWER6 topology.
func newScheduler(h *harness, policy sched.BalancePolicy) (*sched.Scheduler, *idleclass.Class) {
	tp := topo.POWER6()
	n := tp.NumCPUs()
	idle := idleclass.New(n)
	s := sched.New(sched.Config{
		Topo:    tp,
		Classes: []sched.Class{rt.New(n), hpc.New(n), cfs.New(n, cfs.DefaultTunables()), idle},
		Hooks:   h,
		Policy:  policy,
		RNG:     sim.NewRNG(1),
		Now:     func() sim.Time { return h.now },
		Timer: func(d sim.Duration, fn func()) {
			h.timers = append(h.timers, timer{at: h.now.Add(d), fn: fn})
		},
	})
	for cpu := 0; cpu < n; cpu++ {
		t := &task.Task{ID: 1000 + cpu, Name: "swapper", Policy: task.Idle,
			State: task.Running, CPU: cpu, Affinity: topo.MaskOf(cpu)}
		idle.SetIdleTask(cpu, t)
		s.SetCurr(cpu, t)
	}
	return s, idle
}

func newTask(id int, p task.Policy, prio int) *task.Task {
	return &task.Task{ID: id, Name: "t", Policy: p, RTPrio: prio,
		State: task.Runnable, Affinity: topo.MaskAll(8)}
}

func TestClassChainPriority(t *testing.T) {
	h := &harness{}
	s, idle := newScheduler(h, sched.BalanceStandard)

	normal := newTask(1, task.Normal, 0)
	hpcT := newTask(2, task.HPC, 0)
	rtT := newTask(3, task.RR, 50)

	s.Enqueue(0, normal, sched.EnqueueWake)
	s.Enqueue(0, hpcT, sched.EnqueueWake)
	s.Enqueue(0, rtT, sched.EnqueueWake)

	// Pick order must follow the class chain: RT, then HPC, then CFS,
	// then idle.
	for _, want := range []*task.Task{rtT, hpcT, normal, idle.IdleTask(0)} {
		got := s.PickNext(0)
		if got != want {
			t.Fatalf("PickNext = %v, want %v", got, want)
		}
		s.SetCurr(0, got)
	}
}

func TestWakePreemptionAcrossClasses(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceStandard)

	normal := newTask(1, task.Normal, 0)
	s.Enqueue(0, normal, sched.EnqueueWake)
	curr := s.PickNext(0)
	s.SetCurr(0, curr)
	h.resched = nil

	// An HPC wakee preempts a CFS task.
	hpcT := newTask(2, task.HPC, 0)
	s.Enqueue(0, hpcT, sched.EnqueueWake)
	if len(h.resched) != 1 || h.resched[0] != 0 {
		t.Fatalf("HPC wake did not preempt CFS curr: resched=%v", h.resched)
	}

	// A CFS wakee does NOT preempt an HPC task.
	s.SetCurr(0, hpcT)
	h.resched = nil
	other := newTask(3, task.Normal, 0)
	s.Enqueue(0, other, sched.EnqueueWake)
	if len(h.resched) != 0 {
		t.Fatalf("CFS wake preempted HPC curr")
	}
}

func TestRTPriorityPreemption(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceStandard)

	lo := newTask(1, task.FIFO, 10)
	s.Enqueue(0, lo, sched.EnqueueWake)
	s.SetCurr(0, s.PickNext(0))
	h.resched = nil

	hi := newTask(2, task.FIFO, 90)
	s.Enqueue(0, hi, sched.EnqueueWake)
	if len(h.resched) != 1 {
		t.Fatal("higher RT priority did not preempt")
	}
	// Equal priority must not preempt.
	s.SetCurr(0, hi)
	h.resched = nil
	eq := newTask(3, task.FIFO, 90)
	s.Enqueue(0, eq, sched.EnqueueWake)
	if len(h.resched) != 0 {
		t.Fatal("equal RT priority preempted")
	}
}

func TestNrQueuedAndRunnable(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceStandard)
	if s.NrRunnable(0) != 0 {
		t.Fatal("idle CPU reports runnable tasks")
	}
	a, b := newTask(1, task.Normal, 0), newTask(2, task.HPC, 0)
	s.Enqueue(0, a, sched.EnqueueWake)
	s.Enqueue(0, b, sched.EnqueueWake)
	if s.NrQueued(0) != 2 || s.NrRunnable(0) != 2 {
		t.Fatalf("queued=%d runnable=%d, want 2/2", s.NrQueued(0), s.NrRunnable(0))
	}
	curr := s.PickNext(0)
	s.SetCurr(0, curr)
	if s.NrQueued(0) != 1 || s.NrRunnable(0) != 2 {
		t.Fatalf("after pick: queued=%d runnable=%d, want 1/2", s.NrQueued(0), s.NrRunnable(0))
	}
	s.Dequeue(a)
	if s.NrQueued(0) != 0 {
		t.Fatal("dequeue did not remove")
	}
}

func TestHPLBalanceSuppression(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceHPL)

	// Two CFS tasks stuck on CPU 0 while CPU 1 idles.
	a, b := newTask(1, task.Normal, 0), newTask(2, task.Normal, 0)
	s.Enqueue(0, a, sched.EnqueueWake)
	s.Enqueue(0, b, sched.EnqueueWake)
	s.SetCurr(0, s.PickNext(0))

	// With a live HPC task, idle balance must do nothing.
	s.TaskAlive(task.HPC)
	if s.IdleBalance(1) {
		t.Fatal("idle balance ran while HPC tasks alive under BalanceHPL")
	}
	// Once the HPC task is gone, balancing resumes.
	s.TaskGone(task.HPC)
	if !s.IdleBalance(1) {
		t.Fatal("idle balance did not run after HPC tasks exited")
	}
	if len(h.migrated) != 1 {
		t.Fatalf("migrations = %d, want 1", len(h.migrated))
	}
}

func TestIdleBalancePullsQueued(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceStandard)
	a, b := newTask(1, task.Normal, 0), newTask(2, task.Normal, 0)
	s.Enqueue(3, a, sched.EnqueueWake)
	s.Enqueue(3, b, sched.EnqueueWake)
	s.SetCurr(3, s.PickNext(3))

	if !s.IdleBalance(5) {
		t.Fatal("idle balance found nothing to pull")
	}
	if s.NrQueued(5) != 1 {
		t.Fatalf("target queue = %d, want 1", s.NrQueued(5))
	}
	if b.CPU != 5 && a.CPU != 5 {
		t.Fatal("no task actually moved to CPU 5")
	}
}

func TestMigrationCooldown(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceStandard)
	// Start away from t=0: LastMigrated==0 means "never migrated".
	h.advance(sim.Second)
	a, b := newTask(1, task.Normal, 0), newTask(2, task.Normal, 0)
	s.Enqueue(0, a, sched.EnqueueWake)
	s.Enqueue(0, b, sched.EnqueueWake)
	s.SetCurr(0, s.PickNext(0))

	if !s.IdleBalance(1) {
		t.Fatal("first pull failed")
	}
	moved := h.migrated[0]
	// Move it back onto CPU 0's queue and try to steal it again
	// immediately: the cooldown must refuse.
	s.Dequeue(moved)
	s.Enqueue(0, moved, sched.EnqueueWake)
	if s.IdleBalance(2) {
		t.Fatal("cooldown did not prevent immediate re-migration")
	}
	h.advance(sched.MigrationCooldown + sim.Millisecond)
	if !s.IdleBalance(2) {
		t.Fatal("pull failed after cooldown expired")
	}
}

func TestMoveQueuedRespectsIdentity(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceStandard)
	a := newTask(1, task.Normal, 0)
	s.Enqueue(0, a, sched.EnqueueWake)
	s.MoveQueued(a, 6)
	if a.CPU != 6 || !a.OnRq {
		t.Fatalf("MoveQueued left task at %d (onrq=%v)", a.CPU, a.OnRq)
	}
	// Moving to the same CPU is a no-op.
	before := len(h.migrated)
	s.MoveQueued(a, 6)
	if len(h.migrated) != before {
		t.Fatal("same-CPU move counted as migration")
	}
}

func TestSelectCPURespectsAffinity(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceStandard)
	a := newTask(1, task.Normal, 0)
	a.Affinity = topo.MaskOf(3)
	cpu := s.SelectCPU(a, 0, sched.EnqueueWake)
	if cpu != 3 {
		t.Fatalf("SelectCPU = %d, want 3 (affinity)", cpu)
	}
	b := newTask(2, task.HPC, 0)
	b.Affinity = topo.MaskOf(5)
	if got := s.SelectCPU(b, 0, sched.EnqueueFork); got != 5 {
		t.Fatalf("HPC fork SelectCPU = %d, want 5", got)
	}
}

func TestEnqueueDequeuePanics(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceStandard)
	a := newTask(1, task.Normal, 0)
	s.Enqueue(0, a, sched.EnqueueWake)
	assertPanics(t, "double enqueue", func() { s.Enqueue(1, a, sched.EnqueueWake) })
	s.Dequeue(a)
	assertPanics(t, "double dequeue", func() { s.Dequeue(a) })
}

func assertPanics(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestBalancePolicyStrings(t *testing.T) {
	cases := map[sched.BalancePolicy]string{
		sched.BalanceStandard:   "standard",
		sched.BalanceHPL:        "hpl",
		sched.BalanceHPLDynamic: "hpl-dynamic",
		sched.BalanceNone:       "none",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	h := &harness{}
	s, _ := newScheduler(h, sched.BalanceStandard)
	h.advance(sim.Second)

	// A wake preemption: CFS wakee far behind the running task.
	curr := newTask(1, task.Normal, 0)
	curr.CFS.VRuntime = uint64(100 * sim.Millisecond)
	s.Enqueue(0, curr, sched.EnqueuePutPrev)
	s.SetCurr(0, s.PickNext(0))
	w := newTask(2, task.Normal, 0)
	s.Enqueue(0, w, sched.EnqueueWake)
	if s.Stats().WakePreempts != 1 {
		t.Fatalf("WakePreempts = %d, want 1", s.Stats().WakePreempts)
	}

	// An idle pull.
	if !s.IdleBalance(5) {
		t.Fatal("idle balance failed")
	}
	if s.Stats().IdlePulls != 1 {
		t.Fatalf("IdlePulls = %d, want 1", s.Stats().IdlePulls)
	}

	// Periodic balance accounting.
	s.PeriodicBalance(3)
	if s.Stats().BalanceCalls == 0 {
		t.Fatal("periodic balance not counted")
	}
}
