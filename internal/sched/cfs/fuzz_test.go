package cfs_test

import (
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sched/cfs"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// FuzzQueueOps drives an arbitrary interleaving of enqueue, dequeue,
// pick-next, and exec-charge operations decoded from the fuzz input and
// cross-checks the CFS runqueue against a reference model: the set of
// queued tasks ordered by (vruntime, enqueue sequence). The class may
// rewrite a task's vruntime on enqueue (sleeper credit, fork placement), so
// the model records the post-enqueue value and verifies only the ordering
// contract: PickNext returns the FIFO-earliest task among those with the
// minimal vruntime, Queued tracks the model's size exactly, and wake/fork
// clamping never moves a task backwards. Under `-tags invariants` every
// mutation additionally runs the runqueue's structural checker.
func FuzzQueueOps(f *testing.F) {
	f.Add([]byte{0x00, 0x04, 0x08, 0x02, 0x02, 0x01})
	f.Add([]byte{0x10, 0x50, 0x90, 0xd0, 0x02, 0x06, 0x03})
	f.Add([]byte{0x00, 0x00, 0x00, 0x03, 0x03, 0x03, 0x02, 0x01, 0x02})
	f.Add([]byte{0xff, 0x7f, 0x80, 0x01, 0x02, 0x03, 0x04, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, c, _ := setup(cfs.DefaultTunables())
		const cpu = 0

		type ref struct {
			t   *task.Task
			vr  uint64 // vruntime at enqueue time (frozen while queued)
			seq int    // enqueue sequence, the FIFO tiebreak
		}
		var model []ref
		var running *task.Task
		nextID, seq := 1, 0

		enqueue := func(tk *task.Task, kind sched.WakeKind) {
			before := tk.CFS.VRuntime
			c.Enqueue(s, cpu, tk, kind)
			if kind != sched.EnqueueMove && tk.CFS.VRuntime < before {
				t.Fatalf("enqueue kind %v moved task %d backwards: %d -> %d",
					kind, tk.ID, before, tk.CFS.VRuntime)
			}
			model = append(model, ref{t: tk, vr: tk.CFS.VRuntime, seq: seq})
			seq++
		}
		// modelMin is the index PickNext must return: minimal vruntime,
		// FIFO on ties.
		modelMin := func() int {
			best := 0
			for i, r := range model[1:] {
				if r.vr < model[best].vr ||
					(r.vr == model[best].vr && r.seq < model[best].seq) {
					best = i + 1
				}
			}
			return best
		}
		check := func() {
			t.Helper()
			if got := c.Queued(s, cpu); got != len(model) {
				t.Fatalf("Queued = %d, model holds %d", got, len(model))
			}
		}

		for _, b := range data {
			switch b % 4 {
			case 0: // enqueue a fresh waking task
				tk := mkTask(nextID, int(b>>2)%40-20)
				nextID++
				tk.CFS.VRuntime = uint64(b) * 1_000_000
				enqueue(tk, sched.EnqueueWake)
			case 1: // enqueue a fresh forked task
				tk := mkTask(nextID, int(b>>2)%40-20)
				nextID++
				enqueue(tk, sched.EnqueueFork)
			case 2: // pick next; the previous runner goes back queued
				if running != nil {
					enqueue(running, sched.EnqueuePutPrev)
					running = nil
				}
				got := c.PickNext(s, cpu)
				if len(model) == 0 {
					if got != nil {
						t.Fatal("PickNext returned a task from an empty queue")
					}
					break
				}
				i := modelMin()
				if got != model[i].t {
					t.Fatalf("PickNext = task %d (vr %d), model expects task %d (vr %d, seq %d)",
						got.ID, got.CFS.VRuntime, model[i].t.ID, model[i].vr, model[i].seq)
				}
				model = append(model[:i], model[i+1:]...)
				running = got
			case 3: // charge the runner, or dequeue an arbitrary queued task
				if running != nil {
					c.ExecCharge(s, cpu, running, sim.Duration(b)*100*sim.Microsecond)
					break
				}
				if len(model) == 0 {
					break
				}
				i := int(b>>2) % len(model)
				c.Dequeue(s, cpu, model[i].t)
				model = append(model[:i], model[i+1:]...)
			}
			check()
		}
	})
}
