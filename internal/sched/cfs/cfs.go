// Package cfs implements the Completely Fair Scheduler class, the baseline
// the paper measures against. It follows the Linux 2.6.3x design: tasks are
// ordered by weighted virtual runtime on a red-black tree, sleepers receive
// a bounded credit when they wake, the woken task preempts the running one
// when it is sufficiently far behind, and tick-driven preemption enforces a
// fair timeslice.
//
// The behaviours the paper blames for OS noise all live here: a daemon that
// wakes after a long sleep is placed ahead of the running HPC task and
// preempts it, and the load balancer treats daemons and HPC ranks alike.
package cfs

import (
	"hplsim/internal/invariant"
	"hplsim/internal/rbtree"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// nice -20 .. +19 mapped to load weights; nice 0 = 1024. This is the
// kernel's prio_to_weight table: each nice step is a ~1.25x weight change.
var niceToWeight = [40]int64{
	88761, 71755, 56483, 46273, 36291,
	29154, 23254, 18705, 14949, 11916,
	9548, 7620, 6100, 4904, 3906,
	3121, 2501, 1991, 1586, 1277,
	1024, 820, 655, 526, 423,
	335, 272, 215, 172, 137,
	110, 87, 70, 56, 45,
	36, 29, 23, 18, 15,
}

const nice0Weight = 1024

// WeightOf returns the CFS load weight for a nice value (clamped).
func WeightOf(nice int) int64 {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return niceToWeight[nice+20]
}

// Tunables are the CFS knobs, mirroring the sched_* sysctls.
type Tunables struct {
	// Latency is the scheduling period: every runnable task should get
	// a slice within this span.
	Latency sim.Duration
	// MinGranularity is the smallest slice a task is given.
	MinGranularity sim.Duration
	// WakeupGranularity limits wakeup preemption: the wakee must be at
	// least this far behind the running task in virtual time.
	WakeupGranularity sim.Duration
	// SleeperCredit is the maximum vruntime bonus granted to a waking
	// sleeper (GENTLE_FAIR_SLEEPERS uses latency/2).
	SleeperCredit sim.Duration
}

// DefaultTunables mirrors a 2.6.3x kernel on an 8-CPU machine.
func DefaultTunables() Tunables {
	return Tunables{
		Latency:           18 * sim.Millisecond,
		MinGranularity:    2250 * sim.Microsecond,
		WakeupGranularity: 3 * sim.Millisecond,
		SleeperCredit:     9 * sim.Millisecond,
	}
}

// runqueue is the per-CPU CFS state.
type runqueue struct {
	tree        rbtree.Tree[*task.Task]
	minVruntime uint64
	// weight is the total load weight of queued tasks (used for slice
	// computation together with the running task's weight).
	weight int64
	// lastMin is written only by invariant builds: the minVruntime value
	// observed by the previous structural check, used to verify the
	// never-decreases contract of min_vruntime.
	lastMin uint64
}

// Class is the CFS scheduling class. One instance serves all CPUs.
type Class struct {
	tun Tunables
	rqs []runqueue
}

// New returns a CFS class for nCPUs.
func New(nCPUs int, tun Tunables) *Class {
	return &Class{tun: tun, rqs: make([]runqueue, nCPUs)}
}

// Name implements sched.Class.
func (c *Class) Name() string { return "cfs" }

// Handles implements sched.Class.
func (c *Class) Handles(p task.Policy) bool { return p == task.Normal }

// calcDelta converts an execution time to vruntime for the given weight.
func calcDelta(d sim.Duration, weight int64) uint64 {
	return uint64(d) * nice0Weight / uint64(weight)
}

func (rq *runqueue) updateMin(vr uint64) {
	if vr > rq.minVruntime {
		rq.minVruntime = vr
	}
}

// Enqueue implements sched.Class.
func (c *Class) Enqueue(s *sched.Scheduler, cpu int, t *task.Task, kind sched.WakeKind) {
	rq := &c.rqs[cpu]
	if t.CFS.Weight == 0 {
		t.CFS.Weight = WeightOf(t.Nice)
	}
	switch kind {
	case sched.EnqueueWake:
		// Sleeper fairness: a waking task is placed at most
		// SleeperCredit behind the queue minimum. Without the clamp a
		// long sleeper would monopolise the CPU; with it, it still
		// preempts and runs ahead for up to the credit, which is
		// exactly the noise mechanism in Section IV.
		credit := calcDelta(c.tun.SleeperCredit, nice0Weight)
		floor := uint64(0)
		if rq.minVruntime > credit {
			floor = rq.minVruntime - credit
		}
		if t.CFS.VRuntime < floor {
			t.CFS.VRuntime = floor
		}
	case sched.EnqueueFork:
		// A child starts at the queue minimum: no credit, no penalty.
		if t.CFS.VRuntime < rq.minVruntime {
			t.CFS.VRuntime = rq.minVruntime
		}
	case sched.EnqueueMove:
		// Migration: the stealer normalised vruntime to be relative;
		// rebase onto this queue.
		t.CFS.VRuntime += rq.minVruntime
	case sched.EnqueuePutPrev:
		// Keep vruntime as accrued.
	}
	t.CFS.Node = rq.tree.Insert(t.CFS.VRuntime, t)
	rq.weight += t.CFS.Weight
	if invariant.Enabled {
		c.checkRq(cpu)
	}
}

// Dequeue implements sched.Class.
func (c *Class) Dequeue(s *sched.Scheduler, cpu int, t *task.Task) {
	rq := &c.rqs[cpu]
	rq.tree.Remove(t.CFS.Node)
	t.CFS.Node = nil
	rq.weight -= t.CFS.Weight
	if invariant.Enabled {
		c.checkRq(cpu)
	}
}

// PickNext implements sched.Class: leftmost task on the timeline.
func (c *Class) PickNext(s *sched.Scheduler, cpu int) *task.Task {
	rq := &c.rqs[cpu]
	n := rq.tree.Min()
	if n == nil {
		return nil
	}
	t := n.Value
	c.Dequeue(s, cpu, t)
	rq.updateMin(t.CFS.VRuntime)
	t.CFS.SliceStart = t.CFS.VRuntime
	return t
}

// ExecCharge implements sched.Class: advance vruntime by the weighted delta
// and ratchet the queue minimum.
func (c *Class) ExecCharge(s *sched.Scheduler, cpu int, t *task.Task, delta sim.Duration) {
	rq := &c.rqs[cpu]
	t.CFS.VRuntime += calcDelta(delta, t.CFS.Weight)
	// min_vruntime tracks the smaller of the running task and the
	// leftmost queued task, and never decreases.
	minvr := t.CFS.VRuntime
	if n := rq.tree.Min(); n != nil && n.Key() < minvr {
		minvr = n.Key()
	}
	rq.updateMin(minvr)
	c.checkRq(cpu)
}

// ReplayTicks implements sched.TickBatcher. A quiescent tick is ExecCharge
// plus a Tick whose preemption checks come out false, so m ticks reduce to
// m vruntime charges. calcDelta is a pure function of the constant
// (dt, weight), so m identical integer additions collapse to one multiply
// exactly; the min-vruntime ratchet is fed a nondecreasing sequence, so
// only the final value matters. Both preemption conditions are monotone in
// the running task's vruntime with the queue frozen (elided ticks never
// enqueue), so checking them once against the final vruntime sees
// everything a per-tick check would have seen: if any elided tick should
// have preempted, the NextDecision bound was wrong — fail loud, exactly as
// the kernel's replay reschedule panic would have.
func (c *Class) ReplayTicks(s *sched.Scheduler, cpu int, t *task.Task, dt sim.Duration, m int64) bool {
	rq := &c.rqs[cpu]
	t.CFS.VRuntime += uint64(m) * calcDelta(dt, t.CFS.Weight)
	n := rq.tree.Min()
	if n == nil {
		rq.updateMin(t.CFS.VRuntime)
		c.checkRq(cpu)
		return true
	}
	minvr := t.CFS.VRuntime
	if n.Key() < minvr {
		minvr = n.Key()
	}
	rq.updateMin(minvr)
	ran := t.CFS.VRuntime - t.CFS.SliceStart
	gran := calcDelta(c.tun.WakeupGranularity, nice0Weight)
	if ran >= c.slice(rq, t) || n.Key()+gran < t.CFS.VRuntime {
		panic("cfs: elided tick crossed a preemption decision (NextDecision bound too late)")
	}
	c.checkRq(cpu)
	return true
}

// slice returns the running task's fair slice in vruntime units, given the
// queue state: latency shared by weight, floored at the minimum granularity.
func (c *Class) slice(rq *runqueue, t *task.Task) uint64 {
	total := rq.weight + t.CFS.Weight
	wall := sim.Duration(int64(c.tun.Latency) * t.CFS.Weight / total)
	if wall < c.tun.MinGranularity {
		wall = c.tun.MinGranularity
	}
	return calcDelta(wall, t.CFS.Weight)
}

// Tick implements sched.Class: preempt the running task once it has used
// its slice and someone is waiting.
func (c *Class) Tick(s *sched.Scheduler, cpu int, t *task.Task) {
	rq := &c.rqs[cpu]
	if rq.tree.Len() == 0 {
		return
	}
	ran := t.CFS.VRuntime - t.CFS.SliceStart
	if ran >= c.slice(rq, t) {
		s.Resched(cpu)
		return
	}
	// Also preempt if the leftmost waiter has fallen far behind the
	// running task (it may have been placed there by sleeper credit
	// after the last wakeup check).
	if n := rq.tree.Min(); n != nil {
		gran := calcDelta(c.tun.WakeupGranularity, nice0Weight)
		if n.Key()+gran < t.CFS.VRuntime {
			s.Resched(cpu)
		}
	}
}

// CheckPreempt implements sched.Class: the wakee preempts when its vruntime
// is more than the wakeup granularity behind the running task's.
func (c *Class) CheckPreempt(s *sched.Scheduler, cpu int, curr, w *task.Task) bool {
	gran := calcDelta(c.tun.WakeupGranularity, nice0Weight)
	return w.CFS.VRuntime+gran < curr.CFS.VRuntime
}

// wallFor lower-bounds the wall time the running task needs to accrue vr of
// vruntime: the exact inverse of calcDelta rounded down, so the resulting
// decision bound errs early (harmless) rather than late. Gaps are capped to
// keep the multiplication far from uint64 overflow; a capped gap only makes
// the bound earlier.
func wallFor(vr uint64, weight int64) sim.Duration {
	const maxGap = 1 << 42
	if vr > maxGap {
		vr = maxGap
	}
	return sim.Duration(vr * uint64(weight) / nice0Weight)
}

// NextDecision implements sched.Class. Tick preempts a running CFS task in
// two cases, both monotone in its vruntime: it has used its fair slice, or
// the leftmost waiter has fallen more than the wakeup granularity behind.
// With an empty timeline neither can fire, so a lone CFS task never decides
// at a tick. Because vruntime accrued by instant x is at most
// calcDelta(x - anchor, weight), converting the remaining vruntime gap back
// to wall time bounds the decision from below.
func (c *Class) NextDecision(s *sched.Scheduler, cpu int, t *task.Task, anchor sim.Time) sim.Time {
	rq := &c.rqs[cpu]
	if rq.tree.Len() == 0 {
		return sim.Infinity
	}
	weight := t.CFS.Weight
	if weight == 0 {
		weight = WeightOf(t.Nice)
	}
	// Slice exhaustion: ran >= slice.
	ran := t.CFS.VRuntime - t.CFS.SliceStart
	need := c.slice(rq, t)
	d := anchor
	if ran < need {
		d = anchor.Add(wallFor(need-ran, weight))
	}
	// Leftmost waiter lag: min.Key() + gran < VRuntime.
	gran := calcDelta(c.tun.WakeupGranularity, nice0Weight)
	limit := rq.tree.Min().Key() + gran
	if t.CFS.VRuntime <= limit {
		lag := anchor.Add(wallFor(limit+1-t.CFS.VRuntime, weight))
		if lag < d {
			return lag
		}
		return d
	}
	return anchor
}

// Queued implements sched.Class.
func (c *Class) Queued(s *sched.Scheduler, cpu int) int {
	return c.rqs[cpu].tree.Len()
}

// StealFrom implements sched.Class: take one queued task allowed to run on
// `to`, preferring the one that has waited longest (leftmost). Its vruntime
// is normalised relative to the source queue; Enqueue(EnqueueMove) rebases
// it at the destination.
func (c *Class) StealFrom(s *sched.Scheduler, from, to int) *task.Task {
	rq := &c.rqs[from]
	for n := rq.tree.Min(); n != nil; n = n.Next() {
		t := n.Value
		if !t.Affinity.Has(to) || !s.CanMigrate(t) {
			continue
		}
		c.Dequeue(s, from, t)
		if t.CFS.VRuntime > rq.minVruntime {
			t.CFS.VRuntime -= rq.minVruntime
		} else {
			t.CFS.VRuntime = 0
		}
		return t
	}
	return nil
}

// SelectCPU implements sched.Class.
func (c *Class) SelectCPU(s *sched.Scheduler, t *task.Task, origin int, kind sched.WakeKind) int {
	if kind == sched.EnqueueFork {
		return c.selectFork(s, t)
	}
	return c.selectWake(s, t, origin)
}

// selectFork spreads new tasks onto the least-loaded allowed CPU, breaking
// ties randomly: this reflects the arrival-order dependence of real fork
// balancing and is a deliberate source of run-to-run placement variance in
// the standard-Linux configuration.
func (c *Class) selectFork(s *sched.Scheduler, t *task.Task) int {
	best, bestLoad, nties := -1, int(^uint(0)>>1), 0
	t.Affinity.ForEach(func(cpu int) {
		load := s.NrRunnable(cpu)
		switch {
		case load < bestLoad:
			best, bestLoad, nties = cpu, load, 1
		case load == bestLoad:
			nties++
			if s.RNG().Intn(nties) == 0 {
				best = cpu
			}
		}
	})
	if best < 0 {
		return t.Affinity.First()
	}
	return best
}

// selectWake prefers the previous CPU (cache affinity) unless it is busy
// and an idle CPU exists nearby: first the SMT siblings, then the chip.
func (c *Class) selectWake(s *sched.Scheduler, t *task.Task, prev int) int {
	if !t.Affinity.Has(prev) {
		prev = t.Affinity.First()
	}
	if s.NrRunnable(prev) == 0 {
		return prev
	}
	// The spans are cached on the scheduler and the idle lookup is a word
	// scan over the busy bitmap, so a wakeup on a wide node costs O(words),
	// not O(chip size), and allocates nothing.
	if cpu := s.FirstIdleIn(s.SiblingSpan(prev), t.Affinity, prev); cpu >= 0 {
		return cpu
	}
	if cpu := s.FirstIdleIn(s.ChipSpan(prev), t.Affinity, prev); cpu >= 0 {
		return cpu
	}
	return prev
}
