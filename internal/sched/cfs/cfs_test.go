package cfs_test

import (
	"testing"
	"testing/quick"

	"hplsim/internal/sched"
	"hplsim/internal/sched/cfs"
	"hplsim/internal/sched/hpc"
	"hplsim/internal/sched/idleclass"
	"hplsim/internal/sched/rt"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

type harness struct {
	now     sim.Time
	resched []int
}

func (h *harness) Resched(cpu int)                     { h.resched = append(h.resched, cpu) }
func (h *harness) Migrated(t *task.Task, from, to int) {}
func (h *harness) timer(d sim.Duration, fn func())     {}
func setup(tun cfs.Tunables) (*sched.Scheduler, *cfs.Class, *harness) {
	h := &harness{}
	tp := topo.POWER6()
	n := tp.NumCPUs()
	c := cfs.New(n, tun)
	idle := idleclass.New(n)
	s := sched.New(sched.Config{
		Topo:    tp,
		Classes: []sched.Class{rt.New(n), hpc.New(n), c, idle},
		Hooks:   h,
		Policy:  sched.BalanceStandard,
		RNG:     sim.NewRNG(2),
		Now:     func() sim.Time { return h.now },
		Timer:   h.timer,
	})
	for cpu := 0; cpu < n; cpu++ {
		t := &task.Task{ID: 1000 + cpu, Policy: task.Idle, State: task.Running,
			CPU: cpu, Affinity: topo.MaskOf(cpu)}
		idle.SetIdleTask(cpu, t)
		s.SetCurr(cpu, t)
	}
	return s, c, h
}

func mkTask(id, nice int) *task.Task {
	return &task.Task{ID: id, Policy: task.Normal, Nice: nice,
		State: task.Runnable, Affinity: topo.MaskAll(8)}
}

func TestWeightTable(t *testing.T) {
	if cfs.WeightOf(0) != 1024 {
		t.Fatalf("nice 0 weight = %d, want 1024", cfs.WeightOf(0))
	}
	if cfs.WeightOf(-20) != 88761 || cfs.WeightOf(19) != 15 {
		t.Fatal("weight table extremes wrong")
	}
	// Clamping.
	if cfs.WeightOf(-100) != 88761 || cfs.WeightOf(100) != 15 {
		t.Fatal("weight clamping broken")
	}
	// Each nice step is ~1.25x.
	for n := -20; n < 19; n++ {
		ratio := float64(cfs.WeightOf(n)) / float64(cfs.WeightOf(n+1))
		if ratio < 1.15 || ratio > 1.35 {
			t.Fatalf("weight ratio at nice %d = %.3f, want ~1.25", n, ratio)
		}
	}
}

func TestPickLowestVruntime(t *testing.T) {
	s, c, _ := setup(cfs.DefaultTunables())
	a, b := mkTask(1, 0), mkTask(2, 0)
	a.CFS.VRuntime = 500
	b.CFS.VRuntime = 100
	c.Enqueue(s, 0, a, sched.EnqueuePutPrev)
	c.Enqueue(s, 0, b, sched.EnqueuePutPrev)
	if got := c.PickNext(s, 0); got != b {
		t.Fatalf("PickNext = %v, want lowest-vruntime task", got)
	}
}

func TestSleeperCreditBounded(t *testing.T) {
	tun := cfs.DefaultTunables()
	s, c, _ := setup(tun)
	// Establish a high min_vruntime by charging a runner.
	runner := mkTask(1, 0)
	c.Enqueue(s, 0, runner, sched.EnqueueWake)
	r := c.PickNext(s, 0)
	s.SetCurr(0, r)
	c.ExecCharge(s, 0, r, 10*sim.Second)

	// A task that slept "forever" (vruntime 0) is clamped to
	// min_vruntime - SleeperCredit, not to its stale vruntime.
	sleeper := mkTask(2, 0)
	sleeper.CFS.VRuntime = 0
	c.Enqueue(s, 0, sleeper, sched.EnqueueWake)
	min := r.CFS.VRuntime - uint64(tun.SleeperCredit)
	if sleeper.CFS.VRuntime < min-1000 || sleeper.CFS.VRuntime > r.CFS.VRuntime {
		t.Fatalf("sleeper vruntime %d not within credit of runner %d",
			sleeper.CFS.VRuntime, r.CFS.VRuntime)
	}
}

func TestVruntimeWeighting(t *testing.T) {
	s, c, _ := setup(cfs.DefaultTunables())
	heavy, light := mkTask(1, -20), mkTask(2, 19)
	c.Enqueue(s, 0, heavy, sched.EnqueueWake)
	c.Enqueue(s, 1, light, sched.EnqueueWake)
	h1 := c.PickNext(s, 0)
	l1 := c.PickNext(s, 1)
	c.ExecCharge(s, 0, h1, 100*sim.Millisecond)
	c.ExecCharge(s, 1, l1, 100*sim.Millisecond)
	// Same wall time: the heavy task's vruntime advances ~87x slower
	// than nice 0; the light task ~68x faster.
	if h1.CFS.VRuntime >= l1.CFS.VRuntime/1000 {
		t.Fatalf("weighting wrong: heavy=%d light=%d",
			h1.CFS.VRuntime, l1.CFS.VRuntime)
	}
}

func TestWakeupPreemptionGranularity(t *testing.T) {
	tun := cfs.DefaultTunables()
	s, c, _ := setup(tun)
	curr := mkTask(1, 0)
	curr.CFS.Weight = cfs.WeightOf(0)
	curr.CFS.VRuntime = uint64(100 * sim.Millisecond)

	// A wakee just barely behind: no preemption.
	near := mkTask(2, 0)
	near.CFS.Weight = cfs.WeightOf(0)
	near.CFS.VRuntime = curr.CFS.VRuntime - uint64(tun.WakeupGranularity)/2
	if c.CheckPreempt(s, 0, curr, near) {
		t.Fatal("wakee within granularity preempted")
	}
	// A wakee far behind: preempt.
	far := mkTask(3, 0)
	far.CFS.Weight = cfs.WeightOf(0)
	far.CFS.VRuntime = curr.CFS.VRuntime - uint64(2*tun.WakeupGranularity)
	if !c.CheckPreempt(s, 0, curr, far) {
		t.Fatal("wakee beyond granularity did not preempt")
	}
}

func TestTickSliceExpiry(t *testing.T) {
	s, c, h := setup(cfs.DefaultTunables())
	a, b := mkTask(1, 0), mkTask(2, 0)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	c.Enqueue(s, 0, b, sched.EnqueueWake)
	curr := c.PickNext(s, 0)
	s.SetCurr(0, curr)

	h.resched = nil
	// Before the slice is up: no resched.
	c.ExecCharge(s, 0, curr, sim.Millisecond)
	c.Tick(s, 0, curr)
	if len(h.resched) != 0 {
		t.Fatal("tick preempted before slice expiry")
	}
	// Burn well past the fair slice.
	c.ExecCharge(s, 0, curr, 50*sim.Millisecond)
	c.Tick(s, 0, curr)
	if len(h.resched) == 0 {
		t.Fatal("tick did not preempt after slice expiry")
	}
}

func TestTickAloneNeverPreempts(t *testing.T) {
	s, c, h := setup(cfs.DefaultTunables())
	a := mkTask(1, 0)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	curr := c.PickNext(s, 0)
	s.SetCurr(0, curr)
	c.ExecCharge(s, 0, curr, 10*sim.Second)
	h.resched = nil
	c.Tick(s, 0, curr)
	if len(h.resched) != 0 {
		t.Fatal("lone task preempted by tick")
	}
}

func TestStealNormalizesVruntime(t *testing.T) {
	s, c, _ := setup(cfs.DefaultTunables())
	// CPU 0 has a high min_vruntime; CPU 1 is fresh.
	runner := mkTask(1, 0)
	c.Enqueue(s, 0, runner, sched.EnqueueWake)
	r := c.PickNext(s, 0)
	s.SetCurr(0, r)
	c.ExecCharge(s, 0, r, 5*sim.Second)

	victim := mkTask(2, 0)
	c.Enqueue(s, 0, victim, sched.EnqueueWake)
	vr0 := victim.CFS.VRuntime

	stolen := c.StealFrom(s, 0, 1)
	if stolen != victim {
		t.Fatalf("StealFrom = %v, want victim", stolen)
	}
	c.Enqueue(s, 1, stolen, sched.EnqueueMove)
	// On the fresh queue the task must not carry five seconds of
	// vruntime debt or credit.
	if stolen.CFS.VRuntime > vr0 {
		t.Fatalf("vruntime grew across migration: %d -> %d", vr0, stolen.CFS.VRuntime)
	}
}

func TestStealRespectsAffinity(t *testing.T) {
	s, c, _ := setup(cfs.DefaultTunables())
	a := mkTask(1, 0)
	a.Affinity = topo.MaskOf(0)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	if got := c.StealFrom(s, 0, 1); got != nil {
		t.Fatalf("stole affinity-pinned task %v", got)
	}
}

func TestSelectForkSpreads(t *testing.T) {
	s, c, _ := setup(cfs.DefaultTunables())
	used := map[int]bool{}
	for i := 0; i < 8; i++ {
		tk := mkTask(10+i, 0)
		cpu := c.SelectCPU(s, tk, 0, sched.EnqueueFork)
		c.Enqueue(s, cpu, tk, sched.EnqueueFork)
		used[cpu] = true
	}
	if len(used) != 8 {
		t.Fatalf("8 forks used %d CPUs, want 8", len(used))
	}
}

func TestSelectWakePrefersIdlePrev(t *testing.T) {
	s, c, _ := setup(cfs.DefaultTunables())
	tk := mkTask(1, 0)
	if got := c.SelectCPU(s, tk, 4, sched.EnqueueWake); got != 4 {
		t.Fatalf("wake to idle prev = %d, want 4", got)
	}
	// Busy prev with an idle SMT sibling: go to the sibling.
	busy := mkTask(2, 0)
	c.Enqueue(s, 4, busy, sched.EnqueueWake)
	if got := c.SelectCPU(s, tk, 4, sched.EnqueueWake); got != 5 {
		t.Fatalf("wake with busy prev = %d, want sibling 5", got)
	}
}

func TestQueuedCount(t *testing.T) {
	s, c, _ := setup(cfs.DefaultTunables())
	check := func(n uint8) bool {
		cnt := int(n % 16)
		tasks := make([]*task.Task, cnt)
		for i := range tasks {
			tasks[i] = mkTask(100+i, 0)
			c.Enqueue(s, 2, tasks[i], sched.EnqueueWake)
		}
		ok := c.Queued(s, 2) == cnt
		for _, tk := range tasks {
			c.Dequeue(s, 2, tk)
		}
		return ok && c.Queued(s, 2) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHandlesOnlyNormal(t *testing.T) {
	_, c, _ := setup(cfs.DefaultTunables())
	if !c.Handles(task.Normal) {
		t.Fatal("cfs does not handle Normal")
	}
	for _, p := range []task.Policy{task.FIFO, task.RR, task.HPC, task.Idle} {
		if c.Handles(p) {
			t.Fatalf("cfs handles %v", p)
		}
	}
	if c.Name() != "cfs" {
		t.Fatal("name wrong")
	}
}
