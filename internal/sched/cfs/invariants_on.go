//go:build invariants

package cfs

import (
	"hplsim/internal/invariant"
	"hplsim/internal/rbtree"
	"hplsim/internal/task"
)

// checkRq verifies the CFS runqueue contract for one CPU after a mutation:
// the cached total weight equals the sum over queued tasks, every queued
// task's timeline node and the tree agree (node points back at the task,
// the node key is the task's vruntime, nr_running bookkeeping matches the
// tree population), and min_vruntime never moves backwards. Compiled in
// only under the invariants build tag.
func (c *Class) checkRq(cpu int) {
	rq := &c.rqs[cpu]
	invariant.Check(rq.minVruntime >= rq.lastMin,
		"cfs: cpu %d min_vruntime went backwards: %d after %d", cpu, rq.minVruntime, rq.lastMin)
	rq.lastMin = rq.minVruntime

	var weight int64
	count := 0
	rq.tree.Walk(func(n *rbtree.Node[*task.Task]) {
		t := n.Value
		invariant.Check(t.CFS.Node == n,
			"cfs: cpu %d queued task %d does not point at its timeline node", cpu, t.ID)
		invariant.Check(n.Key() == t.CFS.VRuntime,
			"cfs: cpu %d task %d queued under key %d but vruntime is %d",
			cpu, t.ID, n.Key(), t.CFS.VRuntime)
		weight += t.CFS.Weight
		count++
	})
	invariant.Check(count == rq.tree.Len(),
		"cfs: cpu %d tree reports %d tasks but walk visited %d (nr_running disagreement)",
		cpu, rq.tree.Len(), count)
	invariant.Check(weight == rq.weight,
		"cfs: cpu %d queue weight is %d but queued tasks sum to %d", cpu, rq.weight, weight)
}
