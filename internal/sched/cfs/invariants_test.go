//go:build invariants

package cfs

import (
	"testing"

	"hplsim/internal/invariant"
	"hplsim/internal/sched"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

func expectViolation(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted runqueue passed checkRq")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("expected invariant.Violation, got %v", r)
		}
	}()
	fn()
}

func newTask(id int, vr uint64) *task.Task {
	return &task.Task{ID: id, Policy: task.Normal, State: task.Runnable,
		Affinity: topo.MaskAll(1), CFS: task.CFSEntity{VRuntime: vr}}
}

// enqueue drives the class directly; the *sched.Scheduler receiver is unused
// by the CFS enqueue path.
func enqueue(c *Class, cpu int, t *task.Task) {
	c.Enqueue((*sched.Scheduler)(nil), cpu, t, sched.EnqueuePutPrev)
}

func TestCorruptWeight(t *testing.T) {
	c := New(1, DefaultTunables())
	enqueue(c, 0, newTask(1, 100))
	c.rqs[0].weight += 512
	expectViolation(t, func() { enqueue(c, 0, newTask(2, 200)) })
}

func TestCorruptMinVruntimeBackwards(t *testing.T) {
	c := New(1, DefaultTunables())
	enqueue(c, 0, newTask(1, 100))
	c.rqs[0].updateMin(5000)
	enqueue(c, 0, newTask(2, 6000))
	c.rqs[0].minVruntime = 10 // ratchet forced backwards
	expectViolation(t, func() { enqueue(c, 0, newTask(3, 7000)) })
}

func TestCorruptNodeBacklink(t *testing.T) {
	c := New(1, DefaultTunables())
	tk := newTask(1, 100)
	enqueue(c, 0, tk)
	tk.CFS.Node = nil // task no longer points at its timeline node
	expectViolation(t, func() { enqueue(c, 0, newTask(2, 200)) })
}

func TestCleanQueuePasses(t *testing.T) {
	c := New(2, DefaultTunables())
	for i := 0; i < 8; i++ {
		enqueue(c, i%2, newTask(i, uint64(1000*i)))
	}
	for cpu := 0; cpu < 2; cpu++ {
		c.checkRq(cpu)
	}
}
