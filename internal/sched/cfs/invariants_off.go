//go:build !invariants

package cfs

// checkRq is a no-op in normal builds; see invariants_on.go.
func (c *Class) checkRq(cpu int) {}
