//go:build invariants

package sched

import (
	"hplsim/internal/invariant"
	"hplsim/internal/task"
)

// CheckInvariants verifies the scheduler-core contract: the class chain is
// ordered RT before HPC before Normal before Idle (the ordering IS the
// priority model — a lower-priority class must never shadow a higher one),
// every policy is handled, and the idle class sits at the end of the chain.
// Compiled in only under the invariants build tag; the kernel calls it from
// its own invariant sweep.
func (s *Scheduler) CheckInvariants() {
	order := []task.Policy{task.FIFO, task.RR, task.HPC, task.Normal, task.Idle}
	prev := -1
	prevPolicy := task.Policy(0)
	for _, p := range order {
		i := s.classIndex(p) // panics if no class handles p
		invariant.Check(i >= prev,
			"sched: class chain inverted: policy %v (class %d) ranks above %v (class %d)",
			p, i, prevPolicy, prev)
		prev, prevPolicy = i, p
	}
	invariant.Check(s.classes[len(s.classes)-1].Handles(task.Idle),
		"sched: last class %q does not handle the idle policy", s.classes[len(s.classes)-1].Name())

	// The busy/queued occupancy bitmaps must agree with a from-scratch
	// recomputation: every word scan in the balancing hot paths trusts
	// them, so a stale bit would silently change scheduling decisions.
	for cpu := range s.curr {
		w, bit := cpu>>6, uint64(1)<<uint(cpu&63)
		q := s.NrQueued(cpu)
		invariant.Check(s.queued[w]&bit != 0 == (q > 0),
			"sched: queued bitmap stale on cpu %d: bit=%v, NrQueued=%d",
			cpu, s.queued[w]&bit != 0, q)
		r := q
		if c := s.curr[cpu]; c != nil && c.Policy != task.Idle {
			r++
		}
		invariant.Check(s.busy[w]&bit != 0 == (r > 0),
			"sched: busy bitmap stale on cpu %d: bit=%v, runnable=%d",
			cpu, s.busy[w]&bit != 0, r)
	}
}
