//go:build !invariants

package sched

// CheckInvariants is a no-op in normal builds; see invariants_on.go.
func (s *Scheduler) CheckInvariants() {}
