package sched

import "hplsim/internal/task"

// Class accounting buckets, in the priority order of the standard chain
// (RT > HPC > CFS > Idle). They give observability layers a dense index for
// per-class counters without holding a Scheduler, and their names match the
// Class.Name() strings of the standard classes.
const (
	ClassRT = iota
	ClassHPC
	ClassCFS
	ClassIdle
	NumClasses
)

// ClassIndexFor maps a task policy to its accounting bucket.
func ClassIndexFor(p task.Policy) int {
	switch p {
	case task.FIFO, task.RR:
		return ClassRT
	case task.HPC:
		return ClassHPC
	case task.Idle:
		return ClassIdle
	default:
		return ClassCFS
	}
}

// ClassName reports the canonical name of an accounting bucket.
func ClassName(i int) string {
	switch i {
	case ClassRT:
		return "rt"
	case ClassHPC:
		return "hpc"
	case ClassCFS:
		return "cfs"
	case ClassIdle:
		return "idle"
	default:
		return "?"
	}
}

// ClassNameFor reports the canonical class name for a policy.
func ClassNameFor(p task.Policy) string { return ClassName(ClassIndexFor(p)) }
