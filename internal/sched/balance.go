package sched

import (
	"math/bits"

	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// Stats are the scheduler's /proc/schedstat-style counters: how often the
// balancer looked, how often it moved something, and why. They complement
// the kernel's perf counters with decision-level visibility.
type Stats struct {
	// BalanceCalls counts periodic-balance passes (per CPU per domain).
	BalanceCalls uint64
	// BalancePulls counts tasks moved by periodic balancing.
	BalancePulls uint64
	// IdlePulls counts tasks pulled by a CPU entering idle.
	IdlePulls uint64
	// IdlePushes counts tasks pushed to an idle CPU by a busy one.
	IdlePushes uint64
	// SmallImbalanceSkips counts one-task imbalances left alone.
	SmallImbalanceSkips uint64
	// CooldownSkips counts steals refused because the candidate had
	// migrated too recently.
	CooldownSkips uint64
	// WakePreempts counts wakeups that preempted a running task.
	WakePreempts uint64
}

// Stats returns a snapshot of the scheduler's decision counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// MigrationCooldown is how long a freshly migrated task is considered
// cache-hot and exempt from further balancing, preventing a starved queued
// task from ping-ponging between equally loaded CPUs.
const MigrationCooldown = 60 * sim.Millisecond

// CanMigrate reports whether the balancer may move t now. A task that has
// never been migrated is always movable.
func (s *Scheduler) CanMigrate(t *task.Task) bool {
	ok := t.LastMigrated == 0 || s.now().Sub(t.LastMigrated) >= MigrationCooldown
	if !ok {
		s.stats.CooldownSkips++
	}
	return ok
}

// Balance intervals per domain level. Inner domains are balanced more often
// than outer ones, as in the kernel (where the interval roughly doubles per
// level).
func balanceInterval(level topo.DomainLevel) sim.Duration {
	switch level {
	case topo.SMTLevel:
		return 16 * sim.Millisecond
	case topo.CoreLevel:
		return 32 * sim.Millisecond
	default:
		return 64 * sim.Millisecond
	}
}

// PeriodicBalance runs the per-CPU periodic load balancer. The kernel calls
// it from the tick path. For each domain whose interval has expired, the CPU
// looks for the busiest CPU in the span and pulls one queued task if the
// imbalance is at least two runnable tasks (moving one then strictly reduces
// the imbalance). This reproduces the behaviour the paper criticises: the
// balancer counts *runnable tasks* and "does not distinguish between the
// parallel application and the rest of the user and kernel daemons".
func (s *Scheduler) PeriodicBalance(cpu int) {
	if !s.balancingEnabled() {
		return
	}
	now := s.now()
	for i, dom := range s.domains[cpu] {
		if now < s.nextBalance[cpu][i] {
			continue
		}
		// Re-arm with a small deterministic stagger so CPUs don't
		// balance in lockstep; failed attempts back off exponentially
		// (up to 8x) as the kernel's balance_interval doubling does.
		s.stats.BalanceCalls++
		moved := s.balanceDomain(cpu, dom, false)
		if moved {
			s.stats.BalancePulls++
		} else if s.pushToIdle(cpu, dom) {
			moved = true
			s.stats.IdlePushes++
		}
		if moved {
			s.backoff[cpu][i] = 1
		} else if s.backoff[cpu][i] < 8 {
			s.backoff[cpu][i] *= 2
		}
		interval := balanceInterval(dom.Level) * sim.Duration(s.backoff[cpu][i])
		jitter := sim.Duration(s.rng.Int63n(int64(sim.Millisecond)))
		s.nextBalance[cpu][i] = now.Add(interval + jitter)
	}
}

// pushToIdle moves one of cpu's queued tasks to an idle CPU in the domain.
// Idle CPUs are tickless in this model, so the busy side must initiate the
// move (the analogue of the kernel balancing on behalf of idle CPUs).
func (s *Scheduler) pushToIdle(cpu int, dom topo.Domain) bool {
	if s.NrQueued(cpu) == 0 {
		return false
	}
	target := -1
	if s.naiveScan {
		dom.Span.ForEach(func(other int) {
			if target < 0 && other != cpu && s.NrRunnable(other) == 0 {
				target = other
			}
		})
	} else {
		// The busy bitmap inverts to exactly the NrRunnable==0 set, so the
		// first idle CPU falls out of a word scan: O(words), not O(span).
		for w, nw := 0, dom.Span.NumWords(); w < nw; w++ {
			v := dom.Span.Word(w) &^ s.busy[w]
			if w == cpu>>6 {
				v &^= 1 << uint(cpu&63)
			}
			if v != 0 {
				target = w*64 + bits.TrailingZeros64(v)
				break
			}
		}
	}
	if target < 0 {
		return false
	}
	return s.pullOne(cpu, target)
}

// IdleBalance runs when cpu is about to go idle: it immediately tries to
// pull work from the busiest CPU of each domain, innermost first. It
// reports whether a task was pulled.
func (s *Scheduler) IdleBalance(cpu int) bool {
	if !s.balancingEnabled() {
		return false
	}
	for _, dom := range s.domains[cpu] {
		if s.balanceDomain(cpu, dom, true) {
			s.stats.IdlePulls++
			return true
		}
	}
	return false
}

// balanceDomain finds the busiest CPU in the domain and pulls one task to
// cpu if the imbalance warrants it. Reports whether a task moved.
func (s *Scheduler) balanceDomain(cpu int, dom topo.Domain, idle bool) bool {
	myLoad := s.NrRunnable(cpu)
	busiest, busiestLoad := -1, myLoad
	if s.naiveScan {
		dom.Span.ForEach(func(other int) {
			if other == cpu {
				return
			}
			load := s.NrRunnable(other)
			if load > busiestLoad {
				busiest, busiestLoad = other, load
			}
		})
	} else {
		// Only busy CPUs can win the argmax: an idle CPU has load 0, and
		// the strict > against busiestLoad >= myLoad >= 0 rejects it. So
		// scanning span∩busy visits exactly the candidates the full-span
		// scan would have picked from, in the same ascending order.
		for w, nw := 0, dom.Span.NumWords(); w < nw; w++ {
			for v := dom.Span.Word(w) & s.busy[w]; v != 0; v &= v - 1 {
				other := w*64 + bits.TrailingZeros64(v)
				if other == cpu {
					continue
				}
				load := s.NrRunnable(other)
				if load > busiestLoad {
					busiest, busiestLoad = other, load
				}
			}
		}
	}
	if busiest < 0 {
		return false
	}
	// An idle CPU pulls as soon as anyone has a waiting task; a busy CPU
	// only corrects an imbalance of two or more.
	if idle {
		if busiestLoad < 1 || s.NrQueued(busiest) == 0 {
			return false
		}
	} else if diff := busiestLoad - myLoad; diff < 2 {
		// A one-task imbalance is corrected only sometimes, mirroring
		// fix_small_imbalance: the kernel rounds the load average and
		// occasionally decides a single waiting task is worth moving.
		// This is the mechanism that makes the paper's ranks wander
		// when a daemon briefly shares their CPU.
		if diff < 1 || s.NrQueued(busiest) == 0 || s.rng.Float64() > 0.5 {
			s.stats.SmallImbalanceSkips++
			return false
		}
	}
	return s.pullOne(busiest, cpu)
}

// pullOne steals one queued task from `from` to `to`, walking the class
// chain in priority order. Reports whether a task moved.
func (s *Scheduler) pullOne(from, to int) bool {
	for _, c := range s.classes {
		if t := c.StealFrom(s, from, to); t != nil {
			s.completeMove(c, t, from, to)
			return true
		}
	}
	return false
}

// completeMove finishes a migration of a queued task: the class has already
// removed it from the source queue; re-enqueue at the destination and tell
// the kernel.
func (s *Scheduler) completeMove(c Class, t *task.Task, from, to int) {
	t.OnRq = false
	t.CPU = to
	t.LastMigrated = s.now()
	s.hooks.Migrated(t, from, to)
	c.Enqueue(s, to, t, EnqueueMove)
	t.OnRq = true
	// The class mutated both queues directly (StealFrom/Dequeue at the
	// source, Enqueue at the destination), bypassing the scheduler's
	// wrappers — refresh both sides' bitmap bits here.
	s.refreshCPU(from)
	s.refreshCPU(to)
	s.checkPreemptWakeup(to, t)
	s.tickAdjusted(to)
}

// MoveQueued migrates a specific queued task to a destination CPU (used by
// RT push/pull and by explicit affinity changes).
func (s *Scheduler) MoveQueued(t *task.Task, to int) {
	if !t.OnRq {
		panic("sched: MoveQueued on unqueued task")
	}
	from := t.CPU
	if from == to {
		return
	}
	c := s.ClassOf(t)
	c.Dequeue(s, from, t)
	s.completeMove(c, t, from, to)
}
