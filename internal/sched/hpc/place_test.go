package hpc_test

import (
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// forkPlaceHarness loads a machine and asks SelectCPU(EnqueueFork) where the
// next rank goes. Load is expressed per CPU: `running` marks a foreign HPC
// task occupying the CPU, `queued` adds that many waiting HPC tasks.
type cpuLoad struct {
	running bool
	queued  int
}

func loadMachine(t *testing.T, s *sched.Scheduler, c interface {
	Enqueue(*sched.Scheduler, int, *task.Task, sched.WakeKind)
}, loads map[int]cpuLoad) {
	t.Helper()
	id := 100
	for cpu, l := range loads {
		if l.running {
			r := &task.Task{ID: id, Policy: task.HPC, State: task.Running,
				CPU: cpu, Affinity: topo.MaskOf(cpu)}
			id++
			s.SetCurr(cpu, r)
		}
		for i := 0; i < l.queued; i++ {
			q := &task.Task{ID: id, Policy: task.HPC, State: task.Runnable,
				CPU: cpu, Affinity: topo.MaskOf(cpu)}
			id++
			c.Enqueue(s, cpu, q, sched.EnqueueWake)
		}
	}
}

// TestForkPlacement drives the fork-time balancer through its edge cases:
// a single-CPU machine, a fully loaded socket, asymmetric load, and the
// chip -> core -> thread preference order that fills SMT siblings last.
func TestForkPlacement(t *testing.T) {
	power6 := topo.POWER6() // 2 chips x 2 cores x 2 threads: cpus 0..7
	single := topo.Topology{Chips: 1, CoresPerChip: 1, ThreadsPerCore: 1}
	dual := topo.Topology{Chips: 1, CoresPerChip: 2, ThreadsPerCore: 1}

	cases := []struct {
		name     string
		topo     topo.Topology
		loads    map[int]cpuLoad
		affinity topo.CPUMask // zero value means all CPUs
		want     int
	}{
		{
			name: "single-cpu topology has no choice",
			topo: single,
			want: 0,
		},
		{
			name:  "single-cpu topology even when loaded",
			topo:  single,
			loads: map[int]cpuLoad{0: {running: true, queued: 3}},
			want:  0,
		},
		{
			name: "empty machine takes the first thread",
			topo: power6,
			want: 0,
		},
		{
			name:  "second rank crosses to the idle chip",
			topo:  power6,
			loads: map[int]cpuLoad{0: {running: true}},
			// Not the SMT sibling (cpu 1) and not the next core
			// (cpu 2): the least-loaded chip wins first.
			want: 4,
		},
		{
			name:  "third rank takes the idle core before any sibling",
			topo:  power6,
			loads: map[int]cpuLoad{0: {running: true}, 4: {running: true}},
			want:  2,
		},
		{
			name: "siblings fill only when every core is busy",
			topo: power6,
			loads: map[int]cpuLoad{
				0: {running: true}, 2: {running: true},
				4: {running: true}, 6: {running: true},
			},
			want: 1,
		},
		{
			name: "asymmetric load balances chip totals, not first-fit",
			topo: power6,
			// Chip 0 carries 3 runnable on cpu 0; chip 1 carries 4
			// spread out. Chip totals pick chip 0, and inside it the
			// idle core (cpu 2), not cpu 0's idle sibling cpu 1.
			loads: map[int]cpuLoad{
				0: {running: true, queued: 2},
				4: {running: true}, 5: {running: true},
				6: {running: true}, 7: {running: true},
			},
			want: 2,
		},
		{
			name:     "full socket stays inside the affinity mask",
			topo:     power6,
			affinity: topo.MaskOf(0, 1, 2, 3),
			// Chip 0 is saturated and chip 1 is empty, but the rank is
			// confined to chip 0: it must take its least-loaded thread.
			loads: map[int]cpuLoad{
				0: {running: true, queued: 1},
				1: {running: true},
				2: {running: true},
				3: {running: true, queued: 2},
			},
			want: 1,
		},
		{
			name:  "two-core chip spreads before stacking",
			topo:  dual,
			loads: map[int]cpuLoad{0: {running: true}},
			want:  1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, c, _ := setup(tc.topo, sched.BalanceHPL, false)
			loadMachine(t, s, c, tc.loads)
			child := &task.Task{ID: 1, Policy: task.HPC, State: task.Runnable,
				Affinity: topo.MaskAll(tc.topo.NumCPUs())}
			if !tc.affinity.Empty() {
				child.Affinity = tc.affinity
			}
			if got := c.SelectCPU(s, child, 0, sched.EnqueueFork); got != tc.want {
				t.Fatalf("fork placed on cpu %d, want cpu %d", got, tc.want)
			}
		})
	}
}

// TestForkPlacementIgnoresParent: the forking parent runs on the origin CPU
// while placing its child, but it must not count as load there — otherwise
// a parent spawning ranks one by one would evict itself from its own CPU.
func TestForkPlacementIgnoresParent(t *testing.T) {
	tp := topo.Topology{Chips: 1, CoresPerChip: 2, ThreadsPerCore: 1}
	s, c, _ := setup(tp, sched.BalanceHPL, false)
	parent := &task.Task{ID: 1, Policy: task.HPC, State: task.Running,
		CPU: 0, Affinity: topo.MaskAll(2)}
	s.SetCurr(0, parent)
	child := &task.Task{ID: 2, Policy: task.HPC, State: task.Runnable,
		Parent: parent, Affinity: topo.MaskAll(2)}
	if got := c.SelectCPU(s, child, 0, sched.EnqueueFork); got != 0 {
		t.Fatalf("child placed on cpu %d, want the parent's cpu 0", got)
	}
	// A foreign HPC task in the parent's seat does count.
	other := &task.Task{ID: 3, Policy: task.HPC, State: task.Running,
		CPU: 0, Affinity: topo.MaskOf(0)}
	s.SetCurr(0, other)
	if got := c.SelectCPU(s, child, 0, sched.EnqueueFork); got != 1 {
		t.Fatalf("child placed on cpu %d, want the idle cpu 1", got)
	}
}

// TestNaivePlacementFirstFit pins the contrast the hierarchical placer is
// measured against: the naive placer takes the first least-loaded CPU in
// numeric order, which is the busy task's SMT sibling.
func TestNaivePlacementFirstFit(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPL, true)
	loadMachine(t, s, c, map[int]cpuLoad{0: {running: true}})
	child := &task.Task{ID: 1, Policy: task.HPC, State: task.Runnable,
		Affinity: topo.MaskAll(8)}
	if got := c.SelectCPU(s, child, 0, sched.EnqueueFork); got != 1 {
		t.Fatalf("naive fork placed on cpu %d, want first-fit cpu 1", got)
	}
}
