package hpc_test

import (
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sched/cfs"
	"hplsim/internal/sched/hpc"
	"hplsim/internal/sched/idleclass"
	"hplsim/internal/sched/rt"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

type harness struct {
	now     sim.Time
	resched []int
}

func (h *harness) Resched(cpu int)                     { h.resched = append(h.resched, cpu) }
func (h *harness) Migrated(t *task.Task, from, to int) {}

func setup(tp topo.Topology, policy sched.BalancePolicy, naive bool) (*sched.Scheduler, *hpc.Class, *harness) {
	h := &harness{}
	n := tp.NumCPUs()
	c := hpc.New(n)
	c.Naive = naive
	idle := idleclass.New(n)
	s := sched.New(sched.Config{
		Topo:    tp,
		Classes: []sched.Class{rt.New(n), c, cfs.New(n, cfs.DefaultTunables()), idle},
		Hooks:   h,
		Policy:  policy,
		RNG:     sim.NewRNG(4),
		Now:     func() sim.Time { return h.now },
		Timer:   func(d sim.Duration, fn func()) {},
	})
	for cpu := 0; cpu < n; cpu++ {
		t := &task.Task{ID: 1000 + cpu, Policy: task.Idle, State: task.Running,
			CPU: cpu, Affinity: topo.MaskOf(cpu)}
		idle.SetIdleTask(cpu, t)
		s.SetCurr(cpu, t)
	}
	return s, c, h
}

func mkHPC(id int) *task.Task {
	return &task.Task{ID: id, Policy: task.HPC,
		State: task.Runnable, Affinity: topo.MaskAll(8)}
}

func TestRoundRobinFIFO(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPL, false)
	a, b := mkHPC(1), mkHPC(2)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	c.Enqueue(s, 0, b, sched.EnqueueWake)
	if c.PickNext(s, 0) != a {
		t.Fatal("not FIFO")
	}
	// Preempted task goes to the tail (round robin).
	c.Enqueue(s, 0, a, sched.EnqueuePutPrev)
	if c.PickNext(s, 0) != b {
		t.Fatal("preempted task cut the line")
	}
}

func TestSliceRotationOnlyWithPeers(t *testing.T) {
	s, c, h := setup(topo.POWER6(), sched.BalanceHPL, false)
	a, b := mkHPC(1), mkHPC(2)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	c.Enqueue(s, 0, b, sched.EnqueueWake)
	curr := c.PickNext(s, 0)
	s.SetCurr(0, curr)
	h.resched = nil
	c.ExecCharge(s, 0, curr, hpc.Timeslice+sim.Millisecond)
	c.Tick(s, 0, curr)
	if len(h.resched) == 0 {
		t.Fatal("no rotation with a waiting peer")
	}
	// Alone: expiry refills quietly.
	c.PickNext(s, 0) // drain b
	h.resched = nil
	c.ExecCharge(s, 0, curr, hpc.Timeslice+sim.Millisecond)
	c.Tick(s, 0, curr)
	if len(h.resched) != 0 {
		t.Fatal("lone HPC task rotated")
	}
}

func TestNoWakePreemption(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPL, false)
	curr, w := mkHPC(1), mkHPC(2)
	if c.CheckPreempt(s, 0, curr, w) {
		t.Fatal("HPC wakee preempted a running HPC task")
	}
}

func TestPlacementSpreadsChipsFirst(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPL, false)
	tp := topo.POWER6()
	// Place 8 tasks one at a time, simulating running placement by
	// enqueueing each at its chosen CPU.
	perChipAfter2 := map[int]int{}
	var placed []int
	for i := 0; i < 8; i++ {
		tk := mkHPC(10 + i)
		cpu := c.SelectCPU(s, tk, 0, sched.EnqueueFork)
		c.Enqueue(s, cpu, tk, sched.EnqueueFork)
		placed = append(placed, cpu)
		if i == 1 {
			for _, p := range placed {
				perChipAfter2[tp.ChipOf(p)]++
			}
		}
	}
	// After two placements, one per chip.
	if perChipAfter2[0] != 1 || perChipAfter2[1] != 1 {
		t.Fatalf("first two tasks not spread across chips: %v", placed)
	}
	// After four, one per core; after eight, one per hardware thread.
	perCore := map[int]int{}
	for _, p := range placed[:4] {
		perCore[tp.CoreOf(p)]++
	}
	for core, n := range perCore {
		if n != 1 {
			t.Fatalf("core %d has %d of the first four tasks: %v", core, n, placed)
		}
	}
	perCPU := map[int]int{}
	for _, p := range placed {
		perCPU[p]++
	}
	if len(perCPU) != 8 {
		t.Fatalf("8 tasks on %d CPUs: %v", len(perCPU), placed)
	}
}

func TestNaivePlacementPacks(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPL, true)
	tp := topo.POWER6()
	var placed []int
	for i := 0; i < 4; i++ {
		tk := mkHPC(10 + i)
		cpu := c.SelectCPU(s, tk, 0, sched.EnqueueFork)
		c.Enqueue(s, cpu, tk, sched.EnqueueFork)
		placed = append(placed, cpu)
	}
	// First-fit packs the first chip's four hardware threads.
	for _, p := range placed {
		if tp.ChipOf(p) != 0 {
			t.Fatalf("naive placement used chip 1: %v", placed)
		}
	}
}

func TestPlacementExcludesParent(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPL, false)
	// mpiexec (HPC) runs on CPU 0 while forking.
	parent := mkHPC(1)
	parent.State = task.Running
	parent.CPU = 0
	s.SetCurr(0, parent)

	used := map[int]bool{}
	for i := 0; i < 8; i++ {
		tk := mkHPC(10 + i)
		tk.Parent = parent
		cpu := c.SelectCPU(s, tk, 0, sched.EnqueueFork)
		c.Enqueue(s, cpu, tk, sched.EnqueueFork)
		used[cpu] = true
	}
	// All eight CPUs must be used: the parent's transient occupancy of
	// CPU 0 does not push ranks off it.
	if len(used) != 8 {
		t.Fatalf("ranks used %d CPUs, want 8 (parent squeezed them)", len(used))
	}
}

func TestWakeStaysPut(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPL, false)
	tk := mkHPC(1)
	if got := c.SelectCPU(s, tk, 5, sched.EnqueueWake); got != 5 {
		t.Fatalf("HPC wake moved to %d, want 5", got)
	}
}

func TestStealBlockedUnderHPLPolicy(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPL, false)
	a, b := mkHPC(1), mkHPC(2)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	c.Enqueue(s, 0, b, sched.EnqueueWake)
	if got := c.StealFrom(s, 0, 1); got != nil {
		t.Fatalf("HPL policy allowed stealing %v", got)
	}
}

func TestStealAllowedUnderDynamicPolicy(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPLDynamic, false)
	a, b := mkHPC(1), mkHPC(2)
	c.Enqueue(s, 0, a, sched.EnqueueWake)
	c.Enqueue(s, 0, b, sched.EnqueueWake)
	if got := c.StealFrom(s, 0, 1); got == nil {
		t.Fatal("dynamic policy refused to steal")
	}
}

func TestHandles(t *testing.T) {
	_, c, _ := setup(topo.POWER6(), sched.BalanceHPL, false)
	if !c.Handles(task.HPC) {
		t.Fatal("hpc must handle HPC")
	}
	for _, p := range []task.Policy{task.Normal, task.FIFO, task.RR, task.Idle} {
		if c.Handles(p) {
			t.Fatalf("hpc handles %v", p)
		}
	}
	if c.Name() != "hpc" {
		t.Fatal("name wrong")
	}
}

func TestPlacementRespectsAffinity(t *testing.T) {
	s, c, _ := setup(topo.POWER6(), sched.BalanceHPL, false)
	tk := mkHPC(1)
	tk.Affinity = topo.MaskOf(6, 7)
	cpu := c.SelectCPU(s, tk, 0, sched.EnqueueFork)
	if cpu != 6 && cpu != 7 {
		t.Fatalf("placement ignored affinity: %d", cpu)
	}
}
