// Package hpc implements the paper's contribution: the HPL scheduling
// class for HPC tasks, inserted between the Real-Time and CFS classes
// (Section IV).
//
// Design, following the paper:
//
//   - Strict class priority: while a runnable HPC task exists on a CPU, no
//     CFS task (user or kernel daemon) is ever selected there, which
//     removes daemon-induced preemption of HPC ranks.
//   - A simple round-robin runqueue: HPC systems run at most one task per
//     hardware thread, so "a complex algorithm to select the next task to
//     run is not warranted".
//   - Topology-aware placement performed only at fork time: tasks are
//     spread first across chips, then across the cores of a chip, then
//     across the SMT threads of a core — one task per core as long as
//     tasks <= cores. After placement the scheduler "stays out of the
//     way": the class never participates in dynamic load balancing (the
//     scheduler core additionally suppresses balancing of the other
//     classes while HPC tasks are alive, unless the ablation policy
//     re-enables it).
//   - Wakeups always return the task to the CPU it last used, preserving
//     cache affinity.
package hpc

import (
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// Timeslice is the HPC round-robin quantum. It only matters in the "special
// cases such as initialization and finalization" when a CPU briefly holds
// more than one HPC task.
const Timeslice = 100 * sim.Millisecond

// Class is the HPL scheduling class.
type Class struct {
	// Naive disables the topology-aware placement (ablation A2): forks
	// go to the allowed CPU with the fewest HPC tasks, lowest id first,
	// ignoring chips, cores, and SMT sharing.
	Naive bool

	rqs [][]*task.Task // per-CPU FIFO ring
}

// New returns an HPC class for nCPUs.
func New(nCPUs int) *Class {
	return &Class{rqs: make([][]*task.Task, nCPUs)}
}

// Name implements sched.Class.
func (c *Class) Name() string { return "hpc" }

// Handles implements sched.Class.
func (c *Class) Handles(p task.Policy) bool { return p == task.HPC }

// Enqueue implements sched.Class: plain FIFO tail insert; a preempted task
// also goes to the tail (round robin).
func (c *Class) Enqueue(s *sched.Scheduler, cpu int, t *task.Task, kind sched.WakeKind) {
	c.rqs[cpu] = append(c.rqs[cpu], t)
}

// Dequeue implements sched.Class.
func (c *Class) Dequeue(s *sched.Scheduler, cpu int, t *task.Task) {
	q := c.rqs[cpu]
	for i, qt := range q {
		if qt == t {
			c.rqs[cpu] = append(q[:i:i], q[i+1:]...)
			return
		}
	}
	panic("hpc: dequeue of task not queued")
}

// PickNext implements sched.Class.
func (c *Class) PickNext(s *sched.Scheduler, cpu int) *task.Task {
	q := c.rqs[cpu]
	if len(q) == 0 {
		return nil
	}
	t := q[0]
	c.rqs[cpu] = q[1:]
	if t.HPC.Slice <= 0 {
		t.HPC.Slice = Timeslice
	}
	return t
}

// ExecCharge implements sched.Class.
func (c *Class) ExecCharge(s *sched.Scheduler, cpu int, t *task.Task, delta sim.Duration) {
	t.HPC.Slice -= delta
}

// Tick implements sched.Class: rotate only when a peer is waiting. The
// chaos override suppresses the rotation (slice refills, nobody yields) so
// the property harness can prove the schedstat wait-latency oracle detects
// a class that starves its own queue.
func (c *Class) Tick(s *sched.Scheduler, cpu int, t *task.Task) {
	if t.HPC.Slice > 0 {
		return
	}
	t.HPC.Slice = Timeslice
	if len(c.rqs[cpu]) > 0 && !s.ChaosHPCNoRotate() {
		s.Resched(cpu)
	}
}

// ReplayTicks implements sched.TickBatcher. With no peer queued the tick
// sequence is: charge the slice, refill it when depleted, never reschedule.
// The refill makes consecutive charges non-associative, so the loop mirrors
// the per-tick ExecCharge/Tick interleaving exactly — two integer ops per
// elided tick, with none of the per-tick call machinery.
func (c *Class) ReplayTicks(s *sched.Scheduler, cpu int, t *task.Task, dt sim.Duration, m int64) bool {
	if len(c.rqs[cpu]) != 0 {
		return false
	}
	sl := t.HPC.Slice
	for i := int64(0); i < m; i++ {
		sl -= dt
		if sl <= 0 {
			sl = Timeslice
		}
	}
	t.HPC.Slice = sl
	return true
}

// CheckPreempt implements sched.Class: an HPC wakee never preempts a
// running HPC task; it waits for its round-robin turn.
func (c *Class) CheckPreempt(s *sched.Scheduler, cpu int, curr, w *task.Task) bool {
	return false
}

// NextDecision implements sched.Class. The only tick-driven decision is the
// round-robin rotation, and it requires a waiting peer: a lone HPC task —
// the paper's steady state of one rank per hardware thread — never yields to
// a tick, so the bound is Infinity and the fast-forward mode can leap to the
// next external event.
func (c *Class) NextDecision(s *sched.Scheduler, cpu int, t *task.Task, anchor sim.Time) sim.Time {
	if len(c.rqs[cpu]) == 0 {
		return sim.Infinity
	}
	slice := t.HPC.Slice
	if slice < 0 {
		slice = 0
	}
	return anchor.Add(slice)
}

// Queued implements sched.Class.
func (c *Class) Queued(s *sched.Scheduler, cpu int) int { return len(c.rqs[cpu]) }

// StealFrom implements sched.Class. The HPC class never balances itself
// under the HPL policy; under the dynamic-balancing ablation
// (BalanceHPLDynamic) or plain standard policy it behaves like a FIFO
// steal, so the cost of re-enabling balancing can be measured. The chaos
// override exists only so the property harness can prove its migration
// oracle detects a scheduler that breaks fork-time-only placement.
func (c *Class) StealFrom(s *sched.Scheduler, from, to int) *task.Task {
	if s.Policy() == sched.BalanceHPL && !s.ChaosHPCMigration() {
		return nil
	}
	for _, t := range c.rqs[from] {
		if t.Affinity.Has(to) && s.CanMigrate(t) {
			c.Dequeue(s, from, t)
			return t
		}
	}
	return nil
}

// SelectCPU implements sched.Class: topology-aware spread at fork,
// stay-put at wakeup.
func (c *Class) SelectCPU(s *sched.Scheduler, t *task.Task, origin int, kind sched.WakeKind) int {
	if kind != sched.EnqueueFork {
		if t.Affinity.Has(origin) {
			return origin
		}
		return t.Affinity.First()
	}
	if c.Naive {
		return c.placeNaive(s, t)
	}
	return c.place(s, t)
}

// placeNaive is the ablation placement: least-loaded allowed CPU by HPC
// count, lowest id wins ties. On the POWER6 it packs ranks onto the first
// chip's SMT threads before touching the second chip.
func (c *Class) placeNaive(s *sched.Scheduler, t *task.Task) int {
	best, bestLoad := -1, int(^uint(0)>>1)
	t.Affinity.ForEach(func(cpu int) {
		n := c.loadAt(s, cpu, t)
		if n < bestLoad {
			best, bestLoad = cpu, n
		}
	})
	return best
}

// loadAt counts the HPC tasks on cpu for placement purposes. The forking
// parent (mpiexec) is excluded: it is momentarily running while it forks
// but is about to block in wait(), and counting it would squeeze the ranks
// onto one CPU fewer — with dynamic balancing disabled, permanently.
func (c *Class) loadAt(s *sched.Scheduler, cpu int, t *task.Task) int {
	n := len(c.rqs[cpu])
	if curr := s.Curr(cpu); curr != nil && curr.Policy == task.HPC && curr != t.Parent {
		n++
	}
	return n
}

// place implements the fork-time balancer: count HPC tasks per chip, per
// core and per thread, and put the child on the least-loaded chip, then the
// least-loaded core of that chip, then the least-loaded hardware thread of
// that core. With eight ranks on the paper's 2x2x2 machine this yields one
// rank per hardware thread; with four ranks, one per core.
//
// CPU numbering is contiguous per chip and per core, so the scan walks
// plain integer ranges: no per-fork slice, no mask intersections.
func (c *Class) place(s *sched.Scheduler, t *task.Task) int {
	tp := s.Topo
	const maxInt = int(^uint(0) >> 1)
	perChip := tp.CoresPerChip * tp.ThreadsPerCore

	// Least-loaded chip with an allowed CPU (chip load counts every CPU
	// of the chip; affinity only gates eligibility).
	bestChip, bestChipLoad := -1, maxInt
	for chip := 0; chip < tp.Chips; chip++ {
		base := chip * perChip
		allowed, load := false, 0
		for cpu := base; cpu < base+perChip; cpu++ {
			load += c.loadAt(s, cpu, t)
			if t.Affinity.Has(cpu) {
				allowed = true
			}
		}
		if allowed && load < bestChipLoad {
			bestChip, bestChipLoad = chip, load
		}
	}
	if bestChip < 0 {
		return t.Affinity.First()
	}
	// Least-loaded core of that chip.
	bestCore, bestCoreLoad := -1, maxInt
	for i := 0; i < tp.CoresPerChip; i++ {
		core := bestChip*tp.CoresPerChip + i
		base := core * tp.ThreadsPerCore
		allowed, load := false, 0
		for cpu := base; cpu < base+tp.ThreadsPerCore; cpu++ {
			load += c.loadAt(s, cpu, t)
			if t.Affinity.Has(cpu) {
				allowed = true
			}
		}
		if allowed && load < bestCoreLoad {
			bestCore, bestCoreLoad = core, load
		}
	}
	// Least-loaded allowed hardware thread of that core.
	bestCPU, bestCPULoad := -1, maxInt
	for cpu := bestCore * tp.ThreadsPerCore; cpu < (bestCore+1)*tp.ThreadsPerCore; cpu++ {
		if !t.Affinity.Has(cpu) {
			continue
		}
		if load := c.loadAt(s, cpu, t); load < bestCPULoad {
			bestCPU, bestCPULoad = cpu, load
		}
	}
	return bestCPU
}
