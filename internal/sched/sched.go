// Package sched implements the scheduler framework the paper builds on:
// an ordered chain of scheduling classes consulted by a scheduler core, with
// per-CPU runqueues, wakeup preemption across and within classes, and
// domain-based load balancing (periodic and idle-triggered).
//
// The class chain mirrors Section IV of the paper: Real-Time first, then the
// new HPC class, then CFS, then Idle. No task from a lower-priority class is
// ever picked while a higher-priority class has a runnable task on that CPU.
package sched

import (
	"fmt"
	"math/bits"

	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// WakeKind tells Enqueue why a task is being added to a runqueue; classes
// use it to decide placement credit (e.g. CFS sleeper fairness).
type WakeKind int

const (
	// EnqueueWake: the task just woke from sleep.
	EnqueueWake WakeKind = iota
	// EnqueuePutPrev: the task was preempted and stays runnable.
	EnqueuePutPrev
	// EnqueueFork: the task was just created.
	EnqueueFork
	// EnqueueMove: the task is being migrated between CPUs.
	EnqueueMove
)

// Class is one scheduling class. All methods are called with the CPU's
// runqueue implicitly identified by the cpu argument; classes keep their
// own per-CPU state.
type Class interface {
	// Name is a short identifier for traces ("rt", "hpc", "cfs", "idle").
	Name() string
	// Handles reports whether the class schedules tasks of policy p.
	Handles(p task.Policy) bool
	// Enqueue adds t to the class runqueue of cpu.
	Enqueue(s *Scheduler, cpu int, t *task.Task, kind WakeKind)
	// Dequeue removes a queued task from the class runqueue of cpu.
	Dequeue(s *Scheduler, cpu int, t *task.Task)
	// PickNext removes and returns the next task to run on cpu, or nil
	// if the class has no runnable task there.
	PickNext(s *Scheduler, cpu int) *task.Task
	// ExecCharge accounts delta of CPU time consumed by the running task
	// t on cpu (vruntime for CFS, timeslice burn for RR-style classes).
	// The kernel calls it whenever it settles a run span.
	ExecCharge(s *Scheduler, cpu int, t *task.Task, delta sim.Duration)
	// Tick charges one scheduler tick to the running task t on cpu; the
	// class calls s.Resched(cpu) if t should yield.
	Tick(s *Scheduler, cpu int, t *task.Task)
	// CheckPreempt decides whether the newly woken task w should preempt
	// the running task curr, both of this class, on cpu.
	CheckPreempt(s *Scheduler, cpu int, curr, w *task.Task) bool
	// Queued reports the number of tasks queued (not running) on cpu.
	Queued(s *Scheduler, cpu int) int
	// StealFrom removes and returns one migratable queued task from
	// `from` destined for CPU `to`, or nil. Affinity must be respected.
	StealFrom(s *Scheduler, from, to int) *task.Task
	// SelectCPU chooses a CPU for a fork or wakeup. origin is the
	// parent's CPU (fork) or the task's previous CPU (wake).
	SelectCPU(s *Scheduler, t *task.Task, origin int, kind WakeKind) int
	// NextDecision reports a conservative lower bound on the earliest
	// future instant at which a timer tick could change a scheduling
	// decision for t, the task of this class currently running on cpu:
	// a Tick that calls Resched, or an ExecCharge crossing that does.
	// anchor is the instant from which t's current span accrues CPU time
	// (execution time observed by any tick at time x is at most
	// x - anchor, which is what makes a bound derived from remaining
	// timeslice or budget safe). Returning Infinity means no tick-driven
	// decision can ever occur in the current state. The kernel's
	// fast-forward mode elides ticks strictly before the bound, so
	// reporting a decision too early merely costs a harmless extra tick,
	// while reporting it too late is a correctness bug (the elided-tick
	// replay panics if a class decides during replay).
	NextDecision(s *Scheduler, cpu int, t *task.Task, anchor sim.Time) sim.Time
}

// Hooks are the kernel services the scheduler core needs. The kernel owns
// context-switch mechanics and time accounting; the scheduler only decides.
type Hooks interface {
	// Resched requests a reschedule of cpu at the current instant.
	Resched(cpu int)
	// Migrated notifies that a queued task moved between CPUs, so the
	// kernel can account the migration and adjust cache state.
	Migrated(t *task.Task, from, to int)
}

// TickBatcher is an optional extension of Class for the fast-forward mode:
// ReplayTicks applies the class-side bookkeeping of m consecutive elided
// ticks of t (the task running on cpu), each charging the same exec delta
// dt — bitwise identical to m repetitions of ExecCharge(dt) followed by
// Tick(). Implementations must return false when the current class state is
// not batchable (e.g. waiters are queued, so Tick is not a no-op); the
// kernel then falls back to replaying tick by tick. Implementations must
// never call Resched: batching is only attempted strictly before the
// class's own NextDecision bound, where a reschedule would contradict it.
type TickBatcher interface {
	ReplayTicks(s *Scheduler, cpu int, t *task.Task, dt sim.Duration, m int64) bool
}

// ReplayTicks forwards a batched elided-tick charge to t's class, if the
// class supports batching. It reports whether the charge was applied.
func (s *Scheduler) ReplayTicks(cpu int, t *task.Task, dt sim.Duration, m int64) bool {
	if tb, ok := s.ClassOf(t).(TickBatcher); ok {
		return tb.ReplayTicks(s, cpu, t, dt, m)
	}
	return false
}

// TickAdjuster is an optional extension of Hooks: implementations are told
// whenever an event may have moved a CPU's next tick-driven scheduling
// decision *earlier* — a task was enqueued on the CPU, or the dynamic
// balancing gate flipped. The kernel's fast-forward mode uses it to
// re-evaluate its coalesced timer arming; changes that can only push the
// decision later (dequeues, steals) are deliberately not reported, because
// a conservatively early timer is harmless.
type TickAdjuster interface {
	TickAdjust(cpu int)
}

// BalancePolicy selects the load-balancing behaviour of the whole node.
type BalancePolicy int

const (
	// BalanceStandard is vanilla Linux: every class balances, CPUs pull
	// on idle, periodic balancing corrects imbalance.
	BalanceStandard BalancePolicy = iota
	// BalanceHPL is the paper's policy: topology-aware placement at fork
	// time only; while any HPC task is alive, no dynamic balancing runs
	// for any class (Section V: "HPL performs no load balancing for any
	// scheduling class").
	BalanceHPL
	// BalanceHPLDynamic is ablation A1: the HPC class exists but dynamic
	// balancing stays enabled for all classes.
	BalanceHPLDynamic
	// BalanceNone disables all dynamic balancing unconditionally
	// (used by tests and the pinning ablation).
	BalanceNone
)

// Chaos bundles deliberate fault-injection switches used by the schedcheck
// property harness to prove its oracles can catch real policy bugs. All
// switches default to off; production configurations never set them.
type Chaos struct {
	// HPCMigration re-enables dynamic balancing and HPC-queue stealing
	// while HPC tasks are alive under BalanceHPL, breaking the paper's
	// fork-time-only placement guarantee on purpose.
	HPCMigration bool
	// HPCNoRotate makes the HPC class refill an expired timeslice without
	// rescheduling, so a queued HPC peer waits until the running task
	// blocks or exits. It breaks the round-robin wait bound the schedstat
	// latency oracle checks.
	HPCNoRotate bool
	// ShardSkew makes the parallel shard catch-up hand its workers a
	// replay bound one tick period past the true synchronization horizon,
	// so a worker plans ticks inside a window the coordinator already
	// committed — the exact failure a wrong conservative lookahead would
	// produce. The -tags invariants shard window audit must catch it
	// before any state is touched. Only meaningful with kernel
	// Config.Shards > 1.
	ShardSkew bool
}

func (p BalancePolicy) String() string {
	switch p {
	case BalanceStandard:
		return "standard"
	case BalanceHPL:
		return "hpl"
	case BalanceHPLDynamic:
		return "hpl-dynamic"
	case BalanceNone:
		return "none"
	default:
		return fmt.Sprintf("BalancePolicy(%d)", int(p))
	}
}

// Scheduler is the scheduler core: the class chain plus per-CPU bookkeeping.
type Scheduler struct {
	Topo    topo.Topology
	classes []Class
	hooks   Hooks
	policy  BalancePolicy
	chaos   Chaos

	curr []*task.Task // running task per CPU (nil only before boot)

	// nrHPC counts live HPC-policy tasks system-wide; BalanceHPL
	// suppresses dynamic balancing while it is non-zero.
	nrHPC int

	// domains caches the per-CPU scheduling-domain chains.
	domains [][]topo.Domain

	// sibSpan and chipSpan cache per-CPU topology spans so hot wakeup
	// paths never rebuild masks.
	sibSpan  []topo.CPUMask
	chipSpan []topo.CPUMask

	// busy and queued are per-word CPU bitmaps kept in lockstep with the
	// runqueues: bit cpu of busy is set iff NrRunnable(cpu) >= 1, bit cpu
	// of queued iff NrQueued(cpu) >= 1. They are refreshed at every
	// queue or curr mutation (refreshCPU), which lets the balancer scan
	// only active CPUs instead of whole domain spans.
	busy   []uint64
	queued []uint64

	// naiveScan forces the pre-optimisation full-span linear scans; the
	// scale benchmark uses it to record the naive wide-mask baseline.
	naiveScan bool

	// nextBalance is the per-CPU, per-domain-level next balance time.
	nextBalance [][]sim.Time
	// backoff is the per-CPU, per-domain balance interval multiplier.
	backoff [][]sim.Duration

	rng   *sim.RNG
	now   func() sim.Time
	timer func(sim.Duration, func())

	// tickAdjust is non-nil when Hooks also implements TickAdjuster.
	tickAdjust func(cpu int)

	stats Stats
}

// Config assembles a Scheduler.
type Config struct {
	Topo    topo.Topology
	Classes []Class // priority order, highest first; must end with idle
	Hooks   Hooks
	Policy  BalancePolicy
	RNG     *sim.RNG
	Now     func() sim.Time
	// Timer schedules fn to run after d (engine-backed); classes use it
	// for time-based state changes such as RT unthrottling.
	Timer func(d sim.Duration, fn func())
	// Chaos enables fault injection for the property harness.
	Chaos Chaos
	// NaiveScan disables the O(active-CPU) balancer scans in favour of
	// full-span iteration (benchmark baseline only).
	NaiveScan bool
}

// New builds a scheduler core from the class chain.
func New(cfg Config) *Scheduler {
	n := cfg.Topo.NumCPUs()
	s := &Scheduler{
		Topo:      cfg.Topo,
		classes:   cfg.Classes,
		hooks:     cfg.Hooks,
		policy:    cfg.Policy,
		chaos:     cfg.Chaos,
		curr:      make([]*task.Task, n),
		domains:   make([][]topo.Domain, n),
		sibSpan:   make([]topo.CPUMask, n),
		chipSpan:  make([]topo.CPUMask, n),
		busy:      make([]uint64, (n+63)/64),
		queued:    make([]uint64, (n+63)/64),
		naiveScan: cfg.NaiveScan,
		rng:       cfg.RNG,
		now:       cfg.Now,
		timer:     cfg.Timer,
	}
	if ta, ok := cfg.Hooks.(TickAdjuster); ok {
		s.tickAdjust = ta.TickAdjust
	}
	s.nextBalance = make([][]sim.Time, n)
	s.backoff = make([][]sim.Duration, n)
	for cpu := 0; cpu < n; cpu++ {
		s.domains[cpu] = cfg.Topo.Domains(cpu)
		s.sibSpan[cpu] = cfg.Topo.SiblingsOf(cpu)
		s.chipSpan[cpu] = cfg.Topo.ChipMask(cfg.Topo.ChipOf(cpu))
		s.nextBalance[cpu] = make([]sim.Time, len(s.domains[cpu]))
		s.backoff[cpu] = make([]sim.Duration, len(s.domains[cpu]))
		for i := range s.backoff[cpu] {
			s.backoff[cpu][i] = 1
		}
	}
	return s
}

// Now reports the current virtual time (for classes).
func (s *Scheduler) Now() sim.Time { return s.now() }

// RNG exposes the scheduler's random stream (for tie-breaking in classes).
func (s *Scheduler) RNG() *sim.RNG { return s.rng }

// Timer schedules fn after d on the simulation engine. It panics if the
// scheduler was built without a timer (class code that needs one must only
// run under a full kernel).
func (s *Scheduler) Timer(d sim.Duration, fn func()) {
	if s.timer == nil {
		panic("sched: no timer configured")
	}
	s.timer(d, fn)
}

// Policy reports the balance policy in force.
func (s *Scheduler) Policy() BalancePolicy { return s.policy }

// ChaosHPCMigration reports whether the HPC-migration fault injection is
// armed (see Chaos).
func (s *Scheduler) ChaosHPCMigration() bool { return s.chaos.HPCMigration }

// ChaosHPCNoRotate reports whether the rotation-suppression fault injection
// is armed (see Chaos).
func (s *Scheduler) ChaosHPCNoRotate() bool { return s.chaos.HPCNoRotate }

// ChaosShardSkew reports whether the shard-horizon fault injection is
// armed (see Chaos).
func (s *Scheduler) ChaosShardSkew() bool { return s.chaos.ShardSkew }

// Curr reports the task running on cpu (possibly the idle task).
func (s *Scheduler) Curr(cpu int) *task.Task { return s.curr[cpu] }

// SetCurr records that t is now running on cpu. The kernel calls this from
// its context-switch path.
func (s *Scheduler) SetCurr(cpu int, t *task.Task) {
	s.curr[cpu] = t
	s.refreshCPU(cpu)
}

// refreshCPU recomputes cpu's bits in the busy and queued bitmaps. Queued
// counts are O(1) per class, so recomputing on every mutation is cheap and
// immune to classes moving tasks internally (PickNext, StealFrom).
func (s *Scheduler) refreshCPU(cpu int) {
	w, bit := cpu>>6, uint64(1)<<uint(cpu&63)
	q := s.NrQueued(cpu)
	if q > 0 {
		s.queued[w] |= bit
	} else {
		s.queued[w] &^= bit
	}
	r := q
	if c := s.curr[cpu]; c != nil && c.Policy != task.Idle {
		r++
	}
	if r > 0 {
		s.busy[w] |= bit
	} else {
		s.busy[w] &^= bit
	}
}

// SiblingSpan reports the cached SMT-sibling mask of cpu (including cpu).
func (s *Scheduler) SiblingSpan(cpu int) topo.CPUMask { return s.sibSpan[cpu] }

// ChipSpan reports the cached mask of all CPUs on cpu's chip.
func (s *Scheduler) ChipSpan(cpu int) topo.CPUMask { return s.chipSpan[cpu] }

// FirstIdleIn returns the lowest-numbered CPU of span∩affinity with no
// runnable task (NrRunnable == 0), excluding exclude, or -1 if there is
// none. With the busy bitmap this is a word scan, independent of how many
// CPUs the span covers.
func (s *Scheduler) FirstIdleIn(span, affinity topo.CPUMask, exclude int) int {
	if s.naiveScan {
		found := -1
		span.ForEach(func(cpu int) {
			if found < 0 && cpu != exclude && affinity.Has(cpu) && s.NrRunnable(cpu) == 0 {
				found = cpu
			}
		})
		return found
	}
	for w, nw := 0, span.NumWords(); w < nw; w++ {
		v := span.Word(w) & affinity.Word(w) &^ s.busy[w]
		if w == exclude>>6 {
			v &^= 1 << uint(exclude&63)
		}
		if v != 0 {
			return w*64 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// ClassOf returns the class handling the task's policy.
func (s *Scheduler) ClassOf(t *task.Task) Class {
	for _, c := range s.classes {
		if c.Handles(t.Policy) {
			return c
		}
	}
	panic(fmt.Sprintf("sched: no class handles policy %v", t.Policy))
}

// classIndex returns the priority rank of the class handling p (0 = highest).
func (s *Scheduler) classIndex(p task.Policy) int {
	for i, c := range s.classes {
		if c.Handles(p) {
			return i
		}
	}
	panic(fmt.Sprintf("sched: no class handles policy %v", p))
}

// TaskAlive accounts a new task of the given policy (fork or policy change).
func (s *Scheduler) TaskAlive(p task.Policy) {
	if p == task.HPC {
		was := s.balancingEnabled()
		s.nrHPC++
		if s.balancingEnabled() != was {
			s.tickAdjustAll()
		}
	}
}

// TaskGone accounts a task leaving the given policy (exit or policy change).
func (s *Scheduler) TaskGone(p task.Policy) {
	if p == task.HPC {
		was := s.balancingEnabled()
		s.nrHPC--
		if s.nrHPC < 0 {
			panic("sched: HPC task count underflow")
		}
		if s.balancingEnabled() != was {
			s.tickAdjustAll()
		}
	}
}

// tickAdjusted tells the kernel cpu's next tick-driven decision may have
// moved earlier (no-op unless the hooks implement TickAdjuster).
func (s *Scheduler) tickAdjusted(cpu int) {
	if s.tickAdjust != nil {
		s.tickAdjust(cpu)
	}
}

// tickAdjustAll reports a decision change affecting every CPU, e.g. the
// dynamic-balancing gate flipping with the HPC task count.
func (s *Scheduler) tickAdjustAll() {
	if s.tickAdjust == nil {
		return
	}
	for cpu := range s.curr {
		s.tickAdjust(cpu)
	}
}

// NrHPC reports the number of live HPC tasks.
func (s *Scheduler) NrHPC() int { return s.nrHPC }

// balancingEnabled reports whether dynamic balancing may run now.
func (s *Scheduler) balancingEnabled() bool {
	switch s.policy {
	case BalanceStandard, BalanceHPLDynamic:
		return true
	case BalanceHPL:
		return s.nrHPC == 0 || s.chaos.HPCMigration
	default:
		return false
	}
}

// Enqueue places a runnable task on cpu's runqueue and performs the wakeup
// preemption check against the running task.
func (s *Scheduler) Enqueue(cpu int, t *task.Task, kind WakeKind) {
	if t.OnRq {
		panic(fmt.Sprintf("sched: enqueue of already queued task %v", t))
	}
	c := s.ClassOf(t)
	c.Enqueue(s, cpu, t, kind)
	t.OnRq = true
	t.CPU = cpu
	s.refreshCPU(cpu)
	if kind == EnqueuePutPrev {
		return // the core is already rescheduling this CPU
	}
	s.checkPreemptWakeup(cpu, t)
	// A new queued task can only move the CPU's next tick-driven decision
	// earlier (an RR/HPC peer appearing starts the rotation clock, a CFS
	// waiter arms the fairness checks).
	s.tickAdjusted(cpu)
}

// Dequeue removes a queued task from its runqueue (sleep, exit, migration).
func (s *Scheduler) Dequeue(t *task.Task) {
	if !t.OnRq {
		panic(fmt.Sprintf("sched: dequeue of unqueued task %v", t))
	}
	s.ClassOf(t).Dequeue(s, t.CPU, t)
	t.OnRq = false
	s.refreshCPU(t.CPU)
}

// checkPreemptWakeup decides whether the wakeup of t on cpu should preempt
// the task currently running there.
func (s *Scheduler) checkPreemptWakeup(cpu int, t *task.Task) {
	curr := s.curr[cpu]
	if curr == nil {
		s.hooks.Resched(cpu)
		return
	}
	ci, ti := s.classIndex(curr.Policy), s.classIndex(t.Policy)
	switch {
	case ti < ci:
		// Higher-priority class always preempts: the ordering of the
		// scheduling classes is an implicit prioritisation.
		if curr.Policy != task.Idle {
			s.stats.WakePreempts++
		}
		s.hooks.Resched(cpu)
	case ti == ci:
		if s.classes[ti].CheckPreempt(s, cpu, curr, t) {
			s.stats.WakePreempts++
			s.hooks.Resched(cpu)
		}
	}
}

// PickNext selects, removes from its queue, and returns the highest priority
// runnable task on cpu. The idle class guarantees a non-nil result.
func (s *Scheduler) PickNext(cpu int) *task.Task {
	for _, c := range s.classes {
		if t := c.PickNext(s, cpu); t != nil {
			t.OnRq = false
			s.refreshCPU(cpu)
			return t
		}
	}
	panic("sched: idle class returned no task")
}

// PutPrev re-queues a still-runnable task that is being switched out.
func (s *Scheduler) PutPrev(cpu int, t *task.Task) {
	s.Enqueue(cpu, t, EnqueuePutPrev)
}

// Tick charges a scheduler tick to the running task.
func (s *Scheduler) Tick(cpu int, t *task.Task) {
	s.ClassOf(t).Tick(s, cpu, t)
}

// ExecCharge accounts CPU time consumed by the running task on cpu.
func (s *Scheduler) ExecCharge(cpu int, t *task.Task, delta sim.Duration) {
	s.ClassOf(t).ExecCharge(s, cpu, t, delta)
}

// Resched forwards a class's reschedule request to the kernel.
func (s *Scheduler) Resched(cpu int) { s.hooks.Resched(cpu) }

// NrQueued reports the number of queued (runnable, not running) tasks on
// cpu across all classes.
func (s *Scheduler) NrQueued(cpu int) int {
	n := 0
	for _, c := range s.classes {
		n += c.Queued(s, cpu)
	}
	return n
}

// QueuedOf reports the number of tasks queued (runnable, not running) on
// cpu in the class with the given name, or 0 if no class has that name.
// Oracle probes use it to check class-priority dominance at switch-in.
func (s *Scheduler) QueuedOf(name string, cpu int) int {
	for _, c := range s.classes {
		if c.Name() == name {
			return c.Queued(s, cpu)
		}
	}
	return 0
}

// NrRunnable reports queued tasks plus the running task (0 for idle).
func (s *Scheduler) NrRunnable(cpu int) int {
	n := s.NrQueued(cpu)
	if c := s.curr[cpu]; c != nil && c.Policy != task.Idle {
		n++
	}
	return n
}

// NextDecision reports the class-level lower bound on the next instant a
// timer tick could change a scheduling decision for t, the task running on
// cpu. anchor is the start of t's current accounting span. See
// Class.NextDecision for the contract.
func (s *Scheduler) NextDecision(cpu int, t *task.Task, anchor sim.Time) sim.Time {
	return s.ClassOf(t).NextDecision(s, cpu, t, anchor)
}

// NextBalanceDue reports the earliest instant at which a timer tick on cpu
// would run a periodic-balance pass that touches state (including its RNG
// draws): the minimum of the CPU's per-domain next-balance deadlines, or
// Infinity while dynamic balancing is gated off. Ticks strictly before the
// returned time leave PeriodicBalance a provable no-op, which is what lets
// the fast-forward mode elide them.
func (s *Scheduler) NextBalanceDue(cpu int) sim.Time {
	if !s.balancingEnabled() {
		return sim.Infinity
	}
	due := sim.Infinity
	for _, nb := range s.nextBalance[cpu] {
		if nb < due {
			due = nb
		}
	}
	return due
}

// SelectCPU chooses the CPU for a fork or wakeup of t.
func (s *Scheduler) SelectCPU(t *task.Task, origin int, kind WakeKind) int {
	cpu := s.ClassOf(t).SelectCPU(s, t, origin, kind)
	if !t.Affinity.Has(cpu) {
		// Class returned a CPU outside the affinity mask; fall back to
		// the first allowed CPU.
		cpu = t.Affinity.First()
		if cpu < 0 {
			panic(fmt.Sprintf("sched: task %v has empty affinity", t))
		}
	}
	return cpu
}
