//go:build !invariants

package kernel

// checkInvariants is a no-op in normal builds; see invariants_on.go.
func (k *Kernel) checkInvariants() {}
