package kernel

import (
	"fmt"
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// ffSnapshot is everything an observer could compare between a
// step-every-tick run and a fast-forward run: completion times, the full
// perf counter set, per-CPU tick counts, per-task accounting, energy.
type ffSnapshot struct {
	done     map[string]sim.Time
	perf     string // Counters minus TicksCoalesced, rendered
	ticks    []uint64
	sumExec  map[string]sim.Duration
	energy   string
	finalNow sim.Time
}

func snapshotOf(k *Kernel, done map[string]sim.Time) ffSnapshot {
	p := k.Perf
	p.TicksCoalesced = 0 // the one intentionally mode-dependent counter
	s := ffSnapshot{
		done:     done,
		perf:     fmt.Sprintf("%+v", p),
		sumExec:  map[string]sim.Duration{},
		energy:   k.Energy().String(),
		finalNow: k.Now(),
	}
	for cpu := 0; cpu < k.Topo.NumCPUs(); cpu++ {
		s.ticks = append(s.ticks, k.TicksOn(cpu))
	}
	for i, t := range k.Tasks() {
		s.sumExec[fmt.Sprintf("%d/%s", i, t.Name)] = t.SumExec
	}
	return s
}

func (a ffSnapshot) diff(t *testing.T, b ffSnapshot) {
	t.Helper()
	if a.finalNow != b.finalNow {
		t.Errorf("final time: std %v, ff %v", a.finalNow, b.finalNow)
	}
	if a.perf != b.perf {
		t.Errorf("perf counters diverge:\n std %s\n ff  %s", a.perf, b.perf)
	}
	for cpu := range a.ticks {
		if a.ticks[cpu] != b.ticks[cpu] {
			t.Errorf("cpu %d ticks: std %d, ff %d", cpu, a.ticks[cpu], b.ticks[cpu])
		}
	}
	for name, d := range a.done {
		if b.done[name] != d {
			t.Errorf("task %s completion: std %v, ff %v", name, d, b.done[name])
		}
	}
	for name, e := range a.sumExec {
		if b.sumExec[name] != e {
			t.Errorf("task %s SumExec: std %v, ff %v", name, e, b.sumExec[name])
		}
	}
	if a.energy != b.energy {
		t.Errorf("energy report diverges:\n std %s\n ff  %s", a.energy, b.energy)
	}
}

// runBoth executes the same scenario with FastForward off and on and
// returns both snapshots plus the fast-forward kernel for mode-specific
// assertions.
func runBoth(t *testing.T, cfg Config, load func(k *Kernel, done map[string]sim.Time), until sim.Time) (ffSnapshot, ffSnapshot, *Kernel) {
	t.Helper()
	run := func(ff bool) (ffSnapshot, *Kernel) {
		c := cfg
		c.FastForward = ff
		k := New(c)
		done := map[string]sim.Time{}
		load(k, done)
		k.Run(until)
		return snapshotOf(k, done), k
	}
	std, _ := run(false)
	fast, kf := run(true)
	return std, fast, kf
}

// mixedLoad is a deliberately messy scenario: CFS hogs and sleepers, HPC
// ranks round-robining, an RR pair, affinity changes mid-run, and periodic
// balancing — every tick-driven decision path the classes have.
func mixedLoad(k *Kernel, done map[string]sim.Time) {
	spawn := func(name string, attr Attr, body func(p *Proc)) {
		attr.Name = name
		k.Spawn(nil, attr, body)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("hog%d", i)
		spawn(name, Attr{Sensitivity: 0.5}, func(p *Proc) {
			p.Compute(sim.Duration(120+10*i)*sim.Millisecond, func() {
				done[name] = p.Now()
				p.Exit()
			})
		})
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("sleeper%d", i)
		spawn(name, Attr{}, func(p *Proc) {
			var loop func(n int)
			loop = func(n int) {
				if n == 0 {
					done[name] = p.Now()
					p.Exit()
					return
				}
				p.Compute(4*sim.Millisecond, func() {
					p.Sleep(7*sim.Millisecond, func() { loop(n - 1) })
				})
			}
			loop(12)
		})
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("rank%d", i)
		spawn(name, Attr{Policy: task.HPC, Affinity: topo.MaskOf(i % 2)}, func(p *Proc) {
			p.Compute(180*sim.Millisecond, func() {
				done[name] = p.Now()
				p.Exit()
			})
		})
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("rr%d", i)
		spawn(name, Attr{Policy: task.RR, RTPrio: 40, Affinity: topo.MaskOf(3)}, func(p *Proc) {
			p.Compute(130*sim.Millisecond, func() {
				done[name] = p.Now()
				p.Exit()
			})
		})
	}
	spawn("latecomer", Attr{Affinity: topo.MaskOf(2)}, func(p *Proc) {
		p.Sleep(33*sim.Millisecond, func() {
			p.Compute(60*sim.Millisecond, func() {
				done["latecomer"] = p.Now()
				p.Exit()
			})
		})
	})
}

func TestFastForwardEquivalenceMixed(t *testing.T) {
	for _, seed := range []uint64{1, 7, 1234} {
		cfg := Config{Topo: topo.POWER6(), Seed: seed}
		std, fast, kf := runBoth(t, cfg, mixedLoad, sim.Time(2*sim.Second))
		std.diff(t, fast)
		if kf.Perf.TicksCoalesced == 0 {
			t.Errorf("seed %d: fast-forward coalesced nothing on a mostly quiescent load", seed)
		}
		if t.Failed() {
			t.Fatalf("divergence at seed %d", seed)
		}
	}
}

func TestFastForwardEquivalenceNoBalancing(t *testing.T) {
	// BalanceNone removes the balancer deadline entirely: quiescent CPUs
	// should coalesce the overwhelming majority of their ticks.
	cfg := Config{Topo: topo.POWER6(), Balance: sched.BalanceNone, Seed: 3}
	std, fast, kf := runBoth(t, cfg, mixedLoad, sim.Time(2*sim.Second))
	std.diff(t, fast)
	if kf.Perf.TicksCoalesced*2 < kf.Perf.Ticks {
		t.Errorf("coalesced %d of %d ticks; expected a majority without balancer deadlines",
			kf.Perf.TicksCoalesced, kf.Perf.Ticks)
	}
}

func TestFastForwardEquivalenceHPL(t *testing.T) {
	// The paper's configuration: HPL balance policy + adaptive tick, HPC
	// ranks pinned one per CPU with a daemon mixing in.
	cfg := Config{Topo: topo.POWER6(), Balance: sched.BalanceHPL, AdaptiveTick: true, Seed: 11}
	load := func(k *Kernel, done map[string]sim.Time) {
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("rank%d", i)
			cpu := i
			k.Spawn(nil, Attr{Name: name, Policy: task.HPC, Affinity: topo.MaskOf(cpu)}, func(p *Proc) {
				var phase func(n int)
				phase = func(n int) {
					if n == 0 {
						done[name] = p.Now()
						p.Exit()
						return
					}
					p.Compute(150*sim.Millisecond, func() {
						p.Sleep(2*sim.Millisecond, func() { phase(n - 1) })
					})
				}
				phase(4)
			})
		}
		k.Spawn(nil, Attr{Name: "daemon"}, func(p *Proc) {
			var loop func()
			loop = func() {
				p.Sleep(50*sim.Millisecond, func() {
					p.Compute(6*sim.Millisecond, func() { loop() })
				})
			}
			loop()
		})
	}
	std, fast, kf := runBoth(t, cfg, load, sim.Time(sim.Second))
	std.diff(t, fast)
	if kf.Perf.TicksCoalesced == 0 {
		t.Error("adaptive-tick HPL run coalesced nothing")
	}
}

func TestFastForwardAdaptiveTickLoneHPC(t *testing.T) {
	// AdaptiveTick composes with fast-forward: a lone HPC rank keeps its
	// 10 Hz housekeeping grid in both modes, with identical per-CPU tick
	// counts and identical TickCost theft visible in its completion time.
	for _, ff := range []bool{false, true} {
		k := New(Config{Topo: uni(), AdaptiveTick: true, FastForward: ff,
			SwitchCost: 1, TickCost: sim.Microsecond, Seed: 5})
		var done sim.Time
		k.Spawn(nil, Attr{Name: "rank", Policy: task.HPC}, func(p *Proc) {
			p.Compute(sim.Duration(sim.Second), func() { done = p.Now(); p.Exit() })
		})
		k.Run(sim.Time(2 * sim.Second))
		// 1s of work at 10 Hz housekeeping: 10-ish ticks, each stealing 1us.
		if k.TicksOn(0) < 9 || k.TicksOn(0) > 11 {
			t.Fatalf("ff=%v: lone HPC rank took %d ticks over 1s, want ~10 (100ms housekeeping)",
				ff, k.TicksOn(0))
		}
		wantLo := sim.Time(sim.Second).Add(9 * sim.Microsecond)
		wantHi := sim.Time(sim.Second).Add(12 * sim.Microsecond)
		if done < wantLo || done > wantHi {
			t.Fatalf("ff=%v: done at %v, want 1s + ~10us of tick theft", ff, done)
		}
	}
}

func TestFastForwardAdaptiveTickBitwise(t *testing.T) {
	// The full adaptive-tick rate dance — lone HPC at 10 Hz, back to 250 Hz
	// when a sibling queues up — must be bitwise identical across modes.
	cfg := Config{Topo: dual(), AdaptiveTick: true, Seed: 9}
	load := func(k *Kernel, done map[string]sim.Time) {
		k.Spawn(nil, Attr{Name: "rank", Policy: task.HPC, Affinity: topo.MaskOf(0)}, func(p *Proc) {
			p.Compute(900*sim.Millisecond, func() { done["rank"] = p.Now(); p.Exit() })
		})
		// A second HPC task shares CPU 0 mid-run, forcing the tick back to
		// full rate for the round-robin interval.
		k.Spawn(nil, Attr{Name: "intruder", Policy: task.HPC, Affinity: topo.MaskOf(0)}, func(p *Proc) {
			p.Sleep(300*sim.Millisecond, func() {
				p.Compute(100*sim.Millisecond, func() { done["intruder"] = p.Now(); p.Exit() })
			})
		})
	}
	std, fast, _ := runBoth(t, cfg, load, sim.Time(2*sim.Second))
	std.diff(t, fast)
}

func TestFastForwardRunHorizonSettles(t *testing.T) {
	// Stopping mid-compute must leave counters settled to the horizon: a
	// fast-forward run paused at 500ms agrees with a standard run paused
	// there, tick for tick.
	cfg := Config{Topo: uni(), Seed: 13}
	load := func(k *Kernel, done map[string]sim.Time) {
		k.Spawn(nil, Attr{Name: "w"}, func(p *Proc) {
			p.Compute(sim.Duration(sim.Second), func() { done["w"] = p.Now(); p.Exit() })
		})
	}
	std, fast, kf := runBoth(t, cfg, load, sim.Time(500*sim.Millisecond))
	std.diff(t, fast)
	if kf.Perf.Ticks == 0 {
		t.Fatal("no ticks settled by the horizon catch-up")
	}
}

func TestFastForwardDispatchesFewerEvents(t *testing.T) {
	// The point of the exercise: a quiescent pinned workload dispatches far
	// less timer traffic in fast-forward mode.
	run := func(ff bool) (uint64, uint64) {
		k := New(Config{Topo: uni(), Balance: sched.BalanceNone, FastForward: ff, Seed: 17})
		k.Spawn(nil, Attr{Name: "w"}, func(p *Proc) {
			p.Compute(sim.Duration(sim.Second), func() { p.Exit() })
		})
		k.Run(sim.Time(2 * sim.Second))
		return k.Eng.LaneFires, k.Perf.Ticks
	}
	stdFires, stdTicks := run(false)
	ffFires, ffTicks := run(true)
	if stdTicks != ffTicks {
		t.Fatalf("tick counts diverge: std %d, ff %d", stdTicks, ffTicks)
	}
	if ffFires*10 > stdFires {
		t.Fatalf("fast-forward fired %d lanes vs %d standard; expected >10x reduction on a quiescent hog",
			ffFires, stdFires)
	}
}
