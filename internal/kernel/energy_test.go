package kernel

import (
	"math"
	"testing"

	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

func TestEnergyIdleNode(t *testing.T) {
	k := New(Config{Topo: topo.POWER6(), Seed: 1})
	k.Eng.After(sim.Duration(sim.Second), func() {})
	k.Run(sim.Time(sim.Second))
	r := k.Energy()
	if r.ThreadBusy != 0 || r.CoreActive != 0 {
		t.Fatalf("idle node reports activity: %+v", r)
	}
	want := k.Cfg.Power.Base // 1 second at base watts
	if math.Abs(r.Joules-want) > 0.01 {
		t.Fatalf("idle energy = %.2f J, want %.2f", r.Joules, want)
	}
}

func TestEnergySingleBusyThread(t *testing.T) {
	k := New(Config{Topo: topo.POWER6(), SwitchCost: 1, TickCost: 1, Seed: 2})
	k.Spawn(nil, Attr{Name: "w", Affinity: topo.MaskOf(0)}, func(p *Proc) {
		p.Compute(500*sim.Millisecond, func() { p.Exit() })
	})
	k.Eng.After(sim.Duration(sim.Second), func() {})
	k.Run(sim.Time(sim.Second))
	r := k.Energy()
	if r.ThreadBusy < 499*sim.Millisecond || r.ThreadBusy > 501*sim.Millisecond {
		t.Fatalf("thread busy = %v, want ~500ms", r.ThreadBusy)
	}
	if r.CoreActive < 499*sim.Millisecond || r.CoreActive > 501*sim.Millisecond {
		t.Fatalf("core active = %v, want ~500ms", r.CoreActive)
	}
	m := k.Cfg.Power
	want := m.Base + 0.5*(m.CorePower+m.ThreadPower)
	if math.Abs(r.Joules-want) > 0.5 {
		t.Fatalf("energy = %.2f J, want ~%.2f", r.Joules, want)
	}
}

func TestEnergySMTSharesCorePower(t *testing.T) {
	// Two threads of ONE core for 0.64s of wall each (100ms of work at
	// the 0.64 SMT factor... use factor 1 for exact numbers): core power
	// is paid once, thread power twice.
	k := New(Config{Topo: topo.POWER6(), SwitchCost: 1, TickCost: 1,
		SMTFactors: []float64{1, 1}, Seed: 3})
	for i := 0; i < 2; i++ {
		k.Spawn(nil, Attr{Name: "w", Affinity: topo.MaskOf(i)}, func(p *Proc) {
			p.Compute(400*sim.Millisecond, func() { p.Exit() })
		})
	}
	k.Eng.After(sim.Duration(sim.Second), func() {})
	k.Run(sim.Time(sim.Second))
	r := k.Energy()
	if r.ThreadBusy < 790*sim.Millisecond || r.ThreadBusy > 810*sim.Millisecond {
		t.Fatalf("thread busy = %v, want ~800ms", r.ThreadBusy)
	}
	if r.CoreActive < 395*sim.Millisecond || r.CoreActive > 410*sim.Millisecond {
		t.Fatalf("core active = %v, want ~400ms (shared core)", r.CoreActive)
	}
}

func TestEnergyOpenIntervals(t *testing.T) {
	// A task still running at measurement time is accounted up to now.
	k := New(Config{Topo: topo.POWER6(), SwitchCost: 1, TickCost: 1, Seed: 4})
	k.Spawn(nil, Attr{Name: "w", Affinity: topo.MaskOf(0)}, func(p *Proc) {
		p.Compute(10*sim.Second, func() { p.Exit() })
	})
	k.Run(sim.Time(sim.Second))
	r := k.Energy()
	if r.ThreadBusy < 990*sim.Millisecond {
		t.Fatalf("open interval not folded in: busy %v", r.ThreadBusy)
	}
}

func TestAdaptiveTickReducesTicks(t *testing.T) {
	run := func(adaptive bool) uint64 {
		k := New(Config{Topo: topo.POWER6(), AdaptiveTick: adaptive, Seed: 5})
		k.Spawn(nil, Attr{Name: "rank", Policy: task.HPC, Affinity: topo.MaskOf(0)},
			func(p *Proc) {
				p.Compute(2*sim.Duration(sim.Second), func() { p.Exit() })
			})
		k.Run(sim.Time(3 * sim.Second))
		return k.Perf.Ticks
	}
	full := run(false)
	adaptive := run(true)
	if adaptive*5 > full {
		t.Fatalf("adaptive tick did not reduce ticks: %d vs %d", adaptive, full)
	}
}

func TestAdaptiveTickOnlyForLoneHPC(t *testing.T) {
	// A CFS task must keep the full tick rate even with AdaptiveTick on
	// (fairness preemption depends on it).
	k := New(Config{Topo: topo.POWER6(), AdaptiveTick: true, Seed: 6})
	k.Spawn(nil, Attr{Name: "w", Affinity: topo.MaskOf(0)}, func(p *Proc) {
		p.Compute(sim.Duration(sim.Second), func() { p.Exit() })
	})
	k.Run(sim.Time(2 * sim.Second))
	// 1s busy at HZ=250 is ~250 ticks.
	if k.Perf.Ticks < 200 {
		t.Fatalf("CFS task lost its tick: %d", k.Perf.Ticks)
	}
}

func TestEnergyReportString(t *testing.T) {
	k := New(Config{Topo: topo.POWER6(), Seed: 7})
	k.Eng.After(sim.Duration(sim.Second), func() {})
	k.Run(sim.Time(sim.Second))
	if s := k.Energy().String(); len(s) == 0 {
		t.Fatal("empty report string")
	}
}
