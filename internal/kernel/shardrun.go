package kernel

import (
	"math/bits"

	"hplsim/internal/pool"
	"hplsim/internal/shard"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// This file is the conservative parallel catch-up phase (DESIGN.md,
// "Parallel sharding"): when Config.Shards partitions the node, the elided
// ticks a fast-forward catch-up must replay are fanned out over a
// pool.Gang, one worker per chip-aligned shard, instead of walked
// sequentially. The synchronization horizon is the catch-up bound itself —
// the instant of the next heap event (or run end), before which replay is
// provably quiescent (NextDecision/NextBalanceDue arming) — so no
// cross-shard interaction can occur inside the window: every wakeup,
// migration, MPI release, or balance pull is a heap event, and the first
// of them is exactly where the window closes. Each worker replays only its
// own CPUs' per-CPU state plus same-shard sums (core busy time; shards are
// chip-aligned so SMT siblings and cores never straddle a boundary); the
// cross-shard sums (perf tick counters) accumulate into per-shard
// shard.Scratch mailboxes merged in ascending shard order, and the
// completion-event shifts are applied by the coordinator in ascending CPU
// order after the barrier — both identical to the sequential ascending-CPU
// accumulation, which is what keeps sharded runs bitwise identical to
// sequential ones.

// parMinInstants is the default Config.ShardGrain: below this many pending
// tick instants in one catch-up, the barrier and cache traffic of a
// parallel phase cost more than the replay itself, so the sequential loop
// runs instead (the result is identical either way; only wall time
// differs).
const parMinInstants = 2048

// parCatch is the kernel's parallel catch-up state.
type parCatch struct {
	plan    shard.Plan
	window  shard.Window
	gang    *pool.Gang
	// body is the worker closure, built once at init so the per-phase
	// fan-out allocates nothing (the alloc budget holds catchUpSharded
	// to zero escapes).
	body  func(worker int)
	grain int64
	scratch []shard.Scratch
	// theft[cpu] is the tick-cost displacement of cpu's projected
	// completion accumulated by the worker that replayed it; the
	// coordinator turns it into engine Shifts after the barrier (workers
	// never touch the engine).
	theft []sim.Duration
	// buckets[s] lists shard s's CPUs with pending ticks, ascending id
	// (the ticking-bitmap walk order), rebuilt each phase.
	buckets [][]*cpuState
	// inline lists CPUs whose replay must stay on the coordinator: an RT
	// current task reads the kernel clock while charging exec time
	// (throttle period roll-over), which only the sequential replay path
	// (k.replaying/k.vnow) models.
	inline []*cpuState
	// active marks a parallel phase in flight; the reschedule, timer, and
	// tick-adjust guards treat it like replaying (it is replay, running
	// off the coordinator goroutine). Written by the coordinator around
	// the gang barrier, read by workers inside it.
	active bool
	// at and tieID are the phase's replay bound — the true horizon,
	// unless Chaos{ShardSkew} deliberately inflates it to prove the
	// -tags invariants window audit fires.
	at    sim.Time
	tieID int
	// phases counts completed parallel fan-outs, a host-side diagnostic
	// (never part of a trace or fingerprint): tests use it to prove the
	// parallel path ran rather than being gated to the sequential loop.
	phases uint64
}

// ShardPhases reports how many catch-ups actually fanned out over the
// shard gang. Zero on sequential configurations. Diagnostic only — the
// count reflects host-side execution strategy, not simulated behaviour,
// and identical runs at different shard counts legitimately differ in it.
func (k *Kernel) ShardPhases() uint64 {
	if k.par == nil {
		return 0
	}
	return k.par.phases
}

// initShards builds the parallel catch-up state when the configuration
// asks for it and the topology can honour it.
func (k *Kernel) initShards() {
	if !k.ff || k.Cfg.Naive || k.Cfg.Shards <= 1 {
		return
	}
	plan := shard.NewPlan(k.Topo, k.Cfg.Shards)
	if plan.Shards() <= 1 {
		return
	}
	shardOf := make([]int, len(k.cpus))
	for cpu := range k.cpus {
		shardOf[cpu] = plan.Of(cpu)
	}
	grain := int64(k.Cfg.ShardGrain)
	if grain <= 0 {
		grain = parMinInstants
	}
	// Lane ids equal CPU ids, so the CPU partition is the lane partition.
	k.Eng.SetShards(plan.Shards(), shardOf)
	k.par = &parCatch{
		plan:    plan,
		grain:   grain,
		scratch: make([]shard.Scratch, plan.Shards()),
		theft:   make([]sim.Duration, len(k.cpus)),
		buckets: make([][]*cpuState, plan.Shards()),
	}
	k.par.body = func(worker int) { k.replayShard(worker) }
}

// parActive reports whether a parallel replay phase is in flight.
func (k *Kernel) parActive() bool { return k.par != nil && k.par.active }

// closeGang releases the phase workers (no-op if none were ever needed).
func (p *parCatch) closeGang() {
	if p.gang != nil {
		p.gang.Close()
		p.gang = nil
	}
}

// parSafe reports whether a CPU running t can replay off the coordinator
// goroutine. The CFS and HPC tick paths touch only the CPU's own runqueue
// and task state; the RT class reads the kernel clock (throttle period
// roll-over in ExecCharge), and an idle current only arises from a
// defensive race, so both take the sequential inline path.
func parSafe(t *task.Task) bool {
	return t.Policy == task.HPC || t.Policy == task.Normal
}

// catchUpSharded is the parallel counterpart of catchUp. It reports false
// when the phase is not worth a fan-out (too few pending instants, or all
// pending work in one shard); the caller then runs the sequential loop.
func (k *Kernel) catchUpSharded(at sim.Time, tieID int) bool {
	p := k.par
	for i := range p.buckets {
		p.buckets[i] = p.buckets[i][:0]
	}
	p.inline = p.inline[:0]
	var total int64
	nonEmpty := 0
	for w, word := range k.ticking {
		for v := word; v != 0; v &= v - 1 {
			c := k.cpus[w*64+bits.TrailingZeros64(v)]
			if c.tickNext > at || (c.tickNext == at && c.id >= tieID) {
				continue // nothing pending on this CPU
			}
			if !parSafe(c.curr) {
				p.inline = append(p.inline, c)
				continue
			}
			bound := at
			if c.id >= tieID {
				bound--
			}
			// The tick period is constant between events (tickPeriodFor's
			// contract), so the pending-instant count is exact.
			total += int64(bound.Sub(c.tickNext))/int64(k.tickPeriodFor(c)) + 1
			s := p.plan.Of(c.id)
			if len(p.buckets[s]) == 0 {
				nonEmpty++
			}
			p.buckets[s] = append(p.buckets[s], c)
		}
	}
	if nonEmpty < 2 || total < p.grain {
		return false
	}

	// Inline CPUs replay first on the sequential path (they commute with
	// the shard work: replay touches per-CPU state plus order-insensitive
	// sums, and the gang start orders these writes before the workers').
	for _, c := range p.inline {
		k.catchUpCPU(c, at, tieID)
	}

	p.window.Open(at, tieID)
	bound := at
	if k.Sched.ChaosShardSkew() {
		// Deliberately mis-set horizon: workers plan ticks past the
		// window the coordinator committed to. The -tags invariants
		// window audit must catch this before any state is touched.
		bound = at.Add(k.tickPeriod())
	}
	p.at, p.tieID = bound, tieID
	for i := range p.scratch {
		p.scratch[i].Reset()
	}
	if p.gang == nil {
		// Sanctioned concurrency: the gang is pool-owned, host-side
		// execution machinery. Workers replay disjoint shards between two
		// barriers, cross-shard sums land in per-shard mailboxes merged in
		// ascending shard order, and completion shifts are applied by the
		// coordinator in ascending CPU order — so results are bitwise
		// independent of goroutine scheduling (the schedcheck shard oracle
		// compares every sharded run against the sequential loop).
		p.gang = pool.NewGang(p.plan.Shards()) //schedlint:ignore taint — pool-owned gang, results proven shard-count independent
	}
	p.active = true
	p.gang.Do(p.body)
	p.active = false
	p.phases++

	// Merge the mailboxes in ascending shard order and apply the
	// completion shifts in ascending CPU order — the orders the
	// sequential ascending-CPU walk produces. The sums are unsigned and
	// the shifts seq-preserving and associative in the event timestamp,
	// so the engine state is identical to the sequential loop's.
	for i := range p.scratch {
		k.Perf.Ticks += p.scratch[i].Ticks
		k.Perf.TicksCoalesced += p.scratch[i].TicksCoalesced
	}
	for _, bucket := range p.buckets {
		for _, c := range bucket {
			if th := p.theft[c.id]; th > 0 {
				p.theft[c.id] = 0
				if c.completion.Pending() {
					k.Eng.Shift(c.completion, c.completion.When().Add(th))
				}
			}
		}
	}
	return true
}

// replayShard is the worker body: replay every pending CPU of one shard.
func (k *Kernel) replayShard(worker int) {
	p := k.par
	scr := &p.scratch[worker]
	for _, c := range p.buckets[worker] {
		k.catchUpCPUShard(c, p.at, p.tieID, scr)
	}
}

// catchUpCPUShard is catchUpCPU off the coordinator: same per-CPU loop,
// same arithmetic, but counters go to the shard scratch and the completion
// shift is deferred to the coordinator. Every stretch is committed against
// the synchronization window before it is replayed.
func (k *Kernel) catchUpCPUShard(c *cpuState, at sim.Time, tieID int, scr *shard.Scratch) {
	var theft sim.Duration
	for c.tickNext < at || (c.tickNext == at && c.id < tieID) {
		bound := at
		if c.id >= tieID {
			bound-- // ticks strictly before the event instant
		}
		period := k.tickPeriodFor(c)
		m := int64(bound.Sub(c.tickNext))/int64(period) + 1
		k.par.window.Commit(c.id, c.tickNext.Add(sim.Duration(m-1)*period))
		if k.replayBatch(c, m, scr) {
			theft += sim.Duration(m) * k.Cfg.TickCost
			continue
		}
		theft += k.replayTick(c, scr)
	}
	k.par.theft[c.id] = theft
}
