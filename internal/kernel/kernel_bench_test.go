package kernel

import (
	"math"
	"testing"

	"hplsim/internal/sim"
	"hplsim/internal/topo"
)

// BenchmarkBusyNodeSecond measures simulating one virtual second of a
// fully loaded 8-CPU node (8 CPU hogs, ticks, fairness preemption).
func BenchmarkBusyNodeSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New(Config{Topo: topo.POWER6(), Seed: uint64(i)})
		for c := 0; c < 8; c++ {
			k.Spawn(nil, Attr{Name: "hog"}, func(p *Proc) {
				p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
			})
		}
		k.Run(sim.Time(sim.Second))
	}
}

// BenchmarkContextSwitchPath measures the full preempt/switch/resume cycle:
// two CFS hogs sharing one CPU for a virtual second (~160 switches).
func BenchmarkContextSwitchPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New(Config{Topo: topo.Topology{Chips: 1, CoresPerChip: 1, ThreadsPerCore: 1},
			Seed: uint64(i)})
		for c := 0; c < 2; c++ {
			k.Spawn(nil, Attr{Name: "hog"}, func(p *Proc) {
				p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
			})
		}
		k.Run(sim.Time(sim.Second))
	}
}

// BenchmarkSleepWakeChurn measures the wakeup path: 8 daemons cycling
// 1ms-sleep / 100us-run for a virtual second (~8000 wakeups).
func BenchmarkSleepWakeChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New(Config{Topo: topo.POWER6(), Seed: uint64(i)})
		for c := 0; c < 8; c++ {
			k.Spawn(nil, Attr{Name: "d"}, func(p *Proc) {
				var cycle func()
				cycle = func() {
					p.Sleep(sim.Millisecond, func() {
						p.Compute(100*sim.Microsecond, cycle)
					})
				}
				p.Sleep(sim.Millisecond, func() {
					p.Compute(100*sim.Microsecond, cycle)
				})
			})
		}
		k.Run(sim.Time(sim.Second))
	}
}

// BenchmarkSteadyTickSteal measures the event-engine hot path seen from the
// kernel: one hog per CPU, only ticks and completion reschedules in flight.
// With the engine free list, a whole virtual second of steady-state ticking
// allocates nothing beyond kernel construction.
func BenchmarkSteadyTickSteal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New(Config{Topo: topo.Topology{Chips: 1, CoresPerChip: 2, ThreadsPerCore: 1},
			Seed: uint64(i)})
		for c := 0; c < 2; c++ {
			k.Spawn(nil, Attr{Name: "hog"}, func(p *Proc) {
				p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
			})
		}
		k.Run(sim.Time(sim.Second))
	}
}
