package kernel

import (
	"math"
	"math/bits"

	"hplsim/internal/invariant"
	"hplsim/internal/shard"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// resched requests a scheduling pass on cpu at the current instant. Multiple
// requests within one instant coalesce into a single pass.
func (k *Kernel) resched(cpu int) {
	if k.replaying || k.parActive() {
		// An elided tick asked to reschedule: its NextDecision bound was
		// too late. Diverging silently would be far worse than crashing.
		panic("kernel: reschedule during fast-forward tick replay (NextDecision bound too late)")
	}
	c := k.cpus[cpu]
	if c.reschedPending {
		return
	}
	c.reschedPending = true
	k.Eng.At(k.Eng.Now(), func() {
		c.reschedPending = false
		k.schedule(c)
	})
}

// tickPeriod is the timer interrupt interval.
func (k *Kernel) tickPeriod() sim.Duration {
	return sim.Duration(int64(sim.Second) / int64(k.Cfg.HZ))
}

// tickPeriodFor reports the period a tick on c firing at the current
// kernel time would choose for its successor. With AdaptiveTick, an HPC
// task running alone on its CPU only gets a 10 Hz housekeeping tick — the
// NETTICK optimisation that removes most of the timer micro-noise while
// the scheduler has nothing to decide. The inputs (current task, queue
// occupancy) change only at events, so between two events the period is
// constant — which is what lets armLane enumerate the elided tick grid.
func (k *Kernel) tickPeriodFor(c *cpuState) sim.Duration {
	period := k.tickPeriod()
	if k.Cfg.AdaptiveTick && c.curr != c.idle &&
		c.curr.Policy == task.HPC && k.Sched.NrQueued(c.id) == 0 {
		housekeeping := 100 * sim.Millisecond
		if housekeeping > period {
			period = housekeeping
		}
	}
	return period
}

// armTick starts the periodic tick on a busy CPU (no-op if already armed).
func (k *Kernel) armTick(c *cpuState) {
	if c.tickNext != 0 {
		return
	}
	c.tickNext = k.now().Add(k.tickPeriodFor(c))
	k.ticking[c.id>>6] |= 1 << uint(c.id&63)
	k.armLane(c)
}

func (k *Kernel) cancelTick(c *cpuState) {
	k.Eng.DisarmLane(c.lane)
	c.tickNext = 0
	k.ticking[c.id>>6] &^= 1 << uint(c.id&63)
}

// armLane points c's timer lane at the next tick that must actually be
// dispatched: every grid instant in standard mode; in fast-forward mode the
// first grid instant at or after the earliest possible scheduling decision
// (class NextDecision bound or periodic-balance deadline). Grid instants
// before that are quiescent by construction and are replayed on demand.
// Rounding the decision bound up to the grid is exact, not a heuristic: a
// decision manifests only when a tick fires, and no tick exists between
// grid instants.
func (k *Kernel) armLane(c *cpuState) {
	if !k.ff {
		k.Eng.ArmLane(c.lane, c.tickNext)
		return
	}
	d := k.Sched.NextDecision(c.id, c.curr, c.spanStart)
	if due := k.Sched.NextBalanceDue(c.id); due < d {
		d = due
	}
	if d == sim.Infinity {
		// No tick before the next external event can decide anything.
		// Leave the lane disarmed; the elided instants are replayed
		// lazily when the next event (or run horizon) needs them.
		k.Eng.DisarmLane(c.lane)
		return
	}
	target := c.tickNext
	if d > c.spanStart && d > target {
		// A future bound: accrual is measured from the anchor, so no tick
		// before d can see the condition true; skip to the first grid
		// instant at or after d. A bound at or before the anchor means the
		// condition already holds — the very next grid tick decides, even
		// when switch/tick dead time has pushed the anchor past it.
		p := k.tickPeriodFor(c)
		n := (d.Sub(target) + p - 1) / p
		target = target.Add(n * p)
	}
	k.Eng.ArmLane(c.lane, target)
}

// tickAdjust re-aims cpu's timer lane after something moved its next
// scheduling decision (possibly earlier): a task was enqueued there, the
// balancing gate flipped, or a scheduling pass completed. The tick grid
// itself never moves — only which grid instant is dispatched live.
func (k *Kernel) tickAdjust(cpu int) {
	if !k.ff || k.replaying || k.parActive() {
		return
	}
	c := k.cpus[cpu]
	if c.tickNext == 0 {
		return
	}
	k.armLane(c)
}

// tickFire is the timer interrupt handler: account the elapsed span, steal
// the tick cost from the running task, drive the class tick (timeslice and
// fairness preemption) and the periodic load balancer, and re-arm. It runs
// on the CPU's timer lane, so it consumes no event sequence number and
// fires ahead of any heap event at the same instant — identically in both
// tick modes, which is what keeps their dispatch fingerprints comparable.
func (k *Kernel) tickFire(c *cpuState) {
	if c.tickNext == 0 {
		return // raced with idling (defensive; cancelTick disarms the lane)
	}
	now := k.Eng.Now()
	if k.ff {
		// Settle every CPU's elided ticks first. Same-instant ticks of
		// lower-numbered CPUs precede this one (the engine fired their
		// lanes first if armed; replay must respect the same order).
		k.catchUp(now, c.id)
		if c.tickNext != now {
			panic("kernel: fast-forward lane fired off the tick grid")
		}
	}
	if c.curr == c.idle {
		return // raced with idling; stay tickless
	}
	c.ticks++
	k.Perf.Ticks++
	k.syncProgress(c)
	// The interrupt itself steals CPU time: the paper's "micro noise".
	c.spanStart = c.spanStart.Add(k.Cfg.TickCost)
	if c.completion.Pending() {
		k.Eng.Shift(c.completion, c.completion.When().Add(k.Cfg.TickCost))
	}
	k.Sched.Tick(c.id, c.curr)
	k.Sched.PeriodicBalance(c.id)
	c.tickNext = now.Add(k.tickPeriodFor(c))
	k.armLane(c)
	if invariant.Enabled {
		k.checkInvariants()
	}
}

// replayTick re-runs the bookkeeping of one elided tick of c exactly as
// tickFire would have at that instant: same counters, same accounting
// arithmetic in the same order, same class tick (slice refills and throttle
// charging included). What it skips is exactly what cannot matter there —
// the event dispatch (lane firings consume no sequence numbers in either
// mode) and PeriodicBalance (a provable no-op before NextBalanceDue, which
// bounds the lane arming). It returns the tick-cost theft; the caller
// batches the seq-preserving completion Shift, which is associative in the
// event's integer timestamp.
//
// scr selects the counter sink: nil is the sequential path, which also
// models the replayed instant through k.replaying/k.vnow so any clock read
// on the replay path (an RT throttle roll-over) sees the tick's own time.
// A non-nil scr is a shard worker: the global perf counters become
// per-shard scratch deltas (merged after the barrier) and the clock stays
// untouched — workers replay only CPUs whose class tick path is clock-free
// (see parSafe).
func (k *Kernel) replayTick(c *cpuState, scr *shard.Scratch) sim.Duration {
	at := c.tickNext
	if scr == nil {
		k.replaying, k.vnow = true, at
		k.Perf.Ticks++
		k.Perf.TicksCoalesced++
	} else {
		scr.Ticks++
		scr.TicksCoalesced++
	}
	c.ticks++
	k.syncProgressAt(c, at)
	c.spanStart = c.spanStart.Add(k.Cfg.TickCost)
	k.Sched.Tick(c.id, c.curr)
	c.tickNext = at.Add(k.tickPeriodFor(c))
	if scr == nil {
		k.replaying = false
	}
	return k.Cfg.TickCost
}

// replayBatch settles m consecutive elided ticks of c in one pass, bitwise
// identical to m calls of replayTick. It requires the steady state where
// every tick in the run sees the same inputs — the span exactly one period
// behind, so each tick charges dt = period - TickCost — and a class that can
// batch its charge (sched.TickBatcher). Everything integer (exec time, core
// busy, counters, the class charge) collapses in closed form; the
// non-associative float recurrences (cache warmth, work drain) keep their
// per-tick loop, but with the per-batch constants hoisted: the exponential
// depends only on dt, so each elided tick costs a handful of float ops and
// none of the per-tick call machinery. The loop bodies mirror the exact
// expression shapes of cache.Progress and syncProgress.
func (k *Kernel) replayBatch(c *cpuState, m int64, scr *shard.Scratch) bool {
	t := c.curr
	p := k.tickPeriodFor(c)
	dt := p - k.Cfg.TickCost
	if dt <= 0 || c.tickNext.Sub(c.spanStart) != dt {
		return false
	}
	if !k.Sched.ReplayTicks(c.id, t, dt, m) {
		return false
	}
	c.ticks += uint64(m)
	if scr == nil {
		k.Perf.Ticks += uint64(m)
		k.Perf.TicksCoalesced += uint64(m)
	} else {
		scr.Ticks += uint64(m)
		scr.TicksCoalesced += uint64(m)
	}
	span := sim.Duration(m) * dt
	t.SumExec += span
	k.cores[k.Topo.CoreOf(c.id)].busy += span
	fdt := float64(dt)
	tau := float64(k.Cfg.Cache.WarmTau)
	e := math.Exp(-fdt / tau)
	oneMinusE := 1 - e
	smt := k.smtFactor(c.id)
	w, sens := t.Cache.Warmth, t.Sensitivity
	drain := t.HasWork()
	for i := int64(0); i < m; i++ {
		if drain && t.Work > 0 {
			lost := sens * (1 - w) * tau * oneMinusE
			t.Work -= (fdt - lost) * smt
			if t.Work < 0 {
				t.Work = 0
			}
		}
		w = 1 - (1-w)*e
	}
	t.Cache.Warmth = w
	c.tickNext = c.tickNext.Add(sim.Duration(m) * p)
	c.spanStart = c.tickNext.Add(-dt) // one period behind again, cost charged
	return true
}

// catchUp replays every CPU's elided ticks up to `at`. Ticks exactly at
// `at` are included only for CPUs below tieID: a heap event at an instant
// runs after all of that instant's lane firings (tieID = NumCPUs), while a
// live tick on CPU i runs after same-instant ticks of lower-numbered CPUs
// only (tieID = i), matching the engine's lowest-lane-first tie-break.
// Replaying per-CPU rather than globally time-sorted is exact because
// elided ticks commute across CPUs: each touches only its own CPU's
// scheduling state plus order-insensitive sums (core busy time, counters).
// Each stretch batches through replayBatch where the steady state allows
// and falls back to tick-by-tick replay otherwise (typically just the
// first tick after an event, which realigns the span to the grid).
func (k *Kernel) catchUp(at sim.Time, tieID int) {
	if k.par != nil && k.catchUpSharded(at, tieID) {
		return
	}
	if k.Cfg.Naive {
		for _, c := range k.cpus {
			if c.tickNext == 0 {
				continue
			}
			k.catchUpCPU(c, at, tieID)
		}
		return
	}
	// Walk only CPUs with a live tick grid. Replay never arms or cancels
	// ticks (Resched and timers panic during replay), so the bitmap is
	// stable while we iterate; the ascending bit order matches the
	// ascending k.cpus order of the full loop, and the skipped CPUs are
	// exactly those the full loop would have `continue`d over.
	for w, word := range k.ticking {
		for v := word; v != 0; v &= v - 1 {
			k.catchUpCPU(k.cpus[w*64+bits.TrailingZeros64(v)], at, tieID)
		}
	}
}

// catchUpCPU replays one CPU's elided ticks up to `at` (see catchUp for the
// tie rules).
func (k *Kernel) catchUpCPU(c *cpuState, at sim.Time, tieID int) {
	var theft sim.Duration
	for c.tickNext < at || (c.tickNext == at && c.id < tieID) {
		bound := at
		if c.id >= tieID {
			bound-- // ticks strictly before the event instant
		}
		m := int64(bound.Sub(c.tickNext))/int64(k.tickPeriodFor(c)) + 1
		if k.replayBatch(c, m, nil) {
			theft += sim.Duration(m) * k.Cfg.TickCost
			continue
		}
		theft += k.replayTick(c, nil)
	}
	if theft > 0 && c.completion.Pending() {
		k.Eng.Shift(c.completion, c.completion.When().Add(theft))
	}
}

// beforeEvent is the engine hook in fast-forward mode: before any heap
// event dispatches, settle all elided ticks at or before its instant so
// the event observes exactly the state a step-every-tick run would have
// produced. Replay never schedules, so the hook is idempotent at a given
// instant; its only engine mutations (completion shifts) target times at
// or after the event, as the hook contract requires.
func (k *Kernel) beforeEvent(at sim.Time) {
	k.catchUp(at, len(k.cpus))
}

// smtFactor reports the throughput factor of cpu given how many of its SMT
// siblings are currently busy. Sibling CPU numbers are contiguous, so the
// hottest accounting path iterates a plain integer range instead of
// materialising a mask.
func (k *Kernel) smtFactor(cpu int) float64 {
	busy := 0
	base := k.Topo.CoreOf(cpu) * k.Topo.ThreadsPerCore
	for sib := base; sib < base+k.Topo.ThreadsPerCore; sib++ {
		if sib != cpu && !k.IdleOn(sib) {
			busy++
		}
	}
	f := k.Cfg.SMTFactors
	if busy >= len(f) {
		busy = len(f) - 1
	}
	return f[busy]
}

// syncProgress settles the running span of c.curr up to now: work done,
// cache warmth, CPU-time accounting, and the class exec charge.
func (k *Kernel) syncProgress(c *cpuState) {
	// k.now() is the replayed tick instant during elided-tick replay.
	k.syncProgressAt(c, k.now())
}

// syncProgressAt is syncProgress with the settlement instant made
// explicit: shard workers replay elided ticks off the coordinator
// goroutine, where the kernel clock cannot carry the replayed instant, so
// they pass it directly. Sequential callers go through syncProgress.
func (k *Kernel) syncProgressAt(c *cpuState, now sim.Time) {
	t := c.curr
	if t == c.idle {
		return
	}
	if now <= c.spanStart {
		return // span has not started yet (switch/tick cost dead time)
	}
	dt := now.Sub(c.spanStart)
	c.spanStart = now

	work, w1 := k.Cfg.Cache.Progress(dt, t.Cache.Warmth, t.Sensitivity)
	work *= k.smtFactor(c.id)
	t.Cache.Warmth = w1
	t.SumExec += dt
	k.cores[k.Topo.CoreOf(c.id)].busy += dt
	k.Sched.ExecCharge(c.id, t, dt)

	if t.HasWork() {
		t.Work -= work
		if t.Work < 0 {
			t.Work = 0
		}
	}
}

// advance runs pending zero-work continuations of c.curr and then projects
// the completion of whatever work they installed.
func (k *Kernel) advance(c *cpuState) {
	k.runSteps(c)
	k.project(c)
}

// project (re)schedules the completion event for c.curr's pending work.
func (k *Kernel) project(c *cpuState) {
	k.Eng.Cancel(c.completion)
	c.completion = sim.EventRef{}
	t := c.curr
	if t == c.idle || t.State != task.Running {
		return
	}
	if t.Spinning() || t.Work <= 0 {
		return // busy-wait or await-continuation: no completion event
	}
	smt := k.smtFactor(c.id)
	dt := k.Cfg.Cache.FinishTime(t.Work/smt, t.Cache.Warmth, t.Sensitivity)
	at := c.spanStart.Add(dt)
	if at < k.Eng.Now() {
		at = k.Eng.Now()
	}
	c.completion = k.Eng.At(at, func() {
		c.completion = sim.EventRef{}
		k.workDone(c, t)
	})
}

// workDone fires when the projected completion of t arrives: settle the
// span and run the task's continuation (or re-project numerical residue).
func (k *Kernel) workDone(c *cpuState, t *task.Task) {
	if c.curr != t {
		return // raced with a switch; the new projection owns the task
	}
	k.syncProgress(c)
	if t.Work > 1000 { // > 1us of genuine work left: re-project
		k.project(c)
		return
	}
	t.Work = 0
	k.advance(c)
}

// runSteps executes pending zero-work continuations of the running task.
// A continuation typically installs the next compute step, blocks, spins,
// or exits; the loop ends as soon as any of those happen. Continuations may
// re-enter the kernel (SetStep, barrier releases), so the loop guards
// against reentrancy.
func (k *Kernel) runSteps(c *cpuState) {
	if c.inSteps {
		return
	}
	c.inSteps = true
	defer func() { c.inSteps = false }()
	t := c.curr
	for t.State == task.Running && t.Work == 0 && t.OnDone != nil {
		fn := t.OnDone
		t.OnDone = nil
		fn()
		if c.curr != t {
			return
		}
	}
}

// schedule is the core reschedule pass for one CPU, the analogue of
// __schedule(): settle the current span, requeue a still-runnable previous
// task, pick the next task through the class chain (pulling work if the CPU
// would otherwise idle), then context-switch.
func (k *Kernel) schedule(c *cpuState) {
	now := k.Eng.Now()
	prev := c.curr

	k.syncProgress(c)
	k.Eng.Cancel(c.completion)
	c.completion = sim.EventRef{}

	// Requeue prev if it is still runnable (involuntary switch path).
	if prev != c.idle && prev.State == task.Running {
		prev.State = task.Runnable
		k.Sched.PutPrev(c.id, prev)
		if !prev.Affinity.Has(c.id) {
			// An affinity change evicted prev from this CPU: the
			// migration-thread path of sched_setaffinity.
			k.Sched.MoveQueued(prev, prev.Affinity.First())
		}
	}

	pick := k.Sched.PickNext(c.id)
	if pick == c.idle && k.Sched.IdleBalance(c.id) {
		// Pulled a task from a busier CPU rather than idling.
		pick = k.Sched.PickNext(c.id)
	}

	if pick == prev {
		// No switch: restore and resume.
		pick.State = task.Running
		k.advance(c)
		k.tickAdjust(c.id)
		if invariant.Enabled {
			k.checkInvariants()
		}
		return
	}

	// A real context switch.
	k.Perf.ContextSwitches++
	if prev != c.idle {
		if prev.State == task.Runnable {
			k.Perf.InvoluntarySwitches++
			prev.Counters.NIVCSw++
		} else {
			k.Perf.VoluntarySwitches++
			prev.Counters.NVCSw++
		}
		prev.Cache.BusySnapshot = k.cores[k.Topo.CoreOf(c.id)].busy
		prev.LastRan = now
	}
	if k.Cfg.Tracer != nil {
		k.Cfg.Tracer.Switch(now, c.id, prev, pick)
	}

	wasIdle := prev == c.idle
	goesIdle := pick == c.idle
	if wasIdle != goesIdle {
		// The core's SMT occupancy changes: settle sibling spans under
		// the old rate before the transition takes effect, and account
		// the occupancy interval for the energy model.
		k.syncSiblings(c.id)
		k.cpuBusyChanged(c.id, wasIdle)
	}

	c.curr = pick
	k.Sched.SetCurr(c.id, pick)
	if !goesIdle {
		pick.State = task.Running
		pick.CPU = c.id
		core := k.Topo.CoreOf(c.id)
		if pick.Cache.Core != core {
			// Cross-core migration: cold caches.
			pick.Cache.Warmth = 0
			pick.Cache.Core = core
		} else {
			exposure := k.cores[core].busy - pick.Cache.BusySnapshot
			pick.Cache.Warmth = k.Cfg.Cache.Evict(pick.Cache.Warmth, exposure)
		}
		c.spanStart = now.Add(k.Cfg.SwitchCost)
		k.armTick(c)
	} else {
		c.spanStart = now
		k.cancelTick(c)
	}

	if wasIdle != goesIdle {
		k.reprojectSiblings(c.id)
	}
	k.advance(c)
	k.tickAdjust(c.id)
	if invariant.Enabled {
		k.checkInvariants()
	}
}

// StealTime models hardware-interrupt context on cpu: `d` of CPU time
// vanishes from whatever is running there, with no scheduler involvement
// and no context switch — the class-independent noise component that even
// HPL cannot deflect (it only reorders runnable tasks). Idle CPUs absorb
// interrupts for free.
func (k *Kernel) StealTime(cpu int, d sim.Duration) {
	c := k.cpus[cpu]
	if c.curr == c.idle || d <= 0 {
		return
	}
	k.syncProgress(c)
	c.spanStart = c.spanStart.Add(d)
	if c.completion.Pending() {
		// Shift, not Reschedule: the interrupt displaces the projected
		// completion without changing its identity or FIFO rank.
		k.Eng.Shift(c.completion, c.completion.When().Add(d))
	}
	k.checkInvariants()
}

// syncSiblings settles the running spans of the busy SMT siblings of cpu
// (their throughput is about to change).
func (k *Kernel) syncSiblings(cpu int) {
	base := k.Topo.CoreOf(cpu) * k.Topo.ThreadsPerCore
	for sib := base; sib < base+k.Topo.ThreadsPerCore; sib++ {
		if sib == cpu {
			continue
		}
		sc := k.cpus[sib]
		if sc.curr != sc.idle {
			k.syncProgress(sc)
		}
	}
}

// reprojectSiblings recomputes the completion events of busy SMT siblings
// after an occupancy change.
func (k *Kernel) reprojectSiblings(cpu int) {
	base := k.Topo.CoreOf(cpu) * k.Topo.ThreadsPerCore
	for sib := base; sib < base+k.Topo.ThreadsPerCore; sib++ {
		if sib == cpu {
			continue
		}
		sc := k.cpus[sib]
		if sc.curr == sc.idle {
			continue
		}
		k.project(sc)
	}
}
