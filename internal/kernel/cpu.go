package kernel

import (
	"hplsim/internal/invariant"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// resched requests a scheduling pass on cpu at the current instant. Multiple
// requests within one instant coalesce into a single pass.
func (k *Kernel) resched(cpu int) {
	c := k.cpus[cpu]
	if c.reschedPending {
		return
	}
	c.reschedPending = true
	k.Eng.At(k.Eng.Now(), func() {
		c.reschedPending = false
		k.schedule(c)
	})
}

// tickPeriod is the timer interrupt interval.
func (k *Kernel) tickPeriod() sim.Duration {
	return sim.Duration(int64(sim.Second) / int64(k.Cfg.HZ))
}

// armTick schedules the next timer interrupt for a busy CPU. With
// AdaptiveTick, an HPC task running alone on its CPU only gets a 10 Hz
// housekeeping tick — the NETTICK optimisation that removes most of the
// timer micro-noise while the scheduler has nothing to decide.
func (k *Kernel) armTick(c *cpuState) {
	if c.tick.Pending() {
		return
	}
	period := k.tickPeriod()
	if k.Cfg.AdaptiveTick && c.curr != c.idle &&
		c.curr.Policy == task.HPC && k.Sched.NrQueued(c.id) == 0 {
		housekeeping := 100 * sim.Millisecond
		if housekeeping > period {
			period = housekeeping
		}
	}
	c.tick = k.Eng.After(period, func() { k.tickFire(c) })
}

func (k *Kernel) cancelTick(c *cpuState) {
	k.Eng.Cancel(c.tick)
	c.tick = sim.EventRef{}
}

// tickFire is the timer interrupt handler: account the elapsed span, steal
// the tick cost from the running task, drive the class tick (timeslice and
// fairness preemption) and the periodic load balancer, and re-arm.
func (k *Kernel) tickFire(c *cpuState) {
	c.tick = sim.EventRef{}
	if c.curr == c.idle {
		return // raced with idling; stay tickless
	}
	k.Perf.Ticks++
	k.syncProgress(c)
	// The interrupt itself steals CPU time: the paper's "micro noise".
	c.spanStart = c.spanStart.Add(k.Cfg.TickCost)
	if c.completion.Pending() {
		k.Eng.Reschedule(c.completion, c.completion.When().Add(k.Cfg.TickCost))
	}
	k.Sched.Tick(c.id, c.curr)
	k.Sched.PeriodicBalance(c.id)
	k.armTick(c)
	if invariant.Enabled {
		k.checkInvariants()
	}
}

// smtFactor reports the throughput factor of cpu given how many of its SMT
// siblings are currently busy.
func (k *Kernel) smtFactor(cpu int) float64 {
	busy := 0
	k.Topo.SiblingsOf(cpu).ForEach(func(sib int) {
		if sib != cpu && !k.IdleOn(sib) {
			busy++
		}
	})
	f := k.Cfg.SMTFactors
	if busy >= len(f) {
		busy = len(f) - 1
	}
	return f[busy]
}

// syncProgress settles the running span of c.curr up to now: work done,
// cache warmth, CPU-time accounting, and the class exec charge.
func (k *Kernel) syncProgress(c *cpuState) {
	t := c.curr
	if t == c.idle {
		return
	}
	now := k.Eng.Now()
	if now <= c.spanStart {
		return // span has not started yet (switch/tick cost dead time)
	}
	dt := now.Sub(c.spanStart)
	c.spanStart = now

	work, w1 := k.Cfg.Cache.Progress(dt, t.Cache.Warmth, t.Sensitivity)
	work *= k.smtFactor(c.id)
	t.Cache.Warmth = w1
	t.SumExec += dt
	k.cores[k.Topo.CoreOf(c.id)].busy += dt
	k.Sched.ExecCharge(c.id, t, dt)

	if t.HasWork() {
		t.Work -= work
		if t.Work < 0 {
			t.Work = 0
		}
	}
}

// advance runs pending zero-work continuations of c.curr and then projects
// the completion of whatever work they installed.
func (k *Kernel) advance(c *cpuState) {
	k.runSteps(c)
	k.project(c)
}

// project (re)schedules the completion event for c.curr's pending work.
func (k *Kernel) project(c *cpuState) {
	k.Eng.Cancel(c.completion)
	c.completion = sim.EventRef{}
	t := c.curr
	if t == c.idle || t.State != task.Running {
		return
	}
	if t.Spinning() || t.Work <= 0 {
		return // busy-wait or await-continuation: no completion event
	}
	smt := k.smtFactor(c.id)
	dt := k.Cfg.Cache.FinishTime(t.Work/smt, t.Cache.Warmth, t.Sensitivity)
	at := c.spanStart.Add(dt)
	if at < k.Eng.Now() {
		at = k.Eng.Now()
	}
	c.completion = k.Eng.At(at, func() {
		c.completion = sim.EventRef{}
		k.workDone(c, t)
	})
}

// workDone fires when the projected completion of t arrives: settle the
// span and run the task's continuation (or re-project numerical residue).
func (k *Kernel) workDone(c *cpuState, t *task.Task) {
	if c.curr != t {
		return // raced with a switch; the new projection owns the task
	}
	k.syncProgress(c)
	if t.Work > 1000 { // > 1us of genuine work left: re-project
		k.project(c)
		return
	}
	t.Work = 0
	k.advance(c)
}

// runSteps executes pending zero-work continuations of the running task.
// A continuation typically installs the next compute step, blocks, spins,
// or exits; the loop ends as soon as any of those happen. Continuations may
// re-enter the kernel (SetStep, barrier releases), so the loop guards
// against reentrancy.
func (k *Kernel) runSteps(c *cpuState) {
	if c.inSteps {
		return
	}
	c.inSteps = true
	defer func() { c.inSteps = false }()
	t := c.curr
	for t.State == task.Running && t.Work == 0 && t.OnDone != nil {
		fn := t.OnDone
		t.OnDone = nil
		fn()
		if c.curr != t {
			return
		}
	}
}

// schedule is the core reschedule pass for one CPU, the analogue of
// __schedule(): settle the current span, requeue a still-runnable previous
// task, pick the next task through the class chain (pulling work if the CPU
// would otherwise idle), then context-switch.
func (k *Kernel) schedule(c *cpuState) {
	now := k.Eng.Now()
	prev := c.curr

	k.syncProgress(c)
	k.Eng.Cancel(c.completion)
	c.completion = sim.EventRef{}

	// Requeue prev if it is still runnable (involuntary switch path).
	if prev != c.idle && prev.State == task.Running {
		prev.State = task.Runnable
		k.Sched.PutPrev(c.id, prev)
		if !prev.Affinity.Has(c.id) {
			// An affinity change evicted prev from this CPU: the
			// migration-thread path of sched_setaffinity.
			k.Sched.MoveQueued(prev, prev.Affinity.First())
		}
	}

	pick := k.Sched.PickNext(c.id)
	if pick == c.idle && k.Sched.IdleBalance(c.id) {
		// Pulled a task from a busier CPU rather than idling.
		pick = k.Sched.PickNext(c.id)
	}

	if pick == prev {
		// No switch: restore and resume.
		pick.State = task.Running
		k.advance(c)
		if invariant.Enabled {
			k.checkInvariants()
		}
		return
	}

	// A real context switch.
	k.Perf.ContextSwitches++
	if prev != c.idle {
		if prev.State == task.Runnable {
			k.Perf.InvoluntarySwitches++
			prev.Counters.NIVCSw++
		} else {
			k.Perf.VoluntarySwitches++
			prev.Counters.NVCSw++
		}
		prev.Cache.BusySnapshot = k.cores[k.Topo.CoreOf(c.id)].busy
		prev.LastRan = now
	}
	if k.Cfg.Tracer != nil {
		k.Cfg.Tracer.Switch(now, c.id, prev, pick)
	}

	wasIdle := prev == c.idle
	goesIdle := pick == c.idle
	if wasIdle != goesIdle {
		// The core's SMT occupancy changes: settle sibling spans under
		// the old rate before the transition takes effect, and account
		// the occupancy interval for the energy model.
		k.syncSiblings(c.id)
		k.cpuBusyChanged(c.id, wasIdle)
	}

	c.curr = pick
	k.Sched.SetCurr(c.id, pick)
	if !goesIdle {
		pick.State = task.Running
		pick.CPU = c.id
		core := k.Topo.CoreOf(c.id)
		if pick.Cache.Core != core {
			// Cross-core migration: cold caches.
			pick.Cache.Warmth = 0
			pick.Cache.Core = core
		} else {
			exposure := k.cores[core].busy - pick.Cache.BusySnapshot
			pick.Cache.Warmth = k.Cfg.Cache.Evict(pick.Cache.Warmth, exposure)
		}
		c.spanStart = now.Add(k.Cfg.SwitchCost)
		k.armTick(c)
	} else {
		c.spanStart = now
		k.cancelTick(c)
	}

	if wasIdle != goesIdle {
		k.reprojectSiblings(c.id)
	}
	k.advance(c)
	if invariant.Enabled {
		k.checkInvariants()
	}
}

// StealTime models hardware-interrupt context on cpu: `d` of CPU time
// vanishes from whatever is running there, with no scheduler involvement
// and no context switch — the class-independent noise component that even
// HPL cannot deflect (it only reorders runnable tasks). Idle CPUs absorb
// interrupts for free.
func (k *Kernel) StealTime(cpu int, d sim.Duration) {
	c := k.cpus[cpu]
	if c.curr == c.idle || d <= 0 {
		return
	}
	k.syncProgress(c)
	c.spanStart = c.spanStart.Add(d)
	if c.completion.Pending() {
		k.Eng.Reschedule(c.completion, c.completion.When().Add(d))
	}
}

// syncSiblings settles the running spans of the busy SMT siblings of cpu
// (their throughput is about to change).
func (k *Kernel) syncSiblings(cpu int) {
	k.Topo.SiblingsOf(cpu).ForEach(func(sib int) {
		if sib == cpu {
			return
		}
		sc := k.cpus[sib]
		if sc.curr != sc.idle {
			k.syncProgress(sc)
		}
	})
}

// reprojectSiblings recomputes the completion events of busy SMT siblings
// after an occupancy change.
func (k *Kernel) reprojectSiblings(cpu int) {
	k.Topo.SiblingsOf(cpu).ForEach(func(sib int) {
		if sib == cpu {
			return
		}
		sc := k.cpus[sib]
		if sc.curr == sc.idle {
			return
		}
		k.project(sc)
	})
}
