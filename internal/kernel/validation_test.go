package kernel

// System-level validation: the simulated schedulers must obey the analytic
// properties of the algorithms they implement, not just look plausible.

import (
	"math"
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// shareRatio runs two CPU-bound CFS tasks with the given nice values on one
// CPU for `horizon` and returns the ratio of their consumed CPU time.
func shareRatio(t *testing.T, niceA, niceB int, horizon sim.Duration) float64 {
	t.Helper()
	k := New(Config{Topo: uni(), SwitchCost: 1, TickCost: 1, Seed: 77})
	mk := func(nice int) *task.Task {
		return k.Spawn(nil, Attr{Name: "hog", Nice: nice}, func(p *Proc) {
			p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
		})
	}
	a, b := mk(niceA), mk(niceB)
	k.Run(sim.Time(horizon))
	if b.SumExec == 0 {
		t.Fatalf("nice %d task starved completely", niceB)
	}
	return float64(a.SumExec) / float64(b.SumExec)
}

func TestCFSShareFollowsWeights(t *testing.T) {
	// weight(0)/weight(5) = 1024/335 ~ 3.06: the CPU-time ratio over a
	// long horizon must approach the weight ratio.
	got := shareRatio(t, 0, 5, 10*sim.Second)
	want := 1024.0 / 335.0
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("share ratio = %.2f, want ~%.2f (weight ratio)", got, want)
	}
}

func TestCFSEqualWeightsEqualShares(t *testing.T) {
	got := shareRatio(t, 0, 0, 5*sim.Second)
	if got < 0.97 || got > 1.03 {
		t.Fatalf("equal-weight share ratio = %.3f, want ~1", got)
	}
}

func TestUtilizationConservation(t *testing.T) {
	// On a fully loaded CPU, the sum of task CPU time plus switch and
	// tick overheads must equal wall time to within a fraction of a
	// percent: the simulator does not create or destroy time.
	k := New(Config{Topo: uni(), Seed: 78})
	var tasks []*task.Task
	for i := 0; i < 3; i++ {
		tasks = append(tasks, k.Spawn(nil, Attr{Name: "hog"}, func(p *Proc) {
			p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
		}))
	}
	horizon := 5 * sim.Second
	k.Run(sim.Time(horizon))
	var sum sim.Duration
	for _, tk := range tasks {
		sum += tk.SumExec
	}
	overhead := sim.Duration(k.Perf.Ticks)*k.Cfg.TickCost +
		sim.Duration(k.Perf.ContextSwitches)*k.Cfg.SwitchCost
	total := sum + overhead
	drift := math.Abs(float64(total-horizon)) / float64(horizon)
	if drift > 0.005 {
		t.Fatalf("time not conserved: tasks %v + overhead %v = %v over horizon %v (drift %.3f%%)",
			sum, overhead, total, horizon, drift*100)
	}
}

func TestRTThrottleShareIs95Percent(t *testing.T) {
	// A lone spinning SCHED_RR task on stock throttling gets exactly
	// 950ms of each second.
	k := New(Config{Topo: uni(), SwitchCost: 1, TickCost: 1, Seed: 79})
	rtHog := k.Spawn(nil, Attr{Name: "rthog", Policy: task.RR, RTPrio: 50}, func(p *Proc) {
		p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
	})
	k.Run(sim.Time(10 * sim.Second))
	share := float64(rtHog.SumExec) / float64(10*sim.Second)
	if share < 0.94 || share > 0.96 {
		t.Fatalf("RT share = %.3f, want ~0.95 (sched_rt_runtime_us)", share)
	}
}

func TestCFSRunsInRTThrottleWindow(t *testing.T) {
	// With an RT hog and a CFS hog on one CPU, the CFS task gets the 5%
	// throttle slack.
	k := New(Config{Topo: uni(), SwitchCost: 1, TickCost: 1, Seed: 80})
	k.Spawn(nil, Attr{Name: "rthog", Policy: task.RR, RTPrio: 50}, func(p *Proc) {
		p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
	})
	cfsHog := k.Spawn(nil, Attr{Name: "cfshog"}, func(p *Proc) {
		p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
	})
	k.Run(sim.Time(10 * sim.Second))
	share := float64(cfsHog.SumExec) / float64(10*sim.Second)
	if share < 0.04 || share > 0.06 {
		t.Fatalf("CFS share under RT hog = %.3f, want ~0.05", share)
	}
}

func TestHPCStarvesCFSCompletely(t *testing.T) {
	// Unlike RT, the HPC class has no throttling: a spinning HPC rank
	// starves CFS work entirely — the paper's design (daemons run only
	// "when there are no HPC tasks running on a CPU").
	k := New(Config{Topo: uni(), SwitchCost: 1, TickCost: 1,
		Balance: sched.BalanceHPL, Seed: 81})
	k.Spawn(nil, Attr{Name: "rank", Policy: task.HPC}, func(p *Proc) {
		p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
	})
	cfsHog := k.Spawn(nil, Attr{Name: "daemon"}, func(p *Proc) {
		p.Compute(sim.Duration(math.MaxInt64/4), func() { p.Exit() })
	})
	k.Run(sim.Time(5 * sim.Second))
	if cfsHog.SumExec > 0 {
		t.Fatalf("CFS task ran %v under a live HPC rank", cfsHog.SumExec)
	}
}

func TestPoissonDaemonUtilization(t *testing.T) {
	// A daemon with mean period P and mean service S consumes ~S/(P+S)
	// of a CPU (renewal reward), since the next sleep starts after the
	// service completes.
	k := New(Config{Topo: uni(), SwitchCost: 1, TickCost: 1, Seed: 82})
	period, service := 20*sim.Millisecond, 2*sim.Millisecond
	d := k.Spawn(nil, Attr{Name: "d"}, func(p *Proc) {
		var cycle func()
		cycle = func() {
			p.Sleep(period, func() { p.Compute(service, cycle) })
		}
		p.Sleep(period, func() { p.Compute(service, cycle) })
	})
	horizon := 20 * sim.Second
	k.Run(sim.Time(horizon))
	util := float64(d.SumExec) / float64(horizon)
	want := float64(service) / float64(period+service)
	if math.Abs(util-want) > want*0.1 {
		t.Fatalf("daemon utilisation = %.4f, want ~%.4f", util, want)
	}
}

func TestSMTThroughputConservation(t *testing.T) {
	// Two spinning tasks on one core at factor 0.64 deliver 1.28 cores
	// of throughput; the work completed over a horizon must match.
	tp := topo.Topology{Chips: 1, CoresPerChip: 1, ThreadsPerCore: 2}
	k := New(Config{Topo: tp, SwitchCost: 1, TickCost: 1, Seed: 83})
	var done [2]float64
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(nil, Attr{Name: "w", Affinity: topo.MaskOf(i)}, func(p *Proc) {
			// Chain 1s compute blocks, counting completed work.
			var step func()
			step = func() {
				p.Compute(sim.Duration(sim.Second), func() {
					done[i]++
					step()
				})
			}
			step()
		})
	}
	k.Run(sim.Time(10 * sim.Second))
	totalWork := done[0] + done[1] // in simulated CPU-seconds
	want := 10 * 2 * 0.64
	if math.Abs(totalWork-want) > 1.5 {
		t.Fatalf("SMT throughput = %.1f CPU-seconds over 10s, want ~%.1f",
			totalWork, want)
	}
}
