//go:build invariants

package kernel

import (
	"testing"

	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// bootSharded boots a two-shard fast-forward node with compute tasks spread
// over both chips, so catch-ups have pending ticks in more than one shard
// and (at grain 1) fan out over the gang.
func bootSharded(t *testing.T, chaos sched.Chaos) *Kernel {
	t.Helper()
	k := New(Config{
		Seed:        1,
		FastForward: true,
		Shards:      2,
		ShardGrain:  1,
		Chaos:       chaos,
	})
	for i := 0; i < 8; i++ {
		k.Spawn(nil, Attr{Name: "worker", Policy: task.Normal}, func(p *Proc) {
			p.Compute(200*sim.Millisecond, p.Exit)
		})
	}
	return k
}

func TestShardedCleanRunPasses(t *testing.T) {
	k := bootSharded(t, sched.Chaos{})
	k.Run(sim.Time(100 * sim.Millisecond))
	if k.ShardPhases() == 0 {
		t.Fatal("no parallel phases ran; the skew test below would be vacuous")
	}
}

func TestShardSkewCaughtByWindowAudit(t *testing.T) {
	// ShardSkew hands the gang workers a replay bound one tick period past
	// the horizon the coordinator committed to. The very first fan-out must
	// die in the shard window audit — before any tick past the horizon is
	// replayed — proving the audit actually guards the committed window.
	k := bootSharded(t, sched.Chaos{ShardSkew: true})
	expectViolation(t, func() { k.Run(sim.Time(100 * sim.Millisecond)) })
}
