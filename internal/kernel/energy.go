package kernel

import (
	"fmt"

	"hplsim/internal/sim"
)

// PowerModel parameterises the node's power draw. The paper's conclusions
// name the "power dimension" as HPL's next extension; this model makes the
// trade-off measurable: topology-aware spreading keeps more cores awake
// (higher power, shorter runtime) while packing onto fewer cores saves
// core power at an SMT throughput cost.
//
// Node power at any instant is
//
//	Base + ActiveCores*CorePower + BusyThreads*ThreadPower
//
// in watts; energy integrates this over virtual time.
type PowerModel struct {
	// Base is the always-on node power (fans, memory, fabric), watts.
	Base float64
	// CorePower is drawn by each core with at least one busy thread.
	CorePower float64
	// ThreadPower is drawn per busy hardware thread.
	ThreadPower float64
}

// DefaultPowerModel resembles a POWER6-era blade: ~220 W idle, ~60 W per
// active core, ~8 W per busy thread.
func DefaultPowerModel() PowerModel {
	return PowerModel{Base: 220, CorePower: 60, ThreadPower: 8}
}

func (m PowerModel) isZero() bool { return m == PowerModel{} }

// EnergyReport is the integrated energy accounting of a run.
type EnergyReport struct {
	// Elapsed is the wall time covered.
	Elapsed sim.Duration
	// Joules is the total energy.
	Joules float64
	// AvgWatts is Joules / Elapsed.
	AvgWatts float64
	// ThreadBusy is the summed busy time of all hardware threads.
	ThreadBusy sim.Duration
	// CoreActive is the summed time cores had at least one busy thread.
	CoreActive sim.Duration
}

func (r EnergyReport) String() string {
	return fmt.Sprintf("%.1f J over %v (avg %.1f W, thread-busy %v, core-active %v)",
		r.Joules, r.Elapsed, r.AvgWatts, r.ThreadBusy, r.CoreActive)
}

// energyState tracks the occupancy integrals needed by the power model.
type energyState struct {
	// threadBusy accumulates per-thread busy time (all CPUs).
	threadBusy sim.Duration
	// coreActive accumulates core-active time (any thread busy).
	coreActive sim.Duration
	// activeSince[core] is when the core last became active; -1 if idle.
	activeSince []sim.Time
	// busyThreads[core] counts the core's currently busy threads.
	busyThreads []int
	// busySince[cpu] is when the CPU last became busy; -1 if idle.
	busySince []sim.Time
}

func newEnergyState(nCores, nCPUs int) *energyState {
	e := &energyState{
		activeSince: make([]sim.Time, nCores),
		busyThreads: make([]int, nCores),
		busySince:   make([]sim.Time, nCPUs),
	}
	for i := range e.activeSince {
		e.activeSince[i] = -1
	}
	for i := range e.busySince {
		e.busySince[i] = -1
	}
	return e
}

// cpuBusyChanged records a CPU transitioning between idle and busy.
func (k *Kernel) cpuBusyChanged(cpu int, busy bool) {
	e := k.energy
	now := k.Eng.Now()
	core := k.Topo.CoreOf(cpu)
	if busy {
		if e.busySince[cpu] < 0 {
			e.busySince[cpu] = now
		}
		if e.busyThreads[core] == 0 {
			e.activeSince[core] = now
		}
		e.busyThreads[core]++
		return
	}
	if e.busySince[cpu] >= 0 {
		e.threadBusy += now.Sub(e.busySince[cpu])
		e.busySince[cpu] = -1
	}
	e.busyThreads[core]--
	if e.busyThreads[core] == 0 && e.activeSince[core] >= 0 {
		e.coreActive += now.Sub(e.activeSince[core])
		e.activeSince[core] = -1
	}
}

// Energy integrates the power model up to the current virtual time.
func (k *Kernel) Energy() EnergyReport {
	e := k.energy
	now := k.Eng.Now()
	threadBusy := e.threadBusy
	coreActive := e.coreActive
	// Fold in still-open intervals.
	for cpu, since := range e.busySince {
		_ = cpu
		if since >= 0 {
			threadBusy += now.Sub(since)
		}
	}
	for core, since := range e.activeSince {
		_ = core
		if since >= 0 {
			coreActive += now.Sub(since)
		}
	}
	m := k.Cfg.Power
	joules := m.Base*now.Seconds() +
		m.CorePower*coreActive.Seconds() +
		m.ThreadPower*threadBusy.Seconds()
	avg := 0.0
	if now > 0 {
		avg = joules / now.Seconds()
	}
	return EnergyReport{
		Elapsed:    sim.Duration(now),
		Joules:     joules,
		AvgWatts:   avg,
		ThreadBusy: threadBusy,
		CoreActive: coreActive,
	}
}
