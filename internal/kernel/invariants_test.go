//go:build invariants

package kernel

import (
	"testing"

	"hplsim/internal/invariant"
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

func expectViolation(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted kernel passed checkInvariants")
		}
		if _, ok := r.(invariant.Violation); !ok {
			t.Fatalf("expected invariant.Violation, got %v", r)
		}
	}()
	fn()
}

// bootBusy boots a node and spawns a couple of compute tasks so runqueues
// are populated.
func bootBusy(t *testing.T) *Kernel {
	t.Helper()
	k := New(Config{Seed: 1})
	for i := 0; i < 4; i++ {
		k.Spawn(nil, Attr{Name: "worker", Policy: task.Normal}, func(p *Proc) {
			p.Compute(50*sim.Millisecond, p.Exit)
		})
	}
	k.Run(sim.Time(2 * sim.Millisecond))
	return k
}

func TestCleanKernelPasses(t *testing.T) {
	k := bootBusy(t)
	k.checkInvariants()
}

func TestCorruptStaleOnRq(t *testing.T) {
	k := bootBusy(t)
	// A task claiming to be queued without being on any class runqueue is
	// exactly the "lost dequeue" corruption: per-CPU accounting no longer
	// closes.
	for _, tk := range k.tasks {
		if !tk.OnRq && tk.Policy == task.Normal {
			tk.OnRq = true
			tk.State = task.Runnable
			break
		}
	}
	expectViolation(t, func() { k.checkInvariants() })
}

func TestCorruptCurrOnRunqueue(t *testing.T) {
	k := bootBusy(t)
	corrupted := false
	for _, c := range k.cpus {
		if c.curr != c.idle {
			c.curr.OnRq = true // running task claims to still be queued
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Skip("no busy CPU at the probe instant")
	}
	expectViolation(t, func() { k.checkInvariants() })
}

func TestInvariantSweepRunsDuringSimulation(t *testing.T) {
	// The sweep is wired into every reschedule pass: corrupting state and
	// then letting the simulation advance must panic without any explicit
	// check call.
	k := bootBusy(t)
	for _, tk := range k.tasks {
		if !tk.OnRq && tk.Policy == task.Normal {
			tk.OnRq = true
			tk.State = task.Runnable
			break
		}
	}
	expectViolation(t, func() { k.Run(sim.Time(20 * sim.Millisecond)) })
}
