package kernel

import (
	"hplsim/internal/sim"
	"hplsim/internal/task"
)

// Proc is the process-side API handed to workload programs. A program is a
// chain of continuations: each call installs what the task does next and
// what happens afterwards. Exactly one of Compute / Spin / Sleep / Block /
// WaitChildren / Exit must terminate every continuation.
type Proc struct {
	K *Kernel
	T *task.Task
}

// Compute makes the task execute `work` of full-speed CPU time, then run
// `then`. The wall time taken depends on cache warmth, the task's
// sensitivity, and SMT contention.
func (p *Proc) Compute(work sim.Duration, then func()) {
	p.ComputeF(float64(work), then)
}

// ComputeF is Compute with fractional-nanosecond work.
func (p *Proc) ComputeF(work float64, then func()) {
	if work <= 0 {
		work = 1
	}
	p.K.SetStep(p.T, work, then)
}

// Spin puts the task into a busy-wait: it consumes CPU (and contends with
// its SMT sibling) but makes no progress until another party calls Resume.
func (p *Proc) Spin() {
	p.K.SetStep(p.T, task.SpinWork, nil)
}

// Resume ends a Spin (or primes a not-currently-running task) with a new
// step: work then continuation.
func (p *Proc) Resume(work sim.Duration, then func()) {
	p.K.SetStep(p.T, float64(work), then)
}

// Sleep blocks the task for d, then runs `then`.
func (p *Proc) Sleep(d sim.Duration, then func()) {
	p.K.SleepTask(p.T, d, then)
}

// Block puts the task to sleep until someone calls p.K.Wake(p.T); on wake
// it runs `then`.
func (p *Proc) Block(then func()) {
	p.T.Work = 0
	p.T.OnDone = then
	p.K.block(p.T)
}

// WaitChildren blocks until all of the task's children have exited, then
// runs `then` (mpiexec's wait loop).
func (p *Proc) WaitChildren(then func()) {
	if p.T.LiveChildren == 0 {
		p.T.Work = 0
		p.T.OnDone = then
		return
	}
	p.T.WaitingChildren = true
	p.Block(then)
}

// Exit terminates the task.
func (p *Proc) Exit() {
	p.K.exit(p.T)
}

// Mark emits a workload event into the trace, if tracing is enabled.
func (p *Proc) Mark(label string) {
	if p.K.Cfg.Tracer != nil {
		p.K.Cfg.Tracer.Mark(p.K.Now(), p.T, label)
	}
}

// Spawn forks a child of this task.
func (p *Proc) Spawn(attr Attr, start func(child *Proc)) *task.Task {
	return p.K.Spawn(p.T, attr, start)
}

// Now reports the current virtual time.
func (p *Proc) Now() sim.Time { return p.K.Now() }
