package kernel

import (
	"math"
	"testing"

	"hplsim/internal/cache"
	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// newExact builds a kernel with zero switch/tick cost and unit SMT factors,
// so compute times equal work exactly.
func newExact(tp topo.Topology, seed uint64) *Kernel {
	cfg := Config{
		Topo:       tp,
		HZ:         250,
		SwitchCost: 1, // 1ns: cannot be zero (zero means "default")
		TickCost:   1,
		SMTFactors: []float64{1, 1},
		Seed:       seed,
	}
	return New(cfg)
}

func uni() topo.Topology { return topo.Topology{Chips: 1, CoresPerChip: 1, ThreadsPerCore: 1} }
func dual() topo.Topology {
	return topo.Topology{Chips: 1, CoresPerChip: 2, ThreadsPerCore: 1}
}

func TestSingleTaskComputesAndExits(t *testing.T) {
	k := newExact(uni(), 1)
	var done sim.Time
	k.Spawn(nil, Attr{Name: "worker"}, func(p *Proc) {
		p.Compute(100*sim.Millisecond, func() {
			done = p.Now()
			p.Exit()
		})
	})
	k.Run(sim.Time(sim.Second))
	// 1ns switch cost + ~25 ticks x 1ns: allow a microsecond of slack.
	want := sim.Time(100 * sim.Millisecond)
	if done < want || done > want.Add(sim.Microsecond) {
		t.Fatalf("completion at %v, want ~%v", done, want)
	}
}

func TestDefaultOverheadsSlowCompletion(t *testing.T) {
	// With the default 4us switch cost and 3us tick cost at HZ=250, a
	// 100ms compute takes 100ms + 4us + ~25*3us.
	k := New(Config{Topo: uni(), Seed: 1})
	var done sim.Time
	k.Spawn(nil, Attr{Name: "worker"}, func(p *Proc) {
		p.Compute(100*sim.Millisecond, func() { done = p.Now(); p.Exit() })
	})
	k.Run(sim.Time(sim.Second))
	lo := sim.Time(100 * sim.Millisecond).Add(70 * sim.Microsecond)
	hi := sim.Time(100 * sim.Millisecond).Add(120 * sim.Microsecond)
	if done < lo || done > hi {
		t.Fatalf("completion at %v, want in [%v, %v]", done, lo, hi)
	}
}

func TestSMTContention(t *testing.T) {
	// Two tasks pinned to the two SMT threads of one core at factor 0.64
	// each take work/0.64 wall time.
	tp := topo.Topology{Chips: 1, CoresPerChip: 1, ThreadsPerCore: 2}
	k := New(Config{
		Topo: tp, SwitchCost: 1, TickCost: 1,
		SMTFactors: []float64{1, 0.64}, Seed: 2,
	})
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(nil, Attr{
			Name:     "w",
			Affinity: topo.MaskOf(i),
		}, func(p *Proc) {
			p.Compute(64*sim.Millisecond, func() { done[i] = p.Now(); p.Exit() })
		})
	}
	k.Run(sim.Time(sim.Second))
	want := sim.Time(100 * sim.Millisecond) // 64ms / 0.64
	for i, d := range done {
		if d < want.Add(-sim.Millisecond) || d > want.Add(sim.Millisecond) {
			t.Fatalf("task %d done at %v, want ~%v", i, d, want)
		}
	}
}

func TestSMTSpeedupAfterSiblingExit(t *testing.T) {
	// Task B shares a core with A; when A exits, B speeds up to 1.0.
	tp := topo.Topology{Chips: 1, CoresPerChip: 1, ThreadsPerCore: 2}
	k := New(Config{Topo: tp, SwitchCost: 1, TickCost: 1,
		SMTFactors: []float64{1, 0.5}, Seed: 3})
	var doneA, doneB sim.Time
	k.Spawn(nil, Attr{Name: "a", Affinity: topo.MaskOf(0)}, func(p *Proc) {
		p.Compute(10*sim.Millisecond, func() { doneA = p.Now(); p.Exit() })
	})
	k.Spawn(nil, Attr{Name: "b", Affinity: topo.MaskOf(1)}, func(p *Proc) {
		p.Compute(30*sim.Millisecond, func() { doneB = p.Now(); p.Exit() })
	})
	k.Run(sim.Time(sim.Second))
	// A: 10ms work at 0.5 => 20ms. B: 10ms of its work done by then
	// (at 0.5), remaining 20ms at full speed => done at 40ms.
	if doneA < sim.Time(19*sim.Millisecond) || doneA > sim.Time(21*sim.Millisecond) {
		t.Fatalf("A done at %v, want ~20ms", doneA)
	}
	if doneB < sim.Time(39*sim.Millisecond) || doneB > sim.Time(41*sim.Millisecond) {
		t.Fatalf("B done at %v, want ~40ms", doneB)
	}
}

func TestCacheColdStartPenalty(t *testing.T) {
	// A fully sensitive task loses ~WarmTau versus an insensitive one.
	model := cache.DefaultModel()
	run := func(sens float64) sim.Time {
		k := New(Config{Topo: uni(), SwitchCost: 1, TickCost: 1,
			Cache: model, Seed: 4})
		var done sim.Time
		k.Spawn(nil, Attr{Name: "w", Sensitivity: sens}, func(p *Proc) {
			p.Compute(50*sim.Millisecond, func() { done = p.Now(); p.Exit() })
		})
		k.Run(sim.Time(sim.Second))
		return done
	}
	cold := run(1.0)
	base := run(0.0)
	lost := cold.Sub(base)
	if lost < model.WarmTau*9/10 || lost > model.WarmTau*11/10 {
		t.Fatalf("cold-start loss = %v, want ~%v", lost, model.WarmTau)
	}
}

func TestCFSDaemonPreemptsAndDelays(t *testing.T) {
	// A CFS worker is preempted by a waking daemon (sleeper credit) and
	// delayed by roughly the daemon's service time.
	k := newExact(uni(), 5)
	var done sim.Time
	worker := k.Spawn(nil, Attr{Name: "worker"}, func(p *Proc) {
		p.Compute(100*sim.Millisecond, func() { done = p.Now(); p.Exit() })
	})
	_ = worker
	// The daemon sleeps 50ms, then computes 10ms, then exits.
	k.Spawn(nil, Attr{Name: "daemon"}, func(p *Proc) {
		p.Sleep(50*sim.Millisecond, func() {
			p.Compute(10*sim.Millisecond, func() { p.Exit() })
		})
	})
	k.Run(sim.Time(sim.Second))
	want := sim.Time(110 * sim.Millisecond)
	if done < want.Add(-2*sim.Millisecond) || done > want.Add(2*sim.Millisecond) {
		t.Fatalf("worker done at %v, want ~%v (daemon stole 10ms)", done, want)
	}
	if k.Perf.InvoluntarySwitches == 0 {
		t.Fatal("daemon wakeup did not preempt the worker")
	}
}

func TestHPCShieldsFromCFSDaemon(t *testing.T) {
	// The same scenario with the worker in the HPC class: the daemon
	// must wait until the worker exits (class priority), so the worker
	// finishes on time.
	k := newExact(uni(), 6)
	var done sim.Time
	var daemonRan sim.Time
	k.Spawn(nil, Attr{Name: "rank", Policy: task.HPC}, func(p *Proc) {
		p.Compute(100*sim.Millisecond, func() { done = p.Now(); p.Exit() })
	})
	k.Spawn(nil, Attr{Name: "daemon"}, func(p *Proc) {
		p.Sleep(50*sim.Millisecond, func() {
			p.Compute(10*sim.Millisecond, func() { daemonRan = p.Now(); p.Exit() })
		})
	})
	k.Run(sim.Time(sim.Second))
	want := sim.Time(100 * sim.Millisecond)
	if done < want || done > want.Add(sim.Millisecond) {
		t.Fatalf("HPC rank done at %v, want ~%v (no preemption)", done, want)
	}
	if daemonRan < done {
		t.Fatalf("daemon ran at %v, before the HPC rank finished at %v", daemonRan, done)
	}
}

func TestRTPreemptsHPC(t *testing.T) {
	// The class chain is RT > HPC: a waking RT task interrupts an HPC rank.
	k := newExact(uni(), 7)
	var done sim.Time
	k.Spawn(nil, Attr{Name: "rank", Policy: task.HPC}, func(p *Proc) {
		p.Compute(100*sim.Millisecond, func() { done = p.Now(); p.Exit() })
	})
	k.Spawn(nil, Attr{Name: "migrationd", Policy: task.FIFO, RTPrio: 99}, func(p *Proc) {
		p.Sleep(50*sim.Millisecond, func() {
			p.Compute(5*sim.Millisecond, func() { p.Exit() })
		})
	})
	k.Run(sim.Time(sim.Second))
	want := sim.Time(105 * sim.Millisecond)
	if done < want.Add(-sim.Millisecond) || done > want.Add(sim.Millisecond) {
		t.Fatalf("rank done at %v, want ~%v (RT stole 5ms)", done, want)
	}
}

func TestHPCRoundRobin(t *testing.T) {
	// Two HPC tasks on one CPU alternate in 100ms slices; both make
	// progress (neither starves) and total time is the sum of work.
	k := newExact(uni(), 8)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(nil, Attr{Name: "r", Policy: task.HPC}, func(p *Proc) {
			p.Compute(150*sim.Millisecond, func() { done[i] = p.Now(); p.Exit() })
		})
	}
	k.Run(sim.Time(sim.Second))
	total := sim.Time(300 * sim.Millisecond)
	last := done[0]
	if done[1] > last {
		last = done[1]
	}
	if last < total || last > total.Add(2*sim.Millisecond) {
		t.Fatalf("last HPC task done at %v, want ~%v", last, total)
	}
	// With 100ms slices and 150ms of work each, the first to finish does
	// so at 100+100+50 = 250ms, not 150 (round-robin interleaves).
	first := done[0]
	if done[1] < first {
		first = done[1]
	}
	if first < sim.Time(249*sim.Millisecond) {
		t.Fatalf("first HPC task done at %v: round-robin did not interleave", first)
	}
}

func TestRRTimesliceRotation(t *testing.T) {
	// Two SCHED_RR tasks at equal priority share the CPU in quanta.
	k := newExact(uni(), 9)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(nil, Attr{Name: "rt", Policy: task.RR, RTPrio: 50}, func(p *Proc) {
			p.Compute(150*sim.Millisecond, func() { done[i] = p.Now(); p.Exit() })
		})
	}
	k.Run(sim.Time(sim.Second))
	first := done[0]
	if done[1] < first {
		first = done[1]
	}
	if first < sim.Time(240*sim.Millisecond) {
		t.Fatalf("first RR task done at %v: no rotation happened", first)
	}
}

func TestFIFONoRotation(t *testing.T) {
	// Two SCHED_FIFO tasks: the first runs to completion.
	k := newExact(uni(), 10)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(nil, Attr{Name: "rt", Policy: task.FIFO, RTPrio: 50}, func(p *Proc) {
			p.Compute(150*sim.Millisecond, func() { done[i] = p.Now(); p.Exit() })
		})
	}
	k.Run(sim.Time(sim.Second))
	first := done[0]
	if done[1] < first {
		first = done[1]
	}
	if first > sim.Time(151*sim.Millisecond) {
		t.Fatalf("first FIFO task done at %v, want ~150ms (no rotation)", first)
	}
}

func TestForkSpreadsAcrossCPUs(t *testing.T) {
	// CFS fork placement spreads two workers over the two cores.
	k := newExact(dual(), 11)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(nil, Attr{Name: "w"}, func(p *Proc) {
			p.Compute(100*sim.Millisecond, func() { done[i] = p.Now(); p.Exit() })
		})
	}
	k.Run(sim.Time(sim.Second))
	for i, d := range done {
		if d > sim.Time(101*sim.Millisecond) {
			t.Fatalf("task %d done at %v: tasks were not spread", i, d)
		}
	}
}

func TestPushToIdleCPU(t *testing.T) {
	// Two workers forced onto CPU 0; once affinity widens, periodic
	// balance pushes the queued one to idle CPU 1.
	k := newExact(dual(), 12)
	var done [2]sim.Time
	tasks := make([]*task.Task, 2)
	for i := 0; i < 2; i++ {
		i := i
		tasks[i] = k.Spawn(nil, Attr{Name: "w", Affinity: topo.MaskOf(0)}, func(p *Proc) {
			p.Compute(100*sim.Millisecond, func() { done[i] = p.Now(); p.Exit() })
		})
	}
	// Widen affinity shortly after start.
	k.Eng.After(5*sim.Millisecond, func() {
		k.SetAffinity(tasks[0], topo.MaskOf(0, 1))
		k.SetAffinity(tasks[1], topo.MaskOf(0, 1))
	})
	k.Run(sim.Time(sim.Second))
	for i, d := range done {
		// Serialised they'd finish at 200ms+; spread, both by ~105-140ms.
		if d == 0 || d > sim.Time(160*sim.Millisecond) {
			t.Fatalf("task %d done at %v: push to idle CPU did not happen", i, d)
		}
	}
	if k.Perf.BalanceMoves == 0 {
		t.Fatal("no balance move recorded")
	}
}

func TestMigrationColdsCache(t *testing.T) {
	// A sensitive task migrated across cores repeats its cold start.
	tp := dual()
	model := cache.DefaultModel()
	k := New(Config{Topo: tp, SwitchCost: 1, TickCost: 1, Cache: model, Seed: 13})
	var done sim.Time
	w := k.Spawn(nil, Attr{Name: "w", Sensitivity: 1, Affinity: topo.MaskOf(0)}, func(p *Proc) {
		p.Compute(60*sim.Millisecond, func() { done = p.Now(); p.Exit() })
	})
	k.Eng.After(30*sim.Millisecond, func() {
		k.SetAffinity(w, topo.MaskOf(1)) // force cross-core migration
	})
	k.Run(sim.Time(sim.Second))
	// Two cold starts: ~2*WarmTau total loss instead of one.
	base := sim.Time(60 * sim.Millisecond)
	lost := done.Sub(base)
	if lost < model.WarmTau*17/10 {
		t.Fatalf("migration lost only %v, want ~2x WarmTau (%v)", lost, 2*model.WarmTau)
	}
	if w.Counters.Migrations == 0 {
		t.Fatal("migration not counted")
	}
}

func TestSleepWake(t *testing.T) {
	k := newExact(uni(), 14)
	var woke sim.Time
	k.Spawn(nil, Attr{Name: "sleeper"}, func(p *Proc) {
		p.Compute(sim.Millisecond, func() {
			p.Sleep(40*sim.Millisecond, func() {
				woke = p.Now()
				p.Exit()
			})
		})
	})
	k.Run(sim.Time(sim.Second))
	want := sim.Time(41 * sim.Millisecond)
	if woke < want || woke > want.Add(sim.Millisecond) {
		t.Fatalf("woke at %v, want ~%v", woke, want)
	}
}

func TestSpinAndResume(t *testing.T) {
	k := newExact(uni(), 15)
	var spun *Proc
	var done sim.Time
	k.Spawn(nil, Attr{Name: "spinner"}, func(p *Proc) {
		p.Compute(sim.Millisecond, func() {
			spun = p
			p.Spin()
		})
	})
	k.Eng.After(20*sim.Millisecond, func() {
		spun.Resume(10*sim.Millisecond, func() { done = spun.Now(); spun.Exit() })
	})
	k.Run(sim.Time(sim.Second))
	want := sim.Time(30 * sim.Millisecond)
	if done < want || done > want.Add(sim.Millisecond) {
		t.Fatalf("done at %v, want ~%v", done, want)
	}
	// The spinner consumed CPU while spinning.
	spinner := k.tasks[1]
	if spinner.SumExec < 29*sim.Millisecond {
		t.Fatalf("spinner SumExec = %v, want ~30ms (spin burns CPU)", spinner.SumExec)
	}
}

func TestWaitChildren(t *testing.T) {
	k := newExact(dual(), 16)
	var parentDone sim.Time
	k.Spawn(nil, Attr{Name: "mpiexec"}, func(p *Proc) {
		p.Compute(sim.Millisecond, func() {
			for i := 0; i < 2; i++ {
				d := sim.Duration(i+1) * 20 * sim.Millisecond
				p.Spawn(Attr{Name: "child"}, func(c *Proc) {
					c.Compute(d, func() { c.Exit() })
				})
			}
			p.WaitChildren(func() {
				parentDone = p.Now()
				p.Exit()
			})
		})
	})
	k.Run(sim.Time(sim.Second))
	// Slowest child: 40ms of work, started after 1ms, possibly sharing a
	// CPU with the parent briefly.
	if parentDone < sim.Time(41*sim.Millisecond) || parentDone > sim.Time(80*sim.Millisecond) {
		t.Fatalf("parent done at %v, want shortly after slowest child (~41ms)", parentDone)
	}
}

func TestContextSwitchCounting(t *testing.T) {
	k := newExact(uni(), 17)
	k.Spawn(nil, Attr{Name: "a"}, func(p *Proc) {
		p.Compute(10*sim.Millisecond, func() { p.Exit() })
	})
	k.Run(sim.Time(sim.Second))
	// Exactly: idle->a (1), a->idle (2).
	if k.Perf.ContextSwitches != 2 {
		t.Fatalf("context switches = %d, want 2", k.Perf.ContextSwitches)
	}
	if k.Perf.VoluntarySwitches != 1 {
		t.Fatalf("voluntary = %d, want 1 (exit)", k.Perf.VoluntarySwitches)
	}
}

func TestSetSchedulerMovesClass(t *testing.T) {
	// A CFS task promoted to HPC mid-run protects itself from a daemon.
	k := newExact(uni(), 18)
	var done sim.Time
	w := k.Spawn(nil, Attr{Name: "app"}, func(p *Proc) {
		p.Compute(100*sim.Millisecond, func() { done = p.Now(); p.Exit() })
	})
	k.Spawn(nil, Attr{Name: "daemon"}, func(p *Proc) {
		p.Sleep(50*sim.Millisecond, func() {
			p.Compute(10*sim.Millisecond, func() { p.Exit() })
		})
	})
	k.Eng.After(sim.Millisecond, func() { k.SetScheduler(w, task.HPC, 0) })
	k.Run(sim.Time(sim.Second))
	want := sim.Time(100 * sim.Millisecond)
	if done > want.Add(2*sim.Millisecond) {
		t.Fatalf("promoted task done at %v, want ~%v", done, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, uint64) {
		k := New(Config{Topo: topo.POWER6(), Seed: 42})
		var last sim.Time
		for i := 0; i < 10; i++ {
			k.Spawn(nil, Attr{Name: "w", Sensitivity: 0.5}, func(p *Proc) {
				var loop func(n int)
				loop = func(n int) {
					if n == 0 {
						last = p.Now()
						p.Exit()
						return
					}
					p.Compute(7*sim.Millisecond, func() {
						p.Sleep(3*sim.Millisecond, func() { loop(n - 1) })
					})
				}
				loop(20)
			})
		}
		k.Run(sim.Time(5 * sim.Second))
		return last, k.Perf.ContextSwitches, k.Perf.Migrations
	}
	t1, c1, m1 := run()
	t2, c2, m2 := run()
	if t1 != t2 || c1 != c2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%v,%d,%d) vs (%v,%d,%d)", t1, c1, m1, t2, c2, m2)
	}
}

func TestNiceAffectsShare(t *testing.T) {
	// A nice +19 task shares a CPU with a nice 0 task: the nice 0 task
	// gets the overwhelming share and finishes almost unimpeded.
	k := newExact(uni(), 19)
	var doneFast sim.Time
	k.Spawn(nil, Attr{Name: "fast", Nice: 0}, func(p *Proc) {
		p.Compute(100*sim.Millisecond, func() { doneFast = p.Now(); p.Exit() })
	})
	k.Spawn(nil, Attr{Name: "slow", Nice: 19}, func(p *Proc) {
		p.Compute(100*sim.Millisecond, func() { p.Exit() })
	})
	k.Run(sim.Time(sim.Second))
	// weight 1024 vs 15: fast gets ~98.5%.
	if doneFast > sim.Time(110*sim.Millisecond) {
		t.Fatalf("nice-0 task done at %v, want ~102ms", doneFast)
	}
}

func TestCFSFairnessEqualWeight(t *testing.T) {
	// Two equal CFS hogs finish within one slice of each other.
	k := newExact(uni(), 20)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(nil, Attr{Name: "h"}, func(p *Proc) {
			p.Compute(100*sim.Millisecond, func() { done[i] = p.Now(); p.Exit() })
		})
	}
	k.Run(sim.Time(sim.Second))
	gap := math.Abs(float64(done[0] - done[1]))
	if gap > float64(30*sim.Millisecond) {
		t.Fatalf("unfair: finish gap %v", sim.Duration(gap))
	}
	total := done[0]
	if done[1] > total {
		total = done[1]
	}
	if total < sim.Time(195*sim.Millisecond) || total > sim.Time(215*sim.Millisecond) {
		t.Fatalf("total %v, want ~200ms", total)
	}
}

func TestBalancePolicyNoneKeepsQueued(t *testing.T) {
	// With balancing off, a queued task stays behind the running one
	// even though another CPU is idle.
	k := New(Config{Topo: dual(), SwitchCost: 1, TickCost: 1,
		Balance: sched.BalanceNone, Seed: 21})
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(nil, Attr{Name: "w", Affinity: topo.MaskOf(0)}, func(p *Proc) {
			p.Compute(50*sim.Millisecond, func() { done[i] = p.Now(); p.Exit() })
		})
	}
	// Affinity stays {0}; but even widening it must not move anyone.
	tasks := []*task.Task{k.tasks[2], k.tasks[3]}
	if tasks[0].Name != "w" {
		// tasks[0..1] are swappers; adjust indices defensively.
		tasks = nil
		for _, tt := range k.tasks {
			if tt.Name == "w" {
				tasks = append(tasks, tt)
			}
		}
	}
	k.Eng.After(5*sim.Millisecond, func() {
		for _, tt := range tasks {
			k.SetAffinity(tt, topo.MaskOf(0, 1))
		}
	})
	k.Run(sim.Time(sim.Second))
	if k.Perf.BalanceMoves != 0 {
		t.Fatalf("balance moves = %d with BalanceNone", k.Perf.BalanceMoves)
	}
}

func TestHPLPolicySuppressesBalancingWhileHPCAlive(t *testing.T) {
	// Under BalanceHPL, two CFS tasks crammed on CPU 0 stay there while
	// an HPC task lives, and spread after it exits.
	k := New(Config{Topo: dual(), SwitchCost: 1, TickCost: 1,
		Balance: sched.BalanceHPL, Seed: 22})
	var hpcExit sim.Time
	k.Spawn(nil, Attr{Name: "rank", Policy: task.HPC, Affinity: topo.MaskOf(1)}, func(p *Proc) {
		p.Compute(80*sim.Millisecond, func() { hpcExit = p.Now(); p.Exit() })
	})
	moves := make([]sim.Time, 0)
	var ws []*task.Task
	for i := 0; i < 2; i++ {
		w := k.Spawn(nil, Attr{Name: "d", Affinity: topo.MaskOf(0)}, func(p *Proc) {
			p.Compute(200*sim.Millisecond, func() { p.Exit() })
		})
		ws = append(ws, w)
	}
	k.Eng.After(5*sim.Millisecond, func() {
		for _, w := range ws {
			k.SetAffinity(w, topo.MaskOf(0, 1))
		}
	})
	prev := uint64(0)
	k.Eng.After(sim.Millisecond, func() {})
	// Poll for balance moves over time via a recurring event.
	var poll func()
	poll = func() {
		if k.Perf.BalanceMoves > prev {
			prev = k.Perf.BalanceMoves
			moves = append(moves, k.Now())
		}
		k.Eng.After(sim.Millisecond, poll)
	}
	k.Eng.After(sim.Millisecond, poll)
	k.Run(sim.Time(400 * sim.Millisecond))
	if len(moves) == 0 {
		t.Fatal("no balance move even after the HPC task exited")
	}
	if moves[0] < hpcExit {
		t.Fatalf("balance move at %v while HPC task alive (exit at %v)", moves[0], hpcExit)
	}
}

func TestHPCForkPlacementTopologyAware(t *testing.T) {
	// On the POWER6 topology, four HPC ranks land one per core; eight
	// ranks land one per hardware thread.
	for _, n := range []int{4, 8} {
		k := New(Config{Topo: topo.POWER6(), Balance: sched.BalanceHPL, Seed: 23})
		parent := k.Spawn(nil, Attr{Name: "mpiexec", Policy: task.HPC}, func(p *Proc) {
			p.Compute(sim.Millisecond, func() {
				for i := 0; i < n; i++ {
					p.Spawn(Attr{Name: "rank", Policy: task.HPC}, func(c *Proc) {
						c.Spin() // hold the CPU so placement is observable
					})
				}
				p.WaitChildren(func() { p.Exit() })
			})
		})
		_ = parent
		k.Run(sim.Time(200 * sim.Millisecond))
		perCore := make(map[int]int)
		perCPU := make(map[int]int)
		for _, tt := range k.Tasks() {
			if tt.Name == "rank" {
				perCore[k.Topo.CoreOf(tt.CPU)]++
				perCPU[tt.CPU]++
			}
		}
		if n == 4 {
			for core, cnt := range perCore {
				if cnt != 1 {
					t.Fatalf("n=4: core %d has %d ranks, want 1", core, cnt)
				}
			}
			if len(perCore) != 4 {
				t.Fatalf("n=4: ranks on %d cores, want 4", len(perCore))
			}
		} else {
			for cpu, cnt := range perCPU {
				if cnt != 1 {
					t.Fatalf("n=8: cpu %d has %d ranks, want 1", cpu, cnt)
				}
			}
			if len(perCPU) != 8 {
				t.Fatalf("n=8: ranks on %d CPUs, want 8", len(perCPU))
			}
		}
	}
}
