package kernel

import (
	"fmt"

	"hplsim/internal/sched"
	"hplsim/internal/sim"
	"hplsim/internal/task"
	"hplsim/internal/topo"
)

// Attr describes a task being spawned.
type Attr struct {
	Name   string
	Policy task.Policy
	// RTPrio applies to FIFO/RR tasks (1..99).
	RTPrio int
	// Nice applies to Normal tasks (-20..19).
	Nice int
	// Affinity restricts placement; zero means "all CPUs".
	Affinity topo.CPUMask
	// Sensitivity is the cache sensitivity of the task's work, in [0,1].
	Sensitivity float64
}

// Spawn creates a task and enqueues it. parent may be nil for boot-time
// tasks; children of a live parent count toward its WaitChildren. start is
// invoked immediately (in kernel context) to install the task's first step
// via the returned Proc — typically a Compute call.
//
// Fork placement is delegated to the scheduling class; the HPC class
// implements the paper's topology-aware spread, CFS picks the least-loaded
// CPU. Placement on a CPU other than the parent's counts as a CPU
// migration, which is how the paper's Table Ib arrives at one migration per
// MPI rank created.
func (k *Kernel) Spawn(parent *task.Task, attr Attr, start func(p *Proc)) *task.Task {
	t := k.newTask(attr.Name, attr.Policy)
	t.RTPrio = attr.RTPrio
	t.Nice = attr.Nice
	t.Sensitivity = attr.Sensitivity
	if !attr.Affinity.Empty() {
		t.Affinity = attr.Affinity
	}
	origin := 0
	if parent != nil {
		t.Parent = parent
		parent.LiveChildren++
		origin = parent.CPU
	}
	t.CPU = origin
	k.Perf.Forks++
	k.Sched.TaskAlive(t.Policy)

	p := &Proc{K: k, T: t}
	if start != nil {
		start(p)
	}
	if t.State == task.Sleeping {
		// The task's first act was a sleep (daemon pattern): it will be
		// enqueued by the wakeup.
		k.checkInvariants()
		return t
	}
	if t.Work == 0 && t.OnDone == nil {
		panic(fmt.Sprintf("kernel: spawned task %q installed no work", attr.Name))
	}

	cpu := k.Sched.SelectCPU(t, origin, sched.EnqueueFork)
	if cpu != origin {
		k.Perf.Migrations++
		t.Counters.Migrations++
		k.traceMigrate(t, origin, cpu, MigrateFork)
	}
	t.State = task.Runnable
	k.traceFork(t, cpu)
	k.Sched.Enqueue(cpu, t, sched.EnqueueFork)
	k.checkInvariants()
	return t
}

// Wake moves a sleeping task to a runqueue. Waking a task that is not
// sleeping is a no-op (events and explicit wakeups may race benignly).
func (k *Kernel) Wake(t *task.Task) {
	k.wake(t)
	k.checkInvariants()
}

// wake is Wake without the syscall-boundary invariants sweep: internal
// composites (exit notifying a waiting parent) run it mid-sequence, while
// the dying task is still curr and its reschedule not yet requested, so
// the global audit must wait for the composite to finish.
func (k *Kernel) wake(t *task.Task) {
	if t.State != task.Sleeping {
		return
	}
	t.State = task.Runnable
	t.Counters.WakeUps++
	k.Perf.Wakeups++
	prev := t.CPU
	cpu := k.Sched.SelectCPU(t, prev, sched.EnqueueWake)
	if cpu != prev {
		k.Perf.Migrations++
		t.Counters.Migrations++
		k.traceMigrate(t, prev, cpu, MigrateWake)
	}
	if k.Cfg.Tracer != nil {
		k.Cfg.Tracer.Wake(k.Eng.Now(), t, cpu)
	}
	k.Sched.Enqueue(cpu, t, sched.EnqueueWake)
}

// Block transitions a running task to Sleeping; the caller must have
// installed the post-wake continuation (Work = 0, OnDone set).
func (k *Kernel) Block(t *task.Task) { k.block(t) }

// BlockQueued puts a runnable-but-not-running task to sleep: it leaves the
// runqueue without a context switch (it was not running). This happens when
// an MPI rank's spin window expires while the rank is preempted.
func (k *Kernel) BlockQueued(t *task.Task, then func()) {
	if t.State != task.Runnable || !t.OnRq {
		panic(fmt.Sprintf("kernel: BlockQueued of %v", t))
	}
	k.Sched.Dequeue(t)
	t.State = task.Sleeping
	t.Work = 0
	t.OnDone = then
}

// block transitions the running task to Sleeping and triggers a reschedule
// of its CPU. The caller must have installed the post-wake continuation.
func (k *Kernel) block(t *task.Task) {
	if t.State != task.Running {
		panic(fmt.Sprintf("kernel: block of non-running task %v", t))
	}
	t.State = task.Sleeping
	k.resched(t.CPU)
}

// exit terminates the running task: it leaves the scheduler, its parent is
// notified (and woken if waiting in WaitChildren), and the CPU reschedules.
func (k *Kernel) exit(t *task.Task) {
	if t.State != task.Running {
		panic(fmt.Sprintf("kernel: exit of non-running task %v", t))
	}
	t.State = task.Dead
	t.Exited = k.Eng.Now()
	t.Work = 0
	t.OnDone = nil
	k.traceExit(t)
	k.Sched.TaskGone(t.Policy)
	if p := t.Parent; p != nil {
		p.LiveChildren--
		if p.LiveChildren == 0 && p.WaitingChildren {
			p.WaitingChildren = false
			k.wake(p)
		}
	}
	k.resched(t.CPU)
}

// SetScheduler changes a task's policy and real-time priority, the
// sched_setscheduler(2) of the simulated kernel. The paper's modified chrt
// uses this to move an application into the HPC class.
func (k *Kernel) SetScheduler(t *task.Task, policy task.Policy, rtprio int) {
	if t.Policy == policy && t.RTPrio == rtprio {
		return
	}
	requeue := t.OnRq
	if requeue {
		k.Sched.Dequeue(t)
	}
	k.Sched.TaskGone(t.Policy)
	t.Policy = policy
	t.RTPrio = rtprio
	k.Sched.TaskAlive(t.Policy)
	if requeue {
		k.Sched.Enqueue(t.CPU, t, sched.EnqueueWake)
	} else if t.State == task.Running {
		// The class change may demote the running task.
		k.resched(t.CPU)
	}
}

// SetNice changes a Normal task's nice value (weight takes effect at the
// next enqueue or charge).
func (k *Kernel) SetNice(t *task.Task, nice int) {
	t.Nice = nice
	t.CFS.Weight = 0 // recomputed lazily from Nice
}

// SetAffinity restricts the CPUs a task may use, the sched_setaffinity(2)
// of the simulated kernel (the static-binding alternative discussed in
// Section IV). A queued task on a now-forbidden CPU is moved immediately; a
// running task is rescheduled away.
func (k *Kernel) SetAffinity(t *task.Task, mask topo.CPUMask) {
	if mask.Empty() {
		panic("kernel: empty affinity mask")
	}
	t.Affinity = mask
	if mask.Has(t.CPU) {
		return
	}
	switch {
	case t.OnRq:
		k.Sched.MoveQueued(t, mask.First())
	case t.State == task.Running:
		// Force the task off this CPU at the next pass: requeue will
		// respect the new mask via SelectCPU on wake... a running task
		// is handled by an explicit move after preemption.
		k.resched(t.CPU)
	}
}

// SleepTask puts the running task to sleep for d and resumes it with the
// continuation `then`. A task may also start life asleep: calling SleepTask
// from the spawn callback makes the task's first act a sleep (the usual
// shape of a periodic daemon).
func (k *Kernel) SleepTask(t *task.Task, d sim.Duration, then func()) {
	t.Work = 0
	t.OnDone = then
	if t.State == task.New {
		t.State = task.Sleeping // Spawn sees this and skips the enqueue
	} else {
		k.block(t)
	}
	k.Eng.After(d, func() { k.Wake(t) })
}

// SetStep installs a new compute step on a task. If the task is currently
// running, the in-flight span is settled first and the completion event is
// recomputed; if it is runnable or sleeping the step takes effect when it
// next runs.
func (k *Kernel) SetStep(t *task.Task, work float64, then func()) {
	t.OnDone = then
	if t.State == task.Running {
		c := k.cpus[t.CPU]
		k.syncProgress(c)
		t.Work = work
		k.advance(c)
		k.checkInvariants()
		return
	}
	t.Work = work
	k.checkInvariants()
}
